#!/bin/sh
# ci.sh — the pre-PR gate: formatting, vet, build, and the full test suite
# under the race detector. Run it before every PR; it must exit 0.
#
# Usage:  ./scripts/ci.sh
#
# Set BENCH=1 to also run the benchmark suite and fail on regressions
# against BENCH_baseline.json (see scripts/bench.sh); off by default
# because the full bench run adds ~10 minutes and timing thresholds are
# noisy on shared machines.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l" >&2
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..." >&2
go vet ./...

echo "== go build ./..." >&2
go build ./...

echo "== go test -race ./..." >&2
go test -race -count=1 ./...

echo "== fault-scenario smoke (dcpid -fault)" >&2
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/dcpid" ./cmd/dcpid
# Stalled daemon: loss must be counted and conserved, never silent.
"$tmp/dcpid" -workload gcc -mode cycles -db "$tmp/db-stall" \
	-scale 0.25 -period 768 -buckets 64 -overflow 64 \
	-fault stall=0-100M >"$tmp/stall.out"
grep -q "samples lost" "$tmp/stall.out"
grep -q "conservation" "$tmp/stall.out"
! grep -q "VIOLATED" "$tmp/stall.out"
# Crash mid-merge: database must recover; conservation must hold.
"$tmp/dcpid" -workload wave5 -mode default -db "$tmp/db-crash" \
	-scale 0.15 -period 2048 -drain-interval 100000 -merge-interval 250000 \
	-fault crash-merge=2,merge-profiles=1 >"$tmp/crash.out"
grep -q " crashes" "$tmp/crash.out"
! grep -q "VIOLATED" "$tmp/crash.out"

echo "== parallel-simulation determinism smoke (dcpid -simcpus)" >&2
# The same multiprocessor run, sequential vs goroutine-per-CPU, must
# produce byte-identical output and database files (see DESIGN.md).
"$tmp/dcpid" -workload altavista -mode cycles -db "$tmp/db-seq" \
	-scale 0.1 -seed 7 >"$tmp/seq.out"
"$tmp/dcpid" -workload altavista -mode cycles -db "$tmp/db-par" \
	-scale 0.1 -seed 7 -simcpus 4 >"$tmp/par.out"
sed 's|db-seq|DB|' "$tmp/seq.out" >"$tmp/seq.norm"
sed 's|db-par|DB|' "$tmp/par.out" >"$tmp/par.norm"
diff "$tmp/seq.norm" "$tmp/par.norm"
for f in "$tmp"/db-seq/epoch-0001/*; do
	cmp "$f" "$tmp/db-par/epoch-0001/$(basename "$f")"
done

echo "== run-cache cold/warm smoke (dcpieval -cache-dir)" >&2
# Second pass over a persistent cache must resolve at least one run from
# disk, simulate nothing, and keep stdout byte-identical to the cold pass.
go build -o "$tmp/dcpieval" ./cmd/dcpieval
"$tmp/dcpieval" -fig 7 -runs 1 -scale 0.1 -cache-dir "$tmp/runcache" \
	>"$tmp/cold.out" 2>/dev/null
"$tmp/dcpieval" -fig 7 -runs 1 -scale 0.1 -cache-dir "$tmp/runcache" \
	-metrics-out "$tmp/warm-metrics.json" >"$tmp/warm.out" 2>"$tmp/warm.err"
cmp "$tmp/cold.out" "$tmp/warm.out"
grep "dcpieval-cache-stats" "$tmp/warm.err" | grep -q '"simulated":0'
! grep "dcpieval-cache-stats" "$tmp/warm.err" | grep -q '"disk_hits":0,'

echo "== sharded-evaluation smoke (dcpieval -shard / -merge-shards)" >&2
# Two shard passes plus a merge must reproduce the unsharded output byte
# for byte (missing runs, if any, are re-simulated by the merge).
"$tmp/dcpieval" -fig 7 -runs 1 -scale 0.1 -shard 1/2 \
	-shard-out "$tmp/s1.shard" 2>/dev/null
"$tmp/dcpieval" -fig 7 -runs 1 -scale 0.1 -shard 2/2 \
	-shard-out "$tmp/s2.shard" 2>/dev/null
"$tmp/dcpieval" -fig 7 -runs 1 -scale 0.1 \
	-merge-shards "$tmp/s1.shard,$tmp/s2.shard" >"$tmp/merged.out" 2>/dev/null
cmp "$tmp/cold.out" "$tmp/merged.out"

echo "== fleet exposition/scrape/query smoke (dcpid -listen + dcpicollect)" >&2
# dcpid serves three sealed epochs over HTTP; dcpicollect scrapes them
# into a time-series store and the range query must reproduce the
# committed golden byte for byte. SIGINT must shut dcpid down cleanly.
go build -o "$tmp/dcpicollect" ./cmd/dcpicollect
"$tmp/dcpid" -workload wave5 -mode default -db "$tmp/db-fleet" \
	-scale 0.15 -period 2048 -seed 1 -epochs 3 -exact \
	-machine m00 -listen 127.0.0.1:29177 >/dev/null 2>"$tmp/dcpid-fleet.err" &
dcpid_pid=$!
# A failure below must not leak the background server.
trap 'kill "$dcpid_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
fleet_ok=0
for i in $(seq 1 100); do
	if "$tmp/dcpicollect" -targets m00=http://127.0.0.1:29177 \
		-tsdb "$tmp/fleetdb" -once >/dev/null 2>&1 \
		&& "$tmp/dcpicollect" query range -tsdb "$tmp/fleetdb" \
			-image /usr/bin/wave5 -from 1 -to 3 >"$tmp/fleet-range.out" \
		&& [ "$(wc -l <"$tmp/fleet-range.out")" -eq 5 ]; then
		fleet_ok=1
		break
	fi
	sleep 0.2
done
[ "$fleet_ok" = 1 ]
diff testdata/golden_fleet_range.txt "$tmp/fleet-range.out"
kill -INT "$dcpid_pid"
wait "$dcpid_pid"
trap 'rm -rf "$tmp"' EXIT
grep -q "shutdown complete" "$tmp/dcpid-fleet.err"

echo "== tsdb compaction smoke (dcpicollect compact)" >&2
# Compaction must be invisible to queries: the range answer must still
# match the committed golden, and top/delta must be byte-identical to
# their pre-compaction output, after the raw segments merge into a block.
"$tmp/dcpicollect" query top -tsdb "$tmp/fleetdb" -from 1 -to 3 >"$tmp/fleet-top.pre"
"$tmp/dcpicollect" query delta -tsdb "$tmp/fleetdb" -a 1-2 -b 3-3 >"$tmp/fleet-delta.pre"
"$tmp/dcpicollect" compact -tsdb "$tmp/fleetdb" >"$tmp/compact.out"
grep -q "segments into 1 blocks" "$tmp/compact.out"
ls "$tmp/fleetdb" | grep -q '^blk-'
if ls "$tmp/fleetdb" | grep -q '^seg-.*tsdb$'; then
	echo "compaction left raw segments behind" >&2
	exit 1
fi
"$tmp/dcpicollect" query range -tsdb "$tmp/fleetdb" \
	-image /usr/bin/wave5 -from 1 -to 3 >"$tmp/fleet-range.post"
diff testdata/golden_fleet_range.txt "$tmp/fleet-range.post"
"$tmp/dcpicollect" query top -tsdb "$tmp/fleetdb" -from 1 -to 3 >"$tmp/fleet-top.post"
cmp "$tmp/fleet-top.pre" "$tmp/fleet-top.post"
"$tmp/dcpicollect" query delta -tsdb "$tmp/fleetdb" -a 1-2 -b 3-3 >"$tmp/fleet-delta.post"
cmp "$tmp/fleet-delta.pre" "$tmp/fleet-delta.post"
"$tmp/dcpicollect" query top -tsdb "$tmp/fleetdb" -from 1 -to 3 -json \
	| grep -q '"rows"'

echo "== closed-loop optimization smoke (dcpiopt)" >&2
# The §7 loop must converge on the pessimized classifier with a real,
# measured win (the gate requires at least 1.5x), and must refuse the
# image whose code cannot be re-laid safely.
go build -o "$tmp/dcpiopt" ./cmd/dcpiopt
"$tmp/dcpiopt" -workload classify -min-gain 0.5 >"$tmp/opt.out"
grep -q "converged" "$tmp/opt.out"
grep -q "kept" "$tmp/opt.out"
if "$tmp/dcpiopt" -workload gcc -scale 0.02 2>"$tmp/opt-gcc.err"; then
	echo "dcpiopt accepted an unsafe image" >&2
	exit 1
fi
grep -q "outside the procedure" "$tmp/opt-gcc.err"

echo "== what-if sweep smoke (dcpiwhatif)" >&2
# A tiny grid over one workload: the cold pass simulates, the warm rerun
# must resolve every run from the shared disk cache and keep the report
# (including the causal culprit score) byte-identical.
go build -o "$tmp/dcpiwhatif" ./cmd/dcpiwhatif
"$tmp/dcpiwhatif" -workloads compress -scale 0.05 -grid dcache2x,memlat2x \
	-cache-dir "$tmp/runcache" -json "$tmp/whatif.json" \
	>"$tmp/whatif-cold.out" 2>"$tmp/whatif-cold.err"
grep -q "aggregate:" "$tmp/whatif-cold.out"
grep -q "precision" "$tmp/whatif-cold.out"
"$tmp/dcpiwhatif" -workloads compress -scale 0.05 -grid dcache2x,memlat2x \
	-cache-dir "$tmp/runcache" -json "$tmp/whatif.json" \
	>"$tmp/whatif-warm.out" 2>"$tmp/whatif-warm.err"
cmp "$tmp/whatif-cold.out" "$tmp/whatif-warm.out"
grep "dcpiwhatif-cache-stats" "$tmp/whatif-warm.err" | grep -q '"simulated":0'
grep -q '"base_wall_cycles"' "$tmp/whatif.json"

echo "== fuzz smoke (short deadline per target)" >&2
# Each target replays its committed corpus plus a few seconds of fresh
# coverage-guided input; crashes fail the gate.
go test ./internal/profiledb/ -run '^$' -fuzz FuzzProfileDecode -fuzztime 5s
go test ./internal/alpha/ -run '^$' -fuzz FuzzInstDecode -fuzztime 5s
go test ./internal/daemon/ -run '^$' -fuzz FuzzParseFaultPlan -fuzztime 5s
go test ./internal/tsdb/ -run '^$' -fuzz FuzzTSDBSegmentDecode -fuzztime 5s
go test ./internal/tsdb/ -run '^$' -fuzz FuzzTSDBBlockDecode -fuzztime 5s
go test ./internal/optimize/ -run '^$' -fuzz FuzzReorderProcedure -fuzztime 5s
go test ./internal/hw/ -run '^$' -fuzz FuzzParseHWConfig -fuzztime 5s

if [ "${BENCH:-0}" = "1" ]; then
	echo "== benchmark regression gate (BENCH=1)" >&2
	./scripts/bench.sh "$tmp/bench.json"
fi

echo "== ci.sh: all checks passed" >&2
