#!/bin/sh
# ci.sh — the pre-PR gate: formatting, vet, build, and the full test suite
# under the race detector. Run it before every PR; it must exit 0.
#
# Usage:  ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l" >&2
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..." >&2
go vet ./...

echo "== go build ./..." >&2
go build ./...

echo "== go test -race ./..." >&2
go test -race -count=1 ./...

echo "== ci.sh: all checks passed" >&2
