#!/bin/sh
# bench.sh — the per-PR performance and race gate.
#
# Runs the benchmark suite (every paper table/figure as a benchmark, plus
# the driver and simulator micro-benchmarks) and the race-detector tests
# for the packages the parallel evaluation engine touches. Compare the
# JSON it writes against the committed BENCH_baseline.json (captured on
# the seed revision, same flags) to spot regressions.
#
# Usage:  ./scripts/bench.sh [out.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_current.json}"

echo "== go test -race ./internal/runner ./internal/eval" >&2
go test -race -count=1 ./internal/runner ./internal/eval

echo "== go test -bench=. -benchmem (root, driver, sim)" >&2
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench=. -benchmem . ./internal/driver ./internal/sim | tee "$tmp" >&2

go run ./scripts/benchjson < "$tmp" > "$out"
echo "== wrote $out (baseline: BENCH_baseline.json)" >&2
