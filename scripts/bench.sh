#!/bin/sh
# bench.sh — the per-PR performance and race gate.
#
# Runs the benchmark suite (every paper table/figure as a benchmark, plus
# the driver and simulator micro-benchmarks) and the race-detector tests
# for the packages the parallel evaluation engine touches, then diffs the
# fresh results against the committed BENCH_baseline.json with
# scripts/benchjson -compare. A slowdown or allocation growth past the
# threshold exits non-zero.
#
# Usage:
#	./scripts/bench.sh [out.json]           # run + auto-compare vs baseline
#	./scripts/bench.sh -compare old.json new.json
#	                                        # just diff two existing files
#
# Environment:
#	BENCH_BASELINE   baseline file for auto-compare (default BENCH_baseline.json)
#	BENCH_THRESHOLD  allowed growth fraction before failing (default 0.15)
set -eu

cd "$(dirname "$0")/.."

threshold="${BENCH_THRESHOLD:-0.15}"

if [ "${1:-}" = "-compare" ]; then
	[ $# -eq 3 ] || { echo "usage: bench.sh -compare old.json new.json" >&2; exit 2; }
	exec go run ./scripts/benchjson -compare -threshold "$threshold" "$2" "$3"
fi

out="${1:-BENCH_current.json}"
baseline="${BENCH_BASELINE:-BENCH_baseline.json}"

echo "== go test -race ./internal/runner ./internal/eval" >&2
go test -race -count=1 ./internal/runner ./internal/eval

echo "== go test -bench=. -benchmem (root, driver, sim, optimize, tsdb, whatif)" >&2
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench=. -benchmem . ./internal/driver ./internal/sim ./internal/optimize ./internal/tsdb ./internal/whatif | tee "$tmp" >&2

go run ./scripts/benchjson < "$tmp" > "$out"
echo "== wrote $out" >&2

if [ -f "$baseline" ]; then
	echo "== compare vs $baseline (threshold $threshold)" >&2
	go run ./scripts/benchjson -compare -threshold "$threshold" "$baseline" "$out"
else
	echo "== no baseline ($baseline) — skipping compare" >&2
fi
