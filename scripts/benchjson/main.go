// Command benchjson converts `go test -bench` text output (read from
// stdin) into the JSON shape committed as BENCH_baseline.json, so per-PR
// benchmark runs can be diffed against the baseline mechanically.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem ./... | go run ./scripts/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Package    string  `json:"package"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp come from -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values (the experiments'
	// headline numbers: overhead percentages, accuracy fractions,
	// correlation coefficients).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole file.
type Output struct {
	Goos    string      `json:"goos,omitempty"`
	Goarch  string      `json:"goarch,omitempty"`
	CPU     string      `json:"cpu,omitempty"`
	Results []Benchmark `json:"results"`
}

func main() {
	var out Output
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(pkg, line); ok {
				out.Results = append(out.Results, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line: name, iteration count, then repeated
// "<value> <unit>" pairs.
func parseLine(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Package: pkg, Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}
