// Command benchjson converts `go test -bench` text output (read from
// stdin) into the JSON shape committed as BENCH_baseline.json, so per-PR
// benchmark runs can be diffed against the baseline mechanically — and,
// with -compare, performs that diff itself as a regression gate.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem ./... | go run ./scripts/benchjson
//	go run ./scripts/benchjson -compare old.json new.json
//	go run ./scripts/benchjson -compare -threshold 0.25 old.json new.json
//
// Compare mode prints a per-benchmark table of ns/op and allocs/op deltas
// and exits non-zero when any benchmark slows down (or allocates more) by
// more than the threshold fraction. Improvements never fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Package    string  `json:"package"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp come from -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values (the experiments'
	// headline numbers: overhead percentages, accuracy fractions,
	// correlation coefficients).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole file.
type Output struct {
	Goos    string      `json:"goos,omitempty"`
	Goarch  string      `json:"goarch,omitempty"`
	CPU     string      `json:"cpu,omitempty"`
	Results []Benchmark `json:"results"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two benchmark JSON files (old new) instead of converting stdin")
	threshold := flag.Float64("threshold", 0.15, "compare mode: fail when ns/op or allocs/op grows by more than this fraction")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold))
	}

	var out Output
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(pkg, line); ok {
				out.Results = append(out.Results, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line: name, iteration count, then repeated
// "<value> <unit>" pairs.
func parseLine(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Package: pkg, Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}

// benchKey identifies one benchmark across files: package + name with any
// GOMAXPROCS suffix ("-8") stripped, so runs from machines with different
// core counts still line up.
func benchKey(b Benchmark) string {
	name := b.Name
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return b.Package + "." + name
}

func loadResults(path string) (map[string]Benchmark, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var out Output
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Benchmark, len(out.Results))
	var order []string
	for _, b := range out.Results {
		k := benchKey(b)
		if _, dup := m[k]; !dup {
			order = append(order, k)
		}
		m[k] = b
	}
	return m, order, nil
}

// pct formats a relative change as a signed percentage.
func pct(old, new float64) string {
	if old == 0 {
		return "   n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

// runCompare diffs two benchmark JSON files and returns the process exit
// code: 0 when nothing regressed past the threshold, 1 otherwise.
func runCompare(oldPath, newPath string, threshold float64) int {
	oldM, _, err := loadResults(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newM, newOrder, err := loadResults(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}

	fmt.Printf("%-44s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")
	regressions := 0
	for _, k := range newOrder {
		nb := newM[k]
		ob, ok := oldM[k]
		if !ok {
			fmt.Printf("%-44s %14s %14.0f %8s %12s %12d %8s\n",
				nb.Name, "-", nb.NsPerOp, "new", "-", nb.AllocsPerOp, "new")
			continue
		}
		flag := ""
		if ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp*(1+threshold) {
			flag = "  REGRESSION(time)"
			regressions++
		}
		if ob.AllocsPerOp > 0 && float64(nb.AllocsPerOp) > float64(ob.AllocsPerOp)*(1+threshold) {
			flag += "  REGRESSION(allocs)"
			regressions++
		}
		fmt.Printf("%-44s %14.0f %14.0f %8s %12d %12d %8s%s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, pct(ob.NsPerOp, nb.NsPerOp),
			ob.AllocsPerOp, nb.AllocsPerOp,
			pct(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp)), flag)
		delete(oldM, k)
	}
	missing := make([]string, 0, len(oldM))
	for k := range oldM {
		missing = append(missing, k)
	}
	sort.Strings(missing)
	for _, k := range missing {
		ob := oldM[k]
		fmt.Printf("%-44s %14.0f %14s %8s %12d %12s %8s  (missing from new run)\n",
			ob.Name, ob.NsPerOp, "-", "", ob.AllocsPerOp, "-", "")
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) past %.0f%% threshold\n",
			regressions, 100*threshold)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regressions past %.0f%% threshold\n", 100*threshold)
	return 0
}
