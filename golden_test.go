package dcpibench

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenTable2Digest is the byte-identical determinism guard for the
// evaluation pipeline: the simulator's hot path may be rearranged for
// speed (pre-decoded metadata, memoized schedules, pooled buffers), but
// `dcpieval -table 2` stdout must never change by a single byte. The
// committed digest in testdata/golden_table2.sha256 locks the output; a
// mismatch means an "optimization" changed simulation semantics.
//
// To regenerate after an intentional output change:
//
//	go build -o /tmp/dcpieval ./cmd/dcpieval
//	/tmp/dcpieval -table 2 -runs 2 -scale 0.12 | sha256sum
//
// and update testdata/golden_table2.sha256 (and eval_output.txt, captured
// at default -runs/-scale, alongside it).
func TestGoldenTable2Digest(t *testing.T) {
	goldenTable2(t)
}

// TestGoldenTable2DigestParallel runs the same golden check with the
// simulated CPUs fanned out over goroutines (-simcpus 4): parallel
// simulation must reproduce the committed digest bit for bit. Together
// with the sequential run above, this pins the PR 5 contract — CPU-level
// parallelism is an execution strategy, not a semantic change.
func TestGoldenTable2DigestParallel(t *testing.T) {
	goldenTable2(t, "-simcpus", "4")
}

func goldenTable2(t *testing.T, extraArgs ...string) {
	if testing.Short() {
		t.Skip("golden digest run is slow")
	}
	wantRaw, err := os.ReadFile(filepath.Join("testdata", "golden_table2.sha256"))
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Fields(string(wantRaw))[0]

	bin := filepath.Join(t.TempDir(), "dcpieval")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/dcpieval")
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build dcpieval: %v\n%s", err, msg)
	}

	args := append([]string{"-table", "2", "-runs", "2", "-scale", "0.12"}, extraArgs...)
	out, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("dcpieval %s: %v", strings.Join(args, " "), err)
	}
	sum := sha256.Sum256(out)
	got := hex.EncodeToString(sum[:])
	if got != want {
		dump := filepath.Join(t.TempDir(), "table2.out")
		os.WriteFile(dump, out, 0o644)
		t.Errorf("dcpieval %s stdout digest changed:\n  got  %s\n  want %s\noutput saved to %s\n(see the test comment for how to regenerate if the change is intentional)",
			strings.Join(args, " "), got, want, dump)
	}
}
