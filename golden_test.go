package dcpibench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenTable2Digest is the byte-identical determinism guard for the
// evaluation pipeline: the simulator's hot path may be rearranged for
// speed (pre-decoded metadata, memoized schedules, pooled buffers), but
// `dcpieval -table 2` stdout must never change by a single byte. The
// committed digest in testdata/golden_table2.sha256 locks the output; a
// mismatch means an "optimization" changed simulation semantics.
//
// To regenerate after an intentional output change:
//
//	go build -o /tmp/dcpieval ./cmd/dcpieval
//	/tmp/dcpieval -table 2 -runs 2 -scale 0.12 | sha256sum
//
// and update testdata/golden_table2.sha256 (and eval_output.txt, captured
// at default -runs/-scale, alongside it).
func TestGoldenTable2Digest(t *testing.T) {
	goldenTable2(t)
}

// TestGoldenTable2DigestParallel runs the same golden check with the
// simulated CPUs fanned out over goroutines (-simcpus 4): parallel
// simulation must reproduce the committed digest bit for bit. Together
// with the sequential run above, this pins the PR 5 contract — CPU-level
// parallelism is an execution strategy, not a semantic change.
func TestGoldenTable2DigestParallel(t *testing.T) {
	goldenTable2(t, "-simcpus", "4")
}

// TestGoldenTable2DigestWarmCache runs the golden check twice through a
// persistent run cache: the cold pass populates -cache-dir, the warm pass
// must rehydrate every run from disk and still reproduce the committed
// digest bit for bit. This pins the PR 6 contract — a disk-cached result
// is indistinguishable from a freshly simulated one.
func TestGoldenTable2DigestWarmCache(t *testing.T) {
	bin, want := goldenSetup(t)
	cacheDir := filepath.Join(t.TempDir(), "runcache")
	goldenCheck(t, bin, want, "-cache-dir", cacheDir) // cold: populates
	stderr := goldenCheck(t, bin, want, "-cache-dir", cacheDir)
	if !strings.Contains(stderr, "rehydrated from disk") {
		t.Errorf("warm pass did not report disk hits; stderr:\n%s", stderr)
	}
}

// TestGoldenTable2DigestShardMerge splits the golden sweep across four
// shard processes and merges their archives: the merged output must match
// the committed digest, and the merge pass must rehydrate (not simulate)
// the sharded runs.
func TestGoldenTable2DigestShardMerge(t *testing.T) {
	bin, want := goldenSetup(t)
	dir := t.TempDir()
	const n = 4
	var archives []string
	for i := 1; i <= n; i++ {
		out := filepath.Join(dir, "shard.bin."+string(rune('0'+i)))
		archives = append(archives, out)
		args := append(goldenArgs(), "-shard", fmt.Sprintf("%d/%d", i, n), "-shard-out", out)
		if msg, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
			t.Fatalf("shard %d/%d: %v\n%s", i, n, err, msg)
		}
	}
	stderr := goldenCheck(t, bin, want, "-merge-shards", strings.Join(archives, ","))
	if !strings.Contains(stderr, "rehydrated from disk") {
		t.Errorf("merge pass did not report rehydrated runs; stderr:\n%s", stderr)
	}
}

func goldenArgs() []string {
	return []string{"-table", "2", "-runs", "2", "-scale", "0.12"}
}

// goldenSetup builds dcpieval and loads the committed digest.
func goldenSetup(t *testing.T) (bin, want string) {
	t.Helper()
	if testing.Short() {
		t.Skip("golden digest run is slow")
	}
	wantRaw, err := os.ReadFile(filepath.Join("testdata", "golden_table2.sha256"))
	if err != nil {
		t.Fatal(err)
	}
	want = strings.Fields(string(wantRaw))[0]

	bin = filepath.Join(t.TempDir(), "dcpieval")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/dcpieval")
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build dcpieval: %v\n%s", err, msg)
	}
	return bin, want
}

// goldenCheck runs the golden sweep with extra args, compares the stdout
// digest against the committed one, and returns stderr.
func goldenCheck(t *testing.T, bin, want string, extraArgs ...string) string {
	t.Helper()
	args := append(goldenArgs(), extraArgs...)
	cmd := exec.Command(bin, args...)
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("dcpieval %s: %v\nstderr:\n%s", strings.Join(args, " "), err, errBuf.String())
	}
	sum := sha256.Sum256(out)
	got := hex.EncodeToString(sum[:])
	if got != want {
		dump := filepath.Join(t.TempDir(), "table2.out")
		os.WriteFile(dump, out, 0o644)
		t.Errorf("dcpieval %s stdout digest changed:\n  got  %s\n  want %s\noutput saved to %s\n(see the test comment for how to regenerate if the change is intentional)",
			strings.Join(args, " "), got, want, dump)
	}
	return errBuf.String()
}

func goldenTable2(t *testing.T, extraArgs ...string) {
	bin, want := goldenSetup(t)
	goldenCheck(t, bin, want, extraArgs...)
}
