package dcpibench

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIObservability checks the self-observability contract end to end:
//
//  1. With -stats-out/-trace-out unset, dcpid and dcpieval stdout is
//     byte-identical to an instrumented run (zero overhead when disabled).
//  2. The metrics JSON covers every figure printed in the dcpid summary
//     block (handler-cycle histogram, hash miss rate, evictions, daemon
//     cycles/sample, database bytes, ...).
//  3. The trace JSON parses as Chrome trace format (Perfetto-loadable).
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI observability test is slow")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		return out
	}
	// run executes prog in dir and returns stdout only: the obs flags add
	// stderr chatter by design, stdout is the byte-stable surface.
	run := func(dir, prog string, args ...string) string {
		cmd := exec.Command(prog, args...)
		cmd.Dir = dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\n%s%s", filepath.Base(prog), args, err, stdout.String(), stderr.String())
		}
		return stdout.String()
	}

	dcpid := build("dcpid")
	dcpieval := build("dcpieval")

	// Identical args in two different working directories: the relative -db
	// path keeps the stdout summary identical, the obs flags only add files
	// and stderr lines.
	dirPlain := t.TempDir()
	dirObs := t.TempDir()
	args := []string{"-workload", "x11perf", "-mode", "default", "-db", "dcpidb",
		"-scale", "0.15", "-seed", "1", "-period", "2048"}
	plain := run(dirPlain, dcpid, args...)
	instr := run(dirObs, dcpid, append(args, "-stats-out", "metrics.json", "-trace-out", "trace.json")...)
	if plain != instr {
		t.Errorf("dcpid stdout changed when observability enabled:\nplain:\n%s\nobs:\n%s", plain, instr)
	}

	metrics := readMetrics(t, filepath.Join(dirObs, "metrics.json"))
	// Every figure in the dcpid summary block must have a metrics key.
	for _, key := range []string{"machine.instructions", "driver.samples", "driver.evictions"} {
		if _, ok := metrics.Counters[key]; !ok {
			t.Errorf("metrics missing counter %q", key)
		}
	}
	for _, key := range []string{
		"machine.wall_cycles", "driver.miss_rate", "driver.avg_handler_cycles",
		"daemon.unknown_rate", "daemon.cycles_per_sample", "daemon.memory_bytes",
		"db.epoch", "db.disk_bytes",
	} {
		if _, ok := metrics.Gauges[key]; !ok {
			t.Errorf("metrics missing gauge %q", key)
		}
	}
	hcy, ok := metrics.Histograms["driver.handler_cycles"]
	if !ok {
		t.Fatal("metrics missing histogram driver.handler_cycles")
	}
	if hcy.Count == 0 || hcy.Count != metrics.Counters["driver.samples"] {
		t.Errorf("handler histogram count %d != driver.samples %d",
			hcy.Count, metrics.Counters["driver.samples"])
	}
	if hcy.P50 <= 0 || hcy.P99 < hcy.P50 {
		t.Errorf("handler histogram percentiles p50=%g p99=%g", hcy.P50, hcy.P99)
	}

	checkChromeTrace(t, filepath.Join(dirObs, "trace.json"),
		"intr:", "process:", "epoch_flush")

	// Same contract for dcpieval on a small section.
	eargs := []string{"-fig", "7", "-runs", "1", "-scale", "0.1"}
	eplain := run(dirPlain, dcpieval, eargs...)
	einstr := run(dirObs, dcpieval, append(eargs, "-metrics-out", "eval_metrics.json", "-trace-out", "eval_trace.json")...)
	if eplain != einstr {
		t.Errorf("dcpieval stdout changed when observability enabled:\nplain:\n%s\nobs:\n%s", eplain, einstr)
	}
	em := readMetrics(t, filepath.Join(dirObs, "eval_metrics.json"))
	if em.Counters["runner.simulated"] == 0 {
		t.Error("eval metrics: runner.simulated is zero")
	}
	for _, key := range []string{"runner.workers", "runner.dedup_rate"} {
		if _, ok := em.Gauges[key]; !ok {
			t.Errorf("eval metrics missing gauge %q", key)
		}
	}
	for _, key := range []string{"runner.queue_wait_us", "runner.run_wall_us"} {
		if h, ok := em.Histograms[key]; !ok || h.Count == 0 {
			t.Errorf("eval metrics histogram %q missing or empty", key)
		}
	}
	checkChromeTrace(t, filepath.Join(dirObs, "eval_trace.json"), "Figure 7")

	// The machine-readable cache-stats stderr line rides along with
	// -metrics-out (satellite: pipelines scrape it without reading files).
	cmd := exec.Command(dcpieval, "-fig", "7", "-runs", "1", "-scale", "0.1",
		"-metrics-out", filepath.Join(dirObs, "m2.json"))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.Stdout = new(bytes.Buffer)
	if err := cmd.Run(); err != nil {
		t.Fatalf("dcpieval -metrics-out: %v\n%s", err, stderr.String())
	}
	var statsLine string
	for _, line := range strings.Split(stderr.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "dcpieval-cache-stats "); ok {
			statsLine = rest
		}
	}
	if statsLine == "" {
		t.Fatalf("no dcpieval-cache-stats line on stderr:\n%s", stderr.String())
	}
	var stats struct {
		Simulated    int     `json:"simulated"`
		MemHits      int     `json:"mem_hits"`
		DiskHits     int     `json:"disk_hits"`
		ShardSkipped int     `json:"shard_skipped"`
		DedupRate    float64 `json:"dedup_rate"`
		HitRate      float64 `json:"hit_rate"`
		Workers      int     `json:"workers"`
	}
	if err := json.Unmarshal([]byte(statsLine), &stats); err != nil {
		t.Fatalf("cache-stats line is not JSON: %v\n%s", err, statsLine)
	}
	if stats.Simulated == 0 || stats.Workers == 0 {
		t.Errorf("cache-stats line implausible: %+v", stats)
	}
	if stats.DiskHits != 0 || stats.ShardSkipped != 0 {
		t.Errorf("cache-stats reports disk/shard activity without -cache-dir/-shard: %+v", stats)
	}
}

// metricsFile mirrors the obs.Snapshot JSON layout.
type metricsFile struct {
	Counters   map[string]uint64  `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]struct {
		Count uint64  `json:"count"`
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
	} `json:"histograms"`
}

func readMetrics(t *testing.T, path string) metricsFile {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m metricsFile
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("%s is not valid metrics JSON: %v", path, err)
	}
	return m
}

// checkChromeTrace parses path as Chrome trace format, validates the
// required per-event fields, and checks each wantNames substring appears in
// some event name.
func checkChromeTrace(t *testing.T, path string, wantNames ...string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("%s is not valid Chrome trace JSON: %v", path, err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatalf("%s: no trace events", path)
	}
	names := make([]string, 0, len(trace.TraceEvents))
	for i, ev := range trace.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph == "" || name == "" {
			t.Fatalf("%s event %d: missing ph/name: %v", path, i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("%s event %d: missing pid: %v", path, i, ev)
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("%s event %d: complete event missing dur: %v", path, i, ev)
			}
		}
		names = append(names, name)
	}
	all := strings.Join(names, "\n")
	for _, want := range wantNames {
		if !strings.Contains(all, want) {
			t.Errorf("%s: no event name containing %q", path, want)
		}
	}
}
