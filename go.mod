module dcpi

go 1.22
