package analysis

import (
	"dcpi/internal/alpha"
	"dcpi/internal/cfg"
)

// Cache geometry the culprit rules reason about; matches the simulated
// machine (DESIGN.md §3).
const (
	icacheLineBytes = 32
	pageBytes       = 8192
	// dcacheLookback bounds how far back (in instructions) a load can be
	// and still be blamed for a consumer's D-cache stall.
	dcacheLookback = 12
	// minPredFreqFrac: predecessors executed much less often than the
	// stalled instruction are ignored when applying the same-line rule
	// (paper §6.3: "we can ignore basic blocks and control flow edges
	// executed much less frequently than the stalled instruction itself").
	minPredFreqFrac = 0.1
)

// identifyCulprits annotates every instruction that shows a dynamic stall
// with its possible causes, ruling out the impossible ones ("guilty until
// proven innocent"). imissEvents, when non-nil, holds estimated I-cache
// miss *event counts* per image offset (IMISS samples scaled by their
// sampling period) and is used both to rule I-cache out and to bound it.
func (pa *ProcAnalysis) identifyCulprits(imissEvents, dtbEvents map[uint64]uint64) {
	// DTBMISS deliveries are skewed, so rule DTB out at procedure
	// granularity: if the event was collected and none landed in this
	// procedure, no instruction here stalled on a DTB fill.
	dtbPossible := true
	if dtbEvents != nil {
		var total uint64
		lo := pa.BaseOffset
		hi := pa.BaseOffset + uint64(len(pa.Insts))*alpha.InstBytes
		for off, n := range dtbEvents {
			if off >= lo && off < hi {
				total += n
			}
		}
		dtbPossible = total > 0
	}
	for i := range pa.Insts {
		ia := &pa.Insts[i]
		if ia.DynStall <= 0.01 || ia.Freq <= 0 {
			continue
		}
		ia.Culprits = pa.culpritsFor(i, imissEvents, dtbPossible)
	}
}

func (pa *ProcAnalysis) culpritsFor(i int, imissEvents map[uint64]uint64, dtbPossible bool) []Culprit {
	ia := &pa.Insts[i]
	var out []Culprit
	add := func(c Cause, culprit int, bound float64) {
		out = append(out, Culprit{Cause: c, CulpritIndex: culprit, BoundCycles: bound})
	}

	// --- I-cache and ITB ---
	if possible, bound := pa.icachePossible(i, imissEvents); possible {
		add(CauseICache, -1, bound)
		if pa.pageCrossingPossible(i) {
			add(CauseITB, -1, -1)
		}
	}

	// --- D-cache: a preceding load feeding one of our operands ---
	if load := pa.feedingLoad(i); load >= 0 {
		add(CauseDCache, load, -1)
	} else if pa.atBlockHead(i) && pa.readsLiveInRegister(i) {
		// Operand produced in an unknown predecessor: pessimistically a
		// load could feed it.
		add(CauseDCache, -1, -1)
	}

	// --- DTB: loads and stores only; ruled out when DTBMISS samples were
	// collected and the procedure has none (§3.2) ---
	if dtbPossible && (ia.Inst.Op.IsLoad() || ia.Inst.Op.IsStore()) {
		add(CauseDTB, -1, -1)
	}

	// --- Write buffer: stores only ---
	if ia.Inst.Op.IsStore() {
		add(CauseWB, -1, -1)
	}

	// --- Branch mispredict: block heads reached via conditional control
	// flow (or procedure entry, reached through calls/returns) ---
	if pa.mispredictPossible(i) {
		add(CauseBranchMP, pa.branchCulprit(i), -1)
	}

	// --- Synchronization: memory barriers ---
	if ia.Inst.Op == alpha.OpMB || ia.Inst.Op == alpha.OpWMB {
		add(CauseSync, -1, -1)
	}

	// --- Functional units: a busy multiplier/divider from a recent issue ---
	if j := pa.recentFU(i, alpha.ClassIntMul, pa.Model.MulBusy); j >= 0 {
		add(CauseFUMul, j, -1)
	}
	if j := pa.recentFU(i, alpha.ClassFPDiv, pa.Model.DivBusy); j >= 0 {
		add(CauseFUDiv, j, -1)
	}

	return out
}

func (pa *ProcAnalysis) atBlockHead(i int) bool {
	b := pa.Graph.BlockOfInst(i)
	return pa.Graph.Blocks[b].Start == i
}

// icachePossible implements the same-cache-line rule of §6.3 plus the IMISS
// upper bound. It returns whether an I-cache miss stall is possible and a
// per-execution bound in cycles (-1 if unbounded).
func (pa *ProcAnalysis) icachePossible(i int, imissEvents map[uint64]uint64) (bool, float64) {
	ia := &pa.Insts[i]
	possible := false
	if !pa.atBlockHead(i) {
		// Mid-block: only possible at the start of a cache line.
		possible = ia.Offset%icacheLineBytes == 0
	} else {
		b := pa.Graph.BlockOfInst(i)
		myLine := ia.Offset / icacheLineBytes
		for _, ei := range pa.Graph.Blocks[b].Preds {
			e := pa.Graph.Edges[ei]
			if e.From == cfg.Entry {
				possible = true // callers are unknown
				break
			}
			if e.From < 0 {
				continue
			}
			if pa.EdgeFreq[ei] < minPredFreqFrac*pa.instWeight(ia) {
				continue
			}
			lastIdx := pa.Graph.Blocks[e.From].End - 1
			if pa.Insts[lastIdx].Offset/icacheLineBytes != myLine {
				possible = true
				break
			}
		}
		if pa.Graph.Blocks[b].Index == 0 {
			possible = true // procedure entry: reached by calls
		}
	}
	if !possible {
		return false, 0
	}
	if imissEvents == nil {
		return true, -1
	}
	events := imissEvents[ia.Offset]
	if events == 0 {
		// IMISS samples were collected and none landed here: ruled out.
		return false, 0
	}
	// Pessimistic bound: every miss filled all the way from memory.
	bound := float64(events) * float64(pa.Model.MemLat) / ia.Freq
	return true, bound
}

// instWeight converts an instruction's execution-count estimate back to the
// samples-per-cycle scale edge frequencies use.
func (pa *ProcAnalysis) instWeight(ia *InstAnalysis) float64 {
	if ia.Freq <= 0 || pa.Period <= 0 {
		return 0
	}
	return ia.Freq / pa.Period
}

// pageCrossingPossible: an ITB miss needs a page transition.
func (pa *ProcAnalysis) pageCrossingPossible(i int) bool {
	ia := &pa.Insts[i]
	if ia.Offset%pageBytes == 0 {
		return true
	}
	if !pa.atBlockHead(i) {
		return false
	}
	b := pa.Graph.BlockOfInst(i)
	myPage := ia.Offset / pageBytes
	for _, ei := range pa.Graph.Blocks[b].Preds {
		e := pa.Graph.Edges[ei]
		if e.From == cfg.Entry {
			return true
		}
		if e.From < 0 {
			continue
		}
		lastIdx := pa.Graph.Blocks[e.From].End - 1
		if pa.Insts[lastIdx].Offset/pageBytes != myPage {
			return true
		}
	}
	return b == 0
}

// feedingLoad finds the most recent load within the same block (and a
// bounded window) that produces a register instruction i reads.
func (pa *ProcAnalysis) feedingLoad(i int) int {
	b := pa.Graph.BlockOfInst(i)
	start := pa.Graph.Blocks[b].Start
	if w := i - dcacheLookback; w > start {
		start = w
	}
	srcs := pa.Insts[i].Inst.Sources()
	for j := i - 1; j >= start; j-- {
		inst := pa.Insts[j].Inst
		d, ok := inst.Dest()
		if !ok {
			continue
		}
		for _, s := range srcs {
			if s.Reg == d.Reg && s.FP == d.FP {
				if inst.Op.IsLoad() {
					return j
				}
				// The operand is produced by a non-load: that source
				// cannot carry a D-cache miss, but keep checking other
				// operands.
			}
		}
	}
	return -1
}

// readsLiveInRegister reports whether i reads a register not produced
// earlier in its own block (so the producer — possibly a load — is in a
// predecessor).
func (pa *ProcAnalysis) readsLiveInRegister(i int) bool {
	b := pa.Graph.BlockOfInst(i)
	start := pa.Graph.Blocks[b].Start
	for _, s := range pa.Insts[i].Inst.Sources() {
		produced := false
		for j := start; j < i; j++ {
			if d, ok := pa.Insts[j].Inst.Dest(); ok && d.Reg == s.Reg && d.FP == s.FP {
				produced = true
				break
			}
		}
		if !produced {
			return true
		}
	}
	return false
}

// mispredictPossible: the redirect penalty lands on the first instruction
// fetched after the branch, i.e. a block head reached via conditional
// control flow, a computed jump, or procedure entry/return.
func (pa *ProcAnalysis) mispredictPossible(i int) bool {
	if !pa.atBlockHead(i) {
		return false
	}
	b := pa.Graph.BlockOfInst(i)
	if b == 0 {
		return true
	}
	for _, ei := range pa.Graph.Blocks[b].Preds {
		e := pa.Graph.Edges[ei]
		if e.From == cfg.Entry {
			return true
		}
		if e.From < 0 {
			continue
		}
		if pa.EdgeFreq[ei] < minPredFreqFrac*pa.instWeight(&pa.Insts[i]) {
			continue
		}
		last := pa.Insts[pa.Graph.Blocks[e.From].End-1].Inst
		if last.Op.IsCondBranch() || last.Op.IsJump() {
			return true
		}
	}
	return false
}

// branchCulprit points at a conditional branch in some predecessor block.
func (pa *ProcAnalysis) branchCulprit(i int) int {
	b := pa.Graph.BlockOfInst(i)
	for _, ei := range pa.Graph.Blocks[b].Preds {
		e := pa.Graph.Edges[ei]
		if e.From >= 0 {
			last := pa.Graph.Blocks[e.From].End - 1
			if pa.Insts[last].Inst.Op.IsCondBranch() {
				return last
			}
		}
	}
	return -1
}

// recentFU finds an instruction of class cl issued within the unit's busy
// window before i in the same block, when i itself needs that unit.
func (pa *ProcAnalysis) recentFU(i int, cl alpha.Class, busy int64) int {
	if pa.Insts[i].Inst.Op.Class() != cl {
		return -1
	}
	b := pa.Graph.BlockOfInst(i)
	start := pa.Graph.Blocks[b].Start
	if w := i - int(busy); w > start {
		start = w
	}
	for j := i - 1; j >= start; j-- {
		if pa.Insts[j].Inst.Op.Class() == cl {
			return j
		}
	}
	return -1
}
