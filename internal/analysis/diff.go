package analysis

import "sort"

// DeltaRow is one line of a share-delta comparison between two sample
// populations: the thing dcpidiff prints for a pair of databases and the
// fleet top-delta query computes between two time windows. Shares are
// percentages of each side's own total, so populations of different sizes
// compare on shape rather than magnitude.
type DeltaRow struct {
	Name      string
	BeforePct float64
	AfterPct  float64
}

// Delta returns the signed share change in percentage points.
func (r DeltaRow) Delta() float64 { return r.AfterPct - r.BeforePct }

// ShareDeltas compares two name→samples maps and returns one row per name
// appearing on either side, sorted by the magnitude of the share change
// (ties broken by name, so the order is deterministic). Shares are
// normalized by each map's own sum; use ShareDeltasTotals when the true
// population totals are larger than the maps cover (unclassified samples).
func ShareDeltas(before, after map[string]uint64) []DeltaRow {
	var beforeTotal, afterTotal uint64
	for _, n := range before {
		beforeTotal += n
	}
	for _, n := range after {
		afterTotal += n
	}
	return ShareDeltasTotals(before, after, beforeTotal, afterTotal)
}

// ShareDeltasTotals is ShareDeltas with caller-supplied denominators. A
// zero total contributes 0% shares rather than dividing by zero.
func ShareDeltasTotals(before, after map[string]uint64, beforeTotal, afterTotal uint64) []DeltaRow {
	names := map[string]bool{}
	for n := range before {
		names[n] = true
	}
	for n := range after {
		names[n] = true
	}
	pct := func(n, total uint64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	rows := make([]DeltaRow, 0, len(names))
	for n := range names {
		rows = append(rows, DeltaRow{
			Name:      n,
			BeforePct: pct(before[n], beforeTotal),
			AfterPct:  pct(after[n], afterTotal),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := abs(rows[i].Delta()), abs(rows[j].Delta())
		if di != dj {
			return di > dj
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
