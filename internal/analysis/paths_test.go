package analysis

import (
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/cfg"
	"dcpi/internal/pipeline"
)

const diamondSrc = `
p:
	beq a0, .b
	addq t0, 1, t0
	br .join
.b:
	addq t0, 2, t0
.join:
	halt
`

func TestPathsDiamond(t *testing.T) {
	g := cfg.Build(alpha.MustAssemble(diamondSrc).Code, 0)
	pp, err := Paths(g)
	if err != nil {
		t.Fatal(err)
	}
	if pp.NumPaths != 2 {
		t.Fatalf("NumPaths = %d, want 2", pp.NumPaths)
	}
	// The two entry-to-exit paths must get the two distinct ids 0 and 1.
	// Blocks: 0 = beq, 1 = then-arm (addq; br), 2 = else-arm, 3 = halt.
	idThen, ok1 := pp.PathID([]int{0, 1, 3})
	idElse, ok2 := pp.PathID([]int{0, 2, 3})
	if !ok1 || !ok2 {
		t.Fatalf("paths not numberable: %v %v", ok1, ok2)
	}
	if idThen == idElse || idThen < 0 || idThen > 1 || idElse < 0 || idElse > 1 {
		t.Errorf("path ids not a bijection onto [0,2): then=%d else=%d", idThen, idElse)
	}
	// A block pair not joined by a DAG edge is not a path.
	if _, ok := pp.PathID([]int{1, 2}); ok {
		t.Error("numbered a non-path")
	}
}

const loopPathSrc = `
p:
	lda t0, 100(zero)
.loop:
	and t0, 1, t1
	beq t1, .even
	addq t2, 1, t2
	br .next
.even:
	addq t2, 3, t2
.next:
	subq t0, 1, t0
	bne t0, .loop
	halt
`

func TestPathsRemoveBackEdges(t *testing.T) {
	g := cfg.Build(alpha.MustAssemble(loopPathSrc).Code, 0)
	pp, err := Paths(g)
	if err != nil {
		t.Fatal(err)
	}
	backs := 0
	for ei := range g.Edges {
		if pp.BackEdge[ei] {
			backs++
			if g.Edges[ei].To != 1 {
				t.Errorf("back edge %d does not close the loop to block 1: %+v", ei, g.Edges[ei])
			}
		}
	}
	if backs != 1 {
		t.Errorf("back edges = %d, want 1 (the bne .loop edge)", backs)
	}
	// Acyclic paths: entry -> loop -> {odd, even} -> next -> exit = 2.
	if pp.NumPaths != 2 {
		t.Errorf("NumPaths = %d, want 2", pp.NumPaths)
	}
}

func TestPathsRejectMissingEdges(t *testing.T) {
	g := cfg.Build(alpha.MustAssemble("p:\n beq a0, .x\n jmp (t0)\n.x:\n halt").Code, 0)
	if _, err := Paths(g); err == nil {
		t.Error("computed paths for a CFG with computed jumps")
	}
}

// TestHottestPathFollowsBottleneck: the hottest path must stay on the arm
// the edge frequencies say is hot, and report the bottleneck frequency.
func TestHottestPathFollowsBottleneck(t *testing.T) {
	code := alpha.MustAssemble(loopPathSrc).Code
	// Synthesize samples so the .even arm is the hot one (block 3 cold,
	// block 4 hot). Blocks: 0 entry, 1 loop head, 2 odd-arm (addq; br),
	// 3 even-arm, 4 .next, 5 halt.
	pa0 := AnalyzeProc("p", code, 0, map[uint64]uint64{}, nil, pipeline.Default(), 1000)
	blockFreq := map[int]uint64{0: 1, 1: 100, 2: 10, 3: 90, 4: 100, 5: 1}
	samples := map[uint64]uint64{}
	for bi := range pa0.Graph.Blocks {
		blk := pa0.Graph.Blocks[bi]
		sched := pipeline.Default().ScheduleBlock(code[blk.Start:blk.End])
		for j, s := range sched {
			samples[uint64(blk.Start+j)*alpha.InstBytes] = uint64(s.M) * blockFreq[bi]
		}
	}
	pa := AnalyzeProc("p", code, 0, samples, nil, pipeline.Default(), 1000)

	path, bottleneck := pa.HottestPath()
	if len(path) < 3 || path[0] != 0 {
		t.Fatalf("path = %v", path)
	}
	onHot, onCold := false, false
	for _, b := range path {
		if b == 3 {
			onHot = true
		}
		if b == 2 {
			onCold = true
		}
	}
	if !onHot || onCold {
		t.Errorf("hottest path %v should take the even arm (block 3), not block 2", path)
	}
	if bottleneck <= 0 {
		t.Errorf("bottleneck = %v, want > 0", bottleneck)
	}
}
