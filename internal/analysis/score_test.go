package analysis

import (
	"math"
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/pipeline"
)

// oracleSrc is built so ground truth is known by construction: the addq at
// index 2 consumes the load's result and can stall on nothing else. It sits
// mid-block (no mispredict), off any cache-line start (no I-cache), is not
// a memory op (no DTB/WB), and uses no long-latency unit (no FU). With
// IMISS and DTBMISS event maps present-but-empty, the elimination rules
// must leave exactly one culprit: a D-cache miss on the load at index 0.
const oracleSrc = `
p:
	ldq t0, 0(t1)
	addq t2, 1, t3
	addq t0, 1, t4
	subq t3, 2, t5
	ret (ra)
`

// analyzeOracle runs the full analysis over oracleSrc with a large dynamic
// stall injected on the consumer, and returns the analysis plus the
// consumer's image offset.
func analyzeOracle(t *testing.T) (*ProcAnalysis, uint64) {
	t.Helper()
	code := alpha.MustAssemble(oracleSrc).Code
	sched := pipeline.Default().ScheduleBlock(code)
	perInst := map[int]uint64{}
	for j, s := range sched {
		perInst[j] = uint64(s.M) * 100
	}
	perInst[2] += 5000 // the injected stall: only the D-cache can explain it
	in := Inputs{
		Samples:     synthSamples(0, perInst),
		IMissEvents: map[uint64]uint64{}, // collected, none here: I-cache out
		DTBEvents:   map[uint64]uint64{}, // collected, none here: DTB out
	}
	pa := AnalyzeProcInputs("p", code, 0, in, pipeline.Default(), 1000)
	return pa, 2 * alpha.InstBytes
}

// TestSyntheticOracleScoresPerfectly is the satellite-(d) positive case:
// when the analysis blames exactly the cause that ground truth confirms,
// precision and recall must both be 1.0.
func TestSyntheticOracleScoresPerfectly(t *testing.T) {
	pa, stallOff := analyzeOracle(t)

	consumer := &pa.Insts[2]
	if consumer.DynStall < 10 {
		t.Fatalf("consumer dynamic stall = %v, want large", consumer.DynStall)
	}
	if len(consumer.Culprits) != 1 || consumer.Culprits[0].Cause != CauseDCache {
		t.Fatalf("culprits = %+v, want exactly one D-cache blame", consumer.Culprits)
	}
	if consumer.Culprits[0].CulpritIndex != 0 {
		t.Errorf("culprit index = %d, want the load at 0", consumer.Culprits[0].CulpritIndex)
	}

	claims := CulpritClaims(pa, 1000)
	if len(claims) != 1 {
		t.Fatalf("claims = %+v, want exactly the consumer's D-cache claim", claims)
	}
	if claims[0].Offset != stallOff || claims[0].Cause != CauseDCache {
		t.Fatalf("claim = %+v, want D-cache at offset %d", claims[0], stallOff)
	}
	wantCyc := consumer.DynStall * consumer.Freq
	if math.Abs(claims[0].Cycles-wantCyc) > 1e-6 {
		t.Errorf("claim cycles = %v, want DynStall*Freq = %v", claims[0].Cycles, wantCyc)
	}

	// Ground truth by construction: halving D-cache latency moves cycles at
	// exactly the stalled instruction, nowhere else.
	truth := []Movement{{Offset: stallOff, Cause: CauseDCache, Cycles: wantCyc}}
	per, total := ScoreClaims(claims, truth)
	if total.Precision() != 1 || total.Recall() != 1 {
		t.Errorf("oracle score P=%v R=%v, want 1.0/1.0 (%+v)", total.Precision(), total.Recall(), total)
	}
	if total.CycleRecall() != 1 {
		t.Errorf("cycle recall = %v, want 1.0", total.CycleRecall())
	}
	s := per[CauseDCache]
	if s.TP != 1 || s.FP != 0 || s.FN != 0 {
		t.Errorf("per-cause D-cache score = %+v, want TP=1 FP=0 FN=0", s)
	}
	if got := CausesOf(per); len(got) != 1 || got[0] != CauseDCache {
		t.Errorf("CausesOf = %v, want [dcache]", got)
	}
}

// TestMisblamedBreakdownIsCaught is the satellite-(d) negative case: a
// deliberately wrong blame — the stall attributed to the I-cache when the
// cycles causally moved with the D-cache — must surface as both a false
// positive (the bogus claim) and a false negative (the missed real cause).
func TestMisblamedBreakdownIsCaught(t *testing.T) {
	pa, stallOff := analyzeOracle(t)
	good := CulpritClaims(pa, 1000)
	bad := make([]Claim, len(good))
	for i, c := range good {
		bad[i] = c
		bad[i].Cause = CauseICache // the deliberate mis-blame
	}
	truth := []Movement{{Offset: stallOff, Cause: CauseDCache, Cycles: good[0].Cycles}}
	per, total := ScoreClaims(bad, truth)
	if total.Precision() != 0 || total.Recall() != 0 {
		t.Errorf("mis-blame scored P=%v R=%v, want 0/0", total.Precision(), total.Recall())
	}
	if per[CauseICache].FP != 1 {
		t.Errorf("bogus I-cache claim not counted as FP: %+v", per[CauseICache])
	}
	if per[CauseDCache].FN != 1 {
		t.Errorf("missed D-cache truth not counted as FN: %+v", per[CauseDCache])
	}
	if total.CycleRecall() != 0 {
		t.Errorf("cycle recall = %v, want 0 for a full miss", total.CycleRecall())
	}

	// Right cause, wrong instruction is caught too.
	shifted := []Claim{{Offset: stallOff + alpha.InstBytes, Cause: CauseDCache, Cycles: 1}}
	_, total = ScoreClaims(shifted, truth)
	if total.TP != 0 || total.FP != 1 || total.FN != 1 {
		t.Errorf("wrong-offset claim scored %+v, want TP=0 FP=1 FN=1", total)
	}
}

// TestCulpritClaimsThreshold: instructions whose stall cycles sit below the
// noise floor must not generate claims.
func TestCulpritClaimsThreshold(t *testing.T) {
	pa, _ := analyzeOracle(t)
	all := CulpritClaims(pa, 0)
	if len(all) == 0 {
		t.Fatal("no claims at zero threshold")
	}
	var maxCyc float64
	for _, c := range all {
		if c.Cycles > maxCyc {
			maxCyc = c.Cycles
		}
	}
	if got := CulpritClaims(pa, maxCyc*2); len(got) != 0 {
		t.Errorf("threshold above every claim still produced %+v", got)
	}
}

// TestScoreClaimsDedup: repeated (offset, cause) pairs on either side count
// once, keeping the largest cycle weight.
func TestScoreClaimsDedup(t *testing.T) {
	claims := []Claim{
		{Offset: 8, Cause: CauseDCache, Cycles: 100},
		{Offset: 8, Cause: CauseDCache, Cycles: 300},
	}
	truth := []Movement{
		{Offset: 8, Cause: CauseDCache, Cycles: 50},
		{Offset: 8, Cause: CauseDCache, Cycles: 200},
	}
	per, total := ScoreClaims(claims, truth)
	if total.TP != 1 || total.FP != 0 || total.FN != 0 {
		t.Errorf("dedup failed: %+v", total)
	}
	s := per[CauseDCache]
	if s.ClaimedCycles != 300 || s.MovedCycles != 200 || s.CaughtCycles != 200 {
		t.Errorf("cycle accounting = %+v, want claimed 300 moved 200 caught 200", s)
	}
}

func TestScoreAccessors(t *testing.T) {
	var z Score
	if z.Precision() != 0 || z.Recall() != 0 || z.CycleRecall() != 0 {
		t.Error("empty score must report 0, not NaN")
	}
	a := Score{TP: 3, FP: 1, FN: 1, ClaimedCycles: 10, MovedCycles: 8, CaughtCycles: 6}
	if a.Precision() != 0.75 || a.Recall() != 0.75 || a.CycleRecall() != 0.75 {
		t.Errorf("accessors: P=%v R=%v CR=%v", a.Precision(), a.Recall(), a.CycleRecall())
	}
	b := a
	b.Add(Score{TP: 1, FN: 3, MovedCycles: 2})
	if b.TP != 4 || b.FN != 4 || b.MovedCycles != 10 {
		t.Errorf("Add: %+v", b)
	}
}
