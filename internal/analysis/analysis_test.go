package analysis

import (
	"math"
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/pipeline"
)

// synthSamples builds a sample map from per-instruction (offset index ->
// samples) pairs for code based at base.
func synthSamples(base uint64, perInst map[int]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for idx, n := range perInst {
		out[base+uint64(idx)*alpha.InstBytes] = n
	}
	return out
}

const loopSrc = `
p:
	lda t0, 0(zero)
.loop:
	addq t0, 1, t0
	ldq t2, 0(t3)
	lda t3, 8(t3)
	cmplt t0, t4, t1
	bne t1, .loop
	ret (ra)
`

func analyzeLoop(t *testing.T, perInst map[int]uint64) *ProcAnalysis {
	t.Helper()
	code := alpha.MustAssemble(loopSrc).Code
	samples := synthSamples(0, perInst)
	return AnalyzeProc("p", code, 0, samples, nil, pipeline.Default(), 1000)
}

// TestFrequencyFromCleanLoop: samples exactly proportional to M for the
// loop body must recover the body frequency.
func TestFrequencyFromCleanLoop(t *testing.T) {
	// Static schedule of the body block (indices 1..5): addq+ldq pair?
	// CanPair(addq, ldq) yes — but ldq reads t3 (no dep on addq) — pair.
	// Compute what the scheduler says rather than assuming.
	code := alpha.MustAssemble(loopSrc).Code
	sched := pipeline.Default().ScheduleBlock(code[1:6])
	// Build samples: body f = 50 samples per M cycle; entry/exit tiny.
	perInst := map[int]uint64{}
	for j, s := range sched {
		perInst[1+j] = uint64(s.M) * 50
	}
	pa := analyzeLoop(t, perInst)
	bodyClass := pa.Graph.BlockClass[pa.Graph.BlockOfInst(1)]
	f := pa.ClassFreq[bodyClass]
	if math.Abs(f-50) > 0.01 {
		t.Errorf("body class freq = %v, want 50", f)
	}
	// Per-instruction frequency scaled by period.
	if got := pa.Insts[1].Freq; math.Abs(got-50*1000) > 1 {
		t.Errorf("inst freq = %v, want 50000", got)
	}
	// CPI of issue points equals their M.
	for j, s := range sched {
		ia := pa.Insts[1+j]
		if s.M > 0 && math.Abs(ia.CPI-float64(s.M)) > 0.01 {
			t.Errorf("inst %d CPI = %v, want %d", 1+j, ia.CPI, s.M)
		}
	}
}

// TestFrequencyIgnoresStalledIssuePoints: one issue point carries a huge
// dynamic stall; cluster selection must not let it inflate the estimate.
func TestFrequencyIgnoresStalledIssuePoints(t *testing.T) {
	code := alpha.MustAssemble(loopSrc).Code
	sched := pipeline.Default().ScheduleBlock(code[1:6])
	perInst := map[int]uint64{}
	issuePoints := 0
	for j, s := range sched {
		perInst[1+j] = uint64(s.M) * 50
		if s.M > 0 {
			issuePoints++
		}
	}
	if issuePoints < 3 {
		t.Skip("need >= 3 issue points for this test")
	}
	// Inflate one issue point by 20x (a dynamic stall).
	for j, s := range sched {
		if s.M > 0 {
			perInst[1+j] *= 20
			break
		}
	}
	pa := analyzeLoop(t, perInst)
	bodyClass := pa.Graph.BlockClass[pa.Graph.BlockOfInst(1)]
	f := pa.ClassFreq[bodyClass]
	if f > 70 {
		t.Errorf("stalled issue point inflated estimate: f = %v", f)
	}
	// The stalled instruction should show a dynamic stall.
	var foundStall bool
	for _, ia := range pa.Insts[1:6] {
		if ia.DynStall > 5 {
			foundStall = true
		}
	}
	if !foundStall {
		t.Error("no dynamic stall detected")
	}
}

// TestPropagationFillsUnsampledBlocks: the exit block gets no samples but
// flow constraints pin its frequency via the loop-exit edge.
func TestPropagationFillsUnsampledBlocks(t *testing.T) {
	code := alpha.MustAssemble(loopSrc).Code
	sched := pipeline.Default().ScheduleBlock(code[1:6])
	perInst := map[int]uint64{}
	for j, s := range sched {
		perInst[1+j] = uint64(s.M) * 200
	}
	perInst[0] = 4 // entry block lightly sampled
	// Exit block (ret, index 6): zero samples.
	pa := analyzeLoop(t, perInst)
	exitBlock := pa.Graph.BlockOfInst(6)
	f := pa.BlockFreq[exitBlock]
	if f < 0 {
		t.Fatal("exit block frequency unknown after propagation")
	}
	entryBlock := pa.Graph.BlockOfInst(0)
	// Entry and exit should agree (both run once per call).
	if pa.BlockFreq[entryBlock] >= 0 && math.Abs(f-pa.BlockFreq[entryBlock]) > 0.6*pa.BlockFreq[entryBlock]+1 {
		t.Errorf("exit freq %v vs entry freq %v", f, pa.BlockFreq[entryBlock])
	}
}

func TestZeroSampleClassesAreZeroFreq(t *testing.T) {
	// Samples only on the entry block: the loop never ran.
	pa := analyzeLoop(t, map[int]uint64{0: 100})
	bodyClass := pa.Graph.BlockClass[pa.Graph.BlockOfInst(1)]
	if f := pa.ClassFreq[bodyClass]; f != 0 {
		t.Errorf("unsampled body freq = %v, want 0", f)
	}
}

func TestConfidenceLevels(t *testing.T) {
	code := alpha.MustAssemble(loopSrc).Code
	sched := pipeline.Default().ScheduleBlock(code[1:6])
	// Clean, plentiful samples: high or medium confidence.
	perInst := map[int]uint64{}
	for j, s := range sched {
		perInst[1+j] = uint64(s.M) * 500
	}
	pa := analyzeLoop(t, perInst)
	bodyClass := pa.Graph.BlockClass[pa.Graph.BlockOfInst(1)]
	if pa.ClassConf[bodyClass] == ConfLow {
		t.Error("clean large class got low confidence")
	}
	// Tiny sample counts: low confidence.
	perInst = map[int]uint64{}
	for j, s := range sched {
		perInst[1+j] = uint64(s.M) * 3
	}
	pa = analyzeLoop(t, perInst)
	if pa.ClassConf[pa.Graph.BlockClass[pa.Graph.BlockOfInst(1)]] != ConfLow {
		t.Error("sparse class should be low confidence")
	}
	if ConfHigh.String() != "high" || ConfMedium.String() != "medium" || ConfLow.String() != "low" {
		t.Error("confidence strings")
	}
}

func TestCulpritRules(t *testing.T) {
	// A block with a load feeding a store (D-cache candidate with culprit),
	// plus enough stall samples to trigger analysis.
	src := `
p:
	ldq t4, 0(t1)
	addq t0, 4, t0
	stq t4, 0(t2)
	cmpult t0, v0, t4
	bne t4, p
`
	code := alpha.MustAssemble(src).Code
	sched := pipeline.Default().ScheduleBlock(code)
	perInst := map[int]uint64{}
	for j, s := range sched {
		perInst[j] = uint64(s.M) * 100
	}
	// Give the stq a big dynamic stall.
	perInst[2] += 5000
	pa := AnalyzeProc("p", code, 0, synthSamples(0, perInst), nil, pipeline.Default(), 1000)

	stq := pa.Insts[2]
	if stq.DynStall < 10 {
		t.Fatalf("stq dynamic stall = %v", stq.DynStall)
	}
	causes := map[Cause]Culprit{}
	for _, c := range stq.Culprits {
		causes[c.Cause] = c
	}
	if c, ok := causes[CauseDCache]; !ok || c.CulpritIndex != 0 {
		t.Errorf("D-cache culprit = %+v, want load at 0", causes[CauseDCache])
	}
	if _, ok := causes[CauseDTB]; !ok {
		t.Error("DTB should be possible for a store")
	}
	if _, ok := causes[CauseWB]; !ok {
		t.Error("write buffer should be possible for a store")
	}
	if _, ok := causes[CauseBranchMP]; ok {
		t.Error("mid-block store cannot stall on mispredict")
	}
	if _, ok := causes[CauseSync]; ok {
		t.Error("store is not a barrier")
	}
}

func TestCulpritICacheSameLineRule(t *testing.T) {
	// Two tiny blocks in the same 32-byte cache line: the second block's
	// head cannot stall on an I-cache miss... unless it starts a line.
	src := `
p:
	beq a0, .x
	nop
.x:
	addq t0, 1, t1
	ret (ra)
`
	code := alpha.MustAssemble(src).Code
	// Place everything within one line (base offset 0, 5 insts = 20B < 32B).
	perInst := map[int]uint64{0: 100, 1: 50, 2: 3000, 3: 50, 4: 50}
	pa := AnalyzeProc("p", code, 0, synthSamples(0, perInst), nil, pipeline.Default(), 1000)
	head := pa.Insts[2] // .x block head
	var hasICache bool
	for _, c := range head.Culprits {
		if c.Cause == CauseICache {
			hasICache = true
		}
	}
	if hasICache {
		t.Error("same-line rule failed to rule out I-cache miss")
	}
	// Mispredict remains possible (conditional predecessor).
	var hasMP bool
	for _, c := range head.Culprits {
		if c.Cause == CauseBranchMP {
			hasMP = true
		}
	}
	if !hasMP {
		t.Error("mispredict should be possible at a conditional join")
	}

	// Same code based at an offset that puts the .x head exactly at a line
	// start: now I-cache is possible.
	base := uint64(32 - 2*alpha.InstBytes) // head (index 2) lands on 32
	pa = AnalyzeProc("p", code, base, synthSamples(base, perInst), nil, pipeline.Default(), 1000)
	hasICache = false
	for _, c := range pa.Insts[2].Culprits {
		if c.Cause == CauseICache {
			hasICache = true
		}
	}
	if !hasICache {
		t.Error("line-start block head should keep I-cache as candidate")
	}
}

func TestCulpritIMissBound(t *testing.T) {
	// With IMISS data present and zero events at the instruction, I-cache
	// is ruled out even at a line start.
	// Two issue points (the ldq and the dependent subq chain) so the
	// cluster heuristic can see the ldq's stall; a lone issue point would
	// be absorbed into the frequency estimate (paper §6.1.3, challenge 1).
	src := `
p:
	ldq t0, 0(t1)
	addq t2, 1, t3
	subq t3, 1, t4
	ret (ra)
`
	code := alpha.MustAssemble(src).Code
	perInst := map[int]uint64{0: 5000, 1: 0, 2: 100, 3: 0}
	imiss := map[uint64]uint64{} // collected, but empty
	pa := AnalyzeProc("p", code, 0, synthSamples(0, perInst), imiss, pipeline.Default(), 1000)
	for _, c := range pa.Insts[0].Culprits {
		if c.Cause == CauseICache {
			t.Error("zero IMISS events should rule out I-cache")
		}
	}
	// With events present, the candidate carries a bound.
	imiss[0] = 10
	pa = AnalyzeProc("p", code, 0, synthSamples(0, perInst), imiss, pipeline.Default(), 1000)
	var bound float64 = -2
	for _, c := range pa.Insts[0].Culprits {
		if c.Cause == CauseICache {
			bound = c.BoundCycles
		}
	}
	if bound <= 0 {
		t.Errorf("I-cache bound = %v, want positive bound", bound)
	}
}

func TestCulpritFU(t *testing.T) {
	src := `
p:
	mulq t0, t1, t2
	mulq t3, t4, t5
	ret (ra)
`
	code := alpha.MustAssemble(src).Code
	sched := pipeline.Default().ScheduleBlock(code)
	perInst := map[int]uint64{}
	for j, s := range sched {
		perInst[j] = uint64(s.M) * 100
	}
	perInst[1] += 3000 // extra dynamic stall on the second multiply
	pa := AnalyzeProc("p", code, 0, synthSamples(0, perInst), nil, pipeline.Default(), 1000)
	var fu bool
	for _, c := range pa.Insts[1].Culprits {
		if c.Cause == CauseFUMul && c.CulpritIndex == 0 {
			fu = true
		}
	}
	if !fu {
		t.Errorf("FU culprit missing: %+v", pa.Insts[1].Culprits)
	}
}

func TestSummaryAccounting(t *testing.T) {
	code := alpha.MustAssemble(loopSrc).Code
	sched := pipeline.Default().ScheduleBlock(code[1:6])
	perInst := map[int]uint64{}
	for j, s := range sched {
		perInst[1+j] = uint64(s.M) * 100
	}
	perInst[2] += 2000 // dynamic stall on the load consumer
	pa := analyzeLoop(t, perInst)
	s := pa.Summary
	if s.TotalSamples == 0 {
		t.Fatal("no samples in summary")
	}
	// Execution + static + dynamic should account for roughly everything.
	static := s.SubtotalStatic()
	covered := s.Execution + static + s.DynTotal
	if covered < 0.9 || covered > 1.1 {
		t.Errorf("accounted fraction = %v (exec %v, static %v, dyn %v)",
			covered, s.Execution, static, s.DynTotal)
	}
	// Min bounds never exceed max bounds.
	for c := Cause(0); c < NumCauses; c++ {
		if s.DynMin[c] > s.DynMax[c]+1e-9 {
			t.Errorf("%v: min %v > max %v", c, s.DynMin[c], s.DynMax[c])
		}
	}
}

func TestBestAndActualCPI(t *testing.T) {
	// The paper's Figure 2 block as a straight loop; clean samples give
	// actual == best-case.
	src := `
loop:
	ldq   t4, 0(t1)
	addq  t0, 0x4, t0
	ldq   t5, 8(t1)
	ldq   t6, 16(t1)
	ldq   a0, 24(t1)
	lda   t1, 32(t1)
	stq   t4, 0(t2)
	cmpult t0, v0, t4
	stq   t5, 8(t2)
	stq   t6, 16(t2)
	stq   a0, 24(t2)
	lda   t2, 32(t2)
	bne   t4, loop
`
	code := alpha.MustAssemble(src).Code
	sched := pipeline.Default().ScheduleBlock(code)
	perInst := map[int]uint64{}
	for j, s := range sched {
		perInst[j] = uint64(s.M) * 100
	}
	pa := AnalyzeProc("copy", code, 0, synthSamples(0, perInst), nil, pipeline.Default(), 1000)
	if math.Abs(pa.BestCaseCPI-8.0/13.0) > 0.01 {
		t.Errorf("best-case CPI = %v, want 0.615", pa.BestCaseCPI)
	}
	if math.Abs(pa.ActualCPI-pa.BestCaseCPI) > 0.05 {
		t.Errorf("actual CPI = %v, want ≈ best case for clean samples", pa.ActualCPI)
	}
	// Now add the paper's dynamic stalls on the stores.
	perInst[6] += 2700
	perInst[10] += 17000
	pa = AnalyzeProc("copy", code, 0, synthSamples(0, perInst), nil, pipeline.Default(), 1000)
	if pa.ActualCPI < 2 {
		t.Errorf("actual CPI = %v, want >> best case with store stalls", pa.ActualCPI)
	}
	if pa.Summary.DynMax[CauseWB] == 0 {
		t.Error("write-buffer share missing from summary")
	}
	if pa.Summary.DynMax[CauseDCache] == 0 {
		t.Error("D-cache share missing from summary")
	}
}

func TestCauseStringsAndLetters(t *testing.T) {
	seen := map[byte]bool{}
	for c := Cause(0); c < NumCauses; c++ {
		if c.String() == "" {
			t.Errorf("cause %d has no name", c)
		}
		l := c.Letter()
		if l == '?' && c != CauseOther {
			t.Errorf("cause %v has no letter", c)
		}
		if seen[l] {
			t.Errorf("duplicate letter %c", l)
		}
		seen[l] = true
	}
}

func TestEmptyProcedure(t *testing.T) {
	pa := AnalyzeProc("empty", nil, 0, nil, nil, pipeline.Default(), 1000)
	if pa.Summary.TotalSamples != 0 || len(pa.Insts) != 0 {
		t.Error("empty procedure should produce empty analysis")
	}
}
