package analysis

// Causal scoring of the culprit analysis (the what-if engine's test oracle).
//
// The §6 analysis blames dynamic stalls on causes by elimination — "guilty
// until proven innocent" — because DCPI on real hardware could never re-run
// the workload on a different machine. The simulator can: perturb one
// hardware parameter, re-run, and the per-instruction cycles that move are
// *causal* ground truth for the cause that parameter targets. This file
// turns a ProcAnalysis into scoreable claims and scores a claim set against
// a movement set, yielding the precision/recall the what-if engine reports
// (cmd/dcpiwhatif, docs/WHATIF.md).

import "sort"

// Claim is one culprit blame extracted from the analysis: "the instruction
// at Offset stalls, and Cause may be responsible". Cycles estimates the
// total dynamic-stall cycles behind the blame over the profiled interval
// (per-execution stall x estimated frequency), which lets scoring weight
// big blames over noise.
type Claim struct {
	Offset uint64 // image byte offset of the stalled instruction
	Cause  Cause
	Cycles float64
}

// CulpritClaims flattens pa's per-instruction culprit lists into claims.
// Instructions whose total dynamic-stall cycles fall below minCycles are
// skipped — they are within sampling noise and scoring them would punish
// the analysis for refusing to over-interpret noise. One claim is emitted
// per (instruction, cause) pair; an instruction with several surviving
// culprits claims each of them (the analysis reports possible causes, and
// scoring's precision term is what penalizes over-claiming).
func CulpritClaims(pa *ProcAnalysis, minCycles float64) []Claim {
	var out []Claim
	for i := range pa.Insts {
		ia := &pa.Insts[i]
		if ia.DynStall <= 0 || ia.Freq <= 0 {
			continue
		}
		cyc := ia.DynStall * ia.Freq
		if cyc < minCycles {
			continue
		}
		for _, c := range ia.Culprits {
			out = append(out, Claim{Offset: ia.Offset, Cause: c.Cause, Cycles: cyc})
		}
	}
	return out
}

// Movement is causal ground truth for one instruction: perturbing the
// hardware parameter that targets Cause moved Cycles of this instruction's
// time (in the direction the perturbation predicts).
type Movement struct {
	Offset uint64
	Cause  Cause
	Cycles float64
}

// Score counts how a claim set fared against causal ground truth for one
// cause (or in aggregate).
type Score struct {
	TP int // claimed and the cycles really moved there
	FP int // claimed, but perturbing the cause moved nothing there
	FN int // cycles moved there, but the analysis never blamed the cause

	ClaimedCycles float64 // stall cycles behind all claims
	MovedCycles   float64 // ground-truth cycles that moved
	CaughtCycles  float64 // moved cycles at claimed instructions
}

// Precision is TP/(TP+FP): of the (instruction, cause) blames made, the
// fraction causally confirmed.
func (s Score) Precision() float64 {
	if s.TP+s.FP == 0 {
		return 0
	}
	return float64(s.TP) / float64(s.TP+s.FP)
}

// Recall is TP/(TP+FN): of the (instruction, cause) pairs whose cycles
// really moved, the fraction the analysis blamed.
func (s Score) Recall() float64 {
	if s.TP+s.FN == 0 {
		return 0
	}
	return float64(s.TP) / float64(s.TP+s.FN)
}

// CycleRecall weighs recall by cycles instead of claim count: the fraction
// of moved cycles that occurred at instructions the analysis blamed.
func (s Score) CycleRecall() float64 {
	if s.MovedCycles == 0 {
		return 0
	}
	return s.CaughtCycles / s.MovedCycles
}

// Add folds another score into s.
func (s *Score) Add(o Score) {
	s.TP += o.TP
	s.FP += o.FP
	s.FN += o.FN
	s.ClaimedCycles += o.ClaimedCycles
	s.MovedCycles += o.MovedCycles
	s.CaughtCycles += o.CaughtCycles
}

type claimKey struct {
	off   uint64
	cause Cause
}

// ScoreClaims scores a claim set against causal ground truth, matching on
// (instruction offset, cause). It returns per-cause scores (only for causes
// present in either set) and their aggregate. Offsets must come from the
// same image namespace on both sides; callers scoring several images score
// each separately and Add the totals.
func ScoreClaims(claims []Claim, truth []Movement) (map[Cause]Score, Score) {
	claimed := make(map[claimKey]float64, len(claims))
	for _, c := range claims {
		if c.Cycles > claimed[claimKey{c.Offset, c.Cause}] {
			claimed[claimKey{c.Offset, c.Cause}] = c.Cycles
		}
	}
	moved := make(map[claimKey]float64, len(truth))
	for _, m := range truth {
		if m.Cycles > moved[claimKey{m.Offset, m.Cause}] {
			moved[claimKey{m.Offset, m.Cause}] = m.Cycles
		}
	}

	per := make(map[Cause]Score)
	for k, cyc := range claimed {
		s := per[k.cause]
		s.ClaimedCycles += cyc
		if mv, ok := moved[k]; ok {
			s.TP++
			s.CaughtCycles += mv
		} else {
			s.FP++
		}
		per[k.cause] = s
	}
	for k, cyc := range moved {
		s := per[k.cause]
		s.MovedCycles += cyc
		if _, ok := claimed[k]; !ok {
			s.FN++
		}
		per[k.cause] = s
	}

	var total Score
	for _, s := range per {
		total.Add(s)
	}
	return per, total
}

// CausesOf returns the causes present in a per-cause score map in enum
// order, for stable report rendering.
func CausesOf(per map[Cause]Score) []Cause {
	out := make([]Cause, 0, len(per))
	for c := range per {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
