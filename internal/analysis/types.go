// Package analysis converts time-biased CYCLES samples into per-instruction
// execution frequencies, CPIs, and stall explanations — the paper's §6 data
// analysis subsystem. Phase one estimates frequency and CPI from sample
// counts, equivalence classes, and a static pipeline model; phase two
// identifies culprits for dynamic stalls by eliminating impossible causes
// ("guilty until proven innocent").
package analysis

import (
	"dcpi/internal/alpha"
	"dcpi/internal/cfg"
	"dcpi/internal/pipeline"
)

// Confidence predicts the accuracy of a frequency estimate (paper §6.1.5).
type Confidence uint8

const (
	ConfLow Confidence = iota
	ConfMedium
	ConfHigh
)

func (c Confidence) String() string {
	switch c {
	case ConfHigh:
		return "high"
	case ConfMedium:
		return "medium"
	}
	return "low"
}

// Cause is a dynamic-stall culprit category, matching dcpicalc's bubble
// annotations and summary rows.
type Cause uint8

const (
	CauseICache   Cause = iota // i: I-cache (not ITB) miss
	CauseITB                   // t: ITB/I-cache miss
	CauseDCache                // d: D-cache miss
	CauseDTB                   // D: DTB miss
	CauseWB                    // w: write-buffer overflow
	CauseBranchMP              // p: branch mispredict
	CauseSync                  // b: memory barrier
	CauseFUMul                 // m: integer multiplier busy
	CauseFUDiv                 // f: FP divider busy
	CauseOther                 // unexplained

	NumCauses
)

func (c Cause) String() string {
	switch c {
	case CauseICache:
		return "I-cache (not ITB)"
	case CauseITB:
		return "ITB/I-cache miss"
	case CauseDCache:
		return "D-cache miss"
	case CauseDTB:
		return "DTB miss"
	case CauseWB:
		return "Write buffer"
	case CauseBranchMP:
		return "Branch mispredict"
	case CauseSync:
		return "Synchronization"
	case CauseFUMul:
		return "IMULL busy"
	case CauseFUDiv:
		return "FDIV busy"
	}
	return "Other"
}

// Letter returns the single-character bubble annotation used in dcpicalc
// listings (Figure 2: "dwD" = D-cache miss, write buffer, DTB miss).
func (c Cause) Letter() byte {
	switch c {
	case CauseICache:
		return 'i'
	case CauseITB:
		return 't'
	case CauseDCache:
		return 'd'
	case CauseDTB:
		return 'D'
	case CauseWB:
		return 'w'
	case CauseBranchMP:
		return 'p'
	case CauseSync:
		return 'b'
	case CauseFUMul:
		return 'm'
	case CauseFUDiv:
		return 'f'
	}
	return '?'
}

// Culprit is one possible explanation for a dynamic stall.
type Culprit struct {
	Cause Cause
	// CulpritIndex is the procedure-relative instruction index of the
	// instruction that may have caused the stall (e.g. the load feeding a
	// stalled store), or -1.
	CulpritIndex int
	// BoundCycles is an upper bound on the stall cycles this cause can
	// account for per execution, or -1 when unbounded. Event samples
	// (IMISS) tighten these bounds (paper §6.3).
	BoundCycles float64
}

// InstAnalysis is the per-instruction analysis result.
type InstAnalysis struct {
	Index   int    // procedure-relative instruction index
	Offset  uint64 // byte offset within the image
	Inst    alpha.Inst
	Samples uint64 // CYCLES samples at this instruction

	// Freq is the estimated number of executions during the profiled
	// interval; Confidence qualifies it.
	Freq       float64
	Confidence Confidence

	// CPI is the average cycles this instruction spent at the head of the
	// issue queue per execution (0 for dual-issued second-slot
	// instructions).
	CPI float64

	// M and static schedule data come from the shared pipeline model.
	M            int64
	Paired       bool
	SlotHazard   bool
	StaticStalls []pipeline.StaticStall

	// DynStall is the estimated dynamic stall in cycles per execution
	// (CPI - M when positive).
	DynStall float64
	// Culprits lists the possible causes for DynStall (empty means
	// unexplained).
	Culprits []Culprit
}

// ProcAnalysis is the complete analysis of one procedure.
type ProcAnalysis struct {
	Name       string
	BaseOffset uint64
	Graph      *cfg.Graph
	Model      pipeline.Model
	Period     float64 // average sampling period in cycles

	Insts []InstAnalysis

	// ClassFreq is the estimated frequency (executions over the profiled
	// interval) of each equivalence class; negative means unknown.
	ClassFreq []float64
	ClassConf []Confidence
	EdgeFreq  []float64 // per CFG edge; negative means unknown
	BlockFreq []float64 // per block; negative means unknown
	// EdgeSampleCounts holds double-sampling pairs attributed to each CFG
	// edge (nil unless §7 edge samples were supplied).
	EdgeSampleCounts []uint64
	// ClusterLo/ClusterHi record, per class, the ratio range the frequency
	// heuristic averaged over (both zero when the class used a fallback);
	// dcpicalc's Figure 7 view marks the issue points inside the range.
	ClusterLo, ClusterHi []float64
	// SourceLines, when non-nil, holds per-instruction source line numbers
	// (dcpicalc shows them when the image has line information). Callers
	// attach it; the analysis itself does not need it.
	SourceLines []int

	// BestCaseCPI and ActualCPI are the Figure 2 header numbers.
	BestCaseCPI float64
	ActualCPI   float64

	Summary Summary
}

// Summary aggregates where the procedure's cycles went, as percentages of
// total samples (the paper's Figure 4).
type Summary struct {
	TotalSamples uint64

	// DynMin/DynMax bound each dynamic cause's share (fractions, 0..1).
	DynMin [NumCauses]float64
	DynMax [NumCauses]float64

	// Static shares by stall kind (fractions).
	Static map[pipeline.StallKind]float64

	// UnexplainedStall is dynamic stall with every candidate ruled out;
	// UnexplainedGain is observed time below the static minimum.
	UnexplainedStall float64
	UnexplainedGain  float64

	// Execution is the fraction spent issuing instructions.
	Execution float64

	// DynTotal is the overall dynamic-stall fraction (including
	// unexplained stall, net of unexplained gain) — Figure 4's "Subtotal
	// dynamic". The per-cause ranges above bound how it divides.
	DynTotal float64
}

// SubtotalStatic returns the static-stall share.
func (s *Summary) SubtotalStatic() float64 {
	var t float64
	for _, v := range s.Static {
		t += v
	}
	return t
}
