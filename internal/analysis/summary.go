package analysis

import (
	"math"

	"dcpi/internal/pipeline"
)

// summarize aggregates instruction-level results into the Figure 4
// procedure summary: execution, static stalls by kind, dynamic-stall ranges
// by cause, and unexplained stall/gain, all as fractions of total samples.
//
// Accounting (sample units, S ≈ f·C): each head instruction contributes
// f·1 issue cycle to execution — except pure slot-hazard heads, whose issue
// cycle would have been free under better slotting and is charged to
// Slotting; f·(M-1) goes to static stalls, split proportionally among the
// recorded reasons; S - f·M is dynamic stall (or gain when negative),
// bounded per cause by the culprit analysis.
func (pa *ProcAnalysis) summarize() {
	s := &pa.Summary
	s.Static = make(map[pipeline.StallKind]float64)

	var total float64
	for i := range pa.Insts {
		total += float64(pa.Insts[i].Samples)
	}
	s.TotalSamples = uint64(total)
	if total == 0 {
		return
	}

	for i := range pa.Insts {
		ia := &pa.Insts[i]
		f := ia.Freq / pa.Period // samples-per-cycle weight
		if f <= 0 {
			if ia.Samples > 0 {
				// Sampled but estimated never-executed: fully unexplained.
				s.UnexplainedStall += float64(ia.Samples)
				s.DynTotal += float64(ia.Samples)
			}
			continue
		}

		if ia.M >= 1 {
			slotOnly := ia.SlotHazard && ia.M == 1
			if slotOnly {
				s.Static[pipeline.StallSlotting] += f
			} else {
				s.Execution += f
			}
		}
		if staticStall := float64(ia.M - 1); staticStall > 0 {
			var recorded float64
			for _, st := range ia.StaticStalls {
				if st.Kind != pipeline.StallSlotting {
					recorded += float64(st.Cycles)
				}
			}
			if recorded > 0 {
				for _, st := range ia.StaticStalls {
					if st.Kind != pipeline.StallSlotting {
						s.Static[st.Kind] += f * staticStall * float64(st.Cycles) / recorded
					}
				}
			} else {
				s.Static[pipeline.StallSlotting] += f * staticStall
			}
		}

		dyn := float64(ia.Samples) - f*float64(ia.M)
		switch {
		case dyn > 0:
			s.DynTotal += dyn
			if len(ia.Culprits) == 0 {
				s.UnexplainedStall += dyn
				break
			}
			for _, c := range ia.Culprits {
				share := dyn
				if c.BoundCycles >= 0 {
					share = math.Min(dyn, c.BoundCycles*f)
				}
				s.DynMax[c.Cause] += share
			}
			if len(ia.Culprits) == 1 {
				s.DynMin[ia.Culprits[0].Cause] += dyn
			}
		case dyn < 0:
			s.UnexplainedGain += -dyn
			s.DynTotal += dyn
		}
	}

	// Normalize to fractions of total samples.
	inv := 1 / total
	s.Execution *= inv
	s.UnexplainedStall *= inv
	s.UnexplainedGain *= inv
	s.DynTotal *= inv
	for k := range s.Static {
		s.Static[k] *= inv
	}
	for c := Cause(0); c < NumCauses; c++ {
		s.DynMin[c] *= inv
		s.DynMax[c] *= inv
	}
}
