package analysis

import (
	"math"
	"sort"

	"dcpi/internal/alpha"
	"dcpi/internal/cfg"
	"dcpi/internal/pipeline"
)

// Tunables for the frequency heuristic (paper §6.1.3).
const (
	// clusterSpread: a cluster is a set of issue-point ratios whose maximum
	// is at most clusterSpread times its minimum.
	clusterSpread = 1.5
	// minClusterFrac: a cluster must contain at least this fraction of the
	// class's issue points (and at least one) or it is discarded.
	minClusterFrac = 0.25
	// lowSampleThreshold: classes with fewer total samples use the pooled
	// ΣS/ΣM estimate instead of cluster averaging.
	lowSampleThreshold = 60
	// maxReasonableStall: a cluster whose frequency estimate implies a
	// stall longer than this (cycles) for some instruction in the class is
	// considered anomalous and discarded.
	maxReasonableStall = 2000
)

// Inputs carries the sample data for one procedure's analysis.
type Inputs struct {
	// Samples holds CYCLES samples keyed by image byte offset.
	Samples map[uint64]uint64
	// IMissEvents holds estimated I-cache-miss event counts per offset
	// (IMISS samples scaled by their period); nil when not collected.
	IMissEvents map[uint64]uint64
	// EdgeSamples holds double-sampling edge samples (paper §7), keyed by
	// packed (fromOffset<<32 | toOffset) image offsets; nil when the
	// prototype was not enabled.
	EdgeSamples map[uint64]uint64
	// DTBEvents holds estimated data-TLB miss event counts per offset (the
	// DTBMISS samples §3.2 mentions); nil when not collected. Because the
	// event's delivery is skewed, the rule-out is procedure-granular.
	DTBEvents map[uint64]uint64
}

// AnalyzeProc runs the full analysis of one procedure.
//
//   - code, baseOffset: the procedure's instructions and their byte offset
//     within the image;
//   - samples: CYCLES samples keyed by image byte offset;
//   - imiss: IMISS event estimates keyed by image byte offset (nil when the
//     imiss event was not collected);
//   - model: the machine model shared with the simulator;
//   - period: the average sampling period in cycles.
func AnalyzeProc(name string, code []alpha.Inst, baseOffset uint64,
	samples, imiss map[uint64]uint64, model pipeline.Model, period float64) *ProcAnalysis {
	return AnalyzeProcInputs(name, code, baseOffset,
		Inputs{Samples: samples, IMissEvents: imiss}, model, period)
}

// AnalyzeProcInputs is AnalyzeProc with the full input set, including
// double-sampling edge samples.
func AnalyzeProcInputs(name string, code []alpha.Inst, baseOffset uint64,
	in Inputs, model pipeline.Model, period float64) *ProcAnalysis {

	pa := &ProcAnalysis{
		Name:       name,
		BaseOffset: baseOffset,
		Graph:      cfg.Build(code, baseOffset),
		Model:      model,
		Period:     period,
	}
	pa.schedule(code)
	pa.attachSamples(in.Samples)
	pa.estimateFrequencies()
	pa.mapEdgeSamples(in.EdgeSamples)
	pa.propagate()
	pa.finishInstEstimates()
	pa.identifyCulprits(in.IMissEvents, in.DTBEvents)
	pa.summarize()
	return pa
}

// mapEdgeSamples attributes double-sampling pairs to CFG edges: a pair
// (a, b) counts for edge A->B when a lies in block A and b is the head of a
// different block B that A flows to (or A's own head, for a back edge).
// The per-edge counts let propagation split a known block frequency across
// otherwise-undetermined successor edges.
func (pa *ProcAnalysis) mapEdgeSamples(edges map[uint64]uint64) {
	if len(edges) == 0 {
		return
	}
	g := pa.Graph
	lo := pa.BaseOffset
	hi := pa.BaseOffset + uint64(len(pa.Insts))*alpha.InstBytes
	pa.EdgeSampleCounts = make([]uint64, len(g.Edges))
	for key, n := range edges {
		fromOff := key >> 32
		toOff := key & 0xffffffff
		if fromOff < lo || fromOff >= hi || toOff < lo || toOff >= hi {
			continue
		}
		a := int(fromOff-lo) / alpha.InstBytes
		b := int(toOff-lo) / alpha.InstBytes
		ba, bb := g.BlockOfInst(a), g.BlockOfInst(b)
		if bb != ba || b == g.Blocks[bb].Start {
			// Find the CFG edge A->B.
			for _, ei := range g.Blocks[ba].Succs {
				e := g.Edges[ei]
				if e.To == bb && b == g.Blocks[bb].Start {
					pa.EdgeSampleCounts[ei] += n
					break
				}
			}
		}
	}
}

// schedule runs the static pipeline model over each basic block.
func (pa *ProcAnalysis) schedule(code []alpha.Inst) {
	pa.Insts = make([]InstAnalysis, len(code))
	for i := range code {
		pa.Insts[i] = InstAnalysis{
			Index:  i,
			Offset: pa.BaseOffset + uint64(i)*alpha.InstBytes,
			Inst:   code[i],
			Freq:   -1,
		}
	}
	for bi := range pa.Graph.Blocks {
		b := &pa.Graph.Blocks[bi]
		// Memoized: the same blocks are rescheduled for every analyzed run
		// of the same image, and the schedule depends only on the model and
		// the block's code. The shared result is copied below (values only).
		sched := pa.Model.ScheduleBlockCached(code[b.Start:b.End])
		for j, s := range sched {
			ia := &pa.Insts[b.Start+j]
			ia.M = s.M
			ia.Paired = s.Paired
			ia.SlotHazard = s.SlotHazard
			// Rebase culprit indices from block-relative to
			// procedure-relative.
			for _, st := range s.Stalls {
				if st.Culprit >= 0 {
					st.Culprit += b.Start
				}
				ia.StaticStalls = append(ia.StaticStalls, st)
			}
		}
	}
}

func (pa *ProcAnalysis) attachSamples(samples map[uint64]uint64) {
	for i := range pa.Insts {
		pa.Insts[i].Samples = samples[pa.Insts[i].Offset]
	}
}

// issueRatio computes the frequency-estimate ratio for the issue point at
// instruction index i, applying the paper's dependency-window refinement:
// when i statically depends on an earlier instruction j in its block, use
// Σ(S)/Σ(M) over (j, i] so dynamic stalls that overlap the dependency
// latency do not bias the estimate low.
func (pa *ProcAnalysis) issueRatio(blockStart, i int) (ratio float64, ok bool) {
	ia := &pa.Insts[i]
	j := -1
	for _, st := range ia.StaticStalls {
		if st.Culprit > j && st.Culprit >= blockStart && st.Culprit < i {
			j = st.Culprit
		}
	}
	var sumS, sumM uint64
	start := i
	if j >= 0 {
		start = j + 1
	}
	for k := start; k <= i; k++ {
		sumS += pa.Insts[k].Samples
		sumM += uint64(pa.Insts[k].M)
	}
	if sumM == 0 {
		return 0, false
	}
	return float64(sumS) / float64(sumM), true
}

// estimateFrequencies runs the per-class heuristic of §6.1.3. Frequencies
// are expressed in samples-per-cycle units (f such that Sᵢ ≈ f·Cᵢ); the
// execution-count scale (f·period) is applied in finishInstEstimates.
func (pa *ProcAnalysis) estimateFrequencies() {
	g := pa.Graph
	pa.ClassFreq = make([]float64, g.NumClasses)
	pa.ClassConf = make([]Confidence, g.NumClasses)
	pa.ClusterLo = make([]float64, g.NumClasses)
	pa.ClusterHi = make([]float64, g.NumClasses)
	for i := range pa.ClassFreq {
		pa.ClassFreq[i] = -1
	}

	type classData struct {
		ratios []float64
		sumS   uint64
		sumM   uint64
		maxS   uint64 // largest per-instruction sample count in the class
	}
	classes := make([]classData, g.NumClasses)

	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		class := g.BlockClass[bi]
		cd := &classes[class]
		for i := b.Start; i < b.End; i++ {
			ia := &pa.Insts[i]
			cd.sumS += ia.Samples
			cd.sumM += uint64(ia.M)
			if ia.Samples > cd.maxS {
				cd.maxS = ia.Samples
			}
			if ia.M > 0 { // an issue point
				if r, ok := pa.issueRatio(b.Start, i); ok {
					cd.ratios = append(cd.ratios, r)
				}
			}
		}
	}

	for ci := range classes {
		cd := &classes[ci]
		if cd.sumM == 0 {
			continue // no instructions (edge-only class): propagation only
		}
		if cd.sumS == 0 {
			// Never sampled: with enough instructions this is evidence the
			// class rarely or never executes.
			pa.ClassFreq[ci] = 0
			pa.ClassConf[ci] = ConfMedium
			if cd.sumM >= 8 {
				pa.ClassConf[ci] = ConfHigh
			}
			continue
		}
		if cd.sumS < lowSampleThreshold || len(cd.ratios) == 0 {
			// Low-sample fallback: pool the whole class (paper: "we
			// estimate F as ΣSᵢ/ΣMᵢ ... generally improves the estimate").
			pa.ClassFreq[ci] = float64(cd.sumS) / float64(cd.sumM)
			pa.ClassConf[ci] = ConfLow
			continue
		}
		f, lo, hi, conf := pa.clusterEstimate(cd.ratios, cd.maxS)
		if f < 0 {
			f = float64(cd.sumS) / float64(cd.sumM)
			conf = ConfLow
		} else {
			pa.ClusterLo[ci], pa.ClusterHi[ci] = lo, hi
		}
		pa.ClassFreq[ci] = f
		pa.ClassConf[ci] = conf
	}
}

// clusterEstimate picks the cluster of smallest ratios that is large enough
// and does not imply an unreasonable stall, and returns its mean plus the
// selected ratio range.
func (pa *ProcAnalysis) clusterEstimate(ratios []float64, maxS uint64) (float64, float64, float64, Confidence) {
	sorted := append([]float64(nil), ratios...)
	sort.Float64s(sorted)
	n := len(sorted)
	minPts := int(math.Ceil(minClusterFrac * float64(n)))
	if minPts < 1 {
		minPts = 1
	}

	for start := 0; start < n; start++ {
		lo := sorted[start]
		if lo <= 0 {
			continue
		}
		end := start
		for end < n && sorted[end] <= clusterSpread*lo {
			end++
		}
		size := end - start
		if size < minPts {
			continue
		}
		var sum float64
		for _, r := range sorted[start:end] {
			sum += r
		}
		f := sum / float64(size)
		// Reject clusters implying an absurd stall somewhere in the class.
		if f > 0 && float64(maxS)/f > maxReasonableStall {
			continue
		}
		conf := ConfLow
		tight := sorted[end-1] <= 1.2*lo
		switch {
		case size >= 3 && tight:
			conf = ConfHigh
		case size >= 2:
			conf = ConfMedium
		}
		return f, lo, sorted[end-1], conf
	}
	return -1, 0, 0, ConfLow
}

// propagate applies the flow constraints of §6.1.4: every block's frequency
// equals the sum of its incoming edges and the sum of its outgoing edges.
// Whenever a block or edge gains an estimate it is immediately shared with
// its whole equivalence class; negative solutions clamp to zero.
func (pa *ProcAnalysis) propagate() {
	g := pa.Graph
	nb, ne := len(g.Blocks), len(g.Edges)
	pa.BlockFreq = make([]float64, nb)
	pa.EdgeFreq = make([]float64, ne)
	for i := range pa.BlockFreq {
		pa.BlockFreq[i] = -1
	}
	for i := range pa.EdgeFreq {
		pa.EdgeFreq[i] = -1
	}

	setClass := func(class int, v float64, conf Confidence) {
		if pa.ClassFreq[class] < 0 {
			pa.ClassFreq[class] = v
			pa.ClassConf[class] = conf
		}
	}
	// Seed from class estimates.
	sync := func() bool {
		changed := false
		for bi := range g.Blocks {
			if f := pa.ClassFreq[g.BlockClass[bi]]; f >= 0 && pa.BlockFreq[bi] < 0 {
				pa.BlockFreq[bi] = f
				changed = true
			}
		}
		for ei := range g.Edges {
			if f := pa.ClassFreq[g.EdgeClass[ei]]; f >= 0 && pa.EdgeFreq[ei] < 0 {
				pa.EdgeFreq[ei] = f
				changed = true
			}
		}
		return changed
	}
	sync()

	// Double sampling: split a known block frequency across its successor
	// edges in proportion to measured edge samples (§7's "edge samples
	// should prove valuable for analysis").
	applyEdgeSamples := func() bool {
		if pa.EdgeSampleCounts == nil {
			return false
		}
		changed := false
		const minEdgePairs = 4
		for bi := range g.Blocks {
			bf := pa.BlockFreq[bi]
			if bf < 0 {
				continue
			}
			var total uint64
			unknown := 0
			for _, ei := range g.Blocks[bi].Succs {
				total += pa.EdgeSampleCounts[ei]
				if pa.EdgeFreq[ei] < 0 {
					unknown++
				}
			}
			if unknown == 0 || total < minEdgePairs {
				continue
			}
			for _, ei := range g.Blocks[bi].Succs {
				if pa.EdgeFreq[ei] < 0 {
					v := bf * float64(pa.EdgeSampleCounts[ei]) / float64(total)
					pa.EdgeFreq[ei] = v
					setClass(g.EdgeClass[ei], v, ConfLow)
					changed = true
				}
			}
		}
		return changed
	}

	for round := 0; round < nb+ne+8; round++ {
		changed := applyEdgeSamples()
		for bi := range g.Blocks {
			b := &g.Blocks[bi]
			for _, side := range [2][]int{b.Preds, b.Succs} {
				known := 0.0
				unknown := -1
				for _, ei := range side {
					if f := pa.EdgeFreq[ei]; f >= 0 {
						known += f
					} else if unknown < 0 {
						unknown = ei
					} else {
						unknown = -2 // more than one unknown
					}
				}
				switch {
				case unknown == -1 && pa.BlockFreq[bi] < 0:
					pa.BlockFreq[bi] = known
					setClass(g.BlockClass[bi], known, ConfLow)
					changed = true
				case unknown >= 0 && pa.BlockFreq[bi] >= 0:
					v := pa.BlockFreq[bi] - known
					if v < 0 {
						v = 0 // flow equations on estimates can go negative
					}
					pa.EdgeFreq[unknown] = v
					setClass(g.EdgeClass[unknown], v, ConfLow)
					changed = true
				}
			}
		}
		if sync() {
			changed = true
		}
		if !changed {
			break
		}
	}

	// Anything still unknown defaults to zero so downstream math is sane.
	for bi := range pa.BlockFreq {
		if pa.BlockFreq[bi] < 0 {
			pa.BlockFreq[bi] = 0
		}
	}
	for ei := range pa.EdgeFreq {
		if pa.EdgeFreq[ei] < 0 {
			pa.EdgeFreq[ei] = 0
		}
	}
	for ci := range pa.ClassFreq {
		if pa.ClassFreq[ci] < 0 {
			pa.ClassFreq[ci] = 0
		}
	}
}

// finishInstEstimates converts class frequencies into per-instruction
// execution counts and CPIs.
func (pa *ProcAnalysis) finishInstEstimates() {
	g := pa.Graph
	var totalSamples, weightedM, execWeight float64
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		f := pa.BlockFreq[bi]
		conf := pa.ClassConf[g.BlockClass[bi]]
		for i := b.Start; i < b.End; i++ {
			ia := &pa.Insts[i]
			ia.Freq = f * pa.Period
			ia.Confidence = conf
			if f > 0 {
				ia.CPI = float64(ia.Samples) / f
			} else if ia.Samples > 0 {
				ia.CPI = math.Inf(1)
			}
			dyn := ia.CPI - float64(ia.M)
			if f > 0 && !math.IsInf(ia.CPI, 1) {
				ia.DynStall = dyn
			}
			totalSamples += float64(ia.Samples)
			weightedM += f * float64(ia.M)
			execWeight += f
		}
	}
	if execWeight > 0 {
		pa.BestCaseCPI = weightedM / execWeight
		pa.ActualCPI = totalSamples / execWeight
	}
}
