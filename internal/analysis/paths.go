package analysis

// Ball-Larus path profiling (PAPERS.md: arXiv 1304.5197). The classic
// construction numbers every acyclic entry-to-exit path of a procedure's
// CFG by assigning each DAG edge an integer increment such that summing the
// increments along any path yields a unique id in [0, NumPaths). We use the
// numbering two ways:
//
//   - dcpicfg-style diagnostics: how many acyclic paths a procedure has and
//     which id a given block sequence carries;
//   - layout seeding: the optimizer chains the hottest acyclic path first
//     (HottestPath), which beats per-edge greedy choices at merge points —
//     a path that is bottleneck-hot end to end stays contiguous even when
//     an individual edge off the path is locally hotter.
//
// The DAG is the CFG with DFS back edges removed (every cycle contains one,
// so the remainder is acyclic); back edges are where Ball-Larus would
// restart path counting at the loop header.

import (
	"fmt"
	"math"

	"dcpi/internal/cfg"
)

// maxPaths caps the path count; procedures with more acyclic paths than
// this (exponential diamonds) are not useful to number.
const maxPaths = int64(1) << 40

// PathProfile is the Ball-Larus numbering of one procedure's CFG.
type PathProfile struct {
	Graph *cfg.Graph
	// NumPaths is the number of distinct acyclic paths from the entry
	// block to the procedure exit.
	NumPaths int64
	// Inc[e] is the increment assigned to CFG edge e: the ids of the paths
	// through an edge form the contiguous range [sum of Inc along the
	// prefix, +count). Back edges and the virtual entry edge carry -1.
	Inc []int64
	// BackEdge[e] marks DFS back edges — the edges removed to make the
	// graph acyclic (loop-closing edges).
	BackEdge []bool

	npaths []int64 // per block: acyclic paths from the block to the exit
}

// Paths computes the Ball-Larus path numbering of a CFG.
func Paths(g *cfg.Graph) (*PathProfile, error) {
	if len(g.Blocks) == 0 {
		return nil, fmt.Errorf("analysis: empty procedure has no paths")
	}
	if g.MissingEdges {
		return nil, fmt.Errorf("analysis: CFG has computed jumps; paths unknown")
	}
	pp := &PathProfile{
		Graph:    g,
		Inc:      make([]int64, len(g.Edges)),
		BackEdge: make([]bool, len(g.Edges)),
		npaths:   make([]int64, len(g.Blocks)),
	}
	for i := range pp.Inc {
		pp.Inc[i] = -1
	}

	// Iterative DFS from the entry block: classify back edges (target on
	// the current DFS stack) and record the post-order for the DAG pass.
	const (
		white = iota
		grey
		black
	)
	color := make([]int, len(g.Blocks))
	post := make([]int, 0, len(g.Blocks))
	type frame struct{ b, si int }
	stack := []frame{{0, 0}}
	color[0] = grey
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.Blocks[f.b].Succs
		if f.si >= len(succs) {
			color[f.b] = black
			post = append(post, f.b)
			stack = stack[:len(stack)-1]
			continue
		}
		ei := succs[f.si]
		f.si++
		to := g.Edges[ei].To
		if to < 0 {
			continue // exit/virtual edge: the DAG sink
		}
		switch color[to] {
		case grey:
			pp.BackEdge[ei] = true
		case white:
			color[to] = grey
			stack = append(stack, frame{to, 0})
		}
	}

	// Post-order is reverse-topological over the back-edge-removed DAG:
	// every non-back successor is finished before its predecessor, so one
	// pass computes path counts bottom-up.
	for _, b := range post {
		var n int64
		for _, ei := range g.Blocks[b].Succs {
			if pp.BackEdge[ei] {
				continue
			}
			pp.Inc[ei] = n
			if to := g.Edges[ei].To; to < 0 {
				n++ // an edge to the exit carries exactly one path
			} else {
				n += pp.npaths[to]
			}
			if n > maxPaths {
				return nil, fmt.Errorf("analysis: more than %d acyclic paths", maxPaths)
			}
		}
		if n == 0 {
			// Only back-edge successors: Ball-Larus treats the truncated
			// path as ending here (the back edge restarts numbering).
			n = 1
		}
		pp.npaths[b] = n
	}
	pp.NumPaths = pp.npaths[0]
	return pp, nil
}

// PathID numbers a block sequence: the sum of the edge increments along it.
// A full entry-to-exit sequence gets a unique id in [0, NumPaths); the
// second result is false when consecutive blocks are not joined by a DAG
// (non-back) edge.
func (pp *PathProfile) PathID(blocks []int) (int64, bool) {
	var id int64
	g := pp.Graph
	for i := 0; i+1 < len(blocks); i++ {
		found := false
		for _, ei := range g.Blocks[blocks[i]].Succs {
			if !pp.BackEdge[ei] && g.Edges[ei].To == blocks[i+1] {
				id += pp.Inc[ei]
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return id, true
}

// HottestPath returns the estimated hottest acyclic path through the
// procedure — the entry-to-exit block sequence maximizing the bottleneck
// (minimum) edge frequency over the back-edge-removed DAG — and that
// bottleneck frequency. Unknown edge frequencies count as zero; when the
// CFG has no usable path structure the entry block alone is returned.
//
// Maximizing the bottleneck is what makes this better than greedy
// per-edge chaining: a merge point's locally hottest successor can belong
// to a path that goes cold later, while the bottleneck-optimal path stays
// hot end to end.
func (pa *ProcAnalysis) HottestPath() ([]int, float64) {
	g := pa.Graph
	if len(g.Blocks) == 0 {
		return nil, 0
	}
	pp, err := Paths(g)
	if err != nil {
		return []int{0}, 0
	}

	freq := func(ei int) float64 {
		if ei < len(pa.EdgeFreq) && pa.EdgeFreq[ei] > 0 {
			return pa.EdgeFreq[ei]
		}
		return 0
	}

	// Dynamic program over the DAG in topological order (reverse of the
	// DFS post-order computed by Paths — recompute cheaply here): best[b]
	// is the maximum bottleneck achievable from b to the exit, via[b] the
	// successor edge achieving it.
	order := make([]int, 0, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	// Iterative post-order (same traversal Paths used).
	type frame struct{ b, si int }
	fr := []frame{{0, 0}}
	seen[0] = true
	for len(fr) > 0 {
		f := &fr[len(fr)-1]
		succs := g.Blocks[f.b].Succs
		if f.si >= len(succs) {
			order = append(order, f.b)
			fr = fr[:len(fr)-1]
			continue
		}
		ei := succs[f.si]
		f.si++
		to := g.Edges[ei].To
		if to >= 0 && !pp.BackEdge[ei] && !seen[to] {
			seen[to] = true
			fr = append(fr, frame{to, 0})
		}
	}

	best := make([]float64, len(g.Blocks))
	via := make([]int, len(g.Blocks))
	for i := range via {
		via[i] = -1
	}
	for _, b := range order { // post-order: successors first
		best[b] = -1
		for _, ei := range g.Blocks[b].Succs {
			if pp.BackEdge[ei] {
				continue
			}
			to := g.Edges[ei].To
			var bn float64
			if to < 0 {
				bn = math.Inf(1) // path ends; bottleneck set by edges so far
			} else {
				bn = best[to]
			}
			if f := freq(ei); f < bn {
				bn = f
			}
			if bn > best[b] {
				best[b], via[b] = bn, ei
			}
		}
		if via[b] < 0 {
			best[b] = math.Inf(1) // truncated path (only back-edge successors)
		}
	}

	path := []int{0}
	bottleneck := math.Inf(1)
	for b := 0; ; {
		ei := via[b]
		if ei < 0 {
			break
		}
		if f := freq(ei); f < bottleneck {
			bottleneck = f
		}
		to := g.Edges[ei].To
		if to < 0 {
			break
		}
		path = append(path, to)
		b = to
	}
	if math.IsInf(bottleneck, 1) {
		bottleneck = 0
	}
	return path, bottleneck
}
