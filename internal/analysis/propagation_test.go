package analysis

import (
	"math"
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/cfg"
	"dcpi/internal/pipeline"
)

// TestFlowConservation: after propagation, every block's frequency equals
// the sum of its incoming and outgoing edge frequencies (within rounding),
// for a diamond whose branch split was pinned by samples on both arms.
func TestFlowConservation(t *testing.T) {
	src := `
p:
	addq t0, 1, t1
	beq a0, .else
	mulq t1, t1, t2
	mulq t2, t1, t3
	br .join
.else:
	subq t1, 1, t2
	subq t2, 1, t3
	subq t3, 1, t4
.join:
	addq t3, 1, t5
	ret (ra)
`
	code := alpha.MustAssemble(src).Code
	// Build samples: entry/join run 100 (x 60 samples per issue point);
	// the then-arm runs 30, the else-arm 70.
	sched := pipeline.Default().ScheduleBlock(code)
	_ = sched
	g := cfg.Build(code, 0)
	perInst := map[int]uint64{}
	freqFor := func(b int) uint64 {
		switch b {
		case 1: // then arm (mulq...)
			return 30
		case 2: // else arm
			return 70
		default:
			return 100
		}
	}
	for bi := range g.Blocks {
		blk := g.Blocks[bi]
		bs := pipeline.Default().ScheduleBlock(code[blk.Start:blk.End])
		for j, s := range bs {
			perInst[blk.Start+j] = uint64(s.M) * freqFor(bi) * 3
		}
	}
	pa := AnalyzeProc("p", code, 0, synthSamples(0, perInst), nil, pipeline.Default(), 1000)

	for bi := range pa.Graph.Blocks {
		b := pa.Graph.Blocks[bi]
		var in, out float64
		for _, ei := range b.Preds {
			in += pa.EdgeFreq[ei]
		}
		for _, ei := range b.Succs {
			out += pa.EdgeFreq[ei]
		}
		bf := pa.BlockFreq[bi]
		tol := 0.25*bf + 20
		if math.Abs(in-bf) > tol || math.Abs(out-bf) > tol {
			t.Errorf("block %d: freq %.0f, in %.0f, out %.0f", bi, bf, in, out)
		}
	}
	// The arm split should roughly match 30/70.
	thenF := pa.BlockFreq[1]
	elseF := pa.BlockFreq[2]
	if thenF <= 0 || elseF <= 0 {
		t.Fatalf("arm freqs = %v, %v", thenF, elseF)
	}
	ratio := thenF / (thenF + elseF)
	if ratio < 0.15 || ratio > 0.45 {
		t.Errorf("then-arm share = %.2f, want ≈ 0.30", ratio)
	}
}

// TestEdgeSamplesTakePriorityOverFlowInference: in a triangle CFG whose
// block estimates are mutually inconsistent (sampling noise), the skip edge
// can be derived by flow subtraction — but measured edge samples are a
// direct observation and must win for the undetermined edge.
func TestEdgeSamplesTakePriorityOverFlowInference(t *testing.T) {
	src := `
p:
	addq t0, 1, t1
	beq a0, .skip
	nop
	nop
.skip:
	addq t1, 1, t2
	ret (ra)
`
	code := alpha.MustAssemble(src).Code
	// Block A = insts 0-1 (offset 0,4), arm B = insts 2-3 (8,12),
	// join D = insts 4-5 (16,20). Give A and D ~100 executions' worth of
	// samples and B ~80, but make edge samples say the skip (taken) edge
	// carries only 10%.
	perInst := map[int]uint64{0: 100, 1: 100, 2: 80, 3: 80, 4: 100, 5: 100}
	edgeSamples := map[uint64]uint64{
		(4 << 32) | 16: 10, // beq taken -> .skip head
		(4 << 32) | 8:  90, // fallthrough -> nop arm
	}
	pa := AnalyzeProcInputs("p", code, 0,
		Inputs{Samples: synthSamples(0, perInst), EdgeSamples: edgeSamples},
		pipeline.Default(), 1000)

	g := pa.Graph
	blockA := g.BlockOfInst(0)
	var takenEdge = -1
	for _, ei := range g.Blocks[blockA].Succs {
		if g.Edges[ei].Kind == cfg.EdgeTaken {
			takenEdge = ei
		}
	}
	if takenEdge < 0 {
		t.Fatal("taken edge not found")
	}
	if pa.EdgeSampleCounts[takenEdge] != 10 {
		t.Fatalf("taken edge pair count = %d, want 10", pa.EdgeSampleCounts[takenEdge])
	}
	// The measured split (10%) must drive the estimate, not the flow
	// subtraction (A - B estimates would give ~20%).
	headF := pa.BlockFreq[blockA]
	share := pa.EdgeFreq[takenEdge] / headF
	if share < 0.05 || share > 0.15 {
		t.Errorf("taken edge share = %.3f, want ≈ 0.10 from edge samples", share)
	}
}

// TestCPITimesFreqIdentity: for every instruction with samples and positive
// frequency, CPI * weight == samples exactly (the factoring identity).
func TestCPITimesFreqIdentity(t *testing.T) {
	code := alpha.MustAssemble(loopSrc).Code
	sched := pipeline.Default().ScheduleBlock(code[1:6])
	perInst := map[int]uint64{}
	for j, s := range sched {
		perInst[1+j] = uint64(s.M)*80 + uint64(j)*13
	}
	pa := analyzeLoop(t, perInst)
	for i := range pa.Insts {
		ia := &pa.Insts[i]
		if ia.Freq <= 0 || ia.Samples == 0 || math.IsInf(ia.CPI, 1) {
			continue
		}
		back := ia.CPI * ia.Freq / pa.Period
		if math.Abs(back-float64(ia.Samples)) > 1e-6*float64(ia.Samples)+1e-9 {
			t.Errorf("inst %d: CPI*f = %v, samples = %d", i, back, ia.Samples)
		}
	}
}

// TestMapEdgeSamplesIgnoresOutOfRange: edge keys outside the procedure are
// dropped rather than misattributed.
func TestMapEdgeSamplesIgnoresOutOfRange(t *testing.T) {
	code := alpha.MustAssemble("p:\n addq t0, 1, t1\n ret (ra)").Code
	edges := map[uint64]uint64{
		(999999 << 32) | 0: 5, // from outside
		(0 << 32) | 999999: 5, // to outside
		(0 << 32) | 4:      7, // valid: inst 0 -> inst 1 (same block, not head)
	}
	pa := AnalyzeProcInputs("p", code, 0,
		Inputs{Samples: map[uint64]uint64{0: 50}, EdgeSamples: edges},
		pipeline.Default(), 1000)
	if pa.EdgeSampleCounts == nil {
		t.Fatal("edge counts not built")
	}
	for ei, n := range pa.EdgeSampleCounts {
		if n != 0 {
			t.Errorf("edge %d got %d pairs; all keys should have been dropped", ei, n)
		}
	}
}
