package par

import (
	"sync"
	"testing"

	"dcpi/internal/obs"
)

func TestTryExtraNeverOvercommits(t *testing.T) {
	b := NewBudget(4)
	if got := b.TryExtra(3); got != 3 {
		t.Fatalf("TryExtra(3) on empty budget = %d", got)
	}
	if got := b.TryExtra(3); got != 1 {
		t.Fatalf("TryExtra(3) with 1 free = %d", got)
	}
	if got := b.TryExtra(1); got != 0 {
		t.Fatalf("TryExtra on full budget = %d", got)
	}
	b.Release(4)
	if got := b.Used(); got != 0 {
		t.Fatalf("used after full release = %d", got)
	}
}

func TestAcquireMayExceedTotal(t *testing.T) {
	b := NewBudget(2)
	b.Acquire(5) // forced run-level parallelism is never refused
	if got := b.Used(); got != 5 {
		t.Fatalf("used = %d, want 5", got)
	}
	if got := b.TryExtra(1); got != 0 {
		t.Fatalf("TryExtra past total = %d, want 0", got)
	}
	b.Release(7) // over-release clamps at zero
	if got := b.Used(); got != 0 {
		t.Fatalf("used after over-release = %d", got)
	}
}

func TestBudgetConcurrentAccounting(t *testing.T) {
	b := NewBudget(8)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				got := b.TryExtra(2)
				if got > 0 {
					b.Release(got)
				}
			}
		}()
	}
	wg.Wait()
	if got := b.Used(); got != 0 {
		t.Fatalf("used after balanced churn = %d", got)
	}
	if got := b.Total(); got != 8 {
		t.Fatalf("total = %d", got)
	}
}

func TestPublishMetrics(t *testing.T) {
	b := NewBudget(3)
	b.Acquire(2)
	reg := obs.NewRegistry()
	b.PublishMetrics(reg)
	b.PublishMetrics(nil) // nil-safe
	snap := reg.Snapshot()
	if got := snap.Gauges["par.budget_total"]; got != 3 {
		t.Errorf("par.budget_total = %v", got)
	}
	if got := snap.Gauges["par.budget_used"]; got != 2 {
		t.Errorf("par.budget_used = %v", got)
	}
}
