// Package par holds the process-wide simulation worker budget: a single
// pool of host-CPU "slots" shared by every layer that wants to fan work out
// across goroutines. Two layers compete for host parallelism:
//
//   - internal/runner schedules whole simulated runs concurrently
//     (dcpieval's -j run-level workers), and
//   - internal/sim can run each simulated CPU of one machine on its own
//     goroutine (dcpieval/dcpid's -simcpus).
//
// Without coordination the two multiply: -j 8 runs of 8-CPU machines would
// spawn 64 simulation goroutines on an 8-core host. The budget prevents
// that nested oversubscription: each in-flight run reserves one slot for
// its own goroutine, and a machine in auto mode (-simcpus auto) only adds
// per-CPU goroutines while free slots remain. Acquisition is non-blocking
// on both sides, so there is no lock ordering between the runner's pool
// and the machine barrier — a machine that finds the budget exhausted
// simply runs its CPUs sequentially, which is always correct (parallel and
// sequential simulation produce byte-identical output; see DESIGN.md).
package par

import (
	"runtime"
	"sync"

	"dcpi/internal/obs"
)

// Budget is a fixed pool of worker slots. The zero value is unusable; use
// NewBudget or the process-wide Default.
type Budget struct {
	mu    sync.Mutex
	total int
	used  int
}

// NewBudget creates a budget of n slots; n <= 0 means runtime.GOMAXPROCS(0).
func NewBudget(n int) *Budget {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Budget{total: n}
}

var defaultBudget = NewBudget(0)

// Default returns the process-wide budget, sized to GOMAXPROCS at init.
func Default() *Budget { return defaultBudget }

// Total returns the slot count.
func (b *Budget) Total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Used returns the currently reserved slots (may exceed Total when callers
// force reservations beyond the budget, e.g. -j larger than GOMAXPROCS).
func (b *Budget) Used() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Acquire unconditionally reserves n slots, even past Total: run-level
// parallelism is the caller's explicit choice and is never refused, it just
// shrinks what TryExtra will hand out. Pair with Release.
func (b *Budget) Acquire(n int) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	b.used += n
	b.mu.Unlock()
}

// TryExtra reserves up to max additional slots from the free remainder and
// returns how many it got (possibly zero). It never blocks and never
// overcommits. Pair with Release for the granted count.
func (b *Budget) TryExtra(max int) int {
	if max <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	free := b.total - b.used
	if free <= 0 {
		return 0
	}
	if free < max {
		max = free
	}
	b.used += max
	return max
}

// Release returns n slots to the pool.
func (b *Budget) Release(n int) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
	b.mu.Unlock()
}

// PublishMetrics writes the budget's current state into reg (nil-safe).
func (b *Budget) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	b.mu.Lock()
	total, used := b.total, b.used
	b.mu.Unlock()
	reg.Gauge("par.budget_total").Set(float64(total))
	reg.Gauge("par.budget_used").Set(float64(used))
}
