// Package expo is dcpid's HTTP exposition surface: it serves a machine's
// profile database, live collection-stack statistics, and self-metrics
// over stdlib net/http so a dcpicollect scraper (or a curious human with
// curl) can pull them. This is the paper's fleet story made concrete —
// every machine runs the profiler continuously, and the profiles leave the
// machine through a cheap pull endpoint rather than an operator's shell.
//
// Endpoints:
//
//	/epochs           JSON list of profiledb epochs and their seal state
//	/profiles?epoch=N JSON payload of one epoch's profiles (default: latest
//	                  sealed; ?full=1 adds per-offset counts; ?procs=1 adds
//	                  a per-procedure breakdown when the source symbolizes)
//	/stats            driver/daemon/loss counters as JSON
//	/metrics          the obs registry as flat "name value" text
//	                  (?format=json for the full snapshot)
//	/debug/pprof/     Go's own profiler, so the profiler profiles itself
//
// All reads go through profiledb.OpenReader, which never mutates the
// database directory — the daemon can keep appending while scrapes are in
// flight (see the profiledb read-while-write contract).
package expo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"dcpi/internal/daemon"
	"dcpi/internal/driver"
	"dcpi/internal/obs"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
)

// StatsSnapshot is the live view served on /stats. dcpid refreshes it at
// epoch boundaries (and once more at shutdown) through an atomic pointer,
// so the handler never races the simulation loop.
type StatsSnapshot struct {
	Machine      string       `json:"machine"`
	Workload     string       `json:"workload"`
	Epoch        int          `json:"epoch"`
	EpochsDone   int          `json:"epochs_done"`
	Running      bool         `json:"running"`
	WallCycles   int64        `json:"wall_cycles"`
	Driver       driver.Stats `json:"driver"`
	Daemon       daemon.Stats `json:"daemon"`
	LossRate     float64      `json:"loss_rate"`
	SamplesTotal uint64       `json:"samples_total"`
}

// Source is what one exposed machine provides to the handler.
type Source struct {
	Machine  string // fleet label, e.g. "m07"
	Workload string
	DBDir    string               // read per-request via profiledb.OpenReader
	Stats    func() StatsSnapshot // nil: /stats serves 404
	Registry *obs.Registry        // nil: /metrics serves an empty body
	// SymbolAt maps an image path and offset to the enclosing procedure's
	// name. nil disables the /profiles?procs=1 per-procedure breakdown.
	SymbolAt func(image string, off uint64) (string, bool)
	Hook     func(r *http.Request) // optional per-request tap (fault injection in tests)
}

// EpochInfo is one entry of the /epochs listing.
type EpochInfo struct {
	Epoch  int  `json:"epoch"`
	Sealed bool `json:"sealed"`
}

// EpochsPayload is the /epochs response.
type EpochsPayload struct {
	Machine  string      `json:"machine"`
	Workload string      `json:"workload"`
	Epochs   []EpochInfo `json:"epochs"`
}

// ProfileRecord is one (image, event) profile in a /profiles payload.
type ProfileRecord struct {
	Image   string `json:"image"`
	Event   string `json:"event"`
	Samples uint64 `json:"samples"`
	// Insts is the image's exact executed-instruction count from the epoch
	// metadata (0 when the run did not collect exact counts).
	Insts uint64 `json:"insts,omitempty"`
	// Offsets holds the raw (offset, count) pairs when ?full=1.
	Offsets [][2]uint64 `json:"offsets,omitempty"`
	// Procs holds the per-procedure sample breakdown when ?procs=1 and the
	// source can symbolize. Samples that fall outside every known
	// procedure are attributed to "(unknown)", so the breakdown always
	// sums to Samples.
	Procs []ProcSample `json:"procs,omitempty"`
}

// ProcSample is one procedure's share of an image's samples.
type ProcSample struct {
	Proc    string `json:"proc"`
	Samples uint64 `json:"samples"`
}

// ProfilesPayload is the /profiles response: one epoch-stamped snapshot of
// a machine's profile database.
type ProfilesPayload struct {
	Machine  string          `json:"machine"`
	Workload string          `json:"workload"`
	Epoch    int             `json:"epoch"`
	Sealed   bool            `json:"sealed"`
	Meta     *profiledb.Meta `json:"meta,omitempty"`
	Profiles []ProfileRecord `json:"profiles"`
}

// Handler builds the exposition mux for one source.
func Handler(src *Source) http.Handler {
	mux := http.NewServeMux()
	wrap := func(h http.HandlerFunc) http.HandlerFunc {
		if src.Hook == nil {
			return h
		}
		return func(w http.ResponseWriter, r *http.Request) {
			src.Hook(r)
			h(w, r)
		}
	}
	mux.HandleFunc("/epochs", wrap(src.serveEpochs))
	mux.HandleFunc("/profiles", wrap(src.serveProfiles))
	mux.HandleFunc("/stats", wrap(src.serveStats))
	mux.HandleFunc("/metrics", wrap(src.serveMetrics))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (src *Source) openReader(w http.ResponseWriter) *profiledb.DB {
	db, err := profiledb.OpenReader(src.DBDir)
	if err != nil {
		http.Error(w, fmt.Sprintf("profile database not ready: %v", err), http.StatusServiceUnavailable)
		return nil
	}
	return db
}

func (src *Source) serveEpochs(w http.ResponseWriter, r *http.Request) {
	db, err := profiledb.OpenReader(src.DBDir)
	payload := EpochsPayload{Machine: src.Machine, Workload: src.Workload, Epochs: []EpochInfo{}}
	if err == nil {
		epochs, lerr := db.Epochs()
		if lerr != nil {
			http.Error(w, lerr.Error(), http.StatusInternalServerError)
			return
		}
		for _, e := range epochs {
			payload.Epochs = append(payload.Epochs, EpochInfo{Epoch: e, Sealed: db.Sealed(e)})
		}
	}
	writeJSON(w, payload)
}

func (src *Source) serveProfiles(w http.ResponseWriter, r *http.Request) {
	db := src.openReader(w)
	if db == nil {
		return
	}
	epoch := 0
	if s := r.URL.Query().Get("epoch"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			http.Error(w, "bad epoch", http.StatusBadRequest)
			return
		}
		epoch = n
	} else {
		// Default to the latest sealed epoch: the newest snapshot whose
		// contents can no longer change under the reader.
		epochs, err := db.Epochs()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, e := range epochs {
			if db.Sealed(e) {
				epoch = e
			}
		}
		if epoch == 0 {
			http.Error(w, "no sealed epoch yet", http.StatusServiceUnavailable)
			return
		}
	}

	profiles, err := db.ProfilesAt(epoch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	meta, hasMeta, err := db.MetaAt(epoch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	payload := ProfilesPayload{
		Machine:  src.Machine,
		Workload: src.Workload,
		Epoch:    epoch,
		Sealed:   hasMeta,
		Profiles: []ProfileRecord{},
	}
	if hasMeta {
		payload.Meta = &meta
	}
	full := r.URL.Query().Get("full") == "1"
	procs := r.URL.Query().Get("procs") == "1" && src.SymbolAt != nil
	for _, p := range profiles {
		rec := ProfileRecord{
			Image:   p.ImagePath,
			Event:   p.Event.String(),
			Samples: p.Total(),
		}
		if hasMeta {
			rec.Insts = meta.ImageInsts[p.ImagePath]
		}
		if full {
			offs := make([]uint64, 0, len(p.Counts))
			for off := range p.Counts {
				offs = append(offs, off)
			}
			sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
			for _, off := range offs {
				rec.Offsets = append(rec.Offsets, [2]uint64{off, p.Counts[off]})
			}
		}
		if procs {
			byProc := map[string]uint64{}
			for off, cnt := range p.Counts {
				name, ok := src.SymbolAt(p.ImagePath, off)
				if !ok || name == "" {
					name = "(unknown)"
				}
				byProc[name] += cnt
			}
			names := make([]string, 0, len(byProc))
			for name := range byProc {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				rec.Procs = append(rec.Procs, ProcSample{Proc: name, Samples: byProc[name]})
			}
		}
		payload.Profiles = append(payload.Profiles, rec)
	}
	writeJSON(w, payload)
}

func (src *Source) serveStats(w http.ResponseWriter, r *http.Request) {
	if src.Stats == nil {
		http.Error(w, "no live stats", http.StatusNotFound)
		return
	}
	writeJSON(w, src.Stats())
}

func (src *Source) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		src.Registry.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	src.Registry.WriteFlat(w)
}

// ParseEventName converts a /profiles record event back to a sim.Event.
func ParseEventName(s string) (sim.Event, error) { return sim.ParseEvent(s) }
