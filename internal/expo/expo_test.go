package expo

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dcpi/internal/obs"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
)

// buildDB writes two sealed epochs and one unsealed (in-progress) epoch.
func buildDB(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := profiledb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= 2; e++ {
		p := profiledb.NewProfile("/usr/bin/app", sim.EvCycles)
		p.Add(0x40, uint64(100*e))
		p.Add(0x44, uint64(e))
		if err := db.Update(p); err != nil {
			t.Fatal(err)
		}
		if err := db.WriteMeta(profiledb.Meta{
			Workload:     "app",
			Mode:         "cycles",
			CyclesPeriod: 62000,
			WallCycles:   int64(1000000 * e),
			ImageInsts:   map[string]uint64{"/usr/bin/app": uint64(5000 * e)},
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.NewEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 3 exists but is unsealed: profiles, no meta.
	p := profiledb.NewProfile("/usr/bin/app", sim.EvCycles)
	p.Add(0x40, 7)
	if err := db.Update(p); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestExpositionEndpoints(t *testing.T) {
	dir := buildDB(t)
	reg := obs.NewRegistry()
	reg.Counter("test.scrapes").Add(3)
	src := &Source{
		Machine:  "m00",
		Workload: "app",
		DBDir:    dir,
		Registry: reg,
		Stats: func() StatsSnapshot {
			return StatsSnapshot{Machine: "m00", Workload: "app", Epoch: 3, Running: true}
		},
	}
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		return resp, sb.String()
	}

	// /epochs: three epochs, first two sealed.
	resp, body := get("/epochs")
	if resp.StatusCode != 200 {
		t.Fatalf("/epochs: %d %s", resp.StatusCode, body)
	}
	var ep EpochsPayload
	if err := json.Unmarshal([]byte(body), &ep); err != nil {
		t.Fatal(err)
	}
	if len(ep.Epochs) != 3 || !ep.Epochs[0].Sealed || !ep.Epochs[1].Sealed || ep.Epochs[2].Sealed {
		t.Errorf("/epochs: %+v", ep.Epochs)
	}

	// /profiles default: latest sealed epoch (2), with meta and insts.
	resp, body = get("/profiles")
	if resp.StatusCode != 200 {
		t.Fatalf("/profiles: %d %s", resp.StatusCode, body)
	}
	var pp ProfilesPayload
	if err := json.Unmarshal([]byte(body), &pp); err != nil {
		t.Fatal(err)
	}
	if pp.Epoch != 2 || !pp.Sealed || pp.Machine != "m00" {
		t.Errorf("/profiles header: %+v", pp)
	}
	if len(pp.Profiles) != 1 || pp.Profiles[0].Samples != 202 || pp.Profiles[0].Insts != 10000 {
		t.Errorf("/profiles records: %+v", pp.Profiles)
	}
	if pp.Meta == nil || pp.Meta.CyclesPeriod != 62000 {
		t.Errorf("/profiles meta: %+v", pp.Meta)
	}
	if pp.Profiles[0].Offsets != nil {
		t.Error("offsets included without ?full=1")
	}

	// Explicit epoch + full offsets.
	_, body = get("/profiles?epoch=1&full=1")
	if err := json.Unmarshal([]byte(body), &pp); err != nil {
		t.Fatal(err)
	}
	if pp.Epoch != 1 || len(pp.Profiles) != 1 {
		t.Fatalf("/profiles?epoch=1: %+v", pp)
	}
	wantOffs := [][2]uint64{{0x40, 100}, {0x44, 1}}
	if len(pp.Profiles[0].Offsets) != 2 || pp.Profiles[0].Offsets[0] != wantOffs[0] || pp.Profiles[0].Offsets[1] != wantOffs[1] {
		t.Errorf("full offsets: %+v", pp.Profiles[0].Offsets)
	}

	// Unsealed epoch is readable when asked for explicitly, marked so.
	_, body = get("/profiles?epoch=3")
	if err := json.Unmarshal([]byte(body), &pp); err != nil {
		t.Fatal(err)
	}
	if pp.Sealed || pp.Profiles[0].Samples != 7 {
		t.Errorf("unsealed epoch payload: %+v", pp)
	}

	// /stats round-trips the snapshot.
	_, body = get("/stats")
	var st StatsSnapshot
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Machine != "m00" || !st.Running {
		t.Errorf("/stats: %+v", st)
	}

	// /metrics flat text includes the counter; JSON form parses.
	_, body = get("/metrics")
	if !strings.Contains(body, "test.scrapes 3") {
		t.Errorf("/metrics flat: %q", body)
	}
	resp, body = get("/metrics?format=json")
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics json: %v (%q)", err, body)
	}
	if snap.Counters["test.scrapes"] != 3 {
		t.Errorf("/metrics json counters: %+v", snap.Counters)
	}

	// /debug/pprof index answers.
	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/: %d", resp.StatusCode)
	}
}

func TestExpositionEmptyDB(t *testing.T) {
	src := &Source{Machine: "m00", DBDir: t.TempDir() + "/nonexistent"}
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/profiles")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/profiles on missing db: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/epochs")
	if err != nil {
		t.Fatal(err)
	}
	var ep EpochsPayload
	json.NewDecoder(resp.Body).Decode(&ep)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(ep.Epochs) != 0 {
		t.Errorf("/epochs on missing db: %d %+v", resp.StatusCode, ep)
	}
}
