package eval

import (
	"fmt"
	"io"

	"dcpi/internal/daemon"
	"dcpi/internal/dcpi"
	"dcpi/internal/runner"
	"dcpi/internal/sim"
)

// The §4.2.3 loss ablation: the paper reports that even under the heaviest
// workloads fewer than 0.1% of samples are dropped, and that every drop is
// counted rather than silent. This sweep injects increasing daemon drain
// lag (FaultPlan.DrainLatency) into a high-eviction workload and measures
// the loss rate, reproducing both the near-zero normal-operation loss and
// the breakdown point where the lag window outgrows the driver's two
// overflow buffers.

// LossRow is one lag setting's aggregate over the sweep's runs.
type LossRow struct {
	DrainLatency int64   // injected lag in cycles
	Recorded     uint64  // raw samples the driver recorded
	Merged       uint64  // raw samples that reached the daemon's profiles
	Lost         uint64  // raw samples dropped with both buffers full
	Deferred     uint64  // full-buffer deliveries the daemon refused
	LossRate     float64 // Lost / Recorded
	Conserved    bool    // Recorded == Merged + Lost on every run
}

// LossResult is the full lag sweep.
type LossResult struct {
	Workload      string
	Runs          int
	OverflowCap   int   // driver overflow-buffer capacity (entries)
	DrainInterval int64 // daemon drain interval (cycles)
	Rows          []LossRow
}

// lossLags is the swept drain-lag axis. With 256-entry buffers, a 100K-cycle
// drain interval, and gcc's eviction rate under dense sampling, the two
// buffers absorb roughly 650K cycles of lag; the axis brackets that point.
var lossLags = []int64{0, 100_000, 200_000, 400_000, 800_000, 1_600_000, 3_200_000}

// LossSweep measures sample loss as a function of injected daemon drain lag.
// It shrinks the driver's overflow buffers and drain interval (keeping the
// paper's pressure ratios at our short run lengths) so the breakdown is
// reachable without hour-long stalls, and uses gcc — the paper's
// high-eviction workload — so buffers actually fill.
func LossSweep(o Options) (*LossResult, error) {
	o = o.withDefaults()
	defer o.span("Ablation loss")()
	const (
		wl       = "gcc"
		buckets  = 64 // 4-way: 256 entries, so gcc's footprint actually evicts
		overflow = 256
		drain    = 100_000
	)
	scale := o.Scale
	if scale < 0.25 {
		scale = 0.25
	}
	runs := o.Runs
	if runs > 2 {
		runs = 2
	}

	cfg := func(lag int64, run int) dcpi.Config {
		return dcpi.Config{
			Workload:           wl,
			Scale:              scale,
			Mode:               sim.ModeCycles,
			Seed:               seedFor(o.SeedBase, "loss", wl, run),
			CyclesPeriod:       o.DensePeriod,
			ZeroCostCollection: true,
			DriverBuckets:      buckets,
			DriverOverflow:     overflow,
			DrainInterval:      drain,
			Fault:              daemon.FaultPlan{DrainLatency: lag},
		}
	}

	// Submit the whole grid up front; the runner fans it out.
	pending := make([][]*runner.Pending, len(lossLags))
	for i, lag := range lossLags {
		for run := 0; run < runs; run++ {
			pending[i] = append(pending[i], o.Runner.Submit(cfg(lag, run)))
		}
	}

	res := &LossResult{
		Workload: wl, Runs: runs, OverflowCap: overflow, DrainInterval: drain,
	}
	for i, lag := range lossLags {
		row := LossRow{DrainLatency: lag, Conserved: true}
		for _, pr := range pending[i] {
			r, err := pr.Wait()
			if err != nil {
				return nil, fmt.Errorf("loss sweep: %w", err)
			}
			ds := r.DriverStats
			dm := r.DaemonStats
			row.Recorded += ds.Samples
			row.Merged += dm.Samples
			row.Lost += ds.Lost
			row.Deferred += ds.Deferred
			if ds.Samples != dm.Samples+ds.Lost {
				row.Conserved = false
			}
		}
		if row.Recorded > 0 {
			row.LossRate = float64(row.Lost) / float64(row.Recorded)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatLossSweep renders the lag sweep.
func FormatLossSweep(w io.Writer, res *LossResult) {
	fprintf(w, "Daemon drain lag vs. sample loss (§4.2.3) on %s, %d run(s) per point\n",
		res.Workload, res.Runs)
	fprintf(w, "%d-entry overflow buffers, %s drain interval; loss is counted, never silent\n\n",
		res.OverflowCap, cyc(res.DrainInterval))
	fprintf(w, "%10s %10s %10s %10s %9s %10s %10s\n",
		"drain lag", "recorded", "merged", "lost", "deferred", "loss rate", "conserved")
	for _, r := range res.Rows {
		fprintf(w, "%10s %10d %10d %10d %9d %9.4f%% %10s\n",
			cyc(r.DrainLatency), r.Recorded, r.Merged, r.Lost, r.Deferred,
			100*r.LossRate, conservedMark(r.Conserved))
	}
	fprintf(w, "\npaper: normal-operation loss stays under 0.1%%; loss grows once the lag\n")
	fprintf(w, "window exceeds what the driver's two overflow buffers can absorb\n")
}

// cyc renders a cycle count compactly (1.6M, 400K, 0).
func cyc(n int64) string {
	switch {
	case n >= 1_000_000 && n%100_000 == 0:
		return fmt.Sprintf("%gM", float64(n)/1e6)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func conservedMark(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}
