package eval

import (
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

// TestDebugFreqDump is a diagnostic: dump per-instruction estimates vs
// truth for the compress main loop. Run with -run TestDebugFreqDump -v.
func TestDebugFreqDump(t *testing.T) {
	if testing.Short() {
		t.Skip("debug only")
	}
	r, err := dcpi.Run(dcpi.Config{
		Workload:     "compress",
		Scale:        0.12,
		Mode:         sim.ModeCycles,
		Seed:         1000,
		CyclesPeriod: sim.PeriodSpec{Base: 2048, Spread: 512},
		CollectExact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := r.AnalyzeProc("/usr/bin/compress", "main")
	if err != nil {
		t.Fatal(err)
	}
	im, _ := r.Loader.ImageByPath("/usr/bin/compress")
	exact := r.Exact.Exec[im.ID]
	t.Logf("period=%v wall=%d classes=%d", pa.Period, r.Wall, pa.Graph.NumClasses)
	for i := range pa.Insts {
		ia := &pa.Insts[i]
		truth := exact[int(ia.Offset/alpha.InstBytes)]
		t.Logf("%2d %-26s S=%6d M=%d paired=%-5v class=%d conf=%-6s F=%10.0f truth=%8d err=%+6.1f%%",
			i, ia.Inst.String(), ia.Samples, ia.M, ia.Paired,
			pa.Graph.BlockClass[pa.Graph.BlockOfInst(i)], ia.Confidence, ia.Freq, truth,
			errPct(ia.Freq, float64(truth)))
	}
}

func errPct(est, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	return 100 * (est/truth - 1)
}
