package eval

import (
	"fmt"
	"io"

	"dcpi/internal/dcpi"
	"dcpi/internal/driver"
	"dcpi/internal/runner"
	"dcpi/internal/sim"
)

// Table4Row is one workload's per-sample cost breakdown under one
// configuration (paper Table 4).
type Table4Row struct {
	Workload string
	Mode     sim.Mode

	MissRate   float64 // driver hash-table miss rate
	AvgIntr    float64 // mean interrupt-handler cycles per sample
	HitCost    float64 // handler cycles on the hit path
	MissCost   float64 // mean handler cycles on the miss path
	DaemonCost float64 // daemon cycles per raw sample

	Samples uint64
	AggFact float64 // samples per daemon entry (aggregation factor)
}

// Table4Modes mirrors the paper's three measured configurations.
var Table4Modes = []sim.Mode{sim.ModeCycles, sim.ModeDefault, sim.ModeMux}

// Table4 measures the components of time overhead. It samples in the
// 21064-style 4K fast mode so the driver hash table reaches steady state
// within our scaled-down runs (with the paper's 60K periods and our short
// workloads, cold misses would dominate the miss rate).
func Table4(o Options) ([]Table4Row, error) {
	o = o.withDefaults()
	defer o.span("Table 4")()
	cfg := func(wl string, mode sim.Mode) dcpi.Config {
		return dcpi.Config{
			Workload:     wl,
			Scale:        o.Scale,
			Mode:         mode,
			Seed:         seedFor(o.SeedBase, "table4", wl, 0),
			CyclesPeriod: sim.PeriodSpec{Base: 4096, Spread: 512},
		}
	}
	var pending []*runner.Pending
	for _, wl := range o.Workloads {
		for _, mode := range Table4Modes {
			pending = append(pending, o.Runner.Submit(cfg(wl, mode)))
		}
	}
	var rows []Table4Row
	i := 0
	for _, wl := range o.Workloads {
		for _, mode := range Table4Modes {
			r, err := pending[i].Wait()
			i++
			if err != nil {
				return nil, fmt.Errorf("table4 %s %v: %w", wl, mode, err)
			}
			rows = append(rows, costRow(wl, mode, r))
		}
	}
	return rows, nil
}

func costRow(wl string, mode sim.Mode, r *dcpi.Result) Table4Row {
	// Read the stats snapshot, not the live Driver/Daemon: snapshots are
	// all a disk-cached (rehydrated) result carries.
	ds := r.DriverStats
	dmn := r.DaemonStats
	cm := driver.DefaultCostModel()

	row := Table4Row{
		Workload: wl,
		Mode:     mode,
		MissRate: ds.MissRate(),
		AvgIntr:  ds.AvgCost(),
		HitCost:  float64(cm.Setup + cm.HitWork),
		Samples:  ds.Samples,
	}
	if ds.Misses > 0 {
		// Mean over insert and eviction paths.
		missCycles := float64(ds.Misses)*float64(cm.Setup+cm.HitWork) +
			float64(ds.Inserts)*float64(cm.InsertExtra) +
			float64(ds.Evictions+ds.Direct)*float64(cm.MissExtra)
		row.MissCost = missCycles / float64(ds.Misses)
	}
	row.DaemonCost = dmn.CostPerSample()
	if dmn.Entries > 0 {
		row.AggFact = float64(dmn.Samples) / float64(dmn.Entries)
	}
	return row
}

// FormatTable4 renders Table 4.
func FormatTable4(w io.Writer, rows []Table4Row) {
	fprintf(w, "Table 4: time overhead components (cycles per sample)\n\n")
	fprintf(w, "%-18s %-8s %9s %8s %8s %8s %8s %8s\n",
		"workload", "mode", "missrate", "avgintr", "hit", "miss", "daemon", "aggfact")
	for _, r := range rows {
		fprintf(w, "%-18s %-8s %8.1f%% %8.0f %8.0f %8.0f %8.1f %8.1f\n",
			r.Workload, r.Mode, 100*r.MissRate, r.AvgIntr, r.HitCost, r.MissCost,
			r.DaemonCost, r.AggFact)
	}
}

// Table5Row is one workload's space overhead (paper Table 5).
type Table5Row struct {
	Workload string
	Mode     sim.Mode

	UptimeCycles int64
	MemoryBytes  int // daemon resident data at the end of the run
	PeakBytes    int
	DiskBytes    int64 // profile database size
	DriverKernel int   // pinned kernel memory (driver tables)
}

// Table5Modes are the two disk-backed configurations measured.
var Table5Modes = []sim.Mode{sim.ModeCycles, sim.ModeDefault}

// Table5 measures daemon memory and profile-database disk usage. These
// runs write real on-disk databases — in run-private temporary directories
// the session deletes itself (Config.EphemeralDB) after capturing the
// final size in Result.DBDiskBytes. Because no caller-chosen path leaks
// into the run's identity, these runs cache and shard like every other:
// a warm-cache sweep replays Table 5 from snapshots without touching disk.
func Table5(o Options) ([]Table5Row, error) {
	o = o.withDefaults()
	defer o.span("Table 5")()
	cfg := func(wl string, mode sim.Mode) dcpi.Config {
		return dcpi.Config{
			Workload: wl, Scale: o.Scale, Mode: mode,
			Seed:        seedFor(o.SeedBase, "table5", wl, 0),
			EphemeralDB: true,
		}
	}
	var pending []*runner.Pending
	for _, wl := range o.Workloads {
		for _, mode := range Table5Modes {
			pending = append(pending, o.Runner.Submit(cfg(wl, mode)))
		}
	}
	var rows []Table5Row
	i := 0
	for _, wl := range o.Workloads {
		for _, mode := range Table5Modes {
			r, err := pending[i].Wait()
			i++
			if err != nil {
				return nil, fmt.Errorf("table5 %s %v: %w", wl, mode, err)
			}
			rows = append(rows, Table5Row{
				Workload:     wl,
				Mode:         mode,
				UptimeCycles: r.Wall,
				MemoryBytes:  r.DaemonMemBytes,
				PeakBytes:    r.DaemonPeakBytes,
				DiskBytes:    r.DBDiskBytes,
				DriverKernel: r.DriverKernelBytes,
			})
		}
	}
	return rows, nil
}

// FormatTable5 renders Table 5.
func FormatTable5(w io.Writer, rows []Table5Row) {
	fprintf(w, "Table 5: daemon space overhead (bytes) and profile database size\n\n")
	fprintf(w, "%-18s %-8s %14s %12s %12s %12s %12s\n",
		"workload", "mode", "uptime(cyc)", "mem", "peak", "disk", "driver-kmem")
	for _, r := range rows {
		fprintf(w, "%-18s %-8s %14d %12d %12d %12d %12d\n",
			r.Workload, r.Mode, r.UptimeCycles, r.MemoryBytes, r.PeakBytes, r.DiskBytes, r.DriverKernel)
	}
}
