package eval

import (
	"fmt"
	"io"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/cfg"
	"dcpi/internal/dcpi"
	"dcpi/internal/image"
	"dcpi/internal/runner"
	"dcpi/internal/sim"
	"dcpi/internal/stats"
)

// Figures 8 and 9: accuracy of the frequency estimates against dcpix-style
// exact execution counts, as weighted error histograms split by predicted
// confidence.

// AccuracyResult holds one histogram per confidence level plus the paper's
// headline within-X% fractions.
type AccuracyResult struct {
	Hist map[analysis.Confidence]*stats.Histogram
	// Within are the overall weighted fractions with |error| <= 5/10/15%.
	Within5, Within10, Within15 float64
	TotalWeight                 float64
	Procedures                  int
}

func newAccuracyResult() *AccuracyResult {
	mk := func() *stats.Histogram { return stats.NewHistogram(-0.475, 0.475, 0.05) }
	return &AccuracyResult{Hist: map[analysis.Confidence]*stats.Histogram{
		analysis.ConfLow:    mk(),
		analysis.ConfMedium: mk(),
		analysis.ConfHigh:   mk(),
	}}
}

func (a *AccuracyResult) add(conf analysis.Confidence, err, weight float64) {
	if weight <= 0 {
		return
	}
	a.Hist[conf].Add(err, weight)
	a.TotalWeight += weight
	abs := err
	if abs < 0 {
		abs = -abs
	}
	if abs <= 0.05 {
		a.Within5 += weight
	}
	if abs <= 0.10 {
		a.Within10 += weight
	}
	if abs <= 0.15 {
		a.Within15 += weight
	}
}

func (a *AccuracyResult) finish() {
	if a.TotalWeight > 0 {
		a.Within5 /= a.TotalWeight
		a.Within10 /= a.TotalWeight
		a.Within15 /= a.TotalWeight
	}
}

// forEachProcAnalysis runs a workload suite with dense zero-cost CYCLES
// sampling and exact counting, invoking fn for every sampled procedure.
// All runs are submitted up front; Figures 8 and 9 request identical
// configurations, so a shared runner simulates the suite once for both.
func forEachProcAnalysis(o Options, suite []string, mode sim.Mode,
	fn func(r *dcpi.Result, im *image.Image, sym alpha.Symbol, pa *analysis.ProcAnalysis)) error {
	o = o.withDefaults()
	pending := make([]*runner.Pending, len(suite))
	for i, wl := range suite {
		pending[i] = o.Runner.Submit(accCfg(o, wl, mode, 0))
	}
	for i, wl := range suite {
		r, err := pending[i].Wait()
		if err != nil {
			return fmt.Errorf("accuracy %s: %w", wl, err)
		}
		for _, prof := range r.Profiles() {
			if prof.Event != sim.EvCycles {
				continue
			}
			im, ok := r.Loader.ImageByPath(prof.ImagePath)
			if !ok {
				continue
			}
			for _, sym := range im.Symbols {
				var procSamples uint64
				for off, n := range prof.Counts {
					if off >= sym.Offset && off < sym.Offset+sym.Size {
						procSamples += n
					}
				}
				if procSamples == 0 {
					continue
				}
				pa, err := r.AnalyzeProc(prof.ImagePath, sym.Name)
				if err != nil {
					return err
				}
				fn(r, im, sym, pa)
			}
		}
	}
	return nil
}

// Fig8 measures instruction-frequency estimate errors, weighted by CYCLES
// samples (paper Figure 8).
func Fig8(o Options) (*AccuracyResult, error) {
	defer o.span("Figure 8")()
	res := newAccuracyResult()
	err := forEachProcAnalysis(o, AccuracyWorkloads, sim.ModeCycles,
		func(r *dcpi.Result, im *image.Image, sym alpha.Symbol, pa *analysis.ProcAnalysis) {
			exact := r.Exact.Exec[im.ID]
			res.Procedures++
			for i := range pa.Insts {
				ia := &pa.Insts[i]
				gi := int(sym.Offset/alpha.InstBytes) + i
				truth := float64(exact[gi])
				weight := float64(ia.Samples)
				if weight == 0 {
					continue
				}
				var errFrac float64
				switch {
				case truth == 0 && ia.Freq <= 0:
					errFrac = 0
				case truth == 0:
					errFrac = 10 // clamps into the top bucket
				default:
					errFrac = ia.Freq/truth - 1
				}
				res.add(ia.Confidence, errFrac, weight)
			}
		})
	if err != nil {
		return nil, err
	}
	res.finish()
	return res, nil
}

// Fig9 measures CFG edge-frequency estimate errors, weighted by true edge
// executions (paper Figure 9; edges never receive samples directly).
func Fig9(o Options) (*AccuracyResult, error) {
	defer o.span("Figure 9")()
	res := newAccuracyResult()
	err := forEachProcAnalysis(o, AccuracyWorkloads, sim.ModeCycles,
		func(r *dcpi.Result, im *image.Image, sym alpha.Symbol, pa *analysis.ProcAnalysis) {
			exact := r.Exact.Exec[im.ID]
			taken := r.Exact.Taken[im.ID]
			g := pa.Graph
			res.Procedures++
			base := int(sym.Offset / alpha.InstBytes)
			for ei, e := range g.Edges {
				if e.From < 0 || e.To < 0 || e.Kind == cfg.EdgeVirtual {
					continue
				}
				lastLocal := g.Blocks[e.From].End - 1
				last := pa.Insts[lastLocal].Inst
				gi := base + lastLocal
				var truth float64
				switch {
				case last.Op.IsCondBranch() && e.Kind == cfg.EdgeTaken:
					truth = float64(taken[gi])
				case last.Op.IsCondBranch() && e.Kind == cfg.EdgeFallthrough:
					truth = float64(exact[gi]) - float64(taken[gi])
				default:
					// Unconditional flow: the edge runs whenever the block's
					// last instruction does.
					truth = float64(exact[gi])
				}
				est := pa.EdgeFreq[ei] * pa.Period
				conf := pa.ClassConf[g.EdgeClass[ei]]
				weight := truth
				if truth == 0 {
					// Never-executed edge: correct if estimated (near) zero.
					if est > 0.5*pa.Period {
						res.add(conf, 10, est/pa.Period)
					}
					continue
				}
				res.add(conf, est/truth-1, weight)
			}
		})
	if err != nil {
		return nil, err
	}
	res.finish()
	return res, nil
}

// Fig9DoubleSampling repeats the edge-frequency experiment with the §7
// double-sampling prototype enabled: measured edge samples let the analysis
// split block frequencies across conditional successors directly, which is
// exactly the improvement the paper anticipates from edge samples.
func Fig9DoubleSampling(o Options) (*AccuracyResult, error) {
	o = o.withDefaults()
	o.DoubleSample = true
	return Fig9(o)
}

// Fig9Interpretation repeats the edge-frequency experiment with the §7
// instruction-interpretation prototype: sampled conditional branches are
// decoded and their direction recorded, yielding edge samples without the
// second interrupt double sampling needs.
func Fig9Interpretation(o Options) (*AccuracyResult, error) {
	o = o.withDefaults()
	o.InterpretBranches = true
	return Fig9(o)
}

// FormatAccuracy renders a Figure 8/9-style histogram table.
func FormatAccuracy(w io.Writer, title string, res *AccuracyResult) {
	fprintf(w, "%s\n\n", title)
	fprintf(w, "%12s %10s %10s %10s\n", "error bucket", "low", "medium", "high")
	n := len(res.Hist[analysis.ConfHigh].Buckets)
	for i := 0; i < n; i++ {
		lo, hi := res.Hist[analysis.ConfHigh].BucketLabel(i)
		fprintf(w, "%5.0f..%3.0f%% ", 100*lo, 100*hi)
		for _, conf := range []analysis.Confidence{analysis.ConfLow, analysis.ConfMedium, analysis.ConfHigh} {
			h := res.Hist[conf]
			fprintf(w, " %9.2f%%", 100*h.Buckets[i]/maxf(res.TotalWeight, 1))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nwithin  5%%: %5.1f%%\nwithin 10%%: %5.1f%%\nwithin 15%%: %5.1f%%\n",
		100*res.Within5, 100*res.Within10, 100*res.Within15)
	fprintf(w, "(%d procedures, total weight %.0f)\n", res.Procedures, res.TotalWeight)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
