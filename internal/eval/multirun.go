package eval

import (
	"fmt"
	"io"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/dcpi"
	"dcpi/internal/runner"
	"dcpi/internal/sim"
)

// Paper §6.2: "To gauge how the accuracy of the estimates is affected by
// the number of CYCLES samples gathered, we compared the estimates obtained
// from a profile for a single run of the integer workloads with those
// obtained from 80 runs" — single run 54% within 5%, 80 runs 70%; gcc went
// from 23% to 53%. This experiment merges profiles across N runs and
// measures the same effect.

// MultiRunResult compares estimate accuracy for 1 vs N merged runs.
type MultiRunResult struct {
	Runs                     int
	SingleWithin5, Within5   float64
	SingleWithin10, Within10 float64
}

// Fig8MultiRun runs each accuracy workload Runs times, merges the profiles
// (and the exact counts), and compares frequency-estimate accuracy against
// the single-run case.
func Fig8MultiRun(o Options, runs int) (*MultiRunResult, error) {
	o = o.withDefaults()
	defer o.span("Figure 8 multi-run")()
	if runs < 2 {
		runs = 4
	}
	res := &MultiRunResult{Runs: runs}

	single := newAccuracyResult()
	merged := newAccuracyResult()

	// Submit every run of every workload before collecting anything, so
	// the whole grid fans out across the runner's workers at once. Run 0
	// of each workload is the accuracy suite's own run (accCfg), so with a
	// shared runner the single-run baseline costs no extra simulation.
	pending := make([][]*runner.Pending, len(AccuracyWorkloads))
	for wi, wl := range AccuracyWorkloads {
		for run := 0; run < runs; run++ {
			pending[wi] = append(pending[wi], o.Runner.Submit(accCfg(o, wl, sim.ModeCycles, run)))
		}
	}

	for wi, wl := range AccuracyWorkloads {
		// Collect per-run profiles and exact counts.
		type runData struct {
			r *dcpi.Result
		}
		var rds []runData
		for run := 0; run < runs; run++ {
			r, err := pending[wi][run].Wait()
			if err != nil {
				return nil, fmt.Errorf("multirun %s run %d: %w", wl, run, err)
			}
			rds = append(rds, runData{r})
		}

		first := rds[0].r
		for _, prof := range first.Profiles() {
			if prof.Event != sim.EvCycles {
				continue
			}
			im, ok := first.Loader.ImageByPath(prof.ImagePath)
			if !ok {
				continue
			}
			// Merge sample maps and exact counts across runs. Images are
			// identical across runs (same workload source), so offsets align.
			mergedSamples := map[uint64]uint64{}
			mergedExact := make([]uint64, len(im.Code))
			for _, rd := range rds {
				if p := rd.r.Profile(prof.ImagePath, sim.EvCycles); p != nil {
					for off, n := range p.Counts {
						mergedSamples[off] += n
					}
				}
				rim, ok := rd.r.Loader.ImageByPath(prof.ImagePath)
				if !ok {
					continue
				}
				for i, n := range rd.r.Exact.Exec[rim.ID] {
					mergedExact[i] += n
				}
			}
			singleExact := first.Exact.Exec[im.ID]

			for _, sym := range im.Symbols {
				var procSamples uint64
				for off, n := range prof.Counts {
					if off >= sym.Offset && off < sym.Offset+sym.Size {
						procSamples += n
					}
				}
				if procSamples == 0 {
					continue
				}
				code, base, err := im.ProcCode(sym.Name)
				if err != nil {
					return nil, err
				}
				model := first.Model()
				period := first.AvgCyclesPeriod()

				paSingle := analysis.AnalyzeProc(sym.Name, code, base,
					prof.Counts, nil, model, period)
				paMerged := analysis.AnalyzeProc(sym.Name, code, base,
					mergedSamples, nil, model, period)

				accumulate := func(res *AccuracyResult, pa *analysis.ProcAnalysis, exact []uint64) {
					for i := range pa.Insts {
						ia := &pa.Insts[i]
						gi := int(sym.Offset/alpha.InstBytes) + i
						truth := float64(exact[gi])
						weight := float64(ia.Samples)
						if weight == 0 {
							continue
						}
						var errFrac float64
						switch {
						case truth == 0 && ia.Freq <= 0:
							errFrac = 0
						case truth == 0:
							errFrac = 10
						default:
							errFrac = ia.Freq/truth - 1
						}
						res.add(ia.Confidence, errFrac, weight)
					}
				}
				accumulate(single, paSingle, singleExact)
				accumulate(merged, paMerged, mergedExact)
			}
		}
	}
	single.finish()
	merged.finish()
	res.SingleWithin5, res.SingleWithin10 = single.Within5, single.Within10
	res.Within5, res.Within10 = merged.Within5, merged.Within10
	return res, nil
}

// FormatMultiRun renders the comparison.
func FormatMultiRun(w io.Writer, res *MultiRunResult) {
	fprintf(w, "§6.2 sample-count sensitivity: 1 run vs %d merged runs\n\n", res.Runs)
	fprintf(w, "%-14s %10s %10s\n", "", "within 5%", "within 10%")
	fprintf(w, "%-14s %9.1f%% %9.1f%%\n", "single run", 100*res.SingleWithin5, 100*res.SingleWithin10)
	fprintf(w, "%-14s %9.1f%% %9.1f%%\n", fmt.Sprintf("%d runs merged", res.Runs),
		100*res.Within5, 100*res.Within10)
}
