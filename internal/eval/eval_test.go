package eval

import (
	"bytes"
	"strings"
	"testing"

	"dcpi/internal/analysis"
	"dcpi/internal/runner"
	"dcpi/internal/sim"
)

// tiny keeps test experiments fast. The shared runner deduplicates
// identical configurations across the whole test suite (e.g. TestTable2 and
// TestTable3 request the same base runs), exactly like dcpieval -all does.
var tiny = Options{
	Runs:  3,
	Scale: 0.12,
	Workloads: []string{
		"compress", "gcc", "mccalpin-assign", "wave5",
	},
	Runner: runner.New(0),
}

func TestTable2(t *testing.T) {
	rows, err := Table2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tiny.Workloads) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanCycles <= 0 {
			t.Errorf("%s: mean = %v", r.Workload, r.MeanCycles)
		}
		if r.Description == "" {
			t.Errorf("%s: no description", r.Workload)
		}
	}
	var buf bytes.Buffer
	FormatTable2(&buf, rows)
	if !strings.Contains(buf.String(), "compress") {
		t.Error("format output missing workloads")
	}
}

func TestTable3OverheadShape(t *testing.T) {
	rows, err := Table3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		cyc := r.Overhead[sim.ModeCycles].Mean
		mux := r.Overhead[sim.ModeMux].Mean
		// The headline result: overhead is low (a few percent).
		if cyc < -0.02 || cyc > 0.12 {
			t.Errorf("%s: cycles overhead = %.2f%%", r.Workload, 100*cyc)
		}
		if mux < -0.02 || mux > 0.15 {
			t.Errorf("%s: mux overhead = %.2f%%", r.Workload, 100*mux)
		}
	}
	var buf bytes.Buffer
	FormatTable3(&buf, rows)
	if !strings.Contains(buf.String(), "slowdown") {
		t.Error("format output wrong")
	}
}

func TestTable4CostShape(t *testing.T) {
	rows, err := Table4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	byWL := map[string]map[sim.Mode]Table4Row{}
	for _, r := range rows {
		if byWL[r.Workload] == nil {
			byWL[r.Workload] = map[sim.Mode]Table4Row{}
		}
		byWL[r.Workload][r.Mode] = r
		if r.Samples == 0 {
			t.Errorf("%s/%v: no samples", r.Workload, r.Mode)
		}
		if r.AvgIntr < r.HitCost || (r.MissCost > 0 && r.MissCost < r.HitCost) {
			t.Errorf("%s/%v: costs inconsistent: %+v", r.Workload, r.Mode, r)
		}
	}
	// The paper's key contrast: gcc (many PIDs) has a much higher
	// hash-table miss rate than the loopy workloads, and a higher daemon
	// cost per sample.
	gcc := byWL["gcc"][sim.ModeCycles]
	compress := byWL["compress"][sim.ModeCycles]
	if gcc.MissRate <= compress.MissRate {
		t.Errorf("gcc miss rate %.3f <= compress %.3f", gcc.MissRate, compress.MissRate)
	}
	if gcc.DaemonCost <= compress.DaemonCost {
		t.Errorf("gcc daemon cost %.1f <= compress %.1f", gcc.DaemonCost, compress.DaemonCost)
	}
	var buf bytes.Buffer
	FormatTable4(&buf, rows)
	if !strings.Contains(buf.String(), "missrate") {
		t.Error("format output wrong")
	}
}

func TestTable5SpaceShape(t *testing.T) {
	o := tiny
	o.Workloads = []string{"compress", "x11perf"}
	rows, err := Table5(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DiskBytes <= 0 {
			t.Errorf("%s/%v: no disk usage", r.Workload, r.Mode)
		}
		if r.PeakBytes < r.MemoryBytes {
			t.Errorf("%s/%v: peak < current", r.Workload, r.Mode)
		}
		if r.DriverKernel != 512*1024 {
			t.Errorf("%s/%v: driver kernel memory = %d", r.Workload, r.Mode, r.DriverKernel)
		}
	}
	var buf bytes.Buffer
	FormatTable5(&buf, rows)
	if !strings.Contains(buf.String(), "disk") {
		t.Error("format output wrong")
	}
}

func TestFig6(t *testing.T) {
	o := tiny
	o.Runs = 2
	series, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Fig6Workloads) {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		for mode, times := range s.Times {
			if len(times) != o.Runs {
				t.Errorf("%s/%v: %d times", s.Workload, mode, len(times))
			}
		}
	}
	var buf bytes.Buffer
	FormatFig6(&buf, series)
	if !strings.Contains(buf.String(), "wave5") {
		t.Error("format output wrong")
	}
}

func TestFig8FrequencyAccuracy(t *testing.T) {
	o := tiny
	res, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWeight == 0 || res.Procedures == 0 {
		t.Fatal("no data")
	}
	// Shape: a solid majority of samples within 10% (the paper reports
	// 87%; our simulated setup should also put most weight near zero).
	if res.Within10 < 0.5 {
		t.Errorf("within 10%% = %.1f%%, want at least half", 100*res.Within10)
	}
	if res.Within5 > res.Within10 || res.Within10 > res.Within15 {
		t.Error("within-X fractions not monotone")
	}
	var buf bytes.Buffer
	FormatAccuracy(&buf, "Figure 8", res)
	if !strings.Contains(buf.String(), "within 10%") {
		t.Error("format output wrong")
	}
}

func TestFig9EdgeAccuracy(t *testing.T) {
	res, err := Fig9(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWeight == 0 {
		t.Fatal("no edge data")
	}
	// Edges are estimated indirectly; still expect meaningful accuracy.
	if res.Within10 < 0.3 {
		t.Errorf("edge within 10%% = %.1f%%", 100*res.Within10)
	}
}

func TestFig10Correlation(t *testing.T) {
	res, err := Fig10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The paper finds a strong positive correlation (~0.9). Require a
	// clearly positive one.
	if res.RTop < 0.3 {
		t.Errorf("top correlation = %.3f, want positive", res.RTop)
	}
	var buf bytes.Buffer
	FormatFig10(&buf, res)
	if !strings.Contains(buf.String(), "correlation") {
		t.Error("format output wrong")
	}
}

func TestAblationHT(t *testing.T) {
	res, err := AblationHT(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceLength < 500 {
		t.Fatalf("trace too short: %d", res.TraceLength)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range res.Rows {
		byLabel[r.Label] = r
	}
	base := byLabel["4-way round-robin (shipping)"]
	best := byLabel["6-way swap-to-front"]
	if base.Cost == 0 || best.Cost == 0 {
		t.Fatal("missing design points")
	}
	// The paper's §5.4 result: the 6-way + swap-to-front design reduces
	// cost relative to the shipping configuration.
	if best.Cost >= base.Cost {
		t.Errorf("6-way+stf cost %d >= shipping %d", best.Cost, base.Cost)
	}
	two := byLabel["2-way round-robin"]
	if two.Stats.Evictions < base.Stats.Evictions {
		t.Error("2-way should evict at least as much as 4-way")
	}
	var buf bytes.Buffer
	FormatAblation(&buf, res)
	if !strings.Contains(buf.String(), "design") {
		t.Error("format output wrong")
	}
}

func TestFigures1Through4(t *testing.T) {
	o := tiny
	var buf bytes.Buffer
	if err := Fig1(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ffb8ZeroPolyArc", "vmunix", "procedure"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := Fig2(o, &buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"Best-case", "Actual", "stq"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 output missing %q", want)
		}
	}

	buf.Reset()
	runs, err := Fig3(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"range%", "parmvr_"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := Fig4(o, &buf, runs); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"D-cache miss", "Subtotal dynamic", "Execution"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q:\n%s", want, out)
		}
	}
	_ = analysis.ConfHigh
}

func TestFig7FreqTable(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(tiny, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Si/Mi", "stq", "estimated frequency", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig8MultiRun(t *testing.T) {
	o := tiny
	res, err := Fig8MultiRun(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Within5 <= 0 || res.SingleWithin5 <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// More samples should not hurt accuracy appreciably (the paper: 54% ->
	// 70% for the integer workloads).
	if res.Within5 < res.SingleWithin5-0.05 {
		t.Errorf("merged runs less accurate: %.2f vs %.2f", res.Within5, res.SingleWithin5)
	}
	var buf bytes.Buffer
	FormatMultiRun(&buf, res)
	if !strings.Contains(buf.String(), "merged") {
		t.Error("format output")
	}
}
