package eval

import (
	"fmt"
	"io"

	"dcpi/internal/runner"
	"dcpi/internal/sim"
	"dcpi/internal/stats"
)

// Table2Row is one workload's base characterization (paper Table 2).
type Table2Row struct {
	Workload    string
	Description string
	NumCPUs     int
	MeanCycles  float64
	CI95        float64
	Runs        int
}

// Table2 measures base (unprofiled) run times with confidence intervals.
func Table2(o Options) ([]Table2Row, error) {
	o = o.withDefaults()
	defer o.span("Table 2")()
	pending := make([][]*runner.Pending, len(o.Workloads))
	for wi, wl := range o.Workloads {
		for run := 0; run < o.Runs; run++ {
			pending[wi] = append(pending[wi], o.Runner.Submit(baseCfg(o, wl, run)))
		}
	}
	var rows []Table2Row
	for wi, wl := range o.Workloads {
		results, err := collect(pending[wi], "table2 "+wl)
		if err != nil {
			return nil, err
		}
		var times []float64
		var desc string
		var ncpu int
		for _, r := range results {
			times = append(times, float64(r.Wall))
			ncpu = r.NumCPUs
		}
		if spec, ok := specFor(wl); ok {
			desc = spec
		}
		rows = append(rows, Table2Row{
			Workload: wl, Description: desc, NumCPUs: ncpu,
			MeanCycles: stats.Mean(times), CI95: stats.CI95(times), Runs: o.Runs,
		})
	}
	return rows, nil
}

// FormatTable2 renders Table 2.
func FormatTable2(w io.Writer, rows []Table2Row) {
	fprintf(w, "Table 2: workloads and base runtimes (simulated cycles, 95%% CI)\n\n")
	fprintf(w, "%-18s %5s %16s %14s  %s\n", "workload", "CPUs", "mean cycles", "95% CI", "description")
	for _, r := range rows {
		fprintf(w, "%-18s %5d %16.0f %10.0f (±)  %s\n",
			r.Workload, r.NumCPUs, r.MeanCycles, r.CI95, r.Description)
	}
}

// Table3Row is one workload's slowdown under each profiling configuration
// (paper Table 3).
type Table3Row struct {
	Workload string
	// Overhead[mode] is the mean slowdown fraction with its CI half-width.
	Overhead map[sim.Mode]Measurement
}

// Measurement is a mean with a 95% confidence half-width.
type Measurement struct {
	Mean float64
	CI   float64
	N    int
}

// Table3Modes are the profiled configurations measured against base.
var Table3Modes = []sim.Mode{sim.ModeCycles, sim.ModeDefault, sim.ModeMux}

// Table3 measures the overall time overhead of the three configurations.
// Its base runs are the same configurations as Table 2's, so a shared
// runner simulates them only once.
func Table3(o Options) ([]Table3Row, error) {
	o = o.withDefaults()
	defer o.span("Table 3")()
	type wlPending struct {
		base  []*runner.Pending
		modes map[sim.Mode][]*runner.Pending
	}
	pending := make([]wlPending, len(o.Workloads))
	for wi, wl := range o.Workloads {
		pending[wi].modes = map[sim.Mode][]*runner.Pending{}
		for run := 0; run < o.Runs; run++ {
			pending[wi].base = append(pending[wi].base, o.Runner.Submit(baseCfg(o, wl, run)))
		}
		for _, mode := range Table3Modes {
			for run := 0; run < o.Runs; run++ {
				pending[wi].modes[mode] = append(pending[wi].modes[mode],
					o.Runner.Submit(modeCfg(o, wl, mode, run)))
			}
		}
	}
	var rows []Table3Row
	for wi, wl := range o.Workloads {
		row := Table3Row{Workload: wl, Overhead: map[sim.Mode]Measurement{}}
		// Per-seed base times, reused across modes (paired comparison).
		baseResults, err := collect(pending[wi].base, "table3 "+wl+" base")
		if err != nil {
			return nil, err
		}
		base := make([]float64, o.Runs)
		for run, r := range baseResults {
			base[run] = float64(r.Wall)
		}
		for _, mode := range Table3Modes {
			results, err := collect(pending[wi].modes[mode], fmt.Sprintf("table3 %s %v", wl, mode))
			if err != nil {
				return nil, err
			}
			var ovh []float64
			for run, r := range results {
				ovh = append(ovh, float64(r.Wall)/base[run]-1)
			}
			row.Overhead[mode] = Measurement{Mean: stats.Mean(ovh), CI: stats.CI95(ovh), N: o.Runs}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders Table 3 (percent slowdown per configuration).
func FormatTable3(w io.Writer, rows []Table3Row) {
	fprintf(w, "Table 3: overall slowdown (percent, mean ± 95%% CI)\n\n")
	fprintf(w, "%-18s %16s %16s %16s\n", "workload", "cycles", "default", "mux")
	for _, r := range rows {
		fprintf(w, "%-18s", r.Workload)
		for _, mode := range Table3Modes {
			m := r.Overhead[mode]
			fprintf(w, "  %6.2f ±%5.2f%%", 100*m.Mean, 100*m.CI)
		}
		fprintf(w, "\n")
	}
}

// Fig6Series is the running-time scatter for one workload (paper Figure 6):
// per-run times under all four configurations.
type Fig6Series struct {
	Workload string
	// Times[mode] holds one wall time per run, in cycles.
	Times map[sim.Mode][]float64
}

// Fig6Workloads are the three programs the paper plots.
var Fig6Workloads = []string{"altavista", "gcc", "wave5"}

// Fig6 collects the running-time distributions. Every configuration it
// measures also appears in the Table 2/3 sweeps, so with a shared runner
// this figure costs no additional simulation.
func Fig6(o Options) ([]Fig6Series, error) {
	o = o.withDefaults()
	defer o.span("Figure 6")()
	modes := []sim.Mode{sim.ModeOff, sim.ModeCycles, sim.ModeDefault, sim.ModeMux}
	pending := make(map[string]map[sim.Mode][]*runner.Pending)
	for _, wl := range Fig6Workloads {
		pending[wl] = map[sim.Mode][]*runner.Pending{}
		for _, mode := range modes {
			for run := 0; run < o.Runs; run++ {
				pending[wl][mode] = append(pending[wl][mode],
					o.Runner.Submit(modeCfg(o, wl, mode, run)))
			}
		}
	}
	var out []Fig6Series
	for _, wl := range Fig6Workloads {
		s := Fig6Series{Workload: wl, Times: map[sim.Mode][]float64{}}
		for _, mode := range modes {
			results, err := collect(pending[wl][mode], fmt.Sprintf("fig6 %s %v", wl, mode))
			if err != nil {
				return nil, err
			}
			for _, r := range results {
				s.Times[mode] = append(s.Times[mode], float64(r.Wall))
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// FormatFig6 renders the distributions as mean-normalized scatter rows.
func FormatFig6(w io.Writer, series []Fig6Series) {
	fprintf(w, "Figure 6: distribution of running times (normalized to the base mean)\n\n")
	for _, s := range series {
		baseMean := stats.Mean(s.Times[sim.ModeOff])
		fprintf(w, "%s (base mean = %.0f cycles)\n", s.Workload, baseMean)
		for _, mode := range []sim.Mode{sim.ModeOff, sim.ModeCycles, sim.ModeDefault, sim.ModeMux} {
			fprintf(w, "  %-8s", mode)
			for _, t := range s.Times[mode] {
				fprintf(w, " %6.2f%%", 100*t/baseMean)
			}
			m := stats.Mean(s.Times[mode])
			ci := stats.CI95(s.Times[mode])
			fprintf(w, "   mean %.2f%% ± %.2f%%\n", 100*m/baseMean, 100*ci/baseMean)
		}
	}
}
