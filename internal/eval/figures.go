package eval

import (
	"fmt"
	"io"

	"dcpi/internal/dcpi"
	"dcpi/internal/runner"
	"dcpi/internal/sim"
)

// Figures 1-4: the paper's worked tool-output examples, regenerated on the
// simulated machine.

// Fig1 profiles the x11perf-like workload in default mode and writes the
// dcpiprof per-procedure listing.
func Fig1(o Options, w io.Writer) error {
	defer o.span("Figure 1")()
	o = o.withDefaults()
	r, err := o.Runner.Run(dcpi.Config{
		Workload:     "x11perf",
		Scale:        o.Scale,
		Mode:         sim.ModeDefault,
		Seed:         seedFor(o.SeedBase, "fig1", "x11perf", 0),
		CyclesPeriod: o.DensePeriod,
	})
	if err != nil {
		return fmt.Errorf("fig1: %w", err)
	}
	dcpi.FormatProcList(w, r, 12)
	return nil
}

// Fig2 profiles the McCalpin copy loop and writes the dcpicalc annotated
// listing of the copy-loop basic block.
func Fig2(o Options, w io.Writer) error {
	defer o.span("Figure 2")()
	o = o.withDefaults()
	r, err := o.Runner.Run(dcpi.Config{
		Workload:     "mccalpin-assign",
		Scale:        o.Scale,
		Mode:         sim.ModeCycles,
		Seed:         seedFor(o.SeedBase, "fig2", "mccalpin-assign", 0),
		CyclesPeriod: o.DensePeriod,
	})
	if err != nil {
		return fmt.Errorf("fig2: %w", err)
	}
	pa, err := r.AnalyzeProc("/bin/mccalpin", "copyloop")
	if err != nil {
		return err
	}
	dcpi.FormatCalc(w, pa)
	return nil
}

// Fig7 regenerates the paper's frequency-estimation walkthrough: the
// Sᵢ/Mᵢ table for the copy loop with the cluster-selected issue points
// starred.
func Fig7(o Options, w io.Writer) error {
	defer o.span("Figure 7")()
	o = o.withDefaults()
	r, err := o.Runner.Run(dcpi.Config{
		Workload:           "mccalpin-assign",
		Scale:              o.Scale,
		Mode:               sim.ModeCycles,
		Seed:               seedFor(o.SeedBase, "fig7", "mccalpin-assign", 0),
		CyclesPeriod:       o.DensePeriod,
		ZeroCostCollection: true,
	})
	if err != nil {
		return fmt.Errorf("fig7: %w", err)
	}
	pa, err := r.AnalyzeProc("/bin/mccalpin", "copyloop")
	if err != nil {
		return err
	}
	dcpi.FormatFreqTable(w, pa)
	return nil
}

// Fig3 runs wave5 eight times with different page placements and writes the
// dcpistats cross-run variance table; it returns the per-run procedure
// sample maps so Fig4 can reuse the fastest run.
func Fig3(o Options, w io.Writer) ([]*dcpi.Result, error) {
	defer o.span("Figure 3")()
	o = o.withDefaults()
	const runs = 8
	pending := make([]*runner.Pending, runs)
	for i := range pending {
		pending[i] = o.Runner.Submit(dcpi.Config{
			Workload:     "wave5",
			Scale:        o.Scale,
			Mode:         sim.ModeCycles,
			Seed:         seedFor(o.SeedBase, "fig3", "wave5", i),
			CyclesPeriod: o.DensePeriod,
		})
	}
	var (
		results []*dcpi.Result
		maps    []map[string]uint64
		totals  []uint64
	)
	for i := 0; i < runs; i++ {
		r, err := pending[i].Wait()
		if err != nil {
			return nil, fmt.Errorf("fig3 run %d: %w", i, err)
		}
		results = append(results, r)
		m := r.ProcSampleMap()
		maps = append(maps, m)
		var t uint64
		for _, v := range m {
			t += v
		}
		totals = append(totals, t)
	}
	rows := dcpi.StatsAcrossRuns(maps)
	dcpi.FormatStats(w, rows, totals, 12)
	return results, nil
}

// Fig4 writes the dcpicalc stall summary for smooth_ from the fastest of
// the Fig3 runs (the paper's Figure 4).
func Fig4(o Options, w io.Writer, fig3Runs []*dcpi.Result) error {
	if len(fig3Runs) == 0 {
		var err error
		fig3Runs, err = Fig3(o, io.Discard)
		if err != nil {
			return err
		}
	}
	fastest := fig3Runs[0]
	for _, r := range fig3Runs[1:] {
		if r.Wall < fastest.Wall {
			fastest = r
		}
	}
	pa, err := fastest.AnalyzeProc("/usr/bin/wave5", "smooth_")
	if err != nil {
		return err
	}
	fprintf(w, "Summary of how cycles are spent in smooth_ (fastest of %d runs)\n\n", len(fig3Runs))
	dcpi.FormatSummary(w, pa)
	return nil
}
