package eval

import (
	"fmt"
	"io"

	"dcpi/internal/dcpi"
	"dcpi/internal/driver"
	"dcpi/internal/sim"
)

// The §5.4 hash-table design-space ablation: replay a real sample trace
// through alternative hash-table designs (associativity, replacement
// policy, swap-to-front) and compare estimated handler cost. The paper's
// finding: 6-way + swap-to-front reduces overall system cost by 10-20%.

// AblationRow is one design point's result.
type AblationRow struct {
	Config    driver.HTConfig
	Label     string
	Stats     driver.HTStats
	Cost      int64
	CostRatio float64 // relative to the shipping 4-way round-robin design
}

// AblationResult is the full sweep for one trace.
type AblationResult struct {
	Workload    string
	TraceLength int
	Rows        []AblationRow
}

// AblationHT captures a trace from a high-eviction workload (gcc-like, per
// the paper) and sweeps the design space. Two scalings keep the experiment
// laptop-sized while preserving the pressure ratio the paper saw: the trace
// is captured with a very dense zero-cost sampling period (the key
// *distribution* is what matters for a trace-replay study), and the swept
// tables are 8x smaller than the shipping 16K entries, matching our
// correspondingly shorter trace.
func AblationHT(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	defer o.span("Ablation ht")()
	const wl = "gcc"
	scale := o.Scale
	if scale < 0.25 {
		scale = 0.25
	}
	r, err := o.Runner.Run(dcpi.Config{
		Workload:           wl,
		Scale:              scale,
		Mode:               sim.ModeCycles,
		Seed:               seedFor(o.SeedBase, "ablation", wl, 0),
		CyclesPeriod:       sim.PeriodSpec{Base: 448, Spread: 128},
		TraceSamples:       true,
		ZeroCostCollection: true,
	})
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	trace := make([]driver.Key, len(r.Trace))
	for i, s := range r.Trace {
		trace[i] = driver.Key{PID: s.PID, PC: s.PC, Event: s.Event}
	}

	// The paper's 6-way design packs more entries per cache line, which
	// also grows total capacity; the bucket count stays fixed.
	const buckets = 512 // shipping 4096, scaled 8x down with the trace
	designs := []struct {
		label string
		cfg   driver.HTConfig
	}{
		{"4-way round-robin (shipping)", driver.HTConfig{Buckets: buckets, Ways: 4}},
		{"4-way LRU", driver.HTConfig{Buckets: buckets, Ways: 4, Policy: driver.PolicyLRU}},
		{"4-way swap-to-front", driver.HTConfig{Buckets: buckets, Ways: 4, SwapToFront: true}},
		{"6-way round-robin", driver.HTConfig{Buckets: buckets, Ways: 6}},
		{"6-way swap-to-front", driver.HTConfig{Buckets: buckets, Ways: 6, SwapToFront: true}},
		{"8-way swap-to-front", driver.HTConfig{Buckets: buckets, Ways: 8, SwapToFront: true}},
		{"2-way round-robin", driver.HTConfig{Buckets: buckets, Ways: 2}},
	}

	cm := driver.DefaultCostModel()
	res := &AblationResult{Workload: wl, TraceLength: len(trace)}
	var baseline int64
	for i, d := range designs {
		st := driver.SimulateTrace(trace, d.cfg)
		cost := st.Cost(cm)
		if i == 0 {
			baseline = cost
		}
		ratio := 1.0
		if baseline > 0 {
			ratio = float64(cost) / float64(baseline)
		}
		res.Rows = append(res.Rows, AblationRow{
			Config: d.cfg, Label: d.label, Stats: st, Cost: cost, CostRatio: ratio,
		})
	}
	return res, nil
}

// FormatAblation renders the sweep.
func FormatAblation(w io.Writer, res *AblationResult) {
	fprintf(w, "Hash-table design sweep (§5.4) on a %s trace of %d samples\n\n",
		res.Workload, res.TraceLength)
	fprintf(w, "%-30s %9s %9s %10s %12s %8s\n",
		"design", "missrate", "probes", "evictions", "cost(cyc)", "vs base")
	for _, r := range res.Rows {
		fprintf(w, "%-30s %8.1f%% %9.2f %10d %12d %7.1f%%\n",
			r.Label, 100*r.Stats.MissRate(), r.Stats.AvgProbes(),
			r.Stats.Evictions, r.Cost, 100*r.CostRatio)
	}
}
