package eval

import (
	"bytes"
	"runtime"
	"testing"

	"dcpi/internal/runner"
)

// renderSweep renders Table 2, Table 3, Figure 8, and Figure 9 through one
// shared runner and returns the concatenated text.
func renderSweep(t *testing.T, o Options) string {
	t.Helper()
	var buf bytes.Buffer

	t2, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	FormatTable2(&buf, t2)

	t3, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	FormatTable3(&buf, t3)

	f8, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	FormatAccuracy(&buf, "Figure 8", f8)

	f9, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	FormatAccuracy(&buf, "Figure 9", f9)

	return buf.String()
}

// TestWorkerCountDoesNotChangeResults is the engine's core contract: the
// rendered experiments are byte-identical with one worker and with a full
// GOMAXPROCS pool, because results depend only on run configurations (which
// carry structurally derived seeds), never on scheduling order.
func TestWorkerCountDoesNotChangeResults(t *testing.T) {
	o := Options{
		Runs:  2,
		Scale: 0.1,
		Workloads: []string{
			"compress", "mccalpin-assign",
		},
	}

	serial := o
	serial.Runner = runner.New(1)
	serialOut := renderSweep(t, serial)

	wide := o
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // exercise a real pool even on small CI machines
	}
	wide.Runner = runner.New(workers)
	wideOut := renderSweep(t, wide)

	if serialOut != wideOut {
		t.Errorf("output differs between 1 worker and %d workers:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
			workers, serialOut, workers, wideOut)
	}
	if serialOut == "" {
		t.Fatal("empty sweep output")
	}

	// The same sweep also demonstrates the cross-experiment sharing the
	// runner exists for: Table 3's base runs are Table 2's, and Figure 9
	// analyzes Figure 8's dense-sampling runs, so the shared runner must
	// have deduplicated at least those requests.
	st := wide.Runner.Stats()
	sims, deduped := st.Simulated, st.MemHits
	if sims == 0 {
		t.Fatal("no simulations ran")
	}
	minShared := len(o.Workloads)*o.Runs + len(AccuracyWorkloads)
	if deduped < minShared {
		t.Errorf("deduplicated %d requests, want at least %d (simulated %d)",
			deduped, minShared, sims)
	}
}
