package eval

import (
	"fmt"
	"io"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/dcpi"
	"dcpi/internal/image"
	"dcpi/internal/sim"
	"dcpi/internal/stats"
)

// Figure 10: correlation between the culprit analysis's I-cache stall-cycle
// ranges and independently measured IMISS events, per procedure.

// Fig10Point is one procedure's pair of measurements.
type Fig10Point struct {
	Workload  string
	Procedure string
	// IMissEvents is the projected number of I-cache misses (IMISS samples
	// scaled by the sampling period).
	IMissEvents float64
	// StallMin/StallMax bound the stall cycles attributed to I-cache misses
	// by the analysis.
	StallMin, StallMax float64
}

// Fig10Result holds the scatter plus the paper's three correlation
// coefficients (top, bottom, midpoint of each range).
type Fig10Result struct {
	Points              []Fig10Point
	RTop, RBottom, RMid float64
}

// Fig10 runs the suite in default mode (CYCLES + IMISS) and correlates.
// Sampling is denser than the Figure 8/9 runs so the many small procedures
// of the I-cache-pressure programs each gather enough samples to place.
// The denser periods make these configurations distinct from the Figure
// 8/9 runs, so they never falsely share cached simulations with them.
func Fig10(o Options) (*Fig10Result, error) {
	o = o.withDefaults()
	defer o.span("Figure 10")()
	o.DensePeriod = sim.PeriodSpec{Base: 256, Spread: 64}
	o.DenseEventPeriod = sim.PeriodSpec{Base: 64, Spread: 16}
	res := &Fig10Result{}
	err := forEachProcAnalysis(o, Fig10Workloads, sim.ModeDefault,
		func(r *dcpi.Result, im *image.Image, sym alpha.Symbol, pa *analysis.ProcAnalysis) {
			if pa.Summary.TotalSamples < 8 {
				return
			}
			var imissSamples uint64
			if p := r.Profile(im.Path, sim.EvIMiss); p != nil {
				for off, n := range p.Counts {
					if off >= sym.Offset && off < sym.Offset+sym.Size {
						imissSamples += n
					}
				}
			}
			events := float64(imissSamples) * r.AvgEventPeriod()
			totalCycles := float64(pa.Summary.TotalSamples) * pa.Period
			res.Points = append(res.Points, Fig10Point{
				Workload:    r.Config.Workload,
				Procedure:   sym.Name,
				IMissEvents: events,
				StallMin:    pa.Summary.DynMin[analysis.CauseICache] * totalCycles,
				StallMax:    pa.Summary.DynMax[analysis.CauseICache] * totalCycles,
			})
		})
	if err != nil {
		return nil, err
	}
	var xs, top, bottom, mid []float64
	for _, p := range res.Points {
		xs = append(xs, p.IMissEvents)
		top = append(top, p.StallMax)
		bottom = append(bottom, p.StallMin)
		mid = append(mid, (p.StallMin+p.StallMax)/2)
	}
	res.RTop = stats.Correlation(xs, top)
	res.RBottom = stats.Correlation(xs, bottom)
	res.RMid = stats.Correlation(xs, mid)
	return res, nil
}

// FormatFig10 renders the scatter and correlations.
func FormatFig10(w io.Writer, res *Fig10Result) {
	fprintf(w, "Figure 10: I-cache miss stall cycles vs IMISS events per procedure\n\n")
	fprintf(w, "%-12s %-24s %14s %14s %14s\n", "workload", "procedure", "imiss events", "stall min", "stall max")
	for _, p := range res.Points {
		fprintf(w, "%-12s %-24s %14.0f %14.0f %14.0f\n",
			p.Workload, p.Procedure, p.IMissEvents, p.StallMin, p.StallMax)
	}
	fprintf(w, "\ncorrelation (top of range)    r = %.3f\n", res.RTop)
	fprintf(w, "correlation (bottom of range) r = %.3f\n", res.RBottom)
	fprintf(w, "correlation (midpoint)        r = %.3f\n", res.RMid)
	_ = fmt.Sprint() // keep fmt import stable if format strings change
}
