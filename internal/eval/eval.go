// Package eval regenerates every table and figure of the paper's evaluation
// (§3 examples, §5 performance, §6.2-6.3 accuracy) on the simulated
// machine. Each experiment returns a structured result plus a text
// rendering whose rows mirror the paper's.
//
// Experiments do not simulate inline: they submit every run configuration
// they need to a runner (internal/runner) up front, then collect results in
// their natural deterministic order. The runner fans distinct
// configurations out across a bounded worker pool and deduplicates
// identical configurations across experiments (Table 2's base runs are
// Table 3's paired baselines; Figure 6 re-measures Table 3's
// configurations; Figures 8 and 9 analyze the same dense-sampling runs), so
// a full sweep does strictly less simulation work than the serial loops it
// replaced while producing bit-identical output for any worker count.
//
// # Seed derivation
//
// Per-run seeds are derived structurally, not additively: the seed for run
// i of workload wl is FNV-1a(SeedBase, wl, i) (see seedFor). The profiling
// mode is deliberately NOT part of the derivation: run i of a workload uses
// one seed — one page placement — under ModeOff and under every profiling
// configuration, so the overhead sweeps compare profiled against unprofiled
// runs of the *same* placement (the paired design Table 3's tight
// confidence intervals depend on). Two properties follow:
//
//   - Experiments that intend to measure the same configuration (same
//     workload, run index, and sampling setup) derive the same seed and
//     therefore share one cached simulation.
//   - Experiments that differ in any structural input get seeds that are
//     unrelated for all practical purposes, so two sweeps whose old-style
//     additive ranges (SeedBase+run, SeedBase+wi*100+run, SeedBase+i*7, ...)
//     happened to overlap can no longer silently collide on a seed — and
//     with it, on a cached run — they should not share.
//
// Experiments with deliberately distinct run sets (Figure 3's
// page-placement study, Table 4/5's sampling-mode sweeps) pass a non-empty
// salt to seedFor so their seeds never coincide with the plain per-run
// sweeps. Fig8MultiRun deliberately reuses the "accuracy" salt: its merged
// runs are extra runs of the accuracy suite, and its single-run baseline is
// run 0 — the exact cached run Figures 8 and 9 analyze.
package eval

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sync/atomic"

	"dcpi/internal/dcpi"
	"dcpi/internal/obs"
	"dcpi/internal/runner"
	"dcpi/internal/sim"
	"dcpi/internal/workload"
)

// specFor returns a workload's registered description.
func specFor(name string) (string, bool) {
	s, ok := workload.Get(name)
	return s.Description, ok
}

// Options sizes the experiments. The defaults keep a full sweep in the
// minutes range; raise Runs/Scale for tighter confidence intervals.
type Options struct {
	// Runs per configuration (Table 2/3, Figure 6). Default 5.
	Runs int
	// Scale multiplies workload sizes. Default 0.25.
	Scale float64
	// SeedBase salts the structural per-run seed derivation (see the
	// package comment); sweeps with different SeedBase values share no
	// seeds at all.
	SeedBase uint64
	// DensePeriod is the sampling period for analysis-accuracy experiments
	// (Figures 8-10); the default (~768 cycles) is the simulated
	// equivalent of the 21064's 4K fast mode scaled to our short runs, so
	// procedures accumulate paper-scale sample counts.
	DensePeriod sim.PeriodSpec
	// DenseEventPeriod is the miss-counter period for Figure 10.
	DenseEventPeriod sim.PeriodSpec
	// Workloads restricts the uniprocessor overhead sweeps; nil = default
	// set.
	Workloads []string
	// DoubleSample enables the §7 edge-sampling prototype in the accuracy
	// experiments (see Fig9DoubleSampling).
	DoubleSample bool
	// InterpretBranches enables the §7 instruction-interpretation
	// prototype (see Fig9Interpretation).
	InterpretBranches bool
	// Runner schedules and caches the experiment's simulations. Callers
	// that run several experiments (dcpieval -all, the test suite) should
	// share one runner so identical configurations are simulated exactly
	// once across the whole sweep; nil creates a private runner with
	// GOMAXPROCS workers.
	Runner *runner.Runner
	// Obs attaches the optional self-observability layer: each experiment
	// emits one wall-time trace slice covering its whole sweep (lane
	// obs.PIDEval), alongside the runner's per-run slices. Share the same
	// Hooks with Runner.Obs so both use one trace epoch.
	Obs obs.Hooks
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 5
	}
	if o.Scale == 0 {
		o.Scale = 0.25
	}
	if o.SeedBase == 0 {
		o.SeedBase = 1000
	}
	if o.DensePeriod.Base == 0 {
		o.DensePeriod = sim.PeriodSpec{Base: 768, Spread: 192}
	}
	if o.DenseEventPeriod.Base == 0 {
		o.DenseEventPeriod = sim.PeriodSpec{Base: 384, Spread: 128}
	}
	if o.Workloads == nil {
		o.Workloads = OverheadWorkloads
	}
	if o.Runner == nil {
		o.Runner = runner.New(0)
	}
	return o
}

// OverheadWorkloads is the default Table 2/3 workload list.
var OverheadWorkloads = []string{
	"compress", "li", "go", "gcc",
	"wave5", "mgrid", "swim",
	"x11perf",
	"mccalpin-assign", "mccalpin-scale", "mccalpin-sum", "mccalpin-saxpy",
	"altavista", "dss",
}

// AccuracyWorkloads is the suite for the frequency-accuracy experiments
// (Figures 8-9): single-purpose programs with clean ground truth.
var AccuracyWorkloads = []string{
	"compress", "li", "go", "wave5", "mgrid", "swim", "x11perf",
}

// Fig10Workloads adds the programs with instruction-cache pressure (gcc's
// large code footprint and the vortex-like call web) so I-cache stalls and
// IMISS events actually vary across procedures.
var Fig10Workloads = []string{
	"compress", "go", "x11perf", "gcc", "vortex",
}

// seedFor derives the seed for one run from its structural identity: the
// experiment salt (empty for the plain per-run sweeps), workload, and run
// index, mixed with SeedBase through FNV-1a. The profiling mode is
// intentionally absent so run i keeps its placement across modes (paired
// comparisons); see the package comment for why this replaces additive
// SeedBase offsets.
func seedFor(base uint64, salt, wl string, run int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], base)
	h.Write(b[:])
	h.Write([]byte(salt))
	h.Write([]byte{0})
	h.Write([]byte(wl))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(b[:], uint64(run))
	h.Write(b[:])
	s := h.Sum64()
	if s == 0 {
		s = 1 // Seed 0 selects default placement; keep runs distinct.
	}
	return s
}

// baseCfg is run i of a workload without profiling.
func baseCfg(o Options, wl string, run int) dcpi.Config {
	return dcpi.Config{
		Workload: wl,
		Scale:    o.Scale,
		Mode:     sim.ModeOff,
		Seed:     seedFor(o.SeedBase, "", wl, run),
	}
}

// modeCfg is run i of a workload under one profiling configuration with the
// paper's default sampling periods.
func modeCfg(o Options, wl string, mode sim.Mode, run int) dcpi.Config {
	return dcpi.Config{
		Workload: wl,
		Scale:    o.Scale,
		Mode:     mode,
		Seed:     seedFor(o.SeedBase, "", wl, run),
	}
}

// accCfg is run i of the accuracy suite's dense, zero-cost,
// exact-counting configuration. Figures 8 and 9 analyze run 0 of each
// workload; Fig8MultiRun merges runs 0..N-1 of the same sequence, so its
// single-run baseline is — by construction and by cache key — the very run
// the figures analyzed.
func accCfg(o Options, wl string, mode sim.Mode, run int) dcpi.Config {
	return dcpi.Config{
		Workload:           wl,
		Scale:              o.Scale,
		Mode:               mode,
		Seed:               seedFor(o.SeedBase, "accuracy", wl, run),
		CyclesPeriod:       o.DensePeriod,
		EventPeriod:        o.DenseEventPeriod,
		CollectExact:       true,
		ZeroCostCollection: true,
		DoubleSample:       o.DoubleSample,
		InterpretBranches:  o.InterpretBranches,
	}
}

// sectionTID hands each traced experiment its own thread lane so
// concurrently running sections don't stack on one Perfetto track.
var sectionTID atomic.Int64

// span opens a wall-time trace slice for one experiment; call the returned
// func when the experiment finishes. With tracing off it costs one nil
// check.
func (o Options) span(name string) func() {
	tr := o.Obs.Tracer
	if tr == nil {
		return func() {}
	}
	tid := int(sectionTID.Add(1))
	start := tr.Now()
	return func() {
		tr.NameThread(obs.PIDEval, tid, name)
		tr.Slice("eval", name, obs.PIDEval, tid, start, tr.Now()-start, nil)
	}
}

// collect waits for a slice of pending runs, in order.
func collect(pending []*runner.Pending, what string) ([]*dcpi.Result, error) {
	out := make([]*dcpi.Result, len(pending))
	for i, p := range pending {
		r, err := p.Wait()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", what, err)
		}
		out[i] = r
	}
	return out, nil
}

// fprintf is a helper that ignores write errors (text reports to buffers).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
