// Package eval regenerates every table and figure of the paper's evaluation
// (§3 examples, §5 performance, §6.2-6.3 accuracy) on the simulated
// machine. Each experiment returns a structured result plus a text
// rendering whose rows mirror the paper's.
package eval

import (
	"fmt"
	"io"

	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
	"dcpi/internal/workload"
)

// specFor returns a workload's registered description.
func specFor(name string) (string, bool) {
	s, ok := workload.Get(name)
	return s.Description, ok
}

// Options sizes the experiments. The defaults keep a full sweep in the
// minutes range; raise Runs/Scale for tighter confidence intervals.
type Options struct {
	// Runs per configuration (Table 2/3, Figure 6). Default 5.
	Runs int
	// Scale multiplies workload sizes. Default 0.25.
	Scale float64
	// SeedBase offsets the per-run seeds.
	SeedBase uint64
	// DensePeriod is the sampling period for analysis-accuracy experiments
	// (Figures 8-10); the default (~768 cycles) is the simulated
	// equivalent of the 21064's 4K fast mode scaled to our short runs, so
	// procedures accumulate paper-scale sample counts.
	DensePeriod sim.PeriodSpec
	// DenseEventPeriod is the miss-counter period for Figure 10.
	DenseEventPeriod sim.PeriodSpec
	// Workloads restricts the uniprocessor overhead sweeps; nil = default
	// set.
	Workloads []string
	// DoubleSample enables the §7 edge-sampling prototype in the accuracy
	// experiments (see Fig9DoubleSampling).
	DoubleSample bool
	// InterpretBranches enables the §7 instruction-interpretation
	// prototype (see Fig9Interpretation).
	InterpretBranches bool
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 5
	}
	if o.Scale == 0 {
		o.Scale = 0.25
	}
	if o.SeedBase == 0 {
		o.SeedBase = 1000
	}
	if o.DensePeriod.Base == 0 {
		o.DensePeriod = sim.PeriodSpec{Base: 768, Spread: 192}
	}
	if o.DenseEventPeriod.Base == 0 {
		o.DenseEventPeriod = sim.PeriodSpec{Base: 384, Spread: 128}
	}
	if o.Workloads == nil {
		o.Workloads = OverheadWorkloads
	}
	return o
}

// OverheadWorkloads is the default Table 2/3 workload list.
var OverheadWorkloads = []string{
	"compress", "li", "go", "gcc",
	"wave5", "mgrid", "swim",
	"x11perf",
	"mccalpin-assign", "mccalpin-scale", "mccalpin-sum", "mccalpin-saxpy",
	"altavista", "dss",
}

// AccuracyWorkloads is the suite for the frequency-accuracy experiments
// (Figures 8-9): single-purpose programs with clean ground truth.
var AccuracyWorkloads = []string{
	"compress", "li", "go", "wave5", "mgrid", "swim", "x11perf",
}

// Fig10Workloads adds the programs with instruction-cache pressure (gcc's
// large code footprint and the vortex-like call web) so I-cache stalls and
// IMISS events actually vary across procedures.
var Fig10Workloads = []string{
	"compress", "go", "x11perf", "gcc", "vortex",
}

// runBase runs a workload without profiling.
func runBase(o Options, wl string, seed uint64) (*dcpi.Result, error) {
	return dcpi.Run(dcpi.Config{
		Workload: wl,
		Scale:    o.Scale,
		Mode:     sim.ModeOff,
		Seed:     seed,
	})
}

// runMode runs a workload under one profiling configuration with the
// paper's default sampling periods.
func runMode(o Options, wl string, mode sim.Mode, seed uint64) (*dcpi.Result, error) {
	return dcpi.Run(dcpi.Config{
		Workload: wl,
		Scale:    o.Scale,
		Mode:     mode,
		Seed:     seed,
	})
}

// fprintf is a helper that ignores write errors (text reports to buffers).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
