package daemon

// Fault injection for the collection pipeline. The paper's design is
// explicitly loss-tolerant: the daemon may lag, stall, or die, and the
// system must degrade gracefully — samples are dropped *and counted*
// (§4.2.3, measured at under 0.1%), and the on-disk database survives
// daemon restarts (§4.3). A FaultPlan makes those failure modes injectable
// so experiments can sweep daemon lag against loss rate and tests can
// exercise crash recovery deterministically.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Window is a half-open interval [From, To) of simulated cycles.
type Window struct {
	From, To int64
}

func (w Window) contains(clock int64) bool { return clock >= w.From && clock < w.To }

// FaultPlan describes the faults to inject into one daemon. The zero value
// injects nothing and leaves the daemon's behaviour — and the run's output
// — exactly as before.
type FaultPlan struct {
	// DrainLatency adds fixed lag (cycles) to every periodic driver drain,
	// modeling a daemon that falls behind schedule; while overdue it also
	// refuses full-buffer deliveries (it is busy catching up). Sweeping it
	// reproduces the paper's lag-vs-loss relation and its breakdown point.
	DrainLatency int64
	// Stalls are windows during which the daemon is unresponsive: it
	// refuses full-buffer deliveries and performs no drains or merges.
	Stalls []Window
	// CrashAt, when nonzero, crashes the daemon at the first poll at or
	// after this cycle: in-memory profiles are lost (counted in
	// Stats.CrashDropped) and the daemon stays down for RestartDelay.
	CrashAt int64
	// CrashAtMerge, when nonzero, crashes the daemon during its Nth disk
	// merge (1-based): after CrashMergeProfiles profiles are written
	// intact, the next profile's write is torn mid-file — the partial
	// state a crash leaves when data blocks never reached disk.
	CrashAtMerge int
	// CrashMergeProfiles is the number of profiles written successfully
	// before the torn write of a CrashAtMerge crash.
	CrashMergeProfiles int
	// RestartDelay is how long (cycles) a crashed daemon stays down before
	// restarting; 0 uses the drain interval.
	RestartDelay int64
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool {
	return p.DrainLatency == 0 && len(p.Stalls) == 0 &&
		p.CrashAt == 0 && p.CrashAtMerge == 0
}

// stalledAt reports whether any stall window covers clock.
func (p FaultPlan) stalledAt(clock int64) bool {
	for _, w := range p.Stalls {
		if w.contains(clock) {
			return true
		}
	}
	return false
}

// String renders the plan in the same canonical form ParseFaultPlan
// accepts. It is stable for equal plans, which makes it usable as part of
// a run's content key (internal/runner deduplication).
func (p FaultPlan) String() string {
	if p.Empty() && p.RestartDelay == 0 && p.CrashMergeProfiles == 0 {
		return ""
	}
	var parts []string
	stalls := append([]Window(nil), p.Stalls...)
	sort.Slice(stalls, func(i, j int) bool {
		if stalls[i].From != stalls[j].From {
			return stalls[i].From < stalls[j].From
		}
		return stalls[i].To < stalls[j].To
	})
	for _, w := range stalls {
		parts = append(parts, fmt.Sprintf("stall=%d-%d", w.From, w.To))
	}
	if p.DrainLatency != 0 {
		parts = append(parts, fmt.Sprintf("drain-latency=%d", p.DrainLatency))
	}
	if p.CrashAt != 0 {
		parts = append(parts, fmt.Sprintf("crash=%d", p.CrashAt))
	}
	if p.CrashAtMerge != 0 {
		parts = append(parts, fmt.Sprintf("crash-merge=%d", p.CrashAtMerge))
	}
	if p.CrashMergeProfiles != 0 {
		parts = append(parts, fmt.Sprintf("merge-profiles=%d", p.CrashMergeProfiles))
	}
	if p.RestartDelay != 0 {
		parts = append(parts, fmt.Sprintf("restart=%d", p.RestartDelay))
	}
	return strings.Join(parts, ",")
}

// ParseFaultPlan parses a comma-separated fault spec (the dcpid -fault
// syntax):
//
//	stall=FROM-TO        unresponsive window, repeatable
//	drain-latency=N      extra cycles of lag on every periodic drain
//	crash=CYCLE          crash (lose in-memory profiles) at this cycle
//	crash-merge=N        crash mid-write during the Nth disk merge
//	merge-profiles=K     profiles written intact before the torn write
//	restart=DELAY        cycles the crashed daemon stays down
//
// Cycle values accept K/M/G suffixes (x1e3/1e6/1e9), e.g. stall=0-2M.
func ParseFaultPlan(spec string) (FaultPlan, error) {
	var p FaultPlan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return p, fmt.Errorf("fault: %q is not key=value", field)
		}
		switch key {
		case "stall":
			from, to, ok := strings.Cut(val, "-")
			if !ok {
				return p, fmt.Errorf("fault: stall wants FROM-TO, got %q", val)
			}
			f, err := parseCycles(from)
			if err != nil {
				return p, err
			}
			t, err := parseCycles(to)
			if err != nil {
				return p, err
			}
			if t <= f {
				return p, fmt.Errorf("fault: empty stall window %q", val)
			}
			p.Stalls = append(p.Stalls, Window{From: f, To: t})
		case "drain-latency":
			n, err := parseCycles(val)
			if err != nil {
				return p, err
			}
			p.DrainLatency = n
		case "crash":
			n, err := parseCycles(val)
			if err != nil {
				return p, err
			}
			p.CrashAt = n
		case "crash-merge":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return p, fmt.Errorf("fault: bad crash-merge %q", val)
			}
			p.CrashAtMerge = n
		case "merge-profiles":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return p, fmt.Errorf("fault: bad merge-profiles %q", val)
			}
			p.CrashMergeProfiles = n
		case "restart":
			n, err := parseCycles(val)
			if err != nil {
				return p, err
			}
			p.RestartDelay = n
		default:
			return p, fmt.Errorf("fault: unknown key %q", key)
		}
	}
	return p, nil
}

// parseCycles parses a non-negative cycle count with an optional K/M/G
// suffix.
func parseCycles(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1_000, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1_000_000, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1_000_000_000, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("fault: bad cycle count %q", s)
	}
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("fault: cycle count %q overflows", s)
	}
	return n * mult, nil
}
