package daemon

import (
	"testing"

	"dcpi/internal/driver"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
)

func note(pid uint32, path string, base, size uint64, kind image.Kind) loader.Notification {
	return loader.Notification{PID: pid, Path: path, Base: base, Size: size, Kind: kind}
}

func testDaemon(t *testing.T, cfg Config) (*Daemon, *driver.Driver) {
	t.Helper()
	drv := driver.New(driver.Config{NumCPUs: 1})
	d := New(cfg, drv)
	d.HandleNotification(note(100, "/bin/app", loader.UserTextBase, 0x1000, image.KindExecutable))
	d.HandleNotification(note(100, "/usr/shlib/libc.so", loader.SharedLibBase, 0x2000, image.KindShared))
	d.HandleNotification(note(100, "/vmunix", loader.KernelBase, 0x4000, image.KindKernel))
	return d, drv
}

func TestClassification(t *testing.T) {
	d, drv := testDaemon(t, Config{})
	drv.Record(0, 100, loader.UserTextBase+16, sim.EvCycles)
	drv.Record(0, 100, loader.SharedLibBase+32, sim.EvCycles)
	drv.Record(0, 100, loader.KernelBase+8, sim.EvCycles)
	drv.Record(0, 0, loader.KernelBase+8, sim.EvCycles) // idle PID 0: kernel fallback
	drv.Record(0, 100, 0xdead0000, sim.EvCycles)        // unmapped
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	byPath := map[string]*profiledb.Profile{}
	for _, p := range d.Profiles() {
		byPath[p.ImagePath] = p
	}
	if p := byPath["/bin/app"]; p == nil || p.Counts[16] != 1 {
		t.Errorf("/bin/app profile = %+v", p)
	}
	if p := byPath["/usr/shlib/libc.so"]; p == nil || p.Counts[32] != 1 {
		t.Errorf("libc profile = %+v", p)
	}
	if p := byPath["/vmunix"]; p == nil || p.Counts[8] != 2 {
		t.Errorf("vmunix profile = %+v (want both PID 100 and PID 0 samples)", p)
	}
	if p := byPath[UnknownImage]; p == nil || p.Total() != 1 {
		t.Errorf("unknown profile = %+v", p)
	}
	st := d.Stats()
	if st.Unknown != 1 || st.Samples != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.UnknownRate() < 0.19 || st.UnknownRate() > 0.21 {
		t.Errorf("unknown rate = %v", st.UnknownRate())
	}
}

func TestAggregatedCountsPreserved(t *testing.T) {
	d, drv := testDaemon(t, Config{})
	for i := 0; i < 500; i++ {
		drv.Record(0, 100, loader.UserTextBase+uint64(i%10)*4, sim.EvCycles)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, p := range d.Profiles() {
		total += p.Total()
	}
	if total != 500 {
		t.Errorf("total samples = %d, want 500", total)
	}
	st := d.Stats()
	if st.Samples != 500 {
		t.Errorf("stats samples = %d", st.Samples)
	}
	// Aggregation: far fewer entries than samples.
	if st.Entries >= 50 {
		t.Errorf("entries = %d, expected heavy aggregation", st.Entries)
	}
}

func TestDaemonCostScalesWithAggregation(t *testing.T) {
	// A loopy stream (high aggregation) must cost less per sample than a
	// scattered stream (low aggregation) — Table 4's key relationship.
	runStream := func(pcs func(i int) uint64) float64 {
		drv := driver.New(driver.Config{NumCPUs: 1})
		d := New(Config{}, drv)
		d.HandleNotification(note(1, "/bin/app", 0, 1<<30, image.KindExecutable))
		for i := 0; i < 20000; i++ {
			drv.Record(0, 1, pcs(i), sim.EvCycles)
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		return d.Stats().CostPerSample()
	}
	loopy := runStream(func(i int) uint64 { return uint64(i%20) * 4 })
	scattered := runStream(func(i int) uint64 { return uint64(i) * 4 })
	if loopy >= scattered {
		t.Errorf("loopy cost %.1f >= scattered cost %.1f", loopy, scattered)
	}
	if loopy > 100 {
		t.Errorf("loopy per-sample cost = %.1f, want heavily amortized", loopy)
	}
}

func TestPollDrainsPeriodically(t *testing.T) {
	d, drv := testDaemon(t, Config{DrainInterval: 1000})
	drv.Record(0, 100, loader.UserTextBase, sim.EvCycles)
	// First poll arms the timer; second (past the interval) drains.
	d.Poll(0, 100)
	if len(d.Profiles()) != 0 {
		t.Error("drained too early")
	}
	d.Poll(0, 2000)
	if len(d.Profiles()) == 0 {
		t.Error("poll did not drain the driver")
	}
	if d.Stats().Drains != 1 {
		t.Errorf("drains = %d", d.Stats().Drains)
	}
}

func TestPollChargesCost(t *testing.T) {
	d, drv := testDaemon(t, Config{DrainInterval: 10, CostPerEntry: 123})
	drv.Record(0, 100, loader.UserTextBase, sim.EvCycles)
	d.Poll(0, 0)
	cost := d.Poll(0, 50)
	if cost != 123 {
		t.Errorf("poll cost = %d, want 123 (one entry)", cost)
	}
	if c := d.Poll(0, 51); c != 0 {
		t.Errorf("idle poll cost = %d", c)
	}
}

func TestMergeToDisk(t *testing.T) {
	db, err := profiledb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d, drv := testDaemon(t, Config{DB: db})
	drv.Record(0, 100, loader.UserTextBase+4, sim.EvCycles)
	drv.Record(0, 100, loader.UserTextBase+4, sim.EvIMiss)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(d.Profiles()) != 0 {
		t.Error("in-memory profiles not dropped after merge")
	}
	onDisk, err := db.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 2 {
		t.Fatalf("disk profiles = %d, want 2", len(onDisk))
	}
	// A second flush merges increments with existing files.
	drv.Record(0, 100, loader.UserTextBase+4, sim.EvCycles)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	p, err := db.Load("/bin/app", sim.EvCycles)
	if err != nil {
		t.Fatal(err)
	}
	if p.Counts[4] != 2 {
		t.Errorf("merged disk count = %d, want 2", p.Counts[4])
	}
}

func TestPerProcessProfiles(t *testing.T) {
	drv := driver.New(driver.Config{NumCPUs: 1})
	d := New(Config{PerProcessPIDs: []uint32{7}}, drv)
	d.HandleNotification(note(7, "/bin/app", 0, 0x1000, image.KindExecutable))
	d.HandleNotification(note(8, "/bin/app", 0, 0x1000, image.KindExecutable))
	drv.Record(0, 7, 16, sim.EvCycles)
	drv.Record(0, 8, 16, sim.EvCycles)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	var aggregate, perProc *profiledb.Profile
	for _, p := range d.Profiles() {
		switch p.ImagePath {
		case "/bin/app":
			aggregate = p
		case "/bin/app#7":
			perProc = p
		}
	}
	if aggregate == nil || aggregate.Counts[16] != 2 {
		t.Errorf("aggregate = %+v", aggregate)
	}
	if perProc == nil || perProc.Counts[16] != 1 {
		t.Errorf("per-process = %+v", perProc)
	}
}

func TestDuplicateNotificationsIgnored(t *testing.T) {
	d, _ := testDaemon(t, Config{})
	before := d.MemoryBytes()
	// Startup scan re-reports the same mappings.
	d.HandleNotification(note(100, "/bin/app", loader.UserTextBase, 0x1000, image.KindExecutable))
	if d.MemoryBytes() != before {
		t.Error("duplicate notification grew the loadmap")
	}
}

func TestMemoryAccounting(t *testing.T) {
	d, drv := testDaemon(t, Config{})
	base := d.MemoryBytes()
	if base <= 0 {
		t.Fatal("no memory accounted for loadmaps")
	}
	for i := 0; i < 1000; i++ {
		drv.Record(0, 100, loader.UserTextBase+uint64(i)*4, sim.EvCycles)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flush with no DB keeps profiles in memory.
	grown := d.MemoryBytes()
	if grown <= base {
		t.Error("profiles not accounted")
	}
	if d.PeakMemoryBytes() < grown {
		t.Error("peak below current")
	}
	d.ReapProcess(100)
	if d.MemoryBytes() >= grown {
		t.Error("reap did not release loadmap memory")
	}
}

func TestBufferFullDelivery(t *testing.T) {
	drv := driver.New(driver.Config{NumCPUs: 1, Buckets: 1, OverflowEntries: 8})
	d := New(Config{}, drv)
	d.HandleNotification(note(1, "/bin/app", 0, 1<<20, image.KindExecutable))
	// Distinct PCs colliding in one bucket force evictions into the
	// overflow buffer; 8-entry buffers fill and auto-deliver.
	for i := 0; i < 100; i++ {
		drv.Record(0, 1, uint64(i)*4, sim.EvCycles)
	}
	if d.Stats().BuffersFull == 0 {
		t.Error("no full-buffer deliveries")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, p := range d.Profiles() {
		total += p.Total()
	}
	if total != 100 {
		t.Errorf("samples preserved = %d, want 100", total)
	}
}

func TestMergeWithoutDBErrors(t *testing.T) {
	d, _ := testDaemon(t, Config{})
	if err := d.MergeToDisk(); err == nil {
		t.Error("MergeToDisk without DB should error")
	}
}
