package daemon

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcpi/internal/driver"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
)

func TestFaultPlanParseRoundTrip(t *testing.T) {
	spec := "stall=1M-3M,drain-latency=500K,crash=2M,crash-merge=2,merge-profiles=1,restart=250K"
	p, err := ParseFaultPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.DrainLatency != 500_000 || p.CrashAt != 2_000_000 ||
		p.CrashAtMerge != 2 || p.CrashMergeProfiles != 1 || p.RestartDelay != 250_000 {
		t.Errorf("parsed = %+v", p)
	}
	if len(p.Stalls) != 1 || p.Stalls[0] != (Window{From: 1_000_000, To: 3_000_000}) {
		t.Errorf("stalls = %+v", p.Stalls)
	}
	// String renders the canonical form, which must parse back to the same
	// plan (it doubles as the runner cache-key component).
	p2, err := ParseFaultPlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != p.String() {
		t.Errorf("round trip: %q != %q", p2.String(), p.String())
	}
}

func TestFaultPlanParseErrors(t *testing.T) {
	for _, bad := range []string{
		"nope", "stall=5", "stall=9-3", "stall=-3-9",
		"crash-merge=0", "crash-merge=x", "drain-latency=1X", "restart=-5",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
	p, err := ParseFaultPlan("  ")
	if err != nil || !p.Empty() {
		t.Errorf("blank spec = %+v, %v", p, err)
	}
	if (FaultPlan{}).String() != "" {
		t.Errorf("zero plan renders %q", FaultPlan{}.String())
	}
}

// A stalled daemon refuses deliveries; the driver's buffers fill and the
// excess is dropped -- but counted, so recorded == merged + lost.
func TestStallConservation(t *testing.T) {
	drv := driver.New(driver.Config{NumCPUs: 1, Buckets: 1, OverflowEntries: 8})
	d := New(Config{
		DrainInterval: 1_000_000, // never drains within the run
		Fault:         FaultPlan{Stalls: []Window{{From: 0, To: 1 << 62}}},
	}, drv)
	d.HandleNotification(note(1, "/bin/app", 0, 1<<20, image.KindExecutable))
	for i := 0; i < 500; i++ {
		drv.RecordAt(0, 1, uint64(i)*4, sim.EvCycles, int64(i))
		d.Poll(0, int64(i))
	}
	if drv.TotalStats().Lost == 0 {
		t.Fatal("stalled daemon cost no samples; fault plan had no effect")
	}
	if drv.TotalStats().Deferred == 0 {
		t.Fatal("no deliveries deferred during stall")
	}
	if d.Stats().Deferred == 0 {
		t.Fatal("daemon did not count refused deliveries")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	ds := drv.TotalStats()
	dm := d.Stats()
	if ds.Samples != dm.Samples+ds.Lost {
		t.Errorf("conservation: recorded %d != merged %d + lost %d",
			ds.Samples, dm.Samples, ds.Lost)
	}
}

// A crash drops the in-memory profiles -- counted in CrashDropped -- and the
// restarted daemon resumes collecting.
func TestCrashAtDropsCountedAndRestarts(t *testing.T) {
	drv := driver.New(driver.Config{NumCPUs: 1})
	d := New(Config{
		DrainInterval: 100,
		Fault:         FaultPlan{CrashAt: 500, RestartDelay: 200},
	}, drv)
	d.HandleNotification(note(1, "/bin/app", 0, 1<<20, image.KindExecutable))
	for i := 0; i < 2000; i++ {
		drv.RecordAt(0, 1, uint64(i%64)*4, sim.EvCycles, int64(i))
		d.Poll(0, int64(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	ds := drv.TotalStats()
	dm := d.Stats()
	if dm.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", dm.Crashes)
	}
	if dm.Restarts == 0 {
		t.Fatal("daemon never restarted")
	}
	if dm.CrashDropped == 0 {
		t.Fatal("crash dropped nothing; CrashAt had no effect")
	}
	var merged uint64
	for _, p := range d.Profiles() {
		merged += p.Total()
	}
	if ds.Samples != merged+ds.Lost+dm.CrashDropped {
		t.Errorf("conservation: recorded %d != merged %d + lost %d + crash-dropped %d",
			ds.Samples, merged, ds.Lost, dm.CrashDropped)
	}
}

// Killing the daemon mid-merge leaves a torn profile file. The restarted
// daemon's recovery pass quarantines it, intact profiles still load, and
// merging resumes -- the acceptance scenario for crash-safe merges.
func TestCrashMidMergeRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := profiledb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	drv := driver.New(driver.Config{NumCPUs: 1})
	d := New(Config{
		DB:            db,
		DrainInterval: 100,
		MergeInterval: 250,
		Fault:         FaultPlan{CrashAtMerge: 2, CrashMergeProfiles: 1, RestartDelay: 100},
	}, drv)
	d.HandleNotification(note(1, "/bin/app", 0, 1<<20, image.KindExecutable))
	d.HandleNotification(note(1, "/usr/shlib/libc.so", loader.SharedLibBase, 1<<20, image.KindShared))
	for i := 0; i < 3000; i++ {
		pc := uint64(i%64) * 4
		if i%2 == 1 {
			pc += loader.SharedLibBase
		}
		drv.RecordAt(0, 1, pc, sim.EvCycles, int64(i))
		d.Poll(0, int64(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	dm := d.Stats()
	if dm.Crashes != 1 {
		t.Fatalf("crashes = %d, want exactly the injected mid-merge crash", dm.Crashes)
	}
	if dm.Restarts == 0 {
		t.Fatal("crashed daemon never restarted")
	}
	if dm.CrashDropped == 0 {
		t.Fatal("torn merge destroyed no counted samples")
	}

	// The torn file was quarantined by the restart's recovery pass.
	var quarantined []string
	entries, err := os.ReadDir(filepath.Join(dir, "epoch-0001"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".bad") {
			quarantined = append(quarantined, e.Name())
		}
	}
	if len(quarantined) != 1 {
		t.Fatalf("quarantined files = %v, want exactly the torn one", quarantined)
	}

	// Intact profiles load, and post-restart merging resumed into them.
	onDisk, err := db.Profiles()
	if err != nil {
		t.Fatalf("database unreadable after crash recovery: %v", err)
	}
	var merged uint64
	for _, p := range onDisk {
		merged += p.Total()
	}
	ds := drv.TotalStats()
	if ds.Samples != merged+ds.Lost+dm.CrashDropped {
		t.Errorf("conservation: recorded %d != merged %d + lost %d + crash-dropped %d",
			ds.Samples, merged, ds.Lost, dm.CrashDropped)
	}

	// A fresh Open of the same directory recovers cleanly too.
	db2, err := profiledb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Profiles(); err != nil {
		t.Errorf("reopened database unreadable: %v", err)
	}
}

// Drain latency delays periodic drains and refuses deliveries while the
// daemon is overdue; small lag costs nothing, huge lag costs samples.
func TestDrainLatencyLossOnset(t *testing.T) {
	run := func(lag int64) (lost, samples uint64) {
		drv := driver.New(driver.Config{NumCPUs: 1, Buckets: 1, OverflowEntries: 8})
		d := New(Config{DrainInterval: 500, Fault: FaultPlan{DrainLatency: lag}}, drv)
		d.HandleNotification(note(1, "/bin/app", 0, 1<<20, image.KindExecutable))
		for i := 0; i < 4000; i++ {
			drv.RecordAt(0, 1, uint64(i)*4, sim.EvCycles, int64(i))
			d.Poll(0, int64(i))
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		ds := drv.TotalStats()
		if ds.Samples != d.Stats().Samples+ds.Lost {
			t.Errorf("lag %d: conservation violated", lag)
		}
		return ds.Lost, ds.Samples
	}
	if lost, _ := run(0); lost != 0 {
		t.Errorf("lost %d samples with no lag", lost)
	}
	lost, samples := run(1 << 30)
	if lost == 0 {
		t.Error("huge lag lost nothing; lag injection had no effect")
	}
	if lost >= samples {
		t.Errorf("lost %d of %d: final flush should still save buffered samples", lost, samples)
	}
}
