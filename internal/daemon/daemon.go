// Package daemon implements the DCPI user-mode daemon of paper §4.3: it
// drains aggregated samples from the device driver, associates each with its
// executable image using loadmap notifications, maintains in-memory
// per-(image, event) profiles, and periodically merges them into the on-disk
// profile database. It also accounts for its own memory (Table 5) and
// processing cost (Table 4's "daemon cost" column).
package daemon

import (
	"fmt"
	"sort"

	"dcpi/internal/driver"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/obs"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
)

// UnknownImage is the pseudo-image that collects samples the daemon cannot
// classify (paper: "aggregated into a special profile"; typically < 1%).
const UnknownImage = "unknown"

// Config tunes the daemon.
type Config struct {
	// DB is the on-disk database; nil keeps profiles in memory only.
	DB *profiledb.DB
	// DrainInterval is the cycle interval between driver hash-table flushes
	// (the paper's default is 5 minutes of wall time).
	DrainInterval int64
	// MergeInterval is the cycle interval between disk merges (paper: 10
	// minutes).
	MergeInterval int64
	// CostPerEntry models the daemon cycles spent processing one aggregated
	// entry (three hash lookups per the paper's §5.4 discussion). The
	// daemon's per-sample cost is CostPerEntry divided by the aggregation
	// factor, reproducing Table 4's inverse relation.
	CostPerEntry int64
	// PerProcessPIDs lists processes whose samples should additionally be
	// recorded in separate per-process profiles (paper §4.3: "Users may
	// also request separate, per-process profiles").
	PerProcessPIDs []uint32
	// Fault injects stalls, lag, and crashes into this daemon (see
	// FaultPlan); the zero value runs fault-free.
	Fault FaultPlan
	// Obs attaches the optional self-observability sinks; the zero value
	// keeps every instrumentation site a no-op.
	Obs obs.Hooks
}

func (c Config) withDefaults() Config {
	if c.DrainInterval == 0 {
		c.DrainInterval = 2_000_000
	}
	if c.MergeInterval == 0 {
		c.MergeInterval = 4_000_000
	}
	if c.CostPerEntry == 0 {
		c.CostPerEntry = 800
	}
	if c.CostPerEntry < 0 {
		c.CostPerEntry = 0 // explicit zero-cost collection
	}
	return c
}

// Stats describes daemon activity.
type Stats struct {
	Entries       uint64 // aggregated entries processed
	Samples       uint64 // raw samples those entries represent
	Unknown       uint64 // samples that could not be classified
	Drains        uint64 // driver flushes initiated
	Merges        uint64 // disk merges completed
	BuffersFull   uint64 // full overflow buffers delivered by the driver
	Deferred      uint64 // full-buffer deliveries refused while stalled or down
	Crashes       uint64 // injected crashes taken
	Restarts      uint64 // recoveries from a crash
	CrashDropped  uint64 // raw samples lost to crashes (in-memory + torn writes)
	CostCycles    int64  // total processing cycles charged
	Notifications uint64 // loadmap events received
}

// UnknownRate returns Unknown/Samples.
func (s Stats) UnknownRate() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.Unknown) / float64(s.Samples)
}

// CostPerSample returns mean daemon cycles per raw sample (Table 4).
func (s Stats) CostPerSample() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.CostCycles) / float64(s.Samples)
}

type mapping struct {
	base, end uint64
	path      string
}

type profKey struct {
	path string
	ev   sim.Event
	pid  uint32 // 0 for aggregate profiles
}

// Daemon is the profiling daemon.
type Daemon struct {
	cfg Config
	drv *driver.Driver

	loadmaps   map[uint32][]mapping // PID -> sorted mappings
	kernelPath string
	perProcess map[uint32]bool

	profiles map[profKey]*profiledb.Profile

	pendingCost int64
	nextDrain   map[int]int64
	nextMerge   int64
	exited      []uint32

	// Fault-injection state: a crashed daemon is down until restartAt;
	// crashAtFired latches the one-shot CrashAt trigger and mergeAttempts
	// counts disk merges started (CrashAtMerge is matched against it).
	down          bool
	restartAt     int64
	crashAtFired  bool
	mergeAttempts int

	stats     Stats
	peakBytes int

	// Self-observability (nil-safe; see internal/obs). lastClock remembers
	// the most recent simulated cycle the daemon has seen so the final
	// Flush — which has no clock of its own — can stamp its trace events
	// (it also anchors restart-at-flush recovery).
	obsOn     bool
	tracer    *obs.Tracer
	batchHist *obs.Histogram // entries per processed batch
	lastClock int64
}

// New builds a daemon attached to drv and subscribes to its full-buffer
// notifications.
func New(cfg Config, drv *driver.Driver) *Daemon {
	d := &Daemon{
		cfg:        cfg.withDefaults(),
		drv:        drv,
		loadmaps:   make(map[uint32][]mapping),
		profiles:   make(map[profKey]*profiledb.Profile),
		perProcess: make(map[uint32]bool),
		nextDrain:  make(map[int]int64),
	}
	for _, pid := range d.cfg.PerProcessPIDs {
		d.perProcess[pid] = true
	}
	if d.cfg.Obs.Enabled() {
		d.obsOn = true
		d.tracer = d.cfg.Obs.Tracer
		d.batchHist = d.cfg.Obs.Registry.Histogram("daemon.batch_entries",
			obs.ExpBuckets(16, 2, 12))
		d.tracer.NameProcess(obs.PIDDaemon, "daemon (user-mode)")
		d.tracer.NameProcess(obs.PIDDB, "profile database")
	}
	if drv != nil {
		drv.OnBufferFull = d.onBufferFull
	}
	return d
}

// HandleNotification records a loadmap event (wire this to loader.Notify).
func (d *Daemon) HandleNotification(n loader.Notification) {
	d.stats.Notifications++
	if n.Kind == image.KindKernel {
		d.kernelPath = n.Path
	}
	maps := d.loadmaps[n.PID]
	for _, m := range maps {
		if m.base == n.Base && m.path == n.Path {
			return // duplicate (e.g. startup scan after live notification)
		}
	}
	maps = append(maps, mapping{base: n.Base, end: n.Base + n.Size, path: n.Path})
	sort.Slice(maps, func(i, j int) bool { return maps[i].base < maps[j].base })
	d.loadmaps[n.PID] = maps
	d.trackPeak()
}

// classify maps (pid, pc) to (image path, offset).
func (d *Daemon) classify(pid uint32, pc uint64) (string, uint64, bool) {
	maps := d.loadmaps[pid]
	i := sort.Search(len(maps), func(i int) bool { return maps[i].base > pc })
	if i > 0 {
		m := maps[i-1]
		if pc < m.end {
			return m.path, pc - m.base, true
		}
	}
	// The kernel is mapped in every context, including PID 0 (idle), which
	// has no loadmap of its own.
	if pc >= loader.KernelBase && d.kernelPath != "" {
		return d.kernelPath, pc - loader.KernelBase, true
	}
	return "", 0, false
}

// onBufferFull is the driver's full-overflow-buffer notification. It
// returns false — deferring delivery, and eventually costing samples — when
// the daemon is stalled, down, or lagging behind its drain schedule; the
// driver parks the buffer and retries.
func (d *Daemon) onBufferFull(cpu int, clock int64, entries []driver.Entry) bool {
	if d.down || d.cfg.Fault.stalledAt(clock) || d.lagging(cpu, clock) {
		d.stats.Deferred++
		return false
	}
	d.stats.BuffersFull++
	d.processBatch(cpu, clock, "process:overflow_buffer", entries)
	return true
}

// lagging reports whether injected DrainLatency has put the daemon past
// cpu's nominal drain time without having drained yet: a daemon behind
// schedule is busy catching up and does not service buffer deliveries
// either. This is what makes drain lag cost samples once the lag window
// outgrows the driver's two overflow buffers (the §4.2.3 breakdown point).
func (d *Daemon) lagging(cpu int, clock int64) bool {
	lat := d.cfg.Fault.DrainLatency
	if lat <= 0 {
		return false
	}
	next, ok := d.nextDrain[cpu]
	return ok && clock >= next-lat
}

// processBatch wraps process with the observability batch accounting: one
// trace slice per delivered batch, spanning the modeled processing cost.
func (d *Daemon) processBatch(cpu int, clock int64, kind string, entries []driver.Entry) {
	d.process(entries)
	if !d.obsOn {
		return
	}
	if clock > d.lastClock {
		d.lastClock = clock
	}
	d.batchHist.Observe(float64(len(entries)))
	d.tracer.Slice("daemon", kind, obs.PIDDaemon, cpu, clock,
		int64(len(entries))*d.cfg.CostPerEntry,
		map[string]any{"entries": len(entries)})
	d.tracer.Counter("daemon", "daemon_memory", obs.PIDDaemon, clock,
		map[string]float64{"bytes": float64(d.MemoryBytes())})
}

// process merges driver entries into the in-memory profiles.
func (d *Daemon) process(entries []driver.Entry) {
	for _, e := range entries {
		d.stats.Entries++
		d.stats.Samples += uint64(e.Count)
		d.pendingCost += d.cfg.CostPerEntry

		path, off, ok := d.classify(e.PID, e.PC)
		if !ok {
			d.stats.Unknown += uint64(e.Count)
			d.profile(profKey{UnknownImage, e.Event, 0}).Add(e.PC, uint64(e.Count))
			continue
		}
		if e.Event == sim.EvEdge {
			// Double-sampling pair: keep only intra-image edges (the
			// analysis does not follow interprocedural flow), keyed by the
			// packed (from, to) offsets.
			path2, off2, ok2 := d.classify(e.PID, e.PC2)
			if !ok2 || path2 != path || off >= 1<<32 || off2 >= 1<<32 {
				d.stats.Unknown += uint64(e.Count)
				continue
			}
			d.profile(profKey{path, e.Event, 0}).Add(PackEdge(off, off2), uint64(e.Count))
			continue
		}
		d.profile(profKey{path, e.Event, 0}).Add(off, uint64(e.Count))
		if d.perProcess[e.PID] {
			d.profile(profKey{path, e.Event, e.PID}).Add(off, uint64(e.Count))
		}
	}
	d.trackPeak()
}

// PackEdge packs an intra-image (from, to) offset pair into one profile
// key; UnpackEdge reverses it.
func PackEdge(from, to uint64) uint64 { return from<<32 | to }

// UnpackEdge splits a packed edge key.
func UnpackEdge(key uint64) (from, to uint64) { return key >> 32, key & 0xffffffff }

func (d *Daemon) profile(k profKey) *profiledb.Profile {
	p, ok := d.profiles[k]
	if !ok {
		name := k.path
		if k.pid != 0 {
			name = fmt.Sprintf("%s#%d", k.path, k.pid)
		}
		p = profiledb.NewProfile(name, k.ev)
		d.profiles[k] = p
	}
	return p
}

// Poll performs the daemon's periodic work for one CPU: draining the
// driver's hash table on the drain interval and merging to disk on the
// merge interval. It returns the cycles to charge the polling CPU. Fault
// injection hooks in here: a stalled daemon does nothing, a crashed one
// stays down until its restart, and the CrashAt trigger fires on the first
// poll past its cycle.
func (d *Daemon) Poll(cpu int, clock int64) int64 {
	if clock > d.lastClock {
		d.lastClock = clock
	}
	if d.down {
		if clock < d.restartAt {
			return 0
		}
		d.restart(clock)
	}
	if f := d.cfg.Fault; f.CrashAt > 0 && !d.crashAtFired && clock >= f.CrashAt {
		d.crashAtFired = true
		d.crash(clock, "fault:crash_at")
		return 0
	}
	if d.cfg.Fault.stalledAt(clock) {
		return 0
	}
	if next, ok := d.nextDrain[cpu]; !ok || clock >= next {
		if ok {
			d.stats.Drains++
			d.processBatch(cpu, clock, "process:drain", d.drv.FlushCPUAt(cpu, clock))
		}
		d.nextDrain[cpu] = clock + d.cfg.DrainInterval + d.cfg.Fault.DrainLatency
	}
	if cpu == 0 && d.cfg.DB != nil && clock >= d.nextMerge {
		if d.nextMerge != 0 {
			crashed, err := d.mergeToDisk(clock)
			if crashed {
				return 0
			}
			if err == nil {
				d.stats.Merges++
			}
		}
		d.nextMerge = clock + d.cfg.MergeInterval
	}
	cost := d.pendingCost
	d.pendingCost = 0
	d.stats.CostCycles += cost
	return cost
}

// crash models the daemon process dying: every in-memory profile is lost —
// but counted, so the pipeline's sample conservation stays checkable —
// and the daemon stays down until restartAt. The driver keeps collecting
// into its buffers; deliveries are deferred, and its own loss accounting
// takes over when they fill.
func (d *Daemon) crash(clock int64, cause string) {
	d.stats.Crashes++
	var dropped uint64
	for _, p := range d.profiles {
		dropped += p.Total()
	}
	d.stats.CrashDropped += dropped
	d.profiles = make(map[profKey]*profiledb.Profile)
	d.pendingCost = 0
	d.down = true
	delay := d.cfg.Fault.RestartDelay
	if delay <= 0 {
		delay = d.cfg.DrainInterval
	}
	d.restartAt = clock + delay
	if d.obsOn {
		d.tracer.Instant("daemon", cause, obs.PIDDaemon, 0, clock,
			map[string]any{"dropped_samples": dropped})
	}
}

// restart brings a crashed daemon back: drain timers re-arm from scratch
// (a fresh process has no state) and the database runs its recovery pass,
// quarantining any file the crash left unreadable, so merging can resume.
func (d *Daemon) restart(clock int64) {
	d.down = false
	d.stats.Restarts++
	d.nextDrain = make(map[int]int64)
	if d.cfg.DB != nil {
		d.cfg.DB.Recover() //nolint:errcheck // best-effort; unreadable files stay quarantine candidates
	}
	if d.obsOn {
		d.tracer.Instant("daemon", "daemon_restart", obs.PIDDaemon, 0, clock, nil)
	}
}

// Flush drains every CPU's driver state and merges everything to disk. Call
// it at the end of a run (the paper's "complete flush ... initiated by a
// user-level command"). A daemon still down from an injected crash is
// restarted first — the operator restarting the dead process — which runs
// the database recovery pass before merging resumes.
func (d *Daemon) Flush() error {
	if d.down {
		d.restart(d.lastClock)
	}
	if d.drv != nil {
		for cpu := 0; cpu < d.drv.NumCPUs(); cpu++ {
			d.stats.Drains++
			d.processBatch(cpu, d.lastClock, "process:final_flush", d.drv.FlushCPUAt(cpu, d.lastClock))
		}
	}
	d.stats.CostCycles += d.pendingCost
	d.pendingCost = 0
	d.reapExited()
	if d.cfg.DB == nil {
		return nil
	}
	crashed, err := d.mergeToDisk(d.lastClock)
	if crashed {
		// The injected crash hit the final merge. Restart and re-merge:
		// the crash dropped (and counted) the unwritten profiles, so this
		// leaves the database consistent for readers.
		d.restart(d.lastClock)
		_, err = d.mergeToDisk(d.lastClock)
	}
	if err == nil {
		d.stats.Merges++
	}
	return err
}

// MergeToDisk writes every in-memory profile into the database and drops
// the in-memory copies (the daemon's periodic disk merge — the epoch-flush
// stage of the pipeline trace).
func (d *Daemon) MergeToDisk() error {
	_, err := d.mergeToDisk(d.lastClock)
	return err
}

// mergeToDisk is MergeToDisk with fault injection: when the plan's
// CrashAtMerge matches this attempt, the merge writes CrashMergeProfiles
// profiles intact, tears the next write mid-file, and crashes the daemon.
// Profiles merge in sorted order so the injected tear is deterministic.
func (d *Daemon) mergeToDisk(clock int64) (crashed bool, err error) {
	if d.cfg.DB == nil {
		return false, fmt.Errorf("daemon: no database configured")
	}
	d.mergeAttempts++
	injectAt := -1
	if f := d.cfg.Fault; f.CrashAtMerge > 0 && d.mergeAttempts == f.CrashAtMerge {
		injectAt = f.CrashMergeProfiles
	}
	keys := make([]profKey, 0, len(d.profiles))
	for k := range d.profiles {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.path != b.path {
			return a.path < b.path
		}
		if a.ev != b.ev {
			return a.ev < b.ev
		}
		return a.pid < b.pid
	})
	n := len(keys)
	for i, k := range keys {
		p := d.profiles[k]
		if i == injectAt {
			// Torn write: the crash interrupts this profile mid-file, also
			// destroying whatever the file held from earlier merges. Both
			// losses are counted so recorded == merged + lost still holds.
			destroyed, _ := d.cfg.DB.WriteTorn(p)
			d.stats.CrashDropped += destroyed
			d.crash(clock, "fault:crash_merge")
			return true, nil
		}
		if err := d.cfg.DB.Update(p); err != nil {
			return false, err
		}
		delete(d.profiles, k)
	}
	if d.obsOn {
		d.tracer.Instant("db", "epoch_flush", obs.PIDDB, 0, clock,
			map[string]any{"profiles": n, "epoch": d.cfg.DB.Epoch()})
	}
	return false, nil
}

// Profiles returns the in-memory profiles, sorted by image then event.
func (d *Daemon) Profiles() []*profiledb.Profile {
	out := make([]*profiledb.Profile, 0, len(d.profiles))
	for _, p := range d.profiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ImagePath != out[j].ImagePath {
			return out[i].ImagePath < out[j].ImagePath
		}
		return out[i].Event < out[j].Event
	})
	return out
}

// Stats returns a copy of the daemon statistics.
func (d *Daemon) Stats() Stats { return d.stats }

// Memory accounting for Table 5: approximate resident bytes of the daemon's
// data structures.
const (
	bytesPerMapping      = 48
	bytesPerProfileEntry = 40
	bytesPerProfile      = 160
)

// MemoryBytes estimates current resident data bytes.
func (d *Daemon) MemoryBytes() int {
	total := 0
	for _, maps := range d.loadmaps {
		total += len(maps) * bytesPerMapping
	}
	for _, p := range d.profiles {
		total += bytesPerProfile + len(p.Counts)*bytesPerProfileEntry
	}
	return total
}

// PeakMemoryBytes returns the high-water mark of MemoryBytes.
func (d *Daemon) PeakMemoryBytes() int { return d.peakBytes }

func (d *Daemon) trackPeak() {
	if b := d.MemoryBytes(); b > d.peakBytes {
		d.peakBytes = b
	}
}

// ReapProcess discards loadmap state for a terminated process (the paper's
// periodic reaping of terminated processes' data structures).
func (d *Daemon) ReapProcess(pid uint32) {
	delete(d.loadmaps, pid)
}

// NoteExit marks a process as terminated; its loadmap is reaped at the next
// full flush (after any samples still in driver buffers are classified).
func (d *Daemon) NoteExit(pid uint32) {
	d.exited = append(d.exited, pid)
}

// reapExited drops loadmaps of processes that exited.
func (d *Daemon) reapExited() {
	for _, pid := range d.exited {
		d.ReapProcess(pid)
	}
	d.exited = nil
}

// PublishMetrics writes the daemon's cumulative self-measurements into reg
// (call once, at the end of a run). Keys mirror the paper's Table 4 daemon
// column and Table 5 memory rows.
func (d *Daemon) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := d.stats
	reg.Counter("daemon.entries").Add(s.Entries)
	reg.Counter("daemon.samples").Add(s.Samples)
	reg.Counter("daemon.unknown_samples").Add(s.Unknown)
	reg.Counter("daemon.drains").Add(s.Drains)
	reg.Counter("daemon.merges").Add(s.Merges)
	reg.Counter("daemon.buffers_full").Add(s.BuffersFull)
	reg.Counter("daemon.deferred_deliveries").Add(s.Deferred)
	reg.Counter("daemon.crashes").Add(s.Crashes)
	reg.Counter("daemon.restarts").Add(s.Restarts)
	reg.Counter("daemon.crash_dropped_samples").Add(s.CrashDropped)
	reg.Counter("daemon.notifications").Add(s.Notifications)
	reg.Counter("daemon.cost_cycles").Add(uint64(s.CostCycles))
	reg.Gauge("daemon.unknown_rate").Set(s.UnknownRate())
	reg.Gauge("daemon.cycles_per_sample").Set(s.CostPerSample())
	reg.Gauge("daemon.memory_bytes").Set(float64(d.MemoryBytes()))
	reg.Gauge("daemon.peak_memory_bytes").Set(float64(d.PeakMemoryBytes()))
}
