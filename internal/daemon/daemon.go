// Package daemon implements the DCPI user-mode daemon of paper §4.3: it
// drains aggregated samples from the device driver, associates each with its
// executable image using loadmap notifications, maintains in-memory
// per-(image, event) profiles, and periodically merges them into the on-disk
// profile database. It also accounts for its own memory (Table 5) and
// processing cost (Table 4's "daemon cost" column).
package daemon

import (
	"fmt"
	"sort"
	"sync"

	"dcpi/internal/driver"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/obs"
	"dcpi/internal/par"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
)

// UnknownImage is the pseudo-image that collects samples the daemon cannot
// classify (paper: "aggregated into a special profile"; typically < 1%).
const UnknownImage = "unknown"

// Config tunes the daemon.
type Config struct {
	// DB is the on-disk database; nil keeps profiles in memory only.
	DB *profiledb.DB
	// DrainInterval is the cycle interval between driver hash-table flushes
	// (the paper's default is 5 minutes of wall time).
	DrainInterval int64
	// MergeInterval is the cycle interval between disk merges (paper: 10
	// minutes).
	MergeInterval int64
	// CostPerEntry models the daemon cycles spent processing one aggregated
	// entry (three hash lookups per the paper's §5.4 discussion). The
	// daemon's per-sample cost is CostPerEntry divided by the aggregation
	// factor, reproducing Table 4's inverse relation.
	CostPerEntry int64
	// PerProcessPIDs lists processes whose samples should additionally be
	// recorded in separate per-process profiles (paper §4.3: "Users may
	// also request separate, per-process profiles").
	PerProcessPIDs []uint32
	// Fault injects stalls, lag, and crashes into this daemon (see
	// FaultPlan); the zero value runs fault-free.
	Fault FaultPlan
	// Obs attaches the optional self-observability sinks; the zero value
	// keeps every instrumentation site a no-op.
	Obs obs.Hooks
}

func (c Config) withDefaults() Config {
	if c.DrainInterval == 0 {
		c.DrainInterval = 2_000_000
	}
	if c.MergeInterval == 0 {
		c.MergeInterval = 4_000_000
	}
	if c.CostPerEntry == 0 {
		c.CostPerEntry = 800
	}
	if c.CostPerEntry < 0 {
		c.CostPerEntry = 0 // explicit zero-cost collection
	}
	return c
}

// Stats describes daemon activity.
type Stats struct {
	Entries       uint64 // aggregated entries processed
	Samples       uint64 // raw samples those entries represent
	Unknown       uint64 // samples that could not be classified
	Drains        uint64 // driver flushes initiated
	Merges        uint64 // disk merges completed
	BuffersFull   uint64 // full overflow buffers delivered by the driver
	Deferred      uint64 // full-buffer deliveries refused while stalled or down
	Crashes       uint64 // injected crashes taken
	Restarts      uint64 // recoveries from a crash
	CrashDropped  uint64 // raw samples lost to crashes (in-memory + torn writes)
	CostCycles    int64  // total processing cycles charged
	Notifications uint64 // loadmap events received
}

// UnknownRate returns Unknown/Samples.
func (s Stats) UnknownRate() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.Unknown) / float64(s.Samples)
}

// CostPerSample returns mean daemon cycles per raw sample (Table 4).
func (s Stats) CostPerSample() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.CostCycles) / float64(s.Samples)
}

type mapping struct {
	base, end uint64
	path      string
}

type profKey struct {
	path string
	ev   sim.Event
	pid  uint32 // 0 for aggregate profiles
}

// shard is the daemon state owned by one simulated CPU's sample stream.
// Sharding is what makes parallel CPU simulation deterministic: a CPU's
// drains, processing cost, and in-memory profiles depend only on that CPU's
// own (deterministic) execution, never on how the host interleaved the
// other CPUs. Shards fold together — commutative profile merges, in CPU
// order — at the final flush.
type shard struct {
	profiles    map[profKey]*profiledb.Profile
	pendingCost int64 // processing cycles to charge at this CPU's next poll
	nextDrain   int64
	armed       bool // nextDrain initialized (first poll arms, second drains)
}

func newShard() *shard {
	return &shard{profiles: make(map[profKey]*profiledb.Profile)}
}

// Daemon is the profiling daemon. One mutex serializes every entry point
// (buffer deliveries, polls, notifications, the final flush): the real
// daemon is a single user-mode process receiving per-CPU streams, and the
// mutex plus per-CPU shards give the same semantics when the simulated CPUs
// run on concurrent goroutines. Happens-before story: a CPU goroutine's
// samples reach the daemon only via its own driver state (single-owner) and
// these locked entry points; everything cross-CPU (stats, loadmaps, fault
// state) is only touched under mu.
type Daemon struct {
	cfg Config
	drv *driver.Driver

	mu sync.Mutex

	loadmaps   map[uint32][]mapping // PID -> sorted mappings
	kernelPath string
	perProcess map[uint32]bool

	shards    []*shard
	nextMerge int64
	exited    []uint32
	inFlush   bool // Flush is running single-threaded, post-barrier

	// Fault-injection state: a crashed daemon is down until restartAt;
	// crashAtFired latches the one-shot CrashAt trigger and mergeAttempts
	// counts disk merges started (CrashAtMerge is matched against it).
	down          bool
	restartAt     int64
	crashAtFired  bool
	mergeAttempts int

	stats     Stats
	peakBytes int

	// Self-observability (nil-safe; see internal/obs). lastClock remembers
	// the most recent simulated cycle the daemon has seen so the final
	// Flush — which has no clock of its own — can stamp its trace events
	// (it also anchors restart-at-flush recovery).
	obsOn     bool
	tracer    *obs.Tracer
	batchHist *obs.Histogram // entries per processed batch
	lastClock int64
}

// New builds a daemon attached to drv and subscribes to its full-buffer
// notifications.
func New(cfg Config, drv *driver.Driver) *Daemon {
	d := &Daemon{
		cfg:        cfg.withDefaults(),
		drv:        drv,
		loadmaps:   make(map[uint32][]mapping),
		perProcess: make(map[uint32]bool),
	}
	for _, pid := range d.cfg.PerProcessPIDs {
		d.perProcess[pid] = true
	}
	if d.cfg.Obs.Enabled() {
		d.obsOn = true
		d.tracer = d.cfg.Obs.Tracer
		d.batchHist = d.cfg.Obs.Registry.Histogram("daemon.batch_entries",
			obs.ExpBuckets(16, 2, 12))
		d.tracer.NameProcess(obs.PIDDaemon, "daemon (user-mode)")
		d.tracer.NameProcess(obs.PIDDB, "profile database")
	}
	if drv != nil {
		drv.OnBufferFull = d.onBufferFull
	}
	return d
}

// shard returns cpu's state, growing the table on demand (the daemon does
// not know the machine size up front; CPU ids are small and dense).
func (d *Daemon) shard(cpu int) *shard {
	for cpu >= len(d.shards) {
		d.shards = append(d.shards, newShard())
	}
	return d.shards[cpu]
}

// HandleNotification records a loadmap event (wire this to loader.Notify).
func (d *Daemon) HandleNotification(n loader.Notification) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Notifications++
	if n.Kind == image.KindKernel {
		d.kernelPath = n.Path
	}
	maps := d.loadmaps[n.PID]
	for _, m := range maps {
		if m.base == n.Base && m.path == n.Path {
			return // duplicate (e.g. startup scan after live notification)
		}
	}
	maps = append(maps, mapping{base: n.Base, end: n.Base + n.Size, path: n.Path})
	sort.Slice(maps, func(i, j int) bool { return maps[i].base < maps[j].base })
	d.loadmaps[n.PID] = maps
	d.trackPeak()
}

// classify maps (pid, pc) to (image path, offset). Caller holds mu.
func (d *Daemon) classify(pid uint32, pc uint64) (string, uint64, bool) {
	maps := d.loadmaps[pid]
	i := sort.Search(len(maps), func(i int) bool { return maps[i].base > pc })
	if i > 0 {
		m := maps[i-1]
		if pc < m.end {
			return m.path, pc - m.base, true
		}
	}
	// The kernel is mapped in every context, including PID 0 (idle), which
	// has no loadmap of its own.
	if pc >= loader.KernelBase && d.kernelPath != "" {
		return d.kernelPath, pc - loader.KernelBase, true
	}
	return "", 0, false
}

// onBufferFull is the driver's full-overflow-buffer notification. It
// returns false — deferring delivery, and eventually costing samples — when
// the daemon is stalled, down, or lagging behind its drain schedule; the
// driver parks the buffer and retries.
func (d *Daemon) onBufferFull(cpu int, clock int64, entries []driver.Entry) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down || d.cfg.Fault.stalledAt(clock) || d.lagging(cpu, clock) {
		d.stats.Deferred++
		return false
	}
	d.stats.BuffersFull++
	d.processBatch(cpu, clock, "process:overflow_buffer", entries)
	return true
}

// lagging reports whether injected DrainLatency has put the daemon past
// cpu's nominal drain time without having drained yet: a daemon behind
// schedule is busy catching up and does not service buffer deliveries
// either. This is what makes drain lag cost samples once the lag window
// outgrows the driver's two overflow buffers (the §4.2.3 breakdown point).
func (d *Daemon) lagging(cpu int, clock int64) bool {
	lat := d.cfg.Fault.DrainLatency
	if lat <= 0 {
		return false
	}
	sh := d.shard(cpu)
	return sh.armed && clock >= sh.nextDrain-lat
}

// processBatch wraps process with the observability batch accounting: one
// trace slice per delivered batch, spanning the modeled processing cost.
// Caller holds mu.
func (d *Daemon) processBatch(cpu int, clock int64, kind string, entries []driver.Entry) {
	d.process(cpu, entries)
	if !d.obsOn {
		return
	}
	if clock > d.lastClock {
		d.lastClock = clock
	}
	d.batchHist.Observe(float64(len(entries)))
	d.tracer.Slice("daemon", kind, obs.PIDDaemon, cpu, clock,
		int64(len(entries))*d.cfg.CostPerEntry,
		map[string]any{"entries": len(entries)})
	d.tracer.Counter("daemon", "daemon_memory", obs.PIDDaemon, clock,
		map[string]float64{"bytes": float64(d.memoryBytesLocked())})
}

// process merges cpu's driver entries into that CPU's profile shard.
// Caller holds mu.
func (d *Daemon) process(cpu int, entries []driver.Entry) {
	sh := d.shard(cpu)
	for _, e := range entries {
		d.stats.Entries++
		d.stats.Samples += uint64(e.Count)
		sh.pendingCost += d.cfg.CostPerEntry

		path, off, ok := d.classify(e.PID, e.PC)
		if !ok {
			d.stats.Unknown += uint64(e.Count)
			d.profile(sh, profKey{UnknownImage, e.Event, 0}).Add(e.PC, uint64(e.Count))
			continue
		}
		if e.Event == sim.EvEdge {
			// Double-sampling pair: keep only intra-image edges (the
			// analysis does not follow interprocedural flow), keyed by the
			// packed (from, to) offsets.
			path2, off2, ok2 := d.classify(e.PID, e.PC2)
			if !ok2 || path2 != path || off >= 1<<32 || off2 >= 1<<32 {
				d.stats.Unknown += uint64(e.Count)
				continue
			}
			d.profile(sh, profKey{path, e.Event, 0}).Add(PackEdge(off, off2), uint64(e.Count))
			continue
		}
		d.profile(sh, profKey{path, e.Event, 0}).Add(off, uint64(e.Count))
		if d.perProcess[e.PID] {
			d.profile(sh, profKey{path, e.Event, e.PID}).Add(off, uint64(e.Count))
		}
	}
	d.trackPeakCPU(cpu)
}

// PackEdge packs an intra-image (from, to) offset pair into one profile
// key; UnpackEdge reverses it.
func PackEdge(from, to uint64) uint64 { return from<<32 | to }

// UnpackEdge splits a packed edge key.
func UnpackEdge(key uint64) (from, to uint64) { return key >> 32, key & 0xffffffff }

func (d *Daemon) profile(sh *shard, k profKey) *profiledb.Profile {
	p, ok := sh.profiles[k]
	if !ok {
		name := k.path
		if k.pid != 0 {
			name = fmt.Sprintf("%s#%d", k.path, k.pid)
		}
		p = profiledb.NewProfile(name, k.ev)
		sh.profiles[k] = p
	}
	return p
}

// Poll performs the daemon's periodic work for one CPU: draining the
// driver's hash table on the drain interval and merging to disk on the
// merge interval. It returns the cycles to charge the polling CPU. Fault
// injection hooks in here: a stalled daemon does nothing, a crashed one
// stays down until its restart, and the CrashAt trigger fires on the first
// poll past its cycle.
func (d *Daemon) Poll(cpu int, clock int64) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if clock > d.lastClock {
		d.lastClock = clock
	}
	if d.down {
		if clock < d.restartAt {
			return 0
		}
		d.restart(clock)
	}
	if f := d.cfg.Fault; f.CrashAt > 0 && !d.crashAtFired && clock >= f.CrashAt {
		d.crashAtFired = true
		d.crash(clock, "fault:crash_at", nil)
		return 0
	}
	if d.cfg.Fault.stalledAt(clock) {
		return 0
	}
	sh := d.shard(cpu)
	if !sh.armed || clock >= sh.nextDrain {
		if sh.armed {
			d.stats.Drains++
			d.processBatch(cpu, clock, "process:drain", d.drv.FlushCPUAt(cpu, clock))
		}
		sh.nextDrain = clock + d.cfg.DrainInterval + d.cfg.Fault.DrainLatency
		sh.armed = true
	}
	if cpu == 0 && d.cfg.DB != nil && clock >= d.nextMerge {
		if d.nextMerge != 0 {
			// Periodic merges write only CPU 0's shard: the merge is driven
			// by CPU 0's polls, and writing other CPUs' live shards would
			// make disk state depend on how far the host happened to run
			// them. (Sequentially this matches the seed exactly: CPU 0 runs
			// first, so the global map held only CPU 0's data at merge time.)
			detached := sh.profiles
			sh.profiles = make(map[profKey]*profiledb.Profile)
			crashed, err := d.mergeToDisk(clock, detached)
			if crashed {
				return 0
			}
			if err == nil {
				d.stats.Merges++
			} else {
				d.reattach(sh, detached) // keep unwritten profiles for retry
			}
		}
		d.nextMerge = clock + d.cfg.MergeInterval
	}
	cost := sh.pendingCost
	sh.pendingCost = 0
	d.stats.CostCycles += cost
	return cost
}

// reattach folds profiles that failed to reach disk back into sh.
func (d *Daemon) reattach(sh *shard, m map[profKey]*profiledb.Profile) {
	for k, p := range m {
		if q, ok := sh.profiles[k]; ok {
			q.Merge(p) //nolint:errcheck // same key ⇒ same image/event
		} else {
			sh.profiles[k] = p
		}
	}
}

// crash models the daemon process dying: every in-memory profile is lost —
// but counted, so the pipeline's sample conservation stays checkable —
// and the daemon stays down until restartAt. The driver keeps collecting
// into its buffers; deliveries are deferred, and its own loss accounting
// takes over when they fill.
// inflight is the detached map of a merge in progress, if any; its unwritten
// profiles die with the process too.
func (d *Daemon) crash(clock int64, cause string, inflight map[profKey]*profiledb.Profile) {
	d.stats.Crashes++
	var dropped uint64
	for _, p := range inflight {
		dropped += p.Total()
	}
	for _, sh := range d.shards {
		for _, p := range sh.profiles {
			dropped += p.Total()
		}
		sh.profiles = make(map[profKey]*profiledb.Profile)
		sh.pendingCost = 0
	}
	d.stats.CrashDropped += dropped
	d.down = true
	delay := d.cfg.Fault.RestartDelay
	if delay <= 0 {
		delay = d.cfg.DrainInterval
	}
	d.restartAt = clock + delay
	if d.obsOn {
		d.tracer.Instant("daemon", cause, obs.PIDDaemon, 0, clock,
			map[string]any{"dropped_samples": dropped})
	}
}

// restart brings a crashed daemon back: drain timers re-arm from scratch
// (a fresh process has no state) and the database runs its recovery pass,
// quarantining any file the crash left unreadable, so merging can resume.
func (d *Daemon) restart(clock int64) {
	d.down = false
	d.stats.Restarts++
	for _, sh := range d.shards {
		sh.armed = false
	}
	if d.cfg.DB != nil {
		d.cfg.DB.Recover() //nolint:errcheck // best-effort; unreadable files stay quarantine candidates
	}
	if d.obsOn {
		d.tracer.Instant("daemon", "daemon_restart", obs.PIDDaemon, 0, clock, nil)
	}
}

// Flush drains every CPU's driver state and merges everything to disk. Call
// it at the end of a run (the paper's "complete flush ... initiated by a
// user-level command"). A daemon still down from an injected crash is
// restarted first — the operator restarting the dead process — which runs
// the database recovery pass before merging resumes.
func (d *Daemon) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inFlush = true
	defer func() { d.inFlush = false }()
	if d.down {
		d.restart(d.lastClock)
	}
	if d.drv != nil {
		for cpu := 0; cpu < d.drv.NumCPUs(); cpu++ {
			d.stats.Drains++
			d.processBatch(cpu, d.lastClock, "process:final_flush", d.drv.FlushCPUAt(cpu, d.lastClock))
		}
	}
	for _, sh := range d.shards {
		d.stats.CostCycles += sh.pendingCost
		sh.pendingCost = 0
	}
	d.reapExited()
	if d.cfg.DB == nil {
		return nil
	}
	combined := d.detachAll()
	crashed, err := d.mergeToDisk(d.lastClock, combined)
	if crashed {
		// The injected crash hit the final merge. Restart and re-merge:
		// the crash dropped (and counted) the unwritten profiles, so this
		// leaves the database consistent for readers.
		d.restart(d.lastClock)
		_, err = d.mergeToDisk(d.lastClock, d.detachAll())
	} else if err != nil {
		d.reattach(d.shard(0), combined)
	}
	if err == nil {
		d.stats.Merges++
	}
	return err
}

// detachAll folds every shard's profiles into one map — the commutative
// profile merge that reunites per-CPU streams — and leaves the shards empty.
func (d *Daemon) detachAll() map[profKey]*profiledb.Profile {
	combined := make(map[profKey]*profiledb.Profile)
	for _, sh := range d.shards {
		for k, p := range sh.profiles {
			if q, ok := combined[k]; ok {
				q.Merge(p) //nolint:errcheck // same key ⇒ same image/event
			} else {
				combined[k] = p
			}
		}
		sh.profiles = make(map[profKey]*profiledb.Profile)
	}
	return combined
}

// MergeToDisk writes every in-memory profile into the database and drops
// the in-memory copies (the daemon's periodic disk merge — the epoch-flush
// stage of the pipeline trace).
func (d *Daemon) MergeToDisk() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	combined := d.detachAll()
	_, err := d.mergeToDisk(d.lastClock, combined)
	if err != nil {
		d.reattach(d.shard(0), combined)
	}
	return err
}

// mergeToDisk writes the detached profiles map into the database, deleting
// each profile from the map as it lands; entries left behind on error are
// the caller's to reattach. Fault injection: when the plan's CrashAtMerge
// matches this attempt, the merge writes CrashMergeProfiles profiles intact,
// tears the next write mid-file, and crashes the daemon. Profiles merge in
// sorted order so the injected tear is deterministic.
func (d *Daemon) mergeToDisk(clock int64, profiles map[profKey]*profiledb.Profile) (crashed bool, err error) {
	if d.cfg.DB == nil {
		return false, fmt.Errorf("daemon: no database configured")
	}
	d.mergeAttempts++
	injectAt := -1
	if f := d.cfg.Fault; f.CrashAtMerge > 0 && d.mergeAttempts == f.CrashAtMerge {
		injectAt = f.CrashMergeProfiles
	}
	keys := make([]profKey, 0, len(profiles))
	for k := range profiles {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.path != b.path {
			return a.path < b.path
		}
		if a.ev != b.ev {
			return a.ev < b.ev
		}
		return a.pid < b.pid
	})
	n := len(keys)
	if injectAt < 0 {
		err = d.updateAll(keys, profiles)
	} else {
		for i, k := range keys {
			p := profiles[k]
			if i == injectAt {
				// Torn write: the crash interrupts this profile mid-file,
				// also destroying whatever the file held from earlier
				// merges. Both losses are counted so recorded == merged +
				// lost still holds.
				destroyed, _ := d.cfg.DB.WriteTorn(p)
				d.stats.CrashDropped += destroyed
				d.crash(clock, "fault:crash_merge", profiles)
				return true, nil
			}
			if err := d.cfg.DB.Update(p); err != nil {
				return false, err
			}
			delete(profiles, k)
		}
	}
	if err != nil {
		return false, err
	}
	if d.obsOn {
		d.tracer.Instant("db", "epoch_flush", obs.PIDDB, 0, clock,
			map[string]any{"profiles": n, "epoch": d.cfg.DB.Epoch()})
	}
	return false, nil
}

// updateAll writes the keyed profiles to the database, fanning writes out
// over spare budget slots when more than one profile is pending. Distinct
// keys map to distinct database files and db.Update is an atomic
// read-merge-rename per file, so concurrent epoch merges are safe; the
// result — and the returned error, first in sorted-key order — is
// independent of scheduling. Only reached fault-free (injected tears need
// the strict sequential order).
func (d *Daemon) updateAll(keys []profKey, profiles map[profKey]*profiledb.Profile) error {
	extra := 0
	if len(keys) > 1 {
		extra = par.Default().TryExtra(len(keys) - 1)
		defer par.Default().Release(extra)
	}
	if extra == 0 {
		for _, k := range keys {
			if err := d.cfg.DB.Update(profiles[k]); err != nil {
				return err
			}
			delete(profiles, k)
		}
		return nil
	}
	errs := make([]error, len(keys))
	work := make(chan int, len(keys))
	for i := range keys {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < extra+1; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = d.cfg.DB.Update(profiles[keys[i]])
			}
		}()
	}
	wg.Wait()
	var first error
	for i, k := range keys {
		if errs[i] == nil {
			delete(profiles, k)
		} else if first == nil {
			first = errs[i]
		}
	}
	return first
}

// Profiles returns the in-memory profiles, sorted by image then event. A
// key split across CPU shards is returned as one merged clone, so callers
// see the same single-profile-per-key view the sequential daemon had.
func (d *Daemon) Profiles() []*profiledb.Profile {
	d.mu.Lock()
	defer d.mu.Unlock()
	merged := make(map[profKey]*profiledb.Profile)
	for _, sh := range d.shards {
		for k, p := range sh.profiles {
			q, ok := merged[k]
			if !ok {
				q = profiledb.NewProfile(p.ImagePath, p.Event)
				merged[k] = q
			}
			q.Merge(p) //nolint:errcheck // same key ⇒ same image/event
		}
	}
	out := make([]*profiledb.Profile, 0, len(merged))
	for _, p := range merged {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ImagePath != out[j].ImagePath {
			return out[i].ImagePath < out[j].ImagePath
		}
		return out[i].Event < out[j].Event
	})
	return out
}

// Stats returns a copy of the daemon statistics. Safe while CPUs run: the
// mutex guarantees a consistent snapshot, never a half-updated struct.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Memory accounting for Table 5: approximate resident bytes of the daemon's
// data structures.
const (
	bytesPerMapping      = 48
	bytesPerProfileEntry = 40
	bytesPerProfile      = 160
)

// MemoryBytes estimates current resident data bytes.
func (d *Daemon) MemoryBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.memoryBytesLocked()
}

// memoryBytesLocked models the real daemon's single hash table: a profile
// key split across CPU shards counts once, with its offset sets unioned —
// otherwise sharding would inflate the Table 5 estimate by one profile
// header (and any shared offsets) per extra CPU that touched the image.
func (d *Daemon) memoryBytesLocked() int {
	total := d.loadmapBytes()
	populated := 0
	for _, sh := range d.shards {
		if len(sh.profiles) > 0 {
			populated++
		}
	}
	if populated <= 1 {
		for _, sh := range d.shards {
			total += sh.profileBytes()
		}
		return total
	}
	union := make(map[profKey]map[uint64]struct{})
	for _, sh := range d.shards {
		for k, p := range sh.profiles {
			offs, ok := union[k]
			if !ok {
				offs = make(map[uint64]struct{}, len(p.Counts))
				union[k] = offs
			}
			for off := range p.Counts {
				offs[off] = struct{}{}
			}
		}
	}
	for _, offs := range union {
		total += bytesPerProfile + len(offs)*bytesPerProfileEntry
	}
	return total
}

func (d *Daemon) loadmapBytes() int {
	total := 0
	for _, maps := range d.loadmaps {
		total += len(maps) * bytesPerMapping
	}
	return total
}

func (sh *shard) profileBytes() int {
	total := 0
	for _, p := range sh.profiles {
		total += bytesPerProfile + len(p.Counts)*bytesPerProfileEntry
	}
	return total
}

// PeakMemoryBytes returns the high-water mark of MemoryBytes.
func (d *Daemon) PeakMemoryBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakBytes
}

// trackPeak samples global memory. Only called from deterministic points:
// loadmap notifications (setup) and the single-threaded final flush.
func (d *Daemon) trackPeak() {
	if b := d.memoryBytesLocked(); b > d.peakBytes {
		d.peakBytes = b
	}
}

// trackPeakCPU samples memory after cpu processed a batch. Mid-run it looks
// only at loadmaps plus CPU 0's shard — global memory at that instant
// depends on how far the host happened to run the other CPUs, and the peak
// must not. Other CPUs' mid-run contribution is still captured: their
// shards only grow until the final flush, whose last batch (tracked
// globally via the inFlush path) therefore dominates any mid-run global
// value they could have produced.
func (d *Daemon) trackPeakCPU(cpu int) {
	if d.inFlush {
		d.trackPeak()
		return
	}
	if cpu != 0 {
		return
	}
	if b := d.loadmapBytes() + d.shard(0).profileBytes(); b > d.peakBytes {
		d.peakBytes = b
	}
}

// ReapProcess discards loadmap state for a terminated process (the paper's
// periodic reaping of terminated processes' data structures).
func (d *Daemon) ReapProcess(pid uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.loadmaps, pid)
}

// NoteExit marks a process as terminated; its loadmap is reaped at the next
// full flush (after any samples still in driver buffers are classified).
func (d *Daemon) NoteExit(pid uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.exited = append(d.exited, pid)
}

// reapExited drops loadmaps of processes that exited. Caller holds mu.
func (d *Daemon) reapExited() {
	for _, pid := range d.exited {
		delete(d.loadmaps, pid)
	}
	d.exited = nil
}

// PublishMetrics writes the daemon's cumulative self-measurements into reg
// (call once, at the end of a run). Keys mirror the paper's Table 4 daemon
// column and Table 5 memory rows.
func (d *Daemon) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	reg.Counter("daemon.entries").Add(s.Entries)
	reg.Counter("daemon.samples").Add(s.Samples)
	reg.Counter("daemon.unknown_samples").Add(s.Unknown)
	reg.Counter("daemon.drains").Add(s.Drains)
	reg.Counter("daemon.merges").Add(s.Merges)
	reg.Counter("daemon.buffers_full").Add(s.BuffersFull)
	reg.Counter("daemon.deferred_deliveries").Add(s.Deferred)
	reg.Counter("daemon.crashes").Add(s.Crashes)
	reg.Counter("daemon.restarts").Add(s.Restarts)
	reg.Counter("daemon.crash_dropped_samples").Add(s.CrashDropped)
	reg.Counter("daemon.notifications").Add(s.Notifications)
	reg.Counter("daemon.cost_cycles").Add(uint64(s.CostCycles))
	reg.Gauge("daemon.unknown_rate").Set(s.UnknownRate())
	reg.Gauge("daemon.cycles_per_sample").Set(s.CostPerSample())
	reg.Gauge("daemon.memory_bytes").Set(float64(d.memoryBytesLocked()))
	reg.Gauge("daemon.peak_memory_bytes").Set(float64(d.peakBytes))
}
