package daemon

import "testing"

// FuzzParseFaultPlan checks the -fault spec parser: it must never panic,
// and any spec it accepts must render to a canonical String() that
// reparses to the same plan (String is the runner's dedup key for fault
// configurations, so parse→print must be a fixed point).
func FuzzParseFaultPlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"stall=1M-3M,drain-latency=500K,crash-merge=1",
		"crash=2M,restart=100K",
		"stall=5M-6M,stall=0-2m",
		"crash-merge=2,merge-profiles=3",
		"drain-latency=1G",
		"stall=10-5",
		"bogus=1",
		"crash=-3",
		"stall=9223372036854775807G-2",
		"=,=,=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseFaultPlan(spec)
		if err != nil {
			return // rejected cleanly — fine
		}
		canon := p.String()
		q, err := ParseFaultPlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q rejected: %v", canon, spec, err)
		}
		if again := q.String(); again != canon {
			t.Errorf("String not a fixed point: %q -> %q -> %q", spec, canon, again)
		}
	})
}
