package optimize

import (
	"fmt"
	"strings"
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/pipeline"
)

// FuzzReorderProcedure builds random small procedures — an entry block, a
// chain of arithmetic blocks ending in fall-throughs, unconditional
// forward jumps, or conditional branches in either direction, and a final
// halt — with fuzz-chosen sample counts, and re-lays them. Whatever order
// the chainer picks, the contract is the same one the loop relies on:
// never panic, every emitted branch encodable and in-range, computation
// preserved instruction for instruction, and semantics identical whenever
// the original program halts.
func FuzzReorderProcedure(f *testing.F) {
	f.Add([]byte{0}, uint8(3))
	f.Add([]byte{4, 0x11, 0x22, 0x83, 0x40, 0x95, 0x06, 0xe7}, uint8(17))
	f.Add([]byte{6, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(40))
	f.Add([]byte{2, 0xff, 0xfe, 0xfd, 0xfc}, uint8(1))
	f.Add([]byte{5, 0x80, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89}, uint8(25))

	f.Fuzz(func(t *testing.T, data []byte, t0init uint8) {
		if len(data) == 0 {
			return
		}
		src, ok := fuzzProcSrc(data, t0init)
		if !ok {
			return
		}
		code := alpha.MustAssemble(src).Code

		samples := map[uint64]uint64{}
		for i := range code {
			samples[uint64(i)*alpha.InstBytes] = uint64(data[i%len(data)])
		}
		pa := analysis.AnalyzeProc("fz", code, 0, samples, nil, pipeline.Default(), 1000)
		res, err := ReorderProcedure(pa)
		if err != nil {
			// The generator never emits bsr or computed jumps, so the only
			// legitimate refusal is an unencodable displacement — impossible
			// at these sizes.
			t.Fatalf("reorder refused a safe procedure: %v\n%s", err, src)
		}

		// Structural contract: every branch encodable and inside the body,
		// and the arithmetic preserved instruction for instruction.
		for i, in := range res.Code {
			if in.Op == alpha.Op(0) {
				t.Fatalf("corrupt zero-value Op at %d\n%s", i, src)
			}
			if in.Op.Class() == alpha.ClassBranch {
				if in.Disp < minBranchDisp || in.Disp > maxBranchDisp {
					t.Fatalf("unencodable displacement %d at %d", in.Disp, i)
				}
				if tgt := i + 1 + int(in.Disp); tgt < 0 || tgt >= len(res.Code) {
					t.Fatalf("branch at %d targets %d, outside [0,%d)", i, tgt, len(res.Code))
				}
			}
		}
		if got, want := countArith(res.Code), countArith(code); got != want {
			t.Fatalf("arithmetic instructions %d -> %d; computation dropped\n%s", want, got, src)
		}

		// Semantic contract: if the original halts, the re-laid body halts
		// with the same machine state. (A fuzz-built backward branch can
		// genuinely diverge; then there is no final state to compare.)
		origHalt, origT5, origT0 := fuzzRun(code)
		if !origHalt {
			return
		}
		optHalt, optT5, optT0 := fuzzRun(res.Code)
		if !optHalt {
			t.Fatalf("original halts, re-laid body does not\n%s", src)
		}
		if origT5 != optT5 || origT0 != optT0 {
			t.Fatalf("semantics changed: t5/t0 %d/%d -> %d/%d\n%s",
				origT5, origT0, optT5, optT0, src)
		}
	})
}

// fuzzProcSrc renders the fuzz input as assembly: data[0] picks the block
// count, then each block consumes bytes for its arithmetic op and its
// terminator.
func fuzzProcSrc(data []byte, t0init uint8) (string, bool) {
	nblocks := 1 + int(data[0])%6
	next := 1
	byteAt := func() byte {
		if next >= len(data) {
			return 0
		}
		b := data[next]
		next++
		return b
	}

	var b strings.Builder
	fmt.Fprintf(&b, "p:\n\tlda t0, %d(zero)\n\tlda t5, 0(zero)\n", 1+int(t0init)%40)
	arith := []string{
		"addq t5, 3, t5", "subq t5, 1, t5", "xor t5, t0, t5",
		"sll t5, 1, t5", "and t5, 0xff, t5", "bis t5, t0, t5",
	}
	conds := []string{"beq", "bne", "bgt", "ble", "blt", "bge"}
	for i := 0; i < nblocks; i++ {
		fmt.Fprintf(&b, ".b%d:\n", i)
		fmt.Fprintf(&b, "\t%s\n", arith[int(byteAt())%len(arith)])
		b.WriteString("\tsubq t0, 1, t0\n")
		term := byteAt()
		tgt := int(byteAt()) % (nblocks + 1) // any block or the final halt
		switch term % 4 {
		case 0: // fall through
		case 1: // unconditional: forward only, so br cycles cannot hang
			if tgt <= i {
				tgt = nblocks
			}
			fmt.Fprintf(&b, "\tbr .b%d\n", tgt)
		default: // conditional, either direction
			fmt.Fprintf(&b, "\t%s t0, .b%d\n", conds[int(term)%len(conds)], tgt)
		}
	}
	fmt.Fprintf(&b, ".b%d:\n\thalt\n", nblocks)
	return b.String(), true
}

func countArith(code []alpha.Inst) int {
	n := 0
	for _, in := range code {
		if in.Op.Class() != alpha.ClassBranch && in.Op != alpha.OpHALT {
			n++
		}
	}
	return n
}

// fuzzRun executes a procedure functionally with a step cap; reports
// whether it halted and the final accumulator/counter.
func fuzzRun(code []alpha.Inst) (halted bool, t5, t0 uint64) {
	regs := &alpha.Regs{}
	mem := memMap{}
	pc := uint64(0)
	for steps := 0; steps < 200_000; steps++ {
		idx := pc / alpha.InstBytes
		if idx >= uint64(len(code)) {
			return false, 0, 0
		}
		out := alpha.Execute(code[idx], pc, regs, mem)
		if out.Fault != nil {
			return false, 0, 0
		}
		if out.Halt {
			return true, regs.I[alpha.RegT5], regs.I[alpha.RegT0]
		}
		pc = out.NextPC
	}
	return false, 0, 0
}
