package optimize

import (
	"strings"
	"testing"

	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

func TestRunLoopClassifyConverges(t *testing.T) {
	var calls int
	res, err := RunLoop(LoopConfig{
		Base: dcpi.Config{Workload: "classify", Scale: 0.25, Seed: 3},
		Run: func(cfg dcpi.Config) (*dcpi.Result, error) {
			calls++
			return dcpi.Run(cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Image != "/bin/classify" {
		t.Errorf("auto-picked image %q, want /bin/classify", res.Image)
	}
	if !res.Converged {
		t.Error("loop did not converge")
	}
	if res.Best < 0 {
		t.Fatal("no improving layout found")
	}
	if calls == 0 {
		t.Error("injected Run function never used")
	}

	// The workload is built so that co-locating the hot helper with its
	// caller removes a per-call direct-mapped I-cache conflict: the win
	// must be large and visible in the hardware counters, not just cycles.
	best := res.Iters[res.Best].Stats
	if sp := res.Speedup(); sp < 1.5 {
		t.Errorf("speedup = %.3f, want > 1.5 (baseline %+v, best %+v)",
			sp, res.Baseline, best)
	}
	if best.ICacheMisses*100 > res.Baseline.ICacheMisses {
		t.Errorf("icache misses %d -> %d; conflict not removed",
			res.Baseline.ICacheMisses, best.ICacheMisses)
	}
	if len(res.Rewrites) == 0 {
		t.Fatal("converged loop returned no rewrites")
	}

	// The returned rewrite set must reproduce the best measurement when
	// applied fresh — layouts are absolute, so this is exact, not close.
	re, err := dcpi.Run(dcpi.Config{
		Workload: "classify", Scale: 0.25, Seed: 3,
		Mode: sim.ModeOff, Rewrites: res.Rewrites,
	})
	if err != nil {
		t.Fatal(err)
	}
	if re.MachineStats != best {
		t.Errorf("replayed rewrites: %+v, loop measured %+v", re.MachineStats, best)
	}
}

func TestRunLoopRegressionGate(t *testing.T) {
	// On go, iteration 0 improves and the next proposal regresses; the
	// loop must discard the regression, keep the improving layout as the
	// result, and still converge when re-profiling proposes it again.
	res, err := RunLoop(LoopConfig{
		Base: dcpi.Config{Workload: "go", Scale: 0.05, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var reverted bool
	for _, it := range res.Iters {
		if !it.Improved {
			reverted = true
		}
	}
	if !reverted {
		t.Skip("no regression observed; gate not exercised at this scale/seed")
	}
	if !res.Converged {
		t.Error("loop with a reverted iteration did not converge")
	}
	if res.Best < 0 {
		t.Fatal("regression discarded the improving layout too")
	}
	if res.Iters[res.Best].Stats.Cycles >= res.Baseline.Cycles {
		t.Errorf("best cycles %d not better than baseline %d",
			res.Iters[res.Best].Stats.Cycles, res.Baseline.Cycles)
	}
	if len(res.Rewrites) != 1 ||
		res.Rewrites[0].Digest() != res.Iters[res.Best].Plan.Layout.Digest() {
		t.Error("Rewrites is not the best iteration's layout")
	}
}

func TestRunLoopRejectsUnsafeImage(t *testing.T) {
	_, err := RunLoop(LoopConfig{
		Base: dcpi.Config{Workload: "gcc", Scale: 0.02, Seed: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "outside the procedure") {
		t.Fatalf("err = %v, want cross-procedure branch rejection", err)
	}
}

func TestRunLoopNoSampledImage(t *testing.T) {
	// A loop pointed at a run with no user-image samples has nothing to
	// optimize and must say so rather than guess.
	res, err := RunLoop(LoopConfig{
		Base:  dcpi.Config{Workload: "classify", Scale: 0.25, Seed: 3},
		Image: "/bin/other",
	})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("res=%v err = %v, want unknown-image error", res, err)
	}
}

func TestSpeedupNoImprovement(t *testing.T) {
	r := &LoopResult{Best: -1, Baseline: sim.Stats{Cycles: 100, Instructions: 50}}
	if got := r.Speedup(); got != 1 {
		t.Errorf("Speedup with no best = %v, want 1", got)
	}
	if got := r.BaselineCPI(); got != 2 {
		t.Errorf("BaselineCPI = %v, want 2", got)
	}
}
