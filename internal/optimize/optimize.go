// Package optimize is a profile-driven binary-rewriting pass — the consumer
// role the paper's §7 anticipates ("feed the output of our tools into ...
// the Spike/OM post-linker optimization framework" and "a 'continuous
// optimization' system that runs in the background"). It consumes the
// analysis's edge-frequency estimates and re-lays a procedure's basic
// blocks so the hot path falls through: a Pettis–Hansen-style chaining pass
// with branch-sense inversion.
package optimize

import (
	"fmt"
	"sort"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/cfg"
)

// Alpha conditional and unconditional branches encode their displacement in
// a 21-bit signed field (instruction count from PC+4). A rewritten layout
// that stretches a branch past this range cannot be encoded.
const (
	minBranchDisp = -(1 << 20)
	maxBranchDisp = 1<<20 - 1
)

// invertible maps each conditional branch to its sense inversion.
var invertible = map[alpha.Op]alpha.Op{
	alpha.OpBEQ:  alpha.OpBNE,
	alpha.OpBNE:  alpha.OpBEQ,
	alpha.OpBLT:  alpha.OpBGE,
	alpha.OpBGE:  alpha.OpBLT,
	alpha.OpBLE:  alpha.OpBGT,
	alpha.OpBGT:  alpha.OpBLE,
	alpha.OpBLBC: alpha.OpBLBS,
	alpha.OpBLBS: alpha.OpBLBC,
	alpha.OpFBEQ: alpha.OpFBNE,
	alpha.OpFBNE: alpha.OpFBEQ,
}

// Result is an optimized procedure body.
type Result struct {
	Code []alpha.Inst
	// Order is the chosen block order (original block indices).
	Order []int
	// Inverted counts branches whose sense was flipped.
	Inverted int
	// AddedBranches counts unconditional branches inserted to preserve
	// control flow when a fall-through target could not be placed next.
	AddedBranches int
	// RemovedBranches counts unconditional branches deleted because their
	// target now falls through.
	RemovedBranches int
}

// ReorderProcedure rewrites a procedure so that, per the measured edge
// frequencies, the likelier successor of each block falls through. The
// rewritten code is functionally equivalent. It returns an error when the
// procedure contains control flow that cannot be relocated safely
// (PC-relative transfers that leave the procedure, e.g. bsr or an
// out-of-range branch).
func ReorderProcedure(pa *analysis.ProcAnalysis) (*Result, error) {
	g := pa.Graph
	if len(g.Blocks) == 0 {
		return nil, fmt.Errorf("optimize: empty procedure")
	}
	if g.MissingEdges {
		return nil, fmt.Errorf("optimize: %s has computed jumps; cannot re-lay blocks", pa.Name)
	}
	for i := range pa.Insts {
		in := pa.Insts[i].Inst
		if in.Op == alpha.OpBSR {
			return nil, fmt.Errorf("optimize: %s contains bsr (PC-relative call)", pa.Name)
		}
		if in.Op.Class() == alpha.ClassBranch {
			t := i + 1 + int(in.Disp)
			if t < 0 || t >= len(pa.Insts) {
				return nil, fmt.Errorf("optimize: %s branches outside the procedure", pa.Name)
			}
		}
	}

	order := chainBlocks(pa)
	return emit(pa, order)
}

// chainBlocks forms the block order: seed the first chain with the hottest
// acyclic path (Ball-Larus numbering over the back-edge-removed DAG — a
// bottleneck-hot path stays contiguous even when an edge off it is locally
// hotter at a merge point), then repeatedly extend with the hottest
// unplaced successor; when stuck, continue from the hottest unplaced block.
func chainBlocks(pa *analysis.ProcAnalysis) []int {
	g := pa.Graph
	n := len(g.Blocks)
	placed := make([]bool, n)
	var order []int

	place := func(b int) {
		placed[b] = true
		order = append(order, b)
	}

	// Hottest-first worklist for chain starts (entry block first).
	starts := make([]int, n)
	for i := range starts {
		starts[i] = i
	}
	sort.SliceStable(starts, func(i, j int) bool {
		return pa.BlockFreq[starts[i]] > pa.BlockFreq[starts[j]]
	})

	// The hottest path starts at the entry block, so seeding it places the
	// entry first, as the emitted layout requires.
	seed, _ := pa.HottestPath()
	if len(seed) == 0 || seed[0] != 0 {
		seed = []int{0}
	}
	for _, b := range seed {
		if !placed[b] {
			place(b)
		}
	}

	cur := order[len(order)-1]
	for {
		// Extend with the hottest unplaced successor.
		next, bestF := -1, -1.0
		for _, ei := range g.Blocks[cur].Succs {
			e := g.Edges[ei]
			if e.To < 0 || placed[e.To] {
				continue
			}
			if f := pa.EdgeFreq[ei]; f > bestF {
				bestF, next = f, e.To
			}
		}
		if next >= 0 {
			cur = next
			place(cur)
			continue
		}
		// Chain ended: start a new one at the hottest unplaced block.
		cur = -1
		for _, b := range starts {
			if !placed[b] {
				cur = b
				break
			}
		}
		if cur < 0 {
			return order
		}
		place(cur)
	}
}

// emit lays the blocks out in the chosen order, fixing up branches.
func emit(pa *analysis.ProcAnalysis, order []int) (*Result, error) {
	g := pa.Graph
	res := &Result{Order: order}
	posOf := make([]int, len(order)) // block -> position in order
	for pos, b := range order {
		posOf[b] = pos
	}

	type fixup struct {
		at     int // instruction index in the new code
		target int // block whose start it must reach
	}
	var (
		newCode    []alpha.Inst
		fixups     []fixup
		blockStart = make([]int, len(g.Blocks))
	)

	succsOf := func(b int) (taken, fall int) {
		taken, fall = -1, -1
		for _, ei := range g.Blocks[b].Succs {
			e := g.Edges[ei]
			switch e.Kind {
			case cfg.EdgeTaken:
				taken = e.To
			case cfg.EdgeFallthrough:
				fall = e.To
			}
		}
		return taken, fall
	}

	for pos, b := range order {
		blockStart[b] = len(newCode)
		blk := g.Blocks[b]
		last := pa.Insts[blk.End-1].Inst
		nextBlock := -1
		if pos+1 < len(order) {
			nextBlock = order[pos+1]
		}

		// Copy the body (all but a control-transfer tail).
		bodyEnd := blk.End
		tailIsBranch := last.Op.Class() == alpha.ClassBranch
		if tailIsBranch {
			bodyEnd--
		}
		for i := blk.Start; i < bodyEnd; i++ {
			newCode = append(newCode, pa.Insts[i].Inst)
		}

		switch {
		case tailIsBranch && last.Op.IsCondBranch():
			taken, fall := succsOf(b)
			switch {
			case fall == nextBlock || fall < 0:
				// Keep the branch sense; retarget the taken edge.
				newCode = append(newCode, last)
				fixups = append(fixups, fixup{len(newCode) - 1, taken})
			case taken == nextBlock && hasInverse(last.Op):
				// Invert so the old taken edge falls through.
				inv := last
				inv.Op = invertible[last.Op]
				newCode = append(newCode, inv)
				fixups = append(fixups, fixup{len(newCode) - 1, fall})
				res.Inverted++
			default:
				// Neither successor follows (or the branch has no sense
				// inversion, so the taken edge cannot be turned into a
				// fall-through): branch + added br.
				newCode = append(newCode, last)
				fixups = append(fixups, fixup{len(newCode) - 1, taken})
				br := alpha.Inst{Op: alpha.OpBR, Ra: alpha.RegZero}
				newCode = append(newCode, br)
				fixups = append(fixups, fixup{len(newCode) - 1, fall})
				res.AddedBranches++
			}
		case tailIsBranch: // unconditional br
			taken, _ := succsOf(b)
			if taken == nextBlock {
				res.RemovedBranches++ // falls through now
			} else {
				newCode = append(newCode, last)
				fixups = append(fixups, fixup{len(newCode) - 1, taken})
			}
		default:
			// ret/halt/jmp/jsr/call_pal or plain fall-through tails were
			// copied with the body; restore flow to the fall-through
			// successor if it no longer follows.
			_, fall := succsOf(b)
			if fall >= 0 && fall != nextBlock {
				br := alpha.Inst{Op: alpha.OpBR, Ra: alpha.RegZero}
				newCode = append(newCode, br)
				fixups = append(fixups, fixup{len(newCode) - 1, fall})
				res.AddedBranches++
			}
		}
	}

	for _, f := range fixups {
		if f.target < 0 {
			return nil, fmt.Errorf("optimize: %s: dangling branch target", pa.Name)
		}
		d := blockStart[f.target] - (f.at + 1)
		if d < minBranchDisp || d > maxBranchDisp {
			return nil, fmt.Errorf("optimize: %s: rewritten branch at instruction %d needs displacement %d, outside the encodable 21-bit range [%d, %d]",
				pa.Name, f.at, d, minBranchDisp, maxBranchDisp)
		}
		newCode[f.at].Disp = int32(d)
	}
	res.Code = newCode
	return res, nil
}

// hasInverse reports whether op's branch sense can be flipped. Conditional
// branches missing from the inversion table are still laid out correctly —
// emit keeps their sense and restores the fall-through with an added br —
// they just cannot benefit from inversion.
func hasInverse(op alpha.Op) bool {
	_, ok := invertible[op]
	return ok
}
