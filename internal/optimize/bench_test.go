package optimize

import (
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/pipeline"
)

// BenchmarkReorderProcedure measures the per-procedure rewrite itself —
// CFG chaining, branch inversion, and re-emission — on the pessimized
// loop the unit tests use. The optimization loop runs this once per
// sampled procedure per iteration.
func BenchmarkReorderProcedure(b *testing.B) {
	code := alpha.MustAssemble(branchySrc).Code
	samples := map[uint64]uint64{}
	for i := range code {
		samples[uint64(i)*alpha.InstBytes] = 50
	}
	pa := analysis.AnalyzeProc("p", code, 0, samples, nil, pipeline.Default(), 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReorderProcedure(pa); err != nil {
			b.Fatal(err)
		}
	}
}
