package optimize

// Whole-image planning: lift ReorderProcedure from one procedure to a
// complete image.Layout. The plan is absolute — it lists every procedure
// with an explicit body taken from the profiled (possibly already
// rewritten) image — so applying a plan derived from iteration N's image to
// the pristine image reproduces iteration N+1 exactly, and plans compose
// across iterations of the optimization loop for free.

import (
	"fmt"
	"sort"

	"dcpi/internal/alpha"
	"dcpi/internal/dcpi"
	"dcpi/internal/image"
	"dcpi/internal/sim"
)

// ProcChange records what the plan did to one procedure.
type ProcChange struct {
	Name    string
	Samples uint64 // CYCLES samples attributed to the procedure
	// Rewritten procedures carry the block-layout statistics; skipped ones
	// carry the reason their body was left alone.
	Rewritten                      bool
	Inverted, AddedBrs, RemovedBrs int
	Skipped                        string
}

// Plan is a whole-image re-layout derived from one profiled run.
type Plan struct {
	Layout  image.Layout
	Changes []ProcChange // procedures whose bodies were rewritten
	Skips   []ProcChange // sampled procedures left alone, with reasons
	// Moved reports whether the procedure order differs from the profiled
	// image's order.
	Moved bool
}

// Identity reports whether the plan changes nothing relative to the image
// it was derived from: no body rewritten, no procedure moved. When the
// profiled image already carries the previous iteration's layout, an
// identity plan is the loop's fixed point.
func (p *Plan) Identity() bool { return !p.Moved && len(p.Changes) == 0 }

// PlanImage derives the §7 re-layout of one image from a profiled run:
// every sampled procedure's blocks are re-chained along its measured hot
// paths (ReorderProcedure), and procedures are reordered hottest-first
// after the entry procedure so hot code shares pages and I-cache lines
// with its callers instead of its padding. Unsafe procedures (computed
// jumps, unencodable displacements) keep their bodies; an image whose code
// cannot be relocated at all (cross-procedure PC-relative transfers, e.g.
// bsr) is rejected.
func PlanImage(res *dcpi.Result, imagePath string) (*Plan, error) {
	im, ok := res.Loader.ImageByPath(imagePath)
	if !ok {
		return nil, fmt.Errorf("optimize: image %q not registered by the run", imagePath)
	}
	if len(im.Symbols) == 0 {
		return nil, fmt.Errorf("optimize: image %q has no procedure symbols", imagePath)
	}

	samples := make(map[string]uint64, len(im.Symbols))
	for _, row := range res.ProcRows() {
		if row.ImagePath == imagePath {
			samples[row.Procedure] = row.Counts[sim.EvCycles]
		}
	}

	// Order: the entry procedure is pinned first (execution starts at the
	// image base), then decreasing sample counts, original offset as the
	// deterministic tie-break (cold procedures keep their relative order).
	order := make([]int, len(im.Symbols))
	for i := range order {
		order[i] = i
	}
	rest := order[1:]
	sort.SliceStable(rest, func(a, b int) bool {
		sa, sb := samples[im.Symbols[rest[a]].Name], samples[im.Symbols[rest[b]].Name]
		if sa != sb {
			return sa > sb
		}
		return im.Symbols[rest[a]].Offset < im.Symbols[rest[b]].Offset
	})

	plan := &Plan{Layout: image.Layout{Path: imagePath}}
	for pos, si := range order {
		if si != pos {
			plan.Moved = true
		}
		name := im.Symbols[si].Name
		code, _, err := im.ProcCode(name)
		if err != nil {
			return nil, err
		}
		ch := ProcChange{Name: name, Samples: samples[name]}
		if ch.Samples > 0 {
			pa, err := res.AnalyzeProc(imagePath, name)
			if err != nil {
				return nil, err
			}
			r, err := ReorderProcedure(pa)
			switch {
			case err != nil:
				ch.Skipped = err.Error()
				plan.Skips = append(plan.Skips, ch)
			case !sameCode(r.Code, code):
				code = r.Code
				ch.Rewritten = true
				ch.Inverted, ch.AddedBrs, ch.RemovedBrs =
					r.Inverted, r.AddedBranches, r.RemovedBranches
				plan.Changes = append(plan.Changes, ch)
			}
		}
		// The body is always explicit — never nil — so the plan applies
		// identically to this image and to the pristine original.
		plan.Layout.Procs = append(plan.Layout.Procs, image.ProcLayout{Name: name, Code: code})
	}

	// Reject plans the image loader could not apply (e.g. a procedure that
	// branches into a neighbor) now, with the underlying reason, rather
	// than at the next run's setup.
	if _, err := im.WithLayout(plan.Layout); err != nil {
		return nil, err
	}
	return plan, nil
}

func sameCode(a, b []alpha.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
