package optimize

// The closed §7 loop: profile -> plan -> rewrite -> re-measure -> repeat.
// This is the paper's continuous-optimization vision run to quiescence on
// the simulated machine: each iteration profiles the workload with the
// current rewrites in place, derives the next whole-image layout from what
// the profile says is hot now, measures the ground-truth effect of applying
// it (an unprofiled run, so collection overhead never pollutes the
// comparison), and keeps it only if it actually got faster. The loop ends
// at a layout fixed point (the plan stops changing anything) or when an
// iteration fails to improve — the convergence guard that keeps a noisy
// profile from oscillating the layout forever.

import (
	"fmt"

	"dcpi/internal/dcpi"
	"dcpi/internal/image"
	"dcpi/internal/sim"
)

// LoopConfig configures RunLoop.
type LoopConfig struct {
	// Base carries the workload identity (Workload, Scale, Seed, NumCPUs,
	// SimCPUs) and, optionally, the profiling configuration. When Base.Mode
	// is ModeOff the loop profiles with dense zero-cost cycle sampling —
	// the §7 deployment would profile at the paper's default period over
	// hours; the loop compresses that into one short dense run.
	Base dcpi.Config
	// Image is the path of the image to optimize; empty picks the hottest
	// non-kernel image of the first profiled run.
	Image string
	// MaxIters bounds the loop (default 5).
	MaxIters int
	// Run executes one configured run; nil uses dcpi.Run. cmd/dcpiopt
	// injects a runner-backed implementation so repeated configurations
	// (the re-profile of a reverted layout, cross-invocation sweeps) hit
	// the content-keyed cache.
	Run func(dcpi.Config) (*dcpi.Result, error)
}

// Iteration is one profile->plan->measure round.
type Iteration struct {
	Plan  *Plan
	Stats sim.Stats // measured with the plan applied, unprofiled
	// Improved reports whether this layout beat the best previous state
	// (the baseline for iteration 0); the loop keeps only improving
	// layouts.
	Improved bool
}

// CPI is the iteration's measured cycles per instruction.
func (it *Iteration) CPI() float64 { return cpiOf(it.Stats) }

// LoopResult is the outcome of a closed optimization loop.
type LoopResult struct {
	Image    string
	Baseline sim.Stats // unprofiled run of the pristine workload
	Iters    []*Iteration
	// Converged is true when the loop reached quiescence: the plan derived
	// from the last profile changed nothing (a strict fixed point), or it
	// reproduced a layout already measured this loop (a profile-noise
	// cycle — re-measuring it can teach nothing new).
	Converged bool
	// Best indexes the iteration whose layout the loop settled on; -1
	// means no layout beat the baseline.
	Best int
	// Rewrites is the winning rewrite set ready for dcpi.Config.Rewrites
	// (empty when Best < 0).
	Rewrites []image.Layout
}

// BaselineCPI is the pristine workload's measured cycles per instruction.
func (r *LoopResult) BaselineCPI() float64 { return cpiOf(r.Baseline) }

// Speedup is baseline cycles over best cycles (1.0 = no change).
func (r *LoopResult) Speedup() float64 {
	if r.Best < 0 {
		return 1
	}
	return float64(r.Baseline.Cycles) / float64(r.Iters[r.Best].Stats.Cycles)
}

func cpiOf(s sim.Stats) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// RunLoop drives the closed profile->optimize->measure loop to a fixed
// point.
func RunLoop(cfg LoopConfig) (*LoopResult, error) {
	run := cfg.Run
	if run == nil {
		run = dcpi.Run
	}
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 5
	}

	profCfg := cfg.Base
	if profCfg.Mode == sim.ModeOff {
		profCfg.Mode = sim.ModeCycles
		if profCfg.CyclesPeriod.Base == 0 {
			// Dense sampling stands in for the paper's hours of epochs; it
			// is zero-cost so the measured machine is undisturbed (the
			// honest comparison happens in the unprofiled runs anyway).
			profCfg.CyclesPeriod = sim.PeriodSpec{Base: 2048, Spread: 512}
		}
		profCfg.ZeroCostCollection = true
	}

	measure := func(rw []image.Layout) (sim.Stats, error) {
		mcfg := cfg.Base
		mcfg.Mode = sim.ModeOff
		mcfg.ZeroCostCollection = false
		mcfg.Rewrites = rw
		res, err := run(mcfg)
		if err != nil {
			return sim.Stats{}, err
		}
		return res.MachineStats, nil
	}

	baseline, err := measure(nil)
	if err != nil {
		return nil, err
	}
	out := &LoopResult{Image: cfg.Image, Baseline: baseline, Best: -1}
	bestCycles := baseline.Cycles

	var current []image.Layout
	seen := map[string]bool{}
	for len(out.Iters) < iters {
		pcfg := profCfg
		pcfg.Rewrites = current
		prof, err := run(pcfg)
		if err != nil {
			return nil, err
		}
		if out.Image == "" {
			out.Image, err = hottestImage(prof)
			if err != nil {
				return nil, err
			}
		}
		plan, err := PlanImage(prof, out.Image)
		if err != nil {
			return nil, err
		}
		if plan.Identity() || seen[plan.Layout.Digest()] {
			out.Converged = true
			break
		}
		seen[plan.Layout.Digest()] = true
		stats, err := measure([]image.Layout{plan.Layout})
		if err != nil {
			return nil, err
		}
		it := &Iteration{Plan: plan, Stats: stats, Improved: stats.Cycles < bestCycles}
		out.Iters = append(out.Iters, it)
		if !it.Improved {
			// Convergence guard: the new layout regressed (or tied), so it
			// is discarded — `current` keeps the best state. The next
			// iteration re-profiles that state; if the profile proposes the
			// same rejected plan again, the digest check above declares
			// quiescence instead of chasing profile noise.
			continue
		}
		bestCycles = stats.Cycles
		out.Best = len(out.Iters) - 1
		current = []image.Layout{plan.Layout}
	}
	out.Rewrites = current
	return out, nil
}

// hottestImage picks the non-kernel image with the most CYCLES samples.
func hottestImage(res *dcpi.Result) (string, error) {
	totals := map[string]uint64{}
	for _, row := range res.ProcRows() {
		totals[row.ImagePath] += row.Counts[sim.EvCycles]
	}
	best, bestN := "", uint64(0)
	for path, n := range totals {
		if im, ok := res.Loader.ImageByPath(path); !ok || im.Kind == image.KindKernel {
			continue
		}
		if n > bestN || (n == bestN && path < best) {
			best, bestN = path, n
		}
	}
	if best == "" || bestN == 0 {
		return "", fmt.Errorf("optimize: no sampled user image to optimize")
	}
	return best, nil
}
