package optimize

import (
	"strings"
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/cfg"
	"dcpi/internal/pipeline"
)

// runCode executes code functionally until halt and returns the registers.
func runCode(t *testing.T, code []alpha.Inst, setup func(*alpha.Regs, memMap)) *alpha.Regs {
	t.Helper()
	regs := &alpha.Regs{}
	mem := memMap{}
	if setup != nil {
		setup(regs, mem)
	}
	pc := uint64(0)
	for steps := 0; steps < 1_000_000; steps++ {
		idx := pc / alpha.InstBytes
		if idx >= uint64(len(code)) {
			t.Fatalf("pc %#x fell off the code", pc)
		}
		out := alpha.Execute(code[idx], pc, regs, mem)
		if out.Fault != nil {
			t.Fatalf("fault: %v", out.Fault)
		}
		if out.Halt {
			return regs
		}
		pc = out.NextPC
	}
	t.Fatal("did not halt")
	return nil
}

type memMap map[uint64]byte

func (m memMap) Load(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m[addr+uint64(i)]) << (8 * i)
	}
	return v
}

func (m memMap) Store(addr uint64, size int, val uint64) {
	for i := 0; i < size; i++ {
		m[addr+uint64(i)] = byte(val >> (8 * i))
	}
}

// analyzeWithFreqs builds a ProcAnalysis with synthetic samples that encode
// the desired block frequencies.
func analyzeWithFreqs(t *testing.T, src string, blockFreq map[int]uint64) *analysis.ProcAnalysis {
	t.Helper()
	code := alpha.MustAssemble(src).Code
	pa0 := analysis.AnalyzeProc("p", code, 0, map[uint64]uint64{}, nil, pipeline.Default(), 1000)
	samples := map[uint64]uint64{}
	for bi := range pa0.Graph.Blocks {
		blk := pa0.Graph.Blocks[bi]
		f := blockFreq[bi]
		sched := pipeline.Default().ScheduleBlock(code[blk.Start:blk.End])
		for j, s := range sched {
			samples[uint64(blk.Start+j)*alpha.InstBytes] = uint64(s.M) * f
		}
	}
	return analysis.AnalyzeProc("p", code, 0, samples, nil, pipeline.Default(), 1000)
}

// branchySrc: the loop's conditional usually TAKES the branch to the hot
// arm (the layout pessimizes the common case).
const branchySrc = `
p:
	lda  t0, 1000(zero)
	lda  t5, 0(zero)
.loop:
	and  t0, 0x7, t1
	beq  t1, .cold        ; rarely taken (1 in 8)
	br   .hot             ; usually: extra jump to the hot arm
.cold:
	addq t5, 100, t5
	br   .next
.hot:
	addq t5, 1, t5
.next:
	subq t0, 1, t0
	bne  t0, .loop
	halt
`

func TestReorderPreservesSemantics(t *testing.T) {
	pa := analyzeWithFreqs(t, branchySrc, map[int]uint64{
		0: 1, 1: 100, 2: 100, 3: 12, 4: 88, 5: 100, 6: 1,
	})
	res, err := ReorderProcedure(pa)
	if err != nil {
		t.Fatal(err)
	}
	orig := runCode(t, pa.Graph.Code, nil)
	opt := runCode(t, res.Code, nil)
	if orig.I[alpha.RegT5] != opt.I[alpha.RegT5] {
		t.Fatalf("semantics changed: t5 = %d vs %d", orig.I[alpha.RegT5], opt.I[alpha.RegT5])
	}
	if orig.I[alpha.RegT5] != 88*1+12*100+900 && orig.I[alpha.RegT5] == 0 {
		t.Fatalf("unexpected original result %d", orig.I[alpha.RegT5])
	}
}

func TestReorderStraightensHotPath(t *testing.T) {
	pa := analyzeWithFreqs(t, branchySrc, map[int]uint64{
		0: 1, 1: 100, 2: 100, 3: 12, 4: 88, 5: 100, 6: 1,
	})
	res, err := ReorderProcedure(pa)
	if err != nil {
		t.Fatal(err)
	}
	// The rewrite should remove or invert something: the hot arm should no
	// longer be reached through an unconditional br.
	if res.Inverted+res.RemovedBranches == 0 {
		t.Errorf("no layout improvement: %+v", res)
	}
	// Count dynamic unconditional branches on the hot path: execute and
	// count BR executions.
	count := func(code []alpha.Inst) int {
		regs := &alpha.Regs{}
		mem := memMap{}
		pc := uint64(0)
		brs := 0
		for steps := 0; steps < 1_000_000; steps++ {
			in := code[pc/alpha.InstBytes]
			if in.Op == alpha.OpBR {
				brs++
			}
			out := alpha.Execute(in, pc, regs, mem)
			if out.Halt {
				return brs
			}
			pc = out.NextPC
		}
		t.Fatal("did not halt")
		return 0
	}
	origBRs := count(pa.Graph.Code)
	optBRs := count(res.Code)
	if optBRs >= origBRs {
		t.Errorf("dynamic br executions: %d -> %d, want fewer", origBRs, optBRs)
	}
}

func TestReorderRejectsUnsafe(t *testing.T) {
	cases := []string{
		"p:\n bsr ra, p\n halt",                  // PC-relative call
		"p:\n beq a0, .x\n jmp (t0)\n.x:\n halt", // computed jump (missing edges)
	}
	for _, src := range cases {
		code := alpha.MustAssemble(src).Code
		pa := analysis.AnalyzeProc("p", code, 0, map[uint64]uint64{}, nil, pipeline.Default(), 1000)
		if _, err := ReorderProcedure(pa); err == nil {
			t.Errorf("unsafe procedure accepted: %q", src)
		}
	}
}

// TestInvertibleTableComplete pins the inversion table against the ISA: a
// conditional branch added to alpha without an entry here would previously
// have been rewritten to the zero-value Op (a corrupt instruction) by a
// blind map lookup in emit.
func TestInvertibleTableComplete(t *testing.T) {
	for op := alpha.Op(0); int(op) < alpha.NumOps; op++ {
		if op.IsCondBranch() {
			inv, ok := invertible[op]
			if !ok {
				t.Errorf("conditional branch %v missing from invertible table", op)
				continue
			}
			if !inv.IsCondBranch() {
				t.Errorf("invertible[%v] = %v, not a conditional branch", op, inv)
			}
			if back, ok := invertible[inv]; !ok || back != op {
				t.Errorf("inversion not an involution: %v -> %v -> %v", op, inv, back)
			}
		} else if _, ok := invertible[op]; ok {
			t.Errorf("non-conditional-branch %v present in invertible table", op)
		}
	}
}

// TestEmitFallsBackWhenNotInvertible simulates a conditional branch with no
// sense inversion (by temporarily removing its table entry): emit must fall
// back to the keep-branch-plus-added-br layout instead of emitting a
// zero-value Op.
func TestEmitFallsBackWhenNotInvertible(t *testing.T) {
	saved, had := invertible[alpha.OpBEQ]
	delete(invertible, alpha.OpBEQ)
	defer func() {
		if had {
			invertible[alpha.OpBEQ] = saved
		}
	}()

	pa := analyzeWithFreqs(t, branchySrc, map[int]uint64{
		0: 1, 1: 100, 2: 100, 3: 12, 4: 88, 5: 100, 6: 1,
	})
	res, err := ReorderProcedure(pa)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inverted != 0 {
		t.Errorf("inverted %d branches with an empty inversion entry", res.Inverted)
	}
	for i, in := range res.Code {
		if in.Op == alpha.Op(0) {
			t.Fatalf("corrupt zero-value Op emitted at instruction %d", i)
		}
	}
	orig := runCode(t, pa.Graph.Code, nil)
	opt := runCode(t, res.Code, nil)
	if orig.I[alpha.RegT5] != opt.I[alpha.RegT5] {
		t.Fatalf("semantics changed: t5 = %d vs %d", orig.I[alpha.RegT5], opt.I[alpha.RegT5])
	}
}

// TestEmitRejectsUnencodableDisplacement feeds emit a procedure whose
// rewritten branch would need a displacement beyond Alpha's 21-bit signed
// branch field; the rewrite must fail instead of emitting unencodable code.
func TestEmitRejectsUnencodableDisplacement(t *testing.T) {
	const filler = 1<<20 + 8 // just past the positive displacement limit
	code := make([]alpha.Inst, 0, filler+2)
	// beq over the filler to the halt: encodable as input data (Disp is an
	// int32), but any layout keeps the two blocks > 2^20 instructions apart.
	code = append(code, alpha.Inst{Op: alpha.OpBEQ, Ra: alpha.RegT0, Disp: filler})
	for i := 0; i < filler; i++ {
		code = append(code, alpha.Inst{Op: alpha.OpBIS, Ra: alpha.RegZero, Rb: alpha.RegZero, Rc: alpha.RegT1})
	}
	code = append(code, alpha.Inst{Op: alpha.OpHALT})

	g := cfg.Build(code, 0)
	insts := make([]analysis.InstAnalysis, len(code))
	for i := range code {
		insts[i] = analysis.InstAnalysis{Index: i, Inst: code[i]}
	}
	pa := &analysis.ProcAnalysis{
		Name:      "far",
		Graph:     g,
		Insts:     insts,
		EdgeFreq:  make([]float64, len(g.Edges)),
		BlockFreq: make([]float64, len(g.Blocks)),
	}
	_, err := ReorderProcedure(pa)
	if err == nil {
		t.Fatal("unencodable displacement accepted")
	}
	if !strings.Contains(err.Error(), "21-bit") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestReorderIdempotentOnGoodLayout(t *testing.T) {
	// A loop already laid out hot-fallthrough: nothing to invert, nothing
	// to add.
	src := `
p:
	lda t0, 100(zero)
.loop:
	subq t0, 1, t0
	bne t0, .loop
	halt
`
	pa := analyzeWithFreqs(t, src, map[int]uint64{0: 1, 1: 100, 2: 1})
	res, err := ReorderProcedure(pa)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inverted != 0 || res.AddedBranches != 0 {
		t.Errorf("good layout was disturbed: %+v", res)
	}
	if len(res.Code) != len(pa.Graph.Code) {
		t.Errorf("code size changed: %d -> %d", len(pa.Graph.Code), len(res.Code))
	}
	orig := runCode(t, pa.Graph.Code, nil)
	opt := runCode(t, res.Code, nil)
	if orig.I[alpha.RegT0] != opt.I[alpha.RegT0] {
		t.Error("semantics changed")
	}
}
