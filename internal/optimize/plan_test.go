package optimize

import (
	"strings"
	"testing"

	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

// profiledRun runs a workload under dense zero-cost cycle sampling, the
// loop's profiling configuration.
func profiledRun(t *testing.T, workload string, scale float64) *dcpi.Result {
	t.Helper()
	res, err := dcpi.Run(dcpi.Config{
		Workload:           workload,
		Scale:              scale,
		Seed:               3,
		Mode:               sim.ModeCycles,
		CyclesPeriod:       sim.PeriodSpec{Base: 2048, Spread: 512},
		ZeroCostCollection: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPlanImageClassify(t *testing.T) {
	res := profiledRun(t, "classify", 0.25)
	plan, err := PlanImage(res, "/bin/classify")
	if err != nil {
		t.Fatal(err)
	}

	// The entry procedure stays first; the hot helper must be pulled up
	// from behind the cold padding to right after it.
	if got := plan.Layout.Procs[0].Name; got != "main" {
		t.Errorf("Procs[0] = %q, want entry procedure main", got)
	}
	if got := plan.Layout.Procs[1].Name; got != "checksum" {
		t.Errorf("Procs[1] = %q, want hot helper checksum", got)
	}
	if !plan.Moved {
		t.Error("plan.Moved = false, want procedure reordering")
	}

	// main's pessimized arms (taken-branch-to-fallthrough plus extra jump)
	// must be rewritten.
	var main *ProcChange
	for i := range plan.Changes {
		if plan.Changes[i].Name == "main" {
			main = &plan.Changes[i]
		}
	}
	if main == nil {
		t.Fatalf("main not rewritten; changes = %+v", plan.Changes)
	}
	if main.Inverted == 0 || main.RemovedBrs == 0 {
		t.Errorf("main change = %+v, want inversion and br removal", *main)
	}
	if main.Samples == 0 {
		t.Error("main change carries no sample count")
	}

	// The plan is absolute: every procedure listed, every body explicit, so
	// it applies to the pristine image no matter which iteration derived it.
	im, _ := res.Loader.ImageByPath("/bin/classify")
	if got, want := len(plan.Layout.Procs), len(im.Symbols); got != want {
		t.Fatalf("plan lists %d procs, image has %d", got, want)
	}
	for _, p := range plan.Layout.Procs {
		if p.Code == nil {
			t.Errorf("proc %s has implicit body; plans must be absolute", p.Name)
		}
	}
	if _, err := im.WithLayout(plan.Layout); err != nil {
		t.Fatalf("plan does not apply to its own image: %v", err)
	}
	if plan.Identity() {
		t.Error("a moving, rewriting plan reports Identity")
	}
}

func TestPlanImageDeterministic(t *testing.T) {
	res := profiledRun(t, "classify", 0.25)
	a, err := PlanImage(res, "/bin/classify")
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanImage(res, "/bin/classify")
	if err != nil {
		t.Fatal(err)
	}
	if a.Layout.Digest() != b.Layout.Digest() {
		t.Errorf("same profile produced different plans: %s vs %s",
			a.Layout.Digest(), b.Layout.Digest())
	}
}

func TestPlanImageRejectsUnsafeImage(t *testing.T) {
	// gcc's main reaches helpers with bsr: PC-relative across procedure
	// boundaries, so moving either side would retarget the call. The plan
	// must refuse the whole image, naming the instruction.
	res := profiledRun(t, "gcc", 0.02)
	_, err := PlanImage(res, "/usr/bin/gcc")
	if err == nil || !strings.Contains(err.Error(), "outside the procedure") {
		t.Fatalf("err = %v, want cross-procedure branch rejection", err)
	}
}

func TestPlanImageUnknownImage(t *testing.T) {
	res := profiledRun(t, "classify", 0.1)
	if _, err := PlanImage(res, "/bin/nope"); err == nil ||
		!strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v, want not-registered error", err)
	}
}

func TestPlanIdentity(t *testing.T) {
	if !(&Plan{}).Identity() {
		t.Error("empty plan is not identity")
	}
	if (&Plan{Moved: true}).Identity() {
		t.Error("moved plan reports identity")
	}
	if (&Plan{Changes: []ProcChange{{Name: "p"}}}).Identity() {
		t.Error("rewriting plan reports identity")
	}
}
