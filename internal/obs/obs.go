// Package obs is the self-observability layer of the reproduction: a
// stdlib-only, race-safe metrics registry (counters, gauges, fixed-bucket
// histograms with quantile estimates) plus a buffered structured event
// tracer that emits Chrome-trace-format JSON (trace.go).
//
// The paper spends all of §4 measuring DCPI itself — interrupt-handler
// cycles, hash-table miss and eviction rates, daemon cycles per sample,
// memory footprint (Tables 3-5). This package turns those one-off numbers
// into machine-readable artifacts: the collection stack (driver, daemon,
// profile database) and the evaluation engine (runner, eval) accept an
// optional Hooks value and publish their self-measurements through it.
//
// Everything is nil-safe by design: a nil *Registry hands out nil metrics,
// and every method on a nil metric is a no-op. Instrumented code therefore
// carries no conditionals beyond the nil receiver check the method itself
// performs, and a run with observability disabled behaves — and outputs —
// exactly as before.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// Hooks bundles the optional registry and tracer handed to a component.
// The zero value disables observability entirely.
type Hooks struct {
	Registry *Registry
	Tracer   *Tracer
}

// Enabled reports whether any observability sink is attached.
func (h Hooks) Enabled() bool { return h.Registry != nil || h.Tracer != nil }

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; the nil *Registry is valid and inert.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. On a nil registry it returns nil (whose methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (an implicit +Inf overflow
// bucket is always appended). Later calls with the same name return the
// existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by delta (atomic read-modify-write).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets and tracks count,
// sum, min, and max, from which quantiles are estimated by linear
// interpolation within the covering bucket.
type Histogram struct {
	bounds []float64 // ascending upper bounds; the overflow bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
	min    atomicMin
	max    atomicMax
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	h.min.init()
	h.max.init()
	return h
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.observe(v)
	h.max.observe(v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.load()
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.load()
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// within the bucket containing the target rank. The overflow bucket is
// interpolated up to the observed maximum, and results are clamped to the
// observed [min, max] (so a single-sample histogram returns that sample for
// every q). An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	lo, mn, mx := 0.0, h.min.load(), h.max.load()
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		hi := mx
		if i < len(h.bounds) {
			hi = h.bounds[i]
		}
		if cum+n >= rank && n > 0 {
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / n
			}
			v := lo + frac*(hi-lo)
			return math.Max(mn, math.Min(mx, v))
		}
		cum += n
		lo = hi
	}
	return mx
}

// atomicFloat is a CAS-loop float64 accumulator.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// atomicMin / atomicMax track extremes with CAS loops.
type atomicMin struct{ bits atomic.Uint64 }

func (m *atomicMin) init() { m.bits.Store(math.Float64bits(math.Inf(1))) }

func (m *atomicMin) observe(v float64) {
	for {
		old := m.bits.Load()
		if v >= math.Float64frombits(old) || m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (m *atomicMin) load() float64 { return math.Float64frombits(m.bits.Load()) }

type atomicMax struct{ bits atomic.Uint64 }

func (m *atomicMax) init() { m.bits.Store(math.Float64bits(math.Inf(-1))) }

func (m *atomicMax) observe(v float64) {
	for {
		old := m.bits.Load()
		if v <= math.Float64frombits(old) || m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (m *atomicMax) load() float64 { return math.Float64frombits(m.bits.Load()) }

// BucketCount is one histogram bucket in a snapshot: the count of
// observations with value <= Le (non-cumulative; the overflow bucket has
// Le = +Inf, serialized as the JSON string "+Inf").
type BucketCount struct {
	Le    float64 `json:"-"`
	Count uint64  `json:"count"`
}

// MarshalJSON emits {"le": bound-or-"+Inf", "count": n}.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	type bc struct {
		Le    any    `json:"le"`
		Count uint64 `json:"count"`
	}
	le := any(b.Le)
	if math.IsInf(b.Le, 1) {
		le = "+Inf"
	}
	return json.Marshal(bc{Le: le, Count: b.Count})
}

// HistogramSnapshot is a point-in-time view of one histogram.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	s.Buckets = make([]BucketCount, len(h.counts))
	for i := range h.counts {
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{Le: le, Count: h.counts[i].Load()}
	}
	return s
}

// Snapshot is a point-in-time view of a whole registry. encoding/json
// sorts map keys, so the serialized form is deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric currently registered.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes an indented, deterministic JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteFile writes the JSON snapshot to path.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
