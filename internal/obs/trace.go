// Chrome-trace-format event tracer. The emitted JSON loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Two time domains are used by convention:
//
//   - The collection pipeline (driver, daemon, profile database) stamps
//     events with the *simulated* clock: one cycle is written as one
//     microsecond, so a Perfetto millisecond reads as 1000 cycles.
//   - The evaluation engine (runner, eval) stamps events with real wall
//     time via Tracer.Now (microseconds since the tracer was created).
//
// The two never share a trace file: dcpid writes the pipeline trace,
// dcpieval writes the runner trace.
package obs

import (
	"encoding/json"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Trace process IDs: each instrumented component appears as its own
// "process" lane in Perfetto, with threads (tid) used for per-CPU or
// per-worker breakdown.
const (
	PIDDriver = 1 // interrupt handler; tid = CPU
	PIDDaemon = 2 // user-mode daemon; tid = CPU being drained (0 for merges)
	PIDDB     = 3 // profile database
	PIDRunner = 4 // simulation scheduler; tid = worker slot
	PIDEval   = 5 // experiment sections; tid = section
)

// DefaultTraceCap bounds the event buffer; events beyond it are counted in
// Dropped rather than stored, so a pathological run cannot exhaust memory.
const DefaultTraceCap = 1 << 18

// traceEvent is one Chrome trace event.
type traceEvent struct {
	Name string
	Cat  string
	Ph   string // "X" complete, "i" instant, "C" counter, "M" metadata
	TS   int64  // microseconds
	Dur  int64  // microseconds, complete events only
	PID  int
	TID  int
	Args map[string]any
}

// MarshalJSON emits the event with exactly the fields its phase needs.
// Marshaling goes through a map so keys come out sorted (deterministic
// output for golden-file tests).
func (e traceEvent) MarshalJSON() ([]byte, error) {
	m := map[string]any{
		"name": e.Name,
		"ph":   e.Ph,
		"ts":   e.TS,
		"pid":  e.PID,
		"tid":  e.TID,
	}
	if e.Cat != "" {
		m["cat"] = e.Cat
	}
	if e.Ph == "X" {
		m["dur"] = e.Dur
	}
	if e.Ph == "i" {
		m["s"] = "t" // thread-scoped instant
	}
	if e.Args != nil {
		m["args"] = e.Args
	}
	return json.Marshal(m)
}

// Tracer is a bounded, concurrency-safe event buffer. The nil *Tracer is
// valid and inert.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	meta    []traceEvent // process/thread name records, emitted first
	events  []traceEvent
	cap     int
	dropped uint64
}

// NewTracer creates a tracer holding at most capacity events
// (capacity <= 0 selects DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{start: time.Now(), cap: capacity}
}

// Now returns microseconds of real time since the tracer was created (0 on
// nil). Wall-clock components (runner, eval) use it as their timestamp
// source so their events share one epoch.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Microseconds()
}

func (t *Tracer) append(e traceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Slice records a complete ("X") event covering [ts, ts+dur].
func (t *Tracer) Slice(cat, name string, pid, tid int, ts, dur int64, args map[string]any) {
	t.append(traceEvent{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: pid, TID: tid, Args: args})
}

// Instant records a zero-duration ("i") event.
func (t *Tracer) Instant(cat, name string, pid, tid int, ts int64, args map[string]any) {
	t.append(traceEvent{Name: name, Cat: cat, Ph: "i", TS: ts, PID: pid, TID: tid, Args: args})
}

// Counter records a counter ("C") sample; Perfetto renders each key of
// values as a stacked series under name.
func (t *Tracer) Counter(cat, name string, pid int, ts int64, values map[string]float64) {
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.append(traceEvent{Name: name, Cat: cat, Ph: "C", TS: ts, PID: pid, Args: args})
}

// NameProcess labels a pid lane (metadata record; not counted against cap).
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta = append(t.meta, traceEvent{
		Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// NameThread labels a (pid, tid) lane.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta = append(t.meta, traceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid, Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// Len returns the number of buffered (non-metadata) events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded once the buffer filled.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// traceFile is the Chrome trace JSON object form.
type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteJSON writes the trace in Chrome trace format (JSON object form):
// metadata records first, then events in emission order.
func (t *Tracer) WriteJSON(w io.Writer) error {
	out := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	if t != nil {
		t.mu.Lock()
		out.TraceEvents = make([]traceEvent, 0, len(t.meta)+len(t.events))
		out.TraceEvents = append(out.TraceEvents, t.meta...)
		out.TraceEvents = append(out.TraceEvents, t.events...)
		if t.dropped > 0 {
			out.OtherData = map[string]string{"dropped_events": strconv.FormatUint(t.dropped, 10)}
		}
		t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteFile writes the trace JSON to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
