package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// buildFixedTrace emits a deterministic event sequence covering every
// phase the pipeline uses: metadata, slices, instants, and counters.
func buildFixedTrace() *Tracer {
	tr := NewTracer(16)
	tr.NameProcess(PIDDriver, "driver (interrupt handler)")
	tr.NameThread(PIDDriver, 0, "cpu0")
	tr.NameProcess(PIDDaemon, "daemon (user-mode)")
	tr.Slice("driver", "intr:hit", PIDDriver, 0, 61440, 420, nil)
	tr.Slice("driver", "intr:evict", PIDDriver, 0, 122880, 700, nil)
	tr.Instant("driver", "overflow_swap", PIDDriver, 0, 122881, map[string]any{"entries": 8192})
	tr.Slice("daemon", "process:drain", PIDDaemon, 0, 2000000, 12800, map[string]any{"entries": 16})
	tr.Counter("daemon", "daemon_memory", PIDDaemon, 2012800, map[string]float64{"bytes": 4096})
	tr.Instant("db", "epoch_flush", PIDDB, 0, 4000000, map[string]any{"epoch": 1, "profiles": 3})
	return tr
}

// TestTraceGolden locks the emitted Chrome-trace JSON down to the byte:
// the format is an interchange contract with Perfetto, so accidental
// drift should fail loudly. Regenerate with -update-golden after a
// deliberate format change.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON differs from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// chromeTrace mirrors the Chrome trace format's JSON object form; the
// required per-event fields are validated by ValidateChromeTrace.
type chromeTrace struct {
	TraceEvents []map[string]any `json:"traceEvents"`
}

// validateChromeTrace parses data as Chrome trace format and checks every
// event carries the required fields with the right JSON types. Shared with
// the CLI artifact test via this package's export_test-style helper.
func validateChromeTrace(t *testing.T, data []byte) chromeTrace {
	t.Helper()
	var ct chromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	for i, ev := range ct.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			t.Fatalf("event %d: missing ph: %v", i, ev)
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event %d: missing name: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d: missing pid: %v", i, ev)
		}
		switch ph {
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event %d: missing dur: %v", i, ev)
			}
			fallthrough
		case "i", "C":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event %d: missing ts: %v", i, ev)
			}
		case "M":
			// metadata carries args.name
			args, ok := ev["args"].(map[string]any)
			if !ok {
				t.Fatalf("metadata event %d: missing args: %v", i, ev)
			}
			if _, ok := args["name"].(string); !ok {
				t.Fatalf("metadata event %d: args.name missing: %v", i, ev)
			}
		}
	}
	return ct
}

func TestTraceIsValidChromeFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ct := validateChromeTrace(t, buf.Bytes())
	if len(ct.TraceEvents) != 9 {
		t.Errorf("events = %d, want 9 (3 metadata + 6 recorded)", len(ct.TraceEvents))
	}
}

// TestTracerCapDropsBeyondCapacity: the buffer must bound memory and count
// what it discarded.
func TestTracerCapDropsBeyondCapacity(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant("x", "e", 1, 0, int64(i), nil)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.OtherData["dropped_events"] != "6" {
		t.Errorf("otherData.dropped_events = %q, want \"6\"", out.OtherData["dropped_events"])
	}
}

// TestTracerConcurrent verifies the tracer under parallel emitters (run
// with -race via scripts/ci.sh).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(100_000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Slice("c", "e", PIDRunner, w, int64(i), 1, nil)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 8000 {
		t.Errorf("Len = %d, want 8000", tr.Len())
	}
}

// TestNilTracer: all methods must be inert on nil.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Slice("a", "b", 1, 0, 0, 1, nil)
	tr.Instant("a", "b", 1, 0, 0, nil)
	tr.Counter("a", "b", 1, 0, nil)
	tr.NameProcess(1, "x")
	tr.NameThread(1, 0, "y")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Now() != 0 {
		t.Error("nil tracer not inert")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	validateChromeTrace(t, buf.Bytes())
}
