package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestNilSafety: every operation on a nil registry/metric must be a no-op,
// since instrumented code calls them unguarded when observability is off.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter Value = %d", c.Value())
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Errorf("nil gauge Value = %g", g.Value())
	}
	h := r.Histogram("z", LinearBuckets(0, 1, 4))
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("nil histogram Count=%d q50=%g", h.Count(), h.Quantile(0.5))
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot: %+v", s)
	}
	var hooks Hooks
	if hooks.Enabled() {
		t.Error("zero Hooks reports Enabled")
	}
}

// TestConcurrentUpdates hammers one counter, gauge, and histogram from many
// goroutines; run with -race (scripts/ci.sh does) to verify race safety,
// and check the totals are exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10_000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Same names from every goroutine: registration must be
			// concurrency-safe too, not just updates.
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", ExpBuckets(1, 2, 10))
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				g.Add(1)
				h.Observe(float64(i % 700))
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge = %g, want %d", got, workers*perWorker)
	}
	h := r.Histogram("h", nil)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var want float64
	for i := 0; i < perWorker; i++ {
		want += float64(i % 700)
	}
	if got := h.Sum(); got != want*workers {
		t.Errorf("histogram sum = %g, want %g", got, want*workers)
	}
	if h.Min() != 0 || h.Max() != 699 {
		t.Errorf("min/max = %g/%g, want 0/699", h.Min(), h.Max())
	}
}

// TestHistogramQuantileEdgeCases covers the ISSUE's named cases: empty,
// single sample, and observations landing in the overflow bucket.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	bounds := []float64{10, 20, 40}

	t.Run("empty", func(t *testing.T) {
		h := newHistogram(bounds)
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
			}
		}
		if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
			t.Errorf("empty mean/min/max = %g/%g/%g", h.Mean(), h.Min(), h.Max())
		}
	})

	t.Run("single-sample", func(t *testing.T) {
		h := newHistogram(bounds)
		h.Observe(17)
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			if got := h.Quantile(q); got != 17 {
				t.Errorf("single Quantile(%g) = %g, want 17 (clamped to min=max)", q, got)
			}
		}
	})

	t.Run("overflow-bucket", func(t *testing.T) {
		h := newHistogram(bounds)
		// All observations beyond the last bound: quantiles interpolate
		// between the last bound and the observed max, never +Inf.
		for _, v := range []float64{50, 60, 80, 100} {
			h.Observe(v)
		}
		for _, q := range []float64{0.5, 0.99, 1} {
			got := h.Quantile(q)
			if math.IsInf(got, 0) || got < 50 || got > 100 {
				t.Errorf("overflow Quantile(%g) = %g, want within [50,100]", q, got)
			}
		}
		if got := h.Quantile(1); got != 100 {
			t.Errorf("overflow Quantile(1) = %g, want 100", got)
		}
	})

	t.Run("clamped-to-range", func(t *testing.T) {
		h := newHistogram(bounds)
		h.Observe(12)
		h.Observe(13)
		h.Observe(14)
		for _, q := range []float64{-1, 0, 0.5, 1, 2} {
			got := h.Quantile(q)
			if got < 12 || got > 14 {
				t.Errorf("Quantile(%g) = %g, outside observed [12,14]", q, got)
			}
		}
	})

	t.Run("median-between-buckets", func(t *testing.T) {
		h := newHistogram(bounds)
		// 50 in (0,10], 50 in (20,40]: the median must fall at the split.
		for i := 0; i < 50; i++ {
			h.Observe(5)
			h.Observe(30)
		}
		if got := h.Quantile(0.5); got < 5 || got > 30 {
			t.Errorf("Quantile(0.5) = %g, want within [5,30]", got)
		}
		if got := h.Quantile(0.9); got < 20 || got > 40 {
			t.Errorf("Quantile(0.9) = %g, want in the upper bucket [20,40]", got)
		}
	})
}

func TestHistogramBucketCounts(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCounts := []uint64{2, 1, 1, 1} // le=1: {0.5, 1}; le=2: {1.5}; le=4: {3}; +Inf: {100}
	if len(s.Buckets) != len(wantCounts) {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(s.Buckets[3].Le, 1) {
		t.Errorf("last bucket Le = %g, want +Inf", s.Buckets[3].Le)
	}
}

// TestSnapshotJSON checks that the serialized snapshot is valid JSON with
// the expected sections and an "+Inf" overflow bound (JSON has no Inf).
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("driver.samples").Add(42)
	r.Gauge("driver.miss_rate").Set(0.125)
	r.Histogram("driver.handler_cycles", LinearBuckets(100, 100, 3)).Observe(250)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round struct {
		Counters   map[string]uint64  `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count   uint64  `json:"count"`
			P50     float64 `json:"p50"`
			Buckets []struct {
				Le    any    `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if round.Counters["driver.samples"] != 42 {
		t.Errorf("counter roundtrip = %d", round.Counters["driver.samples"])
	}
	if round.Gauges["driver.miss_rate"] != 0.125 {
		t.Errorf("gauge roundtrip = %g", round.Gauges["driver.miss_rate"])
	}
	h := round.Histograms["driver.handler_cycles"]
	if h.Count != 1 || h.P50 != 250 {
		t.Errorf("histogram roundtrip count=%d p50=%g", h.Count, h.P50)
	}
	last := h.Buckets[len(h.Buckets)-1]
	if last.Le != "+Inf" {
		t.Errorf(`overflow bound = %v, want "+Inf"`, last.Le)
	}
}

func TestExpAndLinearBuckets(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Errorf("ExpBuckets[%d] = %g, want %g", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(10, 5, 3)
	want = []float64{10, 15, 20}
	for i := range want {
		if lin[i] != want[i] {
			t.Errorf("LinearBuckets[%d] = %g, want %g", i, lin[i], want[i])
		}
	}
}
