package obs

import (
	"fmt"
	"io"
	"sort"
)

// WriteFlat renders the registry as sorted "name value" text lines, one
// metric per line — the exposition format served on /metrics by dcpid and
// dcpicollect. Counters and gauges emit a single line; histograms emit
// their count, sum, mean, and quantile summaries under dotted suffixes.
// The output is deterministic (sorted by name), so it diffs cleanly
// between scrapes.
func (r *Registry) WriteFlat(w io.Writer) error {
	s := r.Snapshot()
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+6*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", name, h.Count),
			fmt.Sprintf("%s.sum %g", name, h.Sum),
			fmt.Sprintf("%s.mean %g", name, h.Mean),
			fmt.Sprintf("%s.p50 %g", name, h.P50),
			fmt.Sprintf("%s.p90 %g", name, h.P90),
			fmt.Sprintf("%s.p99 %g", name, h.P99),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
