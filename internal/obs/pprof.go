package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// This file wires Go's own profiler into the tools, closing the loop the
// paper opens: the profiling system is itself profiled. The CLIs expose
// these as -cpuprofile/-memprofile flags; docs/PERFORMANCE.md shows how to
// read the results.

// StartCPUProfile begins a runtime/pprof CPU profile writing to path and
// returns a stop function. The stop function is safe to call more than
// once; callers should invoke it on every exit path (including error
// exits) so the profile is flushed.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after forcing a GC, so
// the profile reflects live objects rather than garbage awaiting
// collection. Call it once, at process exit.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// PublishRuntimeMemStats exports the Go runtime's allocation counters into
// reg, giving the metrics artifact a steady-state allocation view of the
// tool run itself (the denominator callers divide by simulated
// instructions to get allocs per simulated op).
func PublishRuntimeMemStats(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("runtime.mallocs").Set(float64(ms.Mallocs))
	reg.Gauge("runtime.total_alloc_bytes").Set(float64(ms.TotalAlloc))
	reg.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	reg.Gauge("runtime.gc_cycles").Set(float64(ms.NumGC))
}
