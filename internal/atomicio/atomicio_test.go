package atomicio

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	for _, content := range []string{"first", "second longer content"} {
		if err := WriteFile(path, func(w io.Writer) error {
			_, err := w.Write([]byte(content))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Errorf("content = %q, want %q", got, content)
		}
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file left behind after successful write")
	}
}

func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	if err := WriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Errorf("failed write clobbered target: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file left behind after failed write")
	}
}

func TestVarintRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	uvals := []uint64{0, 1, 127, 128, 1 << 32, ^uint64(0)}
	ivals := []int64{0, -1, 1, -64, 64, 1 << 40, -(1 << 40)}
	for _, v := range uvals {
		if err := WriteUvarint(bw, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range ivals {
		if err := WriteVarint(bw, v); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()
	br := bufio.NewReader(&buf)
	for _, want := range uvals {
		got, err := ReadUvarint(br)
		if err != nil || got != want {
			t.Fatalf("ReadUvarint = %d, %v; want %d", got, err, want)
		}
	}
	for _, want := range ivals {
		got, err := ReadVarint(br)
		if err != nil || got != want {
			t.Fatalf("ReadVarint = %d, %v; want %d", got, err, want)
		}
	}
}
