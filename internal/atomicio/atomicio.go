// Package atomicio holds the small durable-file primitives shared by the
// on-disk stores (profiledb's profile/metadata files, runcache's persisted
// run results): crash-safe whole-file replacement and the varint framing
// both formats use.
//
// The write protocol is the classic temp+fsync+rename sequence: data is
// written to a temporary file in the target's directory, synced, closed,
// and renamed over the final name. Readers therefore only ever observe the
// old content or the complete new content — never a torn file at the final
// path — which is what lets a crashed writer's leftovers be recovered by
// deleting stale ".tmp" files and quarantining anything that fails to
// decode.
package atomicio

import (
	"bufio"
	"encoding/binary"
	"io"
	"os"
)

// WriteFile writes via a temp file in the target's directory, syncing
// before the rename, so readers only ever see the old content or the
// complete new content — never a torn file at the final name.
func WriteFile(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// WriteUvarint appends v in unsigned LEB128 form, checking the write error
// (bufio.Writer errors are sticky, but callers that sync to disk need the
// first failure, not a later Flush surprise).
func WriteUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// WriteVarint appends v in zig-zag signed LEB128 form.
func WriteVarint(w *bufio.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// ReadUvarint mirrors WriteUvarint (a thin wrapper so codecs read and write
// through one package).
func ReadUvarint(r io.ByteReader) (uint64, error) {
	return binary.ReadUvarint(r)
}

// ReadVarint mirrors WriteVarint.
func ReadVarint(r io.ByteReader) (int64, error) {
	return binary.ReadVarint(r)
}
