package mem

// PageMapper assigns physical pages to virtual pages on first touch,
// modeling the operating system's page placement: each 1MB virtual region
// receives a contiguous physical run starting at a (seeded) pseudo-random
// base. Contiguity matters: with physically indexed caches, two large
// arrays then conflict wholesale or not at all depending on where their
// runs landed, which is exactly the run-to-run variance the paper's wave5
// study (§3.3) attributes to virtual-to-physical mapping differences.
type PageMapper struct {
	physPages uint64
	next      map[uint64]uint64 // vpage|asn key -> ppage
	seed      uint64
}

// regionPages is the contiguous-allocation granularity (128 pages = 1MB).
const regionPages = 128

// NewPageMapper creates a mapper over physPages physical pages using seed
// for placement. Different seeds model different runs.
func NewPageMapper(physPages uint64, seed uint64) *PageMapper {
	if physPages == 0 {
		panic("mem: need at least one physical page")
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &PageMapper{
		physPages: physPages,
		next:      make(map[uint64]uint64),
		seed:      seed,
	}
}

// mix is a splitmix64-style hash used to place each region's base.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func mapKey(asn uint32, vpage uint64) uint64 {
	return vpage<<16 ^ uint64(asn)
}

// Translate returns the physical address for (asn, vaddr), assigning a
// physical page on first touch: contiguous within each 1MB region, with a
// seeded pseudo-random region base.
func (m *PageMapper) Translate(asn uint32, vaddr uint64) uint64 {
	vpage := PageOf(vaddr)
	k := mapKey(asn, vpage)
	ppage, ok := m.next[k]
	if !ok {
		region := vpage / regionPages
		base := mix(m.seed^mix(uint64(asn)^region<<20)) % m.physPages
		ppage = (base + vpage%regionPages) % m.physPages
		m.next[k] = ppage
	}
	return ppage<<PageShift | (vaddr & (PageSize - 1))
}

// MappedPages returns the number of virtual pages assigned so far.
func (m *PageMapper) MappedPages() int { return len(m.next) }
