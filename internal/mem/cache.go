// Package mem provides the memory-system substrate the simulated Alpha
// machine is built from: set-associative caches, TLBs, a merging write
// buffer, a branch predictor, a virtual-to-physical page mapper, and a sparse
// functional memory. All components are timing models with hit/miss
// accounting; the functional memory holds the architectural bytes.
package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	Size     int // total bytes
	LineSize int // bytes per line (power of two)
	Assoc    int // ways; 1 = direct mapped
}

// Validate checks the configuration for consistency.
func (c CacheConfig) Validate() error {
	switch {
	case c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0:
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	case c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
	case c.Size%(c.LineSize*c.Assoc) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by %d-way sets of %dB lines",
			c.Name, c.Size, c.Assoc, c.LineSize)
	}
	return nil
}

// Cache is a set-associative cache with LRU replacement, indexed by physical
// address. It models only presence (hit/miss), not contents; the functional
// memory holds data.
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	setMask   uint64
	// tags[set*assoc+way]; lru[set*assoc+way] is a recency stamp.
	tags  []uint64
	valid []bool
	lru   []uint64
	tick  uint64

	Hits   uint64
	Misses uint64
}

// NewCache builds a cache; it panics on an invalid configuration (cache
// geometries arrive from hw.Config, which validates before construction).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets not a power of two", cfg.Name, sets))
	}
	c := &Cache{
		cfg:     cfg,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*cfg.Assoc),
		valid:   make([]bool, sets*cfg.Assoc),
		lru:     make([]uint64, sets*cfg.Assoc),
	}
	for shift := uint(0); ; shift++ {
		if 1<<shift == cfg.LineSize {
			c.lineShift = shift
			break
		}
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineOf returns the line address (tag+index bits) containing addr.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineShift }

// Access looks up addr and, on a miss, fills the line (allocate-on-miss,
// LRU victim). It reports whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.cfg.Assoc
	c.tick++
	victim, oldest := base, ^uint64(0)
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.lru[i] = c.tick
			c.Hits++
			return true
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.lru[i] < oldest {
			victim, oldest = i, c.lru[i]
		}
	}
	c.Misses++
	c.tags[victim] = line
	c.valid[victim] = true
	c.lru[victim] = c.tick
	return false
}

// Probe reports whether addr currently hits, without changing any state.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Invalidate removes addr's line if present (used on context switches that
// model cache pollution, and by tests).
func (c *Cache) Invalidate(addr uint64) {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.valid[i] = false
		}
	}
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// Accesses returns the total number of lookups.
func (c *Cache) Accesses() uint64 { return c.Hits + c.Misses }

// MissRate returns misses/accesses, or 0 if no accesses.
func (c *Cache) MissRate() float64 {
	if a := c.Accesses(); a > 0 {
		return float64(c.Misses) / float64(a)
	}
	return 0
}
