package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheDirectMapped(t *testing.T) {
	c := NewCache(CacheConfig{Name: "l1", Size: 256, LineSize: 32, Assoc: 1}) // 8 sets
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) || !c.Access(31) {
		t.Error("same-line access missed")
	}
	if c.Access(32) {
		t.Error("next line hit cold")
	}
	// 0 and 256 conflict in a 256-byte direct-mapped cache.
	c.Access(256)
	if c.Probe(0) {
		t.Error("conflicting line not evicted")
	}
	if c.Hits != 2 {
		t.Errorf("hits = %d, want 2", c.Hits)
	}
	if c.Misses != 3 {
		t.Errorf("misses = %d, want 3", c.Misses)
	}
}

func TestCacheAssociativity(t *testing.T) {
	c := NewCache(CacheConfig{Name: "l1", Size: 512, LineSize: 32, Assoc: 2}) // 8 sets, 2-way
	// Three lines mapping to set 0: 0, 256, 512.
	c.Access(0)
	c.Access(256)
	if !c.Probe(0) || !c.Probe(256) {
		t.Fatal("2-way set should hold both lines")
	}
	c.Access(0) // make line 0 most recent
	c.Access(512)
	if c.Probe(256) {
		t.Error("LRU victim should have been line 256")
	}
	if !c.Probe(0) {
		t.Error("most-recent line evicted")
	}
}

func TestCacheInvalidateAndFlush(t *testing.T) {
	c := NewCache(CacheConfig{Name: "l1", Size: 256, LineSize: 32, Assoc: 1})
	c.Access(64)
	c.Invalidate(64)
	if c.Probe(64) {
		t.Error("invalidate did not remove line")
	}
	c.Access(64)
	c.Flush()
	if c.Probe(64) {
		t.Error("flush did not remove line")
	}
}

func TestCacheMissRate(t *testing.T) {
	c := NewCache(CacheConfig{Name: "l1", Size: 256, LineSize: 32, Assoc: 1})
	if c.MissRate() != 0 {
		t.Error("empty cache should report 0 miss rate")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "x", Size: 0, LineSize: 32, Assoc: 1},
		{Name: "x", Size: 256, LineSize: 33, Assoc: 1},
		{Name: "x", Size: 100, LineSize: 32, Assoc: 1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
	good := CacheConfig{Name: "x", Size: 8192, LineSize: 32, Assoc: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("config %+v: %v", good, err)
	}
}

// Property: a probe immediately after an access always hits.
func TestCacheAccessThenProbe(t *testing.T) {
	c := NewCache(CacheConfig{Name: "p", Size: 4096, LineSize: 64, Assoc: 2})
	f := func(addr uint64) bool {
		c.Access(addr)
		return c.Probe(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBBasic(t *testing.T) {
	tlb := NewTLB(2)
	if tlb.Lookup(1, 10) {
		t.Error("cold lookup hit")
	}
	if !tlb.Lookup(1, 10) {
		t.Error("warm lookup missed")
	}
	tlb.Lookup(1, 11)
	tlb.Lookup(1, 10) // refresh 10
	tlb.Lookup(1, 12) // evicts 11 (LRU)
	if !tlb.Lookup(1, 10) {
		t.Error("recently used entry evicted")
	}
	if tlb.Lookup(1, 11) {
		t.Error("LRU entry survived")
	}
}

func TestTLBASNIsolation(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Lookup(1, 10)
	if tlb.Lookup(2, 10) {
		t.Error("different ASN should miss")
	}
	tlb.FlushASN(1)
	if tlb.Lookup(1, 10) {
		t.Error("flushed ASN entry survived")
	}
	if !tlb.Lookup(2, 10) {
		t.Error("other ASN entry was flushed")
	}
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Error("flush left entries")
	}
}

func TestTLBNeverExceedsCapacity(t *testing.T) {
	tlb := NewTLB(4)
	for vp := uint64(0); vp < 100; vp++ {
		tlb.Lookup(0, vp)
		if tlb.Len() > 4 {
			t.Fatalf("TLB grew to %d entries", tlb.Len())
		}
	}
	if got := tlb.MissRate(); got != 1.0 {
		t.Errorf("all-distinct miss rate = %v", got)
	}
}

func TestWriteBufferMergesSameLine(t *testing.T) {
	wb := NewWriteBuffer(6, 100)
	if stall := wb.Store(1, 0); stall != 0 {
		t.Errorf("first store stalled %d", stall)
	}
	if stall := wb.Store(1, 1); stall != 0 {
		t.Errorf("same-line store stalled %d", stall)
	}
	if wb.Merges != 1 {
		t.Errorf("merges = %d, want 1", wb.Merges)
	}
	if wb.Len(1) != 1 {
		t.Errorf("len = %d, want 1", wb.Len(1))
	}
}

func TestWriteBufferOverflowStalls(t *testing.T) {
	wb := NewWriteBuffer(2, 100)
	wb.Store(1, 0) // retires at 100
	wb.Store(2, 0) // retires at 200
	stall := wb.Store(3, 0)
	if stall != 100 {
		t.Errorf("overflow stall = %d, want 100", stall)
	}
	if wb.Overflows != 1 {
		t.Errorf("overflows = %d", wb.Overflows)
	}
	// After stalling to t=100, entry 1 retired; buffer holds 2 and 3.
	if wb.Len(100) != 2 {
		t.Errorf("len(100) = %d, want 2", wb.Len(100))
	}
}

func TestWriteBufferDrainsOverTime(t *testing.T) {
	wb := NewWriteBuffer(6, 50)
	for i := uint64(0); i < 6; i++ {
		wb.Store(i, 0)
	}
	if wb.Len(0) != 6 {
		t.Fatalf("len = %d", wb.Len(0))
	}
	if wb.Len(125) != 4 { // entries retire at 50, 100, 150...
		t.Errorf("len(125) = %d, want 4", wb.Len(125))
	}
	if wb.Len(301) != 0 {
		t.Errorf("len(301) = %d, want 0", wb.Len(301))
	}
	// A store arriving late incurs no stall.
	if stall := wb.Store(9, 1000); stall != 0 {
		t.Errorf("late store stalled %d", stall)
	}
}

func TestWriteBufferDrainAll(t *testing.T) {
	wb := NewWriteBuffer(6, 50)
	wb.Store(1, 0)
	wb.Store(2, 0)
	stall := wb.DrainAll(10)
	if stall != 90 { // last retires at 100
		t.Errorf("drain stall = %d, want 90", stall)
	}
	if wb.Len(10) != 0 {
		t.Error("drain left entries")
	}
	if wb.DrainAll(10) != 0 {
		t.Error("empty drain stalled")
	}
}

// Property: a saturated stream of distinct-line stores stalls at the drain
// rate: N stores cost at least (N - capacity) * drainLatency total stall.
func TestWriteBufferSaturationProperty(t *testing.T) {
	const cap, lat, n = 6, 50, 100
	wb := NewWriteBuffer(cap, lat)
	now := int64(0)
	var total int64
	for i := 0; i < n; i++ {
		s := wb.Store(uint64(i), now)
		total += s
		now += s + 1 // 1 unit of issue time per store
	}
	min := int64((n - cap) * lat * 9 / 10)
	if total < min {
		t.Errorf("saturation stall = %d, want >= %d", total, min)
	}
}

func TestPredictorLearnsLoop(t *testing.T) {
	p := NewPredictor(16)
	pc := uint64(0x1000)
	// A loop branch taken 99 times then not taken; after warmup the
	// predictor should be right on every taken iteration.
	var wrongTaken int
	for i := 0; i < 100; i++ {
		taken := i < 99
		if p.Update(pc, taken) && taken && i > 2 {
			wrongTaken++
		}
	}
	if wrongTaken != 0 {
		t.Errorf("mispredicted %d warm taken branches", wrongTaken)
	}
	if p.Mispredicts == 0 {
		t.Error("loop exit should mispredict at least once")
	}
}

func TestPredictorAlternatingWorstCase(t *testing.T) {
	p := NewPredictor(16)
	pc := uint64(0x2000)
	for i := 0; i < 100; i++ {
		p.Update(pc, i%2 == 0)
	}
	if rate := p.MispredictRate(); rate < 0.4 {
		t.Errorf("alternating pattern rate = %v, want high", rate)
	}
}

func TestPredictorIndexSeparation(t *testing.T) {
	p := NewPredictor(1024)
	// Train pc A taken; pc B (different index) should stay not-taken.
	a, b := uint64(0x1000), uint64(0x1004)
	for i := 0; i < 4; i++ {
		p.Update(a, true)
	}
	if !p.Predict(a) {
		t.Error("trained branch predicts not-taken")
	}
	if p.Predict(b) {
		t.Error("untouched branch predicts taken")
	}
}

func TestPageMapperDeterministicPerSeed(t *testing.T) {
	m1 := NewPageMapper(1024, 42)
	m2 := NewPageMapper(1024, 42)
	m3 := NewPageMapper(1024, 43)
	var differ bool
	for va := uint64(0); va < 100*PageSize; va += PageSize {
		p1 := m1.Translate(1, va)
		p2 := m2.Translate(1, va)
		p3 := m3.Translate(1, va)
		if p1 != p2 {
			t.Fatalf("same seed diverged at %#x", va)
		}
		if p1 != p3 {
			differ = true
		}
	}
	if !differ {
		t.Error("different seeds produced identical mappings")
	}
}

func TestPageMapperStableWithinRun(t *testing.T) {
	m := NewPageMapper(64, 7)
	a := m.Translate(1, 0x5000)
	b := m.Translate(1, 0x5008)
	if PageOf(a) != PageOf(b) {
		t.Error("same virtual page translated to different physical pages")
	}
	if a2 := m.Translate(1, 0x5000); a2 != a {
		t.Error("translation not stable")
	}
	if m.MappedPages() != 1 {
		t.Errorf("mapped pages = %d", m.MappedPages())
	}
}

func TestPageMapperOffsetPreserved(t *testing.T) {
	m := NewPageMapper(64, 7)
	f := func(va uint64) bool {
		pa := m.Translate(3, va)
		return pa&(PageSize-1) == va&(PageSize-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseRoundTrip(t *testing.T) {
	s := NewSparse()
	s.Store(0x1000, 8, 0xdeadbeefcafe)
	if got := s.Load(0x1000, 8); got != 0xdeadbeefcafe {
		t.Errorf("load = %#x", got)
	}
	if got := s.Load(0x1000, 4); got != 0xbeefcafe {
		t.Errorf("partial load = %#x", got)
	}
	if got := s.Load(0x9999999, 8); got != 0 {
		t.Errorf("unmapped load = %#x", got)
	}
}

func TestSparseCrossPageAccess(t *testing.T) {
	s := NewSparse()
	addr := uint64(PageSize - 4)
	s.Store(addr, 8, 0x1122334455667788)
	if got := s.Load(addr, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page load = %#x", got)
	}
	if s.Pages() != 2 {
		t.Errorf("pages = %d, want 2", s.Pages())
	}
}

func TestSparseBytes(t *testing.T) {
	s := NewSparse()
	s.WriteBytes(100, []byte("hello"))
	if got := string(s.ReadBytes(100, 5)); got != "hello" {
		t.Errorf("bytes = %q", got)
	}
}

// Property: Store then Load round-trips for any address and value.
func TestSparseProperty(t *testing.T) {
	s := NewSparse()
	f := func(addr uint64, val uint64) bool {
		addr &= 1<<40 - 1 // keep page count bounded
		s.Store(addr, 8, val)
		return s.Load(addr, 8) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
