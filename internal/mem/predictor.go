package mem

// Predictor is a table of 2-bit saturating counters indexed by instruction
// address, the branch predictor of the simulated machine.
type Predictor struct {
	counters []uint8
	mask     uint64

	Predictions uint64
	Mispredicts uint64
}

// NewPredictor builds a predictor with entries 2-bit counters (entries must
// be a power of two). Counters start weakly not-taken.
func NewPredictor(entries int) *Predictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("mem: predictor entries must be a positive power of two")
	}
	p := &Predictor{counters: make([]uint8, entries), mask: uint64(entries - 1)}
	for i := range p.counters {
		p.counters[i] = 1 // weakly not-taken
	}
	return p
}

func (p *Predictor) index(pc uint64) int {
	return int((pc >> 2) & p.mask)
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	return p.counters[p.index(pc)] >= 2
}

// Update records the actual direction and reports whether the prediction was
// wrong (a mispredict).
func (p *Predictor) Update(pc uint64, taken bool) (mispredicted bool) {
	p.Predictions++
	i := p.index(pc)
	predicted := p.counters[i] >= 2
	if taken && p.counters[i] < 3 {
		p.counters[i]++
	} else if !taken && p.counters[i] > 0 {
		p.counters[i]--
	}
	if predicted != taken {
		p.Mispredicts++
		return true
	}
	return false
}

// MispredictRate returns mispredicts/predictions, or 0 if none.
func (p *Predictor) MispredictRate() float64 {
	if p.Predictions == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Predictions)
}
