package mem

// PageShift is the machine's page size: 8 KB, as on the Alpha 21164.
const PageShift = 13

// PageSize is the page size in bytes.
const PageSize = 1 << PageShift

// PageOf returns the virtual or physical page number of addr.
func PageOf(addr uint64) uint64 { return addr >> PageShift }

// TLB is a fully associative translation buffer with LRU replacement,
// modeling the 21164's ITB/DTB. Entries are (ASN, virtual page) pairs so
// multiple address spaces can coexist without flushing.
type TLB struct {
	capacity int
	entries  map[tlbKey]uint64 // -> recency stamp
	tick     uint64

	Hits   uint64
	Misses uint64
}

type tlbKey struct {
	asn   uint32
	vpage uint64
}

// NewTLB builds a TLB with the given number of entries.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		panic("mem: TLB capacity must be positive")
	}
	return &TLB{capacity: capacity, entries: make(map[tlbKey]uint64, capacity)}
}

// Lookup checks for (asn, vpage) and fills the entry on a miss, evicting the
// least recently used translation if full. It reports whether it hit.
func (t *TLB) Lookup(asn uint32, vpage uint64) bool {
	t.tick++
	k := tlbKey{asn, vpage}
	if _, ok := t.entries[k]; ok {
		t.entries[k] = t.tick
		t.Hits++
		return true
	}
	t.Misses++
	if len(t.entries) >= t.capacity {
		var victim tlbKey
		oldest := ^uint64(0)
		for key, stamp := range t.entries {
			if stamp < oldest {
				victim, oldest = key, stamp
			}
		}
		delete(t.entries, victim)
	}
	t.entries[k] = t.tick
	return false
}

// Probe reports whether (asn, vpage) is resident, without filling or
// touching recency or statistics.
func (t *TLB) Probe(asn uint32, vpage uint64) bool {
	_, ok := t.entries[tlbKey{asn, vpage}]
	return ok
}

// Flush drops all translations (e.g. on a full TLB invalidate).
func (t *TLB) Flush() {
	t.entries = make(map[tlbKey]uint64, t.capacity)
}

// FlushASN drops translations belonging to one address space.
func (t *TLB) FlushASN(asn uint32) {
	for k := range t.entries {
		if k.asn == asn {
			delete(t.entries, k)
		}
	}
}

// Len returns the number of resident translations.
func (t *TLB) Len() int { return len(t.entries) }

// Capacity returns the TLB's entry count.
func (t *TLB) Capacity() int { return t.capacity }

// MissRate returns misses/lookups, or 0 if none.
func (t *TLB) MissRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Misses) / float64(total)
}
