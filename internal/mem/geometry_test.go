package mem

// Geometry backfill: before hw.Config, every simulated machine used the
// 21164's fixed direct-mapped 32-byte-line caches and 48/64-entry TLBs, so
// associative victim choice, set indexing at other line sizes, and
// off-default TLB capacities had no coverage beyond the basics. The what-if
// grid builds those machines for real; these tests pin the behavior it
// relies on.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refCache is an obviously-correct reference model of a set-associative
// LRU cache: per-set slices ordered most-recent-first.
type refCache struct {
	lineShift uint
	sets      uint64
	assoc     int
	ways      map[uint64][]uint64 // set -> lines, most recent first
}

func newRefCache(cfg CacheConfig) *refCache {
	r := &refCache{assoc: cfg.Assoc, ways: map[uint64][]uint64{}}
	for 1<<r.lineShift != cfg.LineSize {
		r.lineShift++
	}
	r.sets = uint64(cfg.Size / (cfg.LineSize * cfg.Assoc))
	return r
}

func (r *refCache) access(addr uint64) bool {
	line := addr >> r.lineShift
	set := line % r.sets
	ways := r.ways[set]
	for i, l := range ways {
		if l == line { // hit: move to front
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true
		}
	}
	ways = append([]uint64{line}, ways...)
	if len(ways) > r.assoc { // evict LRU (the back)
		ways = ways[:r.assoc]
	}
	r.ways[set] = ways
	return false
}

// TestCacheMatchesReferenceLRU drives Cache and the reference model with
// the same random access streams across several associative geometries
// (including non-default line sizes) and demands hit-for-hit agreement —
// in particular that the victim of every eviction is the true LRU way.
func TestCacheMatchesReferenceLRU(t *testing.T) {
	geoms := []CacheConfig{
		{Name: "2way", Size: 1 << 10, LineSize: 32, Assoc: 2},
		{Name: "4way64", Size: 4 << 10, LineSize: 64, Assoc: 4},
		{Name: "8way16", Size: 2 << 10, LineSize: 16, Assoc: 8},
		{Name: "full", Size: 512, LineSize: 64, Assoc: 8}, // single set: fully associative
	}
	for _, cfg := range geoms {
		t.Run(cfg.Name, func(t *testing.T) {
			c := NewCache(cfg)
			ref := newRefCache(cfg)
			rng := rand.New(rand.NewSource(42))
			// Address range chosen to generate plenty of set conflicts.
			span := uint64(cfg.Size * 4)
			for i := 0; i < 20000; i++ {
				addr := rng.Uint64() % span
				got, want := c.Access(addr), ref.access(addr)
				if got != want {
					t.Fatalf("access %d (addr %#x): cache says hit=%v, reference says %v",
						i, addr, got, want)
				}
			}
			if c.Misses == 0 || c.Hits == 0 {
				t.Fatalf("degenerate stream: hits=%d misses=%d", c.Hits, c.Misses)
			}
		})
	}
}

// TestCacheSetIndexingAtNonDefaultLineSizes checks the index arithmetic
// directly: with line size L and S sets, addr and addr+S*L share a set
// (and conflict in a direct-mapped cache) while addr+L lands in the next
// set and must not interfere.
func TestCacheSetIndexingAtNonDefaultLineSizes(t *testing.T) {
	for _, lineSize := range []int{16, 64, 128} {
		c := NewCache(CacheConfig{Name: "l1", Size: 16 * lineSize, LineSize: lineSize, Assoc: 1})
		sets := uint64(16)
		stride := sets * uint64(lineSize)
		c.Access(0)
		c.Access(uint64(lineSize)) // neighboring set: no conflict
		if !c.Probe(0) {
			t.Errorf("line %d: neighboring set evicted set 0", lineSize)
		}
		c.Access(stride) // same set: conflict
		if c.Probe(0) {
			t.Errorf("line %d: same-set line at +%d did not evict", lineSize, stride)
		}
		if !c.Probe(uint64(lineSize)) {
			t.Errorf("line %d: conflict in set 0 disturbed set 1", lineSize)
		}
		// Last byte of a line belongs to it; first byte of the next doesn't.
		c2 := NewCache(CacheConfig{Name: "b", Size: 16 * lineSize, LineSize: lineSize, Assoc: 1})
		c2.Access(uint64(lineSize - 1))
		if !c2.Probe(0) {
			t.Errorf("line %d: byte %d not in line 0", lineSize, lineSize-1)
		}
		if c2.Probe(uint64(lineSize)) {
			t.Errorf("line %d: byte %d leaked into the next line", lineSize, lineSize)
		}
	}
}

// TestCacheLRUVictimAcrossWays pins the victim choice in a 4-way set: the
// least recently *used* way goes, not the oldest-filled.
func TestCacheLRUVictimAcrossWays(t *testing.T) {
	// 4 ways, 4 sets of 32B lines.
	c := NewCache(CacheConfig{Name: "l1", Size: 512, LineSize: 32, Assoc: 4})
	stride := uint64(4 * 32) // same-set stride
	for i := uint64(0); i < 4; i++ {
		c.Access(i * stride) // fill ways with lines 0,1,2,3 of set 0
	}
	// Touch everything except line 1 — line 1 becomes LRU despite not
	// being the oldest fill.
	c.Access(0 * stride)
	c.Access(2 * stride)
	c.Access(3 * stride)
	c.Access(4 * stride) // fifth line: evicts line 1
	if c.Probe(1 * stride) {
		t.Error("LRU way survived eviction")
	}
	for _, i := range []uint64{0, 2, 3, 4} {
		if !c.Probe(i * stride) {
			t.Errorf("recently used line %d evicted", i)
		}
	}
}

// TestTLBNonDefaultCapacities exercises the TLB away from the 21164's
// 48/64 entries, as the itb-half/dtb-half grid points configure it.
func TestTLBNonDefaultCapacities(t *testing.T) {
	for _, capacity := range []int{1, 3, 24, 128} {
		tlb := NewTLB(capacity)
		if tlb.Capacity() != capacity {
			t.Fatalf("capacity = %d, want %d", tlb.Capacity(), capacity)
		}
		for p := 0; p < capacity; p++ {
			if tlb.Lookup(1, uint64(p)) {
				t.Fatalf("cap %d: cold fill of page %d hit", capacity, p)
			}
		}
		if tlb.Len() != capacity {
			t.Fatalf("cap %d: %d resident after fill", capacity, tlb.Len())
		}
		// Refresh page 0 so page 1 (or page 0 itself at capacity 1) is LRU.
		tlb.Lookup(1, 0)
		tlb.Lookup(1, uint64(capacity)) // one past capacity: evicts the LRU
		if tlb.Len() != capacity {
			t.Errorf("cap %d: %d resident after eviction", capacity, tlb.Len())
		}
		victim := uint64(1)
		if capacity == 1 {
			victim = 0
		}
		if tlb.Probe(1, victim) {
			t.Errorf("cap %d: LRU page %d survived", capacity, victim)
		}
		if capacity > 1 && !tlb.Probe(1, 0) {
			t.Errorf("cap %d: recently used page 0 evicted", capacity)
		}
	}
}

// TestWriteBufferZeroDrain: drainLatency 0 is the ideal write path of the
// wb-zero grid point — entries retire instantly, so the buffer never
// fills and no store ever stalls, even a long burst to distinct lines.
func TestWriteBufferZeroDrain(t *testing.T) {
	wb := NewWriteBuffer(6, 0)
	for i := uint64(0); i < 1000; i++ {
		if stall := wb.Store(i, 5); stall != 0 {
			t.Fatalf("store %d stalled %d with zero drain latency", i, stall)
		}
	}
	if wb.Overflows != 0 {
		t.Errorf("overflows = %d, want 0", wb.Overflows)
	}
	if wb.Len(5) != 0 {
		t.Errorf("len = %d, want 0 (instant retirement)", wb.Len(5))
	}
	if stall := wb.DrainAll(5); stall != 0 {
		t.Errorf("barrier stalled %d on an empty buffer", stall)
	}
	// Zero capacity is still rejected.
	defer func() {
		if recover() == nil {
			t.Error("NewWriteBuffer accepted zero capacity")
		}
	}()
	NewWriteBuffer(0, 0)
}

// Property: the model cache and reference agree on arbitrary quick-check
// streams too (shorter than the seeded soak above, but with adversarial
// value distribution from testing/quick).
func TestCacheReferenceQuick(t *testing.T) {
	cfg := CacheConfig{Name: "q", Size: 1 << 10, LineSize: 64, Assoc: 2}
	c := NewCache(cfg)
	ref := newRefCache(cfg)
	f := func(addr uint64) bool {
		return c.Access(addr) == ref.access(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
