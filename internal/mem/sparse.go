package mem

// Sparse is a page-granular sparse byte memory implementing the functional
// (architectural) data store of one address space. It satisfies
// alpha.Memory. Unmapped bytes read as zero.
type Sparse struct {
	pages map[uint64]*[PageSize]byte
}

// NewSparse returns an empty sparse memory.
func NewSparse() *Sparse {
	return &Sparse{pages: make(map[uint64]*[PageSize]byte)}
}

func (s *Sparse) page(vpage uint64, create bool) *[PageSize]byte {
	p, ok := s.pages[vpage]
	if !ok && create {
		p = new([PageSize]byte)
		s.pages[vpage] = p
	}
	return p
}

// Load reads size bytes at addr, little-endian. Accesses contained in one
// page (every aligned access) take a single-map-lookup fast path; only
// page-straddling accesses fall back to the byte loop.
func (s *Sparse) Load(addr uint64, size int) uint64 {
	if off := addr & (PageSize - 1); off+uint64(size) <= PageSize {
		p := s.pages[PageOf(addr)]
		if p == nil {
			return 0
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[off+uint64(i)])
		}
		return v
	}
	var v uint64
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		if p := s.page(PageOf(a), false); p != nil {
			v |= uint64(p[a&(PageSize-1)]) << (8 * i)
		}
	}
	return v
}

// Store writes the low size bytes of val at addr, little-endian. Like Load,
// within-page accesses resolve the page once.
func (s *Sparse) Store(addr uint64, size int, val uint64) {
	if off := addr & (PageSize - 1); off+uint64(size) <= PageSize {
		p := s.page(PageOf(addr), true)
		for i := 0; i < size; i++ {
			p[off+uint64(i)] = byte(val >> (8 * i))
		}
		return
	}
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		p := s.page(PageOf(a), true)
		p[a&(PageSize-1)] = byte(val >> (8 * i))
	}
}

// WriteBytes copies b into memory at addr (loader convenience).
func (s *Sparse) WriteBytes(addr uint64, b []byte) {
	for i, c := range b {
		a := addr + uint64(i)
		s.page(PageOf(a), true)[a&(PageSize-1)] = c
	}
}

// ReadBytes copies n bytes starting at addr.
func (s *Sparse) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		a := addr + uint64(i)
		if p := s.page(PageOf(a), false); p != nil {
			out[i] = p[a&(PageSize-1)]
		}
	}
	return out
}

// Pages returns the number of resident pages.
func (s *Sparse) Pages() int { return len(s.pages) }
