package mem

// WriteBuffer models the 21164's six-entry merging write buffer. Stores enter
// the buffer and retire to memory one at a time; a store that arrives when
// the buffer is full stalls until the oldest entry retires. Times are in the
// caller's clock units (the simulator uses half-cycles).
//
// This is the component responsible for the long stq stalls in the paper's
// Figure 2 copy loop ("w = write-buffer overflow").
type WriteBuffer struct {
	capacity     int
	drainLatency int64 // time to retire one entry to memory

	// entries holds the retire-completion time of each buffered line, in
	// FIFO order, alongside the line address for merging.
	lines  []uint64
	retire []int64

	Stores    uint64
	Merges    uint64
	Overflows uint64 // stores that stalled on a full buffer
	StallTime int64  // total stall time charged
}

// NewWriteBuffer builds a write buffer with capacity entries, each taking
// drainLatency time units to retire to memory. A zero drainLatency models an
// ideal write path — entries retire the moment they arrive, so the buffer
// never fills and stores never stall (the what-if engine's "wb-zero" point).
func NewWriteBuffer(capacity int, drainLatency int64) *WriteBuffer {
	if capacity <= 0 || drainLatency < 0 {
		panic("mem: write buffer needs positive capacity and non-negative drain latency")
	}
	return &WriteBuffer{capacity: capacity, drainLatency: drainLatency}
}

// drainTo retires every entry whose completion time has passed.
func (w *WriteBuffer) drainTo(now int64) {
	i := 0
	for i < len(w.retire) && w.retire[i] <= now {
		i++
	}
	w.lines = w.lines[i:]
	w.retire = w.retire[i:]
}

// Store records a store to the line containing addr at time now and returns
// the stall the storing instruction incurs (0 when the buffer accepts it
// immediately).
func (w *WriteBuffer) Store(lineAddr uint64, now int64) (stall int64) {
	w.Stores++
	w.drainTo(now)

	// Merge into an existing entry for the same line.
	for _, l := range w.lines {
		if l == lineAddr {
			w.Merges++
			return 0
		}
	}

	if len(w.lines) >= w.capacity {
		// Stall until the oldest entry retires.
		w.Overflows++
		stall = w.retire[0] - now
		if stall < 0 {
			stall = 0
		}
		w.StallTime += stall
		now = w.retire[0]
		w.drainTo(now)
	}

	// Retirement is serialized: this entry completes drainLatency after the
	// later of now and the previous entry's completion.
	start := now
	if n := len(w.retire); n > 0 && w.retire[n-1] > start {
		start = w.retire[n-1]
	}
	w.lines = append(w.lines, lineAddr)
	w.retire = append(w.retire, start+w.drainLatency)
	return stall
}

// DrainAll waits for every buffered store to retire (an MB instruction) and
// returns the stall incurred at time now.
func (w *WriteBuffer) DrainAll(now int64) (stall int64) {
	w.drainTo(now)
	if n := len(w.retire); n > 0 {
		stall = w.retire[n-1] - now
		if stall < 0 {
			stall = 0
		}
		w.lines = w.lines[:0]
		w.retire = w.retire[:0]
	}
	w.StallTime += stall
	return stall
}

// Full reports whether a store to lineAddr at time now would stall (buffer
// full and no merge possible). It does not modify the buffer beyond draining
// retired entries.
func (w *WriteBuffer) Full(lineAddr uint64, now int64) bool {
	w.drainTo(now)
	for _, l := range w.lines {
		if l == lineAddr {
			return false
		}
	}
	return len(w.lines) >= w.capacity
}

// Len returns the number of buffered entries at time now.
func (w *WriteBuffer) Len(now int64) int {
	w.drainTo(now)
	return len(w.lines)
}

// Capacity returns the buffer's entry count.
func (w *WriteBuffer) Capacity() int { return w.capacity }
