// Package image models executable images: the unit the DCPI daemon
// attributes samples to. An image has a path, code, and a symbol table of
// procedures. Samples are stored per (image, offset); tools resolve offsets
// back to procedures and instructions.
package image

import (
	"fmt"
	"sort"

	"dcpi/internal/alpha"
)

// Kind distinguishes how an image is loaded, mirroring the paper's three
// loadmap sources (§4.3.2).
type Kind uint8

const (
	// KindExecutable is a statically loaded main program (kernel exec path).
	KindExecutable Kind = iota
	// KindShared is a dynamically loaded shared library (/sbin/loader).
	KindShared
	// KindKernel is the kernel image (vmunix), mapped in every context.
	KindKernel
)

func (k Kind) String() string {
	switch k {
	case KindExecutable:
		return "executable"
	case KindShared:
		return "shared"
	case KindKernel:
		return "kernel"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Image is one executable image. Offsets are byte offsets from the image
// start; instruction i lives at offset i*alpha.InstBytes.
type Image struct {
	Name string // short name, e.g. "libm.so"
	Path string // filesystem path, e.g. "/usr/shlib/X11/libm.so"
	Kind Kind
	Code []alpha.Inst
	// Symbols are the image's procedures, sorted by offset and
	// non-overlapping. Every instruction belongs to at most one procedure.
	Symbols []alpha.Symbol

	// Lines holds per-instruction source line numbers when the image was
	// built with them (dcpicalc displays these, like the paper's tools do
	// for images with line-number information); nil otherwise.
	Lines []int

	// ID is a unique identifier assigned by the loader when the image is
	// registered, used in loadmap notifications (paper §4.3.2).
	ID uint32

	// meta is the pre-decoded static metadata table, one entry per
	// instruction, built once at load time so the simulator's per-cycle
	// loop indexes a flat array instead of re-decoding operands.
	meta []alpha.InstMeta
}

// New builds an image from assembled code. Symbols must already be sorted by
// offset (the assembler guarantees this).
func New(name, path string, kind Kind, asm *alpha.Assembly) *Image {
	return &Image{
		Name: name, Path: path, Kind: kind,
		Code: asm.Code, Symbols: asm.Symbols, Lines: asm.Lines,
		meta: alpha.DecodeMeta(asm.Code),
	}
}

// MetaTable returns the image's pre-decoded instruction metadata, indexed
// like Code. Images built by New carry the table from construction; for a
// hand-assembled Image literal the first call builds it (not safe to race
// with concurrent first calls — construct via New for shared images).
func (im *Image) MetaTable() []alpha.InstMeta {
	if im.meta == nil && len(im.Code) > 0 {
		im.meta = alpha.DecodeMeta(im.Code)
	}
	return im.meta
}

// LineOf returns the source line of the instruction at byte offset off, or
// 0 when the image has no line information.
func (im *Image) LineOf(off uint64) int {
	idx := int(off / alpha.InstBytes)
	if im.Lines == nil || idx >= len(im.Lines) {
		return 0
	}
	return im.Lines[idx]
}

// Size returns the image's code size in bytes.
func (im *Image) Size() uint64 {
	return uint64(len(im.Code)) * alpha.InstBytes
}

// InstAt returns the instruction at byte offset off.
func (im *Image) InstAt(off uint64) (alpha.Inst, bool) {
	idx := off / alpha.InstBytes
	if off%alpha.InstBytes != 0 || idx >= uint64(len(im.Code)) {
		return alpha.Inst{}, false
	}
	return im.Code[idx], true
}

// SymbolAt returns the procedure containing byte offset off.
func (im *Image) SymbolAt(off uint64) (alpha.Symbol, bool) {
	i := sort.Search(len(im.Symbols), func(i int) bool {
		return im.Symbols[i].Offset > off
	})
	if i == 0 {
		return alpha.Symbol{}, false
	}
	s := im.Symbols[i-1]
	if off >= s.Offset+s.Size {
		return alpha.Symbol{}, false
	}
	return s, true
}

// Symbol looks up a procedure by name.
func (im *Image) Symbol(name string) (alpha.Symbol, bool) {
	for _, s := range im.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return alpha.Symbol{}, false
}

// ProcCode returns the instructions of the named procedure and the byte
// offset of its first instruction.
func (im *Image) ProcCode(name string) ([]alpha.Inst, uint64, error) {
	s, ok := im.Symbol(name)
	if !ok {
		return nil, 0, fmt.Errorf("image %s: no procedure %q", im.Name, name)
	}
	lo := s.Offset / alpha.InstBytes
	hi := (s.Offset + s.Size) / alpha.InstBytes
	return im.Code[lo:hi], s.Offset, nil
}

// Validate checks structural invariants: sorted, non-overlapping symbols that
// stay within the code, and instruction-aligned boundaries.
func (im *Image) Validate() error {
	var prevEnd uint64
	for i, s := range im.Symbols {
		if s.Offset%alpha.InstBytes != 0 || s.Size%alpha.InstBytes != 0 {
			return fmt.Errorf("image %s: symbol %s not instruction aligned", im.Name, s.Name)
		}
		if s.Offset < prevEnd {
			return fmt.Errorf("image %s: symbol %s overlaps predecessor", im.Name, s.Name)
		}
		if s.Offset+s.Size > im.Size() {
			return fmt.Errorf("image %s: symbol %s extends past code end", im.Name, s.Name)
		}
		if i > 0 && s.Offset < im.Symbols[i-1].Offset {
			return fmt.Errorf("image %s: symbols not sorted at %s", im.Name, s.Name)
		}
		prevEnd = s.Offset + s.Size
	}
	return nil
}
