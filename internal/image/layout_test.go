package image

import (
	"strings"
	"testing"

	"dcpi/internal/alpha"
)

// layoutImage: three procedures, the middle one with an internal branch so
// displacement preservation is observable.
func layoutImage(t *testing.T) *Image {
	t.Helper()
	asm := alpha.MustAssemble(`
entry:
	nop
	ret (ra)
mid:
	beq t0, .done
	addq t1, 1, t1
.done:
	ret (ra)
tail:
	subq t1, 1, t1
	ret (ra)
`)
	im := New("lay.so", "/usr/shlib/lay.so", KindShared, asm)
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	return im
}

func fullLayout(im *Image, order ...string) Layout {
	lay := Layout{Path: im.Path}
	for _, n := range order {
		lay.Procs = append(lay.Procs, ProcLayout{Name: n})
	}
	return lay
}

func TestWithLayoutReorders(t *testing.T) {
	im := layoutImage(t)
	out, err := im.WithLayout(fullLayout(im, "entry", "tail", "mid"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Code) != len(im.Code) {
		t.Fatalf("code size changed: %d -> %d", len(im.Code), len(out.Code))
	}
	// entry stays at 0; tail now precedes mid.
	se, _ := out.Symbol("entry")
	st, _ := out.Symbol("tail")
	sm, _ := out.Symbol("mid")
	if se.Offset != 0 || st.Offset >= sm.Offset {
		t.Errorf("order wrong: entry=%d tail=%d mid=%d", se.Offset, st.Offset, sm.Offset)
	}
	// mid's internal branch still reaches its own .done.
	code, _, err := out.ProcCode("mid")
	if err != nil {
		t.Fatal(err)
	}
	if code[0].Op != alpha.OpBEQ || code[0].Disp != 1 {
		t.Errorf("mid's branch disturbed: %+v", code[0])
	}
	if err := out.Validate(); err != nil {
		t.Error(err)
	}
	// The original image is untouched.
	if s, _ := im.Symbol("mid"); s.Offset != 2*alpha.InstBytes {
		t.Error("receiver was modified")
	}
}

func TestWithLayoutReplacesBody(t *testing.T) {
	im := layoutImage(t)
	// Replace tail with a longer body; following offsets must shift.
	body := []alpha.Inst{
		{Op: alpha.OpSUBQ, Ra: alpha.RegT1, UseLit: true, Lit: 1, Rc: alpha.RegT1},
		{Op: alpha.OpNOP},
		{Op: alpha.OpRET, Ra: alpha.RegZero, Rb: alpha.RegRA},
	}
	lay := fullLayout(im, "entry", "tail", "mid")
	lay.Procs[1].Code = body
	out, err := im.WithLayout(lay)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Code) != len(im.Code)+1 {
		t.Fatalf("code size = %d, want %d", len(out.Code), len(im.Code)+1)
	}
	st, _ := out.Symbol("tail")
	if st.Size != uint64(len(body))*alpha.InstBytes {
		t.Errorf("tail size = %d", st.Size)
	}
	sm, _ := out.Symbol("mid")
	if sm.Offset != st.Offset+st.Size {
		t.Errorf("mid not contiguous after tail: %d vs %d", sm.Offset, st.Offset+st.Size)
	}
}

func TestWithLayoutCarriesLines(t *testing.T) {
	im := layoutImage(t)
	out, err := im.WithLayout(fullLayout(im, "entry", "tail", "mid"))
	if err != nil {
		t.Fatal(err)
	}
	// An unmodified procedure keeps its source lines at its new offsets.
	so, _ := im.Symbol("tail")
	sn, _ := out.Symbol("tail")
	if got, want := out.LineOf(sn.Offset), im.LineOf(so.Offset); got != want {
		t.Errorf("tail line = %d, want %d", got, want)
	}
	// A replaced body has no line info.
	lay := fullLayout(im, "entry", "mid", "tail")
	lay.Procs[2].Code = []alpha.Inst{{Op: alpha.OpRET, Ra: alpha.RegZero, Rb: alpha.RegRA}}
	out2, err := im.WithLayout(lay)
	if err != nil {
		t.Fatal(err)
	}
	sr, _ := out2.Symbol("tail")
	if got := out2.LineOf(sr.Offset); got != 0 {
		t.Errorf("replaced body has line %d, want 0", got)
	}
}

func TestWithLayoutRejectsBadLayouts(t *testing.T) {
	im := layoutImage(t)
	cases := []struct {
		name string
		lay  Layout
		want string
	}{
		{"wrong path", Layout{Path: "/other.so", Procs: fullLayout(im, "entry", "mid", "tail").Procs}, "targets"},
		{"missing proc", fullLayout(im, "entry", "mid"), "lists 2"},
		{"duplicate", fullLayout(im, "entry", "mid", "mid"), "twice"},
		{"unknown proc", fullLayout(im, "entry", "mid", "nope"), "no procedure"},
		{"entry not first", fullLayout(im, "mid", "entry", "tail"), "must stay first"},
	}
	for _, tc := range cases {
		if _, err := im.WithLayout(tc.lay); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestWithLayoutRejectsCrossProcBranch(t *testing.T) {
	// A bsr from one procedure into another would be silently retargeted by
	// any relocation; WithLayout must refuse.
	asm := alpha.MustAssemble(`
main:
	bsr ra, helper
	ret (ra)
helper:
	ret (ra)
`)
	im := New("x.so", "/x.so", KindShared, asm)
	_, err := im.WithLayout(fullLayout(im, "main", "helper"))
	if err == nil || !strings.Contains(err.Error(), "outside the procedure") {
		t.Errorf("cross-procedure bsr accepted: %v", err)
	}
}

func TestLayoutDigestStable(t *testing.T) {
	im := layoutImage(t)
	a := fullLayout(im, "entry", "mid", "tail")
	b := fullLayout(im, "entry", "mid", "tail")
	if a.Digest() != b.Digest() {
		t.Error("equal layouts digest differently")
	}
	c := fullLayout(im, "entry", "tail", "mid")
	if a.Digest() == c.Digest() {
		t.Error("different orders digest equal")
	}
	d := fullLayout(im, "entry", "mid", "tail")
	d.Procs[1].Code = []alpha.Inst{{Op: alpha.OpRET, Ra: alpha.RegZero, Rb: alpha.RegRA}}
	if a.Digest() == d.Digest() {
		t.Error("replaced body digests equal to original")
	}
	// Set digest is order-independent over paths.
	l2 := Layout{Path: "/zz.so", Procs: []ProcLayout{{Name: "e"}}}
	if LayoutsDigest([]Layout{a, l2}) != LayoutsDigest([]Layout{l2, a}) {
		t.Error("LayoutsDigest depends on slice order")
	}
	if LayoutsDigest(nil) != "" {
		t.Error("empty rewrite set has a digest")
	}
}
