package image

// Whole-image re-layout: the rewritten-image half of the §7 continuous-
// optimization loop. A Layout is an absolute description of a rewritten
// image — a complete procedure order, each procedure carrying either its
// original body or a replacement (e.g. from optimize.ReorderProcedure) —
// and WithLayout materializes it as a new Image. Because the layout is
// absolute (it names every procedure and pins every body), plans derived
// from an already-rewritten image compose trivially: applying the new plan
// to the original image reproduces the iterated result.
//
// Safety: procedures move relative to each other, so the rewrite is only
// sound when no instruction transfers control PC-relatively across a
// procedure boundary (a bsr or long branch into another procedure would
// silently retarget). Cross-procedure control flow through the PLT
// (ldq pv, 8*i(gp); jsr ra, (pv)) is safe: the addresses are resolved from
// the symbol table after the rewritten image is registered.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"dcpi/internal/alpha"
)

// ProcLayout places one procedure in a rewritten image.
type ProcLayout struct {
	Name string
	// Code, when non-nil, replaces the procedure's body (it may change
	// length); nil keeps the original instructions.
	Code []alpha.Inst
}

// Layout is an absolute re-layout of one image: the complete new procedure
// order. It must list every procedure of the image exactly once, and must
// keep the image's entry procedure (the one at offset 0) first, because
// process creation starts execution at the image base.
type Layout struct {
	Path  string // image path the layout applies to
	Procs []ProcLayout
}

// Digest returns a short stable content digest of the layout, used to make
// rewritten runs cache-addressable (runner.Key) and to detect layout fixed
// points across optimization iterations.
func (l Layout) Digest() string {
	h := sha256.New()
	h.Write([]byte(l.Path))
	var b [8]byte
	for _, p := range l.Procs {
		h.Write([]byte{0})
		h.Write([]byte(p.Name))
		if p.Code == nil {
			h.Write([]byte{1})
			continue
		}
		binary.LittleEndian.PutUint64(b[:], uint64(len(p.Code)))
		h.Write(b[:])
		for _, in := range p.Code {
			binary.LittleEndian.PutUint64(b[:], packInst(in))
			h.Write(b[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// packInst folds an instruction's fields into one word for hashing. Pal and
// Disp share no bits with the register fields, so distinct instructions
// pack distinctly.
func packInst(in alpha.Inst) uint64 {
	v := uint64(in.Op)<<56 | uint64(in.Ra)<<48 | uint64(in.Rb)<<40 | uint64(in.Rc)<<32
	v |= uint64(uint32(in.Disp))
	v ^= uint64(in.Pal) << 16
	if in.UseLit {
		v ^= 1<<31 | uint64(in.Lit)<<23
	}
	return v
}

// LayoutsDigest combines the digests of a rewrite set canonically (order-
// independent over distinct paths).
func LayoutsDigest(ls []Layout) string {
	if len(ls) == 0 {
		return ""
	}
	ds := make([]string, len(ls))
	for i, l := range ls {
		ds[i] = l.Digest()
	}
	// Sort by path for a canonical combination; layouts apply by path
	// match, so their order never matters semantically.
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j-1].Path > ls[j].Path; j-- {
			ds[j-1], ds[j] = ds[j], ds[j-1]
			ls[j-1], ls[j] = ls[j], ls[j-1]
		}
	}
	h := sha256.New()
	for _, d := range ds {
		h.Write([]byte(d))
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// WithLayout builds the rewritten image a layout describes. The receiver is
// not modified. It returns an error when the layout is incomplete or the
// rewrite would be unsound (see the package comment on safety).
func (im *Image) WithLayout(lay Layout) (*Image, error) {
	if lay.Path != "" && lay.Path != im.Path {
		return nil, fmt.Errorf("image %s: layout targets %s", im.Name, lay.Path)
	}
	if len(im.Symbols) == 0 {
		return nil, fmt.Errorf("image %s: no procedures to lay out", im.Name)
	}
	// Relocating procedures must not lose code: every instruction has to
	// belong to a procedure.
	var covered uint64
	for _, s := range im.Symbols {
		covered += s.Size
	}
	if covered != im.Size() {
		return nil, fmt.Errorf("image %s: %d bytes of code outside procedure symbols; cannot re-lay",
			im.Name, im.Size()-covered)
	}
	if len(lay.Procs) != len(im.Symbols) {
		return nil, fmt.Errorf("image %s: layout lists %d procedures, image has %d",
			im.Name, len(lay.Procs), len(im.Symbols))
	}
	if lay.Procs[0].Name != im.Symbols[0].Name {
		return nil, fmt.Errorf("image %s: entry procedure %s must stay first (layout starts with %s)",
			im.Name, im.Symbols[0].Name, lay.Procs[0].Name)
	}

	var (
		newCode []alpha.Inst
		newSyms []alpha.Symbol
		newLine []int
		seen    = make(map[string]bool, len(lay.Procs))
	)
	for _, pl := range lay.Procs {
		if seen[pl.Name] {
			return nil, fmt.Errorf("image %s: procedure %s listed twice", im.Name, pl.Name)
		}
		seen[pl.Name] = true
		code, base, err := im.ProcCode(pl.Name)
		if err != nil {
			return nil, err
		}
		lines := make([]int, len(code)) // zeros unless carried below
		if pl.Code != nil {
			code = pl.Code
			lines = make([]int, len(code))
		} else if im.Lines != nil {
			lo := int(base / alpha.InstBytes)
			if lo+len(code) <= len(im.Lines) {
				copy(lines, im.Lines[lo:lo+len(code)])
			}
		}
		// Soundness: every PC-relative transfer must stay inside its own
		// procedure, whose internal distances the move preserves.
		for i, in := range code {
			if in.Op.Class() != alpha.ClassBranch {
				continue
			}
			if t := i + 1 + int(in.Disp); t < 0 || t >= len(code) {
				return nil, fmt.Errorf("image %s: %s branches outside the procedure (%s at +%d); re-layout would retarget it",
					im.Name, pl.Name, in.Op, i)
			}
		}
		newSyms = append(newSyms, alpha.Symbol{
			Name:   pl.Name,
			Offset: uint64(len(newCode)) * alpha.InstBytes,
			Size:   uint64(len(code)) * alpha.InstBytes,
		})
		newCode = append(newCode, code...)
		newLine = append(newLine, lines...)
	}

	out := &Image{
		Name:    im.Name,
		Path:    im.Path,
		Kind:    im.Kind,
		Code:    newCode,
		Symbols: newSyms,
		meta:    alpha.DecodeMeta(newCode),
	}
	if im.Lines != nil {
		out.Lines = newLine
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
