package image

import (
	"testing"

	"dcpi/internal/alpha"
)

func testImage(t *testing.T) *Image {
	t.Helper()
	asm := alpha.MustAssemble(`
first:
	nop
	addq t0, 1, t0
	ret (ra)
second:
	subq t0, 1, t0
	ret (ra)
`)
	im := New("test.so", "/usr/shlib/test.so", KindShared, asm)
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	return im
}

func TestSymbolAt(t *testing.T) {
	im := testImage(t)
	cases := []struct {
		off  uint64
		want string
		ok   bool
	}{
		{0, "first", true},
		{4, "first", true},
		{8, "first", true},
		{12, "second", true},
		{16, "second", true},
		{20, "", false},
	}
	for _, tc := range cases {
		s, ok := im.SymbolAt(tc.off)
		if ok != tc.ok || (ok && s.Name != tc.want) {
			t.Errorf("SymbolAt(%d) = %q, %v; want %q, %v", tc.off, s.Name, ok, tc.want, tc.ok)
		}
	}
}

func TestInstAt(t *testing.T) {
	im := testImage(t)
	in, ok := im.InstAt(4)
	if !ok || in.Op != alpha.OpADDQ {
		t.Errorf("InstAt(4) = %v, %v", in, ok)
	}
	if _, ok := im.InstAt(2); ok {
		t.Error("misaligned offset resolved")
	}
	if _, ok := im.InstAt(100); ok {
		t.Error("out-of-range offset resolved")
	}
}

func TestProcCode(t *testing.T) {
	im := testImage(t)
	code, off, err := im.ProcCode("second")
	if err != nil {
		t.Fatal(err)
	}
	if off != 12 || len(code) != 2 || code[0].Op != alpha.OpSUBQ {
		t.Errorf("ProcCode = %v at %d", code, off)
	}
	if _, _, err := im.ProcCode("missing"); err == nil {
		t.Error("missing procedure resolved")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	im := testImage(t)
	im.Symbols[1].Offset = 8 // overlaps first
	if err := im.Validate(); err == nil {
		t.Error("overlap not caught")
	}
}

func TestValidateCatchesOverrun(t *testing.T) {
	im := testImage(t)
	im.Symbols[1].Size = 1000
	if err := im.Validate(); err == nil {
		t.Error("overrun not caught")
	}
}

func TestKindString(t *testing.T) {
	if KindExecutable.String() != "executable" || KindShared.String() != "shared" || KindKernel.String() != "kernel" {
		t.Error("kind strings wrong")
	}
}

func TestLineOf(t *testing.T) {
	im := testImage(t)
	// testImage's source: line 1 blank, "first:" on 2, instructions follow.
	if got := im.LineOf(0); got == 0 {
		t.Errorf("LineOf(0) = %d, want a real line", got)
	}
	if got := im.LineOf(4); got <= im.LineOf(0) {
		t.Errorf("line numbers not increasing: %d then %d", im.LineOf(0), got)
	}
	if got := im.LineOf(1 << 20); got != 0 {
		t.Errorf("LineOf(out of range) = %d", got)
	}
	im.Lines = nil
	if got := im.LineOf(0); got != 0 {
		t.Errorf("LineOf without line info = %d", got)
	}
}
