package workload

import (
	"fmt"

	"dcpi/internal/alpha"
	"dcpi/internal/loader"
)

// The timesharing workload: an office/technical mix of interactive-ish
// processes that compute, sleep, and wake, across 4 CPUs — the long-running
// profile session of Table 2.

// interactiveSrc computes in bursts separated by sleeps.
const interactiveSrc = `
main:
	; a0 = data, a3 = bursts, a4 = burst length, a5 = sleep cycles
.burst:
	bis  a0, zero, t1
	bis  a4, zero, t0
	lda  t9, 4095(zero)
.work:
	ldq  t2, 0(t1)
	sll  t2, 3, t3
	xor  t2, t3, t2
	stq  t2, 0(t1)
	lda  t1, 8(t1)
	and  t1, t9, t4
	bne  t4, .cont
	bis  a0, zero, t1
.cont:
	subq t0, 1, t0
	bne  t0, .work
	lda  v0, 2(zero)         ; sleep
	bis  a5, zero, a1
	call_pal 0x83
	subq a3, 1, a3
	bne  a3, .burst
	lda  v0, 0(zero)         ; exit
	call_pal 0x83
	nop
`

func setupTimeshare(ctx *Ctx) error {
	// A mix: editors (short bursts, long sleeps), builds (long bursts,
	// short sleeps), and daemons (tiny periodic ticks).
	kinds := []struct {
		name   string
		count  int
		bursts int
		length int
		sleep  int
	}{
		{"editor", 4, 30, 1500, 40000},
		{"build", 2, 20, 20000, 5000},
		{"daemon", 4, 60, 400, 25000},
	}
	id := 0
	for _, k := range kinds {
		for i := 0; i < k.count; i++ {
			p, err := newProcess(ctx, fmt.Sprintf("%s[%d]", k.name, i), "/usr/bin/"+k.name, interactiveSrc)
			if err != nil {
				return err
			}
			p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
			p.Regs.WriteI(alpha.RegA3, uint64(ctx.scaled(k.bursts)))
			p.Regs.WriteI(alpha.RegA4, uint64(k.length))
			p.Regs.WriteI(alpha.RegA5, uint64(k.sleep))
			fillMemory(p, loader.HeapBase, 512, uint64(71+id))
			id++
		}
	}
	return nil
}

func init() {
	register(Spec{
		Name:        "timeshare",
		Description: "timesharing mix: editors, builds, and daemons with sleep/wake cycles on 4 CPUs",
		NumCPUs:     4,
		Setup:       setupTimeshare,
	})
}
