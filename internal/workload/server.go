package workload

import (
	"fmt"

	"dcpi/internal/alpha"
	"dcpi/internal/loader"
)

// Multiprocessor workloads (Table 2): an AltaVista-like index-search server
// on 4 CPUs and a DSS-like decision-support scan on 8 CPUs.

// altavistaSrc: each worker services queries: hash the query, walk two
// postings lists in a big inverted index, intersect, then report the result
// via a write syscall.
const altavistaSrc = `
main:
	; a0 = index base, a1 = postings base, a3 = queries, s1 = result buf
	lda  sp, -16(sp)
	stq  ra, 0(sp)
.query:
	bsr  ra, hash_query
	bsr  ra, walk_postings
	bsr  ra, intersect
	bsr  ra, report
	subq a3, 1, a3
	bne  a3, .query
	halt

hash_query:
	bis  a3, zero, t0
	lda  t1, 40(zero)
.h:
	sll  t0, 5, t2
	xor  t0, t2, t0
	srl  t0, 3, t2
	addq t0, t2, t0
	subq t1, 1, t1
	bne  t1, .h
	zapnot t0, 0x3, s4       ; bucket (low 16 bits)
	ret  (ra)

walk_postings:
	; two postings lists, heads chosen by the hash
	s8addq s4, a0, t1
	ldq  t2, 0(t1)           ; list length seed
	and  t2, 0xff, t3
	lda  t3, 192(t3)         ; 192..447 entries
	bis  a1, zero, t4
	s8addq s4, t4, t4
	lda  t5, 0(zero)
.w:
	ldq  t6, 0(t4)
	addq t5, t6, t5
	lda  t4, 64(t4)          ; stride through postings (cache misses)
	subq t3, 1, t3
	bne  t3, .w
	bis  t5, zero, s5
	ret  (ra)

intersect:
	; merge-intersection flavor: compare-advance over two arrays
	bis  a1, zero, t1
	lda  t2, 0(zero)
	ldah t2, 32(t2)
	addq a1, t2, t2          ; second list 2MB away
	lda  t0, 160(zero)
.i:
	ldq  t3, 0(t1)
	ldq  t4, 0(t2)
	cmpult t3, t4, t5
	beq  t5, .adv2
	lda  t1, 8(t1)
	br   .next
.adv2:
	lda  t2, 8(t2)
	addq s5, t4, s5
.next:
	subq t0, 1, t0
	bne  t0, .i
	ret  (ra)

report:
	lda  sp, -16(sp)
	stq  ra, 0(sp)
	stq  s5, 0(s1)
	bis  s1, zero, a0
	lda  a1, 128(zero)
	lda  v0, 3(zero)
	call_pal 0x83            ; write result
	ldq  ra, 0(sp)
	lda  sp, 16(sp)
	ret  (ra)
`

func setupAltaVista(ctx *Ctx) error {
	const workers = 8
	for i := 0; i < workers; i++ {
		p, err := newProcess(ctx, fmt.Sprintf("altavista[%d]", i), "/usr/bin/altavista", altavistaSrc)
		if err != nil {
			return err
		}
		p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
		p.Regs.WriteI(alpha.RegA1, loader.HeapBase+8<<20)
		p.Regs.WriteI(alpha.RegA3, uint64(ctx.scaled(250)))
		p.Regs.WriteI(alpha.RegS1, loader.HeapBase+48<<20)
		fillMemory(p, loader.HeapBase, 1<<16/8*8, uint64(31+i))
		fillMemory(p, loader.HeapBase+8<<20, 1<<18, uint64(37+i))
	}
	return nil
}

// dssSrc: table scan with predicate filter and aggregation (TPC-D flavor).
const dssSrc = `
main:
	; a0 = table base, a2 = rows, a3 = passes
.pass:
	bis  a0, zero, t1
	bis  a2, zero, t0
	lda  t5, 0(zero)
	lda  t6, 0(zero)
.row:
	ldq  t2, 0(t1)           ; quantity column
	ldq  t3, 8(t1)           ; price column
	lda  t4, 24(zero)
	cmpult t2, t4, t7
	beq  t7, .skip
	addq t5, t3, t5          ; sum(price)
	addq t6, 1, t6           ; count(*)
.skip:
	lda  t1, 32(t1)          ; row width 32 bytes
	subq t0, 1, t0
	bne  t0, .row
	subq a3, 1, a3
	bne  a3, .pass
	halt
`

func setupDSS(ctx *Ctx) error {
	const workers = 8
	for i := 0; i < workers; i++ {
		p, err := newProcess(ctx, fmt.Sprintf("dss[%d]", i), "/usr/bin/dss", dssSrc)
		if err != nil {
			return err
		}
		p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
		p.Regs.WriteI(alpha.RegA2, 32*1024) // rows
		p.Regs.WriteI(alpha.RegA3, uint64(ctx.scaled(8)))
		fillMemory(p, loader.HeapBase, 32*1024*4, uint64(53+i))
	}
	return nil
}

func init() {
	register(Spec{
		Name:        "altavista",
		Description: "AltaVista-like index search: 8 query workers on 4 CPUs",
		NumCPUs:     4,
		Setup:       setupAltaVista,
	})
	register(Spec{
		Name:        "dss",
		Description: "DSS-like decision-support scan: 8 workers on 8 CPUs",
		NumCPUs:     8,
		Setup:       setupDSS,
	})
}
