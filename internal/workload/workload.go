package workload

import (
	"fmt"
	"math"
	"sort"

	"dcpi/internal/alpha"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/sim"
)

// Ctx is handed to a workload's Setup to create and place its processes.
type Ctx struct {
	Loader  *loader.Loader
	Machine *sim.Machine
	// Scale multiplies repeat counts; 1.0 is the default experiment size.
	Scale float64
}

func (c *Ctx) scaled(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(math.Round(float64(n) * s))
	if v < 1 {
		v = 1
	}
	return v
}

// Spec describes one workload from Table 2.
type Spec struct {
	Name        string
	Description string
	// NumCPUs is the machine size the paper ran this workload on.
	NumCPUs int
	// MaxCycles bounds the run (a safety net; workloads normally exit).
	MaxCycles int64
	Setup     func(*Ctx) error
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate " + s.Name)
	}
	if s.NumCPUs == 0 {
		s.NumCPUs = 1
	}
	if s.MaxCycles == 0 {
		s.MaxCycles = 1 << 33
	}
	registry[s.Name] = s
}

// Get returns a workload spec by name.
func Get(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names lists all registered workloads, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every spec, sorted by name.
func All() []Spec {
	var out []Spec
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// newProcess assembles src into an executable image, creates a process with
// the given shared libraries, and spawns it on the machine.
func newProcess(ctx *Ctx, procName, path, src string, libs ...*image.Image) (*loader.Process, error) {
	asm, err := alpha.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", procName, err)
	}
	exec := image.New(procName, path, image.KindExecutable, asm)
	p, err := ctx.Loader.NewProcess(procName, exec, libs...)
	if err != nil {
		return nil, err
	}
	ctx.Machine.Spawn(p)
	return p, nil
}

// fillMemory writes a deterministic pseudo-random pattern of n quadwords at
// base, so loads see varied values and data-dependent branches have texture.
func fillMemory(p *loader.Process, base uint64, n int, seed uint64) {
	x := seed*2654435761 + 12345
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p.Mem.Store(base+uint64(i)*8, 8, x)
	}
}

// plt writes a procedure-linkage table into process memory: the resolved
// virtual addresses of (image, symbol) pairs, 8 bytes each, at base. Code
// reaches cross-image procedures with ldq pv, 8*i(gp); jsr ra, (pv).
func plt(p *loader.Process, base uint64, entries []pltEntry) error {
	for i, e := range entries {
		var addr uint64
		found := false
		for _, m := range p.Mappings() {
			if m.Image == e.im {
				s, ok := m.Image.Symbol(e.sym)
				if !ok {
					return fmt.Errorf("workload: image %s has no symbol %s", e.im.Name, e.sym)
				}
				addr = m.Base + s.Offset
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("workload: image %s not mapped", e.im.Name)
		}
		p.Mem.Store(base+uint64(i)*8, 8, addr)
	}
	return nil
}

type pltEntry struct {
	im  *image.Image
	sym string
}

// sharedLib assembles a shared-library image once per path (the loader
// dedups by path, so multiple processes share it).
func sharedLib(name, path, src string) *image.Image {
	return image.New(name, path, image.KindShared, alpha.MustAssemble(src))
}
