package workload

import (
	"math"

	"dcpi/internal/alpha"
	"dcpi/internal/loader"
)

// The McCalpin STREAM-like workloads (Table 2/3: assign, scale, sum,
// saxpy). Arrays stream through the memory system; the copy (assign) kernel
// is exactly the paper's Figure 2 loop.

const (
	// streamElems x 8 bytes = 2.25MB per array: larger than the 2MB board
	// cache, so the kernels stream from memory on every pass, as the real
	// STREAM benchmark's arrays do.
	streamElems   = 288 * 1024
	streamRepeats = 3
	srcBase       = loader.HeapBase
	dstBase       = loader.HeapBase + 8<<20
	thirdBase     = loader.HeapBase + 16<<20
)

// copySrc is the Figure 2 copy loop, 4x unrolled, wrapped in a repeat loop.
// Registers: a0=src, a1=dst, a2=N (multiple of 4), a3=repeats.
const copySrc = `
main:
.rep:
	bis   a0, zero, t1
	bis   a1, zero, t2
	lda   t0, 4(zero)
	addq  a2, 4, v0
copyloop:
	ldq   t4, 0(t1)
	addq  t0, 0x4, t0
	ldq   t5, 8(t1)
	ldq   t6, 16(t1)
	ldq   a4, 24(t1)
	lda   t1, 32(t1)
	stq   t4, 0(t2)
	cmpult t0, v0, t4
	stq   t5, 8(t2)
	stq   t6, 16(t2)
	stq   a4, 24(t2)
	lda   t2, 32(t2)
	bne   t4, copyloop
	subq  a3, 1, a3
	bne   a3, .rep
	halt
`

// scaleSrc: b[i] = s * c[i] (f0 holds s). 2x unrolled.
const scaleSrc = `
main:
.rep:
	bis   a0, zero, t1
	bis   a1, zero, t2
	srl   a2, 1, t0
scaleloop:
	ldt   f1, 0(t1)
	ldt   f2, 8(t1)
	mult  f0, f1, f3
	mult  f0, f2, f4
	stt   f3, 0(t2)
	lda   t1, 16(t1)
	stt   f4, 8(t2)
	lda   t2, 16(t2)
	subq  t0, 1, t0
	bne   t0, scaleloop
	subq  a3, 1, a3
	bne   a3, .rep
	halt
`

// sumSrc: c[i] = a[i] + b[i]. a0=a, a1=b, a4 set to c by Setup... the jump
// format has no spare args; c comes in a5.
const sumSrc = `
main:
.rep:
	bis   a0, zero, t1
	bis   a1, zero, t2
	bis   a5, zero, t3
	srl   a2, 1, t0
sumloop:
	ldt   f1, 0(t1)
	ldt   f2, 0(t2)
	ldt   f3, 8(t1)
	ldt   f4, 8(t2)
	addt  f1, f2, f5
	addt  f3, f4, f6
	stt   f5, 0(t3)
	lda   t1, 16(t1)
	stt   f6, 8(t3)
	lda   t2, 16(t2)
	lda   t3, 16(t3)
	subq  t0, 1, t0
	bne   t0, sumloop
	subq  a3, 1, a3
	bne   a3, .rep
	halt
`

// saxpySrc: a[i] = b[i] + s*c[i] (the STREAM triad).
const saxpySrc = `
main:
.rep:
	bis   a0, zero, t1
	bis   a1, zero, t2
	bis   a5, zero, t3
	bis   a2, zero, t0
saxpyloop:
	ldt   f1, 0(t2)
	ldt   f2, 0(t3)
	mult  f0, f2, f3
	addt  f1, f3, f4
	stt   f4, 0(t1)
	lda   t1, 8(t1)
	lda   t2, 8(t2)
	lda   t3, 8(t3)
	subq  t0, 1, t0
	bne   t0, saxpyloop
	subq  a3, 1, a3
	bne   a3, .rep
	halt
`

func setupStream(src string, threeArrays bool) func(*Ctx) error {
	return func(ctx *Ctx) error {
		p, err := newProcess(ctx, "mccalpin", "/bin/mccalpin", src)
		if err != nil {
			return err
		}
		p.Regs.WriteI(alpha.RegA0, srcBase)
		p.Regs.WriteI(alpha.RegA1, dstBase)
		p.Regs.WriteI(alpha.RegA2, streamElems)
		p.Regs.WriteI(alpha.RegA3, uint64(ctx.scaled(streamRepeats)))
		if threeArrays {
			p.Regs.WriteI(alpha.RegA5, thirdBase)
		}
		p.Regs.F[0] = math.Float64bits(3.0)
		// Seed the source arrays with FP-friendly values (small integers as
		// floats) so fp kernels compute on sane data.
		for i := 0; i < streamElems; i++ {
			v := math.Float64bits(float64(i%1000) * 0.5)
			p.Mem.Store(srcBase+uint64(i)*8, 8, v)
			if threeArrays {
				p.Mem.Store(thirdBase+uint64(i)*8, 8, v)
			}
		}
		return nil
	}
}

func init() {
	register(Spec{
		Name:        "mccalpin-assign",
		Description: "McCalpin STREAM copy loop (the paper's Figure 2 kernel)",
		Setup:       setupStream(copySrc, false),
	})
	register(Spec{
		Name:        "mccalpin-scale",
		Description: "McCalpin STREAM scale: b[i] = s*c[i]",
		Setup:       setupStream(scaleSrc, false),
	})
	register(Spec{
		Name:        "mccalpin-sum",
		Description: "McCalpin STREAM sum: c[i] = a[i]+b[i]",
		Setup:       setupStream(sumSrc, true),
	})
	register(Spec{
		Name:        "mccalpin-saxpy",
		Description: "McCalpin STREAM saxpy/triad: a[i] = b[i]+s*c[i]",
		Setup:       setupStream(saxpySrc, true),
	})
}
