// Package workload builds the kernel image and the benchmark workloads of
// the paper's Table 2, re-expressed for the simulated machine: McCalpin
// STREAM loops, an x11perf-like server (Figure 1's procedure mix), SPEC-like
// integer and floating-point programs (including the gcc-like many-PID
// compile driver and the wave5-like variance study), multiprocessor
// AltaVista/DSS-like servers, and a timesharing mix.
package workload

import (
	"fmt"

	"dcpi/internal/alpha"
	"dcpi/internal/image"
	"dcpi/internal/sim"
)

// kernelSrc is the vmunix kernel: syscall dispatch (with real in_checksum
// and bcopy work on write), the clock interrupt handler, and the idle loop.
// Kernel code uses t0..t7 as scratch (caller-saved across syscalls) and t7
// as the internal link register, so the user's ra survives syscalls.
const kernelSrc = `
syscall_dispatch:
	beq   v0, .sys_done        ; exit(0): nothing to do in-kernel
	cmpeq v0, 3, t0
	bne   t0, .sys_write
	cmpeq v0, 2, t0
	bne   t0, .sys_sleep
	cmpeq v0, 1, t0
	bne   t0, .sys_yield
	br    .sys_done
.sys_write:
	bsr   t7, in_checksum
	bsr   t7, kbcopy
	br    .sys_done
.sys_sleep:
	lda   t0, 4(zero)          ; timer bookkeeping
.sleep_book:
	subq  t0, 1, t0
	bne   t0, .sleep_book
	br    .sys_done
.sys_yield:
	nop
	br    .sys_done
.sys_done:
	call_pal 0x84

in_checksum:
	; a0 = user buffer, a1 = byte length; sum quadwords into t0.
	bis   a0, zero, t1
	srl   a1, 3, t2
	lda   t0, 0(zero)
.ck_loop:
	beq   t2, .ck_done
	ldq   t3, 0(t1)
	addq  t0, t3, t0
	lda   t1, 8(t1)
	subq  t2, 1, t2
	br    .ck_loop
.ck_done:
	ret   (t7)

kbcopy:
	; copy a1 bytes from a0 into the kernel staging buffer.
	lda   t0, 1(zero)
	sll   t0, 40, t0           ; kernel base (1<<40)
	lda   t1, 0x1000(zero)
	sll   t1, 16, t1           ; data offset 0x10000000
	addq  t0, t1, t1
	lda   t1, 4096(t1)         ; staging area
	bis   a0, zero, t2         ; src
	srl   a1, 3, t3            ; quadwords
.bc_loop:
	beq   t3, .bc_done
	ldq   t4, 0(t2)
	stq   t4, 0(t1)
	lda   t2, 8(t2)
	lda   t1, 8(t1)
	subq  t3, 1, t3
	br    .bc_loop
.bc_done:
	ret   (t7)

hardclock:
	; bump the tick counter and scan the run queue.
	lda   t0, 1(zero)
	sll   t0, 40, t0
	lda   t1, 0x1000(zero)
	sll   t1, 16, t1
	addq  t0, t1, t1
	ldq   t2, 0(t1)
	addq  t2, 1, t2
	stq   t2, 0(t1)
	lda   t3, 8(zero)
	lda   t4, 64(t1)
.hc_scan:
	ldq   t5, 0(t4)
	lda   t4, 8(t4)
	subq  t3, 1, t3
	bne   t3, .hc_scan
	call_pal 0x85

idle_thread:
	lda   t0, 1(zero)
	sll   t0, 40, t0
	lda   t1, 0x1000(zero)
	sll   t1, 16, t1
	addq  t0, t1, t1
.idle_loop:
	ldq   t2, 0(t1)            ; watch the tick counter
	nop
	addq  t3, 1, t3
	br    .idle_loop

perfcount_intr:
	; the performance-counter interrupt handler's text. The simulator
	; models the handler's cycles as a cost, so this body never executes;
	; it exists so the paper's "meta" method (footnote 2) has an address
	; to attribute in-handler samples to.
	nop
	nop
	ret   (t7)
`

// Kernel assembles the vmunix image and returns it with its ABI offsets.
func Kernel() (*image.Image, sim.KernelABI) {
	asm := alpha.MustAssemble(kernelSrc)
	im := image.New("vmunix", "/vmunix", image.KindKernel, asm)
	var abi sim.KernelABI
	var haveSys, haveClock, haveIdle bool
	for _, s := range im.Symbols {
		switch s.Name {
		case "syscall_dispatch":
			abi.SyscallEntry, haveSys = s.Offset, true
		case "hardclock":
			abi.TimerEntry, haveClock = s.Offset, true
		case "idle_thread":
			abi.IdleEntry, haveIdle = s.Offset, true
		case "perfcount_intr":
			abi.HandlerEntry = s.Offset
		}
	}
	if !haveSys || !haveClock || !haveIdle {
		panic(fmt.Sprintf("workload: kernel missing entry points (%v %v %v)", haveSys, haveClock, haveIdle))
	}
	return im, abi
}
