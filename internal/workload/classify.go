package workload

import (
	"fmt"
	"strings"

	"dcpi/internal/alpha"
	"dcpi/internal/loader"
)

// The classify workload is the §7 continuous-optimization target: a token
// classifier whose code layout pessimizes the machine two ways at once.
//
//   - Within the hot loop, the common arm is reached through a taken branch
//     plus an extra unconditional jump (branch-sense inversion and block
//     re-chaining fix this).
//
//   - The loop calls a checksum helper through the PLT every iteration, and
//     cold padding places the helper almost exactly one I-cache of code
//     past the loop. The I-cache is 8KB direct-mapped with 8KB pages, so
//     the cache index is the page offset regardless of page placement: the
//     helper occupies the same cache line as its own call sequence and the
//     two evict each other on every single call. Re-laying the image with
//     the hot helper next to the loop (procedure reordering) removes the
//     conflict entirely.
//
// The call goes through the PLT (ldq pv, 0(gp); jsr ra, (pv)), not bsr, so
// the image stays safely re-layable: PLT addresses resolve from the symbol
// table after the rewritten image is registered.

// classifyPadProcs/classifyPadInsts size the cold padding between the loop
// and the helper: 30 procedures x 68 instructions = 2040 instructions.
// main is 19 instructions, so checksum lands at byte offset 76 + 8160 =
// 8236 — page offset 44, the I-cache line holding the loop's PLT call
// sequence (bytes 32-63). Every call then evicts the caller's own line.
const (
	classifyPadProcs = 30
	classifyPadInsts = 68
)

func classifySrc() string {
	var b strings.Builder
	b.WriteString(`
main:
	; a0 = token buffer, gp = plt, a3 = repeats
.crep:
	bis  a0, zero, s0
	lda  s1, 96(zero)
.cloop:
	ldq  t2, 0(s0)
	and  t2, 0xf, t3
	beq  t3, .crare        ; 1 in 16: rare token
	br   .ccommon          ; common case pays an extra jump
.crare:
	sll  t2, 3, t4
	xor  t4, t5, t5
	addq t5, 7, t5
	br   .cnext
.ccommon:
	addq t5, t2, t5
.cnext:
	ldq  pv, 0(gp)
	jsr  ra, (pv)          ; checksum: a cross-page call before re-layout
	lda  s0, 8(s0)
	subq s1, 1, s1
	bne  s1, .cloop
	subq a3, 1, a3
	bne  a3, .crep
	halt
`)
	for i := 0; i < classifyPadProcs; i++ {
		fmt.Fprintf(&b, "cpad%d:\n", i)
		for j := 0; j < classifyPadInsts-1; j++ {
			b.WriteString("\tnop\n")
		}
		b.WriteString("\tret (ra)\n")
	}
	b.WriteString(`
checksum:
	ldq  t7, 0(s0)
	xor  t6, t7, t6
	srl  t6, 2, t8
	addq t6, t8, t6
	ret  (ra)
`)
	return b.String()
}

func setupClassify(ctx *Ctx) error {
	p, err := newProcess(ctx, "classify", "/bin/classify", classifySrc())
	if err != nil {
		return err
	}
	exec, ok := ctx.Loader.ImageByPath("/bin/classify")
	if !ok {
		return fmt.Errorf("workload classify: image not registered")
	}
	const pltBase = loader.HeapBase + 3<<20
	if err := plt(p, pltBase, []pltEntry{{exec, "checksum"}}); err != nil {
		return err
	}
	p.Regs.WriteI(alpha.RegGP, pltBase)
	p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
	p.Regs.WriteI(alpha.RegA3, uint64(ctx.scaled(400)))
	fillMemory(p, loader.HeapBase, 1024, 21)
	return nil
}

func init() {
	register(Spec{
		Name:        "classify",
		Description: "token classifier with a pessimized layout: hot helper one I-cache away from its call site (continuous-optimization target)",
		Setup:       setupClassify,
	})
}
