package workload

import (
	"math"

	"dcpi/internal/alpha"
	"dcpi/internal/loader"
)

// SPECfp95-like programs. wave5 reproduces the paper's §3.3 variance study:
// its smooth_ procedure touches several large arrays whose physical page
// placement (randomized per run) determines board-cache conflict misses, so
// run time — and smooth_'s share of samples — varies across runs, which is
// exactly what dcpistats isolates in Figure 3.

// wave5 procedures, sized so parmvr_ dominates (paper: ~59% of samples).
// Registers: a0 = arrays base, a3 = outer iterations.
// Array layout (1MB apart): u (a0), v (+1MB), w (+2MB), work (+3MB).
const wave5Src = `
main:
	lda  sp, -16(sp)
	stq  ra, 0(sp)
.iter:
	bsr  ra, parmvr_
	bsr  ra, smooth_
	bsr  ra, fftb_
	bsr  ra, ffef_
	bsr  ra, putb_
	bsr  ra, vslvip_
	subq a3, 1, a3
	bne  a3, .iter
	ldq  ra, 0(sp)
	lda  sp, 16(sp)
	halt

parmvr_:
	; particle move: fp-heavy sweep, the dominant phase
	bis  a0, zero, t1
	lda  t0, 4096(zero)
.pm:
	ldt  f1, 0(t1)
	ldt  f2, 8(t1)
	mult f1, f10, f3
	addt f3, f2, f4
	mult f2, f11, f5
	addt f4, f5, f6
	stt  f6, 0(t1)
	lda  t1, 16(t1)
	subq t0, 1, t0
	bne  t0, .pm
	ret  (ra)

smooth_:
	; field smoothing: repeated page-stride sweeps over three 1MB arrays.
	; Whether a page of one array evicts a page of another in the 2MB
	; direct-mapped board cache depends on physical page placement, and a
	; conflicting pair thrashes on every one of the 8 sweeps — the paper's
	; §3.3 run-to-run variance mechanism.
	lda  t4, 8(zero)      ; sweeps
.sweep:
	bis  a0, zero, t1
	lda  t2, 0(zero)
	ldah t2, 16(t2)       ; +1MB
	addq a0, t2, t2
	addq t2, t2, t3
	subq t3, a0, t3       ; +2MB
	lda  t0, 128(zero)    ; pages per array
.sm:
	ldt  f1, 0(t1)
	ldt  f2, 0(t2)
	ldt  f3, 0(t3)
	addt f1, f2, f4
	addt f4, f3, f5
	mult f5, f12, f6
	addt f7, f6, f7       ; accumulate; conflicts in the loads dominate
	lda  t1, 8192(t1)     ; page stride
	lda  t2, 8192(t2)
	lda  t3, 8192(t3)
	subq t0, 1, t0
	bne  t0, .sm
	subq t4, 1, t4
	bne  t4, .sweep
	stt  f7, 0(a0)
	ret  (ra)

fftb_:
	; butterfly pass
	bis  a0, zero, t1
	lda  t0, 512(zero)
.bf:
	ldt  f1, 0(t1)
	ldt  f2, 4096(t1)
	addt f1, f2, f3
	subt f1, f2, f4
	stt  f3, 0(t1)
	stt  f4, 4096(t1)
	lda  t1, 8(t1)
	subq t0, 1, t0
	bne  t0, .bf
	ret  (ra)

ffef_:
	; forward transform twiddle
	bis  a0, zero, t1
	lda  t0, 512(zero)
.fe:
	ldt  f1, 0(t1)
	mult f1, f10, f2
	addt f2, f11, f3
	stt  f3, 8192(t1)
	lda  t1, 8(t1)
	subq t0, 1, t0
	bne  t0, .fe
	ret  (ra)

putb_:
	; boundary copy
	bis  a0, zero, t1
	lda  t2, 0(zero)
	ldah t2, 48(t2)       ; +3MB work array
	addq a0, t2, t2
	lda  t0, 768(zero)
.pb:
	ldq  t3, 0(t1)
	stq  t3, 0(t2)
	lda  t1, 8(t1)
	lda  t2, 8(t2)
	subq t0, 1, t0
	bne  t0, .pb
	ret  (ra)

vslvip_:
	; tridiagonal solve: divide-bound (FDIV busy stalls)
	bis  a0, zero, t1
	lda  t0, 96(zero)
.vs:
	ldt  f1, 0(t1)
	divt f1, f13, f2
	stt  f2, 0(t1)
	lda  t1, 8(t1)
	subq t0, 1, t0
	bne  t0, .vs
	ret  (ra)
`

func setupWave5(ctx *Ctx) error {
	p, err := newProcess(ctx, "wave5", "/usr/bin/wave5", wave5Src)
	if err != nil {
		return err
	}
	p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
	p.Regs.WriteI(alpha.RegA3, uint64(ctx.scaled(40)))
	for i, v := range []float64{1.000244, 0.5, 0.333333, 1.000122} {
		p.Regs.F[10+i] = math.Float64bits(v)
	}
	fillFP(p, loader.HeapBase, 3*1<<20/8)
	return nil
}

// fillFP seeds n quadwords with small floating-point values.
func fillFP(p *loader.Process, base uint64, n int) {
	for i := 0; i < n; i++ {
		p.Mem.Store(base+uint64(i)*8, 8, math.Float64bits(1.0+float64(i%97)/97))
	}
}

// mgrid-like: 3D stencil relaxation flavor.
const mgridSrc = `
main:
.rep:
	bis  a0, zero, t1
	lda  t0, 3000(zero)
.st:
	ldt  f1, 0(t1)
	ldt  f2, 8(t1)
	ldt  f3, 16(t1)
	addt f1, f3, f4
	mult f4, f10, f5
	addt f5, f2, f6
	stt  f6, 8(t1)
	lda  t1, 8(t1)
	subq t0, 1, t0
	bne  t0, .st
	subq a3, 1, a3
	bne  a3, .rep
	halt
`

// swim-like: shallow-water update flavor (two streams in, one out).
const swimSrc = `
main:
.rep:
	bis  a0, zero, t1
	bis  a1, zero, t2
	lda  t0, 2500(zero)
.sw:
	ldt  f1, 0(t1)
	ldt  f2, 0(t2)
	subt f1, f2, f3
	mult f3, f10, f4
	addt f4, f1, f5
	stt  f5, 0(t1)
	lda  t1, 8(t1)
	lda  t2, 8(t2)
	subq t0, 1, t0
	bne  t0, .sw
	subq a3, 1, a3
	bne  a3, .rep
	halt
`

func setupFP(name, src string, repeats int) func(*Ctx) error {
	return func(ctx *Ctx) error {
		p, err := newProcess(ctx, name, "/usr/bin/"+name, src)
		if err != nil {
			return err
		}
		p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
		p.Regs.WriteI(alpha.RegA1, loader.HeapBase+1<<20)
		p.Regs.WriteI(alpha.RegA3, uint64(ctx.scaled(repeats)))
		p.Regs.F[10] = math.Float64bits(0.25)
		fillFP(p, loader.HeapBase, 4096)
		fillFP(p, loader.HeapBase+1<<20, 4096)
		return nil
	}
}

func init() {
	register(Spec{
		Name:        "wave5",
		Description: "wave5-like: parmvr_ dominant, smooth_ page-placement sensitive (the §3.3 variance study)",
		Setup:       setupWave5,
	})
	register(Spec{
		Name:        "mgrid",
		Description: "mgrid-like stencil relaxation",
		Setup:       setupFP("mgrid", mgridSrc, 500),
	})
	register(Spec{
		Name:        "swim",
		Description: "swim-like shallow-water update",
		Setup:       setupFP("swim", swimSrc, 500),
	})
}
