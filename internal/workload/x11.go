package workload

import (
	"dcpi/internal/alpha"
	"dcpi/internal/loader"
)

// The x11perf-like workload reproduces Figure 1's structure: an X-server
// process whose time splits across shared libraries (the ffb framebuffer
// driver, the mi machine-independent rasterizer, dix dispatch, os transport)
// plus kernel time for request reads (bcopy/in_checksum via the write
// syscall).
//
// PLT layout (gp): 0 Dispatch, 1 ReadRequestFromClient, 2 miCreateETandAET,
// 3 miZeroArcSetup, 4 miInsertEdgeInET, 5 miX1Y1X2Y2InRegion,
// 6 ffb8ZeroPolyArc, 7 ffb8FillPolygon.
//
// Saved registers: s0 = framebuffer, s1 = request buffer, s2 = edge table.

const x11MainSrc = `
main:
	; a3 = query count
.qloop:
	ldq  pv, 0(gp)
	jsr  ra, (pv)          ; Dispatch
	subq a3, 1, a3
	bne  a3, .qloop
	halt
`

const dixSrc = `
Dispatch:
	lda  sp, -16(sp)
	stq  ra, 0(sp)
	; decode the request opcode (a short table walk)
	ldq  t0, 0(s1)
	and  t0, 0x3f, t0
	lda  t1, 24(zero)
.decode:
	addq t0, t1, t0
	and  t0, 0xff, t0
	subq t1, 1, t1
	bne  t1, .decode
	ldq  pv, 8(gp)
	jsr  ra, (pv)          ; ReadRequestFromClient
	ldq  pv, 16(gp)
	jsr  ra, (pv)          ; miCreateETandAET
	ldq  pv, 24(gp)
	jsr  ra, (pv)          ; miZeroArcSetup
	ldq  pv, 32(gp)
	jsr  ra, (pv)          ; miInsertEdgeInET
	ldq  pv, 40(gp)
	jsr  ra, (pv)          ; miX1Y1X2Y2InRegion
	ldq  pv, 48(gp)
	jsr  ra, (pv)          ; ffb8ZeroPolyArc
	ldq  pv, 56(gp)
	jsr  ra, (pv)          ; ffb8FillPolygon
	ldq  ra, 0(sp)
	lda  sp, 16(sp)
	ret  (ra)
`

const osSrc = `
ReadRequestFromClient:
	lda  sp, -16(sp)
	stq  ra, 0(sp)
	; read the client request: kernel checksums and copies the buffer
	bis  s1, zero, a0
	lda  a1, 512(zero)
	lda  v0, 3(zero)       ; SysWrite
	call_pal 0x83
	; parse the request header quadwords
	bis  s1, zero, t1
	lda  t0, 56(zero)
.parse:
	ldq  t2, 0(t1)
	srl  t2, 8, t3
	and  t3, 0x7f, t3
	addq t4, t3, t4
	lda  t1, 8(t1)
	subq t0, 1, t0
	bne  t0, .parse
	ldq  ra, 0(sp)
	lda  sp, 16(sp)
	ret  (ra)
`

const miSrc = `
miCreateETandAET:
	; build the edge table: pointer-ish walk with data-dependent branches
	bis  s2, zero, t1
	lda  t0, 96(zero)
.et:
	ldq  t2, 0(t1)
	and  t2, 0x7, t3
	beq  t3, .skip
	addq t4, t3, t4
	stq  t4, 8(t1)
.skip:
	lda  t1, 16(t1)
	subq t0, 1, t0
	bne  t0, .et
	ret  (ra)

miZeroArcSetup:
	; arc parameter arithmetic (integer heavy, no memory)
	lda  t0, 70(zero)
	lda  t1, 3(zero)
	lda  t2, 17(zero)
.setup:
	sll  t1, 2, t3
	subq t3, t2, t3
	s4addq t2, t3, t1
	and  t1, 0xff, t1
	subq t0, 1, t0
	bne  t0, .setup
	ret  (ra)

miInsertEdgeInET:
	; sorted insert probe over the edge table
	bis  s2, zero, t1
	lda  t0, 40(zero)
	ldq  t2, 0(s1)
.probe:
	ldq  t3, 0(t1)
	cmpult t3, t2, t4
	beq  t4, .done
	lda  t1, 16(t1)
	subq t0, 1, t0
	bne  t0, .probe
.done:
	stq  t2, 8(t1)
	ret  (ra)

miX1Y1X2Y2InRegion:
	; clip-rectangle tests
	lda  t0, 36(zero)
	bis  s2, zero, t1
.clip:
	ldq  t2, 0(t1)
	ldq  t3, 8(t1)
	cmplt t2, t3, t4
	addq t5, t4, t5
	lda  t1, 16(t1)
	subq t0, 1, t0
	bne  t0, .clip
	ret  (ra)
`

const ffbSrc = `
ffb8ZeroPolyArc:
	; rasterize arc spans into the framebuffer: 8 spans x 64 pixels
	lda  t0, 8(zero)
	bis  s0, zero, t1
.span:
	lda  t2, 64(zero)
	ldq  t6, 0(s1)
.pixel:
	ldq  t3, 0(t1)
	sll  t6, 1, t4
	subq t4, t2, t4
	addq t3, t4, t3
	stq  t3, 0(t1)
	lda  t1, 8(t1)
	subq t2, 1, t2
	bne  t2, .pixel
	lda  t1, 448(t1)       ; next scanline
	subq t0, 1, t0
	bne  t0, .span
	ret  (ra)

ffb8FillPolygon:
	; fill spans: store-dominated
	lda  t0, 48(zero)
	bis  s0, zero, t1
	lda  t1, 32768(t1)
	ldq  t2, 8(s1)
.fill:
	stq  t2, 0(t1)
	stq  t2, 8(t1)
	lda  t1, 16(t1)
	subq t0, 1, t0
	bne  t0, .fill
	ret  (ra)
`

func setupX11(ctx *Ctx) error {
	libdix := sharedLib("libdix.so", "/usr/shlib/X11/libdix.so", dixSrc)
	libos := sharedLib("libos.so", "/usr/shlib/X11/libos.so", osSrc)
	libmi := sharedLib("libmi.so", "/usr/shlib/X11/libmi.so", miSrc)
	libffb := sharedLib("lib_dec_ffb_ev5.so", "/usr/shlib/X11/lib_dec_ffb_ev5.so", ffbSrc)

	p, err := newProcess(ctx, "x11perf", "/usr/bin/X11/x11perf", x11MainSrc,
		libdix, libos, libmi, libffb)
	if err != nil {
		return err
	}

	const (
		pltBase = loader.HeapBase
		fbBase  = loader.HeapBase + 1<<20
		reqBase = loader.HeapBase + 2<<20
		etBase  = loader.HeapBase + 3<<20
	)
	if err := plt(p, pltBase, []pltEntry{
		{libdix, "Dispatch"},
		{libos, "ReadRequestFromClient"},
		{libmi, "miCreateETandAET"},
		{libmi, "miZeroArcSetup"},
		{libmi, "miInsertEdgeInET"},
		{libmi, "miX1Y1X2Y2InRegion"},
		{libffb, "ffb8ZeroPolyArc"},
		{libffb, "ffb8FillPolygon"},
	}); err != nil {
		return err
	}
	p.Regs.WriteI(alpha.RegGP, pltBase)
	p.Regs.WriteI(alpha.RegS0, fbBase)
	p.Regs.WriteI(alpha.RegS1, reqBase)
	p.Regs.WriteI(alpha.RegS2, etBase)
	p.Regs.WriteI(alpha.RegA3, uint64(ctx.scaled(3000))) // queries
	fillMemory(p, reqBase, 512/8, 11)
	fillMemory(p, etBase, 4096, 13)
	return nil
}

func init() {
	register(Spec{
		Name:        "x11perf",
		Description: "x11perf-like X server: dix dispatch, os transport, mi rasterizer, ffb driver, kernel request handling (Figure 1)",
		Setup:       setupX11,
	})
}
