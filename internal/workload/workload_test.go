package workload

import (
	"testing"

	"dcpi/internal/loader"
	"dcpi/internal/sim"
)

// runSpec sets up and runs a workload at small scale, returning the machine.
func runSpec(t *testing.T, name string, scale float64, maxCycles int64) (*sim.Machine, *loader.Loader) {
	t.Helper()
	spec, ok := Get(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	kernel, abi := Kernel()
	l := loader.New(kernel)
	m := sim.NewMachine(sim.Options{
		NumCPUs: spec.NumCPUs,
		ABI:     abi,
		Loader:  l,
		Seed:    42,
	})
	if err := spec.Setup(&Ctx{Loader: l, Machine: m, Scale: scale}); err != nil {
		t.Fatal(err)
	}
	m.Run(maxCycles)
	return m, l
}

func TestKernelAssembles(t *testing.T) {
	im, abi := Kernel()
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	if abi.SyscallEntry == abi.TimerEntry || abi.TimerEntry == abi.IdleEntry {
		t.Error("kernel entry points collide")
	}
	for _, name := range []string{"syscall_dispatch", "in_checksum", "kbcopy", "hardclock", "idle_thread"} {
		if _, ok := im.Symbol(name); !ok {
			t.Errorf("kernel missing %s", name)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"altavista", "classify", "compress", "dss", "gcc", "go", "li",
		"mccalpin-assign", "mccalpin-saxpy", "mccalpin-scale", "mccalpin-sum",
		"mgrid", "swim", "timeshare", "vortex", "wave5", "x11perf",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, s := range All() {
		if s.Description == "" || s.Setup == nil || s.NumCPUs < 1 {
			t.Errorf("spec %q incomplete", s.Name)
		}
	}
}

// TestAllWorkloadsRunToCompletion runs every workload at tiny scale and
// checks that every process exits without faults.
func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, l := runSpec(t, spec.Name, 0.05, 1<<31)
			st := m.Stats()
			if st.Faults != 0 {
				t.Fatalf("faults: %v", st)
			}
			if st.Instructions == 0 {
				t.Fatal("no instructions executed")
			}
			for _, p := range l.Processes() {
				if p.State != loader.ProcExited {
					t.Errorf("process %s did not exit (state %v, pc %#x)", p.Name, p.State, p.PC)
				}
			}
			t.Logf("%-16s cycles=%-12d insts=%-12d cpi=%.2f", spec.Name, st.Cycles, st.Instructions,
				float64(st.Cycles)/float64(st.Instructions))
		})
	}
}

func TestWave5VarianceAcrossSeeds(t *testing.T) {
	// Different page placements must change wave5's run time (the §3.3
	// effect dcpistats isolates).
	spec, _ := Get("wave5")
	walls := map[int64]bool{}
	for seed := uint64(1); seed <= 4; seed++ {
		kernel, abi := Kernel()
		l := loader.New(kernel)
		m := sim.NewMachine(sim.Options{ABI: abi, Loader: l, Seed: seed})
		if err := spec.Setup(&Ctx{Loader: l, Machine: m, Scale: 0.2}); err != nil {
			t.Fatal(err)
		}
		walls[m.Run(1<<31)] = true
	}
	if len(walls) < 2 {
		t.Errorf("wave5 run time identical across seeds: %v", walls)
	}
}

func TestX11UsesSharedLibrariesAndKernel(t *testing.T) {
	m, l := runSpec(t, "x11perf", 0.05, 1<<31)
	_ = m
	paths := map[string]bool{}
	for _, im := range l.Images() {
		paths[im.Path] = true
	}
	for _, want := range []string{
		"/usr/shlib/X11/libdix.so", "/usr/shlib/X11/libos.so",
		"/usr/shlib/X11/libmi.so", "/usr/shlib/X11/lib_dec_ffb_ev5.so",
		"/vmunix", "/usr/bin/X11/x11perf",
	} {
		if !paths[want] {
			t.Errorf("image %s not registered", want)
		}
	}
}

func TestGCCManyPIDs(t *testing.T) {
	_, l := runSpec(t, "gcc", 0.02, 1<<31)
	pids := map[uint32]bool{}
	for _, p := range l.Processes() {
		pids[p.PID] = true
	}
	if len(pids) < 10 {
		t.Errorf("gcc spawned %d PIDs, want many", len(pids))
	}
}

func TestTimeshareSleepsAndWakes(t *testing.T) {
	m, l := runSpec(t, "timeshare", 0.1, 1<<31)
	var switches uint64
	for _, c := range m.CPUs {
		switches += c.ContextSwitches
	}
	if switches < uint64(len(l.Processes())) {
		t.Errorf("context switches = %d", switches)
	}
}
