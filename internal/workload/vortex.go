package workload

import (
	"fmt"
	"strings"

	"dcpi/internal/alpha"
	"dcpi/internal/loader"
)

// vortex-like: an object-database flavor with a large instruction footprint
// — ~150 small procedures (≈15KB of code, far beyond the 8KB I-cache)
// called in sequence, so steady-state execution misses the I-cache on many
// procedure entries. This is the I-cache-pressure program for the Figure 10
// experiment.

// genVortexSource synthesizes the procedure web.
func genVortexSource(procs, repeats int) string {
	var b strings.Builder
	b.WriteString("main:\n")
	fmt.Fprintf(&b, "\tlda s3, %d(zero)\n", repeats)
	b.WriteString(".txn:\n")
	for i := 0; i < procs; i++ {
		fmt.Fprintf(&b, "\tbsr ra, obj%d\n", i)
	}
	b.WriteString("\tsubq s3, 1, s3\n")
	b.WriteString("\tbne s3, .txn\n")
	b.WriteString("\thalt\n")
	for i := 0; i < procs; i++ {
		// Each "object method" does a short field update: a few loads,
		// integer work, a store, one small inner loop. ~22 instructions.
		fmt.Fprintf(&b, `obj%d:
	s8addq zero, a0, t1
	lda  t1, %d(t1)
	ldq  t2, 0(t1)
	ldq  t3, 8(t1)
	addq t2, t3, t4
	sll  t4, 2, t5
	xor  t5, t2, t5
	and  t5, 0x7f, t6
	lda  t0, %d(zero)
.o%dw:
	addq t6, t0, t6
	srl  t6, 1, t6
	subq t0, 1, t0
	bne  t0, .o%dw
	stq  t6, 16(t1)
	cmplt t6, t3, t7
	beq  t7, .o%ds
	addq t6, 3, t6
	stq  t6, 24(t1)
.o%ds:
	ret  (ra)
`, i, (i%64)*256, 3+i%5, i, i, i, i)
	}
	return b.String()
}

func setupVortex(ctx *Ctx) error {
	p, err := newProcess(ctx, "vortex", "/usr/bin/vortex", genVortexSource(150, ctx.scaled(600)))
	if err != nil {
		return err
	}
	p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
	fillMemory(p, loader.HeapBase, 4096, 17)
	return nil
}

func init() {
	register(Spec{
		Name:        "vortex",
		Description: "vortex-like object database: ~15KB instruction footprint exercising the I-cache",
		Setup:       setupVortex,
	})
}
