package workload

import (
	"fmt"
	"strings"

	"dcpi/internal/alpha"
	"dcpi/internal/loader"
)

// SPECint95-like programs. The gcc-like workload runs many short-lived
// processes with distinct PIDs over a large code footprint — the paper's
// explanation for gcc's high driver hash-table eviction rate (§5.1): since
// samples with distinct PIDs do not match in the hash table, the eviction
// rate is high.

// genGCCSource synthesizes a compiler-like image: many procedures spread
// over the I-cache, each a small loop with branches, called in sequence.
func genGCCSource(procs, repeats int) string {
	var b strings.Builder
	b.WriteString("main:\n")
	fmt.Fprintf(&b, "\tlda s3, %d(zero)\n", repeats)
	b.WriteString(".passes:\n")
	for i := 0; i < procs; i++ {
		fmt.Fprintf(&b, "\tbsr ra, pass%d\n", i)
	}
	b.WriteString("\tsubq s3, 1, s3\n")
	b.WriteString("\tbne s3, .passes\n")
	b.WriteString("\thalt\n")
	for i := 0; i < procs; i++ {
		// Four body templates rotated for texture: token scan, hash probe,
		// tree walk arithmetic, and emit loop. a0 = token buffer.
		fmt.Fprintf(&b, "pass%d:\n", i)
		switch i % 4 {
		case 0: // token scan with data-dependent branch
			fmt.Fprintf(&b, `	lda t0, %d(zero)
	bis a0, zero, t1
.p%dl:
	ldq t2, 0(t1)
	and t2, 0x1f, t3
	beq t3, .p%ds
	addq t4, t3, t4
.p%ds:
	lda t1, 8(t1)
	subq t0, 1, t0
	bne t0, .p%dl
	ret (ra)
`, 20+i%7, i, i, i, i)
		case 1: // hash probe
			fmt.Fprintf(&b, `	lda t0, %d(zero)
	ldq t5, 0(a0)
.p%dl:
	sll t5, 3, t2
	xor t5, t2, t5
	and t5, 0xff, t3
	s8addq t3, a1, t6
	ldq t2, 0(t6)
	addq t2, 1, t2
	stq t2, 0(t6)
	srl t5, 2, t5
	addq t5, t0, t5
	subq t0, 1, t0
	bne t0, .p%dl
	ret (ra)
`, 14+i%5, i, i)
		case 2: // expression-tree arithmetic
			fmt.Fprintf(&b, `	lda t0, %d(zero)
	lda t1, 3(zero)
.p%dl:
	s4addq t1, t0, t2
	sll t2, 2, t3
	subq t3, t1, t1
	and t1, 0x7f, t1
	cmplt t1, 0x40, t4
	beq t4, .p%ds
	addq t1, 5, t1
.p%ds:
	subq t0, 1, t0
	bne t0, .p%dl
	ret (ra)
`, 18+i%6, i, i, i, i)
		default: // emit loop (stores)
			fmt.Fprintf(&b, `	lda t0, %d(zero)
	bis a2, zero, t1
	lda t9, 8191(zero)
.p%dl:
	stq t0, 0(t1)
	lda t1, 8(t1)
	and t1, t9, t2
	bne t2, .p%dc
	bis a2, zero, t1
.p%dc:
	subq t0, 1, t0
	bne t0, .p%dl
	ret (ra)
`, 16+i%5, i, i, i, i)
		}
	}
	return b.String()
}

func setupGCC(ctx *Ctx) error {
	const nprocs = 14 // distinct compiler invocations (the paper ran 56)
	src := genGCCSource(48, ctx.scaled(30))
	for i := 0; i < nprocs; i++ {
		p, err := newProcess(ctx, fmt.Sprintf("gcc[%d]", i), "/usr/bin/gcc", src)
		if err != nil {
			return err
		}
		p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
		p.Regs.WriteI(alpha.RegA1, loader.HeapBase+1<<20)
		p.Regs.WriteI(alpha.RegA2, loader.HeapBase+2<<20)
		fillMemory(p, loader.HeapBase, 2048, uint64(100+i))
	}
	return nil
}

// compress-like: bit-twiddling codec loop.
const compressSrc = `
main:
	; a0 = input, a1 = table, a2 = output, a3 = repeats
.rep:
	bis  a0, zero, t1
	bis  a2, zero, t2
	lda  t0, 4000(zero)
	lda  t9, 511(zero)
.code:
	ldq  t3, 0(t1)
	srl  t3, 9, t4
	xor  t3, t4, t4
	and  t4, t9, t5
	s8addq t5, a1, t6
	ldq  t7, 0(t6)
	addq t7, t3, t7
	and  t7, 0xff, t8
	beq  t8, .rare
	stq  t7, 0(t2)
	lda  t2, 8(t2)
.rare:
	lda  t1, 8(t1)
	subq t0, 1, t0
	bne  t0, .code
	subq a3, 1, a3
	bne  a3, .rep
	halt
`

// li-like: lisp interpreter flavor — pointer chasing through cons cells.
const liSrc = `
main:
	; a0 = head of a linked list of cons cells, a3 = repeats
.rep:
	bis  a0, zero, t1
	lda  t0, 6000(zero)
.chase:
	ldq  t2, 0(t1)        ; car
	ldq  t1, 8(t1)        ; cdr (next pointer)
	and  t2, 0x3, t3
	beq  t3, .atom
	addq t4, t2, t4
.atom:
	subq t0, 1, t0
	bne  t0, .chase
	subq a3, 1, a3
	bne  a3, .rep
	halt
`

// go-like: game-tree evaluation flavor — compare-heavy branchy code.
const goSrc = `
main:
	; a0 = board array, a3 = repeats
.rep:
	bis  a0, zero, t1
	lda  t0, 5000(zero)
	lda  t5, 0(zero)
	lda  t10, 16383(zero)
.eval:
	ldq  t2, 0(t1)
	ldq  t3, 8(t1)
	cmplt t2, t3, t4
	beq  t4, .right
	addq t5, t2, t5
	sll  t5, 1, t5
	br   .next
.right:
	subq t5, t3, t5
	srl  t5, 1, t5
.next:
	zapnot t5, 0x3, t5
	lda  t1, 16(t1)
	and  t1, t10, t6
	bne  t6, .nowrap
	bis  a0, zero, t1
.nowrap:
	subq t0, 1, t0
	bne  t0, .eval
	subq a3, 1, a3
	bne  a3, .rep
	halt
`

func setupSimple(name, path, src string, repeats int, listChase bool) func(*Ctx) error {
	return func(ctx *Ctx) error {
		p, err := newProcess(ctx, name, path, src)
		if err != nil {
			return err
		}
		p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
		p.Regs.WriteI(alpha.RegA1, loader.HeapBase+1<<20)
		p.Regs.WriteI(alpha.RegA2, loader.HeapBase+2<<20)
		p.Regs.WriteI(alpha.RegA3, uint64(ctx.scaled(repeats)))
		if listChase {
			buildConsList(p, loader.HeapBase, 4096)
		} else {
			fillMemory(p, loader.HeapBase, 8192, 7)
			fillMemory(p, loader.HeapBase+1<<20, 1024, 9)
		}
		return nil
	}
}

// buildConsList lays out a pseudo-random circular linked list of (car, cdr)
// cells so the li-like chase has data-dependent addresses.
func buildConsList(p *loader.Process, base uint64, cells int) {
	perm := make([]int, cells)
	for i := range perm {
		perm[i] = i
	}
	x := uint64(0x9e3779b9)
	for i := cells - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := int(x % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < cells; i++ {
		addr := base + uint64(perm[i])*16
		next := base + uint64(perm[(i+1)%cells])*16
		p.Mem.Store(addr, 8, uint64(i)*3+1) // car
		p.Mem.Store(addr+8, 8, next)        // cdr
	}
}

func init() {
	register(Spec{
		Name:        "gcc",
		Description: "gcc-like: many distinct-PID compiler invocations over a large code footprint (high hash-table eviction)",
		Setup:       setupGCC,
	})
	register(Spec{
		Name:        "compress",
		Description: "compress-like bit-twiddling codec loop",
		Setup:       setupSimple("compress", "/usr/bin/compress", compressSrc, 500, false),
	})
	register(Spec{
		Name:        "li",
		Description: "li-like pointer chasing through cons cells",
		Setup:       setupSimple("li", "/usr/bin/li", liSrc, 400, true),
	})
	register(Spec{
		Name:        "go",
		Description: "go-like branchy game-tree evaluation",
		Setup:       setupSimple("go", "/usr/bin/go", goSrc, 400, false),
	})
}
