// Package stats provides the small statistical toolkit the evaluation
// harness needs: means, sample standard deviations, 95% confidence
// intervals, Pearson correlation, and histogram bucketing.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tTable95 holds two-sided 95% Student-t critical values for df = 1..30;
// beyond 30 the normal approximation 1.96 is used.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// T95 returns the two-sided 95% t critical value for the given degrees of
// freedom.
func T95(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.96
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return T95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// MinMax returns the extrema (0, 0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples (0 when undefined).
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram buckets weighted observations into fixed-width bins over
// [lo, hi); out-of-range values clamp into the end bins, matching the
// "<-45%" / ">45%" edge buckets of the paper's Figures 8 and 9.
type Histogram struct {
	Lo, Hi  float64
	Width   float64
	Buckets []float64 // weight per bucket
	Total   float64
}

// NewHistogram builds a histogram with the given bin width.
func NewHistogram(lo, hi, width float64) *Histogram {
	if width <= 0 || hi <= lo {
		panic("stats: bad histogram geometry")
	}
	n := int(math.Ceil((hi - lo) / width))
	return &Histogram{Lo: lo, Hi: hi, Width: width, Buckets: make([]float64, n)}
}

// Add records an observation with the given weight.
func (h *Histogram) Add(x, weight float64) {
	i := int(math.Floor((x - h.Lo) / h.Width))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i] += weight
	h.Total += weight
}

// Fraction returns bucket i's share of the total weight.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return h.Buckets[i] / h.Total
}

// BucketLabel returns a human-readable range label for bucket i.
func (h *Histogram) BucketLabel(i int) (lo, hi float64) {
	lo = h.Lo + float64(i)*h.Width
	return lo, lo + h.Width
}

// FractionWithin returns the share of weight with |x| <= bound, assuming a
// histogram centered at zero.
func (h *Histogram) FractionWithin(bound float64) float64 {
	if h.Total == 0 {
		return 0
	}
	var w float64
	for i := range h.Buckets {
		lo, hi := h.BucketLabel(i)
		if lo >= -bound-1e-12 && hi <= bound+1e-12 {
			w += h.Buckets[i]
		}
	}
	return w / h.Total
}
