package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Errorf("mean = %v", m)
	}
	if s := StdDev(xs); !approx(s, 2.138, 0.001) {
		t.Errorf("stddev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/single-element cases")
	}
}

func TestCI95(t *testing.T) {
	// n=10, sd=1 -> CI = 2.262/sqrt(10).
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i)
	}
	sd := StdDev(xs)
	want := 2.262 * sd / math.Sqrt(10)
	if ci := CI95(xs); !approx(ci, want, 1e-9) {
		t.Errorf("CI95 = %v, want %v", ci, want)
	}
	if CI95([]float64{5}) != 0 {
		t.Error("single sample CI should be 0")
	}
}

func TestT95(t *testing.T) {
	if !approx(T95(1), 12.706, 1e-9) || !approx(T95(9), 2.262, 1e-9) {
		t.Error("t table wrong")
	}
	if !approx(T95(100), 1.96, 1e-9) {
		t.Error("large df should use normal approximation")
	}
	if !math.IsNaN(T95(0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	min, max := MinMax(xs)
	if min != 1 || max != 5 {
		t.Errorf("minmax = %v, %v", min, max)
	}
	if m := Median(xs); m != 3 {
		t.Errorf("median = %v", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Correlation(xs, ys); !approx(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Correlation(xs, neg); !approx(r, -1, 1e-12) {
		t.Errorf("negative correlation = %v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r := Correlation(xs, flat); r != 0 {
		t.Errorf("flat correlation = %v", r)
	}
	if Correlation(xs, xs[:3]) != 0 {
		t.Error("mismatched lengths should return 0")
	}
}

// Property: correlation is symmetric and within [-1, 1].
func TestCorrelationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs, ys := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r1 := Correlation(xs, ys)
		r2 := Correlation(ys, xs)
		return approx(r1, r2, 1e-9) && r1 >= -1.0000001 && r1 <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	// The Figure 8 geometry: ±45% range in 5% buckets.
	h := NewHistogram(-0.45, 0.45, 0.05)
	if len(h.Buckets) != 18 {
		t.Fatalf("buckets = %d", len(h.Buckets))
	}
	h.Add(0.01, 10)  // in (0, 5%]
	h.Add(-0.03, 20) // in [-5%, 0)
	h.Add(2.0, 5)    // clamps into the top bucket
	h.Add(-2.0, 5)   // clamps into the bottom bucket
	if h.Total != 40 {
		t.Errorf("total = %v", h.Total)
	}
	if h.Buckets[0] != 5 || h.Buckets[17] != 5 {
		t.Errorf("edge buckets = %v, %v", h.Buckets[0], h.Buckets[17])
	}
	if got := h.FractionWithin(0.05); !approx(got, 30.0/40, 1e-12) {
		t.Errorf("within 5%% = %v", got)
	}
	if got := h.FractionWithin(0.45); !approx(got, 1, 1e-12) {
		t.Errorf("within 45%% = %v (clamped values count)", got)
	}
	lo, hi := h.BucketLabel(9)
	if !approx(lo, 0, 1e-12) || !approx(hi, 0.05, 1e-12) {
		t.Errorf("bucket 9 = [%v, %v)", lo, hi)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry should panic")
		}
	}()
	NewHistogram(1, 0, 0.1)
}
