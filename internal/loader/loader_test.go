package loader

import (
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/image"
)

func mkImage(name, path string, kind image.Kind, procs int) *image.Image {
	src := ""
	for i := 0; i < procs; i++ {
		src += string(rune('a'+i)) + name + ":\n nop\n ret (ra)\n"
	}
	return image.New(name, path, kind, alpha.MustAssemble(src))
}

func testLoader() *Loader {
	kernel := mkImage("vmunix", "/vmunix", image.KindKernel, 3)
	return New(kernel)
}

func TestNewProcessMappings(t *testing.T) {
	l := testLoader()
	exec := mkImage("app", "/bin/app", image.KindExecutable, 2)
	lib := mkImage("libc.so", "/usr/shlib/libc.so", image.KindShared, 2)
	p, err := l.NewProcess("app", exec, lib)
	if err != nil {
		t.Fatal(err)
	}
	if p.PC != UserTextBase {
		t.Errorf("PC = %#x", p.PC)
	}
	if got := p.Regs.ReadI(alpha.RegSP); got != StackBase {
		t.Errorf("sp = %#x", got)
	}
	if len(p.Mappings()) != 3 {
		t.Fatalf("mappings = %d, want 3 (exec, lib, kernel)", len(p.Mappings()))
	}

	im, off, ok := p.Lookup(UserTextBase + 4)
	if !ok || im.Name != "app" || off != 4 {
		t.Errorf("Lookup(text+4) = %v, %d, %v", im, off, ok)
	}
	im, off, ok = p.Lookup(SharedLibBase)
	if !ok || im.Name != "libc.so" || off != 0 {
		t.Errorf("Lookup(lib) = %v, %d, %v", im, off, ok)
	}
	im, _, ok = p.Lookup(KernelBase + 8)
	if !ok || im.Kind != image.KindKernel {
		t.Errorf("Lookup(kernel) = %v, %v", im, ok)
	}
	if _, _, ok := p.Lookup(0xdead); ok {
		t.Error("bogus address resolved")
	}
	if _, _, ok := p.Lookup(UserTextBase + exec.Size()); ok {
		t.Error("address just past image resolved")
	}
}

func TestLookupCacheCorrectness(t *testing.T) {
	l := testLoader()
	exec := mkImage("app", "/bin/app", image.KindExecutable, 2)
	lib := mkImage("libc.so", "/usr/shlib/libc.so", image.KindShared, 2)
	p, err := l.NewProcess("app", exec, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate lookups across mappings; the cache must never return a
	// stale mapping.
	addrs := []uint64{UserTextBase, SharedLibBase + 4, KernelBase, UserTextBase + 8}
	names := []string{"app", "libc.so", "vmunix", "app"}
	for round := 0; round < 3; round++ {
		for i, a := range addrs {
			im, _, ok := p.Lookup(a)
			if !ok || im.Name != names[i] {
				t.Fatalf("round %d: Lookup(%#x) = %v", round, a, im)
			}
		}
	}
}

func TestNotifications(t *testing.T) {
	l := testLoader()
	var notes []Notification
	l.Notify = func(n Notification) { notes = append(notes, n) }

	exec := mkImage("app", "/bin/app", image.KindExecutable, 1)
	lib := mkImage("libx.so", "/usr/shlib/libx.so", image.KindShared, 1)
	p, err := l.NewProcess("app", exec, lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 3 {
		t.Fatalf("notifications = %d, want 3", len(notes))
	}
	if notes[0].Source != SourceExec || notes[0].Path != "/bin/app" {
		t.Errorf("exec note = %+v", notes[0])
	}
	if notes[1].Source != SourceLoader || notes[1].Path != "/usr/shlib/libx.so" {
		t.Errorf("lib note = %+v", notes[1])
	}
	if notes[2].Kind != image.KindKernel {
		t.Errorf("kernel note = %+v", notes[2])
	}
	for _, n := range notes {
		if n.PID != p.PID {
			t.Errorf("note PID = %d, want %d", n.PID, p.PID)
		}
	}
}

func TestScan(t *testing.T) {
	l := testLoader() // no Notify subscriber: notifications dropped
	exec := mkImage("app", "/bin/app", image.KindExecutable, 1)
	if _, err := l.NewProcess("app", exec); err != nil {
		t.Fatal(err)
	}
	exec2 := mkImage("app2", "/bin/app2", image.KindExecutable, 1)
	p2, err := l.NewProcess("app2", exec2)
	if err != nil {
		t.Fatal(err)
	}
	p2.State = ProcExited

	var notes []Notification
	l.Scan(func(n Notification) { notes = append(notes, n) })
	// Only the live process: exec + kernel.
	if len(notes) != 2 {
		t.Fatalf("scan notes = %d, want 2: %+v", len(notes), notes)
	}
	for _, n := range notes {
		if n.Source != SourceScan {
			t.Errorf("scan note source = %v", n.Source)
		}
	}
}

func TestSharedImageRegistration(t *testing.T) {
	l := testLoader()
	libA := mkImage("lib.so", "/usr/shlib/lib.so", image.KindShared, 1)
	libB := mkImage("lib.so", "/usr/shlib/lib.so", image.KindShared, 1)
	ra := l.Register(libA)
	rb := l.Register(libB)
	if ra != rb {
		t.Error("same path registered as two images")
	}
	if ra.ID == 0 {
		t.Error("image ID not assigned")
	}
	if got, ok := l.Image(ra.ID); !ok || got != ra {
		t.Error("Image lookup failed")
	}
}

func TestDistinctPIDs(t *testing.T) {
	l := testLoader()
	seen := make(map[uint32]bool)
	for i := 0; i < 5; i++ {
		exec := mkImage("app", "/bin/app", image.KindExecutable, 1)
		p, err := l.NewProcess("app", exec)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.PID] {
			t.Fatalf("duplicate PID %d", p.PID)
		}
		seen[p.PID] = true
	}
	if got := len(l.Processes()); got != 5 {
		t.Errorf("processes = %d", got)
	}
}

func TestMapOverlapRejected(t *testing.T) {
	l := testLoader()
	exec := mkImage("app", "/bin/app", image.KindExecutable, 1)
	p, err := l.NewProcess("app", exec)
	if err != nil {
		t.Fatal(err)
	}
	other := mkImage("bad", "/bin/bad", image.KindExecutable, 1)
	other.ID = 99
	if err := p.Map(other, UserTextBase+4); err == nil {
		t.Error("overlapping mapping accepted")
	}
}

func TestImageLookupHelpers(t *testing.T) {
	l := testLoader()
	exec := mkImage("app", "/bin/app", image.KindExecutable, 1)
	if _, err := l.NewProcess("app", exec); err != nil {
		t.Fatal(err)
	}
	im, ok := l.ImageByPath("/bin/app")
	if !ok || im.Name != "app" {
		t.Errorf("ImageByPath = %v, %v", im, ok)
	}
	if _, ok := l.ImageByPath("/nope"); ok {
		t.Error("bogus path resolved")
	}
	images := l.Images()
	if len(images) != 2 { // kernel + app
		t.Fatalf("images = %d", len(images))
	}
	if images[0].ID >= images[1].ID {
		t.Error("images not sorted by ID")
	}
	if l.Kernel().Kind != image.KindKernel {
		t.Error("kernel accessor wrong")
	}
}

func TestRegisterTransform(t *testing.T) {
	l := testLoader()
	exec := mkImage("app", "/bin/app", image.KindExecutable, 2)
	calls := 0
	l.Transform = func(im *image.Image) *image.Image {
		calls++
		if im.Path != "/bin/app" {
			return nil // leave others alone
		}
		rw := *im
		rw.Name = "app(rewritten)"
		return &rw
	}

	p, err := l.NewProcess("app", exec)
	if err != nil {
		t.Fatal(err)
	}
	im, _, ok := p.Lookup(UserTextBase)
	if !ok || im.Name != "app(rewritten)" {
		t.Fatalf("process maps %q, want the transformed image", im.Name)
	}
	if got, _ := l.ImageByPath("/bin/app"); got.Name != "app(rewritten)" {
		t.Error("registry holds the untransformed image")
	}

	// Re-registering the same path must hit the dedup cache, not transform
	// again: a second process shares the rewritten image.
	before := calls
	p2, err := l.NewProcess("app2", mkImage("app", "/bin/app", image.KindExecutable, 2))
	if err != nil {
		t.Fatal(err)
	}
	if calls != before {
		t.Errorf("transform ran %d more times on a deduplicated path", calls-before)
	}
	im2, _, _ := p2.Lookup(UserTextBase)
	if im2 != im {
		t.Error("second process does not share the transformed image")
	}

	// A nil return keeps the original.
	l2 := testLoader()
	l2.Transform = func(*image.Image) *image.Image { return nil }
	orig := mkImage("raw", "/bin/raw", image.KindExecutable, 1)
	if got := l2.Register(orig); got != orig {
		t.Error("nil transform result replaced the image")
	}
}
