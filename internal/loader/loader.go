// Package loader models the pieces of the operating system DCPI hooks into
// to learn where images live: the dynamic system loader (/sbin/loader), the
// kernel exec-path recognizer, and the startup scan of already-running
// processes (paper §4.3.2). It owns processes, their address spaces, and
// their image mappings.
package loader

import (
	"fmt"
	"sort"

	"dcpi/internal/alpha"
	"dcpi/internal/image"
	"dcpi/internal/mem"
)

// Address-space layout constants.
const (
	// UserTextBase is where a process's main executable is mapped.
	UserTextBase uint64 = 0x1_2000_0000
	// SharedLibBase is where shared libraries are mapped (packed upward).
	SharedLibBase uint64 = 0x3f_8000_0000
	// StackBase is the top of the initial stack.
	StackBase uint64 = 0x1_4000_0000
	// HeapBase is where workloads place their data arrays.
	HeapBase uint64 = 0x1_6000_0000
	// KernelBase marks the start of kernel space: the kernel image (vmunix)
	// is mapped here in every context. Addresses at or above KernelBase are
	// kernel addresses.
	KernelBase uint64 = 1 << 40
	// KernelDataBase is where kernel data structures live.
	KernelDataBase uint64 = KernelBase + 0x1000_0000
)

// Source says which mechanism reported a mapping, mirroring the three
// loadmap sources in the paper.
type Source uint8

const (
	SourceLoader Source = iota // modified /sbin/loader notification
	SourceExec                 // kernel exec-path recognizer
	SourceScan                 // daemon startup scan of live processes
)

func (s Source) String() string {
	switch s {
	case SourceLoader:
		return "loader"
	case SourceExec:
		return "exec"
	case SourceScan:
		return "scan"
	}
	return fmt.Sprintf("source(%d)", uint8(s))
}

// Notification is one loadmap event delivered to the profiling daemon.
type Notification struct {
	PID     uint32
	ImageID uint32
	Path    string
	Base    uint64
	Size    uint64
	Kind    image.Kind
	Source  Source
}

// Mapping places an image at a base address within a process.
type Mapping struct {
	Image *image.Image
	Base  uint64
}

// End returns the first address past the mapping.
func (m Mapping) End() uint64 { return m.Base + m.Image.Size() }

// ProcState is a process's scheduling state.
type ProcState uint8

const (
	ProcRunnable ProcState = iota
	ProcBlocked
	ProcExited
)

// Process is one simulated process: an address space, register state, and
// image mappings.
type Process struct {
	PID  uint32
	Name string

	Regs alpha.Regs
	PC   uint64
	Mem  *mem.Sparse // user portion of the address space

	State  ProcState
	WakeAt int64 // cycle at which a blocked process becomes runnable

	// Kernel-mode bookkeeping: while servicing a syscall or interrupt the
	// process executes kernel code with a saved user resume PC.
	InKernel   bool
	SyscallRet uint64     // user PC to resume at after the syscall (retsys)
	SyscallNo  uint64     // v0 captured at callsys
	IntrRet    uint64     // PC to resume at after an interrupt (rti)
	IntrRegs   alpha.Regs // register file saved by PALcode at interrupt entry

	mappings []Mapping // sorted by base
	lastHit  int       // mapping-lookup cache index
}

// Map adds an image mapping. Mappings must not overlap.
func (p *Process) Map(im *image.Image, base uint64) error {
	for _, m := range p.mappings {
		if base < m.End() && m.Base < base+im.Size() {
			return fmt.Errorf("loader: mapping %s at %#x overlaps %s", im.Name, base, m.Image.Name)
		}
	}
	p.mappings = append(p.mappings, Mapping{im, base})
	sort.Slice(p.mappings, func(i, j int) bool { return p.mappings[i].Base < p.mappings[j].Base })
	p.lastHit = 0
	return nil
}

// Mappings returns the process's mappings, sorted by base address.
func (p *Process) Mappings() []Mapping { return p.mappings }

// Lookup resolves a virtual address to (image, offset). It is on the
// simulator's per-instruction fast path, so it caches the last mapping hit.
func (p *Process) Lookup(addr uint64) (*image.Image, uint64, bool) {
	if n := len(p.mappings); n > 0 {
		if m := p.mappings[p.lastHit]; addr >= m.Base && addr < m.End() {
			return m.Image, addr - m.Base, true
		}
	}
	i := sort.Search(len(p.mappings), func(i int) bool { return p.mappings[i].Base > addr })
	if i == 0 {
		return nil, 0, false
	}
	m := p.mappings[i-1]
	if addr >= m.End() {
		return nil, 0, false
	}
	p.lastHit = i - 1
	return m.Image, addr - m.Base, true
}

// Loader registers images, creates processes, and emits loadmap
// notifications to a subscriber (the profiling daemon).
type Loader struct {
	images      map[uint32]*image.Image
	byPath      map[string]*image.Image
	nextImageID uint32
	nextPID     uint32
	kernel      *image.Image
	procs       []*Process

	// Transform, when set, rewrites images as they are registered — the
	// hook continuous optimization uses to substitute re-laid-out code for
	// the original image (paper §7: the profile database feeds a binary
	// rewriter and the modified image is what subsequently runs). It runs
	// once per distinct path, before ID assignment, so every process maps
	// the transformed image and all samples attribute to its layout.
	// Returning the input unchanged (or nil) keeps the original.
	Transform func(*image.Image) *image.Image
	// Notify receives loadmap events as they happen; nil drops them (the
	// daemon can still recover mappings via Scan, as at daemon startup).
	Notify func(Notification)
	// NotifyExit is called when a process terminates, letting the daemon
	// reap its per-process data structures (paper §4.3.1: the daemon
	// "discards data structures associated with terminated processes").
	NotifyExit func(pid uint32)
}

// New creates a loader with the given kernel image; the kernel is registered
// and implicitly mapped at KernelBase in every process.
func New(kernel *image.Image) *Loader {
	l := &Loader{
		images:      make(map[uint32]*image.Image),
		byPath:      make(map[string]*image.Image),
		nextImageID: 1,
		nextPID:     100,
	}
	l.kernel = l.Register(kernel)
	return l
}

// Register assigns an image ID. Registering the same path twice returns the
// existing image (shared libraries are shared).
func (l *Loader) Register(im *image.Image) *image.Image {
	if existing, ok := l.byPath[im.Path]; ok {
		return existing
	}
	if l.Transform != nil {
		if rw := l.Transform(im); rw != nil {
			im = rw
		}
	}
	im.ID = l.nextImageID
	l.nextImageID++
	l.images[im.ID] = im
	l.byPath[im.Path] = im
	return im
}

// Image returns a registered image by ID.
func (l *Loader) Image(id uint32) (*image.Image, bool) {
	im, ok := l.images[id]
	return im, ok
}

// ImageByPath returns a registered image by filesystem path.
func (l *Loader) ImageByPath(path string) (*image.Image, bool) {
	im, ok := l.byPath[path]
	return im, ok
}

// Images returns all registered images.
func (l *Loader) Images() []*image.Image {
	out := make([]*image.Image, 0, len(l.images))
	for _, im := range l.images {
		out = append(out, im)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Kernel returns the kernel image.
func (l *Loader) Kernel() *image.Image { return l.kernel }

// NewProcess creates a process running exec with the given shared libraries
// mapped, and emits loadmap notifications: the executable through the
// exec-path recognizer, shared libraries through the dynamic loader.
func (l *Loader) NewProcess(name string, exec *image.Image, shared ...*image.Image) (*Process, error) {
	exec = l.Register(exec)
	p := &Process{
		PID:  l.nextPID,
		Name: name,
		Mem:  mem.NewSparse(),
	}
	l.nextPID++

	if err := p.Map(exec, UserTextBase); err != nil {
		return nil, err
	}
	l.notify(p, exec, UserTextBase, SourceExec)

	base := SharedLibBase
	for _, sl := range shared {
		sl = l.Register(sl)
		// Page-align each library's base.
		if err := p.Map(sl, base); err != nil {
			return nil, err
		}
		l.notify(p, sl, base, SourceLoader)
		base += (sl.Size() + mem.PageSize - 1) &^ (mem.PageSize - 1)
	}

	// The kernel is visible in every context.
	if err := p.Map(l.kernel, KernelBase); err != nil {
		return nil, err
	}
	l.notify(p, l.kernel, KernelBase, SourceExec)

	p.PC = UserTextBase
	p.Regs.WriteI(alpha.RegSP, StackBase)
	l.procs = append(l.procs, p)
	return p, nil
}

func (l *Loader) notify(p *Process, im *image.Image, base uint64, src Source) {
	if l.Notify == nil {
		return
	}
	l.Notify(Notification{
		PID:     p.PID,
		ImageID: im.ID,
		Path:    im.Path,
		Base:    base,
		Size:    im.Size(),
		Kind:    im.Kind,
		Source:  src,
	})
}

// Processes returns all processes created so far.
func (l *Loader) Processes() []*Process { return l.procs }

// ProcessExited reports a termination to the exit subscriber.
func (l *Loader) ProcessExited(pid uint32) {
	if l.NotifyExit != nil {
		l.NotifyExit(pid)
	}
}

// Scan re-emits notifications for every live process's mappings, as the
// daemon does at startup for processes that predate it (source = scan).
func (l *Loader) Scan(notify func(Notification)) {
	for _, p := range l.procs {
		if p.State == ProcExited {
			continue
		}
		for _, m := range p.mappings {
			notify(Notification{
				PID:     p.PID,
				ImageID: m.Image.ID,
				Path:    m.Image.Path,
				Base:    m.Base,
				Size:    m.Image.Size(),
				Kind:    m.Image.Kind,
				Source:  SourceScan,
			})
		}
	}
}
