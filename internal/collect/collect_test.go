package collect

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcpi/internal/fleet"
	"dcpi/internal/obs"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
	"dcpi/internal/tsdb"
)

func openStore(t *testing.T) *tsdb.DB {
	t.Helper()
	db, err := tsdb.Open(filepath.Join(t.TempDir(), "tsdb"), tsdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func targetsOf(f *fleet.Fleet) []Target {
	var ts []Target
	for _, m := range f.Machines {
		ts = append(ts, Target{Name: m.Name, URL: m.URL})
	}
	return ts
}

// groundTruthSamples reads a machine's profile database directly and sums
// one image's samples for an event at an epoch.
func groundTruthSamples(t *testing.T, dbDir, image string, ev sim.Event, epoch int) uint64 {
	t.Helper()
	db, err := profiledb.OpenReader(dbDir)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := db.ProfilesAt(epoch)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, p := range profiles {
		if p.ImagePath == image && p.Event == ev {
			total += p.Total()
		}
	}
	return total
}

func TestScrapeFleetExactlyOnce(t *testing.T) {
	f, err := fleet.Start(fleet.Options{
		Dir:          t.TempDir(),
		Machines:     3,
		Seed:         42,
		Scale:        0.05,
		FaultMachine: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.AdvanceEpochs(3); err != nil {
		t.Fatal(err)
	}

	store := openStore(t)
	reg := obs.NewRegistry()
	c := New(Config{
		Targets: targetsOf(f),
		Timeout: 5 * time.Second,
		Backoff: time.Millisecond,
		DB:      store,
		Obs:     obs.Hooks{Registry: reg},
	})

	sum := c.ScrapeOnce(context.Background())
	if sum.Failed != 0 {
		t.Fatalf("round 1 failures: %+v %+v", sum, c.Statuses())
	}
	if sum.EpochsIngested != 9 {
		t.Fatalf("round 1 ingested %d epochs, want 9 (3 machines x 3 epochs)", sum.EpochsIngested)
	}

	// Nothing new: exactly-once means a repeat scrape ingests zero.
	sum = c.ScrapeOnce(context.Background())
	if sum.EpochsIngested != 0 || sum.PointsIngested != 0 {
		t.Fatalf("repeat scrape re-ingested: %+v", sum)
	}

	// One more epoch per machine appears on the next round.
	if err := f.AdvanceEpoch(); err != nil {
		t.Fatal(err)
	}
	sum = c.ScrapeOnce(context.Background())
	if sum.EpochsIngested != 3 {
		t.Fatalf("incremental scrape ingested %d epochs, want 3", sum.EpochsIngested)
	}

	// Exactly-once must survive the process boundary: a brand-new
	// collector over a freshly reopened store (what a second
	// `dcpicollect -once` invocation is) resumes from the stored
	// high-water mark and re-ingests nothing.
	reopened, err := tsdb.Open(store.Dir(), tsdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(Config{
		Targets: targetsOf(f),
		Timeout: 5 * time.Second,
		Backoff: time.Millisecond,
		DB:      reopened,
	})
	sum = fresh.ScrapeOnce(context.Background())
	if sum.EpochsIngested != 0 || sum.PointsIngested != 0 {
		t.Fatalf("restarted collector re-ingested: %+v", sum)
	}

	// Every scraped point matches the per-machine database ground truth.
	for _, m := range f.Machines {
		for epoch := 1; epoch <= 4; epoch++ {
			pts := store.Select(tsdb.Matcher{
				Machine: m.Name, Event: sim.EvCycles,
				FromEpoch: uint64(epoch), ToEpoch: uint64(epoch),
			})
			if len(pts) == 0 {
				t.Fatalf("%s epoch %d: no points in store", m.Name, epoch)
			}
			for _, pt := range pts {
				want := groundTruthSamples(t, m.DBDir, pt.Image, sim.EvCycles, epoch)
				if pt.Samples != want {
					t.Errorf("%s epoch %d %s: store %d, ground truth %d",
						m.Name, epoch, pt.Image, pt.Samples, want)
				}
			}
		}
	}

	snap := reg.Snapshot()
	if snap.Counters["collect.epochs_ingested"] != 12 {
		t.Errorf("epochs_ingested metric: %v", snap.Counters["collect.epochs_ingested"])
	}
	if snap.Counters["collect.scrape_failures"] != 0 {
		t.Errorf("unexpected failures: %v", snap.Counters)
	}
	if h, ok := snap.Histograms["collect.scrape_latency_ms"]; !ok || h.Count != 9 {
		t.Errorf("latency histogram: %+v", snap.Histograms)
	}
}

func TestScrapeFaultRetryAndCatchUp(t *testing.T) {
	f, err := fleet.Start(fleet.Options{
		Dir:      t.TempDir(),
		Machines: 2,
		Seed:     7,
		Scale:    0.05,
		// Machine 0's endpoint hard-fails its first 4 requests — more than
		// round 1's attempts (1 try + 2 retries on /epochs) — then fails
		// every 3rd request, which retries absorb.
		FaultMachine:   0,
		FaultHardFails: 4,
		FaultEvery:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.AdvanceEpochs(2); err != nil {
		t.Fatal(err)
	}

	store := openStore(t)
	reg := obs.NewRegistry()
	c := New(Config{
		Targets: targetsOf(f),
		Timeout: 5 * time.Second,
		Retries: 2,
		Backoff: time.Millisecond,
		DB:      store,
		Obs:     obs.Hooks{Registry: reg},
	})

	sum := c.ScrapeOnce(context.Background())
	if sum.Failed != 1 {
		t.Fatalf("round 1: want 1 failed target, got %+v %+v", sum, c.Statuses())
	}
	var faulty TargetStatus
	for _, st := range c.Statuses() {
		if st.Name == "m00" {
			faulty = st
		}
	}
	if faulty.Failures != 1 || faulty.StaleRounds != 1 || faulty.LastError == "" {
		t.Errorf("faulty target status: %+v", faulty)
	}
	snap := reg.Snapshot()
	if snap.Counters["collect.scrape_failures"] != 1 || snap.Counters["collect.http_retries"] == 0 {
		t.Errorf("fault metrics: %+v", snap.Counters)
	}
	if snap.Gauges["collect.stale_targets"] != 1 || snap.Gauges["collect.max_stale_rounds"] != 1 {
		t.Errorf("staleness gauges: %+v", snap.Gauges)
	}

	// The fault injector's hard window is exhausted; retries absorb the
	// residual every-3rd failures and the collector catches up on every
	// epoch it missed.
	for round := 0; round < 5 && store.MaxEpoch("m00") < 2; round++ {
		c.ScrapeOnce(context.Background())
	}
	if got := store.MaxEpoch("m00"); got != 2 {
		t.Fatalf("faulty target never caught up: max epoch %d, want 2", got)
	}
	if !store.HasEpoch("m00", 1) {
		t.Error("missed epoch 1 during catch-up")
	}
	snap = reg.Snapshot()
	if snap.Gauges["collect.stale_targets"] != 0 {
		t.Errorf("stale gauge after recovery: %v", snap.Gauges["collect.stale_targets"])
	}
}

func TestAPIHandler(t *testing.T) {
	f, err := fleet.Start(fleet.Options{
		Dir:      t.TempDir(),
		Machines: 2,
		// timeshare is multi-image, so share-delta queries have signal.
		Workloads:    []string{"timeshare"},
		Seed:         11,
		Scale:        0.05,
		FaultMachine: -1,
		AnomalyAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.AdvanceEpochs(4); err != nil {
		t.Fatal(err)
	}

	store := openStore(t)
	reg := obs.NewRegistry()
	c := New(Config{
		Targets: targetsOf(f),
		Backoff: time.Millisecond,
		DB:      store,
		Obs:     obs.Hooks{Registry: reg},
	})
	if sum := c.ScrapeOnce(context.Background()); sum.Failed != 0 {
		t.Fatalf("scrape: %+v", sum)
	}

	srv := httptest.NewServer(APIHandler(store, c, reg))
	defer srv.Close()
	getJSON := func(path string, v any) *http.Response {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("GET %s: decode: %v", path, err)
			}
		}
		return resp
	}

	image := f.AnomalyImage()
	var rr RangeResponse
	getJSON("/query/range?image="+image+"&last=3", &rr)
	if rr.FromEpoch != 2 || rr.ToEpoch != 4 || len(rr.Rows) != 3 {
		t.Fatalf("range last=3: %+v", rr)
	}
	for _, row := range rr.Rows {
		if row.Machines != 2 || row.Samples == 0 || row.CPI <= 0 {
			t.Errorf("range row: %+v", row)
		}
	}
	// The anomaly (machine m01, epochs > 2) inflates samples but not
	// instructions, so the fleet CPI for the image must rise.
	if rr.Rows[2].CPI <= rr.Rows[0].CPI {
		t.Errorf("anomaly not visible in CPI: epoch2 %.4f vs epoch4 %.4f",
			rr.Rows[0].CPI, rr.Rows[2].CPI)
	}

	var tr TopResponse
	getJSON("/query/top?from=1&to=4&n=3", &tr)
	if len(tr.Rows) == 0 || tr.Rows[0].Cycles == 0 {
		t.Fatalf("top: %+v", tr)
	}

	var dr DeltaResponse
	getJSON("/query/delta?a=1-2&b=3-4", &dr)
	if len(dr.Rows) == 0 {
		t.Fatalf("delta: %+v", dr)
	}
	// The anomalous image must be the top mover, gaining share.
	if dr.Rows[0].Image != image || dr.Rows[0].DeltaPct <= 0 {
		t.Errorf("delta top row: %+v (want %s gaining)", dr.Rows[0], image)
	}

	var sts []TargetStatus
	getJSON("/targets", &sts)
	if len(sts) != 2 || sts[0].LastEpoch != 4 {
		t.Errorf("targets: %+v", sts)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "collect.scrapes") {
		t.Errorf("metrics body: %q", body[:n])
	}

	// Bad requests answer 400, not 500.
	for _, path := range []string{
		"/query/range", "/query/range?image=x&last=zero",
		"/query/delta?a=5-2&b=1-2", "/query/top?event=nosuch",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}
