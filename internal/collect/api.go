package collect

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"dcpi/internal/analysis"
	"dcpi/internal/obs"
	"dcpi/internal/sim"
	"dcpi/internal/tsdb"
)

// APIHandler serves the collector's query surface over db:
//
//	/query/range?image=PATH[&proc=NAME][&event=cycles][&from=A&to=B | &last=K]
//	/query/top[?image=PATH][&event=cycles][&from=A&to=B][&n=N]
//	                    (with image=: that image's procedures instead of images)
//	/query/delta?a=F-T&b=F-T[&event=cycles][&n=N]
//	/targets            per-target scrape status (when a collector is attached)
//	/metrics            the collector's own obs registry, flat text
//
// Epoch windows are inclusive; last=K means the K newest epochs fleet-wide.
func APIHandler(db *tsdb.DB, c *Collector, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query/range", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		image := q.Get("image")
		if image == "" {
			http.Error(w, "missing image parameter", http.StatusBadRequest)
			return
		}
		ev, from, to, err := parseCommon(q.Get("event"), q.Get("from"), q.Get("to"), q.Get("last"), db)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		proc := q.Get("proc")
		writeJSON(w, RangeResponse{
			Image: image, Proc: proc, Event: ev.String(), FromEpoch: from, ToEpoch: to,
			Rows: tsdb.RangeQueryProc(db, image, proc, ev, from, to),
		})
	})
	mux.HandleFunc("/query/top", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		ev, from, to, err := parseCommon(q.Get("event"), q.Get("from"), q.Get("to"), q.Get("last"), db)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n, err := parseN(q.Get("n"), 10)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if image := q.Get("image"); image != "" {
			writeJSON(w, TopProcsResponse{
				Image: image, Event: ev.String(), FromEpoch: from, ToEpoch: to,
				Rows: tsdb.TopProcs(db, image, ev, from, to, n),
			})
			return
		}
		writeJSON(w, TopResponse{
			Event: ev.String(), FromEpoch: from, ToEpoch: to,
			Rows: tsdb.TopImages(db, ev, from, to, n),
		})
	})
	mux.HandleFunc("/query/delta", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		ev, err := parseEvent(q.Get("event"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		aFrom, aTo, err := ParseWindow(q.Get("a"))
		if err != nil {
			http.Error(w, fmt.Sprintf("window a: %v", err), http.StatusBadRequest)
			return
		}
		bFrom, bTo, err := ParseWindow(q.Get("b"))
		if err != nil {
			http.Error(w, fmt.Sprintf("window b: %v", err), http.StatusBadRequest)
			return
		}
		n, err := parseN(q.Get("n"), 10)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, DeltaResponse{
			Event: ev.String(), AFrom: aFrom, ATo: aTo, BFrom: bFrom, BTo: bTo,
			Rows: ToDeltaRows(tsdb.TopDeltas(db, ev, aFrom, aTo, bFrom, bTo, n)),
		})
	})
	mux.HandleFunc("/targets", func(w http.ResponseWriter, r *http.Request) {
		if c == nil {
			http.Error(w, "no collector attached", http.StatusNotFound)
			return
		}
		writeJSON(w, c.Statuses())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteFlat(w)
	})
	return mux
}

// RangeResponse is the /query/range reply.
type RangeResponse struct {
	Image     string          `json:"image"`
	Proc      string          `json:"proc,omitempty"`
	Event     string          `json:"event"`
	FromEpoch uint64          `json:"from_epoch"`
	ToEpoch   uint64          `json:"to_epoch"`
	Rows      []tsdb.RangeRow `json:"rows"`
}

// TopResponse is the /query/top reply.
type TopResponse struct {
	Event     string        `json:"event"`
	FromEpoch uint64        `json:"from_epoch"`
	ToEpoch   uint64        `json:"to_epoch"`
	Rows      []tsdb.TopRow `json:"rows"`
}

// TopProcsResponse is the /query/top reply when image= narrows the
// ranking to one image's procedures.
type TopProcsResponse struct {
	Image     string         `json:"image"`
	Event     string         `json:"event"`
	FromEpoch uint64         `json:"from_epoch"`
	ToEpoch   uint64         `json:"to_epoch"`
	Rows      []tsdb.ProcRow `json:"rows"`
}

// DeltaRow mirrors analysis.DeltaRow with JSON tags and the computed
// delta, so API consumers need no arithmetic.
type DeltaRow struct {
	Image     string  `json:"image"`
	BeforePct float64 `json:"before_pct"`
	AfterPct  float64 `json:"after_pct"`
	DeltaPct  float64 `json:"delta_pct"`
}

// ToDeltaRows converts analysis share-delta rows to the API's JSON form.
func ToDeltaRows(rows []analysis.DeltaRow) []DeltaRow {
	out := make([]DeltaRow, len(rows))
	for i, r := range rows {
		out[i] = DeltaRow{Image: r.Name, BeforePct: r.BeforePct, AfterPct: r.AfterPct, DeltaPct: r.Delta()}
	}
	return out
}

// DeltaResponse is the /query/delta reply.
type DeltaResponse struct {
	Event string     `json:"event"`
	AFrom uint64     `json:"a_from"`
	ATo   uint64     `json:"a_to"`
	BFrom uint64     `json:"b_from"`
	BTo   uint64     `json:"b_to"`
	Rows  []DeltaRow `json:"rows"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func parseEvent(s string) (sim.Event, error) {
	if s == "" {
		return sim.EvCycles, nil
	}
	return sim.ParseEvent(s)
}

func parseN(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad n %q", s)
	}
	return n, nil
}

func parseEpoch(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad epoch %q", s)
	}
	return n, nil
}

// parseCommon resolves the (event, from, to) triple shared by range and
// top queries. last=K wins over from/to, selecting the K newest epochs
// present anywhere in the store.
func parseCommon(evS, fromS, toS, lastS string, db *tsdb.DB) (sim.Event, uint64, uint64, error) {
	ev, err := parseEvent(evS)
	if err != nil {
		return 0, 0, 0, err
	}
	if lastS != "" {
		k, err := strconv.ParseUint(lastS, 10, 64)
		if err != nil || k == 0 {
			return 0, 0, 0, fmt.Errorf("bad last %q", lastS)
		}
		from, to := LastWindow(db, k)
		return ev, from, to, nil
	}
	from, err := parseEpoch(fromS, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	to, err := parseEpoch(toS, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	return ev, from, to, nil
}

// LastWindow resolves last=K to the inclusive window covering the K
// newest epochs present anywhere in the store.
func LastWindow(db *tsdb.DB, k uint64) (from, to uint64) {
	max := db.FleetMaxEpoch()
	from = 1
	if max > k {
		from = max - k + 1
	}
	return from, max
}

// ParseWindow parses an inclusive epoch window "F-T" (e.g. "1-100").
func ParseWindow(s string) (uint64, uint64, error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("want FROM-TO, got %q", s)
	}
	from, err := strconv.ParseUint(a, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad from %q", a)
	}
	to, err := strconv.ParseUint(b, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad to %q", b)
	}
	if from == 0 || to < from {
		return 0, 0, fmt.Errorf("bad window %q", s)
	}
	return from, to, nil
}
