// Package collect is the fleet scraper: it pulls epoch-stamped profile
// payloads from a static set of dcpid exposition endpoints (internal/expo)
// on an interval and appends them to a labeled time-series store
// (internal/tsdb). The design follows the conprof/Prometheus pull model:
// targets are dumb and stateless, the collector owns scheduling, retry,
// and storage, and a machine that disappears simply goes stale rather
// than blocking the fleet.
//
// Each (target, epoch) pair is ingested exactly once: the exposition
// marks an epoch sealed when its metadata hits the disk (profiledb's
// write-meta-last protocol), the collector only ingests sealed epochs,
// and sealed epochs never change again.
package collect

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"dcpi/internal/expo"
	"dcpi/internal/obs"
	"dcpi/internal/sim"
	"dcpi/internal/tsdb"
)

// Target is one scrape endpoint. Name becomes the machine label on every
// point ingested from it (collector-assigned, like a Prometheus instance
// label, so a misconfigured target cannot impersonate another machine).
type Target struct {
	Name string
	URL  string // base URL, e.g. http://127.0.0.1:9111
}

// Config configures a Collector.
type Config struct {
	Targets []Target
	// Timeout bounds each HTTP request (default 5s).
	Timeout time.Duration
	// Retries is how many times a failed request is retried (default 2).
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt
	// (default 100ms).
	Backoff time.Duration
	// Parallel bounds concurrent target scrapes per round (default 4).
	Parallel int
	// DB receives every ingested point.
	DB *tsdb.DB
	// Procs asks targets for per-procedure breakdowns (?procs=1) and
	// ingests them as procedure-labeled points alongside the image-level
	// totals. Targets that cannot symbolize simply omit the breakdown.
	Procs bool
	// Obs publishes scrape metrics (collect.*) when set.
	Obs obs.Hooks
	// Client overrides the HTTP client (tests); Timeout still applies
	// per-request via context.
	Client *http.Client
}

// TargetStatus is the live state of one target.
type TargetStatus struct {
	Name        string `json:"name"`
	URL         string `json:"url"`
	LastEpoch   uint64 `json:"last_epoch"`
	Scrapes     uint64 `json:"scrapes"`
	Failures    uint64 `json:"failures"`
	StaleRounds int    `json:"stale_rounds"` // rounds since the last success
	LastError   string `json:"last_error,omitempty"`
}

// RoundSummary describes one scrape pass over all targets.
type RoundSummary struct {
	Targets        int
	Failed         int
	EpochsIngested int
	PointsIngested int
}

// Collector scrapes targets into the store.
type Collector struct {
	cfg    Config
	client *http.Client

	mu     sync.Mutex
	status map[string]*TargetStatus
	rounds uint64
}

// New builds a collector; Config.DB is required.
func New(cfg Config) *Collector {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 4
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Collector{cfg: cfg, client: client, status: map[string]*TargetStatus{}}
	for _, t := range cfg.Targets {
		st := &TargetStatus{Name: t.Name, URL: t.URL}
		// Resume from what the store already holds, so a restarted
		// collector (or a second -once invocation) never re-ingests an
		// epoch a previous process stored — exactly-once survives the
		// process boundary, not just the Collector's lifetime.
		if cfg.DB != nil {
			st.LastEpoch = cfg.DB.MaxEpoch(t.Name)
		}
		c.status[t.Name] = st
	}
	return c
}

// Statuses returns a snapshot of every target's state, sorted by name.
func (c *Collector) Statuses() []TargetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TargetStatus, 0, len(c.status))
	for _, s := range c.status {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// get fetches url into v (JSON), retrying with exponential backoff. Every
// attempt gets its own timeout; retries stop when ctx is cancelled.
func (c *Collector) get(ctx context.Context, url string, v any) error {
	reg := c.cfg.Obs.Registry
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			reg.Counter("collect.http_retries").Inc()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
		err := func() error {
			req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
			if err != nil {
				return err
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
			}
			return json.NewDecoder(resp.Body).Decode(v)
		}()
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return lastErr
}

// scrapeTarget ingests every sealed epoch the target has that the store
// does not, returning (epochs, points) ingested.
func (c *Collector) scrapeTarget(ctx context.Context, t Target) (int, int, error) {
	var epochs expo.EpochsPayload
	if err := c.get(ctx, t.URL+"/epochs", &epochs); err != nil {
		return 0, 0, err
	}
	c.mu.Lock()
	last := c.status[t.Name].LastEpoch
	c.mu.Unlock()

	var nEpochs, nPoints int
	for _, e := range epochs.Epochs {
		if !e.Sealed || uint64(e.Epoch) <= last {
			continue
		}
		url := fmt.Sprintf("%s/profiles?epoch=%d", t.URL, e.Epoch)
		if c.cfg.Procs {
			url += "&procs=1"
		}
		var pp expo.ProfilesPayload
		if err := c.get(ctx, url, &pp); err != nil {
			return nEpochs, nPoints, err
		}
		batch := tsdb.Batch{
			Machine:  t.Name,
			Workload: pp.Workload,
			Epoch:    uint64(pp.Epoch),
		}
		if pp.Meta != nil {
			batch.Wall = pp.Meta.WallCycles
			batch.Period = pp.Meta.CyclesPeriod
		}
		for _, rec := range pp.Profiles {
			ev, err := sim.ParseEvent(rec.Event)
			if err != nil {
				return nEpochs, nPoints, fmt.Errorf("epoch %d: %w", e.Epoch, err)
			}
			batch.Records = append(batch.Records, tsdb.Record{
				Image:   rec.Image,
				Event:   ev,
				Samples: rec.Samples,
				Insts:   rec.Insts,
			})
			// Per-procedure breakdown rows ride in the same batch with a
			// Proc label; queries keep the two levels apart (see
			// tsdb.Matcher), so they never double-count the image total.
			for _, ps := range rec.Procs {
				batch.Records = append(batch.Records, tsdb.Record{
					Image:   rec.Image,
					Proc:    ps.Proc,
					Event:   ev,
					Samples: ps.Samples,
				})
			}
		}
		if err := c.cfg.DB.Append(batch); err != nil {
			return nEpochs, nPoints, err
		}
		nEpochs++
		nPoints += len(batch.Records)
		last = uint64(e.Epoch)
		c.mu.Lock()
		c.status[t.Name].LastEpoch = last
		c.mu.Unlock()
	}
	return nEpochs, nPoints, nil
}

// ScrapeOnce runs one pass over every target (bounded fan-out) and
// returns the round's summary.
func (c *Collector) ScrapeOnce(ctx context.Context) RoundSummary {
	reg := c.cfg.Obs.Registry
	type result struct {
		target  Target
		epochs  int
		points  int
		elapsed time.Duration
		err     error
	}
	sem := make(chan struct{}, c.cfg.Parallel)
	results := make([]result, len(c.cfg.Targets))
	var wg sync.WaitGroup
	for i, t := range c.cfg.Targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			ne, np, err := c.scrapeTarget(ctx, t)
			results[i] = result{target: t, epochs: ne, points: np, elapsed: time.Since(start), err: err}
		}(i, t)
	}
	wg.Wait()

	sum := RoundSummary{Targets: len(c.cfg.Targets)}
	c.mu.Lock()
	c.rounds++
	for _, r := range results {
		st := c.status[r.target.Name]
		st.Scrapes++
		reg.Counter("collect.scrapes").Inc()
		reg.Histogram("collect.scrape_latency_ms", obs.ExpBuckets(0.5, 2, 14)).
			Observe(float64(r.elapsed) / float64(time.Millisecond))
		if r.err != nil {
			st.Failures++
			st.StaleRounds++
			st.LastError = r.err.Error()
			sum.Failed++
			reg.Counter("collect.scrape_failures").Inc()
		} else {
			st.StaleRounds = 0
			st.LastError = ""
		}
		sum.EpochsIngested += r.epochs
		sum.PointsIngested += r.points
	}
	var stale, maxStale int
	for _, st := range c.status {
		if st.StaleRounds > 0 {
			stale++
		}
		if st.StaleRounds > maxStale {
			maxStale = st.StaleRounds
		}
	}
	c.mu.Unlock()
	reg.Counter("collect.epochs_ingested").Add(uint64(sum.EpochsIngested))
	reg.Counter("collect.points_ingested").Add(uint64(sum.PointsIngested))
	reg.Gauge("collect.stale_targets").Set(float64(stale))
	reg.Gauge("collect.max_stale_rounds").Set(float64(maxStale))
	return sum
}

// Run scrapes on the interval until ctx is cancelled. The first pass runs
// immediately. onRound, when non-nil, observes each round's summary.
func (c *Collector) Run(ctx context.Context, interval time.Duration, onRound func(RoundSummary)) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		sum := c.ScrapeOnce(ctx)
		if onRound != nil {
			onRound(sum)
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}
