package collect

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcpi/internal/expo"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
	"dcpi/internal/tsdb"
)

// BenchmarkScrapeIngest measures one full scrape: fetch a target's epoch
// list, pull every sealed epoch's profile payload over HTTP, and append
// each as a store segment. Per op: 8 epochs x 8 images from one target.
func BenchmarkScrapeIngest(b *testing.B) {
	const epochs, images = 8, 8
	dir := b.TempDir()
	db, err := profiledb.Open(filepath.Join(dir, "machine"))
	if err != nil {
		b.Fatal(err)
	}
	for e := 1; e <= epochs; e++ {
		for i := 0; i < images; i++ {
			p := profiledb.NewProfile(filepath.Join("/usr/bin", "app")+string(rune('a'+i)), sim.EvCycles)
			for off := uint64(0); off < 64; off += 4 {
				p.Add(off, uint64(e+i)+off)
			}
			if err := db.Update(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.WriteMeta(profiledb.Meta{Workload: "bench", CyclesPeriod: 62000, WallCycles: int64(e) << 20}); err != nil {
			b.Fatal(err)
		}
		if e < epochs {
			if err := db.NewEpoch(); err != nil {
				b.Fatal(err)
			}
		}
	}
	srv := httptest.NewServer(expo.Handler(&expo.Source{
		Machine: "m00", Workload: "bench", DBDir: filepath.Join(dir, "machine"),
	}))
	defer srv.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		storeDir, err := os.MkdirTemp(dir, "store")
		if err != nil {
			b.Fatal(err)
		}
		store, err := tsdb.Open(storeDir, tsdb.Options{})
		if err != nil {
			b.Fatal(err)
		}
		c := New(Config{
			Targets: []Target{{Name: "m00", URL: srv.URL}},
			Timeout: 10 * time.Second,
			Backoff: time.Millisecond,
			DB:      store,
		})
		b.StartTimer()
		sum := c.ScrapeOnce(context.Background())
		if sum.Failed != 0 || sum.EpochsIngested != epochs {
			b.Fatalf("scrape: %+v", sum)
		}
		b.StopTimer()
		os.RemoveAll(storeDir)
		b.StartTimer()
	}
	b.ReportMetric(float64(epochs), "epochs/op")
	b.ReportMetric(float64(epochs*images), "points/op")
}
