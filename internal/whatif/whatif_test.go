package whatif

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dcpi/internal/dcpi"
	"dcpi/internal/hw"
	"dcpi/internal/runner"
)

func TestDefaultGridIsWellFormed(t *testing.T) {
	grid := DefaultGrid()
	if len(grid) < 6 {
		t.Fatalf("grid has %d points, want >= 6", len(grid))
	}
	seen := map[string]bool{}
	for _, p := range grid {
		if seen[p.Name] {
			t.Errorf("duplicate grid point %q", p.Name)
		}
		seen[p.Name] = true
		cfg, err := hw.Parse(p.Spec)
		if err != nil {
			t.Errorf("%s: spec %q does not parse: %v", p.Name, p.Spec, err)
			continue
		}
		if cfg.IsDefault() {
			t.Errorf("%s: spec %q is the default machine — the point perturbs nothing", p.Name, p.Spec)
		}
	}
	// The ISSUE's named perturbations must all be present.
	for _, want := range []string{"icache2x", "dassoc2", "itb-half", "wb-zero", "memlat2x", "l2lat2x", "issue4"} {
		if !seen[want] {
			t.Errorf("grid is missing %q", want)
		}
	}
}

func TestGridByNames(t *testing.T) {
	grid, err := GridByNames([]string{"memlat2x", "icache2x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || grid[0].Name != "memlat2x" || grid[1].Name != "icache2x" {
		t.Fatalf("subset = %+v, want memlat2x then icache2x", grid)
	}
	if _, err := GridByNames([]string{"warp9"}); err == nil {
		t.Fatal("unknown grid point accepted")
	}
}

func TestSweepRejectsNonDefaultBaseline(t *testing.T) {
	base := dcpi.Config{Workload: "compress", Scale: 0.02}
	base.HW = hw.Default()
	base.HW.ITBEntries = 24
	if _, err := Sweep(Options{Base: base}); err == nil {
		t.Fatal("Sweep accepted a perturbed baseline")
	}
}

// TestSweepCompress runs a real 3-point sweep end to end and checks the
// report's structure, the runner-cache interaction, and determinism.
func TestSweepCompress(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test simulates several runs")
	}
	grid, err := GridByNames([]string{"dcache2x", "memlat2x", "issue1"})
	if err != nil {
		t.Fatal(err)
	}
	sched := runner.New(0)
	opts := Options{
		Base:   dcpi.Config{Workload: "compress", Scale: 0.05, Seed: 3},
		Grid:   grid,
		Runner: sched,
	}
	rep, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseWall <= 0 || rep.Workload != "compress" {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(rep.Points))
	}
	if rep.Points[0].Name != "dcache2x" || rep.Points[2].Name != "issue1" {
		t.Fatalf("points out of grid order: %v %v", rep.Points[0].Name, rep.Points[2].Name)
	}
	if len(rep.Procs) == 0 || rep.Claims == 0 {
		t.Fatalf("no procedures analyzed or no claims: procs=%v claims=%d", rep.Procs, rep.Claims)
	}
	// Doubling memory latency must slow the machine down.
	mem := rep.Points[1]
	if mem.WallDeltaPct <= 0 {
		t.Errorf("memlat2x wall delta = %+.2f%%, want positive", mem.WallDeltaPct)
	}
	// issue1 is a wall-only point: no claims tested, no score.
	if is1 := rep.Points[2]; len(is1.Targets) != 0 || is1.ClaimsTested != 0 {
		t.Errorf("issue1 should be wall-only: %+v", is1)
	}
	if st := sched.Stats(); st.Simulated != 4 {
		t.Errorf("cold sweep simulated %d runs, want 4 (baseline + 3 points)", st.Simulated)
	}

	// The formatted report must mention every point and the aggregate.
	var buf bytes.Buffer
	FormatReport(&buf, rep)
	out := buf.String()
	for _, want := range []string{"dcache2x", "memlat2x", "issue1", "aggregate:", "per-cause"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}

	// JSON round-trip.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.BaseWall != rep.BaseWall || len(back.Points) != len(rep.Points) {
		t.Error("JSON round-trip lost data")
	}

	// Warm rerun through the same runner: all four runs served from the
	// single-flight cache, byte-identical report.
	rep2, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := sched.Stats()
	if st.Simulated != 4 || st.MemHits != 4 {
		t.Errorf("warm sweep stats = %+v, want 4 simulated / 4 mem hits", st)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Error("repeated sweep produced a different report")
	}
}

// BenchmarkWhatifSweep measures a warm 2-point sweep: simulations resolve
// from the runner's memory cache, so the benchmark isolates the analysis,
// diffing, and scoring cost per sweep (bench.sh -> BENCH_pr10.json).
func BenchmarkWhatifSweep(b *testing.B) {
	grid, err := GridByNames([]string{"dcache2x", "memlat2x"})
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{
		Base:   dcpi.Config{Workload: "compress", Scale: 0.05, Seed: 3},
		Grid:   grid,
		Runner: runner.New(0),
	}
	rep, err := Sweep(opts) // cold pass populates the cache
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Sweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		if r.BaseWall != rep.BaseWall {
			b.Fatal("sweep diverged")
		}
	}
	b.ReportMetric(float64(rep.Claims), "claims/sweep")
}
