// Package whatif runs hardware sensitivity sweeps: the same workload
// simulated across a grid of perturbed machine descriptions (internal/hw),
// with per-instruction stall breakdowns diffed against the baseline run.
//
// The sweep serves two purposes. First, it answers the capacity-planning
// question the paper's users asked of DCPI ("would a bigger I-cache help
// this program?") with measured numbers instead of bound arithmetic: each
// grid point reports how much wall time and which instructions' cycles
// actually moved. Second — and this is what the paper could never do on
// real hardware — each perturbation is a controlled experiment that tests
// the §6 culprit analysis itself. When the analysis blames an
// instruction's stall on the D-cache, doubling the D-cache must move that
// instruction's cycles; if it does not, the blame was wrong. Scoring every
// (instruction, cause) claim against the cycles that causally moved yields
// the precision/recall reported by cmd/dcpiwhatif (see docs/WHATIF.md).
//
// All runs go through an internal/runner pool, so grid points simulate in
// parallel, repeated sweeps deduplicate, and a persistent cache directory
// makes warm reruns pure decode work.
package whatif

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/dcpi"
	"dcpi/internal/hw"
	"dcpi/internal/runner"
	"dcpi/internal/sim"
)

// Point is one grid point: a named perturbation of the default machine.
type Point struct {
	Name string // short identifier, e.g. "icache2x"
	Desc string // human-readable description of the change
	Spec string // hw.Config spec (hw.Parse), relative to the default machine

	// Targets lists the stall causes this perturbation causally tests,
	// primary cause first: a movement at a site the analysis never blamed
	// for any target is attributed to Targets[0]. Empty means the point is
	// reported for wall-clock sensitivity only (e.g. issue width, which
	// changes the static schedule, not a dynamic-stall cause the culprit
	// analysis blames).
	Targets []analysis.Cause

	// Relief is true when the perturbation relieves the targeted stalls
	// (bigger cache: cycles should drop where the analysis blamed it) and
	// false when it aggravates them (slower memory: cycles should grow).
	// Movement is only counted in the predicted direction; movement the
	// other way is evidence about the perturbation, not about the claim.
	Relief bool
}

// DefaultGrid is the standard sensitivity sweep over the 21164-shaped
// default machine: each cache level doubled, associativity added, TLBs
// halved, an ideal write buffer, a bigger branch predictor, slower L2 and
// memory, and both narrower and wider issue.
func DefaultGrid() []Point {
	return []Point{
		{Name: "icache2x", Desc: "double the I-cache (8K to 16K)", Spec: "icache=16K/32/1",
			Targets: []analysis.Cause{analysis.CauseICache}, Relief: true},
		{Name: "dcache2x", Desc: "double the D-cache (8K to 16K)", Spec: "dcache=16K/32/1",
			Targets: []analysis.Cause{analysis.CauseDCache}, Relief: true},
		{Name: "dassoc2", Desc: "2-way D-cache at the same size", Spec: "dcache=8K/32/2",
			Targets: []analysis.Cause{analysis.CauseDCache}, Relief: true},
		{Name: "itb-half", Desc: "halve the ITB (48 to 24 entries)", Spec: "itb=24",
			Targets: []analysis.Cause{analysis.CauseITB}, Relief: false},
		{Name: "dtb-half", Desc: "halve the DTB (64 to 32 entries)", Spec: "dtb=32",
			Targets: []analysis.Cause{analysis.CauseDTB}, Relief: false},
		{Name: "wb-zero", Desc: "ideal write buffer (instant drain)", Spec: "wb=6/0",
			Targets: []analysis.Cause{analysis.CauseWB}, Relief: true},
		{Name: "pred4x", Desc: "4x branch predictor (512 to 2048)", Spec: "pred=2048",
			Targets: []analysis.Cause{analysis.CauseBranchMP}, Relief: true},
		{Name: "memlat2x", Desc: "double memory latency (80 to 160)", Spec: "memlat=160",
			Targets: []analysis.Cause{analysis.CauseICache, analysis.CauseDCache}, Relief: false},
		{Name: "l2lat2x", Desc: "double L2 latency (12 to 24)", Spec: "l2lat=24",
			Targets: []analysis.Cause{analysis.CauseICache, analysis.CauseDCache}, Relief: false},
		{Name: "issue1", Desc: "single-issue machine", Spec: "issue=1"},
		{Name: "issue4", Desc: "quad-issue machine", Spec: "issue=4"},
	}
}

// GridByNames selects the named subset of DefaultGrid, in the order given.
func GridByNames(names []string) ([]Point, error) {
	byName := map[string]Point{}
	for _, p := range DefaultGrid() {
		byName[p.Name] = p
	}
	out := make([]Point, 0, len(names))
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("whatif: unknown grid point %q (have %s)", n, gridNames())
		}
		out = append(out, p)
	}
	return out, nil
}

func gridNames() string {
	var names []string
	for _, p := range DefaultGrid() {
		names = append(names, p.Name)
	}
	b, _ := json.Marshal(names)
	return string(b)
}

// Options configures a sweep.
type Options struct {
	// Base is the baseline run configuration (workload, scale, seed).
	// Mode is forced to sim.ModeDefault — the sweep needs CYCLES samples
	// for stall breakdowns and IMISS samples for the analysis' I-cache
	// bound — and HW must be the default machine (grid specs are absolute).
	// A zero CyclesPeriod defaults to the dense analysis period (~768
	// cycles, as in the Figure 8-10 accuracy experiments): per-instruction
	// diffing needs far more samples than the paper's production period
	// delivers on short simulated runs.
	Base dcpi.Config

	// Grid lists the perturbations; nil means DefaultGrid().
	Grid []Point

	// Runner executes and caches the runs; nil builds a private one.
	Runner *runner.Runner

	// TopProcs bounds how many of the hottest procedures are analyzed and
	// scored (default 3). The sweep still reports whole-program wall
	// deltas; scoring is restricted to procedures hot enough for the
	// analysis to see.
	TopProcs int

	// MinMoveCycles is the absolute noise floor for counting an
	// instruction's cycles as "moved" and for emitting claims; 0 derives
	// a floor from the sampling period (a handful of samples' worth).
	MinMoveCycles float64
}

// PointResult is one grid point's outcome.
type PointResult struct {
	Name    string   `json:"name"`
	Spec    string   `json:"spec"`
	Desc    string   `json:"desc"`
	Targets []string `json:"targets,omitempty"`
	Relief  bool     `json:"relief"`

	Wall         int64   `json:"wall_cycles"`
	WallDeltaPct float64 `json:"wall_delta_pct"` // (wall-base)/base, percent

	// Causal movement within the analyzed procedures, in the direction
	// the perturbation predicts for its targeted causes.
	MovedCycles float64 `json:"moved_cycles"`
	MovedSites  int     `json:"moved_sites"`

	// ClaimsTested counts the baseline claims this point can test (their
	// cause is among Targets). Confirmed counts the (site, cause) claims
	// whose cycles this point moved; Missed counts sites that moved
	// without any matching claim. A tested-but-unmoved claim is NOT
	// convicted by a single point — the perturbation may simply not reach
	// that site (an L2-resident miss ignores memlat) — only by the whole
	// sweep (see Report's aggregate score).
	ClaimsTested int `json:"claims_tested"`
	Confirmed    int `json:"confirmed"`
	Missed       int `json:"missed"`
}

// CauseScore is the aggregate score for one cause across all grid points
// that target it.
type CauseScore struct {
	Cause     string  `json:"cause"`
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

// Report is a complete sweep over one workload.
type Report struct {
	Workload string  `json:"workload"`
	Scale    float64 `json:"scale"`
	Seed     uint64  `json:"seed"`

	BaseWall int64    `json:"base_wall_cycles"`
	Procs    []string `json:"procs"`  // analyzed procedures (hottest first)
	Claims   int      `json:"claims"` // culprit claims extracted from the baseline

	Points   []PointResult `json:"points"`
	PerCause []CauseScore  `json:"per_cause"`

	TotalTP          int     `json:"total_tp"`
	TotalFP          int     `json:"total_fp"`
	TotalFN          int     `json:"total_fn"`
	TotalPrecision   float64 `json:"total_precision"`
	TotalRecall      float64 `json:"total_recall"`
	TotalCycleRecall float64 `json:"total_cycle_recall"`

	// Untested lists causes the baseline analysis blamed that no grid
	// point targets — claims the sweep cannot confirm or refute.
	Untested []string `json:"untested_causes,omitempty"`
}

// procScope is one analyzed procedure of the baseline run.
type procScope struct {
	image  string
	name   string
	lo, hi uint64 // image-offset range [lo, hi)
	claims []analysis.Claim
}

// siteKey identifies one (instruction, cause) pair within a scope.
type siteKey struct {
	off   uint64
	cause analysis.Cause
}

// hasClaim reports whether the scope's analysis blamed cause at off.
func (sc *procScope) hasClaim(off uint64, cause analysis.Cause) bool {
	for _, c := range sc.claims {
		if c.Offset == off && c.Cause == cause {
			return true
		}
	}
	return false
}

// Sweep runs the grid and scores the analysis. All simulations are
// submitted up front so the runner's worker pool executes them in
// parallel; identical reruns resolve from its caches.
func Sweep(opts Options) (*Report, error) {
	base := opts.Base
	base.Mode = sim.ModeDefault
	if base.CyclesPeriod.Base == 0 {
		base.CyclesPeriod = sim.PeriodSpec{Base: 768, Spread: 192}
		base.EventPeriod = sim.PeriodSpec{Base: 384, Spread: 128}
	}
	if !base.HW.IsDefault() {
		return nil, fmt.Errorf("whatif: baseline must use the default machine (got %q)", base.HW.String())
	}
	grid := opts.Grid
	if grid == nil {
		grid = DefaultGrid()
	}
	sched := opts.Runner
	if sched == nil {
		sched = runner.New(0)
	}
	topProcs := opts.TopProcs
	if topProcs <= 0 {
		topProcs = 3
	}

	// Submit everything, then wait in grid order (deterministic output).
	basePending := sched.Submit(base)
	pendings := make([]*runner.Pending, len(grid))
	for i, pt := range grid {
		hwc, err := hw.Parse(pt.Spec)
		if err != nil {
			return nil, fmt.Errorf("whatif: grid point %s: %w", pt.Name, err)
		}
		cfg := base
		cfg.HW = hwc
		pendings[i] = sched.Submit(cfg)
	}
	baseRes, err := basePending.Wait()
	if err != nil {
		return nil, fmt.Errorf("whatif: baseline: %w", err)
	}

	period := baseRes.AvgCyclesPeriod()
	minMove := opts.MinMoveCycles
	if minMove <= 0 {
		minMove = 4 * period // a few samples' worth: below that is noise
	}

	rep := &Report{
		Workload: base.Workload,
		Scale:    base.Scale,
		Seed:     base.Seed,
		BaseWall: baseRes.Wall,
	}

	// Analyze the hottest procedures of the baseline and extract claims.
	scopes, err := analyzeTop(baseRes, topProcs, minMove)
	if err != nil {
		return nil, err
	}
	claimedCauses := map[analysis.Cause]bool{}
	for _, sc := range scopes {
		rep.Procs = append(rep.Procs, sc.name)
		rep.Claims += len(sc.claims)
		for _, c := range sc.claims {
			claimedCauses[c.Cause] = true
		}
	}

	// truth accumulates ground truth per scope across the whole grid:
	// (site, cause) -> the largest cycle movement any point produced
	// there. A claim is confirmed if any targeting point moved its site;
	// it counts as a false positive only when no point did — a single
	// perturbation may legitimately not reach a site (an L2-resident miss
	// ignores memlat), but across a grid that doubles the cache, adds
	// associativity, and slows both miss paths, a real D-cache stall
	// moves somewhere.
	truth := make([]map[siteKey]float64, len(scopes))
	for i := range truth {
		truth[i] = map[siteKey]float64{}
	}
	targeted := map[analysis.Cause]bool{}

	for i, pt := range grid {
		res, err := pendings[i].Wait()
		if err != nil {
			return nil, fmt.Errorf("whatif: grid point %s: %w", pt.Name, err)
		}
		pr := PointResult{
			Name: pt.Name, Spec: pt.Spec, Desc: pt.Desc, Relief: pt.Relief,
			Wall:         res.Wall,
			WallDeltaPct: 100 * float64(res.Wall-baseRes.Wall) / float64(baseRes.Wall),
		}
		for _, c := range pt.Targets {
			pr.Targets = append(pr.Targets, c.String())
			targeted[c] = true
		}

		for si := range scopes {
			sc := &scopes[si]
			if len(pt.Targets) == 0 {
				continue
			}
			pr.ClaimsTested += len(claimsFor(sc.claims, pt.Targets))
			for off, cyc := range movedOffsets(baseRes, res, sc, pt, minMove) {
				pr.MovedSites++
				pr.MovedCycles += cyc
				matched := false
				for _, cause := range pt.Targets {
					if sc.hasClaim(off, cause) {
						matched = true
						pr.Confirmed++
						if cyc > truth[si][siteKey{off, cause}] {
							truth[si][siteKey{off, cause}] = cyc
						}
					}
				}
				if !matched {
					// Unclaimed movement: attribute to the primary target.
					pr.Missed++
					k := siteKey{off, pt.Targets[0]}
					if cyc > truth[si][k] {
						truth[si][k] = cyc
					}
				}
			}
		}
		rep.Points = append(rep.Points, pr)
	}

	// Aggregate score: every claim testable by some grid point, against
	// the union of movement the grid produced, through the exported
	// analysis scoring hooks.
	perCause := map[analysis.Cause]analysis.Score{}
	var total analysis.Score
	for si := range scopes {
		sc := &scopes[si]
		claims := claimsFor(sc.claims, causeList(targeted))
		movements := make([]analysis.Movement, 0, len(truth[si]))
		for k, cyc := range truth[si] {
			movements = append(movements, analysis.Movement{Offset: k.off, Cause: k.cause, Cycles: cyc})
		}
		per, s := analysis.ScoreClaims(claims, movements)
		total.Add(s)
		for c, cs := range per {
			acc := perCause[c]
			acc.Add(cs)
			perCause[c] = acc
		}
	}

	for _, c := range analysis.CausesOf(perCause) {
		s := perCause[c]
		rep.PerCause = append(rep.PerCause, CauseScore{
			Cause: c.String(), TP: s.TP, FP: s.FP, FN: s.FN,
			Precision: s.Precision(), Recall: s.Recall(),
		})
	}
	rep.TotalTP, rep.TotalFP, rep.TotalFN = total.TP, total.FP, total.FN
	rep.TotalPrecision = total.Precision()
	rep.TotalRecall = total.Recall()
	rep.TotalCycleRecall = total.CycleRecall()

	var untested []string
	for c := analysis.Cause(0); c < analysis.NumCauses; c++ {
		if claimedCauses[c] && !targeted[c] {
			untested = append(untested, c.String())
		}
	}
	sort.Strings(untested)
	rep.Untested = untested
	return rep, nil
}

// analyzeTop runs the §6 analysis over the baseline's hottest procedures
// and extracts their culprit claims.
func analyzeTop(res *dcpi.Result, topProcs int, minMove float64) ([]procScope, error) {
	var scopes []procScope
	for _, row := range res.ProcRows() {
		if len(scopes) >= topProcs {
			break
		}
		if row.Procedure == "<unknown>" || row.Counts[sim.EvCycles] == 0 {
			continue
		}
		pa, err := res.AnalyzeProc(row.ImagePath, row.Procedure)
		if err != nil {
			return nil, fmt.Errorf("whatif: analyzing %s!%s: %w", row.ImagePath, row.Procedure, err)
		}
		scopes = append(scopes, procScope{
			image:  row.ImagePath,
			name:   row.Procedure,
			lo:     pa.BaseOffset,
			hi:     pa.BaseOffset + uint64(len(pa.Insts))*alpha.InstBytes,
			claims: analysis.CulpritClaims(pa, minMove),
		})
	}
	return scopes, nil
}

// claimsFor filters claims to the causes a grid point (or the whole grid)
// targets: only those claims are causally testable.
func claimsFor(claims []analysis.Claim, targets []analysis.Cause) []analysis.Claim {
	var out []analysis.Claim
	for _, c := range claims {
		for _, t := range targets {
			if c.Cause == t {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// causeList returns the set's causes in enum order.
func causeList(set map[analysis.Cause]bool) []analysis.Cause {
	var out []analysis.Cause
	for c := analysis.Cause(0); c < analysis.NumCauses; c++ {
		if set[c] {
			out = append(out, c)
		}
	}
	return out
}

// movedOffsets computes the per-instruction cycle movement one grid point
// produced in one procedure: cycle deltas between baseline and perturbed
// run, signed by the point's predicted direction, thresholded against
// sampling noise.
func movedOffsets(baseRes, res *dcpi.Result, sc *procScope, pt Point, minMove float64) map[uint64]float64 {
	period0 := baseRes.AvgCyclesPeriod()
	period1 := res.AvgCyclesPeriod()
	var c0, c1 map[uint64]uint64
	if p := baseRes.Profile(sc.image, sim.EvCycles); p != nil {
		c0 = p.Counts
	}
	if p := res.Profile(sc.image, sim.EvCycles); p != nil {
		c1 = p.Counts
	}
	out := map[uint64]float64{}
	for off := sc.lo; off < sc.hi; off += alpha.InstBytes {
		n0, n1 := c0[off], c1[off]
		if n0 == 0 && n1 == 0 {
			continue
		}
		moved := float64(n1)*period1 - float64(n0)*period0
		if pt.Relief {
			moved = -moved
		}
		// Poisson-ish noise floor: ~3 standard deviations of the larger
		// sample count, but never below the configured absolute floor.
		nmax := n0
		if n1 > nmax {
			nmax = n1
		}
		noise := 3 * math.Sqrt(float64(nmax)) * math.Max(period0, period1)
		if moved < math.Max(minMove, noise) {
			continue
		}
		out[off] = moved
	}
	return out
}

// FormatReport renders the sweep as a fixed-width table.
func FormatReport(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "what-if sweep: %s (scale %g, seed %d)\n", rep.Workload, rep.Scale, rep.Seed)
	fmt.Fprintf(w, "baseline wall %d cycles; procedures analyzed: %s; %d culprit claims\n\n",
		rep.BaseWall, joinOr(rep.Procs, "none"), rep.Claims)
	fmt.Fprintf(w, "%-10s %-22s %9s %12s %6s %7s %5s %5s\n",
		"point", "hw", "wall Δ%", "moved cyc", "sites", "tested", "conf", "miss")
	for _, p := range rep.Points {
		if len(p.Targets) == 0 {
			fmt.Fprintf(w, "%-10s %-22s %+9.2f %12s %6s %7s %5s %5s\n",
				p.Name, p.Spec, p.WallDeltaPct, "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-10s %-22s %+9.2f %12.0f %6d %7d %5d %5d\n",
			p.Name, p.Spec, p.WallDeltaPct, p.MovedCycles, p.MovedSites,
			p.ClaimsTested, p.Confirmed, p.Missed)
	}
	fmt.Fprintf(w, "\nper-cause culprit score (claims vs. cycles the whole grid moved):\n")
	for _, cs := range rep.PerCause {
		fmt.Fprintf(w, "  %-18s TP %3d  FP %3d  FN %3d  precision %.2f  recall %.2f\n",
			cs.Cause, cs.TP, cs.FP, cs.FN, cs.Precision, cs.Recall)
	}
	fmt.Fprintf(w, "aggregate: TP %d FP %d FN %d  precision %.2f  recall %.2f  cycle recall %.2f\n",
		rep.TotalTP, rep.TotalFP, rep.TotalFN, rep.TotalPrecision, rep.TotalRecall, rep.TotalCycleRecall)
	if len(rep.Untested) > 0 {
		fmt.Fprintf(w, "untested causes (claimed, but no grid point targets them): %s\n",
			joinOr(rep.Untested, ""))
	}
}

func joinOr(list []string, empty string) string {
	if len(list) == 0 {
		return empty
	}
	out := list[0]
	for _, s := range list[1:] {
		out += ", " + s
	}
	return out
}
