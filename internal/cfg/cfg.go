// Package cfg builds control-flow graphs for procedures and groups their
// blocks and edges into frequency-equivalence classes — step 1 and 2 of the
// paper's §6.1 analysis. Equivalence uses the classic dominator/
// postdominator criterion (a sound approximation of the cycle-equivalence
// algorithm of Johnson, Pearson & Pingali [14]; see DESIGN.md §5), extended
// to handle CFGs with infinite loops by adding virtual exit edges.
package cfg

import (
	"fmt"

	"dcpi/internal/alpha"
)

// EdgeKind classifies a CFG edge.
type EdgeKind uint8

const (
	// EdgeTaken is a conditional or unconditional branch taken edge.
	EdgeTaken EdgeKind = iota
	// EdgeFallthrough is straight-line flow into the next block (including
	// the not-taken side of a conditional branch and flow after a call).
	EdgeFallthrough
	// EdgeEntry connects the virtual entry to the first block.
	EdgeEntry
	// EdgeExit connects a returning/halting block (or a block whose branch
	// leaves the procedure) to the virtual exit.
	EdgeExit
	// EdgeVirtual is an exit edge added to make the exit reachable from an
	// infinite loop (e.g. an OS idle loop, per the paper's extension).
	EdgeVirtual
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeTaken:
		return "taken"
	case EdgeFallthrough:
		return "fallthrough"
	case EdgeEntry:
		return "entry"
	case EdgeExit:
		return "exit"
	case EdgeVirtual:
		return "virtual"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Virtual block indices.
const (
	Entry = -1
	Exit  = -2
)

// Block is one basic block: instructions [Start, End) of the procedure.
type Block struct {
	Index      int
	Start, End int   // instruction indices within the procedure
	Succs      []int // edge indices leaving this block
	Preds      []int // edge indices entering this block
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// Edge is one CFG edge. From/To are block indices, or Entry/Exit.
type Edge struct {
	Index int
	From  int
	To    int
	Kind  EdgeKind
}

// Graph is a procedure's CFG plus its frequency-equivalence classes.
type Graph struct {
	Code       []alpha.Inst
	BaseOffset uint64 // byte offset of Code[0] within the image
	Blocks     []Block
	Edges      []Edge

	// MissingEdges is set when the CFG contains control flow whose targets
	// could not be determined (computed jumps). Per the paper, equivalence
	// classes then degenerate to one class per block/edge.
	MissingEdges bool

	// BlockClass[b] and EdgeClass[e] are frequency-equivalence class ids;
	// members of one class execute the same number of times.
	BlockClass []int
	EdgeClass  []int
	NumClasses int

	blockOf []int // instruction index -> block index
}

// Build constructs the CFG of a procedure and computes equivalence classes.
// baseOffset is the byte offset of code[0] within its image.
func Build(code []alpha.Inst, baseOffset uint64) *Graph {
	g := &Graph{Code: code, BaseOffset: baseOffset}
	if len(code) == 0 {
		return g
	}
	g.findBlocks()
	g.addEdges()
	g.ensureExitReachable()
	g.computeEquivalence()
	return g
}

// branchTargetIndex resolves a branch instruction's target to an instruction
// index within the procedure, or -1 if it leaves the procedure.
func branchTargetIndex(code []alpha.Inst, i int) int {
	t := i + 1 + int(code[i].Disp)
	if t < 0 || t >= len(code) {
		return -1
	}
	return t
}

func (g *Graph) findBlocks() {
	code := g.Code
	leader := make([]bool, len(code))
	leader[0] = true
	for i, in := range code {
		switch {
		case in.Op.Class() == alpha.ClassBranch:
			if t := branchTargetIndex(code, i); t >= 0 {
				leader[t] = true
			}
			if i+1 < len(code) {
				leader[i+1] = true
			}
		case in.Op.EndsBlock():
			if i+1 < len(code) {
				leader[i+1] = true
			}
		}
	}
	g.blockOf = make([]int, len(code))
	start := 0
	for i := 1; i <= len(code); i++ {
		if i == len(code) || leader[i] {
			b := Block{Index: len(g.Blocks), Start: start, End: i}
			g.Blocks = append(g.Blocks, b)
			for j := start; j < i; j++ {
				g.blockOf[j] = b.Index
			}
			start = i
		}
	}
}

func (g *Graph) addEdge(from, to int, kind EdgeKind) {
	e := Edge{Index: len(g.Edges), From: from, To: to, Kind: kind}
	g.Edges = append(g.Edges, e)
	if from >= 0 {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, e.Index)
	}
	if to >= 0 {
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, e.Index)
	}
}

func (g *Graph) addEdges() {
	g.addEdge(Entry, 0, EdgeEntry)
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := g.Code[b.End-1]
		nextBlock := -1
		if b.End < len(g.Code) {
			nextBlock = g.blockOf[b.End]
		}
		switch {
		case last.Op.IsCondBranch():
			if t := branchTargetIndex(g.Code, b.End-1); t >= 0 {
				g.addEdge(bi, g.blockOf[t], EdgeTaken)
			} else {
				g.addEdge(bi, Exit, EdgeExit)
			}
			if nextBlock >= 0 {
				g.addEdge(bi, nextBlock, EdgeFallthrough)
			} else {
				g.addEdge(bi, Exit, EdgeExit)
			}
		case last.Op == alpha.OpBR:
			if t := branchTargetIndex(g.Code, b.End-1); t >= 0 {
				g.addEdge(bi, g.blockOf[t], EdgeTaken)
			} else {
				g.addEdge(bi, Exit, EdgeExit)
			}
		case last.Op == alpha.OpBSR, last.Op == alpha.OpJSR, last.Op == alpha.OpCALLPAL:
			// Calls: control returns to the next instruction; the paper's
			// analysis does not follow interprocedural edges.
			if nextBlock >= 0 {
				g.addEdge(bi, nextBlock, EdgeFallthrough)
			} else {
				g.addEdge(bi, Exit, EdgeExit)
			}
		case last.Op == alpha.OpRET, last.Op == alpha.OpHALT:
			g.addEdge(bi, Exit, EdgeExit)
		case last.Op == alpha.OpJMP:
			// Computed jump with unknown targets: note missing edges.
			g.MissingEdges = true
			g.addEdge(bi, Exit, EdgeExit)
		default:
			// Straight-line flow into the next block.
			if nextBlock >= 0 {
				g.addEdge(bi, nextBlock, EdgeFallthrough)
			} else {
				g.addEdge(bi, Exit, EdgeExit)
			}
		}
	}
}

// ensureExitReachable adds virtual exit edges from blocks trapped in
// infinite loops so postdominators are defined everywhere (the paper
// extends [14] "for handling CFGs with infinite loops").
func (g *Graph) ensureExitReachable() {
	n := len(g.Blocks)
	reaches := make([]bool, n)
	// Reverse reachability from exit via a worklist.
	var work []int
	for _, e := range g.Edges {
		if e.To == Exit && e.From >= 0 && !reaches[e.From] {
			reaches[e.From] = true
			work = append(work, e.From)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range g.Blocks[b].Preds {
			if f := g.Edges[ei].From; f >= 0 && !reaches[f] {
				reaches[f] = true
				work = append(work, f)
			}
		}
	}
	for bi := 0; bi < n; bi++ {
		if !reaches[bi] {
			// Add a virtual edge and propagate the new reachability.
			g.addEdge(bi, Exit, EdgeVirtual)
			reaches[bi] = true
			work = append(work, bi)
			for len(work) > 0 {
				b := work[len(work)-1]
				work = work[:len(work)-1]
				for _, ei := range g.Blocks[b].Preds {
					if f := g.Edges[ei].From; f >= 0 && !reaches[f] {
						reaches[f] = true
						work = append(work, f)
					}
				}
			}
		}
	}
}

// BlockOfInst returns the block containing instruction index i.
func (g *Graph) BlockOfInst(i int) int { return g.blockOf[i] }

// BlockCode returns the instructions of block b.
func (g *Graph) BlockCode(b int) []alpha.Inst {
	blk := g.Blocks[b]
	return g.Code[blk.Start:blk.End]
}
