package cfg

// Dominator and postdominator computation (iterative Cooper–Harvey–Kennedy)
// plus the frequency-equivalence classes built from them.

// domInfo holds immediate dominators over the block array plus the virtual
// entry/exit, encoded as: 0..n-1 real blocks, n = entry, n+1 = exit.
type domInfo struct {
	idom []int // immediate dominator per node, -1 for root/unreachable
	root int
}

const undef = -3

func (g *Graph) nodeCount() int { return len(g.Blocks) + 2 }
func (g *Graph) entryNode() int { return len(g.Blocks) }
func (g *Graph) exitNode() int  { return len(g.Blocks) + 1 }

func (g *Graph) node(blockIdx int) int {
	switch blockIdx {
	case Entry:
		return g.entryNode()
	case Exit:
		return g.exitNode()
	default:
		return blockIdx
	}
}

// neighbors calls f with each successor (or predecessor, if pred) node.
func (g *Graph) neighbors(node int, pred bool, f func(int)) {
	switch {
	case node == g.entryNode():
		if !pred {
			f(0)
		}
	case node == g.exitNode():
		if pred {
			for _, e := range g.Edges {
				if e.To == Exit {
					f(g.node(e.From))
				}
			}
		}
	default:
		b := &g.Blocks[node]
		if pred {
			for _, ei := range b.Preds {
				f(g.node(g.Edges[ei].From))
			}
			if node == 0 {
				f(g.entryNode())
			}
		} else {
			for _, ei := range b.Succs {
				f(g.node(g.Edges[ei].To))
			}
		}
	}
}

// computeDom runs the iterative dominator algorithm from root; reverse=true
// swaps edge directions (postdominators from the exit).
func (g *Graph) computeDom(root int, reverse bool) domInfo {
	n := g.nodeCount()
	// Reverse postorder from root over the (possibly reversed) graph.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		g.neighbors(u, reverse, func(v int) {
			if !seen[v] {
				dfs(v)
			}
		})
		order = append(order, u)
	}
	dfs(root)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range order {
		rpoNum[u] = i
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = undef
	}
	idom[root] = root

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, u := range order {
			if u == root {
				continue
			}
			newIdom := undef
			g.neighbors(u, !reverse, func(v int) {
				if rpoNum[v] < 0 || idom[v] == undef {
					return
				}
				if newIdom == undef {
					newIdom = v
				} else {
					newIdom = intersect(newIdom, v)
				}
			})
			if newIdom != undef && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	idom[root] = -1
	return domInfo{idom: idom, root: root}
}

// dominates reports whether a dominates b in d (reflexive).
func (d *domInfo) dominates(a, b int) bool {
	for b != -1 && b != undef {
		if b == a {
			return true
		}
		b = d.idom[b]
	}
	return false
}

// loopSignatures identifies natural loops (back edges u->h with h dominating
// u; body = nodes reaching u without passing h) and returns a per-block
// signature string encoding which loops each block belongs to.
func (g *Graph) loopSignatures(dom *domInfo) []string {
	nb := len(g.Blocks)
	membership := make([][]int, nb)
	loopID := 0
	for _, e := range g.Edges {
		u, h := e.From, e.To
		if u < 0 || h < 0 || !dom.dominates(h, u) {
			continue
		}
		// Collect the natural loop body of back edge u->h: h plus every
		// node that reaches u without passing through h. The header is
		// seeded first and never expanded (handles self-loops, u == h).
		inLoop := make(map[int]bool, 8)
		inLoop[h] = true
		var stack []int
		if !inLoop[u] {
			inLoop[u] = true
			stack = append(stack, u)
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ei := range g.Blocks[x].Preds {
				if p := g.Edges[ei].From; p >= 0 && !inLoop[p] {
					inLoop[p] = true
					stack = append(stack, p)
				}
			}
		}
		for b := range inLoop {
			membership[b] = append(membership[b], loopID)
		}
		loopID++
	}
	sig := make([]string, nb)
	for b, loops := range membership {
		// Loop ids are appended in deterministic edge order but may not be
		// sorted per block; sort for a canonical signature.
		for i := 1; i < len(loops); i++ {
			for j := i; j > 0 && loops[j-1] > loops[j]; j-- {
				loops[j-1], loops[j] = loops[j], loops[j-1]
			}
		}
		buf := make([]byte, 0, len(loops)*2)
		for _, id := range loops {
			buf = append(buf, byte(id), byte(id>>8))
		}
		sig[b] = string(buf)
	}
	return sig
}

// computeEquivalence assigns frequency-equivalence classes to blocks and
// edges. Two blocks are equivalent when one dominates the other and the
// other postdominates the first. An edge joins its source's class when it is
// the source's only successor, and its target's class when it is the
// target's only predecessor. With missing edges, everything gets its own
// class (paper §6.1.2).
func (g *Graph) computeEquivalence() {
	nb, ne := len(g.Blocks), len(g.Edges)
	// Union-find over blocks (0..nb-1) and edges (nb..nb+ne-1).
	parent := make([]int, nb+ne)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	if !g.MissingEdges {
		dom := g.computeDom(g.entryNode(), false)
		pdom := g.computeDom(g.exitNode(), true)
		loopSig := g.loopSignatures(&dom)

		// Blocks: walk each block's dominator chain; merge with dominators
		// it postdominates. Dominance + postdominance alone does not imply
		// equal *counts* when one block sits in a loop the other is outside
		// of (e.g. a self-looping block postdominating its dominator), so
		// both blocks must also belong to exactly the same natural loops.
		for b := 0; b < nb; b++ {
			for a := dom.idom[b]; a >= 0 && a < nb; a = dom.idom[a] {
				if pdom.dominates(b, a) && loopSig[a] == loopSig[b] {
					union(a, b)
				}
			}
		}

		// Edges: merge with the unique-successor source or the
		// unique-predecessor target.
		for ei, e := range g.Edges {
			if e.From >= 0 && len(g.Blocks[e.From].Succs) == 1 {
				union(nb+ei, e.From)
			}
			if e.To >= 0 && len(g.Blocks[e.To].Preds) == 1 {
				union(nb+ei, e.To)
			}
		}
	}

	// Densify class ids.
	g.BlockClass = make([]int, nb)
	g.EdgeClass = make([]int, ne)
	ids := make(map[int]int)
	classOf := func(x int) int {
		r := find(x)
		id, ok := ids[r]
		if !ok {
			id = len(ids)
			ids[r] = id
		}
		return id
	}
	for b := 0; b < nb; b++ {
		g.BlockClass[b] = classOf(b)
	}
	for e := 0; e < ne; e++ {
		g.EdgeClass[e] = classOf(nb + e)
	}
	g.NumClasses = len(ids)
}
