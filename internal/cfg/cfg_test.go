package cfg

import (
	"testing"

	"dcpi/internal/alpha"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	a := alpha.MustAssemble(src)
	return Build(a.Code, 0)
}

func TestStraightLine(t *testing.T) {
	g := build(t, `
p:
	addq t0, 1, t1
	addq t1, 1, t2
	ret (ra)
`)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	if g.Blocks[0].Len() != 3 {
		t.Errorf("block len = %d", g.Blocks[0].Len())
	}
	// Entry edge + exit edge.
	if len(g.Edges) != 2 {
		t.Errorf("edges = %d, want 2", len(g.Edges))
	}
	if g.MissingEdges {
		t.Error("straight line marked missing edges")
	}
}

func TestDiamond(t *testing.T) {
	g := build(t, `
p:
	beq a0, .else
	addq t0, 1, t1
	br .join
.else:
	subq t0, 1, t1
.join:
	addq t1, 1, t2
	ret (ra)
`)
	// Blocks: [beq], [addq, br], [subq], [addq, ret].
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	// The test block and the join block execute equally often; the two arms
	// are separate classes.
	if g.BlockClass[0] != g.BlockClass[3] {
		t.Error("diamond top and bottom should share a class")
	}
	if g.BlockClass[1] == g.BlockClass[2] {
		t.Error("diamond arms should not share a class")
	}
	if g.BlockClass[1] == g.BlockClass[0] {
		t.Error("arm should not share the top's class")
	}
}

func TestLoop(t *testing.T) {
	g := build(t, `
p:
	lda t0, 0(zero)
.loop:
	addq t0, 1, t0
	cmplt t0, 10, t1
	bne t1, .loop
	ret (ra)
`)
	// Blocks: [lda], [addq,cmplt,bne], [ret].
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(g.Blocks))
	}
	// Preamble and epilogue run once; the loop body runs 10 times: the body
	// must not share their class.
	if g.BlockClass[0] != g.BlockClass[2] {
		t.Error("preamble and epilogue should share a class")
	}
	if g.BlockClass[1] == g.BlockClass[0] {
		t.Error("loop body must not share the preamble's class")
	}
	// The loop's back edge and exit edge are distinct classes from the body.
	var backEdge, exitEdge int = -1, -1
	for _, e := range g.Edges {
		if e.From == 1 && e.To == 1 {
			backEdge = e.Index
		}
		if e.From == 1 && e.To == 2 {
			exitEdge = e.Index
		}
	}
	if backEdge < 0 || exitEdge < 0 {
		t.Fatal("loop edges not found")
	}
	if g.EdgeClass[backEdge] == g.EdgeClass[exitEdge] {
		t.Error("back edge and loop-exit edge must differ")
	}
	// The loop-exit edge executes once, like the epilogue block (its
	// target's only predecessor... the epilogue has preds from bne only).
	if g.EdgeClass[exitEdge] != g.BlockClass[2] {
		t.Error("loop-exit edge should share the epilogue's class")
	}
}

func TestSelfLoopNotMergedWithDominator(t *testing.T) {
	// H -> B; B -> {B, X}: B postdominates H but executes more often.
	g := build(t, `
p:
	lda t0, 100(zero)     ; H
.spin:
	subq t0, 1, t0        ; B (self loop)
	bne t0, .spin
	ret (ra)              ; X
`)
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(g.Blocks))
	}
	if g.BlockClass[0] == g.BlockClass[1] {
		t.Error("self-looping block merged with its dominator (unsound)")
	}
}

func TestNestedLoops(t *testing.T) {
	g := build(t, `
p:
	lda t0, 0(zero)
.outer:
	lda t1, 0(zero)
.inner:
	addq t1, 1, t1
	cmplt t1, 5, t2
	bne t2, .inner
	addq t0, 1, t0
	cmplt t0, 3, t2
	bne t2, .outer
	ret (ra)
`)
	// Blocks: [lda], [lda t1], [inner body], [outer tail], [ret].
	if len(g.Blocks) != 5 {
		t.Fatalf("blocks = %d, want 5", len(g.Blocks))
	}
	// Outer-loop blocks (1 and 3) run equally often; inner body (2) runs
	// more; entry (0) and exit (4) run once.
	if g.BlockClass[1] != g.BlockClass[3] {
		t.Error("outer loop header and tail should share a class")
	}
	if g.BlockClass[2] == g.BlockClass[1] {
		t.Error("inner body must not share the outer loop's class")
	}
	if g.BlockClass[0] != g.BlockClass[4] {
		t.Error("entry and exit should share a class")
	}
	if g.BlockClass[0] == g.BlockClass[1] {
		t.Error("loop must not share the entry's class")
	}
}

func TestCallsAreFallthrough(t *testing.T) {
	g := build(t, `
p:
	bsr ra, helper
	addq v0, 1, t0
	ret (ra)
helper:
	lda v0, 41(zero)
	ret (ra)
`)
	// The bsr block falls through to the next block (no interprocedural
	// edge); all p-blocks equivalent.
	if g.MissingEdges {
		t.Error("calls should not mark missing edges")
	}
	if g.BlockClass[0] != g.BlockClass[1] {
		t.Error("call block and continuation should share a class")
	}
}

func TestComputedJumpMarksMissing(t *testing.T) {
	g := build(t, `
p:
	beq a0, .x
	jmp (t0)
.x:
	ret (ra)
`)
	if !g.MissingEdges {
		t.Fatal("jmp did not mark missing edges")
	}
	// Everything in its own class.
	seen := map[int]bool{}
	for _, c := range g.BlockClass {
		if seen[c] {
			t.Error("classes shared despite missing edges")
		}
		seen[c] = true
	}
}

func TestInfiniteLoopGetsVirtualExit(t *testing.T) {
	g := build(t, `
idle:
	nop
	br idle
`)
	var virtual int
	for _, e := range g.Edges {
		if e.Kind == EdgeVirtual {
			virtual++
		}
	}
	if virtual == 0 {
		t.Error("infinite loop did not get a virtual exit edge")
	}
	// Equivalence must still be computed (no hang, classes assigned).
	if len(g.BlockClass) != len(g.Blocks) {
		t.Error("classes missing")
	}
}

func TestBlockOfInstAndCode(t *testing.T) {
	g := build(t, `
p:
	addq t0, 1, t1
	beq t1, .x
	subq t0, 1, t1
.x:
	ret (ra)
`)
	if g.BlockOfInst(0) != 0 || g.BlockOfInst(1) != 0 {
		t.Error("first block wrong")
	}
	if g.BlockOfInst(2) != 1 || g.BlockOfInst(3) != 2 {
		t.Error("later blocks wrong")
	}
	code := g.BlockCode(1)
	if len(code) != 1 || code[0].Op != alpha.OpSUBQ {
		t.Errorf("block code = %v", code)
	}
}

func TestEdgeKinds(t *testing.T) {
	g := build(t, `
p:
	beq a0, .x
	nop
.x:
	ret (ra)
`)
	kinds := map[EdgeKind]int{}
	for _, e := range g.Edges {
		kinds[e.Kind]++
	}
	if kinds[EdgeEntry] != 1 || kinds[EdgeTaken] != 1 || kinds[EdgeFallthrough] < 1 || kinds[EdgeExit] != 1 {
		t.Errorf("edge kinds = %v", kinds)
	}
	for k, want := range map[EdgeKind]string{
		EdgeTaken: "taken", EdgeFallthrough: "fallthrough",
		EdgeEntry: "entry", EdgeExit: "exit", EdgeVirtual: "virtual",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestEmptyCode(t *testing.T) {
	g := Build(nil, 0)
	if len(g.Blocks) != 0 || len(g.Edges) != 0 {
		t.Error("empty code produced blocks")
	}
}

func TestBranchOutOfProcedure(t *testing.T) {
	// A conditional branch whose target lies outside the procedure's code
	// (e.g. a tail jump into a stub): treated as an exit edge.
	code := alpha.MustAssemble(`
p:
	beq a0, p
	ret (ra)
`).Code
	// Rewrite the branch displacement to point far outside.
	code[0].Disp = 1000
	g := Build(code, 0)
	exitEdges := 0
	for _, e := range g.Edges {
		if e.From == 0 && e.To == Exit {
			exitEdges++
		}
	}
	if exitEdges == 0 {
		t.Error("out-of-procedure branch target should produce an exit edge")
	}
}

// TestCopyLoopCFG sanity-checks the paper's Figure 2 loop: one body block
// plus the surrounding structure, with the body in its own class.
func TestCopyLoopCFG(t *testing.T) {
	g := build(t, `
copy:
	lda t0, 4(zero)
.loop:
	ldq   t4, 0(t1)
	addq  t0, 0x4, t0
	stq   t4, 0(t2)
	cmpult t0, v0, t4
	bne   t4, .loop
	halt
`)
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(g.Blocks))
	}
	if g.Blocks[1].Len() != 5 {
		t.Errorf("loop body len = %d", g.Blocks[1].Len())
	}
	if g.BlockClass[1] == g.BlockClass[0] || g.BlockClass[1] == g.BlockClass[2] {
		t.Error("loop body class should be distinct")
	}
}
