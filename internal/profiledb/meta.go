package profiledb

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
)

// Meta records how an epoch's profiles were collected, so offline tools can
// interpret sample counts without re-running the collection.
type Meta struct {
	Workload     string  `json:"workload"`
	Mode         string  `json:"mode"`
	CyclesPeriod float64 `json:"cycles_period"` // average, in cycles
	EventPeriod  float64 `json:"event_period"`
	WallCycles   int64   `json:"wall_cycles"`
	Seed         uint64  `json:"seed"`
	Scale        float64 `json:"scale"`
}

const metaFile = "epoch.meta"

// WriteMeta stores collection metadata in the current epoch.
func (db *DB) WriteMeta(m Meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(db.epochDir(db.epoch), metaFile), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// Meta reads the current epoch's collection metadata; ok is false when the
// epoch has none.
func (db *DB) Meta() (Meta, bool, error) {
	data, err := os.ReadFile(filepath.Join(db.epochDir(db.epoch), metaFile))
	if errors.Is(err, os.ErrNotExist) {
		return Meta{}, false, nil
	}
	if err != nil {
		return Meta{}, false, err
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, false, err
	}
	return m, true, nil
}
