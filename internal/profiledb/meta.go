package profiledb

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
)

// Meta records how an epoch's profiles were collected, so offline tools can
// interpret sample counts without re-running the collection.
type Meta struct {
	Workload     string  `json:"workload"`
	Mode         string  `json:"mode"`
	CyclesPeriod float64 `json:"cycles_period"` // average, in cycles
	EventPeriod  float64 `json:"event_period"`
	WallCycles   int64   `json:"wall_cycles"`
	Seed         uint64  `json:"seed"`
	Scale        float64 `json:"scale"`
	// ImageInsts maps image path to instructions executed in that image
	// during the epoch, when the run collected exact counts (dcpix).
	// Fleet-level CPI queries divide attributed cycles by these; the field
	// is omitted (and CPI unavailable) for sampling-only runs.
	ImageInsts map[string]uint64 `json:"image_insts,omitempty"`
}

const metaFile = "epoch.meta"

// WriteMeta stores collection metadata in the current epoch. Because it is
// written once, atomically, after the epoch's final merge, the metadata
// file doubles as the epoch's seal (see Sealed).
func (db *DB) WriteMeta(m Meta) error {
	if db.readOnly {
		return errReadOnly
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(db.epochDir(db.epoch), metaFile), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// Meta reads the current epoch's collection metadata; ok is false when the
// epoch has none.
func (db *DB) Meta() (Meta, bool, error) {
	return db.MetaAt(db.epoch)
}

// MetaAt reads the given epoch's collection metadata; ok is false when the
// epoch has none (it is unsealed or was collected without a daemon).
func (db *DB) MetaAt(epoch int) (Meta, bool, error) {
	data, err := os.ReadFile(filepath.Join(db.epochDir(epoch), metaFile))
	if errors.Is(err, os.ErrNotExist) {
		return Meta{}, false, nil
	}
	if err != nil {
		return Meta{}, false, err
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, false, err
	}
	return m, true, nil
}
