package profiledb

import (
	"bytes"
	"reflect"
	"testing"

	"dcpi/internal/sim"
)

// FuzzProfileDecode feeds arbitrary bytes to the .prof reader. The reader
// must never panic or over-allocate on corrupt input — the database's
// recovery pass depends on it failing cleanly on torn files — and any
// input it does accept must survive a re-encode/decode round trip.
func FuzzProfileDecode(f *testing.F) {
	p := NewProfile("/bin/app", sim.EvCycles)
	p.Add(0x1000, 42)
	p.Add(0x1004, 1)
	p.Add(0x2abc, 1<<40)
	var v1, v2 bytes.Buffer
	if err := p.Write(&v1); err != nil {
		f.Fatal(err)
	}
	if err := p.WriteCompressed(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:10])       // truncated header
	f.Add([]byte("not a .prof")) // bad magic
	flipped := append([]byte(nil), v1.Bytes()...)
	flipped[len(flipped)-2] ^= 0xff // corrupt payload
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProfile(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — fine
		}
		var out bytes.Buffer
		if err := p.Write(&out); err != nil {
			t.Fatalf("re-encoding accepted profile: %v", err)
		}
		q, err := ReadProfile(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if q.ImagePath != p.ImagePath || q.Event != p.Event || !reflect.DeepEqual(q.Counts, p.Counts) {
			t.Errorf("round trip changed the profile:\nfirst  %q ev=%d %v\nsecond %q ev=%d %v",
				p.ImagePath, p.Event, p.Counts, q.ImagePath, q.Event, q.Counts)
		}
	})
}
