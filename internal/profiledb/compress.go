package profiledb

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The paper (§4.3.3) notes: "we have also designed an improved format that
// can compress existing profiles by approximately a factor of three." This
// file implements that improved format as version 2: the same delta-varint
// payload, DEFLATE-compressed. WriteCompressed/ReadProfile interoperate with
// the version-1 reader transparently.

// VersionCompressed marks the compressed file format.
const VersionCompressed = 2

// WriteCompressed encodes the profile in the compressed (version 2) format.
func (p *Profile) WriteCompressed(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], VersionCompressed)
	hdr[2] = byte(p.Event)
	if err := writeByteN(bw, hdr[:]); err != nil {
		return err
	}

	// Build the version-1 payload (path + delta-varint pairs), then
	// DEFLATE it.
	var payload bytes.Buffer
	pw := bufio.NewWriter(&payload)
	if err := writeUvarint(pw, uint64(len(p.ImagePath))); err != nil {
		return err
	}
	if _, err := pw.WriteString(p.ImagePath); err != nil {
		return err
	}
	if err := writePairs(pw, p); err != nil {
		return err
	}
	if err := pw.Flush(); err != nil {
		return err
	}

	if err := writeUvarint(bw, uint64(payload.Len())); err != nil { // uncompressed size, for sanity
		return err
	}
	fw, err := flate.NewWriter(bw, flate.BestCompression)
	if err != nil {
		return err
	}
	if _, err := fw.Write(payload.Bytes()); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// readCompressed decodes the version-2 payload after the common header.
func readCompressed(br *bufio.Reader, ev byte) (*Profile, error) {
	rawLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if rawLen > 1<<30 {
		return nil, errors.New("profiledb: unreasonable payload size")
	}
	fr := flate.NewReader(br)
	defer fr.Close()
	payload := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, payload); err != nil {
		return nil, fmt.Errorf("profiledb: decompressing: %w", err)
	}
	return decodePayload(bytes.NewReader(payload), ev)
}

// decodePayload parses path + pairs (shared by both formats).
func decodePayload(r io.Reader, ev byte) (*Profile, error) {
	br := bufio.NewReader(r)
	pathLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if pathLen > 1<<16 {
		return nil, errors.New("profiledb: image path too long")
	}
	pathBytes := make([]byte, pathLen)
	if _, err := io.ReadFull(br, pathBytes); err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// The declared pair count sizes the map but must not be trusted for
	// allocation: a corrupt header could claim 2^60 pairs and make the
	// pre-allocation itself the failure. Cap the hint; the loop below
	// still stops at the real data's end.
	hint := n
	if hint > 1<<20 {
		hint = 1 << 20
	}
	p := &Profile{ImagePath: string(pathBytes), Counts: make(map[uint64]uint64, hint)}
	p.Event = eventFromByte(ev)
	var off uint64
	for i := uint64(0); i < n; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		off += delta
		p.Counts[off] = count
	}
	return p, nil
}
