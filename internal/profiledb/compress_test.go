package profiledb

import (
	"bytes"
	"testing"
	"testing/quick"

	"dcpi/internal/sim"
)

// bigProfile mimics a real profile's structure: instructions within a basic
// block share nearly the same sample count (S ≈ f·M), and a few hot blocks
// dominate — which is what makes the compressed format effective.
func bigProfile() *Profile {
	p := NewProfile("/usr/shlib/libbig.so", sim.EvCycles)
	x := uint64(12345)
	off := uint64(0)
	for block := 0; block < 2500; block++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		blockFreq := []uint64{1, 2, 3, 5, 40, 41, 500}[x%7]
		blockLen := 4 + int(x%9)
		for i := 0; i < blockLen; i++ {
			jitter := (x >> uint(i%3)) % 3
			p.Add(off, blockFreq+jitter)
			off += 4
		}
	}
	return p
}

func TestCompressedRoundTrip(t *testing.T) {
	p := bigProfile()
	var buf bytes.Buffer
	if err := p.WriteCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ImagePath != p.ImagePath || got.Event != p.Event {
		t.Errorf("header = %s/%v", got.ImagePath, got.Event)
	}
	if len(got.Counts) != len(p.Counts) {
		t.Fatalf("counts = %d, want %d", len(got.Counts), len(p.Counts))
	}
	for off, n := range p.Counts {
		if got.Counts[off] != n {
			t.Fatalf("count[%d] = %d, want %d", off, got.Counts[off], n)
		}
	}
}

func TestCompressedSmaller(t *testing.T) {
	// The paper's claim: roughly a factor of three smaller.
	p := bigProfile()
	var plain, compressed bytes.Buffer
	if err := p.Write(&plain); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteCompressed(&compressed); err != nil {
		t.Fatal(err)
	}
	ratio := float64(plain.Len()) / float64(compressed.Len())
	t.Logf("plain %d bytes, compressed %d bytes, ratio %.2fx", plain.Len(), compressed.Len(), ratio)
	if ratio < 1.5 {
		t.Errorf("compression ratio = %.2f, want meaningful savings", ratio)
	}
}

func TestCompressedPropertyRoundTrip(t *testing.T) {
	f := func(offsets []uint32, counts []uint16) bool {
		p := NewProfile("/bin/q", sim.EvIMiss)
		for i, off := range offsets {
			n := uint64(1)
			if len(counts) > 0 {
				n = uint64(counts[i%len(counts)]) + 1
			}
			p.Add(uint64(off), n)
		}
		var buf bytes.Buffer
		if err := p.WriteCompressed(&buf); err != nil {
			return false
		}
		got, err := ReadProfile(&buf)
		if err != nil || len(got.Counts) != len(p.Counts) {
			return false
		}
		for off, n := range p.Counts {
			if got.Counts[off] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCompressedTruncated(t *testing.T) {
	p := bigProfile()
	var buf bytes.Buffer
	if err := p.WriteCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadProfile(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated compressed profile accepted")
	}
}

func TestVersionsInteroperateInDB(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Write a compressed file directly where the DB expects the profile,
	// then Update must read it (version dispatch) and merge on top.
	p := NewProfile("/bin/app", sim.EvCycles)
	p.Add(8, 3)
	f, err := createFile(db.Path("/bin/app", sim.EvCycles))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteCompressed(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q := NewProfile("/bin/app", sim.EvCycles)
	q.Add(8, 2)
	if err := db.Update(q); err != nil {
		t.Fatal(err)
	}
	got, err := db.Load("/bin/app", sim.EvCycles)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts[8] != 5 {
		t.Errorf("merged = %d, want 5", got.Counts[8])
	}
}
