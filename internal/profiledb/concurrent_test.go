package profiledb

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dcpi/internal/sim"
)

// TestConcurrentReadWhileWrite is the read-while-write contract: readers
// opened with OpenReader against a live writer's directory must never
// observe a half-written epoch, never error on in-flight state, and never
// mutate the directory (a writer recovery pass deletes .tmp files; a
// reader must not).
func TestConcurrentReadWhileWrite(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Seed epoch 1 so readers always have something, then plant a fake
	// in-flight temp file a writer's recovery would delete: it must still
	// exist after every concurrent reader is done.
	seed := NewProfile("/bin/app", sim.EvCycles)
	seed.Add(0x10, 1)
	if err := w.Update(seed); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(Meta{Workload: "app", WallCycles: 1}); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "epoch-0001", "inflight.prof.tmp")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	const epochs = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: keeps appending profiles, sealing epochs, and opening new
	// ones — the dcpid -epochs loop in miniature.
	writerErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for e := 2; e <= epochs; e++ {
			if err := w.NewEpoch(); err != nil {
				writerErr <- err
				return
			}
			for i := 0; i < 4; i++ {
				p := NewProfile("/bin/app", sim.EvCycles)
				p.Add(uint64(0x10+4*i), uint64(e))
				if err := w.Update(p); err != nil {
					writerErr <- err
					return
				}
			}
			if err := w.WriteMeta(Meta{Workload: "app", WallCycles: int64(e)}); err != nil {
				writerErr <- err
				return
			}
		}
	}()

	// Readers: hammer OpenReader the whole time. Sealed epochs must read
	// back complete (meta present implies all four profile updates are
	// merged and durable, because the meta is written last).
	readerErrs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				db, err := OpenReader(dir)
				if err != nil {
					readerErrs <- err
					return
				}
				es, err := db.Epochs()
				if err != nil {
					readerErrs <- err
					return
				}
				for _, e := range es {
					if !db.Sealed(e) {
						continue
					}
					meta, ok, err := db.MetaAt(e)
					if err != nil || !ok {
						readerErrs <- err
						return
					}
					profiles, err := db.ProfilesAt(e)
					if err != nil {
						readerErrs <- err
						return
					}
					var total uint64
					for _, p := range profiles {
						total += p.Total()
					}
					wantTotal := uint64(meta.WallCycles)
					if e > 1 {
						wantTotal = 4 * uint64(e)
					}
					if total != wantTotal {
						t.Errorf("sealed epoch %d read back %d samples, want %d", e, total, wantTotal)
						readerErrs <- nil
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-writerErr:
		t.Fatalf("writer: %v", err)
	default:
	}
	select {
	case err := <-readerErrs:
		t.Fatalf("reader: %v", err)
	default:
	}

	if _, err := os.Stat(stale); err != nil {
		t.Errorf("reader mutated the database: planted .tmp file gone (%v)", err)
	}

	// A writer reopening the directory still recovers its current epoch
	// (deleting stale temp files) — read-only restraint is a property of
	// OpenReader alone, not a regression of writer recovery.
	staleLatest := filepath.Join(w.Root(), "epoch-0040", "inflight.prof.tmp")
	if err := os.WriteFile(staleLatest, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(staleLatest); !os.IsNotExist(err) {
		t.Errorf("writer Open did not clean the stale .tmp (err=%v)", err)
	}
}
