package profiledb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"dcpi/internal/sim"
)

func TestProfileRoundTrip(t *testing.T) {
	p := NewProfile("/usr/shlib/libm.so", sim.EvCycles)
	p.Add(0, 5)
	p.Add(4096, 100)
	p.Add(8, 1)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ImagePath != p.ImagePath || got.Event != p.Event {
		t.Errorf("header = %s/%v", got.ImagePath, got.Event)
	}
	if len(got.Counts) != 3 || got.Counts[4096] != 100 || got.Counts[8] != 1 || got.Counts[0] != 5 {
		t.Errorf("counts = %v", got.Counts)
	}
}

// Property: arbitrary profiles round-trip exactly.
func TestProfileRoundTripProperty(t *testing.T) {
	f := func(offsets []uint32, counts []uint16) bool {
		p := NewProfile("/bin/x", sim.EvIMiss)
		for i, off := range offsets {
			n := uint64(1)
			if len(counts) > 0 {
				n = uint64(counts[i%len(counts)]) + 1
			}
			p.Add(uint64(off)*4, n)
		}
		var buf bytes.Buffer
		if err := p.Write(&buf); err != nil {
			return false
		}
		got, err := ReadProfile(&buf)
		if err != nil {
			return false
		}
		if len(got.Counts) != len(p.Counts) {
			return false
		}
		for off, n := range p.Counts {
			if got.Counts[off] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader([]byte("not a profile at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadProfile(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated valid prefix.
	p := NewProfile("/bin/x", sim.EvCycles)
	p.Add(100, 7)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadProfile(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated profile accepted")
	}
}

func TestMergeMismatch(t *testing.T) {
	a := NewProfile("/bin/a", sim.EvCycles)
	b := NewProfile("/bin/b", sim.EvCycles)
	if err := a.Merge(b); err == nil {
		t.Error("cross-image merge accepted")
	}
	c := NewProfile("/bin/a", sim.EvIMiss)
	if err := a.Merge(c); err == nil {
		t.Error("cross-event merge accepted")
	}
	d := NewProfile("/bin/a", sim.EvCycles)
	d.Add(4, 2)
	a.Add(4, 1)
	if err := a.Merge(d); err != nil {
		t.Fatal(err)
	}
	if a.Counts[4] != 3 {
		t.Errorf("merged count = %d", a.Counts[4])
	}
	if a.Total() != 3 {
		t.Errorf("total = %d", a.Total())
	}
}

func TestDBUpdateAndLoad(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfile("/usr/shlib/X11/libos.so", sim.EvCycles)
	p.Add(16, 3)
	if err := db.Update(p); err != nil {
		t.Fatal(err)
	}
	// Second update merges.
	q := NewProfile("/usr/shlib/X11/libos.so", sim.EvCycles)
	q.Add(16, 2)
	q.Add(32, 9)
	if err := db.Update(q); err != nil {
		t.Fatal(err)
	}
	got, err := db.Load("/usr/shlib/X11/libos.so", sim.EvCycles)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts[16] != 5 || got.Counts[32] != 9 {
		t.Errorf("counts = %v", got.Counts)
	}
	// Missing profile loads empty.
	empty, err := db.Load("/nonexistent", sim.EvCycles)
	if err != nil || len(empty.Counts) != 0 {
		t.Errorf("missing profile: %v, %v", empty, err)
	}
}

func TestDBSeparateFilesPerImageAndEvent(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []sim.Event{sim.EvCycles, sim.EvIMiss} {
		for _, img := range []string{"/vmunix", "/bin/app"} {
			p := NewProfile(img, ev)
			p.Add(0, 1)
			if err := db.Update(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	all, err := db.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("profiles = %d, want 4", len(all))
	}
	// Sorted by path then event.
	if all[0].ImagePath != "/bin/app" || all[0].Event != sim.EvCycles {
		t.Errorf("first profile = %s/%v", all[0].ImagePath, all[0].Event)
	}
}

func TestDBEpochs(t *testing.T) {
	root := t.TempDir()
	db, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 1 {
		t.Errorf("initial epoch = %d", db.Epoch())
	}
	p := NewProfile("/bin/app", sim.EvCycles)
	p.Add(0, 1)
	if err := db.Update(p); err != nil {
		t.Fatal(err)
	}
	if err := db.NewEpoch(); err != nil {
		t.Fatal(err)
	}
	// The new epoch is empty.
	got, err := db.Load("/bin/app", sim.EvCycles)
	if err != nil || len(got.Counts) != 0 {
		t.Errorf("new epoch should be empty: %v %v", got.Counts, err)
	}
	// Reopening resumes the latest epoch.
	db2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Epoch() != 2 {
		t.Errorf("reopened epoch = %d", db2.Epoch())
	}
}

func TestDiskUsage(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := db.DiskUsage(); err != nil || n != 0 {
		t.Errorf("empty usage = %d, %v", n, err)
	}
	p := NewProfile("/bin/app", sim.EvCycles)
	for i := uint64(0); i < 1000; i++ {
		p.Add(i*4, i+1)
	}
	if err := db.Update(p); err != nil {
		t.Fatal(err)
	}
	n, err := db.DiskUsage()
	if err != nil || n <= 0 {
		t.Fatalf("usage = %d, %v", n, err)
	}
	// Compactness: 1000 hot instructions = 4KB of code; the profile should
	// be within the same order of magnitude, not 16 bytes per sample.
	if n > 8000 {
		t.Errorf("profile size = %d bytes for 1000 entries, not compact", n)
	}
}

func TestCompactness(t *testing.T) {
	// Dense consecutive offsets with small counts: ~2 bytes per entry.
	p := NewProfile("/bin/app", sim.EvCycles)
	for i := uint64(0); i < 10000; i++ {
		p.Add(i*4, 3)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	perEntry := float64(buf.Len()) / 10000
	if perEntry > 3 {
		t.Errorf("bytes per entry = %.2f, want <= 3", perEntry)
	}
}

func TestFileNameMangling(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := db.Path("/usr/shlib/X11/lib_dec_ffb_ev5.so", sim.EvCycles)
	base := filepath.Base(path)
	if base != "usr_shlib_X11_lib_dec_ffb_ev5.so.cycles.prof" {
		t.Errorf("file name = %q", base)
	}
	// Update must actually create that file.
	p := NewProfile("/usr/shlib/X11/lib_dec_ffb_ev5.so", sim.EvCycles)
	p.Add(0, 1)
	if err := db.Update(p); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("profile file missing: %v", err)
	}
}
