package profiledb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"dcpi/internal/sim"
)

func TestProfileRoundTrip(t *testing.T) {
	p := NewProfile("/usr/shlib/libm.so", sim.EvCycles)
	p.Add(0, 5)
	p.Add(4096, 100)
	p.Add(8, 1)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ImagePath != p.ImagePath || got.Event != p.Event {
		t.Errorf("header = %s/%v", got.ImagePath, got.Event)
	}
	if len(got.Counts) != 3 || got.Counts[4096] != 100 || got.Counts[8] != 1 || got.Counts[0] != 5 {
		t.Errorf("counts = %v", got.Counts)
	}
}

// Property: arbitrary profiles round-trip exactly.
func TestProfileRoundTripProperty(t *testing.T) {
	f := func(offsets []uint32, counts []uint16) bool {
		p := NewProfile("/bin/x", sim.EvIMiss)
		for i, off := range offsets {
			n := uint64(1)
			if len(counts) > 0 {
				n = uint64(counts[i%len(counts)]) + 1
			}
			p.Add(uint64(off)*4, n)
		}
		var buf bytes.Buffer
		if err := p.Write(&buf); err != nil {
			return false
		}
		got, err := ReadProfile(&buf)
		if err != nil {
			return false
		}
		if len(got.Counts) != len(p.Counts) {
			return false
		}
		for off, n := range p.Counts {
			if got.Counts[off] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader([]byte("not a profile at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadProfile(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated valid prefix.
	p := NewProfile("/bin/x", sim.EvCycles)
	p.Add(100, 7)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadProfile(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated profile accepted")
	}
}

func TestMergeMismatch(t *testing.T) {
	a := NewProfile("/bin/a", sim.EvCycles)
	b := NewProfile("/bin/b", sim.EvCycles)
	if err := a.Merge(b); err == nil {
		t.Error("cross-image merge accepted")
	}
	c := NewProfile("/bin/a", sim.EvIMiss)
	if err := a.Merge(c); err == nil {
		t.Error("cross-event merge accepted")
	}
	d := NewProfile("/bin/a", sim.EvCycles)
	d.Add(4, 2)
	a.Add(4, 1)
	if err := a.Merge(d); err != nil {
		t.Fatal(err)
	}
	if a.Counts[4] != 3 {
		t.Errorf("merged count = %d", a.Counts[4])
	}
	if a.Total() != 3 {
		t.Errorf("total = %d", a.Total())
	}
}

func TestDBUpdateAndLoad(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfile("/usr/shlib/X11/libos.so", sim.EvCycles)
	p.Add(16, 3)
	if err := db.Update(p); err != nil {
		t.Fatal(err)
	}
	// Second update merges.
	q := NewProfile("/usr/shlib/X11/libos.so", sim.EvCycles)
	q.Add(16, 2)
	q.Add(32, 9)
	if err := db.Update(q); err != nil {
		t.Fatal(err)
	}
	got, err := db.Load("/usr/shlib/X11/libos.so", sim.EvCycles)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts[16] != 5 || got.Counts[32] != 9 {
		t.Errorf("counts = %v", got.Counts)
	}
	// Missing profile loads empty.
	empty, err := db.Load("/nonexistent", sim.EvCycles)
	if err != nil || len(empty.Counts) != 0 {
		t.Errorf("missing profile: %v, %v", empty, err)
	}
}

func TestDBSeparateFilesPerImageAndEvent(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []sim.Event{sim.EvCycles, sim.EvIMiss} {
		for _, img := range []string{"/vmunix", "/bin/app"} {
			p := NewProfile(img, ev)
			p.Add(0, 1)
			if err := db.Update(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	all, err := db.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("profiles = %d, want 4", len(all))
	}
	// Sorted by path then event.
	if all[0].ImagePath != "/bin/app" || all[0].Event != sim.EvCycles {
		t.Errorf("first profile = %s/%v", all[0].ImagePath, all[0].Event)
	}
}

func TestDBEpochs(t *testing.T) {
	root := t.TempDir()
	db, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 1 {
		t.Errorf("initial epoch = %d", db.Epoch())
	}
	p := NewProfile("/bin/app", sim.EvCycles)
	p.Add(0, 1)
	if err := db.Update(p); err != nil {
		t.Fatal(err)
	}
	if err := db.NewEpoch(); err != nil {
		t.Fatal(err)
	}
	// The new epoch is empty.
	got, err := db.Load("/bin/app", sim.EvCycles)
	if err != nil || len(got.Counts) != 0 {
		t.Errorf("new epoch should be empty: %v %v", got.Counts, err)
	}
	// Reopening resumes the latest epoch.
	db2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Epoch() != 2 {
		t.Errorf("reopened epoch = %d", db2.Epoch())
	}
}

func TestDiskUsage(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := db.DiskUsage(); err != nil || n != 0 {
		t.Errorf("empty usage = %d, %v", n, err)
	}
	p := NewProfile("/bin/app", sim.EvCycles)
	for i := uint64(0); i < 1000; i++ {
		p.Add(i*4, i+1)
	}
	if err := db.Update(p); err != nil {
		t.Fatal(err)
	}
	n, err := db.DiskUsage()
	if err != nil || n <= 0 {
		t.Fatalf("usage = %d, %v", n, err)
	}
	// Compactness: 1000 hot instructions = 4KB of code; the profile should
	// be within the same order of magnitude, not 16 bytes per sample.
	if n > 8000 {
		t.Errorf("profile size = %d bytes for 1000 entries, not compact", n)
	}
}

func TestCompactness(t *testing.T) {
	// Dense consecutive offsets with small counts: ~2 bytes per entry.
	p := NewProfile("/bin/app", sim.EvCycles)
	for i := uint64(0); i < 10000; i++ {
		p.Add(i*4, 3)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	perEntry := float64(buf.Len()) / 10000
	if perEntry > 3 {
		t.Errorf("bytes per entry = %.2f, want <= 3", perEntry)
	}
}

func TestFileNameMangling(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := db.Path("/usr/shlib/X11/lib_dec_ffb_ev5.so", sim.EvCycles)
	base := filepath.Base(path)
	if base != "usr_shlib_X11_lib_dec_ffb_ev5.so.cycles.prof" {
		t.Errorf("file name = %q", base)
	}
	// Update must actually create that file.
	p := NewProfile("/usr/shlib/X11/lib_dec_ffb_ev5.so", sim.EvCycles)
	p.Add(0, 1)
	if err := db.Update(p); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("profile file missing: %v", err)
	}
}

func TestParseEpochNameStrict(t *testing.T) {
	good := map[string]int{"epoch-1": 1, "epoch-0004": 4, "epoch-12": 12}
	for name, want := range good {
		if n, ok := parseEpochName(name); !ok || n != want {
			t.Errorf("parseEpochName(%q) = %d, %v; want %d", name, n, ok, want)
		}
	}
	for _, name := range []string{
		"epoch-12x", "epoch-", "epoch-+3", "epoch--3", "epoch-1 2", "epoch", "x-3", "epoch-0",
	} {
		if n, ok := parseEpochName(name); ok {
			t.Errorf("parseEpochName(%q) accepted as %d", name, n)
		}
	}
}

func TestOpenIgnoresJunkEpochDirs(t *testing.T) {
	dir := t.TempDir()
	// Sscanf prefix matching used to read "epoch-12x" as epoch 12; strict
	// parsing must ignore it (and non-directories) and resume epoch 2.
	for _, d := range []string{"epoch-0001", "epoch-0002", "epoch-12x", "notes"} {
		if err := os.MkdirAll(filepath.Join(dir, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "epoch-9"), nil, 0o644); err != nil {
		t.Fatal(err) // a *file* named like an epoch must not count either
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2", db.Epoch())
	}
}

func TestOpenQuarantinesCorruptProfiles(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	intact := NewProfile("/bin/app", sim.EvCycles)
	intact.Add(16, 3)
	if err := db.Update(intact); err != nil {
		t.Fatal(err)
	}
	// A truncated file (torn write) and a stale temp file, as a crashed
	// writer would leave them.
	var buf bytes.Buffer
	other := NewProfile("/bin/other", sim.EvCycles)
	other.Add(8, 5)
	if err := other.Write(&buf); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "epoch-0001", "bin_other.cycles.prof")
	if err := os.WriteFile(torn, buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "epoch-0001", "bin_x.cycles.prof.tmp")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with corrupt profile failed: %v", err)
	}
	profs, err := db2.Profiles()
	if err != nil {
		t.Fatalf("Profiles after recovery: %v", err)
	}
	if len(profs) != 1 || profs[0].ImagePath != "/bin/app" || profs[0].Counts[16] != 3 {
		t.Errorf("intact profiles after recovery = %+v", profs)
	}
	if _, err := os.Stat(torn + ".bad"); err != nil {
		t.Errorf("torn file not quarantined: %v", err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Errorf("torn file still present: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file not removed: %v", err)
	}
}

func TestRecoverReport(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := db.Recover(); err != nil || !rep.Clean() {
		t.Errorf("recovery on clean epoch = %+v, %v", rep, err)
	}
	bad := filepath.Join(dir, "epoch-0001", "junk.cycles.prof")
	if err := os.WriteFile(bad, []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "junk.cycles.prof" {
		t.Errorf("report = %+v", rep)
	}
	// Quarantined bytes are preserved for post-mortem.
	data, err := os.ReadFile(bad + ".bad")
	if err != nil || string(data) != "not a profile" {
		t.Errorf("quarantined content = %q, %v", data, err)
	}
}

func TestWriteTorn(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prior := NewProfile("/bin/app", sim.EvCycles)
	prior.Add(4, 7)
	prior.Add(8, 2)
	if err := db.Update(prior); err != nil {
		t.Fatal(err)
	}
	p := NewProfile("/bin/app", sim.EvCycles)
	p.Add(12, 1)
	destroyed, err := db.WriteTorn(p)
	if err != nil {
		t.Fatal(err)
	}
	if destroyed != 9 {
		t.Errorf("destroyed = %d, want the 9 samples the file held", destroyed)
	}
	if _, err := db.Load("/bin/app", sim.EvCycles); err == nil {
		t.Error("torn file still decodes; WriteTorn did not tear")
	}
	if rep, err := db.Recover(); err != nil || len(rep.Quarantined) != 1 {
		t.Errorf("recovery of torn file = %+v, %v", rep, err)
	}
	// After quarantine the slot is writable again.
	if err := db.Update(p); err != nil {
		t.Errorf("update after recovery: %v", err)
	}
}

// errWriter fails after n bytes, exercising the write-error paths that the
// old writeUvarint swallowed.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, os.ErrClosed
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteErrorsPropagate(t *testing.T) {
	p := NewProfile("/bin/app", sim.EvCycles)
	for i := uint64(0); i < 10000; i++ {
		p.Add(i*4, i+1)
	}
	for _, limit := range []int{0, 4, 100, 6000} {
		if err := p.Write(&errWriter{n: limit}); err == nil {
			t.Errorf("Write with %d-byte sink reported success", limit)
		}
		if err := p.WriteCompressed(&errWriter{n: limit}); err == nil {
			t.Errorf("WriteCompressed with %d-byte sink reported success", limit)
		}
	}
}

func TestUpdateLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfile("/bin/app", sim.EvCycles)
	p.Add(4, 1)
	if err := db.Update(p); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteMeta(Meta{Workload: "x"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "epoch-0001"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}
