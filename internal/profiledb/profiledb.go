// Package profiledb implements the on-disk profile database of paper §4.3.3:
// samples organized into non-overlapping epochs, one compact binary file per
// (image, event) pair, merged incrementally as the daemon flushes. Profiles
// are typically much smaller than their images because only executed
// offsets appear, and offsets are delta-varint encoded.
package profiledb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dcpi/internal/atomicio"
	"dcpi/internal/obs"
	"dcpi/internal/sim"
)

// Magic identifies a profile file.
var Magic = [8]byte{'D', 'C', 'P', 'I', 'P', 'R', 'O', 'F'}

// Version is the current file-format version.
const Version = 1

// Profile is the per-(image, event) sample map: byte offset within the
// image to accumulated count.
type Profile struct {
	ImagePath string
	Event     sim.Event
	Counts    map[uint64]uint64
}

// NewProfile creates an empty profile.
func NewProfile(imagePath string, ev sim.Event) *Profile {
	return &Profile{ImagePath: imagePath, Event: ev, Counts: make(map[uint64]uint64)}
}

// Add accumulates n samples at offset.
func (p *Profile) Add(offset, n uint64) {
	p.Counts[offset] += n
}

// Merge folds other into p. The image path and event must match.
func (p *Profile) Merge(other *Profile) error {
	if other.ImagePath != p.ImagePath || other.Event != p.Event {
		return fmt.Errorf("profiledb: merge mismatch: %s/%v vs %s/%v",
			p.ImagePath, p.Event, other.ImagePath, other.Event)
	}
	for off, n := range other.Counts {
		p.Counts[off] += n
	}
	return nil
}

// Total returns the sum of all counts.
func (p *Profile) Total() uint64 {
	var t uint64
	for _, n := range p.Counts {
		t += n
	}
	return t
}

// Write encodes the profile. Offsets are sorted and delta-encoded, counts
// are varints; the result is typically an order of magnitude smaller than
// the image.
func (p *Profile) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], Version)
	hdr[2] = byte(p.Event)
	if err := writeByteN(bw, hdr[:]); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(len(p.ImagePath))); err != nil {
		return err
	}
	if _, err := bw.WriteString(p.ImagePath); err != nil {
		return err
	}

	if err := writePairs(bw, p); err != nil {
		return err
	}
	return bw.Flush()
}

// writePairs emits the sorted delta-varint (offset, count) pairs.
func writePairs(bw *bufio.Writer, p *Profile) error {
	offsets := make([]uint64, 0, len(p.Counts))
	for off := range p.Counts {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })

	if err := writeUvarint(bw, uint64(len(offsets))); err != nil {
		return err
	}
	var prev uint64
	for _, off := range offsets {
		if err := writeUvarint(bw, off-prev); err != nil {
			return err
		}
		if err := writeUvarint(bw, p.Counts[off]); err != nil {
			return err
		}
		prev = off
	}
	return nil
}

// eventFromByte validates and converts a stored event byte.
func eventFromByte(b byte) sim.Event { return sim.Event(b) }

// ReadProfile decodes a profile written by Write (version 1) or
// WriteCompressed (version 2).
func ReadProfile(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("profiledb: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, errors.New("profiledb: bad magic")
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if ev := sim.Event(hdr[2]); ev >= sim.NumEvents {
		return nil, fmt.Errorf("profiledb: bad event %d", hdr[2])
	}
	switch v := binary.LittleEndian.Uint16(hdr[0:]); v {
	case Version:
		return decodePayload(br, hdr[2])
	case VersionCompressed:
		return readCompressed(br, hdr[2])
	default:
		return nil, fmt.Errorf("profiledb: unsupported version %d", v)
	}
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	return atomicio.WriteUvarint(w, v)
}

func writeByteN(w *bufio.Writer, b []byte) error {
	_, err := w.Write(b)
	return err
}

// DB is a profile database rooted at a directory, organized into epochs.
type DB struct {
	root        string
	epoch       int
	readOnly    bool
	quarantined int // files quarantined by recovery passes over this DB's lifetime
}

// Open opens (or creates) a database for writing, resuming the latest
// epoch. It runs a recovery pass over that epoch, so a database left
// behind by a crashed writer opens with its intact profiles loadable and
// any torn file quarantined rather than failing every subsequent read.
//
// Open assumes it is the only writer: its recovery pass deletes .tmp files
// and renames undecodable profiles, which would sabotage a live daemon
// mid-write. Concurrent readers (the HTTP exposition endpoint, dcpicollect
// scrapes, offline tools pointed at a live database) must use OpenReader,
// which never mutates the directory.
func Open(root string) (*DB, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	db := &DB{root: root}
	latest, err := db.latestEpoch()
	if err != nil {
		return nil, err
	}
	if latest == 0 {
		latest = 1
	}
	db.epoch = latest
	if err := os.MkdirAll(db.epochDir(latest), 0o755); err != nil {
		return nil, err
	}
	if _, err := db.Recover(); err != nil {
		return nil, err
	}
	return db, nil
}

// OpenReader opens an existing database read-only, positioned at the
// latest epoch. It performs no recovery and no directory creation, so it
// is safe to call on a directory a live daemon is appending to: individual
// profile files are replaced atomically (temp+fsync+rename), so every read
// observes either the previous or the new complete content, and the
// daemon's in-flight .tmp files are left alone. Mutating methods (Update,
// NewEpoch, WriteMeta, Recover) fail on a reader handle.
func OpenReader(root string) (*DB, error) {
	db := &DB{root: root, readOnly: true}
	latest, err := db.latestEpoch()
	if err != nil {
		return nil, err
	}
	if latest == 0 {
		return nil, fmt.Errorf("profiledb: %s has no epochs", root)
	}
	db.epoch = latest
	return db, nil
}

// errReadOnly is returned by mutating methods on an OpenReader handle.
var errReadOnly = errors.New("profiledb: database opened read-only")

// latestEpoch scans root for the highest epoch directory (0 if none).
func (db *DB) latestEpoch() (int, error) {
	entries, err := os.ReadDir(db.root)
	if err != nil {
		return 0, err
	}
	latest := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if n, ok := parseEpochName(e.Name()); ok && n > latest {
			latest = n
		}
	}
	return latest, nil
}

// Epochs lists every epoch present in the database, ascending. On a
// database with a live writer the last entry may still be growing; a
// sealed epoch (see Sealed) is immutable.
func (db *DB) Epochs() ([]int, error) {
	entries, err := os.ReadDir(db.root)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if n, ok := parseEpochName(e.Name()); ok {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Sealed reports whether an epoch has been sealed: its collection metadata
// is on disk. The daemon writes epoch.meta last — after the final flush
// and merge — so a sealed epoch's profiles never change again. Scrapers
// use this to ingest each epoch exactly once, without ever observing a
// half-written one.
func (db *DB) Sealed(epoch int) bool {
	_, err := os.Stat(filepath.Join(db.epochDir(epoch), metaFile))
	return err == nil
}

// parseEpochName parses an epoch directory name strictly: "epoch-" followed
// by decimal digits only. (fmt.Sscanf prefix-matching accepted junk like
// "epoch-12x" as epoch 12.)
func parseEpochName(name string) (int, bool) {
	digits, ok := strings.CutPrefix(name, "epoch-")
	if !ok || digits == "" {
		return 0, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// Root returns the database directory.
func (db *DB) Root() string { return db.root }

// Epoch returns the current epoch number.
func (db *DB) Epoch() int { return db.epoch }

func (db *DB) epochDir(epoch int) string {
	return filepath.Join(db.root, fmt.Sprintf("epoch-%04d", epoch))
}

// NewEpoch starts a fresh epoch; subsequent updates land there.
func (db *DB) NewEpoch() error {
	if db.readOnly {
		return errReadOnly
	}
	db.epoch++
	return os.MkdirAll(db.epochDir(db.epoch), 0o755)
}

// fileName mangles an image path and event into a profile file name, the
// way DCPI stores one file per (image, event) combination.
func fileName(imagePath string, ev sim.Event) string {
	mangled := strings.NewReplacer("/", "_", "\\", "_", ":", "_").Replace(strings.TrimPrefix(imagePath, "/"))
	return mangled + "." + ev.String() + ".prof"
}

// Path returns the on-disk path for (imagePath, ev) in the current epoch.
func (db *DB) Path(imagePath string, ev sim.Event) string {
	return filepath.Join(db.epochDir(db.epoch), fileName(imagePath, ev))
}

// Update merges p into the on-disk profile for its (image, event) in the
// current epoch.
func (db *DB) Update(p *Profile) error {
	if db.readOnly {
		return errReadOnly
	}
	path := db.Path(p.ImagePath, p.Event)
	merged := p
	if f, err := os.Open(path); err == nil {
		existing, rerr := ReadProfile(f)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("profiledb: re-reading %s: %w", path, rerr)
		}
		if err := existing.Merge(p); err != nil {
			return err
		}
		merged = existing
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}

	return writeFileAtomic(path, merged.Write)
}

// writeFileAtomic is atomicio.WriteFile (temp+fsync+rename); it lives in
// internal/atomicio so the run cache shares the same crash-safety protocol.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	return atomicio.WriteFile(path, write)
}

// RecoveryReport summarizes what a recovery pass found.
type RecoveryReport struct {
	Quarantined []string // unreadable profiles renamed aside as NAME.bad
	Removed     []string // stale temp files deleted
}

// Clean reports whether recovery found nothing to repair.
func (r RecoveryReport) Clean() bool {
	return len(r.Quarantined) == 0 && len(r.Removed) == 0
}

// Recover scans the current epoch for the damage a crashed writer can leave
// behind: profile files that no longer decode are quarantined by renaming
// them to NAME.bad (keeping the bytes for post-mortem but hiding them from
// Profiles/Load), and stale .tmp files are deleted. Intact profiles are
// untouched, so a restarted daemon resumes merging into a consistent epoch.
func (db *DB) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	if db.readOnly {
		return rep, errReadOnly
	}
	dir := db.epochDir(db.epoch)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return rep, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		full := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			if err := os.Remove(full); err != nil {
				return rep, err
			}
			rep.Removed = append(rep.Removed, name)
		case strings.HasSuffix(name, ".prof"):
			f, err := os.Open(full)
			if err != nil {
				return rep, err
			}
			_, rerr := ReadProfile(f)
			f.Close()
			if rerr == nil {
				continue
			}
			if err := os.Rename(full, full+".bad"); err != nil {
				return rep, err
			}
			rep.Quarantined = append(rep.Quarantined, name)
		}
	}
	db.quarantined += len(rep.Quarantined)
	return rep, nil
}

// WriteTorn deliberately leaves a torn profile file for (fault-injection)
// crash tests: it writes only the first half of p's encoding directly at
// the final path — the state a crash leaves when a writer skipped the
// temp+rename protocol, or when the rename hit disk before the data blocks.
// It returns the raw-sample total the file's previous content held, since
// that already-merged data is destroyed along with the torn write.
func (db *DB) WriteTorn(p *Profile) (destroyed uint64, err error) {
	prior, err := db.Load(p.ImagePath, p.Event)
	if err == nil {
		destroyed = prior.Total()
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		return destroyed, err
	}
	return destroyed, os.WriteFile(db.Path(p.ImagePath, p.Event), buf.Bytes()[:buf.Len()/2], 0o644)
}

// Load reads the profile for (imagePath, ev) from the current epoch,
// returning an empty profile if none exists.
func (db *DB) Load(imagePath string, ev sim.Event) (*Profile, error) {
	f, err := os.Open(db.Path(imagePath, ev))
	if errors.Is(err, os.ErrNotExist) {
		return NewProfile(imagePath, ev), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProfile(f)
}

// Profiles lists every profile in the current epoch.
func (db *DB) Profiles() ([]*Profile, error) {
	return db.ProfilesAt(db.epoch)
}

// ProfilesAt lists every profile in the given epoch. Reading an epoch a
// live daemon is merging into is safe — each file is replaced atomically —
// but the set of files (and their counts) can differ between two calls;
// read sealed epochs for stable results.
func (db *DB) ProfilesAt(epoch int) ([]*Profile, error) {
	dir := db.epochDir(epoch)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*Profile
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".prof") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if errors.Is(err, os.ErrNotExist) {
			// Listed before an atomic replace, gone after: the file was
			// renamed aside by a writer's recovery. Skip it.
			continue
		}
		if err != nil {
			return nil, err
		}
		p, rerr := ReadProfile(f)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("profiledb: %s: %w", e.Name(), rerr)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ImagePath != out[j].ImagePath {
			return out[i].ImagePath < out[j].ImagePath
		}
		return out[i].Event < out[j].Event
	})
	return out, nil
}

// LoadAt reads the profile for (imagePath, ev) from the given epoch,
// returning an empty profile if none exists.
func (db *DB) LoadAt(epoch int, imagePath string, ev sim.Event) (*Profile, error) {
	f, err := os.Open(filepath.Join(db.epochDir(epoch), fileName(imagePath, ev)))
	if errors.Is(err, os.ErrNotExist) {
		return NewProfile(imagePath, ev), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProfile(f)
}

// DiskUsage returns the total bytes of all profile files in all epochs
// (Table 5's disk column).
func (db *DB) DiskUsage() (int64, error) {
	var total int64
	err := filepath.Walk(db.root, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(info.Name(), ".prof") {
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// PublishMetrics writes the database's self-measurements into reg (Table
// 5's disk column as machine-readable keys). It is best-effort: an
// unreadable directory simply leaves the gauges at their defaults.
func (db *DB) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("db.epoch").Set(float64(db.epoch))
	reg.Gauge("db.quarantined_files").Set(float64(db.quarantined))
	if disk, err := db.DiskUsage(); err == nil {
		reg.Gauge("db.disk_bytes").Set(float64(disk))
	}
	if profiles, err := db.Profiles(); err == nil {
		reg.Gauge("db.profiles").Set(float64(len(profiles)))
	}
}

// createFile creates a file, making parent directories as needed (test and
// tool convenience).
func createFile(path string) (*os.File, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	return os.Create(path)
}
