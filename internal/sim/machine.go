package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dcpi/internal/hw"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/mem"
	"dcpi/internal/obs"
	"dcpi/internal/par"
	"dcpi/internal/pipeline"
)

// Options configures a Machine.
type Options struct {
	// HW is the full hardware description (cache geometries, TLB and
	// write-buffer shapes, predictor size, issue width, timing model). The
	// zero value is the default 21164 machine (hw.Default).
	HW hw.Config
	// Model, when non-zero, overrides HW's timing model. It predates HW and
	// remains for callers that only perturb latencies.
	Model   pipeline.Model
	NumCPUs int // 0 -> 1
	ABI     KernelABI
	Loader  *loader.Loader
	Profile ProfileConfig

	// Seed drives virtual-to-physical page placement; different seeds model
	// different runs of the same workload (the wave5 variance effect).
	Seed      uint64
	PhysPages uint64 // 0 -> 64K pages (512 MB)

	Quantum       int64 // context-switch quantum in cycles; 0 -> 400K
	TimerInterval int64 // timer-interrupt interval; 0 -> same as Quantum

	// CollectExact turns on per-instruction execution and branch-direction
	// counting (the dcpix/pixie role).
	CollectExact bool

	// SimWorkers controls how many host goroutines Run spreads the
	// simulated CPUs over. CPUs are architecturally independent (private
	// caches, TLBs, counters, driver hash tables), so parallel and
	// sequential execution produce byte-identical results; see the
	// concurrency-model section of DESIGN.md.
	//
	//	 0 or 1  run CPUs sequentially on the caller's goroutine (default)
	//	-1       auto: take whatever the shared worker budget (internal/par)
	//	         has free, so nested run-level parallelism never
	//	         oversubscribes the host
	//	 n > 1   use min(n, NumCPUs) goroutines unconditionally
	SimWorkers int
}

// Counts holds exact execution counts, keyed by image ID.
type Counts struct {
	// Exec[imageID][i] is how many times instruction i executed.
	Exec map[uint32][]uint64
	// Taken[imageID][i] is how many times the conditional branch at i was
	// taken; Exec-Taken gives the fall-through count.
	Taken map[uint32][]uint64
}

func newCounts() *Counts {
	return &Counts{Exec: make(map[uint32][]uint64), Taken: make(map[uint32][]uint64)}
}

func (c *Counts) ensure(im *image.Image) ([]uint64, []uint64) {
	e, ok := c.Exec[im.ID]
	if !ok {
		e = make([]uint64, len(im.Code))
		c.Exec[im.ID] = e
		c.Taken[im.ID] = make([]uint64, len(im.Code))
	}
	return e, c.Taken[im.ID]
}

// merge folds a per-CPU shard into c. Counts are commutative sums, so the
// merged table is independent of CPU completion order.
func (c *Counts) merge(other *Counts) {
	if other == nil {
		return
	}
	for id, exec := range other.Exec {
		dst, ok := c.Exec[id]
		if !ok {
			dst = make([]uint64, len(exec))
			c.Exec[id] = dst
			c.Taken[id] = make([]uint64, len(exec))
		}
		for i, n := range exec {
			dst[i] += n
		}
		tk := c.Taken[id]
		for i, n := range other.Taken[id] {
			tk[i] += n
		}
	}
}

// Machine is the simulated multiprocessor.
type Machine struct {
	Model     pipeline.Model
	HW        hw.Config // resolved hardware description (HW.Model == Model)
	Loader    *loader.Loader
	KernelMem *mem.Sparse
	PageMap   *mem.PageMapper
	CPUs      []*CPU
	ABI       KernelABI
	Exact     *Counts

	cfg           ProfileConfig
	tables        *pipeline.Tables
	quantum       int64
	timerInterval int64
	nextCPU       int
	simWorkers    int
	physPages     uint64
	seed          uint64

	// running guards the spawn path: processes are created during workload
	// setup, before Run, and the scheduler's run queues are not safe to
	// grow while CPU goroutines execute.
	running atomic.Bool

	// Post-run parallelism telemetry (see PublishMetrics): how many worker
	// goroutines the last Run used, the final clock skew between the
	// fastest and slowest CPU, and how long the merge barrier waited
	// between the first and last CPU finishing (host wall time).
	lastWorkers   int
	cycleSkew     int64
	mergeWaitNano int64
}

// NewMachine builds a machine. The loader must already hold the kernel
// image; workloads then create processes and Spawn them onto CPUs.
func NewMachine(opts Options) *Machine {
	if opts.Loader == nil {
		panic("sim: Options.Loader is required")
	}
	hwc := opts.HW.Resolved()
	if opts.Model != (pipeline.Model{}) {
		hwc.Model = opts.Model
	}
	if err := hwc.Validate(); err != nil {
		panic("sim: " + err.Error())
	}
	model := hwc.Model
	ncpu := opts.NumCPUs
	if ncpu == 0 {
		ncpu = 1
	}
	physPages := opts.PhysPages
	if physPages == 0 {
		physPages = 64 * 1024
	}
	quantum := opts.Quantum
	if quantum == 0 {
		quantum = 400_000
	}
	timer := opts.TimerInterval
	if timer == 0 {
		timer = quantum
	}
	m := &Machine{
		Model:         model,
		HW:            hwc,
		Loader:        opts.Loader,
		KernelMem:     mem.NewSparse(),
		PageMap:       mem.NewPageMapper(physPages, opts.Seed),
		ABI:           opts.ABI,
		cfg:           opts.Profile.withDefaults(),
		tables:        pipeline.NewTables(model),
		quantum:       quantum,
		timerInterval: timer,
		simWorkers:    opts.SimWorkers,
		physPages:     physPages,
		seed:          opts.Seed,
	}
	if opts.CollectExact {
		m.Exact = newCounts()
	}
	for i := 0; i < ncpu; i++ {
		m.CPUs = append(m.CPUs, newCPU(i, m))
	}
	return m
}

// textASN returns the page-mapper key for an image's text pages. Text
// placement is keyed by image, not process, so shared libraries share
// physical pages (and cache lines) across processes.
func textASN(imageID uint32) uint32 { return 0x8000_0000 | imageID }

// dataASN returns the TLB/page-mapper context for a data address.
func dataASN(pid uint32, vaddr uint64) uint32 {
	if vaddr >= loader.KernelBase {
		return 0
	}
	return pid
}

// textPhys translates an image-relative text offset to a physical address.
func (m *Machine) textPhys(imageID uint32, off uint64) uint64 {
	return m.PageMap.Translate(textASN(imageID), off)
}

// Spawn assigns a process to a CPU round-robin and makes it runnable.
// Processes are spawned during workload setup; spawning onto a machine
// whose CPUs are executing is a scheduler race and panics.
func (m *Machine) Spawn(p *loader.Process) *CPU {
	if m.running.Load() {
		panic("sim: Spawn while Machine.Run is executing")
	}
	c := m.CPUs[m.nextCPU%len(m.CPUs)]
	m.nextCPU++
	c.runq = append(c.runq, p)
	return c
}

// SpawnOn assigns a process to a specific CPU (setup-time only, like Spawn).
func (m *Machine) SpawnOn(cpu int, p *loader.Process) {
	if m.running.Load() {
		panic("sim: SpawnOn while Machine.Run is executing")
	}
	m.CPUs[cpu].runq = append(m.CPUs[cpu].runq, p)
}

// workers resolves Options.SimWorkers against the machine size and the
// shared budget. It returns the goroutine count and how many budget slots
// were borrowed (to release after the run).
func (m *Machine) workers() (n, borrowed int) {
	ncpu := len(m.CPUs)
	switch {
	case m.simWorkers == 0 || m.simWorkers == 1 || ncpu == 1:
		return 1, 0
	case m.simWorkers > 1:
		if m.simWorkers < ncpu {
			return m.simWorkers, 0
		}
		return ncpu, 0
	default: // auto: the caller's goroutine plus whatever the budget has free
		borrowed = par.Default().TryExtra(ncpu - 1)
		return 1 + borrowed, borrowed
	}
}

// Run executes every CPU until its processes finish or it reaches maxCycles,
// and returns the maximum CPU clock (the wall-clock cycles of the run).
//
// CPUs are architecturally independent — private caches, TLBs, write
// buffers, counters, page-map views, and per-CPU driver/daemon state — so
// Run can spread them over SimWorkers goroutines with a barrier before the
// final merge; the interleaving never changes any simulated outcome and the
// output stays byte-identical to sequential execution (DESIGN.md,
// "Concurrency model"). With SimWorkers <= 1 the CPUs run sequentially on
// the caller's goroutine, exactly as before.
func (m *Machine) Run(maxCycles int64) int64 {
	workers, borrowed := m.workers()
	defer par.Default().Release(borrowed)
	m.lastWorkers = workers

	m.running.Store(true)
	if workers <= 1 {
		for _, c := range m.CPUs {
			c.Run(maxCycles)
			c.publishSnap()
		}
	} else {
		m.runParallel(maxCycles, workers)
	}
	m.running.Store(false)

	// Deterministic merge, in CPU order: exact-count shards fold into the
	// machine-wide table (commutative sums), and the final clock skew is
	// recorded for the parallelism gauges.
	var wall, minClock int64
	for i, c := range m.CPUs {
		if m.Exact != nil {
			m.Exact.merge(c.exact)
			c.exact = newCounts() // shard is folded in; don't double-count on a re-Run
		}
		if c.clock > wall {
			wall = c.clock
		}
		if i == 0 || c.clock < minClock {
			minClock = c.clock
		}
	}
	m.cycleSkew = wall - minClock
	return wall
}

// runParallel fans the CPUs out over a worker pool and waits at the barrier.
// CPU-to-goroutine assignment is work-stealing (and therefore host-timing
// dependent); that is safe precisely because no cross-CPU coupling remains —
// every shared structure a CPU touches mid-run is either sharded per CPU or
// explicitly synchronized (the daemon's mutex, the observability sinks).
func (m *Machine) runParallel(maxCycles int64, workers int) {
	// Pre-build every image's lazily-decoded metadata table while still
	// single-threaded, so CPU goroutines only ever read them.
	for _, im := range m.Loader.Images() {
		im.MetaTable()
	}

	work := make(chan *CPU, len(m.CPUs))
	for _, c := range m.CPUs {
		work <- c
	}
	close(work)

	var (
		wg          sync.WaitGroup
		firstDoneNS atomic.Int64
	)
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				c.Run(maxCycles)
				c.publishSnap()
			}
			firstDoneNS.CompareAndSwap(0, time.Since(start).Nanoseconds())
		}()
	}
	wg.Wait()
	// Merge wait: how long the barrier sat between the first worker going
	// idle and the last one finishing (stragglers stall the merge).
	if f := firstDoneNS.Load(); f > 0 {
		m.mergeWaitNano = time.Since(start).Nanoseconds() - f
	}
}

// Stats aggregates machine-wide statistics.
type Stats struct {
	Cycles       int64
	Instructions uint64
	IssueGroups  uint64
	Samples      uint64
	ICacheMisses uint64
	DCacheMisses uint64
	ITBMisses    uint64
	DTBMisses    uint64
	Mispredicts  uint64
	WBOverflows  uint64
	Faults       uint64
}

// Stats sums statistics over all CPUs. It is safe to call while Run is
// executing: each CPU periodically publishes an immutable snapshot of its
// counters (and a final one when it finishes), and Stats reads only those
// snapshots — a consistent, slightly-stale view mid-run, and the exact
// totals once Run has returned.
func (m *Machine) Stats() Stats {
	var s Stats
	for _, c := range m.CPUs {
		cs := c.snap.Load()
		if cs == nil {
			continue
		}
		if cs.Cycles > s.Cycles {
			s.Cycles = cs.Cycles
		}
		s.Instructions += cs.Instructions
		s.IssueGroups += cs.IssueGroups
		s.Samples += cs.Samples
		s.ICacheMisses += cs.ICacheMisses
		s.DCacheMisses += cs.DCacheMisses
		s.ITBMisses += cs.ITBMisses
		s.DTBMisses += cs.DTBMisses
		s.Mispredicts += cs.Mispredicts
		s.WBOverflows += cs.WBOverflows
		s.Faults += cs.Faults
	}
	return s
}

// PublishMetrics writes the machine-wide statistics into reg (call once,
// at the end of a run): the denominators every per-sample self-measurement
// in the metrics artifact is normalized against.
func (m *Machine) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := m.Stats()
	reg.Gauge("machine.wall_cycles").Set(float64(s.Cycles))
	reg.Counter("machine.instructions").Add(s.Instructions)
	reg.Counter("machine.issue_groups").Add(s.IssueGroups)
	reg.Counter("machine.samples").Add(s.Samples)
	reg.Counter("machine.icache_misses").Add(s.ICacheMisses)
	reg.Counter("machine.dcache_misses").Add(s.DCacheMisses)
	reg.Counter("machine.itb_misses").Add(s.ITBMisses)
	reg.Counter("machine.dtb_misses").Add(s.DTBMisses)
	reg.Counter("machine.mispredicts").Add(s.Mispredicts)
	reg.Counter("machine.wb_overflows").Add(s.WBOverflows)
	reg.Counter("machine.faults").Add(s.Faults)
	reg.Gauge("machine.num_cpus").Set(float64(len(m.CPUs)))
	// Parallel-simulation telemetry: goroutine slots used by the last Run,
	// the final cycle skew between fastest and slowest CPU, and the host
	// time the merge barrier spent waiting on stragglers.
	reg.Gauge("sim.workers").Set(float64(m.lastWorkers))
	reg.Gauge("sim.cycle_skew_cycles").Set(float64(m.cycleSkew))
	reg.Gauge("sim.merge_wait_us").Set(float64(m.mergeWaitNano) / 1e3)
	par.Default().PublishMetrics(reg)
}

func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d insts=%d groups=%d samples=%d imiss=%d dmiss=%d itb=%d dtb=%d bmp=%d wb=%d faults=%d",
		s.Cycles, s.Instructions, s.IssueGroups, s.Samples, s.ICacheMisses,
		s.DCacheMisses, s.ITBMisses, s.DTBMisses, s.Mispredicts, s.WBOverflows, s.Faults)
}

// procMem adapts a process's split address space (user memory below
// KernelBase, kernel memory above) to the alpha.Memory interface. Each CPU
// owns one procMem and retargets its p field on every issue group, so the
// executor sees a stable *procMem interface value and the per-instruction
// interface boxing (one heap allocation per Execute call) disappears.
type procMem struct {
	p *loader.Process
	k *mem.Sparse
}

func (pm *procMem) Load(addr uint64, size int) uint64 {
	if addr >= loader.KernelBase {
		return pm.k.Load(addr, size)
	}
	return pm.p.Mem.Load(addr, size)
}

func (pm *procMem) Store(addr uint64, size int, val uint64) {
	if addr >= loader.KernelBase {
		pm.k.Store(addr, size, val)
		return
	}
	pm.p.Mem.Store(addr, size, val)
}
