package sim

import (
	"fmt"

	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/mem"
	"dcpi/internal/obs"
	"dcpi/internal/pipeline"
)

// Options configures a Machine.
type Options struct {
	Model   pipeline.Model // zero value -> pipeline.Default()
	NumCPUs int            // 0 -> 1
	ABI     KernelABI
	Loader  *loader.Loader
	Profile ProfileConfig

	// Seed drives virtual-to-physical page placement; different seeds model
	// different runs of the same workload (the wave5 variance effect).
	Seed      uint64
	PhysPages uint64 // 0 -> 64K pages (512 MB)

	Quantum       int64 // context-switch quantum in cycles; 0 -> 400K
	TimerInterval int64 // timer-interrupt interval; 0 -> same as Quantum

	// CollectExact turns on per-instruction execution and branch-direction
	// counting (the dcpix/pixie role).
	CollectExact bool
}

// Counts holds exact execution counts, keyed by image ID.
type Counts struct {
	// Exec[imageID][i] is how many times instruction i executed.
	Exec map[uint32][]uint64
	// Taken[imageID][i] is how many times the conditional branch at i was
	// taken; Exec-Taken gives the fall-through count.
	Taken map[uint32][]uint64
}

func newCounts() *Counts {
	return &Counts{Exec: make(map[uint32][]uint64), Taken: make(map[uint32][]uint64)}
}

func (c *Counts) ensure(im *image.Image) ([]uint64, []uint64) {
	e, ok := c.Exec[im.ID]
	if !ok {
		e = make([]uint64, len(im.Code))
		c.Exec[im.ID] = e
		c.Taken[im.ID] = make([]uint64, len(im.Code))
	}
	return e, c.Taken[im.ID]
}

// Machine is the simulated multiprocessor.
type Machine struct {
	Model     pipeline.Model
	Loader    *loader.Loader
	KernelMem *mem.Sparse
	PageMap   *mem.PageMapper
	CPUs      []*CPU
	ABI       KernelABI
	Exact     *Counts

	cfg           ProfileConfig
	tables        *pipeline.Tables
	quantum       int64
	timerInterval int64
	nextCPU       int
}

// NewMachine builds a machine. The loader must already hold the kernel
// image; workloads then create processes and Spawn them onto CPUs.
func NewMachine(opts Options) *Machine {
	if opts.Loader == nil {
		panic("sim: Options.Loader is required")
	}
	model := opts.Model
	if model == (pipeline.Model{}) {
		model = pipeline.Default()
	}
	ncpu := opts.NumCPUs
	if ncpu == 0 {
		ncpu = 1
	}
	physPages := opts.PhysPages
	if physPages == 0 {
		physPages = 64 * 1024
	}
	quantum := opts.Quantum
	if quantum == 0 {
		quantum = 400_000
	}
	timer := opts.TimerInterval
	if timer == 0 {
		timer = quantum
	}
	m := &Machine{
		Model:         model,
		Loader:        opts.Loader,
		KernelMem:     mem.NewSparse(),
		PageMap:       mem.NewPageMapper(physPages, opts.Seed),
		ABI:           opts.ABI,
		cfg:           opts.Profile.withDefaults(),
		tables:        pipeline.NewTables(model),
		quantum:       quantum,
		timerInterval: timer,
	}
	if opts.CollectExact {
		m.Exact = newCounts()
	}
	for i := 0; i < ncpu; i++ {
		m.CPUs = append(m.CPUs, newCPU(i, m))
	}
	return m
}

// textASN returns the page-mapper key for an image's text pages. Text
// placement is keyed by image, not process, so shared libraries share
// physical pages (and cache lines) across processes.
func textASN(imageID uint32) uint32 { return 0x8000_0000 | imageID }

// dataASN returns the TLB/page-mapper context for a data address.
func dataASN(pid uint32, vaddr uint64) uint32 {
	if vaddr >= loader.KernelBase {
		return 0
	}
	return pid
}

// textPhys translates an image-relative text offset to a physical address.
func (m *Machine) textPhys(imageID uint32, off uint64) uint64 {
	return m.PageMap.Translate(textASN(imageID), off)
}

// Spawn assigns a process to a CPU round-robin and makes it runnable.
func (m *Machine) Spawn(p *loader.Process) *CPU {
	c := m.CPUs[m.nextCPU%len(m.CPUs)]
	m.nextCPU++
	c.runq = append(c.runq, p)
	return c
}

// SpawnOn assigns a process to a specific CPU.
func (m *Machine) SpawnOn(cpu int, p *loader.Process) {
	m.CPUs[cpu].runq = append(m.CPUs[cpu].runq, p)
}

// Run executes every CPU until its processes finish or it reaches maxCycles.
// CPUs are independent (private caches); they run sequentially in
// simulation. It returns the maximum CPU clock (the wall-clock cycles of the
// run).
func (m *Machine) Run(maxCycles int64) int64 {
	var wall int64
	for _, c := range m.CPUs {
		c.Run(maxCycles)
		if c.clock > wall {
			wall = c.clock
		}
	}
	return wall
}

// Stats aggregates machine-wide statistics.
type Stats struct {
	Cycles       int64
	Instructions uint64
	IssueGroups  uint64
	Samples      uint64
	ICacheMisses uint64
	DCacheMisses uint64
	ITBMisses    uint64
	DTBMisses    uint64
	Mispredicts  uint64
	WBOverflows  uint64
	Faults       uint64
}

// Stats sums statistics over all CPUs.
func (m *Machine) Stats() Stats {
	var s Stats
	for _, c := range m.CPUs {
		if c.clock > s.Cycles {
			s.Cycles = c.clock
		}
		s.Instructions += c.instructions
		s.IssueGroups += c.groups
		s.Samples += c.samples
		s.ICacheMisses += c.icache.Misses
		s.DCacheMisses += c.dcache.Misses
		s.ITBMisses += c.itb.Misses
		s.DTBMisses += c.dtb.Misses
		s.Mispredicts += c.pred.Mispredicts
		s.WBOverflows += c.wb.Overflows
		s.Faults += c.faults
	}
	return s
}

// PublishMetrics writes the machine-wide statistics into reg (call once,
// at the end of a run): the denominators every per-sample self-measurement
// in the metrics artifact is normalized against.
func (m *Machine) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := m.Stats()
	reg.Gauge("machine.wall_cycles").Set(float64(s.Cycles))
	reg.Counter("machine.instructions").Add(s.Instructions)
	reg.Counter("machine.issue_groups").Add(s.IssueGroups)
	reg.Counter("machine.samples").Add(s.Samples)
	reg.Counter("machine.icache_misses").Add(s.ICacheMisses)
	reg.Counter("machine.dcache_misses").Add(s.DCacheMisses)
	reg.Counter("machine.itb_misses").Add(s.ITBMisses)
	reg.Counter("machine.dtb_misses").Add(s.DTBMisses)
	reg.Counter("machine.mispredicts").Add(s.Mispredicts)
	reg.Counter("machine.wb_overflows").Add(s.WBOverflows)
	reg.Counter("machine.faults").Add(s.Faults)
	reg.Gauge("machine.num_cpus").Set(float64(len(m.CPUs)))
}

func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d insts=%d groups=%d samples=%d imiss=%d dmiss=%d itb=%d dtb=%d bmp=%d wb=%d faults=%d",
		s.Cycles, s.Instructions, s.IssueGroups, s.Samples, s.ICacheMisses,
		s.DCacheMisses, s.ITBMisses, s.DTBMisses, s.Mispredicts, s.WBOverflows, s.Faults)
}

// procMem adapts a process's split address space (user memory below
// KernelBase, kernel memory above) to the alpha.Memory interface. Each CPU
// owns one procMem and retargets its p field on every issue group, so the
// executor sees a stable *procMem interface value and the per-instruction
// interface boxing (one heap allocation per Execute call) disappears.
type procMem struct {
	p *loader.Process
	k *mem.Sparse
}

func (pm *procMem) Load(addr uint64, size int) uint64 {
	if addr >= loader.KernelBase {
		return pm.k.Load(addr, size)
	}
	return pm.p.Mem.Load(addr, size)
}

func (pm *procMem) Store(addr uint64, size int, val uint64) {
	if addr >= loader.KernelBase {
		pm.k.Store(addr, size, val)
		return
	}
	pm.p.Mem.Store(addr, size, val)
}
