package sim

import (
	"testing"

	"dcpi/internal/loader"
)

// TestPALWindowAttribution: samples whose delivery falls inside the
// uninterruptible PAL sequence accumulate on the next instruction — the
// kernel entry point for callsys (paper §4.1.3: "the samples for 'deliver
// interrupt' accumulate at that entry point").
func TestPALWindowAttribution(t *testing.T) {
	// The program spends nearly all its time issuing call_pal syscalls, so
	// a large share of deliveries land in PAL windows.
	src := `
main:
	lda t8, 400(zero)
.loop:
	lda v0, 1(zero)        ; yield
	call_pal 0x83
	subq t8, 1, t8
	bne t8, .loop
	halt
`
	sink := &captureSink{}
	m, _ := testMachine(t, src, Options{Profile: ProfileConfig{
		Mode:         ModeCycles,
		Sink:         sink,
		CyclesPeriod: PeriodSpec{Base: 64, Spread: 16},
	}})
	m.Run(1 << 30)
	if len(sink.samples) < 50 {
		t.Fatalf("samples = %d", len(sink.samples))
	}
	// The kernel syscall entry (offset 0 of vmunix) must have accumulated
	// samples: PAL-window deliveries land on it.
	var kernelEntry, user int
	for _, s := range sink.samples {
		if s.PC >= loader.KernelBase {
			if s.PC == loader.KernelBase+m.ABI.SyscallEntry {
				kernelEntry++
			}
		} else {
			user++
		}
	}
	if kernelEntry == 0 {
		t.Error("no samples accumulated at the syscall entry point")
	}
}

// TestSkewedEventAttribution: DMISS samples are delivered late and land on
// a *later* instruction than the miss (paper §4.1.2: "samples associated
// with events caused by a given instruction can show up on instructions a
// few cycles later in the instruction stream").
func TestSkewedEventAttribution(t *testing.T) {
	// A pointer-chasing loop: all D-cache misses come from the single ldq.
	src := `
main:
	lda t0, 3000(zero)
	bis a0, zero, t1
.chase:
	ldq t1, 0(t1)
	subq t0, 1, t0
	bne t0, .chase
	halt
`
	sink := &captureSink{}
	m, p := testMachine(t, src, Options{Profile: ProfileConfig{
		Mode:         ModeMux,
		Sink:         sink,
		CyclesPeriod: PeriodSpec{Base: 100000, Spread: 1000},
		EventPeriod:  PeriodSpec{Base: 8, Spread: 2},
		MuxInterval:  1 << 8, // rotate fast so DMISS gets turns
	}})
	// Pointer ring across pages so every load misses.
	const cells = 256
	for i := 0; i < cells; i++ {
		addr := loader.HeapBase + uint64(i)*8192
		next := loader.HeapBase + uint64((i+1)%cells)*8192
		p.Mem.Store(addr, 8, next)
	}
	p.Regs.WriteI(16, loader.HeapBase) // a0
	m.Run(1 << 30)

	ldqPC := loader.UserTextBase + 2*4
	var dmiss, onLdq int
	for _, s := range sink.samples {
		if s.Event == EvDMiss {
			dmiss++
			if s.PC == ldqPC {
				onLdq++
			}
		}
	}
	if dmiss < 10 {
		t.Fatalf("dmiss samples = %d", dmiss)
	}
	// Skewed delivery: the misses are all caused by the ldq, but samples
	// should land mostly on *other* (later) instructions.
	if onLdq == dmiss {
		t.Error("DMISS samples not skewed: all landed on the missing load")
	}
}

// TestIdleSamplesAttributeToKernel: when all processes sleep, the idle
// thread runs and its samples carry PID 0 and kernel PCs.
func TestIdleSamplesAttributeToKernel(t *testing.T) {
	src := `
main:
	lda v0, 2(zero)
	lda a1, 200000(zero)
	call_pal 0x83          ; sleep a long time
	halt
`
	sink := &captureSink{}
	m, _ := testMachine(t, src, Options{Profile: ProfileConfig{
		Mode:         ModeCycles,
		Sink:         sink,
		CyclesPeriod: PeriodSpec{Base: 512, Spread: 64},
	}})
	m.Run(1 << 30)
	var idle int
	for _, s := range sink.samples {
		if s.PID == 0 {
			idle++
			if s.PC < loader.KernelBase {
				t.Fatalf("idle sample with user PC %#x", s.PC)
			}
		}
	}
	if idle < 100 {
		t.Errorf("idle samples = %d, want many during a long sleep", idle)
	}
}

// TestDoubleSampleDropsCrossProcessPairs: the second PC of a pair is only
// valid within one process context.
func TestDoubleSampleDropsCrossProcessPairs(t *testing.T) {
	sink := &captureSink{}
	m, _ := testMachine(t, sumProgram, Options{Profile: ProfileConfig{
		Mode:         ModeCycles,
		Sink:         sink,
		CyclesPeriod: PeriodSpec{Base: 128, Spread: 16},
		DoubleSample: true,
	}})
	m.Run(1 << 30)
	var edges int
	for _, s := range sink.samples {
		if s.Event == EvEdge {
			edges++
			if s.PC2 == 0 {
				t.Error("edge sample without second PC")
			}
		}
	}
	if edges == 0 {
		t.Fatal("no edge samples")
	}
	// Edges must be at most one per CYCLES sample.
	var cycles int
	for _, s := range sink.samples {
		if s.Event == EvCycles {
			cycles++
		}
	}
	if edges > cycles {
		t.Errorf("edges (%d) exceed cycles samples (%d)", edges, cycles)
	}
}

// TestMultiCPUDeterminism: the full multiprocessor run is reproducible.
func TestMultiCPUDeterminism(t *testing.T) {
	run := func() Stats {
		kernel, abi := testKernel()
		l := loader.New(kernel)
		m := NewMachine(Options{Loader: l, ABI: abi, NumCPUs: 2, Seed: 77,
			Profile: ProfileConfig{Mode: ModeCycles, CyclesPeriod: PeriodSpec{Base: 512, Spread: 64}}})
		for i := 0; i < 4; i++ {
			p := mustProcess(t, l, sumProgram)
			m.Spawn(p)
		}
		m.Run(1 << 30)
		return m.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("multiprocessor run not deterministic:\n%v\n%v", a, b)
	}
}

// TestTimerDisabledWhileInKernel: timer interrupts never preempt kernel
// mode (high IPL defers them, paper §4.1.3).
func TestTimerDisabledWhileInKernel(t *testing.T) {
	// A syscall-heavy program with a quantum shorter than the kernel path
	// would deadlock or corrupt state if timers fired mid-kernel; the test
	// passes if everything completes normally.
	src := `
main:
	lda t8, 300(zero)
.loop:
	lda v0, 3(zero)        ; write
	lda a0, 0(zero)
	lda a1, 64(zero)
	call_pal 0x83
	subq t8, 1, t8
	bne t8, .loop
	halt
`
	m, p := testMachine(t, src, Options{Quantum: 50})
	m.Run(1 << 31)
	if p.State != loader.ProcExited {
		t.Fatalf("state = %v at pc %#x", p.State, p.PC)
	}
	if m.Stats().Faults != 0 {
		t.Error("faults during syscall-heavy run")
	}
}

// TestSamplingDensity: the number of CYCLES samples matches wall / mean
// period — the statistical foundation everything else rests on.
func TestSamplingDensity(t *testing.T) {
	src := `
main:
	lda t0, 0(zero)
	ldah t2, 4(zero)
.loop:
	addq t0, 1, t0
	xor t0, t3, t3
	cmpult t0, t2, t1
	bne t1, .loop
	halt
`
	sink := &captureSink{}
	m, _ := testMachine(t, src, Options{Profile: ProfileConfig{
		Mode:         ModeCycles,
		Sink:         sink,
		CyclesPeriod: PeriodSpec{Base: 900, Spread: 200},
	}})
	wall := m.Run(1 << 31)
	expected := float64(wall) / 1000.0
	got := float64(len(sink.samples))
	if got < 0.9*expected || got > 1.1*expected {
		t.Errorf("samples = %.0f, expected ≈ %.0f (wall %d / period 1000)", got, expected, wall)
	}
}

// TestMuxRotationFair: over a long run the mux slot visits all three events
// roughly equally, so each event accumulates counts.
func TestMuxRotationFair(t *testing.T) {
	sink := &captureSink{}
	m, p := testMachine(t, `
main:
	lda t0, 0(zero)
	ldah t2, 2(zero)
	bis a0, zero, t4
.loop:
	ldq t4, 0(t4)        ; chase: dmiss stream
	addq t0, 1, t0
	cmpult t0, t2, t1
	bne t1, .loop
	halt
`, Options{Profile: ProfileConfig{
		Mode:         ModeMux,
		Sink:         sink,
		CyclesPeriod: PeriodSpec{Base: 1 << 20, Spread: 2},
		EventPeriod:  PeriodSpec{Base: 32, Spread: 8},
		MuxInterval:  2048,
	}})
	const cells = 128
	for i := 0; i < cells; i++ {
		addr := loader.HeapBase + uint64(i)*8192
		next := loader.HeapBase + uint64((i+1)%cells)*8192
		p.Mem.Store(addr, 8, next)
	}
	p.Regs.WriteI(16, loader.HeapBase)
	m.Run(1 << 31)
	counts := map[Event]int{}
	for _, s := range sink.samples {
		counts[s.Event]++
	}
	// The chase loop generates dmiss and branch events continuously; both
	// should accumulate to samples across mux windows even with an event
	// period longer than one window's event count.
	if counts[EvDMiss] == 0 {
		t.Errorf("no dmiss samples across mux rotations: %v", counts)
	}
	if counts[EvBranchMP] == 0 {
		t.Logf("note: no branchmp samples (predictor too good): %v", counts)
	}
}
