package sim

import (
	"sync/atomic"

	"dcpi/internal/alpha"
	"dcpi/internal/hw"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/mem"
	"dcpi/internal/pipeline"
)

// The machine's structural description — cache geometries, TLB capacities,
// write-buffer shape, predictor size, issue width — lives in hw.Config
// (hw.Default is the 21164 of DESIGN.md §3); each CPU is built from the
// machine's resolved copy. The default write-buffer drain of 120 cycles per
// 32-byte line models the *contended* memory write path: when a loop streams
// (reads competing with writebacks for the memory bus), stores cannot retire
// faster than this, which is what makes the six-entry buffer fill and the
// paper's Figure 2 stq stalls appear (~10 CPI in the streaming copy loop).
const deliverySkew = 6 // cycles between counter overflow and interrupt delivery

// CPU is one simulated processor: private caches, TLBs, write buffer,
// branch predictor, performance counters, and a run queue of processes.
type CPU struct {
	id    int
	m     *Machine
	model pipeline.Model
	// tab is the model flattened into per-opcode arrays (latency, FU use),
	// shared by every CPU of the machine; the per-cycle loop indexes it
	// instead of re-walking the opcode-class switches.
	tab *pipeline.Tables

	icache, dcache, board *mem.Cache
	itb, dtb              *mem.TLB
	wb                    *mem.WriteBuffer
	pred                  *mem.Predictor

	// Issue-group state: width is hw.Config.IssueWidth; the fixed-size
	// buffers hold the group formed so far, so widening the group past two
	// never allocates on the step path.
	width      int
	groupInsts [hw.MaxIssueWidth]alpha.Inst
	groupMetas [hw.MaxIssueWidth]*alpha.InstMeta

	clock    int64
	regReady [64]int64 // 0..31 integer, 32..63 floating point
	fuFree   [4]int64  // indexed by pipeline.FU

	// Fetch state.
	fetchReadyAt  int64
	lastFetchLine uint64
	haveFetchLine bool
	lastITBPage   uint64
	lastITBASN    uint32
	haveITBPage   bool

	// Performance counters.
	rng        *carta
	cycEnabled bool
	cycNext    int64 // absolute cycle of the next CYCLES overflow
	evEnabled  bool
	evActive   Event
	// evRemaining holds each event counter's residual count; values
	// persist across mux rotations (the hardware counter is saved and
	// restored when the monitored event switches, so fine-grain
	// multiplexing still accumulates to overflow).
	evRemaining [NumEvents]int64
	muxSlot     int64
	skewed      []Event // event samples awaiting skewed delivery
	pendingCost int64
	nextPoll    int64

	// Double sampling (§7): the second interrupt fires at the next issue
	// group, pairing the previous sample's PC with the next head PC.
	pendingEdge bool
	edgeFromPC  uint64
	edgeFromPID uint32

	// Scheduling.
	runq      []*loader.Process
	cur       *loader.Process
	rrNext    int
	curSince  int64
	nextTimer int64
	resched   bool
	idle      *loader.Process

	// Statistics.
	instructions, groups, samples, faults uint64
	itbMissStalls                         uint64
	SampleCounts                          [NumEvents]uint64
	ContextSwitches                       uint64

	// snap is the CPU's latest published statistics snapshot: an immutable
	// Stats the machine-wide aggregation reads while this CPU runs (the
	// raw counter fields above have a single writer — the CPU's goroutine —
	// and are unsafe to read concurrently). Refreshed every snapInterval
	// issue groups and once more when Run returns.
	snap          atomic.Pointer[Stats]
	snapCountdown int64

	// Per-CPU shards of what used to be machine-global state, so CPUs can
	// run on separate goroutines without cross-CPU coupling:
	//
	//	pmap  private page-map view. Translation is a pure (seeded) hash,
	//	      so every view assigns identical physical pages; the map inside
	//	      is only memoization.
	//	kmem  private kernel data memory. Kernel code stores tick counters
	//	      and staging copies here, but no kernel *value* ever reaches a
	//	      branch condition or sample — only addresses matter (cache
	//	      behaviour), and those are identical across CPUs.
	//	exact private exact-count shard, merged machine-wide (commutative
	//	      sums, CPU order) after the run barrier.
	pmap  *mem.PageMapper
	kmem  *mem.Sparse
	exact *Counts

	// Pre-allocated executor state: xmem adapts the current process's
	// split address space; xmemI is the one interface value handed to
	// alpha.Execute, so the hot loop never boxes a new one.
	xmem  procMem
	xmemI alpha.Memory
}

func newCPU(id int, m *Machine) *CPU {
	hwc := m.HW
	c := &CPU{
		id:     id,
		m:      m,
		model:  m.Model,
		tab:    m.tables,
		width:  hwc.IssueWidth,
		icache: mem.NewCache(hwc.ICache.CacheConfig("icache")),
		dcache: mem.NewCache(hwc.DCache.CacheConfig("dcache")),
		board:  mem.NewCache(hwc.Board.CacheConfig("board")),
		itb:    mem.NewTLB(hwc.ITBEntries),
		dtb:    mem.NewTLB(hwc.DTBEntries),
		wb:     mem.NewWriteBuffer(hwc.WBEntries, hwc.WBDrainCycles),
		pred:   mem.NewPredictor(hwc.PredEntries),
		rng:    newCarta(m.cfg.Seed + uint32(id)*7919 + 1),
		// Steady-state scratch, sized once so the sample path never grows
		// it: skewed holds at most a few miss events per issue group.
		skewed:        make([]Event, 0, 8),
		pmap:          mem.NewPageMapper(m.physPages, m.seed),
		kmem:          mem.NewSparse(),
		snapCountdown: snapInterval,
	}
	c.xmem = procMem{k: c.kmem}
	c.xmemI = &c.xmem
	if m.Exact != nil {
		c.exact = newCounts()
	}
	switch m.cfg.Mode {
	case ModeCycles:
		c.cycEnabled = true
	case ModeDefault, ModeMux:
		c.cycEnabled = true
		c.evEnabled = true
	}
	c.evActive = EvIMiss
	if c.cycEnabled {
		c.cycNext = m.cfg.CyclesPeriod.draw(c.rng)
	}
	if c.evEnabled {
		for _, ev := range []Event{EvIMiss, EvDMiss, EvBranchMP, EvDTBMiss} {
			c.evRemaining[ev] = m.cfg.EventPeriod.draw(c.rng)
		}
	}
	c.nextTimer = m.timerInterval
	c.nextPoll = m.cfg.PollInterval
	return c
}

// Clock returns the CPU's current cycle count (post-run; mid-run readers
// must use Machine.Stats, which reads the published snapshots).
func (c *CPU) Clock() int64 { return c.clock }

// Samples returns the number of samples this CPU delivered (post-run).
func (c *CPU) Samples() uint64 { return c.samples }

// snapInterval is how many issue groups pass between snapshot refreshes:
// rare enough that the one heap allocation per publish vanishes from the
// per-step allocation profile, frequent enough that mid-run Stats readers
// see the counters advance.
const snapInterval = 8192

// publishSnap publishes an immutable statistics snapshot for concurrent
// readers (Machine.Stats).
func (c *CPU) publishSnap() {
	c.snap.Store(&Stats{
		Cycles:       c.clock,
		Instructions: c.instructions,
		IssueGroups:  c.groups,
		Samples:      c.samples,
		ICacheMisses: c.icache.Misses,
		DCacheMisses: c.dcache.Misses,
		ITBMisses:    c.itb.Misses,
		DTBMisses:    c.dtb.Misses,
		Mispredicts:  c.pred.Mispredicts,
		WBOverflows:  c.wb.Overflows,
		Faults:       c.faults,
	})
}

// textPhys translates an image-relative text offset through this CPU's
// page-map view (identical placements on every view; see the pmap field).
func (c *CPU) textPhys(imageID uint32, off uint64) uint64 {
	return c.pmap.Translate(textASN(imageID), off)
}

func ridx(o alpha.Operand) int {
	if o.FP {
		return 32 + int(o.Reg)
	}
	return int(o.Reg)
}

// Run executes until the run queue is drained or the clock reaches
// maxCycles.
func (c *CPU) Run(maxCycles int64) {
	for c.clock < maxCycles {
		if !c.step() {
			return
		}
	}
}

// idleProc lazily creates the kernel idle pseudo-process (PID 0).
func (c *CPU) idleProc() *loader.Process {
	if c.idle == nil {
		p := &loader.Process{PID: 0, Name: "kernel idle", Mem: mem.NewSparse()}
		if err := p.Map(c.m.Loader.Kernel(), loader.KernelBase); err != nil {
			panic(err)
		}
		p.PC = loader.KernelBase + c.m.ABI.IdleEntry
		p.InKernel = true
		c.idle = p
	}
	return c.idle
}

// ensureProcess wakes sleepers and picks the process to run. It returns
// false when every process has exited.
func (c *CPU) ensureProcess() bool {
	anyBlocked := false
	for _, p := range c.runq {
		if p.State == loader.ProcBlocked {
			if p.WakeAt <= c.clock {
				p.State = loader.ProcRunnable
			} else {
				anyBlocked = true
			}
		}
	}
	if c.cur != nil && c.cur != c.idle && c.cur.State == loader.ProcRunnable && !c.resched {
		return true
	}
	c.resched = false
	n := len(c.runq)
	for i := 0; i < n; i++ {
		p := c.runq[(c.rrNext+i)%n]
		if p.State == loader.ProcRunnable {
			c.rrNext = (c.rrNext + i + 1) % n
			c.switchTo(p)
			return true
		}
	}
	if !anyBlocked {
		return false // everything exited
	}
	c.switchTo(c.idleProc())
	return true
}

func (c *CPU) switchTo(p *loader.Process) {
	if p == c.cur {
		return
	}
	c.cur = p
	c.curSince = c.clock
	c.ContextSwitches++
	for i := range c.regReady {
		c.regReady[i] = c.clock
	}
	c.haveITBPage = false
	if c.nextTimer < c.clock {
		c.nextTimer = c.clock + c.m.timerInterval
	}
}

func (c *CPU) fault(p *loader.Process) {
	c.faults++
	c.exit(p)
}

// exit terminates a process and tells the loader (which tells the daemon).
func (c *CPU) exit(p *loader.Process) {
	p.State = loader.ProcExited
	c.cur = nil
	c.m.Loader.ProcessExited(p.PID)
}

// fetch models the front end for the instruction at (im, off), virtual
// address pc: ITB lookup and I-cache access. It returns the added fetch
// penalty in cycles.
func (c *CPU) fetch(p *loader.Process, im *image.Image, off, pc uint64) int64 {
	var penalty int64
	vpage := mem.PageOf(pc)
	asn := fetchASN(p.PID, pc)
	if !c.haveITBPage || vpage != c.lastITBPage || asn != c.lastITBASN {
		if !c.itb.Lookup(asn, vpage) {
			penalty += c.model.TLBMissPenalty
			c.itbMissStalls++
		}
		c.lastITBPage, c.lastITBASN, c.haveITBPage = vpage, asn, true
	}
	phys := c.textPhys(im.ID, off)
	line := c.icache.LineOf(phys)
	if !c.haveFetchLine || line != c.lastFetchLine {
		c.lastFetchLine, c.haveFetchLine = line, true
		if !c.icache.Access(phys) {
			c.countEvent(EvIMiss, p.PID, pc)
			if c.board.Access(phys) {
				penalty += c.model.L2Lat
			} else {
				penalty += c.model.MemLat
			}
		}
	}
	return penalty
}

func fetchASN(pid uint32, pc uint64) uint32 {
	if pc >= loader.KernelBase {
		return 0
	}
	return pid
}

// emit delivers one sample to the sink, charging the handler cost.
func (c *CPU) emit(pid uint32, pc uint64, ev Event) {
	c.samples++
	c.SampleCounts[ev]++
	if sink := c.m.cfg.Sink; sink != nil {
		c.pendingCost += sink.Sample(Sample{CPU: c.id, PID: pid, PC: pc, Event: ev, Clock: c.clock})
	}
}

// emitEdge delivers a double-sampling edge sample (from -> to).
func (c *CPU) emitEdge(pid uint32, from, to uint64) {
	c.samples++
	c.SampleCounts[EvEdge]++
	if sink := c.m.cfg.Sink; sink != nil {
		c.pendingCost += sink.Sample(Sample{CPU: c.id, PID: pid, PC: from, PC2: to, Event: EvEdge, Clock: c.clock})
	}
}

// deliverCycles attributes CYCLES-counter overflows whose (skewed) delivery
// falls before end — the close of the current head-of-queue interval — to
// the instruction at pc. Head intervals tile time contiguously, so every
// delivery lands in exactly one interval. It returns the number of samples
// delivered.
func (c *CPU) deliverCycles(end int64, pid uint32, pc uint64) int {
	if !c.cycEnabled {
		return 0
	}
	n := 0
	for c.cycNext+deliverySkew < end {
		n++
		c.emit(pid, pc, EvCycles)
		if c.m.cfg.DoubleSample {
			// Careful coding ensures the second interrupt captures the
			// very next instruction (paper §7); the pairing completes at
			// the next issue group.
			c.pendingEdge = true
			c.edgeFromPC = pc
			c.edgeFromPID = pid
		}
		c.cycNext += c.m.cfg.CyclesPeriod.draw(c.rng)
	}
	return n
}

// countEvent counts one occurrence of a miss-type event on the second
// counter; on overflow, IMISS samples attribute directly to the faulting pc
// (usually accurate, §4.1.2) while DMISS/BRANCHMP deliveries are skewed onto
// the next issue group's head instruction.
func (c *CPU) countEvent(ev Event, pid uint32, pc uint64) {
	if !c.evEnabled || ev != c.evActive {
		return
	}
	c.evRemaining[ev]--
	if c.evRemaining[ev] > 0 {
		return
	}
	c.evRemaining[ev] = c.m.cfg.EventPeriod.draw(c.rng)
	if ev == EvIMiss {
		c.emit(pid, pc, ev)
	} else {
		c.skewed = append(c.skewed, ev)
	}
}

// updateMux rotates the second counter's event in mux mode.
func (c *CPU) updateMux() {
	if c.m.cfg.Mode != ModeMux {
		return
	}
	slot := c.clock / c.m.cfg.MuxInterval
	if slot == c.muxSlot {
		return
	}
	c.muxSlot = slot
	events := [4]Event{EvIMiss, EvDMiss, EvBranchMP, EvDTBMiss}
	c.evActive = events[slot%4] // residual counts persist across rotations
}

func (c *CPU) exactCount(im *image.Image, off uint64, taken, isCond bool) {
	if c.exact == nil {
		return
	}
	exec, tk := c.exact.ensure(im)
	i := off / alpha.InstBytes
	exec[i]++
	if isCond && taken {
		tk[i]++
	}
}

func (c *CPU) commit(inst alpha.Inst, meta *alpha.InstMeta, issue, loadExtra int64) {
	if meta.HasDst {
		c.regReady[ridx(meta.Dst)] = issue + c.tab.Lat[inst.Op] + loadExtra
	}
	if fu := c.tab.FU[inst.Op]; fu != pipeline.FUNone {
		c.fuFree[fu] = issue + c.tab.FUBusy[inst.Op]
	}
}

// controlFlow applies branch-prediction effects and fetch redirects.
func (c *CPU) controlFlow(p *loader.Process, meta *alpha.InstMeta, pc uint64, out alpha.Outcome, issue int64) {
	if meta.CondBranch {
		if c.pred.Update(pc, out.Taken) {
			c.countEvent(EvBranchMP, p.PID, pc)
			c.fetchReadyAt = issue + 1 + c.model.MispredictPenalty
		} else if out.Taken {
			c.fetchReadyAt = issue + 1 + c.model.TakenBranchBubble
		}
		return
	}
	if out.Taken { // br/bsr/jmp/jsr/ret
		c.fetchReadyAt = issue + 1 + c.model.TakenBranchBubble
	}
}

// dataAccess models the memory system for one executed load or store and
// returns (issueDelay, loadExtra): issueDelay stalls the instruction at
// issue (DTB miss, write-buffer overflow); loadExtra lengthens a load's
// result latency (D-cache miss), stalling consumers instead.
func (c *CPU) dataAccess(p *loader.Process, pc uint64, out alpha.Outcome, at int64) (issueDelay, loadExtra int64) {
	asn := dataASN(p.PID, out.MemAddr)
	if !c.dtb.Lookup(asn, mem.PageOf(out.MemAddr)) {
		issueDelay += c.model.TLBMissPenalty
		c.countEvent(EvDTBMiss, p.PID, pc)
	}
	phys := c.pmap.Translate(asn, out.MemAddr)
	if out.MemIsStore {
		issueDelay += c.wb.Store(c.dcache.LineOf(phys), at+issueDelay)
		return issueDelay, 0
	}
	if !c.dcache.Access(phys) {
		c.countEvent(EvDMiss, p.PID, pc)
		if c.board.Access(phys) {
			loadExtra = c.model.L2Lat
		} else {
			loadExtra = c.model.MemLat
		}
	}
	return issueDelay, loadExtra
}

// step executes one issue group: the head instruction plus up to
// IssueWidth-1 co-issued partners. It returns false when the CPU has no
// work left.
func (c *CPU) step() bool {
	if !c.ensureProcess() {
		return false
	}
	p := c.cur

	// Timer interrupt: delivered between issue groups, user mode only
	// (kernel runs at high IPL; see paper §4.1.3 on deferred interrupts).
	if !p.InKernel && c.clock >= c.nextTimer {
		p.IntrRet = p.PC
		p.IntrRegs = p.Regs // PALcode saves state at interrupt entry
		p.InKernel = true
		p.PC = loader.KernelBase + c.m.ABI.TimerEntry
		c.fetchReadyAt = c.clock + PALLatency
	}

	c.updateMux()

	pc := p.PC
	im, off, ok := p.Lookup(pc)
	if !ok {
		c.fault(p)
		return true
	}
	idx := off / alpha.InstBytes
	inst := im.Code[idx]
	if inst.Op == alpha.OpInvalid {
		c.fault(p)
		return true
	}
	meta := &im.MetaTable()[idx]

	h := c.clock

	// Samples skewed from the previous group land on this instruction.
	for _, ev := range c.skewed {
		c.emit(p.PID, pc, ev)
	}
	c.skewed = c.skewed[:0]

	// Complete a pending double sample with this head instruction's PC.
	if c.pendingEdge {
		c.pendingEdge = false
		if c.edgeFromPID == p.PID {
			c.emitEdge(p.PID, c.edgeFromPC, pc)
		}
	}

	// Front end.
	earliest := h
	if c.fetchReadyAt > earliest {
		earliest = c.fetchReadyAt
	}
	earliest += c.fetch(p, im, off, pc)

	// Operand and functional-unit readiness.
	for _, s := range meta.Sources() {
		if t := c.regReady[ridx(s)]; t > earliest {
			earliest = t
		}
	}
	if fu := c.tab.FU[inst.Op]; fu != pipeline.FUNone {
		if t := c.fuFree[fu]; t > earliest {
			earliest = t
		}
	}

	// Architectural execution.
	c.xmem.p = p
	out := alpha.Execute(inst, pc, &p.Regs, c.xmemI)
	if out.Fault != nil {
		c.fault(p)
		return true
	}
	if out.ReadCounter {
		p.Regs.WriteI(inst.Ra, uint64(c.clock))
	}

	issue := earliest
	var loadExtra int64
	if out.MemSize != 0 {
		d, le := c.dataAccess(p, pc, out, issue)
		issue += d
		loadExtra = le
	}
	if out.Barrier {
		issue += c.wb.DrainAll(issue)
	}

	// Head-of-queue accounting and CYCLES sampling for [h, issue+1).
	delivered := c.deliverCycles(issue+1, p.PID, pc)
	c.groups++
	c.instructions++
	c.exactCount(im, off, out.Taken, meta.CondBranch)

	c.commit(inst, meta, issue, loadExtra)
	c.controlFlow(p, meta, pc, out, issue)
	p.PC = out.NextPC

	// Instruction interpretation (§7): a sampled conditional branch is
	// decoded by the handler and its direction recorded as an edge sample.
	if delivered > 0 && c.m.cfg.InterpretBranches && meta.CondBranch {
		c.emitEdge(p.PID, pc, out.NextPC)
	}

	switch {
	case out.IsPal:
		c.handlePal(p, pc, out, issue)
	case out.Halt:
		c.exit(p)
	default:
		if !out.Taken && p.State == loader.ProcRunnable {
			c.tryPair(p, inst, meta, issue)
		}
	}

	c.clock = issue + 1 + c.pendingCost
	c.pendingCost = 0

	// The "meta" method (paper footnote 2): overflows delivered while the
	// interrupt handler itself runs are attributed to the handler's text
	// rather than rolling onto the next instruction.
	if c.m.cfg.MetaSamples && c.cycEnabled {
		handlerPC := loader.KernelBase + c.m.ABI.HandlerEntry
		for c.cycNext+deliverySkew < c.clock {
			c.emit(p.PID, handlerPC, EvCycles)
			c.cycNext += c.m.cfg.CyclesPeriod.draw(c.rng)
		}
		// Recursively-generated handler cost lands at the handler too.
		if c.pendingCost > 0 {
			c.clock += c.pendingCost
			c.pendingCost = 0
		}
	}

	if sink := c.m.cfg.Sink; sink != nil && c.clock >= c.nextPoll {
		c.clock += sink.Poll(c.id, c.clock)
		c.nextPoll = c.clock + c.m.cfg.PollInterval
	}

	// Refresh the concurrent-reader snapshot: one pointer store (and one
	// small allocation) every snapInterval issue groups.
	if c.snapCountdown--; c.snapCountdown <= 0 {
		c.snapCountdown = snapInterval
		c.publishSnap()
	}
	return true
}

// tryPair attempts to fill the issue group's remaining slots (up to the
// machine's issue width) with the instructions following the just-issued
// head. Each candidate must pair cleanly with every instruction already in
// the group; a taken branch, fault, or process-state change closes the
// group. At the default width of 2 this is exactly the historical dual-issue
// probe.
func (c *CPU) tryPair(p *loader.Process, head alpha.Inst, headMeta *alpha.InstMeta, issue int64) {
	c.groupInsts[0], c.groupMetas[0] = head, headMeta
	for n := 1; n < c.width; n++ {
		taken, ok := c.trySlot(p, c.groupInsts[:n], c.groupMetas[:n], issue, n)
		if !ok || taken || p.State != loader.ProcRunnable {
			return
		}
	}
}

// trySlot attempts to issue the instruction at p.PC into slot n alongside
// the already-formed group, applying the slotting rules plus dynamic
// feasibility: the candidate's fetch must already be resident, its operands
// and functional unit ready, and its memory access must not need a TLB fill
// or a full write buffer. On success it executes and commits the candidate
// and reports whether it was a taken branch (which closes the group).
func (c *CPU) trySlot(p *loader.Process, group []alpha.Inst, metas []*alpha.InstMeta, issue int64, n int) (taken, issued bool) {
	pc2 := p.PC
	im2, off2, ok := p.Lookup(pc2)
	if !ok {
		return false, false
	}
	idx2 := off2 / alpha.InstBytes
	inst2 := im2.Code[idx2]
	if inst2.Op == alpha.OpInvalid {
		return false, false
	}
	meta2 := &im2.MetaTable()[idx2]
	if !pipeline.CanJoinGroupMeta(group, metas, inst2, meta2) {
		return false, false
	}

	// Fetch residency (probe only; a miss will be taken when it is head).
	vpage2 := mem.PageOf(pc2)
	asn2 := fetchASN(p.PID, pc2)
	if !(c.haveITBPage && vpage2 == c.lastITBPage && asn2 == c.lastITBASN) &&
		!c.itb.Probe(asn2, vpage2) {
		return false, false
	}
	phys2 := c.textPhys(im2.ID, off2)
	if c.icache.LineOf(phys2) != c.lastFetchLine && !c.icache.Probe(phys2) {
		return false, false
	}

	// Operand and FU readiness at the shared issue cycle.
	for _, s := range meta2.Sources() {
		if c.regReady[ridx(s)] > issue {
			return false, false
		}
	}
	if fu := c.tab.FU[inst2.Op]; fu != pipeline.FUNone && c.fuFree[fu] > issue {
		return false, false
	}

	// Memory feasibility, computed without architectural effects.
	if meta2.Load || meta2.Store {
		addr := p.Regs.ReadI(inst2.Rb) + uint64(int64(inst2.Disp))
		asn := dataASN(p.PID, addr)
		if !c.dtb.Probe(asn, mem.PageOf(addr)) {
			return false, false
		}
		if meta2.Store {
			phys := c.pmap.Translate(asn, addr)
			if c.wb.Full(c.dcache.LineOf(phys), issue) {
				return false, false
			}
		}
	}

	// Commit the slot (xmem.p was retargeted by step for this process).
	out2 := alpha.Execute(inst2, pc2, &p.Regs, c.xmemI)
	if out2.Fault != nil {
		c.fault(p)
		return false, false
	}
	if out2.ReadCounter {
		p.Regs.WriteI(inst2.Ra, uint64(c.clock))
	}
	var loadExtra2 int64
	if out2.MemSize != 0 {
		d, le := c.dataAccess(p, pc2, out2, issue)
		loadExtra2 = le + d // any residual delay folds into result latency
	}
	c.instructions++
	c.exactCount(im2, off2, out2.Taken, meta2.CondBranch)
	c.commit(inst2, meta2, issue, loadExtra2)
	c.controlFlow(p, meta2, pc2, out2, issue)
	p.PC = out2.NextPC
	c.groupInsts[n], c.groupMetas[n] = inst2, meta2
	return out2.Taken, true
}

// handlePal implements the PALcode services: syscall entry/exit and
// interrupt return. The PAL sequence is uninterruptible; its latency shows
// up as a fetch delay on the next instruction, which therefore accumulates
// any samples whose delivery falls inside the window (paper §4.1.3).
func (c *CPU) handlePal(p *loader.Process, pc uint64, out alpha.Outcome, issue int64) {
	c.fetchReadyAt = issue + 1 + PALLatency
	switch out.Pal {
	case PalCallsys:
		p.SyscallNo = p.Regs.ReadI(alpha.RegV0)
		p.SyscallRet = pc + alpha.InstBytes
		p.InKernel = true
		p.PC = loader.KernelBase + c.m.ABI.SyscallEntry
	case PalRetsys:
		c.applySyscall(p)
		p.InKernel = false
		p.PC = p.SyscallRet
	case PalRti:
		p.InKernel = false
		p.PC = p.IntrRet
		p.Regs = p.IntrRegs // PALcode restores state at interrupt return
		c.nextTimer = c.clock + c.m.timerInterval
		c.resched = true
	default:
		// Unknown PAL call: treated as an expensive no-op.
	}
}

func (c *CPU) applySyscall(p *loader.Process) {
	switch p.SyscallNo {
	case SysExit:
		c.exit(p)
	case SysYield:
		c.resched = true
	case SysSleep:
		p.State = loader.ProcBlocked
		p.WakeAt = c.clock + int64(p.Regs.ReadI(alpha.RegA1))
		c.resched = true
	case SysWrite:
		// The kernel code already performed the copy/checksum work.
	case SysGetPID:
		p.Regs.WriteI(alpha.RegV0, uint64(p.PID))
	}
}
