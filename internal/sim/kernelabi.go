package sim

// PAL function codes. The simulator implements the PALcode dispatch the real
// Alpha hardware provides: callsys enters the kernel, retsys/rti leave it.
const (
	PalCallsys = 0x83 // syscall: v0 holds the syscall number
	PalRetsys  = 0x84 // return from syscall to the saved user PC
	PalRti     = 0x85 // return from (timer) interrupt
	PalSwpctx  = 0x9e // reserved for the context-switch path
)

// Syscall numbers (in v0 at callsys).
const (
	SysExit   = 0 // terminate the process
	SysYield  = 1 // give up the CPU
	SysSleep  = 2 // block for a1 cycles
	SysWrite  = 3 // "write" a0..a0+a1 bytes (kernel does checksum+copy work)
	SysGetPID = 4 // v0 <- PID
)

// KernelABI tells the simulator where the kernel's entry points live as byte
// offsets within the kernel image. The workload package builds a kernel
// image with these procedures; the simulator dispatches PAL traps to them.
type KernelABI struct {
	// SyscallEntry is where CALL_PAL callsys lands; the kernel code
	// dispatches on v0 and finishes with CALL_PAL retsys.
	SyscallEntry uint64
	// TimerEntry is where the clock interrupt lands; it finishes with
	// CALL_PAL rti, after which the simulator may context switch.
	TimerEntry uint64
	// IdleEntry is the kernel idle loop, run when no process is runnable.
	IdleEntry uint64
	// HandlerEntry is the performance-counter interrupt handler's own
	// address, used by the "meta" sampling method (paper footnote 2) to
	// attribute samples whose delivery falls inside the handler.
	HandlerEntry uint64
}

// PALLatency is the uninterruptible PALcode sequence length in cycles;
// samples whose interrupts would fire inside it are deferred and accumulate
// on the next interruptible instruction (paper §4.1.3).
const PALLatency = 30
