// Package sim is the timing simulator: an in-order dual-issue Alpha-like
// machine with caches, TLBs, a write buffer, a branch predictor, and
// performance counters that raise overflow interrupts. It produces the
// time-biased PC samples the DCPI data-collection system consumes, plus
// exact execution counts (the pixie/dcpix role) for validating the analysis.
package sim

import "fmt"

// Event is a hardware performance-counter event type.
type Event uint8

const (
	// EvCycles counts processor cycles; its samples are time-biased PC
	// samples (the paper's CYCLES).
	EvCycles Event = iota
	// EvIMiss counts instruction-cache misses.
	EvIMiss
	// EvDMiss counts data-cache misses.
	EvDMiss
	// EvBranchMP counts branch mispredictions.
	EvBranchMP
	// EvEdge is a double-sampling edge sample (paper §7): a pair of PCs
	// along an execution path, captured by a second interrupt immediately
	// after a CYCLES interrupt returns.
	EvEdge
	// EvDTBMiss counts data-TLB misses (the DTBMISS event §3.2 mentions:
	// "Dcpicalc will likely rule out DTB miss if given DTBMISS samples").
	EvDTBMiss

	NumEvents
)

func (e Event) String() string {
	switch e {
	case EvCycles:
		return "cycles"
	case EvIMiss:
		return "imiss"
	case EvDMiss:
		return "dmiss"
	case EvBranchMP:
		return "branchmp"
	case EvEdge:
		return "edge"
	case EvDTBMiss:
		return "dtbmiss"
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// ParseEvent resolves an event name.
func ParseEvent(s string) (Event, error) {
	for e := Event(0); e < NumEvents; e++ {
		if e.String() == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown event %q", s)
}

// carta is the "minimal standard" Park–Miller pseudo-random generator in
// D. Carta's two-multiply formulation (CACM 33(1), 1990) — the paper's
// reference [4], used to randomize the sampling period.
type carta struct {
	state uint32
}

func newCarta(seed uint32) *carta {
	seed &= 0x7fffffff
	if seed == 0 {
		seed = 1
	}
	return &carta{state: seed}
}

// next advances the generator: state = 16807 * state mod (2^31 - 1).
func (c *carta) next() uint32 {
	lo := uint64(16807) * uint64(c.state&0xffff)
	hi := uint64(16807) * uint64(c.state>>16)
	lo += (hi & 0x7fff) << 16
	lo += hi >> 15
	if lo > 0x7fffffff {
		lo -= 0x7fffffff
	}
	c.state = uint32(lo)
	return c.state
}

// PeriodSpec describes a randomized sampling period: uniform in
// [Base, Base+Spread).
type PeriodSpec struct {
	Base   int64
	Spread int64
}

// draw returns the next period length.
func (p PeriodSpec) draw(rng *carta) int64 {
	if p.Spread <= 1 {
		return p.Base
	}
	return p.Base + int64(rng.next())%p.Spread
}

// DefaultCyclesPeriod is the paper's default: uniform in [60K, 64K) cycles.
var DefaultCyclesPeriod = PeriodSpec{Base: 60 * 1024, Spread: 4 * 1024}

// DefaultEventPeriod is the period used for miss-event counters.
var DefaultEventPeriod = PeriodSpec{Base: 14 * 1024, Spread: 2 * 1024}

// Mode selects the profiling configuration, matching the paper's §5
// evaluation configurations.
type Mode uint8

const (
	// ModeOff collects nothing (the "base" configuration).
	ModeOff Mode = iota
	// ModeCycles monitors CYCLES only.
	ModeCycles
	// ModeDefault monitors CYCLES and IMISS.
	ModeDefault
	// ModeMux monitors CYCLES on one counter and time-multiplexes IMISS,
	// DMISS, and BRANCHMP on the other.
	ModeMux
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "base"
	case ModeCycles:
		return "cycles"
	case ModeDefault:
		return "default"
	case ModeMux:
		return "mux"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Sample is one performance-counter sample: the context the overflow
// interrupt handler captures (paper §4.1: PID, PC, and event type). Edge
// samples (double sampling, §7) carry the next instruction's PC in PC2.
// Clock is the delivering CPU's cycle counter at the interrupt; collection
// stacks use it to timestamp pipeline trace events (internal/obs).
type Sample struct {
	CPU   int
	PID   uint32
	PC    uint64
	PC2   uint64 // valid only for EvEdge
	Event Event
	Clock int64
}

// Sink consumes samples as the overflow interrupts deliver them, and models
// the profiling software's costs by returning cycles charged to the
// interrupted CPU.
type Sink interface {
	// Sample records one sample; the returned cycles model the interrupt
	// handler's cost and are injected into the simulated run.
	Sample(s Sample) (handlerCycles int64)
	// Poll lets the sink perform periodic work (the daemon draining
	// buffers); the returned cycles are charged to the polling CPU.
	Poll(cpu int, clock int64) (cycles int64)
}

// ProfileConfig configures the machine's profiling subsystem.
type ProfileConfig struct {
	Mode         Mode
	Sink         Sink
	CyclesPeriod PeriodSpec // zero value -> DefaultCyclesPeriod
	EventPeriod  PeriodSpec // zero value -> DefaultEventPeriod
	MuxInterval  int64      // cycles between mux rotations; 0 -> 1M
	Seed         uint32     // period-randomization seed; 0 -> 1
	PollInterval int64      // cycles between sink polls; 0 -> 64K
	// DoubleSample turns on the paper's §7 double-sampling prototype: each
	// CYCLES interrupt schedules a second interrupt immediately after it
	// returns, capturing the next head instruction's PC too and yielding
	// an edge sample (EvEdge) for the (PC, PC2) pair.
	DoubleSample bool
	// InterpretBranches turns on the paper's §7 instruction-interpretation
	// prototype: when a CYCLES sample lands on a conditional branch, the
	// handler decodes it and records the direction it is about to take,
	// yielding an edge sample without a second interrupt.
	InterpretBranches bool
	// MetaSamples turns on the "meta" method of the paper's footnote 2:
	// counter overflows whose delivery falls inside the interrupt handler
	// itself (normally the one blind spot) are attributed to the handler's
	// own address (KernelABI.HandlerEntry) instead of leaking onto the
	// next user instruction.
	MetaSamples bool
}

func (c ProfileConfig) withDefaults() ProfileConfig {
	if c.CyclesPeriod.Base == 0 {
		c.CyclesPeriod = DefaultCyclesPeriod
	}
	if c.EventPeriod.Base == 0 {
		c.EventPeriod = DefaultEventPeriod
	}
	if c.MuxInterval == 0 {
		c.MuxInterval = 1 << 20
	}
	if c.PollInterval == 0 {
		c.PollInterval = 64 * 1024
	}
	return c
}
