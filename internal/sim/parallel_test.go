package sim

import (
	"sync"
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/image"
	"dcpi/internal/loader"
)

// spawnEight builds a 4-CPU machine with eight sum processes (the
// TestMultiCPU workload) under the given extra options.
func spawnEight(t *testing.T, opts Options) (*Machine, []*loader.Process) {
	t.Helper()
	kernel, abi := testKernel()
	l := loader.New(kernel)
	opts.Loader = l
	opts.ABI = abi
	if opts.NumCPUs == 0 {
		opts.NumCPUs = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 9
	}
	m := NewMachine(opts)
	var procs []*loader.Process
	for i := 0; i < 8; i++ {
		exec := image.New("p", "/bin/p", image.KindExecutable, alpha.MustAssemble(sumProgram))
		p, err := l.NewProcess("p", exec)
		if err != nil {
			t.Fatal(err)
		}
		m.Spawn(p)
		procs = append(procs, p)
	}
	return m, procs
}

// TestParallelRunMatchesSequential is the machine-level determinism check:
// fanning the CPUs out over goroutines must leave the aggregate statistics
// and exact execution counts identical to a sequential run.
func TestParallelRunMatchesSequential(t *testing.T) {
	run := func(workers int) (Stats, *Counts, int64) {
		m, procs := spawnEight(t, Options{CollectExact: true, SimWorkers: workers})
		wall := m.Run(1 << 30)
		for i, p := range procs {
			if p.State != loader.ProcExited {
				t.Fatalf("workers=%d: proc %d state = %v", workers, i, p.State)
			}
		}
		return m.Stats(), m.Exact, wall
	}
	seqStats, seqExact, seqWall := run(0)
	for _, workers := range []int{2, 4, -1} {
		parStats, parExact, parWall := run(workers)
		if parStats != seqStats {
			t.Errorf("workers=%d stats:\nsequential %+v\nparallel   %+v", workers, seqStats, parStats)
		}
		if parWall != seqWall {
			t.Errorf("workers=%d wall = %d, sequential %d", workers, parWall, seqWall)
		}
		for img, seq := range seqExact.Exec {
			par := parExact.Exec[img]
			for i := range seq {
				if seq[i] != par[i] {
					t.Fatalf("workers=%d image %d inst %d: exec %d != %d", workers, img, i, par[i], seq[i])
				}
			}
		}
		for img, seq := range seqExact.Taken {
			par := parExact.Taken[img]
			for i := range seq {
				if seq[i] != par[i] {
					t.Fatalf("workers=%d image %d inst %d: taken %d != %d", workers, img, i, par[i], seq[i])
				}
			}
		}
	}
}

// TestStatsWhileRunning reads Machine.Stats concurrently with a parallel
// Run. The snapshots must be consistent (race detector enforces the
// access discipline) and the final read must equal the exact totals.
func TestStatsWhileRunning(t *testing.T) {
	m, _ := spawnEight(t, Options{SimWorkers: 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev Stats
		for {
			s := m.Stats()
			if s.Instructions < prev.Instructions || s.Cycles < prev.Cycles {
				t.Errorf("stats went backwards: %+v then %+v", prev, s)
				return
			}
			prev = s
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	m.Run(1 << 30)
	close(stop)
	wg.Wait()

	// Post-run, the snapshot-summed view is the exact total: compare
	// against a fresh sequential run of the same configuration.
	ref, _ := spawnEight(t, Options{SimWorkers: 0})
	ref.Run(1 << 30)
	if got, want := m.Stats(), ref.Stats(); got != want {
		t.Errorf("final stats %+v, want %+v", got, want)
	}
}

// spawnerSink tries to Spawn from inside the run; the machine must refuse
// (panic) rather than corrupt scheduler state shared across goroutines.
type spawnerSink struct {
	t *testing.T
	m *Machine
	p *loader.Process

	fired bool
}

func (s *spawnerSink) Sample(Sample) int64 {
	if !s.fired {
		s.fired = true
		defer func() {
			if recover() == nil {
				s.t.Error("Spawn during Run did not panic")
			}
		}()
		s.m.Spawn(s.p)
	}
	return 0
}

func (s *spawnerSink) Poll(int, int64) int64 { return 0 }

func TestSpawnWhileRunningPanics(t *testing.T) {
	kernel, abi := testKernel()
	l := loader.New(kernel)
	sink := &spawnerSink{t: t}
	m := NewMachine(Options{Loader: l, ABI: abi, Seed: 3, Profile: ProfileConfig{
		Mode:         ModeCycles,
		Sink:         sink,
		CyclesPeriod: PeriodSpec{Base: 500, Spread: 64},
	}})
	exec := image.New("p", "/bin/p", image.KindExecutable, alpha.MustAssemble(sumProgram))
	p, err := l.NewProcess("p", exec)
	if err != nil {
		t.Fatal(err)
	}
	m.Spawn(p)
	late, err := l.NewProcess("late", image.New("late", "/bin/late", image.KindExecutable, alpha.MustAssemble(sumProgram)))
	if err != nil {
		t.Fatal(err)
	}
	sink.m, sink.p = m, late
	m.Run(1 << 30)
	if !sink.fired {
		t.Fatal("sink never sampled; the guard was not exercised")
	}
}

// TestSimWorkersClamped: asking for more goroutines than simulated CPUs
// must clamp rather than spin up idle workers.
func TestSimWorkersClamped(t *testing.T) {
	m, _ := spawnEight(t, Options{NumCPUs: 2, SimWorkers: 16})
	m.Run(1 << 30)
	if m.lastWorkers != 2 {
		t.Errorf("lastWorkers = %d, want clamp to 2 CPUs", m.lastWorkers)
	}
}
