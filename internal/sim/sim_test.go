package sim

import (
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/image"
	"dcpi/internal/loader"
)

// testKernel builds a minimal kernel image with syscall, timer, and idle
// entry points. Kernel code clobbers t0/t1 (caller-saved by convention).
func testKernel() (*image.Image, KernelABI) {
	asm := alpha.MustAssemble(`
syscall_dispatch:
	lda  t0, 0(zero)
.work:
	addq t0, 1, t0
	cmplt t0, 8, t1
	bne  t1, .work
	call_pal 0x84
hardclock:
	lda  t0, 0(zero)
.tick:
	addq t0, 1, t0
	cmplt t0, 16, t1
	bne  t1, .tick
	call_pal 0x85
idle_thread:
	nop
	nop
	br idle_thread
`)
	im := image.New("vmunix", "/vmunix", image.KindKernel, asm)
	var abi KernelABI
	for _, s := range im.Symbols {
		switch s.Name {
		case "syscall_dispatch":
			abi.SyscallEntry = s.Offset
		case "hardclock":
			abi.TimerEntry = s.Offset
		case "idle_thread":
			abi.IdleEntry = s.Offset
		}
	}
	return im, abi
}

// testMachine builds a machine plus a process running the given user
// program source.
func testMachine(t *testing.T, src string, opts Options) (*Machine, *loader.Process) {
	t.Helper()
	kernel, abi := testKernel()
	l := loader.New(kernel)
	opts.Loader = l
	opts.ABI = abi
	if opts.Seed == 0 {
		opts.Seed = 12345
	}
	m := NewMachine(opts)
	exec := image.New("prog", "/bin/prog", image.KindExecutable, alpha.MustAssemble(src))
	p, err := l.NewProcess("prog", exec)
	if err != nil {
		t.Fatal(err)
	}
	m.Spawn(p)
	return m, p
}

const sumProgram = `
main:
	lda t0, 0(zero)      ; i
	lda t1, 0(zero)      ; sum
.loop:
	addq t0, 1, t0
	addq t1, t0, t1
	cmplt t0, 100, t2
	bne t2, .loop
	lda t3, 0(zero)
	ldah t3, 1(t3)       ; 0x10000
	stq t1, 0(t3)
	halt
`

func TestRunSimpleProgram(t *testing.T) {
	m, p := testMachine(t, sumProgram, Options{})
	wall := m.Run(1 << 30)
	if p.State != loader.ProcExited {
		t.Fatalf("process state = %v", p.State)
	}
	if got := p.Mem.Load(0x10000, 8); got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
	st := m.Stats()
	if st.Instructions < 400 {
		t.Errorf("instructions = %d, want >= 400", st.Instructions)
	}
	if wall <= 0 || st.Cycles != wall {
		t.Errorf("wall = %d, stats cycles = %d", wall, st.Cycles)
	}
	// Dual issue: cycles should be well below 1 per instruction plus loop
	// overheads... at minimum, groups < instructions.
	if st.IssueGroups >= st.Instructions {
		t.Errorf("no dual issue: groups=%d insts=%d", st.IssueGroups, st.Instructions)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, Stats) {
		m, _ := testMachine(t, sumProgram, Options{Seed: 7})
		w := m.Run(1 << 30)
		return w, m.Stats()
	}
	w1, s1 := run()
	w2, s2 := run()
	if w1 != w2 || s1 != s2 {
		t.Errorf("nondeterministic: %v vs %v / %+v vs %+v", w1, w2, s1, s2)
	}
}

func TestSeedChangesTiming(t *testing.T) {
	// Different page-placement seeds should give different board-cache
	// behaviour for a program touching many pages.
	// Two passes over 300 pages (2.4 MB > 2 MB board cache): whether the
	// second pass hits depends on physical page placement.
	src := `
main:
	lda t5, 0(zero)       ; pass counter
.pass:
	lda t0, 0(zero)
	ldah t1, 2(zero)      ; base 0x20000
	lda t4, 300(zero)
.loop:
	ldq t2, 0(t1)
	xor t2, t6, t6        ; consume the load so its latency is visible
	lda t1, 8192(t1)      ; next page
	addq t0, 1, t0
	cmplt t0, t4, t3
	bne t3, .loop
	addq t5, 1, t5
	cmplt t5, 2, t6
	bne t6, .pass
	halt
`
	walls := map[int64]bool{}
	for seed := uint64(1); seed <= 4; seed++ {
		m, _ := testMachine(t, src, Options{Seed: seed})
		walls[m.Run(1<<30)] = true
	}
	if len(walls) < 2 {
		t.Errorf("page placement has no timing effect: %v", walls)
	}
}

type captureSink struct {
	samples     []Sample
	handlerCost int64
	polls       int
}

func (s *captureSink) Sample(sm Sample) int64 {
	s.samples = append(s.samples, sm)
	return s.handlerCost
}

func (s *captureSink) Poll(cpu int, clock int64) int64 {
	s.polls++
	return 0
}

const copyProgram = `
main:
	; t1 = src, t2 = dst, v0 = bound, t0 = i
	ldah t1, 4(zero)        ; 0x40000
	ldah t2, 8(zero)        ; 0x80000
	lda  v0, 4096(zero)
	lda  t0, 4(zero)
copyloop:
	ldq   t4, 0(t1)
	addq  t0, 0x4, t0
	ldq   t5, 8(t1)
	ldq   t6, 16(t1)
	ldq   a0, 24(t1)
	lda   t1, 32(t1)
	stq   t4, 0(t2)
	cmpult t0, v0, t4
	stq   t5, 8(t2)
	stq   t6, 16(t2)
	stq   a0, 24(t2)
	lda   t2, 32(t2)
	bne   t4, copyloop
	halt
`

func TestCopyLoopSamplesConcentrateOnStores(t *testing.T) {
	sink := &captureSink{}
	m, p := testMachine(t, copyProgram, Options{
		Profile: ProfileConfig{
			Mode:         ModeCycles,
			Sink:         sink,
			CyclesPeriod: PeriodSpec{Base: 400, Spread: 64},
		},
	})
	m.Run(1 << 30)
	if p.State != loader.ProcExited {
		t.Fatal("copy did not finish")
	}
	if len(sink.samples) < 100 {
		t.Fatalf("samples = %d, want >= 100", len(sink.samples))
	}
	// Attribute samples to instruction index within the program image.
	var total, onStores int
	for _, s := range sink.samples {
		if s.PC < loader.UserTextBase || s.PC >= loader.KernelBase {
			continue
		}
		idx := (s.PC - loader.UserTextBase) / alpha.InstBytes
		total++
		// Store instructions are at image indices 10, 12, 13, 14 within
		// the loop body (stq t4/t5/t6/a0).
		switch idx {
		case 10, 12, 13, 14:
			onStores++
		}
	}
	if total == 0 {
		t.Fatal("no user samples")
	}
	frac := float64(onStores) / float64(total)
	if frac < 0.5 {
		t.Errorf("stores got %.0f%% of samples, want majority (write-buffer saturation)", frac*100)
	}
	st := m.Stats()
	if st.WBOverflows == 0 {
		t.Error("copy loop should overflow the write buffer")
	}
}

func TestSyscallGetPIDAndExit(t *testing.T) {
	src := `
main:
	lda v0, 4(zero)      ; SysGetPID
	call_pal 0x83
	ldah t3, 1(zero)
	stq v0, 0(t3)
	lda v0, 0(zero)      ; SysExit
	call_pal 0x83
	nop                  ; never reached
`
	m, p := testMachine(t, src, Options{})
	m.Run(1 << 30)
	if p.State != loader.ProcExited {
		t.Fatalf("state = %v", p.State)
	}
	if got := p.Mem.Load(0x10000, 8); got != uint64(p.PID) {
		t.Errorf("getpid = %d, want %d", got, p.PID)
	}
}

func TestSleepAndMultiprocessScheduling(t *testing.T) {
	kernel, abi := testKernel()
	l := loader.New(kernel)
	m := NewMachine(Options{Loader: l, ABI: abi, Seed: 3, Quantum: 5000})

	mkProc := func(name string, sleepCycles int) *loader.Process {
		src := `
main:
	lda v0, 2(zero)
	lda a1, ` + itoa(sleepCycles) + `(zero)
	call_pal 0x83        ; sleep
	lda t0, 0(zero)
	lda t2, 2000(zero)
.loop:
	addq t0, 1, t0
	cmplt t0, t2, t1
	bne t1, .loop
	ldah t3, 1(zero)
	stq t0, 0(t3)
	halt
`
		exec := image.New(name, "/bin/"+name, image.KindExecutable, alpha.MustAssemble(src))
		p, err := l.NewProcess(name, exec)
		if err != nil {
			t.Fatal(err)
		}
		m.SpawnOn(0, p)
		return p
	}
	p1 := mkProc("a", 20000)
	p2 := mkProc("b", 100)
	m.Run(1 << 30)
	for _, p := range []*loader.Process{p1, p2} {
		if p.State != loader.ProcExited {
			t.Errorf("%s state = %v", p.Name, p.State)
		}
		if got := p.Mem.Load(0x10000, 8); got != 2000 {
			t.Errorf("%s result = %d", p.Name, got)
		}
	}
	if m.CPUs[0].ContextSwitches < 3 {
		t.Errorf("context switches = %d", m.CPUs[0].ContextSwitches)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestTimerInterruptsProduceKernelTime(t *testing.T) {
	// A long-running loop with a short quantum: timer entries execute
	// kernel code, so some instructions should come from the kernel image.
	src := `
main:
	lda t0, 0(zero)
	ldah t2, 8(zero)     ; big bound
.loop:
	addq t0, 1, t0
	cmpult t0, t2, t1
	bne t1, .loop
	halt
`
	sink := &captureSink{}
	m, _ := testMachine(t, src, Options{
		Quantum: 2000,
		Profile: ProfileConfig{
			Mode:         ModeCycles,
			Sink:         sink,
			CyclesPeriod: PeriodSpec{Base: 512, Spread: 64},
		},
	})
	m.Run(1 << 30)
	var kernelSamples int
	for _, s := range sink.samples {
		if s.PC >= loader.KernelBase {
			kernelSamples++
		}
	}
	if kernelSamples == 0 {
		t.Error("no kernel samples despite timer interrupts")
	}
	if len(sink.samples) == 0 || kernelSamples > len(sink.samples)/2 {
		t.Errorf("kernel samples = %d of %d, want small minority", kernelSamples, len(sink.samples))
	}
}

func TestExactCountsMatchLoop(t *testing.T) {
	m, p := testMachine(t, sumProgram, Options{CollectExact: true})
	m.Run(1 << 30)
	if p.State != loader.ProcExited {
		t.Fatal("did not exit")
	}
	im, _, _ := p.Lookup(loader.UserTextBase)
	exec := m.Exact.Exec[im.ID]
	taken := m.Exact.Taken[im.ID]
	// Loop body at indices 2..5 runs 100 times; bne (index 5) taken 99.
	for i := 2; i <= 5; i++ {
		if exec[i] != 100 {
			t.Errorf("exec[%d] = %d, want 100", i, exec[i])
		}
	}
	if taken[5] != 99 {
		t.Errorf("taken[bne] = %d, want 99", taken[5])
	}
	if exec[0] != 1 || exec[len(exec)-1] != 1 {
		t.Errorf("entry/halt exec = %d, %d", exec[0], exec[len(exec)-1])
	}
}

func TestProfilingOverheadInjected(t *testing.T) {
	base := func() int64 {
		m, _ := testMachine(t, sumProgram, Options{})
		return m.Run(1 << 30)
	}()
	sink := &captureSink{handlerCost: 400}
	profiled := func() int64 {
		m, _ := testMachine(t, sumProgram, Options{Profile: ProfileConfig{
			Mode:         ModeCycles,
			Sink:         sink,
			CyclesPeriod: PeriodSpec{Base: 100, Spread: 16},
		}})
		return m.Run(1 << 30)
	}()
	if len(sink.samples) == 0 {
		t.Fatal("no samples")
	}
	if profiled <= base {
		t.Errorf("profiled run (%d) not slower than base (%d)", profiled, base)
	}
	// Injected cost should roughly equal samples * handlerCost.
	injected := profiled - base
	expect := int64(len(sink.samples)) * 400
	if injected < expect/2 || injected > expect*2 {
		t.Errorf("injected = %d, expected around %d", injected, expect)
	}
}

func TestMuxRotation(t *testing.T) {
	sink := &captureSink{}
	m, _ := testMachine(t, copyProgram, Options{Profile: ProfileConfig{
		Mode:         ModeMux,
		Sink:         sink,
		CyclesPeriod: PeriodSpec{Base: 1000, Spread: 128},
		EventPeriod:  PeriodSpec{Base: 50, Spread: 8},
		MuxInterval:  5000,
	}})
	m.Run(1 << 30)
	kinds := map[Event]int{}
	for _, s := range sink.samples {
		kinds[s.Event]++
	}
	if kinds[EvCycles] == 0 {
		t.Error("no cycles samples in mux mode")
	}
	// The copy loop misses the D-cache heavily; DMISS samples must appear
	// once the mux rotates to DMISS.
	if kinds[EvDMiss] == 0 {
		t.Errorf("no dmiss samples in mux mode: %v", kinds)
	}
}

func TestDefaultModeCollectsIMiss(t *testing.T) {
	// A program whose loop spans many I-cache lines... simplest: use the
	// sum program but with a tiny icache-hostile layout is hard; instead
	// verify the machine counts IMISS events and the counter can overflow
	// with a tiny period.
	sink := &captureSink{}
	m, _ := testMachine(t, sumProgram, Options{Profile: ProfileConfig{
		Mode:         ModeDefault,
		Sink:         sink,
		CyclesPeriod: PeriodSpec{Base: 1000, Spread: 128},
		EventPeriod:  PeriodSpec{Base: 1, Spread: 1},
	}})
	m.Run(1 << 30)
	var imiss int
	for _, s := range sink.samples {
		if s.Event == EvIMiss {
			imiss++
		}
	}
	if imiss == 0 {
		t.Error("no imiss samples with period 1")
	}
}

func TestRPCC(t *testing.T) {
	src := `
main:
	rpcc t0
	ldah t3, 1(zero)
	stq t0, 0(t3)
	lda t5, 0(zero)
.spin:
	addq t5, 1, t5
	cmplt t5, 50, t6
	bne t6, .spin
	rpcc t1
	stq t1, 8(t3)
	halt
`
	m, p := testMachine(t, src, Options{})
	m.Run(1 << 30)
	c1 := p.Mem.Load(0x10000, 8)
	c2 := p.Mem.Load(0x10008, 8)
	if c2 <= c1 {
		t.Errorf("rpcc not monotonic: %d then %d", c1, c2)
	}
}

func TestMultiCPU(t *testing.T) {
	kernel, abi := testKernel()
	l := loader.New(kernel)
	m := NewMachine(Options{Loader: l, ABI: abi, NumCPUs: 4, Seed: 9})
	var procs []*loader.Process
	for i := 0; i < 8; i++ {
		exec := image.New("p", "/bin/p", image.KindExecutable, alpha.MustAssemble(sumProgram))
		p, err := l.NewProcess("p", exec)
		if err != nil {
			t.Fatal(err)
		}
		m.Spawn(p)
		procs = append(procs, p)
	}
	m.Run(1 << 30)
	for i, p := range procs {
		if p.State != loader.ProcExited {
			t.Errorf("proc %d state = %v", i, p.State)
		}
		if got := p.Mem.Load(0x10000, 8); got != 5050 {
			t.Errorf("proc %d sum = %d", i, got)
		}
	}
	// Round-robin spawn: every CPU should have run something.
	for i, c := range m.CPUs {
		if c.instructions == 0 {
			t.Errorf("cpu %d ran nothing", i)
		}
	}
}

func TestCartaMinimalStandard(t *testing.T) {
	// Known sequence: x_{n+1} = 16807 x_n mod (2^31 - 1), x_0 = 1.
	c := newCarta(1)
	want := []uint32{16807, 282475249, 1622650073, 984943658, 1144108930}
	for i, w := range want {
		if got := c.next(); got != w {
			t.Fatalf("carta step %d = %d, want %d", i, got, w)
		}
	}
	// The classic validation: after 10000 steps from 1, the value is
	// 1043618065 (Park & Miller 1988).
	c = newCarta(1)
	var v uint32
	for i := 0; i < 10000; i++ {
		v = c.next()
	}
	if v != 1043618065 {
		t.Errorf("carta 10000th = %d, want 1043618065", v)
	}
}

func TestPeriodSpecRange(t *testing.T) {
	rng := newCarta(99)
	spec := PeriodSpec{Base: 60 * 1024, Spread: 4 * 1024}
	for i := 0; i < 1000; i++ {
		p := spec.draw(rng)
		if p < 60*1024 || p >= 64*1024 {
			t.Fatalf("period %d out of [60K, 64K)", p)
		}
	}
}

func TestModeAndEventStrings(t *testing.T) {
	if ModeOff.String() != "base" || ModeCycles.String() != "cycles" ||
		ModeDefault.String() != "default" || ModeMux.String() != "mux" {
		t.Error("mode strings")
	}
	for e := Event(0); e < NumEvents; e++ {
		got, err := ParseEvent(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEvent(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEvent("nope"); err == nil {
		t.Error("bogus event parsed")
	}
}

// mustProcess creates a process from source for tests needing several.
func mustProcess(t *testing.T, l *loader.Loader, src string) *loader.Process {
	t.Helper()
	exec := image.New("p", "/bin/p", image.KindExecutable, alpha.MustAssemble(src))
	p, err := l.NewProcess("p", exec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
