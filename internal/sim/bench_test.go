package sim

import (
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/image"
	"dcpi/internal/loader"
)

// benchMachine builds a machine running the sum program for b.N-scaled work.
func benchMachine(b *testing.B, mode Mode, iters int) (*Machine, *loader.Process) {
	b.Helper()
	kernel, abi := testKernel()
	l := loader.New(kernel)
	m := NewMachine(Options{Loader: l, ABI: abi, Seed: 7, Profile: ProfileConfig{Mode: mode}})
	src := `
main:
	lda t0, 0(zero)
	bis a0, zero, t3
.loop:
	addq t0, 1, t0
	ldq t1, 0(t3)
	xor t1, t0, t2
	and t2, 0xff, t2
	lda t3, 8(t3)
	cmpult t0, a1, t4
	bne t4, .loop
	halt
`
	exec := image.New("bench", "/bin/bench", image.KindExecutable, alpha.MustAssemble(src))
	p, err := l.NewProcess("bench", exec)
	if err != nil {
		b.Fatal(err)
	}
	p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
	p.Regs.WriteI(alpha.RegA1, uint64(iters))
	m.Spawn(p)
	return m, p
}

// BenchmarkSimulatorThroughput measures raw walker speed (instructions
// simulated per second) without profiling.
func BenchmarkSimulatorThroughput(b *testing.B) {
	m, _ := benchMachine(b, ModeOff, b.N)
	b.ResetTimer()
	m.Run(1 << 60)
	b.StopTimer()
	st := m.Stats()
	b.ReportMetric(float64(st.Instructions)/float64(b.N), "insts/op")
	b.ReportMetric(float64(st.Cycles)/float64(st.Instructions), "sim-cpi")
}

// BenchmarkSimulatorWithSampling measures the walker with CYCLES sampling
// enabled (no sink costs), isolating the sampling bookkeeping overhead.
func BenchmarkSimulatorWithSampling(b *testing.B) {
	m, _ := benchMachine(b, ModeCycles, b.N)
	b.ResetTimer()
	m.Run(1 << 60)
	b.StopTimer()
	b.ReportMetric(float64(m.Stats().Samples), "samples")
}
