package sim

import (
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/image"
	"dcpi/internal/loader"
)

// benchMachine builds a machine running the sum program for b.N-scaled work.
func benchMachine(b *testing.B, mode Mode, iters int) (*Machine, *loader.Process) {
	b.Helper()
	kernel, abi := testKernel()
	l := loader.New(kernel)
	m := NewMachine(Options{Loader: l, ABI: abi, Seed: 7, Profile: ProfileConfig{Mode: mode}})
	src := `
main:
	lda t0, 0(zero)
	bis a0, zero, t3
.loop:
	addq t0, 1, t0
	ldq t1, 0(t3)
	xor t1, t0, t2
	and t2, 0xff, t2
	lda t3, 8(t3)
	cmpult t0, a1, t4
	bne t4, .loop
	halt
`
	exec := image.New("bench", "/bin/bench", image.KindExecutable, alpha.MustAssemble(src))
	p, err := l.NewProcess("bench", exec)
	if err != nil {
		b.Fatal(err)
	}
	p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
	p.Regs.WriteI(alpha.RegA1, uint64(iters))
	m.Spawn(p)
	return m, p
}

// BenchmarkSimulatorThroughput measures raw walker speed (instructions
// simulated per second) without profiling.
func BenchmarkSimulatorThroughput(b *testing.B) {
	m, _ := benchMachine(b, ModeOff, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(1 << 60)
	b.StopTimer()
	st := m.Stats()
	b.ReportMetric(float64(st.Instructions)/float64(b.N), "insts/op")
	b.ReportMetric(float64(st.Cycles)/float64(st.Instructions), "sim-cpi")
}

// BenchmarkSimulatorWithSampling measures the walker with CYCLES sampling
// enabled (no sink costs), isolating the sampling bookkeeping overhead.
func BenchmarkSimulatorWithSampling(b *testing.B) {
	m, _ := benchMachine(b, ModeCycles, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(1 << 60)
	b.StopTimer()
	b.ReportMetric(float64(m.Stats().Samples), "samples")
}

// BenchmarkStepLoop is the tightest view of the zero-allocation hot path:
// per-dynamic-instruction cost of step()+tryPair() with profiling off.
// The steady state must report 0 allocs/op — a nonzero value here means a
// heap allocation crept back into the inner loop (interface boxing,
// operand slices, or event buffers) and the bench gate should catch it.
func BenchmarkStepLoop(b *testing.B) {
	m, _ := benchMachine(b, ModeOff, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(1 << 60)
}

// countingSink is the cheapest possible Sink: it counts deliveries so the
// sample path is exercised end to end (overflow, skew queue, interrupt
// delivery, sink call) without measuring any consumer.
type countingSink struct{ n uint64 }

func (s *countingSink) Sample(Sample) int64   { s.n++; return 0 }
func (s *countingSink) Poll(int, int64) int64 { return 0 }

// BenchmarkSamplePath measures the per-sample delivery cost: CYCLES
// sampling at an unrealistically dense period (so samples, not steps,
// dominate) into a trivial sink. Like BenchmarkStepLoop it must stay at
// 0 allocs/op in steady state — the skewed-event buffer and sample
// structs are reused, never reallocated.
func BenchmarkSamplePath(b *testing.B) {
	kernel, abi := testKernel()
	l := loader.New(kernel)
	sink := &countingSink{}
	m := NewMachine(Options{Loader: l, ABI: abi, Seed: 7, Profile: ProfileConfig{
		Mode:         ModeCycles,
		Sink:         sink,
		CyclesPeriod: PeriodSpec{Base: 64, Spread: 4},
	}})
	src := `
main:
	lda t0, 0(zero)
	bis a0, zero, t3
.loop:
	addq t0, 1, t0
	ldq t1, 0(t3)
	xor t1, t0, t2
	and t2, 0xff, t2
	lda t3, 8(t3)
	cmpult t0, a1, t4
	bne t4, .loop
	halt
`
	exec := image.New("bench", "/bin/bench", image.KindExecutable, alpha.MustAssemble(src))
	p, err := l.NewProcess("bench", exec)
	if err != nil {
		b.Fatal(err)
	}
	p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
	p.Regs.WriteI(alpha.RegA1, uint64(b.N))
	m.Spawn(p)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(1 << 60)
	b.StopTimer()
	b.ReportMetric(float64(sink.n)/float64(b.N), "samples/op")
}
