package sim

import (
	"testing"

	"dcpi/internal/hw"
	"dcpi/internal/loader"
)

// TestDefaultHWMatchesZeroValue locks the hw.Config refactor at the machine
// level: a machine built with the zero HW and one built with hw.Default()
// spelled out must simulate identically, instruction for instruction.
func TestDefaultHWMatchesZeroValue(t *testing.T) {
	run := func(opts Options) (int64, Stats) {
		m, _ := testMachine(t, sumProgram, opts)
		wall := m.Run(1 << 30)
		return wall, m.Stats()
	}
	w1, s1 := run(Options{Seed: 7})
	w2, s2 := run(Options{Seed: 7, HW: hw.Default()})
	if w1 != w2 || s1 != s2 {
		t.Fatalf("explicit default HW diverged:\n zero:    wall=%d %v\n default: wall=%d %v", w1, s1, w2, s2)
	}
}

// TestHWGeometryReachesCPU checks that a perturbed config actually builds
// the machine it describes.
func TestHWGeometryReachesCPU(t *testing.T) {
	cfg := hw.Default()
	cfg.DCache = hw.Geometry{Size: 16 << 10, LineSize: 64, Assoc: 2}
	cfg.ITBEntries = 8
	cfg.WBDrainCycles = 0
	cfg.IssueWidth = 1
	m, _ := testMachine(t, sumProgram, Options{HW: cfg})
	c := m.CPUs[0]
	if got := c.dcache.Config(); got.Size != 16<<10 || got.LineSize != 64 || got.Assoc != 2 {
		t.Errorf("dcache config = %+v", got)
	}
	if c.itb.Capacity() != 8 {
		t.Errorf("itb capacity = %d, want 8", c.itb.Capacity())
	}
	if c.width != 1 {
		t.Errorf("issue width = %d, want 1", c.width)
	}
	if m.HW != cfg {
		t.Errorf("machine HW = %+v, want %+v", m.HW, cfg)
	}
}

// TestIssueWidthScaling runs the same program at widths 1, 2, and 4. Width 1
// must disable pairing entirely (every group is one instruction); wider
// machines must never issue fewer instructions per group, and the
// architectural result must be identical at every width.
func TestIssueWidthScaling(t *testing.T) {
	type res struct {
		wall   int64
		stats  Stats
		sum    uint64
		exited bool
	}
	run := func(width int) res {
		cfg := hw.Default()
		cfg.IssueWidth = width
		m, p := testMachine(t, sumProgram, Options{Seed: 7, HW: cfg})
		wall := m.Run(1 << 30)
		return res{wall, m.Stats(), p.Mem.Load(0x10000, 8), p.State == loader.ProcExited}
	}
	r1, r2, r4 := run(1), run(2), run(4)

	for w, r := range map[int]res{1: r1, 2: r2, 4: r4} {
		if !r.exited || r.sum != 5050 {
			t.Fatalf("width %d: exited=%v sum=%d (timing must not change architecture)", w, r.exited, r.sum)
		}
		if r.stats.Instructions != r2.stats.Instructions {
			t.Errorf("width %d executed %d instructions, width 2 executed %d",
				w, r.stats.Instructions, r2.stats.Instructions)
		}
	}
	if r1.stats.IssueGroups != r1.stats.Instructions {
		t.Errorf("width 1 paired: groups=%d insts=%d", r1.stats.IssueGroups, r1.stats.Instructions)
	}
	if r2.stats.IssueGroups >= r1.stats.IssueGroups {
		t.Errorf("width 2 no denser than width 1: %d vs %d groups",
			r2.stats.IssueGroups, r1.stats.IssueGroups)
	}
	if r4.stats.IssueGroups > r2.stats.IssueGroups {
		t.Errorf("width 4 formed more groups than width 2: %d vs %d",
			r4.stats.IssueGroups, r2.stats.IssueGroups)
	}
	if r1.wall < r2.wall || r2.wall < r4.wall {
		t.Errorf("walls not monotone with width: w1=%d w2=%d w4=%d", r1.wall, r2.wall, r4.wall)
	}
}

// TestWidth2MatchesLegacyDualIssue pins the group-issue refactor: explicit
// width 2 must be bit-identical to the zero-value (historical dual-issue)
// machine, which TestDefaultHWMatchesZeroValue ties back to hw.Default().
func TestWidth2MatchesLegacyDualIssue(t *testing.T) {
	cfg := hw.Default()
	cfg.IssueWidth = 2
	m1, _ := testMachine(t, sumProgram, Options{Seed: 7})
	m2, _ := testMachine(t, sumProgram, Options{Seed: 7, HW: cfg})
	w1, w2 := m1.Run(1<<30), m2.Run(1<<30)
	if w1 != w2 || m1.Stats() != m2.Stats() {
		t.Fatalf("width-2 group issue diverged from dual issue:\n %d %v\n %d %v",
			w1, m1.Stats(), w2, m2.Stats())
	}
}

func TestInvalidHWPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMachine accepted an invalid hw config")
		}
	}()
	bad := hw.Default()
	bad.IssueWidth = 9
	testMachine(t, sumProgram, Options{HW: bad})
}
