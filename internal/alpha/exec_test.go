package alpha

import (
	"math"
	"testing"
	"testing/quick"
)

// flatMem is a trivial Memory for tests.
type flatMem map[uint64]byte

func (m flatMem) Load(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m[addr+uint64(i)]) << (8 * i)
	}
	return v
}

func (m flatMem) Store(addr uint64, size int, val uint64) {
	for i := 0; i < size; i++ {
		m[addr+uint64(i)] = byte(val >> (8 * i))
	}
}

// run executes assembled code starting at pc 0 until HALT or maxSteps.
func run(t *testing.T, src string, setup func(*Regs, flatMem), maxSteps int) (*Regs, flatMem) {
	t.Helper()
	a := MustAssemble(src)
	regs := &Regs{}
	mem := flatMem{}
	if setup != nil {
		setup(regs, mem)
	}
	pc := uint64(0)
	for steps := 0; steps < maxSteps; steps++ {
		idx := pc / InstBytes
		if idx >= uint64(len(a.Code)) {
			t.Fatalf("pc %#x outside code", pc)
		}
		out := Execute(a.Code[idx], pc, regs, mem)
		if out.Fault != nil {
			t.Fatalf("fault: %v", out.Fault)
		}
		if out.Halt {
			return regs, mem
		}
		pc = out.NextPC
	}
	t.Fatalf("did not halt in %d steps", maxSteps)
	return nil, nil
}

func TestExecuteArithmetic(t *testing.T) {
	regs, _ := run(t, `
p:
	lda  t0, 100(zero)
	lda  t1, 23(zero)
	addq t0, t1, t2    ; 123
	subq t0, t1, t3    ; 77
	mulq t0, t1, t4    ; 2300
	s4addq t1, t0, t5  ; 4*23+100 = 192
	s8addq t1, t0, t6  ; 8*23+100 = 284
	cmpult t1, t0, t7  ; 1
	cmpeq  t0, t0, t8  ; 1
	cmplt  t1, t0, t9  ; 1
	halt
`, nil, 100)
	want := map[uint8]uint64{
		RegT2: 123, RegT3: 77, RegT4: 2300, RegT5: 192, RegT6: 284,
		RegT7: 1, RegT8: 1, RegT9: 1,
	}
	for r, w := range want {
		if got := regs.I[r]; got != w {
			t.Errorf("%s = %d, want %d", RegName(r), got, w)
		}
	}
}

func TestExecuteNegativeLDA(t *testing.T) {
	regs, _ := run(t, "p:\n lda sp, -64(zero)\n ldah t0, 2(zero)\n halt", nil, 10)
	if got := int64(regs.I[RegSP]); got != -64 {
		t.Errorf("sp = %d, want -64", got)
	}
	if got := regs.I[RegT0]; got != 2*65536 {
		t.Errorf("t0 = %d, want %d", got, 2*65536)
	}
}

func TestExecuteLoadsStores(t *testing.T) {
	regs, mem := run(t, `
p:
	lda  t0, 0x1000(zero)
	lda  t1, 0x1234(zero)
	stq  t1, 0(t0)
	ldq  t2, 0(t0)
	stl  t1, 16(t0)
	ldl  t3, 16(t0)
	halt
`, nil, 20)
	if regs.I[RegT2] != 0x1234 {
		t.Errorf("ldq t2 = %#x", regs.I[RegT2])
	}
	if regs.I[RegT3] != 0x1234 {
		t.Errorf("ldl t3 = %#x", regs.I[RegT3])
	}
	if got := mem.Load(0x1000, 8); got != 0x1234 {
		t.Errorf("mem = %#x", got)
	}
}

func TestExecuteLDLSignExtends(t *testing.T) {
	regs, _ := run(t, `
p:
	ldl t0, 0(zero)
	halt
`, func(r *Regs, m flatMem) {
		m.Store(0, 4, 0xffffffff)
	}, 10)
	if got := int64(regs.I[RegT0]); got != -1 {
		t.Errorf("ldl = %d, want -1", got)
	}
}

func TestExecuteZeroRegister(t *testing.T) {
	regs, _ := run(t, `
p:
	lda  zero, 55(zero)
	addq zero, 7, t0
	addq t0, zero, t1
	halt
`, nil, 10)
	if regs.I[RegZero] != 0 {
		t.Error("zero register was written")
	}
	if regs.I[RegT0] != 7 || regs.I[RegT1] != 7 {
		t.Errorf("t0=%d t1=%d", regs.I[RegT0], regs.I[RegT1])
	}
}

func TestExecuteLoop(t *testing.T) {
	// Sum 1..10.
	regs, _ := run(t, `
p:
	lda t0, 0(zero)    ; i = 0
	lda t1, 0(zero)    ; sum = 0
.loop:
	addq t0, 1, t0
	addq t1, t0, t1
	cmplt t0, 10, t2
	bne t2, .loop
	halt
`, nil, 200)
	if got := regs.I[RegT1]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestExecuteCopyLoop(t *testing.T) {
	// The paper's Figure 2 copy loop, 4x unrolled, n=64 elements.
	const n = 64
	regs, mem := run(t, `
copy:
	lda t0, 4(zero)       ; i = 4 (counts elements copied, by 4)
.loop:
	ldq   t4, 0(t1)
	addq  t0, 0x4, t0
	ldq   t5, 8(t1)
	ldq   t6, 16(t1)
	ldq   a0, 24(t1)
	lda   t1, 32(t1)
	stq   t4, 0(t2)
	cmpult t0, v0, t4
	stq   t5, 8(t2)
	stq   t6, 16(t2)
	stq   a0, 24(t2)
	lda   t2, 32(t2)
	bne   t4, .loop
	halt
`, func(r *Regs, m flatMem) {
		r.I[RegV0] = n + 4 // loop bound (paper's v0)
		r.I[RegT1] = 0x10000
		r.I[RegT2] = 0x20000
		for i := 0; i < n; i++ {
			m.Store(0x10000+uint64(i)*8, 8, uint64(i)*3+1)
		}
	}, 10000)
	_ = regs
	for i := 0; i < n; i++ {
		want := uint64(i)*3 + 1
		if got := mem.Load(0x20000+uint64(i)*8, 8); got != want {
			t.Fatalf("dst[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestExecuteJSRAndRet(t *testing.T) {
	regs, _ := run(t, `
main:
	lda  pv, 20(zero)   ; address of 'callee' (instruction 5)
	jsr  ra, (pv)
	addq v0, 1, s0
	halt
	nop
callee:
	lda v0, 41(zero)
	ret (ra)
`, nil, 50)
	if regs.I[RegS0] != 42 {
		t.Errorf("s0 = %d, want 42", regs.I[RegS0])
	}
}

func TestExecuteFloatingPoint(t *testing.T) {
	regs, _ := run(t, `
p:
	ldt f1, 0(zero)
	ldt f2, 8(zero)
	addt f1, f2, f3
	mult f3, f2, f4
	divt f4, f1, f5
	cmptlt f1, f2, f6
	halt
`, func(r *Regs, m flatMem) {
		m.Store(0, 8, math.Float64bits(1.5))
		m.Store(8, 8, math.Float64bits(2.0))
	}, 20)
	if got := math.Float64frombits(regs.F[3]); got != 3.5 {
		t.Errorf("addt = %v", got)
	}
	if got := math.Float64frombits(regs.F[4]); got != 7.0 {
		t.Errorf("mult = %v", got)
	}
	if got := math.Float64frombits(regs.F[5]); got != 7.0/1.5 {
		t.Errorf("divt = %v", got)
	}
	if regs.F[6] == 0 {
		t.Error("cmptlt should be true")
	}
}

func TestExecuteCMov(t *testing.T) {
	regs, _ := run(t, `
p:
	lda t0, 0(zero)
	lda t1, 9(zero)
	lda t2, 5(zero)
	cmoveq t0, t1, t2  ; t0==0 -> t2 = 9
	cmovne t0, 77, t2  ; t0==0 -> unchanged
	halt
`, nil, 10)
	if regs.I[RegT2] != 9 {
		t.Errorf("t2 = %d, want 9", regs.I[RegT2])
	}
}

func TestExecuteShiftsAndLogic(t *testing.T) {
	regs, _ := run(t, `
p:
	lda t0, 0xff(zero)
	sll t0, 8, t1
	srl t1, 4, t2
	and t0, 0x0f, t3
	bis t3, 0xf0, t4
	xor t4, t0, t5
	bic t0, 0x0f, t6
	ornot zero, t0, t7
	halt
`, nil, 20)
	if regs.I[RegT1] != 0xff00 {
		t.Errorf("sll = %#x", regs.I[RegT1])
	}
	if regs.I[RegT2] != 0xff0 {
		t.Errorf("srl = %#x", regs.I[RegT2])
	}
	if regs.I[RegT3] != 0x0f {
		t.Errorf("and = %#x", regs.I[RegT3])
	}
	if regs.I[RegT4] != 0xff {
		t.Errorf("bis = %#x", regs.I[RegT4])
	}
	if regs.I[RegT5] != 0 {
		t.Errorf("xor = %#x", regs.I[RegT5])
	}
	if regs.I[RegT6] != 0xf0 {
		t.Errorf("bic = %#x", regs.I[RegT6])
	}
	if regs.I[RegT7] != ^uint64(0xff) {
		t.Errorf("ornot = %#x", regs.I[RegT7])
	}
}

func TestExecuteSRA(t *testing.T) {
	regs, _ := run(t, `
p:
	lda t0, -16(zero)
	sra t0, 2, t1
	srl t0, 60, t2
	halt
`, nil, 10)
	if got := int64(regs.I[RegT1]); got != -4 {
		t.Errorf("sra = %d, want -4", got)
	}
	if got := regs.I[RegT2]; got != 0xf {
		t.Errorf("srl = %#x, want 0xf", got)
	}
}

func TestExecutePalHaltBarrier(t *testing.T) {
	a := MustAssemble("p:\n call_pal 0x83\n mb\n halt")
	regs := &Regs{}
	mem := flatMem{}

	out := Execute(a.Code[0], 0, regs, mem)
	if !out.IsPal || out.Pal != 0x83 {
		t.Errorf("call_pal outcome = %+v", out)
	}
	out = Execute(a.Code[1], 4, regs, mem)
	if !out.Barrier {
		t.Errorf("mb outcome = %+v", out)
	}
	out = Execute(a.Code[2], 8, regs, mem)
	if !out.Halt {
		t.Errorf("halt outcome = %+v", out)
	}
}

func TestExecuteBranchOutcomes(t *testing.T) {
	cases := []struct {
		op    Op
		val   uint64
		taken bool
	}{
		{OpBEQ, 0, true}, {OpBEQ, 1, false},
		{OpBNE, 0, false}, {OpBNE, 1, true},
		{OpBLT, ^uint64(0), true}, {OpBLT, 1, false},
		{OpBLE, 0, true}, {OpBLE, 1, false},
		{OpBGT, 1, true}, {OpBGT, 0, false},
		{OpBGE, 0, true}, {OpBGE, ^uint64(0), false},
		{OpBLBC, 2, true}, {OpBLBC, 3, false},
		{OpBLBS, 3, true}, {OpBLBS, 2, false},
	}
	for _, tc := range cases {
		regs := &Regs{}
		regs.I[RegT0] = tc.val
		in := Inst{Op: tc.op, Ra: RegT0, Disp: 3}
		out := Execute(in, 0x100, regs, flatMem{})
		if out.Taken != tc.taken {
			t.Errorf("%v(%d): taken = %v, want %v", tc.op, tc.val, out.Taken, tc.taken)
		}
		if tc.taken && out.NextPC != 0x100+4+3*4 {
			t.Errorf("%v: nextPC = %#x", tc.op, out.NextPC)
		}
		if !tc.taken && out.NextPC != 0x104 {
			t.Errorf("%v: nextPC = %#x", tc.op, out.NextPC)
		}
	}
}

func TestDestAndSources(t *testing.T) {
	a := MustAssemble(`
p:
	ldq t4, 0(t1)
	stq t4, 8(t2)
	addq t0, t1, t2
	addq t0, 0x4, t0
	bne t4, p
	jsr ra, (pv)
	lda t1, 32(t1)
	cmoveq t0, t1, t2
	mulq a0, a1, v0
`)
	ldq := a.Code[0]
	if d, ok := ldq.Dest(); !ok || d.Reg != RegT4 || d.FP {
		t.Errorf("ldq dest = %+v, %v", d, ok)
	}
	if srcs := ldq.Sources(); len(srcs) != 1 || srcs[0].Reg != RegT1 {
		t.Errorf("ldq sources = %+v", srcs)
	}
	stq := a.Code[1]
	if _, ok := stq.Dest(); ok {
		t.Error("stq should have no dest")
	}
	if srcs := stq.Sources(); len(srcs) != 2 {
		t.Errorf("stq sources = %+v", srcs)
	}
	addq := a.Code[2]
	if d, _ := addq.Dest(); d.Reg != RegT2 {
		t.Errorf("addq dest = %+v", d)
	}
	addqLit := a.Code[3]
	if srcs := addqLit.Sources(); len(srcs) != 1 {
		t.Errorf("addq-lit sources = %+v", srcs)
	}
	bne := a.Code[4]
	if _, ok := bne.Dest(); ok {
		t.Error("bne should have no dest")
	}
	jsr := a.Code[5]
	if d, _ := jsr.Dest(); d.Reg != RegRA {
		t.Errorf("jsr dest = %+v", d)
	}
	cmov := a.Code[7]
	if srcs := cmov.Sources(); len(srcs) != 3 {
		t.Errorf("cmov sources = %+v (cmov must read its destination)", srcs)
	}
	mulq := a.Code[8]
	if mulq.Op.Class() != ClassIntMul {
		t.Errorf("mulq class = %v", mulq.Op.Class())
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpLDQ.IsLoad() || OpSTQ.IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !OpSTQ.IsStore() || OpLDQ.IsStore() {
		t.Error("IsStore wrong")
	}
	if !OpBNE.IsCondBranch() || OpBR.IsCondBranch() {
		t.Error("IsCondBranch wrong")
	}
	if !OpBR.IsUncondBranch() || !OpBSR.IsUncondBranch() || OpBNE.IsUncondBranch() {
		t.Error("IsUncondBranch wrong")
	}
	if !OpJSR.IsCall() || !OpBSR.IsCall() || OpBR.IsCall() {
		t.Error("IsCall wrong")
	}
	for _, op := range []Op{OpBR, OpBNE, OpJMP, OpRET, OpHALT, OpCALLPAL} {
		if !op.EndsBlock() {
			t.Errorf("%v should end a block", op)
		}
	}
	for _, op := range []Op{OpADDQ, OpLDQ, OpSTQ, OpNOP, OpMB} {
		if op.EndsBlock() {
			t.Errorf("%v should not end a block", op)
		}
	}
}

// Property: zap and zapnot with the same mask partition the value.
func TestZapProperty(t *testing.T) {
	f := func(v uint64, mask uint8) bool {
		return zap(v, mask, true)|zap(v, mask, false) == v &&
			zap(v, mask, true)&zap(v, mask, false) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mul128 high word matches the wide product.
func TestMul128Property(t *testing.T) {
	f := func(a, b uint32) bool {
		hi, lo := mul128(uint64(a), uint64(b))
		return hi == 0 && lo == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	hi, _ := mul128(1<<63, 2)
	if hi != 1 {
		t.Errorf("mul128(2^63, 2) hi = %d, want 1", hi)
	}
}

// Property: every opcode renders to a non-empty mnemonic and has a stable
// class; every operate-format op assembles from its own rendering.
func TestOpcodeTableComplete(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		if opInfo[op].name == "" {
			t.Errorf("op %d has no name", op)
		}
		if op.String() == "<invalid>" {
			t.Errorf("op %d renders invalid", op)
		}
		if got, ok := LookupOp(op.String()); !ok || got != op {
			t.Errorf("LookupOp(%q) = %v, %v", op.String(), got, ok)
		}
	}
}
