// Package alpha defines an Alpha-like instruction set: opcodes, the
// instruction word, register naming conventions, a two-pass assembler, a
// disassembler, and functional execution semantics.
//
// The ISA is a faithful subset of the Alpha AXP architecture as described in
// the DCPI paper's examples (Figure 2 uses ldq/stq/addq/cmpult/lda/bne): load
// and load-address instructions write their first operand, three-register
// operators write their third, stores read their first operand, and
// conditional branches test their first operand. Instructions are 4 bytes.
package alpha

import "fmt"

// Op identifies an instruction opcode.
type Op uint8

// Opcodes. The groupings matter: the pipeline model and the analysis tools
// dispatch on Class(), not on individual opcodes.
const (
	// OpInvalid is the zero Op; executing it is a process fault.
	OpInvalid Op = iota

	// Integer memory format: Ra, Disp(Rb).
	OpLDA  // load address: Ra <- Rb + Disp
	OpLDAH // load address high: Ra <- Rb + Disp*65536
	OpLDQ  // load quadword
	OpLDL  // load longword (sign-extended)
	OpSTQ  // store quadword
	OpSTL  // store longword

	// Floating-point memory format: Fa, Disp(Rb).
	OpLDT // load T-floating (64-bit)
	OpSTT // store T-floating

	// Integer operate format: Ra, Rb|#lit, Rc.
	OpADDQ
	OpSUBQ
	OpMULQ  // occupies the integer multiplier
	OpUMULH // unsigned multiply high; occupies the multiplier
	OpS4ADDQ
	OpS8ADDQ
	OpAND
	OpBIC
	OpBIS
	OpORNOT
	OpXOR
	OpEQV
	OpSLL
	OpSRL
	OpSRA
	OpCMPEQ
	OpCMPLT
	OpCMPLE
	OpCMPULT
	OpCMPULE
	OpCMOVEQ // Rc <- Rb if Ra == 0
	OpCMOVNE
	OpCMOVLT
	OpCMOVGE
	OpZAP
	OpZAPNOT
	OpCMPBGE // byte-wise unsigned >= compare, one result bit per byte
	OpEXTBL  // extract byte low
	OpEXTWL  // extract word low
	OpEXTLL  // extract longword low
	OpEXTQL  // extract quadword low
	OpINSBL  // insert byte low
	OpINSWL  // insert word low
	OpMSKBL  // mask byte low
	OpMSKWL  // mask word low
	OpSEXTB  // sign-extend byte (BWX extension)
	OpSEXTW  // sign-extend word

	// Floating-point operate format: Fa, Fb, Fc.
	OpADDT
	OpSUBT
	OpMULT
	OpDIVT // occupies the floating-point divider
	OpCPYS
	OpCVTQT // Fb (integer bits) -> Fc (T-floating)
	OpCVTTQ // Fb (T-floating) -> Fc (integer bits, truncated)
	OpCMPTEQ
	OpCMPTLT
	OpCMPTLE

	// Branch format: Ra, Disp (instruction-count displacement from PC+4).
	OpBR  // unconditional; Ra <- return address (often zero)
	OpBSR // branch to subroutine; Ra <- return address
	OpBEQ
	OpBNE
	OpBLT
	OpBLE
	OpBGT
	OpBGE
	OpBLBC // low bit clear
	OpBLBS // low bit set
	OpFBEQ // floating: Fa == 0
	OpFBNE

	// Jump format: Ra (link), (Rb) target.
	OpJMP
	OpJSR
	OpRET

	// Miscellaneous.
	OpNOP
	OpMB      // memory barrier: drains the write buffer
	OpWMB     // write memory barrier (same model as MB)
	OpCALLPAL // PALcode call; Pal field selects the service
	OpRPCC    // read processor cycle counter into Ra
	OpHALT    // terminate the process (simulation device)
	OpFETCH   // prefetch hint: Disp(Rb); no architectural effect

	opMax // sentinel
)

// NumOps is the number of opcode values, for building per-op lookup tables
// (e.g. pipeline.Tables) indexed directly by Op.
const NumOps = int(opMax)

// Class groups opcodes by issue behaviour.
type Class uint8

const (
	ClassIntOp  Class = iota // single-cycle integer operate
	ClassIntMul              // integer multiply (multiplier FU)
	ClassLoad                // memory load (int or fp)
	ClassStore               // memory store (int or fp)
	ClassFPOp                // floating add/mul/compare/convert
	ClassFPDiv               // floating divide (divider FU)
	ClassBranch              // conditional or unconditional branch
	ClassJump                // computed jump (jmp/jsr/ret)
	ClassMisc                // nop, mb, call_pal, rpcc, halt, fetch
)

// info is the static opcode table.
type info struct {
	name   string
	class  Class
	format format
	fp     bool // operands in the floating-point register file
}

type format uint8

const (
	fmtMemory  format = iota // Ra, Disp(Rb)
	fmtOperate               // Ra, Rb|#lit, Rc
	fmtFPOp                  // Fa, Fb, Fc
	fmtBranch                // Ra, Disp
	fmtJump                  // Ra, (Rb)
	fmtMisc                  // no operands (nop, mb, halt)
	fmtPal                   // call_pal N
	fmtRPCC                  // rpcc Ra
)

var opInfo = [opMax]info{
	OpInvalid: {"<invalid>", ClassMisc, fmtMisc, false},

	OpLDA:  {"lda", ClassIntOp, fmtMemory, false},
	OpLDAH: {"ldah", ClassIntOp, fmtMemory, false},
	OpLDQ:  {"ldq", ClassLoad, fmtMemory, false},
	OpLDL:  {"ldl", ClassLoad, fmtMemory, false},
	OpSTQ:  {"stq", ClassStore, fmtMemory, false},
	OpSTL:  {"stl", ClassStore, fmtMemory, false},
	OpLDT:  {"ldt", ClassLoad, fmtMemory, true},
	OpSTT:  {"stt", ClassStore, fmtMemory, true},

	OpADDQ:   {"addq", ClassIntOp, fmtOperate, false},
	OpSUBQ:   {"subq", ClassIntOp, fmtOperate, false},
	OpMULQ:   {"mulq", ClassIntMul, fmtOperate, false},
	OpUMULH:  {"umulh", ClassIntMul, fmtOperate, false},
	OpS4ADDQ: {"s4addq", ClassIntOp, fmtOperate, false},
	OpS8ADDQ: {"s8addq", ClassIntOp, fmtOperate, false},
	OpAND:    {"and", ClassIntOp, fmtOperate, false},
	OpBIC:    {"bic", ClassIntOp, fmtOperate, false},
	OpBIS:    {"bis", ClassIntOp, fmtOperate, false},
	OpORNOT:  {"ornot", ClassIntOp, fmtOperate, false},
	OpXOR:    {"xor", ClassIntOp, fmtOperate, false},
	OpEQV:    {"eqv", ClassIntOp, fmtOperate, false},
	OpSLL:    {"sll", ClassIntOp, fmtOperate, false},
	OpSRL:    {"srl", ClassIntOp, fmtOperate, false},
	OpSRA:    {"sra", ClassIntOp, fmtOperate, false},
	OpCMPEQ:  {"cmpeq", ClassIntOp, fmtOperate, false},
	OpCMPLT:  {"cmplt", ClassIntOp, fmtOperate, false},
	OpCMPLE:  {"cmple", ClassIntOp, fmtOperate, false},
	OpCMPULT: {"cmpult", ClassIntOp, fmtOperate, false},
	OpCMPULE: {"cmpule", ClassIntOp, fmtOperate, false},
	OpCMOVEQ: {"cmoveq", ClassIntOp, fmtOperate, false},
	OpCMOVNE: {"cmovne", ClassIntOp, fmtOperate, false},
	OpCMOVLT: {"cmovlt", ClassIntOp, fmtOperate, false},
	OpCMOVGE: {"cmovge", ClassIntOp, fmtOperate, false},
	OpZAP:    {"zap", ClassIntOp, fmtOperate, false},
	OpZAPNOT: {"zapnot", ClassIntOp, fmtOperate, false},
	OpCMPBGE: {"cmpbge", ClassIntOp, fmtOperate, false},
	OpEXTBL:  {"extbl", ClassIntOp, fmtOperate, false},
	OpEXTWL:  {"extwl", ClassIntOp, fmtOperate, false},
	OpEXTLL:  {"extll", ClassIntOp, fmtOperate, false},
	OpEXTQL:  {"extql", ClassIntOp, fmtOperate, false},
	OpINSBL:  {"insbl", ClassIntOp, fmtOperate, false},
	OpINSWL:  {"inswl", ClassIntOp, fmtOperate, false},
	OpMSKBL:  {"mskbl", ClassIntOp, fmtOperate, false},
	OpMSKWL:  {"mskwl", ClassIntOp, fmtOperate, false},
	OpSEXTB:  {"sextb", ClassIntOp, fmtOperate, false},
	OpSEXTW:  {"sextw", ClassIntOp, fmtOperate, false},

	OpADDT:   {"addt", ClassFPOp, fmtFPOp, true},
	OpSUBT:   {"subt", ClassFPOp, fmtFPOp, true},
	OpMULT:   {"mult", ClassFPOp, fmtFPOp, true},
	OpDIVT:   {"divt", ClassFPDiv, fmtFPOp, true},
	OpCPYS:   {"cpys", ClassFPOp, fmtFPOp, true},
	OpCVTQT:  {"cvtqt", ClassFPOp, fmtFPOp, true},
	OpCVTTQ:  {"cvttq", ClassFPOp, fmtFPOp, true},
	OpCMPTEQ: {"cmpteq", ClassFPOp, fmtFPOp, true},
	OpCMPTLT: {"cmptlt", ClassFPOp, fmtFPOp, true},
	OpCMPTLE: {"cmptle", ClassFPOp, fmtFPOp, true},

	OpBR:   {"br", ClassBranch, fmtBranch, false},
	OpBSR:  {"bsr", ClassBranch, fmtBranch, false},
	OpBEQ:  {"beq", ClassBranch, fmtBranch, false},
	OpBNE:  {"bne", ClassBranch, fmtBranch, false},
	OpBLT:  {"blt", ClassBranch, fmtBranch, false},
	OpBLE:  {"ble", ClassBranch, fmtBranch, false},
	OpBGT:  {"bgt", ClassBranch, fmtBranch, false},
	OpBGE:  {"bge", ClassBranch, fmtBranch, false},
	OpBLBC: {"blbc", ClassBranch, fmtBranch, false},
	OpBLBS: {"blbs", ClassBranch, fmtBranch, false},
	OpFBEQ: {"fbeq", ClassBranch, fmtBranch, true},
	OpFBNE: {"fbne", ClassBranch, fmtBranch, true},

	OpJMP: {"jmp", ClassJump, fmtJump, false},
	OpJSR: {"jsr", ClassJump, fmtJump, false},
	OpRET: {"ret", ClassJump, fmtJump, false},

	OpNOP:     {"nop", ClassMisc, fmtMisc, false},
	OpMB:      {"mb", ClassMisc, fmtMisc, false},
	OpWMB:     {"wmb", ClassMisc, fmtMisc, false},
	OpCALLPAL: {"call_pal", ClassMisc, fmtPal, false},
	OpRPCC:    {"rpcc", ClassRPCCClass, fmtRPCC, false},
	OpHALT:    {"halt", ClassMisc, fmtMisc, false},
	OpFETCH:   {"fetch", ClassMisc, fmtMemory, false},
}

// ClassRPCCClass exists so RPCC writes a register but issues like a misc op.
const ClassRPCCClass = ClassIntOp

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if op >= opMax {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opInfo[op].name
}

// Class reports the issue class of op.
func (op Op) Class() Class {
	return opInfo[op].class
}

// IsFP reports whether op's register operands live in the FP register file.
func (op Op) IsFP() bool { return opInfo[op].fp }

// IsLoad reports whether op reads memory into a register.
func (op Op) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether op writes a register to memory.
func (op Op) IsStore() bool { return op.Class() == ClassStore }

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool {
	switch op {
	case OpBEQ, OpBNE, OpBLT, OpBLE, OpBGT, OpBGE, OpBLBC, OpBLBS, OpFBEQ, OpFBNE:
		return true
	}
	return false
}

// IsUncondBranch reports whether op is br or bsr.
func (op Op) IsUncondBranch() bool { return op == OpBR || op == OpBSR }

// IsJump reports whether op is a computed jump (jmp/jsr/ret).
func (op Op) IsJump() bool { return op.Class() == ClassJump }

// IsCall reports whether op transfers control and links a return address the
// way a procedure call does.
func (op Op) IsCall() bool { return op == OpBSR || op == OpJSR }

// EndsBlock reports whether op terminates a basic block.
func (op Op) EndsBlock() bool {
	switch op.Class() {
	case ClassBranch, ClassJump:
		return true
	}
	return op == OpHALT || op == OpCALLPAL
}

func (c Class) String() string {
	switch c {
	case ClassIntOp:
		return "intop"
	case ClassIntMul:
		return "intmul"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassFPOp:
		return "fpop"
	case ClassFPDiv:
		return "fpdiv"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassMisc:
		return "misc"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}
