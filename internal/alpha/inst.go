package alpha

// InstBytes is the size of every instruction in bytes.
const InstBytes = 4

// Inst is one decoded instruction. The operand meaning depends on the format:
//
//   - memory:  Ra, Disp(Rb)     — loads/lda write Ra, stores read Ra
//   - operate: Ra, Rb|#Lit, Rc  — writes Rc
//   - branch:  Ra, Disp         — Disp counts instructions from PC+4
//   - jump:    Ra, (Rb)         — writes return address to Ra, target in Rb
type Inst struct {
	Op     Op
	Ra     uint8
	Rb     uint8
	Rc     uint8
	Disp   int32 // memory byte displacement, or branch instruction displacement
	Lit    uint8 // literal operand, when UseLit
	UseLit bool
	Pal    uint16 // CALL_PAL function code
}

// Operand describes a register operand as integer or floating-point. For
// source operands, Slot records which encoding slot ('a', 'b', or 'c') the
// register occupies; the analysis tools report "Ra/Rb/Rc dependency" static
// stalls from it, as dcpicalc does in the paper's Figure 4.
type Operand struct {
	Reg  uint8
	FP   bool
	Slot byte
}

// valid reports whether o names a real architectural destination. Register 31
// reads as zero and discards writes in both register files.
func valid(o Operand) bool { return o.Reg != RegZero }

// Dest returns the register written by the instruction, if any. The zero
// integer register is never reported as a destination.
func (in Inst) Dest() (Operand, bool) {
	fi := opInfo[in.Op]
	switch fi.format {
	case fmtMemory:
		if in.Op.IsLoad() || in.Op == OpLDA || in.Op == OpLDAH {
			o := Operand{Reg: in.Ra, FP: fi.fp}
			return o, valid(o)
		}
	case fmtOperate:
		o := Operand{Reg: in.Rc}
		return o, valid(o)
	case fmtFPOp:
		o := Operand{Reg: in.Rc, FP: true}
		return o, valid(o)
	case fmtBranch:
		if in.Op == OpBR || in.Op == OpBSR {
			o := Operand{Reg: in.Ra}
			return o, valid(o)
		}
	case fmtJump:
		o := Operand{Reg: in.Ra}
		return o, valid(o)
	case fmtRPCC:
		o := Operand{Reg: in.Ra}
		return o, valid(o)
	}
	return Operand{}, false
}

// Sources returns the registers read by the instruction. The zero integer
// register is omitted (reading it never creates a dependency).
func (in Inst) Sources() []Operand {
	fi := opInfo[in.Op]
	var out []Operand
	add := func(r uint8, fp bool, slot byte) {
		if r == RegZero {
			return
		}
		out = append(out, Operand{r, fp, slot})
	}
	switch fi.format {
	case fmtMemory:
		add(in.Rb, false, 'b') // base address
		if in.Op.IsStore() {
			add(in.Ra, fi.fp, 'a') // stored value
		}
	case fmtOperate:
		add(in.Ra, false, 'a')
		if !in.UseLit {
			add(in.Rb, false, 'b')
		}
		// Conditional moves also read the current destination.
		switch in.Op {
		case OpCMOVEQ, OpCMOVNE, OpCMOVLT, OpCMOVGE:
			add(in.Rc, false, 'c')
		}
	case fmtFPOp:
		add(in.Ra, true, 'a')
		add(in.Rb, true, 'b')
	case fmtBranch:
		if in.Op.IsCondBranch() {
			add(in.Ra, fi.fp, 'a')
		}
	case fmtJump:
		add(in.Rb, false, 'b')
	}
	return out
}

// BranchTarget returns the byte offset of the branch target relative to this
// instruction's own address. Only meaningful for branch-format instructions.
func (in Inst) BranchTarget() int64 {
	return int64(InstBytes) + int64(in.Disp)*InstBytes
}
