package alpha

// InstBytes is the size of every instruction in bytes.
const InstBytes = 4

// Inst is one decoded instruction. The operand meaning depends on the format:
//
//   - memory:  Ra, Disp(Rb)     — loads/lda write Ra, stores read Ra
//   - operate: Ra, Rb|#Lit, Rc  — writes Rc
//   - branch:  Ra, Disp         — Disp counts instructions from PC+4
//   - jump:    Ra, (Rb)         — writes return address to Ra, target in Rb
type Inst struct {
	Op     Op
	Ra     uint8
	Rb     uint8
	Rc     uint8
	Disp   int32 // memory byte displacement, or branch instruction displacement
	Lit    uint8 // literal operand, when UseLit
	UseLit bool
	Pal    uint16 // CALL_PAL function code
}

// Operand describes a register operand as integer or floating-point. For
// source operands, Slot records which encoding slot ('a', 'b', or 'c') the
// register occupies; the analysis tools report "Ra/Rb/Rc dependency" static
// stalls from it, as dcpicalc does in the paper's Figure 4.
type Operand struct {
	Reg  uint8
	FP   bool
	Slot byte
}

// valid reports whether o names a real architectural destination. Register 31
// reads as zero and discards writes in both register files.
func valid(o Operand) bool { return o.Reg != RegZero }

// InstMeta is the pre-decoded static metadata of one instruction: the
// operand facts Sources and Dest derive, flattened into fixed-size storage
// so the simulator's per-cycle loop can consult them without allocating.
// Images pre-compute one InstMeta per instruction at load time
// (image.Image.MetaTable); colder callers decode on the fly with Meta.
type InstMeta struct {
	// Src holds the source operands in the same order Sources returns
	// them; only the first NSrc entries are meaningful.
	Src  [3]Operand
	NSrc uint8
	// Dst is the destination register; meaningful only when HasDst.
	Dst    Operand
	HasDst bool
	// Static classification flags, pre-resolved from the opcode table.
	Load       bool // reads memory into a register
	Store      bool // writes a register to memory
	CondBranch bool // conditional branch
}

// Meta decodes in's static operand metadata without heap allocation. It is
// the single source of truth for operand decoding: Sources and Dest are
// views over its result, so the three can never disagree.
func (in Inst) Meta() InstMeta {
	fi := opInfo[in.Op]
	var m InstMeta
	add := func(r uint8, fp bool, slot byte) {
		if r == RegZero {
			return
		}
		m.Src[m.NSrc] = Operand{r, fp, slot}
		m.NSrc++
	}
	setDst := func(r uint8, fp bool) {
		o := Operand{Reg: r, FP: fp}
		m.Dst, m.HasDst = o, valid(o)
	}
	switch fi.format {
	case fmtMemory:
		add(in.Rb, false, 'b') // base address
		if in.Op.IsStore() {
			add(in.Ra, fi.fp, 'a') // stored value
			m.Store = true
		} else if in.Op.IsLoad() {
			setDst(in.Ra, fi.fp)
			m.Load = true
		} else if in.Op == OpLDA || in.Op == OpLDAH {
			setDst(in.Ra, fi.fp)
		}
	case fmtOperate:
		add(in.Ra, false, 'a')
		if !in.UseLit {
			add(in.Rb, false, 'b')
		}
		// Conditional moves also read the current destination.
		switch in.Op {
		case OpCMOVEQ, OpCMOVNE, OpCMOVLT, OpCMOVGE:
			add(in.Rc, false, 'c')
		}
		setDst(in.Rc, false)
	case fmtFPOp:
		add(in.Ra, true, 'a')
		add(in.Rb, true, 'b')
		setDst(in.Rc, true)
	case fmtBranch:
		if in.Op.IsCondBranch() {
			add(in.Ra, fi.fp, 'a')
			m.CondBranch = true
		} else if in.Op == OpBR || in.Op == OpBSR {
			setDst(in.Ra, false)
		}
	case fmtJump:
		add(in.Rb, false, 'b')
		setDst(in.Ra, false)
	case fmtRPCC:
		setDst(in.Ra, false)
	}
	return m
}

// Sources lists m's source operands (a view over the packed array).
func (m *InstMeta) Sources() []Operand { return m.Src[:m.NSrc] }

// Dest returns the register written by the instruction, if any. The zero
// integer register is never reported as a destination.
func (in Inst) Dest() (Operand, bool) {
	m := in.Meta()
	return m.Dst, m.HasDst
}

// Sources returns the registers read by the instruction. The zero integer
// register is omitted (reading it never creates a dependency).
func (in Inst) Sources() []Operand {
	m := in.Meta()
	if m.NSrc == 0 {
		return nil
	}
	out := make([]Operand, m.NSrc)
	copy(out, m.Src[:m.NSrc])
	return out
}

// DecodeMeta builds the pre-decoded metadata table for a code sequence
// (one entry per instruction, indexed like the code slice).
func DecodeMeta(code []Inst) []InstMeta {
	out := make([]InstMeta, len(code))
	for i, in := range code {
		out[i] = in.Meta()
	}
	return out
}

// BranchTarget returns the byte offset of the branch target relative to this
// instruction's own address. Only meaningful for branch-format instructions.
func (in Inst) BranchTarget() int64 {
	return int64(InstBytes) + int64(in.Disp)*InstBytes
}
