package alpha

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAssembleCopyLoop(t *testing.T) {
	// The copy loop of Figure 2 in the paper.
	src := `
copyloop:
	ldq   t4, 0(t1)
	addq  t0, 0x4, t0
	ldq   t5, 8(t1)
	ldq   t6, 16(t1)
	ldq   a0, 24(t1)
	lda   t1, 32(t1)
	stq   t4, 0(t2)
	cmpult t0, v0, t4
	stq   t5, 8(t2)
	stq   t6, 16(t2)
	stq   a0, 24(t2)
	lda   t2, 32(t2)
	bne   t4, copyloop
`
	a, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(a.Code), 13; got != want {
		t.Fatalf("got %d instructions, want %d", got, want)
	}
	if len(a.Symbols) != 1 || a.Symbols[0].Name != "copyloop" {
		t.Fatalf("symbols = %+v", a.Symbols)
	}
	if a.Symbols[0].Size != 13*InstBytes {
		t.Errorf("symbol size = %d, want %d", a.Symbols[0].Size, 13*InstBytes)
	}

	first := a.Code[0]
	if first.Op != OpLDQ || first.Ra != RegT4 || first.Rb != RegT1 || first.Disp != 0 {
		t.Errorf("first inst = %+v", first)
	}
	addq := a.Code[1]
	if addq.Op != OpADDQ || !addq.UseLit || addq.Lit != 4 || addq.Ra != RegT0 || addq.Rc != RegT0 {
		t.Errorf("addq = %+v", addq)
	}
	bne := a.Code[12]
	if bne.Op != OpBNE || bne.Ra != RegT4 {
		t.Errorf("bne = %+v", bne)
	}
	// Branch displacement: target index 0 from instruction index 12 => -13.
	if bne.Disp != -13 {
		t.Errorf("bne disp = %d, want -13", bne.Disp)
	}
	if got := bne.BranchTarget(); got != -12*InstBytes {
		t.Errorf("branch target offset = %d, want %d", got, -12*InstBytes)
	}
}

func TestAssembleForwardBranchAndLocalLabels(t *testing.T) {
	src := `
f:
	beq a0, .done
	addq a0, 1, v0
.done:
	ret (ra)
`
	a, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Symbols) != 1 {
		t.Fatalf("local label leaked into symbols: %+v", a.Symbols)
	}
	if a.Code[0].Disp != 1 {
		t.Errorf("beq disp = %d, want 1", a.Code[0].Disp)
	}
	ret := a.Code[2]
	if ret.Op != OpRET || ret.Ra != RegZero || ret.Rb != RegRA {
		t.Errorf("ret = %+v", ret)
	}
}

func TestAssembleMultipleProcedures(t *testing.T) {
	src := `
alpha_one:
	addq a0, a1, v0
	ret (ra)
beta_two:
	subq a0, a1, v0
	nop
	ret (ra)
`
	a, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Symbols) != 2 {
		t.Fatalf("symbols = %+v", a.Symbols)
	}
	if a.Symbols[0].Size != 2*InstBytes || a.Symbols[1].Size != 3*InstBytes {
		t.Errorf("sizes = %d, %d", a.Symbols[0].Size, a.Symbols[1].Size)
	}
	if a.Symbols[1].Offset != 2*InstBytes {
		t.Errorf("beta offset = %d", a.Symbols[1].Offset)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown mnemonic", "frobnicate t0, t1, t2", "unknown mnemonic"},
		{"undefined label", "br nowhere", `undefined label "nowhere"`},
		{"duplicate label", "x:\nnop\nx:\nnop", "duplicate label"},
		{"bad register", "addq q9, t0, t1", "bad register"},
		{"bad literal", "addq t0, 999, t1", "bad operand"},
		{"bad memory operand", "ldq t0, t1", "memory operand"},
		{"wrong arity", "nop t1", "takes no operands"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
			var ae *AsmError
			if ok := errorsAs(err, &ae); !ok || ae.Line == 0 {
				t.Errorf("error %v missing line info", err)
			}
		})
	}
}

func errorsAs(err error, target **AsmError) bool {
	ae, ok := err.(*AsmError)
	if ok {
		*target = ae
	}
	return ok
}

func TestAssembleCommentStyles(t *testing.T) {
	src := `
p: ; trailing label comment
	nop // slashes
	nop # hash
	nop ; semicolon
`
	a, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Code) != 3 {
		t.Fatalf("got %d instructions, want 3", len(a.Code))
	}
}

func TestAssemblePalAndJumps(t *testing.T) {
	src := `
syscall_stub:
	call_pal 0x83
	jsr ra, (pv)
	jmp (t0)
	ret zero, (ra)
	rpcc v0
	mb
	halt
`
	a, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Code[0].Op != OpCALLPAL || a.Code[0].Pal != 0x83 {
		t.Errorf("call_pal = %+v", a.Code[0])
	}
	jsr := a.Code[1]
	if jsr.Ra != RegRA || jsr.Rb != RegPV {
		t.Errorf("jsr = %+v", jsr)
	}
	jmp := a.Code[2]
	if jmp.Ra != RegZero || jmp.Rb != RegT0 {
		t.Errorf("jmp = %+v", jmp)
	}
	if a.Code[4].Op != OpRPCC || a.Code[4].Ra != RegV0 {
		t.Errorf("rpcc = %+v", a.Code[4])
	}
}

func TestAssembleFloatingPoint(t *testing.T) {
	src := `
fpk:
	ldt  f1, 0(a0)
	addt f1, f2, f3
	mult f3, f3, f4
	divt f4, f1, f5
	cvtqt f6, f7
	stt  f5, 8(a0)
	fbne f5, fpk
`
	a, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Code[1].Ra != 1 || a.Code[1].Rb != 2 || a.Code[1].Rc != 3 {
		t.Errorf("addt = %+v", a.Code[1])
	}
	if a.Code[4].Rb != 6 || a.Code[4].Rc != 7 {
		t.Errorf("cvtqt = %+v", a.Code[4])
	}
	if !a.Code[6].Op.IsCondBranch() {
		t.Errorf("fbne not a conditional branch")
	}
}

// TestDisasmRoundTrip re-assembles the disassembly of straight-line code and
// checks it decodes to the same instructions.
func TestDisasmRoundTrip(t *testing.T) {
	src := `
rt:
	ldq t4, 16(t1)
	stl a0, -8(sp)
	addq t0, 0x7f, t0
	subq t1, t2, t3
	mulq a0, a1, v0
	and t0, t1, t2
	sll t0, 3, t1
	cmoveq t0, t1, t2
	zapnot t0, 0xf, t1
	addt f1, f2, f3
	cpys f1, f2, f3
	lda sp, -64(sp)
	jsr ra, (pv)
	ret (ra)
	mb
	nop
`
	a := MustAssemble(src)
	for i, in := range a.Code {
		text := "x: " + in.String()
		b, err := Assemble(text)
		if err != nil {
			t.Fatalf("inst %d: reassemble %q: %v", i, in.String(), err)
		}
		if len(b.Code) != 1 || b.Code[0] != in {
			t.Errorf("inst %d: round trip %q: got %+v, want %+v", i, in.String(), b.Code[0], in)
		}
	}
}

func TestDisasmAt(t *testing.T) {
	a := MustAssemble("loop:\n nop\n bne t4, loop")
	got := a.Code[1].DisasmAt(0x009840)
	if got != "bne t4, 0x00983c" {
		t.Errorf("DisasmAt = %q", got)
	}
}

func TestListing(t *testing.T) {
	a := MustAssemble("p:\n nop\n ret (ra)")
	text := Listing(a.Code, 0x1000)
	if !strings.Contains(text, "001000  nop") || !strings.Contains(text, "001004  ret (ra)") {
		t.Errorf("listing:\n%s", text)
	}
}

func TestLookupReg(t *testing.T) {
	for name, want := range map[string]uint8{
		"v0": 0, "t0": 1, "t7": 8, "s0": 9, "fp": 15, "s6": 15,
		"a0": 16, "a5": 21, "t8": 22, "ra": 26, "pv": 27, "t12": 27,
		"gp": 29, "sp": 30, "zero": 31, "r17": 17, "$5": 5,
	} {
		got, ok := LookupReg(name)
		if !ok || got != want {
			t.Errorf("LookupReg(%q) = %d, %v; want %d", name, got, ok, want)
		}
	}
	if _, ok := LookupReg("r32"); ok {
		t.Error("r32 should not resolve")
	}
	if _, ok := LookupFPReg("f31"); !ok {
		t.Error("f31 should resolve")
	}
	if _, ok := LookupFPReg("f32"); ok {
		t.Error("f32 should not resolve")
	}
}

func TestLookupOp(t *testing.T) {
	op, ok := LookupOp("LDQ")
	if !ok || op != OpLDQ {
		t.Errorf("LookupOp(LDQ) = %v, %v", op, ok)
	}
	if _, ok := LookupOp("bogus"); ok {
		t.Error("bogus op resolved")
	}
}

// TestAssembleNeverPanics: arbitrary input must produce an error, never a
// panic (the assembler is fed workload-generated source).
func TestAssembleNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = Assemble(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Targeted nasties.
	for _, src := range []string{
		":", "::", "a:b:c:", "\x00", "ldq", "ldq ,", "addq ,,,", "br",
		"x: ldq t0, (", "x: ldq t0, )t1(", "call_pal", "rpcc", "ret (",
		"x: addq t0, #, t1", "lda t0, 99999999999999999999(zero)",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Assemble(src)
		}()
	}
}
