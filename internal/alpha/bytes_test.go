package alpha

import (
	"testing"
	"testing/quick"
)

func TestByteManipulation(t *testing.T) {
	regs, _ := run(t, `
p:
	ldq  t0, 0(zero)       ; 0x8877665544332211
	extbl t0, 2, t1        ; byte 2 = 0x33
	extwl t0, 1, t2        ; word starting at byte 1 = 0x3322
	extll t0, 4, t3        ; long at byte 4 = 0x88776655
	extql t0, 0, t4        ; whole quad
	insbl t0, 3, t5        ; low byte << 24
	inswl t0, 2, t6        ; low word << 16
	mskbl t0, 0, t7        ; clear byte 0
	mskwl t0, 6, t8        ; clear bytes 6-7
	sextb t0, t9           ; 0x11 -> 0x11
	sextw t0, t10          ; 0x2211 -> 0x2211
	cmpbge t0, t0, t11     ; all bytes >= themselves
	halt
`, func(r *Regs, m flatMem) {
		m.Store(0, 8, 0x8877665544332211)
	}, 30)
	want := map[uint8]uint64{
		RegT1:  0x33,
		RegT2:  0x3322,
		RegT3:  0x88776655,
		RegT4:  0x8877665544332211,
		RegT5:  0x11 << 24,
		RegT6:  0x2211 << 16,
		RegT7:  0x8877665544332200,
		RegT8:  0x0000665544332211,
		RegT9:  0x11,
		RegT10: 0x2211,
		RegT11: 0xff,
	}
	for reg, w := range want {
		if got := regs.I[reg]; got != w {
			t.Errorf("%s = %#x, want %#x", RegName(reg), got, w)
		}
	}
}

func TestSextNegative(t *testing.T) {
	regs, _ := run(t, `
p:
	lda t0, 0x80(zero)
	sextb t0, t1
	lda t2, 0x7fff(zero)
	addq t2, 1, t2         ; 0x8000
	sextw t2, t3
	halt
`, nil, 10)
	if got := int64(regs.I[RegT1]); got != -128 {
		t.Errorf("sextb(0x80) = %d, want -128", got)
	}
	if got := int64(regs.I[RegT3]); got != -32768 {
		t.Errorf("sextw(0x8000) = %d, want -32768", got)
	}
}

func TestCmpbgeZeroByteScan(t *testing.T) {
	// The classic strlen trick: cmpbge zero, x finds zero bytes.
	regs, _ := run(t, `
p:
	ldq t0, 0(zero)
	cmpbge zero, t0, t1
	halt
`, func(r *Regs, m flatMem) {
		m.Store(0, 8, 0x41414100414141) // zero bytes at positions 3 and 7
	}, 10)
	if got := regs.I[RegT1]; got != 0x88 {
		t.Errorf("cmpbge zero = %#x, want 0x88", got)
	}
}

// Property: extract then insert at the same offset, masked back into the
// original, is identity for the affected byte.
func TestExtractInsertProperty(t *testing.T) {
	f := func(v uint64, off uint8) bool {
		off &= 7
		b := extract(v, uint64(off), 1)
		reinserted := insert(b, uint64(off), 1)
		masked := mask(v, uint64(off), 1)
		return masked|reinserted == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mask clears exactly the bytes insert would populate.
func TestMaskInsertDisjointProperty(t *testing.T) {
	f := func(v, w uint64, off uint8) bool {
		off &= 7
		return mask(v, uint64(off), 2)&insert(w, uint64(off), 2)&insert(^uint64(0), uint64(off), 2) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteOpsRoundTripAssembly(t *testing.T) {
	for _, line := range []string{
		"cmpbge t0, t1, t2", "extbl t0, 2, t1", "extwl t0, t1, t2",
		"extll t0, 4, t1", "extql t0, 0, t1", "insbl t0, 3, t1",
		"inswl t0, 2, t1", "mskbl t0, 0, t1", "mskwl t0, 6, t1",
		"sextb t0, 1, t1", "sextw t0, 1, t1",
	} {
		a, err := Assemble("x:\n " + line)
		if err != nil {
			t.Errorf("assemble %q: %v", line, err)
			continue
		}
		in := a.Code[0]
		b, err := Assemble("x:\n " + in.String())
		if err != nil || b.Code[0] != in {
			t.Errorf("round trip %q -> %q failed: %v", line, in.String(), err)
		}
	}
}
