package alpha

import (
	"fmt"
	"strconv"
	"strings"
)

// Symbol marks a procedure entry point produced by the assembler. Offsets are
// in bytes from the start of the assembled code; Size covers the half-open
// byte range [Offset, Offset+Size).
type Symbol struct {
	Name   string
	Offset uint64
	Size   uint64
}

// Assembly is the result of assembling a source listing.
type Assembly struct {
	Code    []Inst
	Symbols []Symbol // sorted by Offset; procedures (non-local labels)
	// Lines[i] is the 1-based source line instruction i came from — the
	// line-number information dcpicalc displays when an image has it.
	Lines []int
}

// AsmError reports an assembly failure with its source line.
type AsmError struct {
	Line int
	Msg  string
}

func (e *AsmError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

type fixup struct {
	index int    // instruction to patch
	label string // target label
	line  int
}

// Assemble translates an assembly listing into code and symbols.
//
// Syntax, one instruction or label per line ("//", "#", and ";" start
// comments):
//
//	copyloop:              ; labels ending in ':'; leading '.' or '$' = local
//	    ldq   t4, 0(t1)
//	    addq  t0, 0x4, t0  ; literal second operand
//	    mulq  a0, a1, v0
//	    stq   t4, 0(t2)
//	    cmpult t0, v0, t4
//	    bne   t4, copyloop
//	    ret   (ra)         ; or: ret zero, (ra)
//	    call_pal 0x83
//
// Non-local labels become procedure symbols; each procedure extends to the
// next non-local label or end of code.
func Assemble(src string) (*Assembly, error) {
	var (
		code     []Inst
		lineNums []int
		symbols  []Symbol
		labels   = make(map[string]int) // label -> instruction index
		fixups   []fixup
	)

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 || strings.ContainsAny(line[:colon], " \t,(") {
				break
			}
			name := line[:colon]
			if _, dup := labels[name]; dup {
				return nil, &AsmError{ln + 1, fmt.Sprintf("duplicate label %q", name)}
			}
			labels[name] = len(code)
			if !isLocalLabel(name) {
				symbols = append(symbols, Symbol{Name: name, Offset: uint64(len(code)) * InstBytes})
			}
			line = strings.TrimSpace(line[colon+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		inst, fx, err := parseInst(line, ln+1, len(code))
		if err != nil {
			return nil, err
		}
		if fx != nil {
			fixups = append(fixups, *fx)
		}
		code = append(code, inst)
		lineNums = append(lineNums, ln+1)
	}

	for _, fx := range fixups {
		target, ok := labels[fx.label]
		if !ok {
			return nil, &AsmError{fx.line, fmt.Sprintf("undefined label %q", fx.label)}
		}
		// Branch displacement counts instructions from PC+4.
		code[fx.index].Disp = int32(target - (fx.index + 1))
	}

	// Close out symbol sizes.
	for i := range symbols {
		end := uint64(len(code)) * InstBytes
		if i+1 < len(symbols) {
			end = symbols[i+1].Offset
		}
		symbols[i].Size = end - symbols[i].Offset
	}

	return &Assembly{Code: code, Symbols: symbols, Lines: lineNums}, nil
}

// MustAssemble is Assemble that panics on error; for tests and built-in
// workload images whose sources are compile-time constants.
func MustAssemble(src string) *Assembly {
	a, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return a
}

func isLocalLabel(name string) bool {
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "$")
}

func stripComment(line string) string {
	for _, sep := range []string{"//", "#", ";"} {
		if i := strings.Index(line, sep); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, int(opMax))
	for op := Op(1); op < opMax; op++ {
		m[opInfo[op].name] = op
	}
	return m
}()

// LookupOp resolves an assembler mnemonic.
func LookupOp(name string) (Op, bool) {
	op, ok := opByName[strings.ToLower(name)]
	return op, ok
}

func parseInst(line string, lineNo, index int) (Inst, *fixup, error) {
	fields := strings.Fields(line)
	mnemonic := strings.ToLower(fields[0])
	op, ok := opByName[mnemonic]
	if !ok {
		return Inst{}, nil, &AsmError{lineNo, fmt.Sprintf("unknown mnemonic %q", mnemonic)}
	}
	rest := strings.TrimSpace(line[len(fields[0]):])
	args := splitArgs(rest)

	in := Inst{Op: op}
	fi := opInfo[op]
	fail := func(format string, a ...any) (Inst, *fixup, error) {
		return Inst{}, nil, &AsmError{lineNo, fmt.Sprintf(format, a...)}
	}

	switch fi.format {
	case fmtMisc:
		if len(args) != 0 {
			return fail("%s takes no operands", mnemonic)
		}
		return in, nil, nil

	case fmtPal:
		if len(args) != 1 {
			return fail("call_pal takes one operand")
		}
		n, err := parseIntArg(args[0])
		if err != nil {
			return fail("bad PAL code %q", args[0])
		}
		in.Pal = uint16(n)
		return in, nil, nil

	case fmtRPCC:
		if len(args) != 1 {
			return fail("rpcc takes one register")
		}
		r, ok := LookupReg(args[0])
		if !ok {
			return fail("bad register %q", args[0])
		}
		in.Ra = r
		return in, nil, nil

	case fmtMemory:
		// fetch has no Ra: "fetch 0(t1)".
		if op == OpFETCH {
			if len(args) != 1 {
				return fail("fetch takes disp(base)")
			}
			disp, base, err := parseMemOperand(args[0])
			if err != nil {
				return fail("%v", err)
			}
			in.Ra, in.Disp, in.Rb = RegZero, disp, base
			return in, nil, nil
		}
		if len(args) != 2 {
			return fail("%s takes reg, disp(base)", mnemonic)
		}
		ra, ok := lookupRegFor(fi, args[0])
		if !ok {
			return fail("bad register %q", args[0])
		}
		disp, base, err := parseMemOperand(args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.Ra, in.Disp, in.Rb = ra, disp, base
		return in, nil, nil

	case fmtOperate:
		// sextb/sextw read only Rb; accept the conventional two-operand
		// spelling by filling Ra with zero.
		if (op == OpSEXTB || op == OpSEXTW) && len(args) == 2 {
			args = append([]string{"zero"}, args...)
		}
		if len(args) != 3 {
			return fail("%s takes ra, rb|#lit, rc", mnemonic)
		}
		ra, ok := LookupReg(args[0])
		if !ok {
			return fail("bad register %q", args[0])
		}
		in.Ra = ra
		if rb, ok := LookupReg(args[1]); ok {
			in.Rb = rb
		} else {
			lit, err := parseIntArg(strings.TrimPrefix(args[1], "#"))
			if err != nil || lit < 0 || lit > 255 {
				return fail("bad operand %q (want register or 0..255 literal)", args[1])
			}
			in.Lit, in.UseLit = uint8(lit), true
		}
		rc, ok := LookupReg(args[2])
		if !ok {
			return fail("bad register %q", args[2])
		}
		in.Rc = rc
		return in, nil, nil

	case fmtFPOp:
		// cvtqt/cvttq take two operands (Fb, Fc).
		want := 3
		if op == OpCVTQT || op == OpCVTTQ {
			want = 2
		}
		if len(args) != want {
			return fail("%s takes %d fp registers", mnemonic, want)
		}
		regs := make([]uint8, len(args))
		for i, a := range args {
			r, ok := LookupFPReg(a)
			if !ok {
				return fail("bad fp register %q", a)
			}
			regs[i] = r
		}
		if want == 2 {
			in.Ra, in.Rb, in.Rc = RegZero, regs[0], regs[1]
		} else {
			in.Ra, in.Rb, in.Rc = regs[0], regs[1], regs[2]
		}
		return in, nil, nil

	case fmtBranch:
		var regArg, labelArg string
		switch {
		case op.IsCondBranch():
			if len(args) != 2 {
				return fail("%s takes reg, label", mnemonic)
			}
			regArg, labelArg = args[0], args[1]
		case len(args) == 1: // "br label" links into zero
			regArg, labelArg = "zero", args[0]
		case len(args) == 2:
			regArg, labelArg = args[0], args[1]
		default:
			return fail("%s takes [reg,] label", mnemonic)
		}
		var (
			r  uint8
			ok bool
		)
		if fi.fp {
			r, ok = LookupFPReg(regArg)
		} else {
			r, ok = LookupReg(regArg)
		}
		if !ok {
			return fail("bad register %q", regArg)
		}
		in.Ra = r
		return in, &fixup{index: index, label: labelArg, line: lineNo}, nil

	case fmtJump:
		// Accept "ret (ra)", "ret zero, (ra)", "jsr ra, (pv)".
		var linkArg, targetArg string
		switch len(args) {
		case 1:
			linkArg, targetArg = "zero", args[0]
			if op == OpJSR {
				linkArg = "ra"
			}
		case 2:
			linkArg, targetArg = args[0], args[1]
		default:
			return fail("%s takes [link,] (target)", mnemonic)
		}
		link, ok := LookupReg(linkArg)
		if !ok {
			return fail("bad register %q", linkArg)
		}
		targetArg = strings.TrimSuffix(strings.TrimPrefix(targetArg, "("), ")")
		target, ok := LookupReg(targetArg)
		if !ok {
			return fail("bad register %q", targetArg)
		}
		in.Ra, in.Rb = link, target
		return in, nil, nil
	}
	return fail("unhandled format for %s", mnemonic)
}

func lookupRegFor(fi info, name string) (uint8, bool) {
	if fi.fp {
		return LookupFPReg(name)
	}
	return LookupReg(name)
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// parseMemOperand parses "disp(base)" or "(base)".
func parseMemOperand(s string) (int32, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q (want disp(base))", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	var disp int64
	if dispStr != "" {
		var err error
		disp, err = parseIntArg(dispStr)
		if err != nil {
			return 0, 0, fmt.Errorf("bad displacement %q", dispStr)
		}
	}
	base, ok := LookupReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if !ok {
		return 0, 0, fmt.Errorf("bad base register in %q", s)
	}
	if disp < -(1<<31) || disp >= 1<<31 {
		return 0, 0, fmt.Errorf("displacement %d out of range", disp)
	}
	return int32(disp), base, nil
}

func parseIntArg(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}
