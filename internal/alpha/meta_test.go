package alpha

import (
	"reflect"
	"testing"
)

// TestMetaKnownInstructions checks Meta against hand-derived operand facts
// for one representative of every format and special case, independent of
// the decoding switch itself.
func TestMetaKnownInstructions(t *testing.T) {
	cases := []struct {
		name             string
		in               Inst
		src              []Operand
		dst              Operand
		has              bool
		load, store, cbr bool
	}{
		{
			name: "LDQ t1, 0(t3) reads base, writes Ra",
			in:   Inst{Op: OpLDQ, Ra: 2, Rb: 4},
			src:  []Operand{{Reg: 4, Slot: 'b'}},
			dst:  Operand{Reg: 2}, has: true, load: true,
		},
		{
			name:  "STQ a0, 8(sp) reads base and stored value",
			in:    Inst{Op: OpSTQ, Ra: 16, Rb: 30, Disp: 8},
			src:   []Operand{{Reg: 30, Slot: 'b'}, {Reg: 16, Slot: 'a'}},
			store: true,
		},
		{
			name: "LDT f1, 0(t0) writes an FP destination",
			in:   Inst{Op: OpLDT, Ra: 1, Rb: 1},
			src:  []Operand{{Reg: 1, Slot: 'b'}},
			dst:  Operand{Reg: 1, FP: true}, has: true, load: true,
		},
		{
			name: "LDA t0, 0(zero) has no sources (zero base elided)",
			in:   Inst{Op: OpLDA, Ra: 1, Rb: RegZero},
			dst:  Operand{Reg: 1}, has: true,
		},
		{
			name: "ADDQ t0, t1, t2 reads a and b, writes c",
			in:   Inst{Op: OpADDQ, Ra: 1, Rb: 2, Rc: 3},
			src:  []Operand{{Reg: 1, Slot: 'a'}, {Reg: 2, Slot: 'b'}},
			dst:  Operand{Reg: 3}, has: true,
		},
		{
			name: "ADDQ t0, #1, t2 with literal reads only a",
			in:   Inst{Op: OpADDQ, Ra: 1, Rc: 3, Lit: 1, UseLit: true},
			src:  []Operand{{Reg: 1, Slot: 'a'}},
			dst:  Operand{Reg: 3}, has: true,
		},
		{
			name: "CMOVEQ also reads its destination",
			in:   Inst{Op: OpCMOVEQ, Ra: 1, Rb: 2, Rc: 3},
			src:  []Operand{{Reg: 1, Slot: 'a'}, {Reg: 2, Slot: 'b'}, {Reg: 3, Slot: 'c'}},
			dst:  Operand{Reg: 3}, has: true,
		},
		{
			name: "ADDT f1, f2, f3 is all-FP",
			in:   Inst{Op: OpADDT, Ra: 1, Rb: 2, Rc: 3},
			src:  []Operand{{Reg: 1, FP: true, Slot: 'a'}, {Reg: 2, FP: true, Slot: 'b'}},
			dst:  Operand{Reg: 3, FP: true}, has: true,
		},
		{
			name: "BNE t4 reads its test register, no destination",
			in:   Inst{Op: OpBNE, Ra: 5, Disp: -7},
			src:  []Operand{{Reg: 5, Slot: 'a'}},
			cbr:  true,
		},
		{
			name: "FBEQ reads an FP test register",
			in:   Inst{Op: OpFBEQ, Ra: 5},
			src:  []Operand{{Reg: 5, FP: true, Slot: 'a'}},
			cbr:  true,
		},
		{
			name: "BSR ra writes the return address",
			in:   Inst{Op: OpBSR, Ra: 26, Disp: 4},
			dst:  Operand{Reg: 26}, has: true,
		},
		{
			name: "BR zero discards the link (no destination)",
			in:   Inst{Op: OpBR, Ra: RegZero, Disp: 4},
		},
		{
			name: "JSR ra, (t12) reads the target, writes the link",
			in:   Inst{Op: OpJSR, Ra: 26, Rb: 27},
			src:  []Operand{{Reg: 27, Slot: 'b'}},
			dst:  Operand{Reg: 26}, has: true,
		},
		{
			name: "RPCC t0 writes the cycle counter",
			in:   Inst{Op: OpRPCC, Ra: 1},
			dst:  Operand{Reg: 1}, has: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.in.Meta()
			if got := append([]Operand(nil), m.Sources()...); !reflect.DeepEqual(got, tc.src) && !(len(got) == 0 && len(tc.src) == 0) {
				t.Errorf("sources = %v, want %v", got, tc.src)
			}
			if m.HasDst != tc.has || (tc.has && m.Dst != tc.dst) {
				t.Errorf("dest = %v,%v, want %v,%v", m.Dst, m.HasDst, tc.dst, tc.has)
			}
			if m.Load != tc.load || m.Store != tc.store || m.CondBranch != tc.cbr {
				t.Errorf("flags load=%v store=%v condbr=%v, want %v/%v/%v",
					m.Load, m.Store, m.CondBranch, tc.load, tc.store, tc.cbr)
			}
		})
	}
}

// TestMetaConsistencyAllOps sweeps every opcode with several register
// patterns and checks the three views of operand metadata never disagree:
// Inst.Sources/Inst.Dest (the allocating API), Meta (the packed API), and
// DecodeMeta (the batch table the images cache).
func TestMetaConsistencyAllOps(t *testing.T) {
	patterns := []Inst{
		{Ra: 1, Rb: 2, Rc: 3},
		{Ra: 31, Rb: 31, Rc: 31}, // all-zero registers: no deps
		{Ra: 7, Rb: 7, Rc: 7},    // aliased registers
		{Ra: 4, Rb: 9, Rc: 12, Lit: 63, UseLit: true},
	}
	for op := 0; op < NumOps; op++ {
		var code []Inst
		for _, p := range patterns {
			p.Op = Op(op)
			code = append(code, p)
		}
		table := DecodeMeta(code)
		for i, in := range code {
			m := in.Meta()
			if table[i] != m {
				t.Fatalf("%v: DecodeMeta[%d] = %+v, Meta = %+v", in.Op, i, table[i], m)
			}
			want := in.Sources()
			got := m.Sources()
			if len(got) != len(want) {
				t.Fatalf("%v: Meta sources %v, Inst.Sources %v", in.Op, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%v: Meta sources %v, Inst.Sources %v", in.Op, got, want)
				}
			}
			d, ok := in.Dest()
			if ok != m.HasDst || (ok && d != m.Dst) {
				t.Fatalf("%v: Meta dest %v,%v, Inst.Dest %v,%v", in.Op, m.Dst, m.HasDst, d, ok)
			}
			// Flags must agree with the opcode classification helpers.
			if m.Load != in.Op.IsLoad() || m.Store != in.Op.IsStore() || m.CondBranch != in.Op.IsCondBranch() {
				t.Fatalf("%v: flags load=%v store=%v condbr=%v disagree with Op helpers",
					in.Op, m.Load, m.Store, m.CondBranch)
			}
			// Zero registers never appear as a dependency endpoint.
			for _, s := range got {
				if s.Reg == RegZero {
					t.Fatalf("%v: zero register reported as source", in.Op)
				}
			}
			if m.HasDst && m.Dst.Reg == RegZero {
				t.Fatalf("%v: zero register reported as destination", in.Op)
			}
		}
	}
}
