package alpha

import (
	"fmt"
	"math"
	"math/bits"
)

// Memory is the data-memory interface the executor needs. Addresses are
// virtual; the implementation handles translation and paging.
type Memory interface {
	// Load reads size (4 or 8) bytes at addr, little-endian. 4-byte loads
	// return the raw 32 bits; the executor sign-extends for LDL.
	Load(addr uint64, size int) uint64
	// Store writes the low size (4 or 8) bytes of val at addr.
	Store(addr uint64, size int, val uint64)
}

// Regs is the architectural register state of one thread of execution.
type Regs struct {
	I [32]uint64 // integer registers; I[31] reads as zero
	F [32]uint64 // floating-point registers (IEEE bits); F[31] reads as zero
}

// ReadI returns integer register r, honoring the zero register.
func (r *Regs) ReadI(reg uint8) uint64 {
	if reg == RegZero {
		return 0
	}
	return r.I[reg]
}

// WriteI sets integer register r; writes to the zero register are discarded.
func (r *Regs) WriteI(reg uint8, v uint64) {
	if reg != RegZero {
		r.I[reg] = v
	}
}

// ReadF returns FP register r, honoring the zero register.
func (r *Regs) ReadF(reg uint8) uint64 {
	if reg == RegZero {
		return 0
	}
	return r.F[reg]
}

// WriteF sets FP register r; writes to f31 are discarded.
func (r *Regs) WriteF(reg uint8, v uint64) {
	if reg != RegZero {
		r.F[reg] = v
	}
}

// Outcome describes the architectural effect of executing one instruction.
type Outcome struct {
	NextPC      uint64 // address of the next instruction
	Taken       bool   // branch/jump transferred control
	MemAddr     uint64 // effective address, when MemSize != 0
	MemSize     int    // 0, 4, or 8
	MemIsStore  bool
	IsPal       bool // CALL_PAL: the simulator dispatches Pal
	Pal         uint16
	Halt        bool // process requested termination
	Barrier     bool // mb/wmb: drain the write buffer
	ReadCounter bool // rpcc
	Fault       error
}

// Execute runs one instruction architecturally: registers and memory are
// updated, and the outcome (control flow, memory traffic) is returned for the
// timing layer. pc is the byte address of the instruction.
func Execute(in Inst, pc uint64, r *Regs, mem Memory) Outcome {
	out := Outcome{NextPC: pc + InstBytes}

	opB := func() uint64 {
		if in.UseLit {
			return uint64(in.Lit)
		}
		return r.ReadI(in.Rb)
	}

	switch in.Op {
	case OpLDA:
		r.WriteI(in.Ra, r.ReadI(in.Rb)+uint64(int64(in.Disp)))
	case OpLDAH:
		r.WriteI(in.Ra, r.ReadI(in.Rb)+uint64(int64(in.Disp))*65536)

	case OpLDQ, OpLDT:
		addr := r.ReadI(in.Rb) + uint64(int64(in.Disp))
		v := mem.Load(addr, 8)
		if in.Op == OpLDT {
			r.WriteF(in.Ra, v)
		} else {
			r.WriteI(in.Ra, v)
		}
		out.MemAddr, out.MemSize = addr, 8
	case OpLDL:
		addr := r.ReadI(in.Rb) + uint64(int64(in.Disp))
		v := mem.Load(addr, 4)
		r.WriteI(in.Ra, uint64(int64(int32(uint32(v)))))
		out.MemAddr, out.MemSize = addr, 4
	case OpSTQ, OpSTT:
		addr := r.ReadI(in.Rb) + uint64(int64(in.Disp))
		v := r.ReadI(in.Ra)
		if in.Op == OpSTT {
			v = r.ReadF(in.Ra)
		}
		mem.Store(addr, 8, v)
		out.MemAddr, out.MemSize, out.MemIsStore = addr, 8, true
	case OpSTL:
		addr := r.ReadI(in.Rb) + uint64(int64(in.Disp))
		mem.Store(addr, 4, r.ReadI(in.Ra))
		out.MemAddr, out.MemSize, out.MemIsStore = addr, 4, true

	case OpADDQ:
		r.WriteI(in.Rc, r.ReadI(in.Ra)+opB())
	case OpSUBQ:
		r.WriteI(in.Rc, r.ReadI(in.Ra)-opB())
	case OpMULQ:
		r.WriteI(in.Rc, r.ReadI(in.Ra)*opB())
	case OpUMULH:
		hi, _ := mul128(r.ReadI(in.Ra), opB())
		r.WriteI(in.Rc, hi)
	case OpS4ADDQ:
		r.WriteI(in.Rc, r.ReadI(in.Ra)*4+opB())
	case OpS8ADDQ:
		r.WriteI(in.Rc, r.ReadI(in.Ra)*8+opB())
	case OpAND:
		r.WriteI(in.Rc, r.ReadI(in.Ra)&opB())
	case OpBIC:
		r.WriteI(in.Rc, r.ReadI(in.Ra)&^opB())
	case OpBIS:
		r.WriteI(in.Rc, r.ReadI(in.Ra)|opB())
	case OpORNOT:
		r.WriteI(in.Rc, r.ReadI(in.Ra)|^opB())
	case OpXOR:
		r.WriteI(in.Rc, r.ReadI(in.Ra)^opB())
	case OpEQV:
		r.WriteI(in.Rc, r.ReadI(in.Ra)^^opB())
	case OpSLL:
		r.WriteI(in.Rc, r.ReadI(in.Ra)<<(opB()&63))
	case OpSRL:
		r.WriteI(in.Rc, r.ReadI(in.Ra)>>(opB()&63))
	case OpSRA:
		r.WriteI(in.Rc, uint64(int64(r.ReadI(in.Ra))>>(opB()&63)))
	case OpCMPEQ:
		r.WriteI(in.Rc, boolTo(r.ReadI(in.Ra) == opB()))
	case OpCMPLT:
		r.WriteI(in.Rc, boolTo(int64(r.ReadI(in.Ra)) < int64(opB())))
	case OpCMPLE:
		r.WriteI(in.Rc, boolTo(int64(r.ReadI(in.Ra)) <= int64(opB())))
	case OpCMPULT:
		r.WriteI(in.Rc, boolTo(r.ReadI(in.Ra) < opB()))
	case OpCMPULE:
		r.WriteI(in.Rc, boolTo(r.ReadI(in.Ra) <= opB()))
	case OpCMOVEQ:
		if r.ReadI(in.Ra) == 0 {
			r.WriteI(in.Rc, opB())
		}
	case OpCMOVNE:
		if r.ReadI(in.Ra) != 0 {
			r.WriteI(in.Rc, opB())
		}
	case OpCMOVLT:
		if int64(r.ReadI(in.Ra)) < 0 {
			r.WriteI(in.Rc, opB())
		}
	case OpCMOVGE:
		if int64(r.ReadI(in.Ra)) >= 0 {
			r.WriteI(in.Rc, opB())
		}
	case OpZAP:
		r.WriteI(in.Rc, zap(r.ReadI(in.Ra), uint8(opB()), true))
	case OpZAPNOT:
		r.WriteI(in.Rc, zap(r.ReadI(in.Ra), uint8(opB()), false))
	case OpCMPBGE:
		r.WriteI(in.Rc, cmpbge(r.ReadI(in.Ra), opB()))
	case OpEXTBL:
		r.WriteI(in.Rc, extract(r.ReadI(in.Ra), opB(), 1))
	case OpEXTWL:
		r.WriteI(in.Rc, extract(r.ReadI(in.Ra), opB(), 2))
	case OpEXTLL:
		r.WriteI(in.Rc, extract(r.ReadI(in.Ra), opB(), 4))
	case OpEXTQL:
		r.WriteI(in.Rc, extract(r.ReadI(in.Ra), opB(), 8))
	case OpINSBL:
		r.WriteI(in.Rc, insert(r.ReadI(in.Ra), opB(), 1))
	case OpINSWL:
		r.WriteI(in.Rc, insert(r.ReadI(in.Ra), opB(), 2))
	case OpMSKBL:
		r.WriteI(in.Rc, mask(r.ReadI(in.Ra), opB(), 1))
	case OpMSKWL:
		r.WriteI(in.Rc, mask(r.ReadI(in.Ra), opB(), 2))
	case OpSEXTB:
		r.WriteI(in.Rc, uint64(int64(int8(uint8(opB())))))
	case OpSEXTW:
		r.WriteI(in.Rc, uint64(int64(int16(uint16(opB())))))

	case OpADDT:
		r.WriteF(in.Rc, f2b(b2f(r.ReadF(in.Ra))+b2f(r.ReadF(in.Rb))))
	case OpSUBT:
		r.WriteF(in.Rc, f2b(b2f(r.ReadF(in.Ra))-b2f(r.ReadF(in.Rb))))
	case OpMULT:
		r.WriteF(in.Rc, f2b(b2f(r.ReadF(in.Ra))*b2f(r.ReadF(in.Rb))))
	case OpDIVT:
		r.WriteF(in.Rc, f2b(b2f(r.ReadF(in.Ra))/b2f(r.ReadF(in.Rb))))
	case OpCPYS:
		sign := r.ReadF(in.Ra) & (1 << 63)
		r.WriteF(in.Rc, sign|(r.ReadF(in.Rb)&^(1<<63)))
	case OpCVTQT:
		r.WriteF(in.Rc, f2b(float64(int64(r.ReadF(in.Rb)))))
	case OpCVTTQ:
		r.WriteF(in.Rc, uint64(int64(b2f(r.ReadF(in.Rb)))))
	case OpCMPTEQ:
		r.WriteF(in.Rc, fpBool(b2f(r.ReadF(in.Ra)) == b2f(r.ReadF(in.Rb))))
	case OpCMPTLT:
		r.WriteF(in.Rc, fpBool(b2f(r.ReadF(in.Ra)) < b2f(r.ReadF(in.Rb))))
	case OpCMPTLE:
		r.WriteF(in.Rc, fpBool(b2f(r.ReadF(in.Ra)) <= b2f(r.ReadF(in.Rb))))

	case OpBR, OpBSR:
		r.WriteI(in.Ra, pc+InstBytes)
		out.NextPC = branchDest(pc, in.Disp)
		out.Taken = true
	case OpBEQ, OpBNE, OpBLT, OpBLE, OpBGT, OpBGE, OpBLBC, OpBLBS:
		if intBranchTaken(in.Op, r.ReadI(in.Ra)) {
			out.NextPC = branchDest(pc, in.Disp)
			out.Taken = true
		}
	case OpFBEQ:
		if b2f(r.ReadF(in.Ra)) == 0 {
			out.NextPC = branchDest(pc, in.Disp)
			out.Taken = true
		}
	case OpFBNE:
		if b2f(r.ReadF(in.Ra)) != 0 {
			out.NextPC = branchDest(pc, in.Disp)
			out.Taken = true
		}

	case OpJMP, OpJSR, OpRET:
		target := r.ReadI(in.Rb) &^ 3
		r.WriteI(in.Ra, pc+InstBytes)
		out.NextPC = target
		out.Taken = true

	case OpNOP, OpFETCH:
		// no architectural effect
	case OpMB, OpWMB:
		out.Barrier = true
	case OpCALLPAL:
		out.IsPal, out.Pal = true, in.Pal
	case OpRPCC:
		out.ReadCounter = true // the simulator fills in the value
	case OpHALT:
		out.Halt = true
	default:
		out.Fault = fmt.Errorf("alpha: illegal instruction %v at %#x", in.Op, pc)
	}
	return out
}

func branchDest(pc uint64, disp int32) uint64 {
	return pc + InstBytes + uint64(int64(disp))*InstBytes
}

func intBranchTaken(op Op, v uint64) bool {
	switch op {
	case OpBEQ:
		return v == 0
	case OpBNE:
		return v != 0
	case OpBLT:
		return int64(v) < 0
	case OpBLE:
		return int64(v) <= 0
	case OpBGT:
		return int64(v) > 0
	case OpBGE:
		return int64(v) >= 0
	case OpBLBC:
		return v&1 == 0
	case OpBLBS:
		return v&1 == 1
	}
	return false
}

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// fpBool is the Alpha convention: FP compares write 2.0 for true, 0 for false.
func fpBool(b bool) uint64 {
	if b {
		return f2b(2.0)
	}
	return 0
}

func b2f(bits uint64) float64 { return math.Float64frombits(bits) }
func f2b(v float64) uint64    { return math.Float64bits(v) }

// zap clears (inv=true) or keeps (inv=false) the bytes selected by mask.
func zap(v uint64, mask uint8, inv bool) uint64 {
	var keep uint64
	for i := 0; i < 8; i++ {
		if mask&(1<<i) != 0 != inv {
			keep |= 0xff << (8 * i)
		}
	}
	return v & keep
}

// cmpbge implements the Alpha byte-compare: result bit i is set when byte i
// of a is unsigned->= byte i of b.
func cmpbge(a, b uint64) uint64 {
	var out uint64
	for i := 0; i < 8; i++ {
		ab := uint8(a >> (8 * i))
		bb := uint8(b >> (8 * i))
		if ab >= bb {
			out |= 1 << i
		}
	}
	return out
}

// extract implements EXTxL: shift right by the byte offset in the low bits
// of b, then keep size bytes.
func extract(a, b uint64, size int) uint64 {
	shifted := a >> (8 * (b & 7))
	if size >= 8 {
		return shifted
	}
	return shifted & (1<<(8*size) - 1)
}

// insert implements INSxL: keep size low bytes of a, shifted left by the
// byte offset in b.
func insert(a, b uint64, size int) uint64 {
	v := a
	if size < 8 {
		v &= 1<<(8*size) - 1
	}
	sh := 8 * (b & 7)
	if sh >= 64 {
		return 0
	}
	return v << sh
}

// mask implements MSKxL: clear size bytes of a starting at the byte offset
// in b.
func mask(a, b uint64, size int) uint64 {
	var m uint64
	if size >= 8 {
		m = ^uint64(0)
	} else {
		m = 1<<(8*size) - 1
	}
	sh := 8 * (b & 7)
	if sh < 64 {
		a &^= m << sh
	}
	return a
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}
