package alpha

import "testing"

// FuzzInstDecode builds instructions from arbitrary field values (the
// opcode clamped into range — there is no binary word format; the
// assembler is the only instruction source) and checks the metadata
// contract: Meta never panics, its packed InstMeta agrees exactly with
// the Sources/Dest views and with the pre-decoded DecodeMeta table the
// simulator hot path uses, and the zero register never appears as an
// operand.
func FuzzInstDecode(f *testing.F) {
	f.Add(byte(0), byte(0), byte(0), byte(0), int32(0), byte(0), false, uint16(0))
	f.Add(byte(OpLDQ), byte(1), byte(2), byte(3), int32(16), byte(0), false, uint16(0))
	f.Add(byte(OpSTQ), byte(1), byte(31), byte(0), int32(-8), byte(0), false, uint16(0))
	f.Add(byte(OpADDQ), byte(4), byte(5), byte(6), int32(0), byte(7), true, uint16(0))
	f.Add(byte(OpBNE), byte(9), byte(0), byte(0), int32(-3), byte(0), false, uint16(0))
	f.Add(byte(OpJSR), byte(26), byte(27), byte(0), int32(0), byte(0), false, uint16(0))
	f.Add(byte(OpCMOVEQ), byte(1), byte(2), byte(3), int32(0), byte(0), false, uint16(0))
	f.Add(byte(OpADDT), byte(1), byte(2), byte(3), int32(0), byte(0), false, uint16(0))

	f.Fuzz(func(t *testing.T, op, ra, rb, rc byte, disp int32, lit byte, useLit bool, pal uint16) {
		in := Inst{
			Op:     Op(int(op) % NumOps),
			Ra:     ra % 32,
			Rb:     rb % 32,
			Rc:     rc % 32,
			Disp:   disp,
			Lit:    lit,
			UseLit: useLit,
			Pal:    pal,
		}
		m := in.Meta()
		if int(m.NSrc) > len(m.Src) {
			t.Fatalf("NSrc = %d overflows the packed array", m.NSrc)
		}
		srcs := in.Sources()
		if len(srcs) != int(m.NSrc) {
			t.Fatalf("Sources() returned %d operands, Meta says %d", len(srcs), m.NSrc)
		}
		for i, s := range srcs {
			if s != m.Src[i] {
				t.Errorf("source %d: Sources() %+v != Meta %+v", i, s, m.Src[i])
			}
			if s.Reg == RegZero {
				t.Errorf("zero register reported as a source of %v", in.Op)
			}
		}
		d, ok := in.Dest()
		if ok != m.HasDst || d != m.Dst {
			t.Errorf("Dest() (%+v, %t) != Meta (%+v, %t)", d, ok, m.Dst, m.HasDst)
		}
		if ok && d.Reg == RegZero {
			t.Errorf("zero register reported as destination of %v", in.Op)
		}
		if tbl := DecodeMeta([]Inst{in}); tbl[0] != m {
			t.Errorf("DecodeMeta disagrees with Meta for %+v", in)
		}
		if m.Load && m.Store {
			t.Errorf("%v classified as both load and store", in.Op)
		}
		if m.Load && !in.Op.IsLoad() {
			t.Errorf("%v marked Load but IsLoad is false", in.Op)
		}
		if m.Store && !in.Op.IsStore() {
			t.Errorf("%v marked Store but IsStore is false", in.Op)
		}
		if m.CondBranch != in.Op.IsCondBranch() {
			t.Errorf("%v CondBranch=%t, IsCondBranch=%t", in.Op, m.CondBranch, in.Op.IsCondBranch())
		}
	})
}
