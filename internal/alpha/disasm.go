package alpha

import (
	"fmt"
	"strings"
)

// String renders the instruction in assembler syntax. Branch targets are
// rendered as relative displacements ("bne t4, .-6"); use DisasmAt for
// absolute-address rendering.
func (in Inst) String() string {
	return in.render(func(disp int32) string {
		if disp >= 0 {
			return fmt.Sprintf(".+%d", disp+1)
		}
		return fmt.Sprintf(".%d", disp+1)
	})
}

// DisasmAt renders the instruction as placed at byte address addr, with
// branch targets shown as absolute hex addresses (matching the dcpicalc
// listings in the paper, e.g. "bne t4, 0x009810").
func (in Inst) DisasmAt(addr uint64) string {
	return in.render(func(disp int32) string {
		target := addr + InstBytes + uint64(int64(disp))*InstBytes
		return fmt.Sprintf("0x%06x", target)
	})
}

func (in Inst) render(branchTarget func(int32) string) string {
	fi := opInfo[in.Op]
	name := fi.name
	regName := RegName
	if fi.fp {
		regName = FPRegName
	}
	switch fi.format {
	case fmtMisc:
		return name
	case fmtPal:
		return fmt.Sprintf("%s 0x%x", name, in.Pal)
	case fmtRPCC:
		return fmt.Sprintf("%s %s", name, RegName(in.Ra))
	case fmtMemory:
		if in.Op == OpFETCH {
			return fmt.Sprintf("%s %d(%s)", name, in.Disp, RegName(in.Rb))
		}
		return fmt.Sprintf("%s %s, %d(%s)", name, regName(in.Ra), in.Disp, RegName(in.Rb))
	case fmtOperate:
		second := RegName(in.Rb)
		if in.UseLit {
			second = fmt.Sprintf("0x%x", in.Lit)
		}
		return fmt.Sprintf("%s %s, %s, %s", name, RegName(in.Ra), second, RegName(in.Rc))
	case fmtFPOp:
		if in.Op == OpCVTQT || in.Op == OpCVTTQ {
			return fmt.Sprintf("%s %s, %s", name, FPRegName(in.Rb), FPRegName(in.Rc))
		}
		return fmt.Sprintf("%s %s, %s, %s", name, FPRegName(in.Ra), FPRegName(in.Rb), FPRegName(in.Rc))
	case fmtBranch:
		t := branchTarget(in.Disp)
		if in.Op.IsCondBranch() {
			return fmt.Sprintf("%s %s, %s", name, regName(in.Ra), t)
		}
		if in.Ra == RegZero {
			return fmt.Sprintf("%s %s", name, t)
		}
		return fmt.Sprintf("%s %s, %s", name, RegName(in.Ra), t)
	case fmtJump:
		if in.Ra == RegZero {
			return fmt.Sprintf("%s (%s)", name, RegName(in.Rb))
		}
		return fmt.Sprintf("%s %s, (%s)", name, RegName(in.Ra), RegName(in.Rb))
	}
	return name
}

// Listing renders code as an assembly listing with one instruction per line,
// starting at base. Useful in tests and debug output.
func Listing(code []Inst, base uint64) string {
	var b strings.Builder
	for i, in := range code {
		addr := base + uint64(i)*InstBytes
		fmt.Fprintf(&b, "%06x  %s\n", addr, in.DisasmAt(addr))
	}
	return b.String()
}
