package alpha

import "fmt"

// Integer register numbers follow the standard Alpha calling convention.
const (
	RegV0   = 0 // function value
	RegT0   = 1 // temporaries t0..t7 = 1..8
	RegT1   = 2
	RegT2   = 3
	RegT3   = 4
	RegT4   = 5
	RegT5   = 6
	RegT6   = 7
	RegT7   = 8
	RegS0   = 9 // saved s0..s5 = 9..14
	RegS1   = 10
	RegS2   = 11
	RegS3   = 12
	RegS4   = 13
	RegS5   = 14
	RegFP   = 15 // frame pointer (s6)
	RegA0   = 16 // arguments a0..a5 = 16..21
	RegA1   = 17
	RegA2   = 18
	RegA3   = 19
	RegA4   = 20
	RegA5   = 21
	RegT8   = 22
	RegT9   = 23
	RegT10  = 24
	RegT11  = 25
	RegRA   = 26 // return address
	RegPV   = 27 // procedure value (t12)
	RegAT   = 28 // assembler temporary
	RegGP   = 29 // global pointer
	RegSP   = 30 // stack pointer
	RegZero = 31 // always zero
)

var intRegNames = [32]string{
	"v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "fp",
	"a0", "a1", "a2", "a3", "a4", "a5",
	"t8", "t9", "t10", "t11",
	"ra", "pv", "at", "gp", "sp", "zero",
}

// RegName returns the conventional name for integer register r.
func RegName(r uint8) string {
	if r < 32 {
		return intRegNames[r]
	}
	return fmt.Sprintf("r%d", r)
}

// FPRegName returns the name for floating-point register r ("f0".."f31").
func FPRegName(r uint8) string {
	return fmt.Sprintf("f%d", r)
}

// regByName maps every accepted spelling to a register number.
var regByName = func() map[string]uint8 {
	m := make(map[string]uint8, 80)
	for i, n := range intRegNames {
		m[n] = uint8(i)
	}
	for i := 0; i < 32; i++ {
		m[fmt.Sprintf("r%d", i)] = uint8(i)
		m[fmt.Sprintf("$%d", i)] = uint8(i)
	}
	m["t12"] = RegPV
	m["s6"] = RegFP
	return m
}()

// LookupReg resolves an integer register name. It accepts conventional names
// (t0, a1, sp, zero), "rN", and "$N".
func LookupReg(name string) (uint8, bool) {
	r, ok := regByName[name]
	return r, ok
}

// LookupFPReg resolves a floating-point register name of the form "fN".
func LookupFPReg(name string) (uint8, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "f%d", &n); err != nil || n < 0 || n > 31 {
		return 0, false
	}
	return uint8(n), true
}
