package runner

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcpi/internal/alpha"
	"dcpi/internal/daemon"
	"dcpi/internal/dcpi"
	"dcpi/internal/hw"
	"dcpi/internal/image"
	"dcpi/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenKeyConfigs spans every Config field Key folds in, so any change to
// the key format — or to what a field renders as — shows up as a diff.
func goldenKeyConfigs() []dcpi.Config {
	return []dcpi.Config{
		{},
		{Workload: "compress", Scale: 0.25, Mode: sim.ModeCycles, Seed: 1},
		{Workload: "gcc", Scale: 0.12, Mode: sim.ModeDefault, Seed: 42,
			CyclesPeriod: sim.PeriodSpec{Base: 60000, Spread: 4096},
			EventPeriod:  sim.PeriodSpec{Base: 65536, Spread: 0}},
		{Workload: "x11perf", Mode: sim.ModeMux, MuxInterval: 1 << 20, NumCPUs: 4},
		{Workload: "timeshare", DBDir: "/tmp/db", PerProcessPIDs: []uint32{100, 200}},
		{Workload: "timeshare", EphemeralDB: true, DrainInterval: 50000, MergeInterval: 900000},
		{Workload: "dss", CollectExact: true, MaxCycles: 1 << 24, TraceSamples: true},
		{Workload: "wave5", ZeroCostCollection: true, DoubleSample: true,
			InterpretBranches: true, MetaSamples: true},
		{Workload: "li", DriverBuckets: 1024, DriverOverflow: 8,
			Fault: daemon.FaultPlan{}},
		{Workload: "go", Mode: sim.ModeOff, Rewrites: []image.Layout{
			{Path: "/bin/go", Procs: []image.ProcLayout{
				{Name: "main"},
				{Name: "evalpos", Code: []alpha.Inst{{Op: alpha.OpRET, Rb: alpha.RegRA}}},
			}},
		}},
		{Workload: "compress", Scale: 0.25, Mode: sim.ModeCycles, Seed: 1,
			HW: mustParseHW("icache=16K/32/2,wb=6/0,issue=4,memlat=160")},
	}
}

func mustParseHW(spec string) hw.Config {
	c, err := hw.Parse(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// TestKeyGolden pins the exact content-key strings for a fixed set of
// configurations. The persistent run cache addresses entries by these keys
// across processes and machine lifetimes, so an accidental format change
// silently invalidates every existing cache and shard archive. Deliberate
// changes must regenerate the golden file (go test -run TestKeyGolden
// -update ./internal/runner) and bump dcpi.SimVersion if the change
// re-partitions shard assignments.
func TestKeyGolden(t *testing.T) {
	var b strings.Builder
	for _, cfg := range goldenKeyConfigs() {
		fmt.Fprintf(&b, "%s\n", Key(cfg))
	}
	got := b.String()

	path := filepath.Join("testdata", "key_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("Key format changed — existing caches and shard archives silently invalidate.\ngot:\n%swant:\n%s", got, want)
	}
}

// TestKeyDefaultHWIsByteStable proves the hw.Config refactor left every
// pre-existing cache key untouched: a config with the zero (default) HW —
// and one with the default machine spelled out explicitly — renders no
// "hw=" segment at all, so keys persisted before internal/hw existed still
// address the same entries.
func TestKeyDefaultHWIsByteStable(t *testing.T) {
	for _, cfg := range goldenKeyConfigs() {
		if !cfg.HW.IsDefault() {
			continue
		}
		base := Key(cfg)
		if strings.Contains(base, "hw=") {
			t.Errorf("default-HW key contains hw segment: %s", base)
		}
		// The default machine spelled out field-by-field must produce the
		// same key as the zero value.
		explicit := cfg
		explicit.HW = hw.Default()
		if k := Key(explicit); k != base {
			t.Errorf("explicit-default HW changed the key:\n %s\n %s", base, k)
		}
	}
	nd := dcpi.Config{Workload: "compress", HW: mustParseHW("itb=24")}
	if k := Key(nd); !strings.Contains(k, "|hw=itb=24") {
		t.Errorf("non-default HW missing from key: %s", k)
	}
}
