// Package runner schedules simulated DCPI runs across a bounded worker
// pool with a content-keyed result cache.
//
// The evaluation suite (internal/eval) repeats complete machine
// simulations: every table and figure loops over workloads × runs × modes,
// and experiments frequently request identical (workload, mode, scale,
// seed, period) configurations — Table 2's base runs are Table 3's paired
// baselines, Figure 6 re-measures Table 3's configurations for three
// workloads, and Figures 8 and 9 analyze the same dense-sampling runs.
// The runner exploits both structures:
//
//   - Distinct configurations fan out across a worker pool bounded at
//     GOMAXPROCS workers by default (override with New's workers argument
//     or dcpieval's -j flag).
//   - Identical configurations are deduplicated single-flight style: the
//     first request simulates, concurrent and later duplicates wait for /
//     reuse the same *dcpi.Result.
//
// Results are treated as immutable once Run returns: the simulation is
// finished, the daemon has flushed, and every accessor on *dcpi.Result
// (Profiles, AnalyzeProc, ProcRows, ...) only reads. That is what makes a
// cached result safe to hand to concurrent readers.
//
// Runs that write an on-disk profile database (Config.DBDir != "") are
// scheduled through the pool but never cached: the caller owns the
// directory's lifetime (the eval suite deletes it right after reading),
// so retaining the Result would dangle.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dcpi/internal/dcpi"
	"dcpi/internal/obs"
)

// Runner is a concurrent simulation scheduler. The zero value is not
// usable; call New.
type Runner struct {
	slots chan int                                // worker-slot pool; the slot id becomes the trace tid
	runFn func(dcpi.Config) (*dcpi.Result, error) // dcpi.Run, stubbed in tests

	mu    sync.Mutex
	cache map[string]*call

	statsMu   sync.Mutex
	simulated int           // runs actually executed
	deduped   int           // requests served by an identical prior/in-flight run
	runStart  map[int]int64 // per-slot start timestamp of the running simulation

	// Obs attaches the optional self-observability layer: per-run wall
	// time and queue wait (histograms), cache hit/miss counters, and a
	// worker-occupancy counter track in the trace. Set it right after New,
	// before the first Submit; timestamps come from Obs.Tracer.Now (real
	// time), unlike the collection stack's simulated-clock trace.
	Obs obs.Hooks

	// SimCPUs, when nonzero, overrides Config.SimCPUs on every submitted
	// run (dcpieval's -simcpus flag). It is applied here, at the execution
	// layer, because it changes only how a run executes, never its result —
	// Key excludes it, so the override cannot split the cache. Set it right
	// after New, before the first Submit.
	SimCPUs int

	active atomic.Int64 // workers currently simulating (occupancy track)
}

// call is one in-flight or completed simulation.
type call struct {
	done chan struct{}
	res  *dcpi.Result
	err  error
}

// New creates a runner whose pool admits the given number of concurrent
// simulations; workers <= 0 means runtime.GOMAXPROCS(0).
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		slots: make(chan int, workers),
		runFn: dcpi.Run,
		cache: make(map[string]*call),
	}
	for i := 0; i < workers; i++ {
		r.slots <- i
	}
	return r
}

// Workers returns the pool bound.
func (r *Runner) Workers() int { return cap(r.slots) }

// Key is the content key of a run: every Config field that influences the
// simulation. Two configs with equal keys produce identical Results
// (simulation is deterministic in its configuration), which is what makes
// deduplication safe. SimCPUs is deliberately excluded: it is an
// execution-strategy knob — sequential and parallel simulation produce
// byte-identical results (see DESIGN.md) — so runs differing only in it
// can share a cached Result.
func Key(cfg dcpi.Config) string {
	return fmt.Sprintf("w=%s|scale=%g|mode=%d|seed=%d|cyc=%d/%d|ev=%d/%d|mux=%d|db=%s|exact=%t|max=%d|ncpu=%d|pids=%v|trace=%t|zero=%t|double=%t|interp=%t|meta=%t|geo=%d/%d|drain=%d/%d|fault=%s",
		cfg.Workload, cfg.Scale, cfg.Mode, cfg.Seed,
		cfg.CyclesPeriod.Base, cfg.CyclesPeriod.Spread,
		cfg.EventPeriod.Base, cfg.EventPeriod.Spread,
		cfg.MuxInterval, cfg.DBDir, cfg.CollectExact, cfg.MaxCycles,
		cfg.NumCPUs, cfg.PerProcessPIDs, cfg.TraceSamples,
		cfg.ZeroCostCollection, cfg.DoubleSample, cfg.InterpretBranches,
		cfg.MetaSamples, cfg.DriverBuckets, cfg.DriverOverflow,
		cfg.DrainInterval, cfg.MergeInterval, cfg.Fault)
}

// Pending is a submitted run; Wait blocks until it completes.
type Pending struct {
	c *call
}

// Wait returns the run's result, blocking until the simulation finishes.
// It may be called from any number of goroutines.
func (p *Pending) Wait() (*dcpi.Result, error) {
	<-p.c.done
	return p.c.res, p.c.err
}

// Submit schedules a run and returns immediately. Experiments submit every
// configuration they need up front (in their natural deterministic order)
// and then Wait in that same order, so output is independent of worker
// count and completion order.
func (r *Runner) Submit(cfg dcpi.Config) *Pending {
	cacheable := cfg.DBDir == ""
	if !cacheable {
		c := &call{done: make(chan struct{})}
		r.noteSimulated()
		go r.execute(c, cfg)
		return &Pending{c: c}
	}

	key := Key(cfg)
	r.mu.Lock()
	if c, ok := r.cache[key]; ok {
		r.mu.Unlock()
		r.noteDeduped()
		if tr := r.Obs.Tracer; tr != nil {
			tr.Instant("runner", "cache_hit", obs.PIDRunner, 0, tr.Now(),
				map[string]any{"workload": cfg.Workload, "mode": cfg.Mode.String()})
		}
		return &Pending{c: c}
	}
	c := &call{done: make(chan struct{})}
	r.cache[key] = c
	r.mu.Unlock()
	r.noteSimulated()
	go r.execute(c, cfg)
	return &Pending{c: c}
}

// Run schedules a run and waits for it: the synchronous form of Submit.
func (r *Runner) Run(cfg dcpi.Config) (*dcpi.Result, error) {
	return r.Submit(cfg).Wait()
}

// execute performs one simulation under the worker-pool bound.
func (r *Runner) execute(c *call, cfg dcpi.Config) {
	if r.SimCPUs != 0 {
		cfg.SimCPUs = r.SimCPUs
	}
	submitted := r.Obs.Tracer.Now() // 0 when tracing is off
	slot := <-r.slots
	defer func() { r.slots <- slot }()

	if r.Obs.Enabled() {
		r.observeRun(cfg, slot, submitted)
		defer r.finishRun(cfg, slot)
	}
	c.res, c.err = r.runFn(cfg)
	close(c.done)
}

// observeRun records the start of a simulation: queue wait, occupancy, and
// the opening timestamp of the per-run slice (stored per slot since slots
// are exclusive while the run executes).
func (r *Runner) observeRun(cfg dcpi.Config, slot int, submitted int64) {
	now := r.Obs.Tracer.Now()
	r.Obs.Registry.Histogram("runner.queue_wait_us", queueWaitBuckets()).
		Observe(float64(now - submitted))
	occ := r.active.Add(1)
	if tr := r.Obs.Tracer; tr != nil {
		tr.Counter("runner", "active_workers", obs.PIDRunner, now,
			map[string]float64{"workers": float64(occ)})
	}
	r.statsMu.Lock()
	if r.runStart == nil {
		r.runStart = make(map[int]int64)
	}
	r.runStart[slot] = now
	r.statsMu.Unlock()
}

// finishRun closes the per-run slice and updates occupancy.
func (r *Runner) finishRun(cfg dcpi.Config, slot int) {
	now := r.Obs.Tracer.Now()
	r.statsMu.Lock()
	start := r.runStart[slot]
	r.statsMu.Unlock()
	r.Obs.Registry.Histogram("runner.run_wall_us", runWallBuckets()).
		Observe(float64(now - start))
	occ := r.active.Add(-1)
	if tr := r.Obs.Tracer; tr != nil {
		tr.Slice("runner", cfg.Workload+"/"+cfg.Mode.String(),
			obs.PIDRunner, slot, start, now-start,
			map[string]any{"seed": cfg.Seed, "scale": cfg.Scale})
		tr.Counter("runner", "active_workers", obs.PIDRunner, now,
			map[string]float64{"workers": float64(occ)})
	}
}

// queueWaitBuckets spans 100µs .. ~3s.
func queueWaitBuckets() []float64 { return obs.ExpBuckets(100, 2.2, 14) }

// runWallBuckets spans 1ms .. ~1000s.
func runWallBuckets() []float64 { return obs.ExpBuckets(1000, 2.7, 14) }

// Stats reports how many runs were simulated and how many requests were
// served by deduplication against an identical run.
func (r *Runner) Stats() (simulated, deduped int) {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.simulated, r.deduped
}

func (r *Runner) noteSimulated() {
	r.statsMu.Lock()
	r.simulated++
	r.statsMu.Unlock()
	r.Obs.Registry.Counter("runner.simulated").Inc() // nil-safe
}

func (r *Runner) noteDeduped() {
	r.statsMu.Lock()
	r.deduped++
	r.statsMu.Unlock()
	r.Obs.Registry.Counter("runner.deduped").Inc() // nil-safe
}

// PublishMetrics writes the runner's end-of-sweep summary gauges into
// Obs.Registry (dedup rate, worker bound); counters and histograms are
// maintained live.
func (r *Runner) PublishMetrics() {
	reg := r.Obs.Registry
	if reg == nil {
		return
	}
	sims, dups := r.Stats()
	reg.Gauge("runner.workers").Set(float64(r.Workers()))
	if total := sims + dups; total > 0 {
		reg.Gauge("runner.dedup_rate").Set(float64(dups) / float64(total))
	}
}
