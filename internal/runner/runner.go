// Package runner schedules simulated DCPI runs across a bounded worker
// pool with a two-tier content-keyed result cache and optional sharded
// execution.
//
// The evaluation suite (internal/eval) repeats complete machine
// simulations: every table and figure loops over workloads × runs × modes,
// and experiments frequently request identical (workload, mode, scale,
// seed, period) configurations — Table 2's base runs are Table 3's paired
// baselines, Figure 6 re-measures Table 3's configurations for three
// workloads, and Figures 8 and 9 analyze the same dense-sampling runs.
// The runner exploits both structures:
//
//   - Distinct configurations fan out across a worker pool bounded at
//     GOMAXPROCS workers by default (override with New's workers argument
//     or dcpieval's -j flag).
//   - Identical configurations are deduplicated single-flight style: the
//     first request simulates, concurrent and later duplicates wait for /
//     reuse the same *dcpi.Result.
//   - A persistent second tier (Disk, an *runcache.Cache) survives across
//     process invocations: before simulating, a run's serialized snapshot
//     is looked up on disk and rehydrated via dcpi.DecodeSnapshot; after
//     simulating, the snapshot is written back. A warm cache turns a full
//     evaluation sweep into pure decode work with byte-identical output.
//   - Sharded mode (Shard i of NumShards) deterministically partitions the
//     run set by hashing content keys: runs belonging to other shards are
//     answered with an inert placeholder result instead of simulating, so
//     N processes each simulate a disjoint 1/N of the sweep. Simulated
//     results are streamed to ShardSink for archiving; a merge pass
//     preloads the archives (Preload) and re-renders all output from them.
//
// Results are treated as immutable once Run returns: the simulation is
// finished, the daemon has flushed, and every accessor on *dcpi.Result
// (Profiles, AnalyzeProc, ProcRows, ...) only reads. That is what makes a
// cached result safe to hand to concurrent readers.
//
// Runs that write an on-disk profile database (Config.DBDir != "") are
// scheduled through the pool but never cached: the caller owns the
// directory's lifetime (the eval suite deletes it right after reading),
// so retaining the Result would dangle.
package runner

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"dcpi/internal/dcpi"
	"dcpi/internal/image"
	"dcpi/internal/obs"
	"dcpi/internal/runcache"
)

// Runner is a concurrent simulation scheduler. The zero value is not
// usable; call New.
type Runner struct {
	slots chan int                                // worker-slot pool; the slot id becomes the trace tid
	runFn func(dcpi.Config) (*dcpi.Result, error) // dcpi.Run, stubbed in tests

	mu    sync.Mutex
	cache map[string]*call

	statsMu  sync.Mutex
	stats    CacheStats
	runStart map[int]int64 // per-slot start timestamp of the running simulation

	shardMu      sync.Mutex              // serializes ShardSink calls
	placeholders map[string]*dcpi.Result // memoized inert results for out-of-shard runs

	// Obs attaches the optional self-observability layer: per-run wall
	// time and queue wait (histograms), cache hit/miss counters, and a
	// worker-occupancy counter track in the trace. Set it right after New,
	// before the first Submit; timestamps come from Obs.Tracer.Now (real
	// time), unlike the collection stack's simulated-clock trace.
	Obs obs.Hooks

	// SimCPUs, when nonzero, overrides Config.SimCPUs on every submitted
	// run (dcpieval's -simcpus flag). It is applied here, at the execution
	// layer, because it changes only how a run executes, never its result —
	// Key excludes it, so the override cannot split the cache. Set it right
	// after New, before the first Submit.
	SimCPUs int

	// Disk, when set, is the persistent second cache tier: memory first,
	// then disk (decoded with dcpi.DecodeSnapshot), then simulate. Entries
	// that fail to decode are quarantined and re-simulated. Set it right
	// after New, before the first Submit.
	Disk *runcache.Cache

	// Preload maps content keys to serialized snapshots consulted before
	// the disk tier — the merge pass (`dcpieval -merge-shards`) loads shard
	// archives here. Read-only after the first Submit.
	Preload map[string][]byte

	// Shard/NumShards enable sharded execution when NumShards > 1: only
	// runs whose key hashes to shard Shard (1-based, 1 <= Shard <=
	// NumShards) simulate; the rest complete instantly with an inert
	// placeholder result so experiment code keeps iterating. Output
	// rendered from placeholders is meaningless and must be discarded —
	// dcpieval's shard mode does. Set before the first Submit.
	Shard, NumShards int

	// ShardSink, when set, receives (key, snapshot) for every cacheable
	// run this process simulated. Calls are serialized by the runner.
	ShardSink func(key string, blob []byte)

	active atomic.Int64 // workers currently simulating (occupancy track)
}

// call is one in-flight or completed simulation.
type call struct {
	done chan struct{}
	res  *dcpi.Result
	err  error
}

// New creates a runner whose pool admits the given number of concurrent
// simulations; workers <= 0 means runtime.GOMAXPROCS(0).
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		slots: make(chan int, workers),
		runFn: dcpi.Run,
		cache: make(map[string]*call),
	}
	for i := 0; i < workers; i++ {
		r.slots <- i
	}
	return r
}

// Workers returns the pool bound.
func (r *Runner) Workers() int { return cap(r.slots) }

// Key is the content key of a run: every Config field that influences the
// simulation. Two configs with equal keys produce identical Results
// (simulation is deterministic in its configuration), which is what makes
// deduplication safe. SimCPUs is deliberately excluded: it is an
// execution-strategy knob — sequential and parallel simulation produce
// byte-identical results (see DESIGN.md) — so runs differing only in it
// can share a cached Result.
func Key(cfg dcpi.Config) string {
	k := fmt.Sprintf("w=%s|scale=%g|mode=%d|seed=%d|cyc=%d/%d|ev=%d/%d|mux=%d|db=%s|ephdb=%t|exact=%t|max=%d|ncpu=%d|pids=%v|trace=%t|zero=%t|double=%t|interp=%t|meta=%t|geo=%d/%d|drain=%d/%d|fault=%s",
		cfg.Workload, cfg.Scale, cfg.Mode, cfg.Seed,
		cfg.CyclesPeriod.Base, cfg.CyclesPeriod.Spread,
		cfg.EventPeriod.Base, cfg.EventPeriod.Spread,
		cfg.MuxInterval, cfg.DBDir, cfg.EphemeralDB, cfg.CollectExact, cfg.MaxCycles,
		cfg.NumCPUs, cfg.PerProcessPIDs, cfg.TraceSamples,
		cfg.ZeroCostCollection, cfg.DoubleSample, cfg.InterpretBranches,
		cfg.MetaSamples, cfg.DriverBuckets, cfg.DriverOverflow,
		cfg.DrainInterval, cfg.MergeInterval, cfg.Fault)
	// The rewrite suffix appears only for rewritten runs, so keys of
	// ordinary configurations — including every key persisted before
	// rewrites existed — are unchanged.
	if len(cfg.Rewrites) > 0 {
		k += "|rw=" + image.LayoutsDigest(cfg.Rewrites)
	}
	// Likewise the hardware suffix: the default machine renders as "" and
	// contributes nothing, so default-config keys are byte-identical to
	// pre-hw.Config keys and existing cache entries still hit.
	if s := cfg.HW.String(); s != "" {
		k += "|hw=" + s
	}
	return k
}

// ShardOf deterministically maps a content key to a shard in [1, n]. Every
// process of an N-way sharded sweep computes the same partition, with no
// coordination, because the hash input is the run's semantic identity —
// not submission order, worker count, or timing.
func ShardOf(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()%uint32(n)) + 1
}

// Pending is a submitted run; Wait blocks until it completes.
type Pending struct {
	c *call
}

// Wait returns the run's result, blocking until the simulation finishes.
// It may be called from any number of goroutines.
func (p *Pending) Wait() (*dcpi.Result, error) {
	<-p.c.done
	return p.c.res, p.c.err
}

// Submit schedules a run and returns immediately. Experiments submit every
// configuration they need up front (in their natural deterministic order)
// and then Wait in that same order, so output is independent of worker
// count and completion order.
func (r *Runner) Submit(cfg dcpi.Config) *Pending {
	cacheable := cfg.DBDir == ""
	if !cacheable {
		c := &call{done: make(chan struct{})}
		r.noteSimulated()
		go func() {
			defer close(c.done)
			r.execute(c, cfg)
		}()
		return &Pending{c: c}
	}

	key := Key(cfg)
	r.mu.Lock()
	if c, ok := r.cache[key]; ok {
		r.mu.Unlock()
		r.noteMemHit()
		if tr := r.Obs.Tracer; tr != nil {
			tr.Instant("runner", "cache_hit", obs.PIDRunner, 0, tr.Now(),
				map[string]any{"workload": cfg.Workload, "mode": cfg.Mode.String()})
		}
		return &Pending{c: c}
	}
	c := &call{done: make(chan struct{})}
	r.cache[key] = c
	r.mu.Unlock()
	go r.executeCached(c, cfg, key)
	return &Pending{c: c}
}

// Run schedules a run and waits for it: the synchronous form of Submit.
func (r *Runner) Run(cfg dcpi.Config) (*dcpi.Result, error) {
	return r.Submit(cfg).Wait()
}

// executeCached resolves a cacheable run through the remaining tiers (the
// memory tier already missed): shard filter, preloaded shard archives,
// persistent disk cache, and finally simulation.
func (r *Runner) executeCached(c *call, cfg dcpi.Config, key string) {
	defer close(c.done)

	// Out-of-shard runs complete instantly with an inert placeholder.
	if r.NumShards > 1 && ShardOf(key, r.NumShards) != r.Shard {
		c.res, c.err = r.placeholder(cfg)
		r.noteShardSkipped(cfg)
		return
	}

	if blob, ok := r.Preload[key]; ok {
		if res, err := dcpi.DecodeSnapshot(blob, cfg); err == nil {
			c.res = res
			r.noteDiskHit(cfg)
			return
		}
		// Archives are CRC-verified at read time, so a decode failure
		// means version skew or a bug; re-simulate rather than fail.
	}

	if r.Disk != nil {
		if blob, ok := r.Disk.Get(key); ok {
			if res, err := dcpi.DecodeSnapshot(blob, cfg); err == nil {
				c.res = res
				r.noteDiskHit(cfg)
				return
			}
			// Framing was intact but the payload wasn't decodable:
			// quarantine the entry and fall through to simulation.
			r.Disk.Quarantine(key)
		}
	}

	r.noteSimulated()
	r.execute(c, cfg)
	if c.err != nil || (r.Disk == nil && r.ShardSink == nil) {
		return
	}
	blob, err := dcpi.EncodeSnapshot(c.res)
	if err != nil {
		return // persisting is best-effort; the in-memory result stands
	}
	if r.Disk != nil {
		r.Disk.Put(key, blob)
	}
	if r.ShardSink != nil {
		r.shardMu.Lock()
		r.ShardSink(key, blob)
		r.shardMu.Unlock()
	}
}

// placeholder returns the memoized inert result for a configuration's
// workload shape (placeholders carry no measurements, so any two configs
// with the same workload, scale, and CPU count can share one).
func (r *Runner) placeholder(cfg dcpi.Config) (*dcpi.Result, error) {
	pkey := fmt.Sprintf("%s|%g|%d", cfg.Workload, cfg.Scale, cfg.NumCPUs)
	r.shardMu.Lock()
	defer r.shardMu.Unlock()
	if res, ok := r.placeholders[pkey]; ok {
		return res, nil
	}
	res, err := dcpi.PlaceholderResult(cfg)
	if err != nil {
		return nil, err
	}
	if r.placeholders == nil {
		r.placeholders = make(map[string]*dcpi.Result)
	}
	r.placeholders[pkey] = res
	return res, nil
}

// execute performs one simulation under the worker-pool bound. The caller
// owns c.done.
func (r *Runner) execute(c *call, cfg dcpi.Config) {
	if r.SimCPUs != 0 {
		cfg.SimCPUs = r.SimCPUs
	}
	submitted := r.Obs.Tracer.Now() // 0 when tracing is off
	slot := <-r.slots
	defer func() { r.slots <- slot }()

	if r.Obs.Enabled() {
		r.observeRun(cfg, slot, submitted)
		defer r.finishRun(cfg, slot)
	}
	c.res, c.err = r.runFn(cfg)
}

// observeRun records the start of a simulation: queue wait, occupancy, and
// the opening timestamp of the per-run slice (stored per slot since slots
// are exclusive while the run executes).
func (r *Runner) observeRun(cfg dcpi.Config, slot int, submitted int64) {
	now := r.Obs.Tracer.Now()
	r.Obs.Registry.Histogram("runner.queue_wait_us", queueWaitBuckets()).
		Observe(float64(now - submitted))
	occ := r.active.Add(1)
	if tr := r.Obs.Tracer; tr != nil {
		tr.Counter("runner", "active_workers", obs.PIDRunner, now,
			map[string]float64{"workers": float64(occ)})
	}
	r.statsMu.Lock()
	if r.runStart == nil {
		r.runStart = make(map[int]int64)
	}
	r.runStart[slot] = now
	r.statsMu.Unlock()
}

// finishRun closes the per-run slice and updates occupancy.
func (r *Runner) finishRun(cfg dcpi.Config, slot int) {
	now := r.Obs.Tracer.Now()
	r.statsMu.Lock()
	start := r.runStart[slot]
	r.statsMu.Unlock()
	r.Obs.Registry.Histogram("runner.run_wall_us", runWallBuckets()).
		Observe(float64(now - start))
	occ := r.active.Add(-1)
	if tr := r.Obs.Tracer; tr != nil {
		tr.Slice("runner", cfg.Workload+"/"+cfg.Mode.String(),
			obs.PIDRunner, slot, start, now-start,
			map[string]any{"seed": cfg.Seed, "scale": cfg.Scale})
		tr.Counter("runner", "active_workers", obs.PIDRunner, now,
			map[string]float64{"workers": float64(occ)})
	}
}

// queueWaitBuckets spans 100µs .. ~3s.
func queueWaitBuckets() []float64 { return obs.ExpBuckets(100, 2.2, 14) }

// runWallBuckets spans 1ms .. ~1000s.
func runWallBuckets() []float64 { return obs.ExpBuckets(1000, 2.7, 14) }

// CacheStats breaks down how submitted runs were resolved: actually
// simulated, served from the in-memory single-flight cache, rehydrated
// from the persistent disk tier (or a preloaded shard archive), or skipped
// because they belong to another shard.
type CacheStats struct {
	Simulated    int
	MemHits      int
	DiskHits     int
	ShardSkipped int
}

// Requests is the total number of submissions the stats cover.
func (s CacheStats) Requests() int {
	return s.Simulated + s.MemHits + s.DiskHits + s.ShardSkipped
}

// Stats reports how submitted runs were resolved across the cache tiers.
func (r *Runner) Stats() CacheStats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

func (r *Runner) noteSimulated() {
	r.statsMu.Lock()
	r.stats.Simulated++
	r.statsMu.Unlock()
	r.Obs.Registry.Counter("runner.simulated").Inc() // nil-safe
}

func (r *Runner) noteMemHit() {
	r.statsMu.Lock()
	r.stats.MemHits++
	r.statsMu.Unlock()
	r.Obs.Registry.Counter("runner.deduped").Inc() // nil-safe
}

func (r *Runner) noteDiskHit(cfg dcpi.Config) {
	r.statsMu.Lock()
	r.stats.DiskHits++
	r.statsMu.Unlock()
	r.Obs.Registry.Counter("runner.disk_hits").Inc() // nil-safe
	if tr := r.Obs.Tracer; tr != nil {
		tr.Instant("runner", "disk_hit", obs.PIDRunner, 0, tr.Now(),
			map[string]any{"workload": cfg.Workload, "mode": cfg.Mode.String()})
	}
}

func (r *Runner) noteShardSkipped(cfg dcpi.Config) {
	r.statsMu.Lock()
	r.stats.ShardSkipped++
	r.statsMu.Unlock()
	r.Obs.Registry.Counter("runner.shard_skipped").Inc() // nil-safe
	if tr := r.Obs.Tracer; tr != nil {
		tr.Instant("runner", "shard_skip", obs.PIDRunner, 0, tr.Now(),
			map[string]any{"workload": cfg.Workload, "mode": cfg.Mode.String()})
	}
}

// PublishMetrics writes the runner's end-of-sweep summary gauges into
// Obs.Registry (dedup rate, worker bound); counters and histograms are
// maintained live. The disk tier's own gauges publish via Disk.
func (r *Runner) PublishMetrics() {
	reg := r.Obs.Registry
	if reg == nil {
		return
	}
	s := r.Stats()
	reg.Gauge("runner.workers").Set(float64(r.Workers()))
	if total := s.Simulated + s.MemHits; total > 0 {
		reg.Gauge("runner.dedup_rate").Set(float64(s.MemHits) / float64(total))
	}
	if total := s.Requests(); total > 0 {
		reg.Gauge("runner.cache_hit_rate").Set(float64(s.MemHits+s.DiskHits) / float64(total))
	}
	if r.Disk != nil {
		r.Disk.PublishMetrics()
	}
}
