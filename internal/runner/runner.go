// Package runner schedules simulated DCPI runs across a bounded worker
// pool with a content-keyed result cache.
//
// The evaluation suite (internal/eval) repeats complete machine
// simulations: every table and figure loops over workloads × runs × modes,
// and experiments frequently request identical (workload, mode, scale,
// seed, period) configurations — Table 2's base runs are Table 3's paired
// baselines, Figure 6 re-measures Table 3's configurations for three
// workloads, and Figures 8 and 9 analyze the same dense-sampling runs.
// The runner exploits both structures:
//
//   - Distinct configurations fan out across a worker pool bounded at
//     GOMAXPROCS workers by default (override with New's workers argument
//     or dcpieval's -j flag).
//   - Identical configurations are deduplicated single-flight style: the
//     first request simulates, concurrent and later duplicates wait for /
//     reuse the same *dcpi.Result.
//
// Results are treated as immutable once Run returns: the simulation is
// finished, the daemon has flushed, and every accessor on *dcpi.Result
// (Profiles, AnalyzeProc, ProcRows, ...) only reads. That is what makes a
// cached result safe to hand to concurrent readers.
//
// Runs that write an on-disk profile database (Config.DBDir != "") are
// scheduled through the pool but never cached: the caller owns the
// directory's lifetime (the eval suite deletes it right after reading),
// so retaining the Result would dangle.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"dcpi/internal/dcpi"
)

// Runner is a concurrent simulation scheduler. The zero value is not
// usable; call New.
type Runner struct {
	sem   chan struct{}
	runFn func(dcpi.Config) (*dcpi.Result, error) // dcpi.Run, stubbed in tests

	mu    sync.Mutex
	cache map[string]*call

	statsMu   sync.Mutex
	simulated int // runs actually executed
	deduped   int // requests served by an identical prior/in-flight run
}

// call is one in-flight or completed simulation.
type call struct {
	done chan struct{}
	res  *dcpi.Result
	err  error
}

// New creates a runner whose pool admits the given number of concurrent
// simulations; workers <= 0 means runtime.GOMAXPROCS(0).
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		sem:   make(chan struct{}, workers),
		runFn: dcpi.Run,
		cache: make(map[string]*call),
	}
}

// Workers returns the pool bound.
func (r *Runner) Workers() int { return cap(r.sem) }

// Key is the content key of a run: every Config field that influences the
// simulation. Two configs with equal keys produce identical Results
// (simulation is deterministic in its configuration), which is what makes
// deduplication safe.
func Key(cfg dcpi.Config) string {
	return fmt.Sprintf("w=%s|scale=%g|mode=%d|seed=%d|cyc=%d/%d|ev=%d/%d|mux=%d|db=%s|exact=%t|max=%d|ncpu=%d|pids=%v|trace=%t|zero=%t|double=%t|interp=%t|meta=%t",
		cfg.Workload, cfg.Scale, cfg.Mode, cfg.Seed,
		cfg.CyclesPeriod.Base, cfg.CyclesPeriod.Spread,
		cfg.EventPeriod.Base, cfg.EventPeriod.Spread,
		cfg.MuxInterval, cfg.DBDir, cfg.CollectExact, cfg.MaxCycles,
		cfg.NumCPUs, cfg.PerProcessPIDs, cfg.TraceSamples,
		cfg.ZeroCostCollection, cfg.DoubleSample, cfg.InterpretBranches,
		cfg.MetaSamples)
}

// Pending is a submitted run; Wait blocks until it completes.
type Pending struct {
	c *call
}

// Wait returns the run's result, blocking until the simulation finishes.
// It may be called from any number of goroutines.
func (p *Pending) Wait() (*dcpi.Result, error) {
	<-p.c.done
	return p.c.res, p.c.err
}

// Submit schedules a run and returns immediately. Experiments submit every
// configuration they need up front (in their natural deterministic order)
// and then Wait in that same order, so output is independent of worker
// count and completion order.
func (r *Runner) Submit(cfg dcpi.Config) *Pending {
	cacheable := cfg.DBDir == ""
	if !cacheable {
		c := &call{done: make(chan struct{})}
		r.noteSimulated()
		go r.execute(c, cfg)
		return &Pending{c: c}
	}

	key := Key(cfg)
	r.mu.Lock()
	if c, ok := r.cache[key]; ok {
		r.mu.Unlock()
		r.noteDeduped()
		return &Pending{c: c}
	}
	c := &call{done: make(chan struct{})}
	r.cache[key] = c
	r.mu.Unlock()
	r.noteSimulated()
	go r.execute(c, cfg)
	return &Pending{c: c}
}

// Run schedules a run and waits for it: the synchronous form of Submit.
func (r *Runner) Run(cfg dcpi.Config) (*dcpi.Result, error) {
	return r.Submit(cfg).Wait()
}

// execute performs one simulation under the worker-pool bound.
func (r *Runner) execute(c *call, cfg dcpi.Config) {
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	c.res, c.err = r.runFn(cfg)
	close(c.done)
}

// Stats reports how many runs were simulated and how many requests were
// served by deduplication against an identical run.
func (r *Runner) Stats() (simulated, deduped int) {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.simulated, r.deduped
}

func (r *Runner) noteSimulated() {
	r.statsMu.Lock()
	r.simulated++
	r.statsMu.Unlock()
}

func (r *Runner) noteDeduped() {
	r.statsMu.Lock()
	r.deduped++
	r.statsMu.Unlock()
}
