package runner

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

// stub replaces the simulation with a counting fake.
func stub(r *Runner, calls *atomic.Int64, delay time.Duration) {
	r.runFn = func(cfg dcpi.Config) (*dcpi.Result, error) {
		calls.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		return &dcpi.Result{Config: cfg, Wall: int64(cfg.Seed)}, nil
	}
}

func TestDuplicateConfigsSimulateOnce(t *testing.T) {
	r := New(4)
	var calls atomic.Int64
	stub(r, &calls, 10*time.Millisecond)

	cfg := dcpi.Config{Workload: "compress", Scale: 0.1, Mode: sim.ModeCycles, Seed: 7}
	const requests = 16
	results := make([]*dcpi.Result, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(cfg)
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("duplicate config simulated %d times, want exactly 1", got)
	}
	for i, res := range results {
		if res != results[0] {
			t.Errorf("request %d got a different *Result than request 0", i)
		}
	}
	st := r.Stats()
	sims, deduped := st.Simulated, st.MemHits
	if sims != 1 || deduped != requests-1 {
		t.Errorf("Stats() = %d simulated, %d deduped; want 1, %d", sims, deduped, requests-1)
	}

	// A later duplicate is served from the completed cache entry.
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res != results[0] || calls.Load() != 1 {
		t.Error("completed run not served from cache")
	}
}

func TestDistinctConfigsAllSimulate(t *testing.T) {
	r := New(4)
	var calls atomic.Int64
	stub(r, &calls, 0)

	base := dcpi.Config{Workload: "compress", Scale: 0.1, Mode: sim.ModeCycles}
	variants := []dcpi.Config{base}
	v := base
	v.Seed = 1
	variants = append(variants, v)
	v = base
	v.Mode = sim.ModeDefault
	variants = append(variants, v)
	v = base
	v.CyclesPeriod = sim.PeriodSpec{Base: 512, Spread: 64}
	variants = append(variants, v)
	v = base
	v.ZeroCostCollection = true
	variants = append(variants, v)
	v = base
	v.CollectExact = true
	variants = append(variants, v)

	seen := map[string]bool{}
	for _, cfg := range variants {
		if seen[Key(cfg)] {
			t.Fatalf("config variants collide on key %q", Key(cfg))
		}
		seen[Key(cfg)] = true
		if _, err := r.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got != int64(len(variants)) {
		t.Errorf("%d distinct configs simulated %d times", len(variants), got)
	}
}

func TestDiskBackedRunsAreNotCached(t *testing.T) {
	r := New(2)
	var calls atomic.Int64
	stub(r, &calls, 0)

	cfg := dcpi.Config{Workload: "compress", Scale: 0.1, Mode: sim.ModeCycles, DBDir: "/tmp/dcpi-db"}
	for i := 0; i < 3; i++ {
		if _, err := r.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("disk-backed run simulated %d times, want 3 (no caching)", got)
	}
}

func TestWorkerPoolBound(t *testing.T) {
	const workers = 2
	r := New(workers)
	var inFlight, peak atomic.Int64
	r.runFn = func(cfg dcpi.Config) (*dcpi.Result, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		return &dcpi.Result{Config: cfg}, nil
	}

	var pending []*Pending
	for i := 0; i < 10; i++ {
		pending = append(pending, r.Submit(dcpi.Config{Workload: "compress", Seed: uint64(i + 1)}))
	}
	for _, p := range pending {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds pool bound %d", got, workers)
	}
}

// TestRealSimulation exercises the runner against the actual simulator:
// the deduplicated result must be byte-for-byte the run a fresh simulation
// produces.
func TestRealSimulation(t *testing.T) {
	r := New(2)
	cfg := dcpi.Config{Workload: "compress", Scale: 0.05, Mode: sim.ModeCycles, Seed: 42}

	a := r.Submit(cfg)
	b := r.Submit(cfg)
	ra, err := a.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Error("duplicate submissions returned different results")
	}
	if ra.Wall <= 0 || ra.TotalSamples(sim.EvCycles) == 0 {
		t.Errorf("implausible run: wall=%d samples=%d", ra.Wall, ra.TotalSamples(sim.EvCycles))
	}

	fresh, err := dcpi.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Wall != ra.Wall {
		t.Errorf("cached wall %d != fresh wall %d (simulation not deterministic?)", ra.Wall, fresh.Wall)
	}
	st := r.Stats()
	sims, deduped := st.Simulated, st.MemHits
	if sims != 1 || deduped != 1 {
		t.Errorf("Stats() = %d, %d; want 1, 1", sims, deduped)
	}
}
