package runner

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"dcpi/internal/dcpi"
	"dcpi/internal/runcache"
	"dcpi/internal/sim"
)

func testDisk(t *testing.T, dir string) *runcache.Cache {
	t.Helper()
	disk, err := runcache.Open(dir, runcache.Options{Stamp: dcpi.CacheStamp()})
	if err != nil {
		t.Fatal(err)
	}
	return disk
}

// realRun stubs runFn with a tiny real simulation so the result survives
// the encode/decode round trip the disk tier performs.
func realRun(r *Runner, calls *atomic.Int64) {
	r.runFn = func(cfg dcpi.Config) (*dcpi.Result, error) {
		calls.Add(1)
		return dcpi.Run(cfg)
	}
}

func diskCfg() dcpi.Config {
	return dcpi.Config{Workload: "compress", Scale: 0.02, Mode: sim.ModeCycles, Seed: 3}
}

func TestDiskTierServesAcrossRunners(t *testing.T) {
	dir := t.TempDir()
	cfg := diskCfg()

	cold := New(2)
	cold.Disk = testDisk(t, dir)
	var coldCalls atomic.Int64
	realRun(cold, &coldCalls)
	res1, err := cold.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if coldCalls.Load() != 1 {
		t.Fatalf("cold run simulated %d times, want 1", coldCalls.Load())
	}

	// A fresh runner (fresh process, conceptually) over the same directory
	// must rehydrate instead of simulating.
	warm := New(2)
	warm.Disk = testDisk(t, dir)
	var warmCalls atomic.Int64
	realRun(warm, &warmCalls)
	res2, err := warm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warmCalls.Load() != 0 {
		t.Errorf("warm run simulated %d times, want 0", warmCalls.Load())
	}
	if st := warm.Stats(); st.DiskHits != 1 || st.Simulated != 0 {
		t.Errorf("warm stats = %+v, want 1 disk hit, 0 simulated", st)
	}
	if res2.Wall != res1.Wall {
		t.Errorf("rehydrated Wall = %d, want %d", res2.Wall, res1.Wall)
	}
	ls, err := res1.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := res2.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if ws.ActualCPI != ls.ActualCPI || ws.Procedures != ls.Procedures {
		t.Error("rehydrated summary differs from simulated one")
	}
}

func TestCorruptDiskEntryResimulates(t *testing.T) {
	dir := t.TempDir()
	cfg := diskCfg()

	cold := New(1)
	cold.Disk = testDisk(t, dir)
	var calls atomic.Int64
	realRun(cold, &calls)
	if _, err := cold.Run(cfg); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the single cache entry.
	matches, err := filepath.Glob(filepath.Join(dir, "*.run"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("cache entries = %v, %v; want exactly 1", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	warm := New(1)
	warm.Disk = testDisk(t, dir)
	var warmCalls atomic.Int64
	realRun(warm, &warmCalls)
	res, err := warm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warmCalls.Load() != 1 {
		t.Errorf("corrupt entry served without re-simulation (%d calls)", warmCalls.Load())
	}
	if res == nil || res.Wall == 0 {
		t.Error("re-simulated result is empty")
	}
	bad, _ := filepath.Glob(filepath.Join(dir, "*.bad"))
	if len(bad) != 1 {
		t.Errorf("corrupt entry not quarantined: %v", bad)
	}
}

func TestPreloadServesWithoutDisk(t *testing.T) {
	cfg := diskCfg()
	res, err := dcpi.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := dcpi.EncodeSnapshot(res)
	if err != nil {
		t.Fatal(err)
	}

	r := New(1)
	r.Preload = map[string][]byte{Key(cfg): blob}
	var calls atomic.Int64
	realRun(r, &calls)
	got, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Errorf("preloaded run simulated %d times, want 0", calls.Load())
	}
	if got.Wall != res.Wall {
		t.Errorf("preloaded Wall = %d, want %d", got.Wall, res.Wall)
	}
}

func TestShardsPartitionRunSet(t *testing.T) {
	const numShards = 3
	cfgs := make([]dcpi.Config, 7)
	for i := range cfgs {
		cfgs[i] = dcpi.Config{Workload: "compress", Scale: 0.02, Mode: sim.ModeCycles, Seed: uint64(i + 1)}
	}

	simulatedBy := make(map[string][]int) // key -> shards that simulated it
	for shard := 1; shard <= numShards; shard++ {
		r := New(2)
		r.Shard, r.NumShards = shard, numShards
		var sunk []string
		r.ShardSink = func(key string, blob []byte) { sunk = append(sunk, key) }
		var calls atomic.Int64
		realRun(r, &calls)
		for _, cfg := range cfgs {
			res, err := r.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res == nil {
				t.Fatal("nil result from sharded run")
			}
		}
		st := r.Stats()
		if st.Simulated != len(sunk) {
			t.Errorf("shard %d: simulated %d but sank %d", shard, st.Simulated, len(sunk))
		}
		if st.Simulated+st.ShardSkipped != len(cfgs) {
			t.Errorf("shard %d: simulated %d + skipped %d != %d runs", shard, st.Simulated, st.ShardSkipped, len(cfgs))
		}
		for _, key := range sunk {
			simulatedBy[key] = append(simulatedBy[key], shard)
		}
	}

	// Every run lands on exactly one shard.
	if len(simulatedBy) != len(cfgs) {
		t.Errorf("%d distinct keys simulated, want %d", len(simulatedBy), len(cfgs))
	}
	for key, shards := range simulatedBy {
		if len(shards) != 1 {
			t.Errorf("key %q simulated by shards %v, want exactly one", key, shards)
		}
		want := ShardOf(key, numShards)
		if len(shards) == 1 && shards[0] != want {
			t.Errorf("key %q simulated by shard %d, ShardOf says %d", key, shards[0], want)
		}
	}
}

func TestShardOfRangeAndDeterminism(t *testing.T) {
	for _, key := range []string{"", "a", "w=gcc|scale=0.25", "w=compress|seed=9"} {
		for _, n := range []int{1, 2, 4, 7} {
			s1, s2 := ShardOf(key, n), ShardOf(key, n)
			if s1 != s2 {
				t.Errorf("ShardOf(%q, %d) unstable: %d vs %d", key, n, s1, s2)
			}
			if s1 < 1 || s1 > n {
				t.Errorf("ShardOf(%q, %d) = %d out of range", key, n, s1)
			}
		}
	}
}
