package driver

import (
	"testing"

	"dcpi/internal/sim"
)

// BenchmarkRecordHit measures the handler fast path: the common case of a
// hash-table hit (the paper engineered this path to stay under ~450 Alpha
// cycles; here we measure the Go implementation's wall time).
func BenchmarkRecordHit(b *testing.B) {
	d := New(Config{NumCPUs: 1})
	d.Record(0, 7, 0x1000, sim.EvCycles)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Record(0, 7, 0x1000, sim.EvCycles)
	}
}

// BenchmarkRecordWorkload measures a realistic mixed stream with evictions.
func BenchmarkRecordWorkload(b *testing.B) {
	d := New(Config{NumCPUs: 1})
	trace := syntheticTrace(1<<16, 2000, 8, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := trace[i&(1<<16-1)]
		d.Record(0, k.PID, k.PC, k.Event)
	}
	b.StopTimer()
	st := d.Stats(0)
	b.ReportMetric(100*st.MissRate(), "miss-%")
}

// BenchmarkFlush measures the daemon-side hash-table drain.
func BenchmarkFlush(b *testing.B) {
	d := New(Config{NumCPUs: 1})
	for i := 0; i < 16384; i++ {
		d.Record(0, 1, uint64(i)*4, sim.EvCycles)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.FlushCPU(0)
		b.StopTimer()
		for j := 0; j < 16384; j++ {
			d.Record(0, 1, uint64(j)*4, sim.EvCycles)
		}
		b.StartTimer()
	}
}

// BenchmarkHTSim measures the §5.4 trace-replay simulator.
func BenchmarkHTSim(b *testing.B) {
	trace := syntheticTrace(1<<16, 3000, 8, 0.3)
	cfg := HTConfig{Buckets: 4096, Ways: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateTrace(trace, cfg)
	}
	b.ReportMetric(float64(len(trace)), "keys/op")
}
