package driver

import "dcpi/internal/sim"

// This file is the trace-driven hash-table simulator of paper §5.4: "we
// constructed a trace-driven simulator that models the driver's hash table
// structures ... examined varying associativity, replacement policy,
// overflow file size and hash function." It drives the ablation showing that
// 6-way associativity and swap-to-front reduce overall cost by 10-20%.

// Key is one sample in a trace.
type Key struct {
	PID   uint32
	PC    uint64
	Event sim.Event
}

// Policy selects the replacement discipline within a bucket.
type Policy uint8

const (
	// PolicyRoundRobin is the shipping driver's "mod counter" eviction.
	PolicyRoundRobin Policy = iota
	// PolicyLRU evicts the least recently touched way.
	PolicyLRU
)

func (p Policy) String() string {
	if p == PolicyLRU {
		return "lru"
	}
	return "round-robin"
}

// HTConfig is one hash-table design point.
type HTConfig struct {
	Buckets     int
	Ways        int
	Policy      Policy
	SwapToFront bool // move hits to the front of the line; insert at front
}

// HTStats summarizes a trace-driven run.
type HTStats struct {
	Samples   uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// ProbeSum counts ways examined before a hit or a full scan; with
	// swap-to-front, hits cluster at the front of the line so the average
	// probe depth drops, which is where the cycle savings come from.
	ProbeSum uint64
}

// MissRate returns Misses/Samples.
func (s HTStats) MissRate() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Samples)
}

// AvgProbes returns mean ways examined per sample.
func (s HTStats) AvgProbes() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.ProbeSum) / float64(s.Samples)
}

// Cost estimates handler cycles for the whole trace under cost model cm,
// charging extra work per probe beyond the first.
func (s HTStats) Cost(cm CostModel) int64 {
	const perProbe = 4 // cycles per additional way examined (same cache line)
	cost := int64(s.Samples)*(cm.Setup+cm.HitWork) +
		int64(s.Evictions)*cm.MissExtra
	extra := int64(s.ProbeSum) - int64(s.Samples)
	if extra > 0 {
		cost += extra * perProbe
	}
	return cost
}

type htEntry struct {
	key   Key
	count uint32
	live  bool
	stamp uint64
}

// HTSim is a configurable hash-table simulator.
type HTSim struct {
	cfg   HTConfig
	lines [][]htEntry
	rr    uint32
	tick  uint64
	stats HTStats
}

// NewHTSim builds a simulator for one design point.
func NewHTSim(cfg HTConfig) *HTSim {
	if cfg.Buckets <= 0 || cfg.Ways <= 0 {
		panic("driver: HTConfig needs positive buckets and ways")
	}
	lines := make([][]htEntry, cfg.Buckets)
	for i := range lines {
		lines[i] = make([]htEntry, cfg.Ways)
	}
	return &HTSim{cfg: cfg, lines: lines}
}

func (h *HTSim) index(k Key) int {
	x := k.PC >> 2
	x ^= x >> 17
	x *= 0x9e3779b97f4a7c15
	x ^= uint64(k.PID) * 0x85ebca77c2b2ae63
	x ^= uint64(k.Event) << 56
	x ^= x >> 29
	return int(x % uint64(h.cfg.Buckets))
}

// Access processes one sample; it reports whether it hit.
func (h *HTSim) Access(k Key) bool {
	h.tick++
	h.stats.Samples++
	line := h.lines[h.index(k)]

	for w := range line {
		e := &line[w]
		if e.live && e.key == k {
			h.stats.Hits++
			h.stats.ProbeSum += uint64(w + 1)
			e.count++
			e.stamp = h.tick
			if h.cfg.SwapToFront && w > 0 {
				line[0], line[w] = line[w], line[0]
			}
			return true
		}
	}

	h.stats.Misses++
	h.stats.ProbeSum += uint64(len(line))

	// Prefer an empty way.
	victim := -1
	for w := range line {
		if !line[w].live {
			victim = w
			break
		}
	}
	if victim < 0 {
		h.stats.Evictions++
		switch h.cfg.Policy {
		case PolicyLRU:
			oldest := uint64(1<<63 - 1)
			for w := range line {
				if line[w].stamp < oldest {
					oldest, victim = line[w].stamp, w
				}
			}
		default:
			victim = int(h.rr) % len(line)
			h.rr++
		}
	}
	e := htEntry{key: k, count: 1, live: true, stamp: h.tick}
	if h.cfg.SwapToFront && victim != 0 {
		line[victim] = line[0]
		line[0] = e
	} else {
		line[victim] = e
	}
	return false
}

// Stats returns the accumulated statistics.
func (h *HTSim) Stats() HTStats { return h.stats }

// SimulateTrace runs a whole trace through one design point.
func SimulateTrace(trace []Key, cfg HTConfig) HTStats {
	s := NewHTSim(cfg)
	for _, k := range trace {
		s.Access(k)
	}
	return s.Stats()
}
