// Package driver implements the DCPI device driver of paper §4.2: the
// performance-counter interrupt handler that aggregates samples into
// per-CPU four-way-associative hash tables, evicts into double-buffered
// overflow buffers, and hands full buffers to the user-mode daemon. A cost
// model charges the simulated machine the cycles the handler would consume,
// with the hit/miss split driven by the real hash-table behaviour.
package driver

import (
	"fmt"

	"dcpi/internal/obs"
	"dcpi/internal/sim"
)

// Geometry constants from the paper (§5.3: each hash table held 16K
// samples, each overflow buffer 8K samples, 512KB kernel memory per CPU).
const (
	// BucketWays is the hash-table associativity: a bucket is one 64-byte
	// cache line holding four 16-byte entries.
	BucketWays = 4
	// DefaultBuckets gives 16K entries (4K buckets x 4 ways).
	DefaultBuckets = 4096
	// DefaultOverflowEntries is the size of each of the two overflow
	// buffers.
	DefaultOverflowEntries = 8192
	// EntryBytes is the in-kernel size of one entry (PID, PC, EVENT,
	// count packed into 16 bytes).
	EntryBytes = 16
)

// Entry is one aggregated sample: the (PID, PC, EVENT) triple plus an
// occurrence count. Double-sampling edge entries (EvEdge) additionally
// carry the second PC of the pair.
type Entry struct {
	PID   uint32
	PC    uint64
	PC2   uint64 // second PC for EvEdge entries
	Event sim.Event
	Count uint32
}

func (e Entry) valid() bool { return e.Count != 0 }

// CostModel converts handler work into cycles. Values follow the paper's
// Table 4 magnitudes: a spin-loop experiment put interrupt setup/teardown at
// ~214 cycles, hit-path handlers at ~340-550 cycles, and miss paths several
// hundred cycles more (the eviction writes an overflow entry, touching an
// extra cache line).
type CostModel struct {
	Setup       int64 // interrupt delivery + return
	HitWork     int64 // hash probe and count increment, one cache line
	InsertExtra int64 // filling an empty way: entry initialization
	MissExtra   int64 // eviction: extra cache line for the overflow entry
}

// DefaultCostModel matches Table 4's cycles-mode averages (hit ~420 cycles,
// eviction-miss ~700).
func DefaultCostModel() CostModel {
	return CostModel{Setup: 214, HitWork: 206, InsertExtra: 90, MissExtra: 280}
}

// Stats counts driver activity on one CPU.
type Stats struct {
	Samples    uint64 // interrupts serviced
	Hits       uint64 // hash-table count increments
	Misses     uint64 // samples that did not match (insert or evict)
	Evictions  uint64 // misses that displaced a live entry
	Inserts    uint64 // misses that filled an empty way
	FlushIPIs  uint64 // inter-processor interrupts for flushes
	BufSwaps   uint64 // overflow-buffer swaps
	Direct     uint64 // samples written directly during a flush
	Lost       uint64 // raw samples dropped because both overflow buffers were full
	Deferred   uint64 // full-buffer deliveries the consumer refused or deferred
	CostCycles int64  // total handler cycles charged
}

// MissRate returns Misses/Samples (the paper's Table 4 "miss rate").
func (s Stats) MissRate() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Samples)
}

// LossRate returns Lost/Samples — the paper's §4.2.3 loss accounting ("the
// number of samples lost is counted"; in practice under 0.1%).
func (s Stats) LossRate() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Samples)
}

// AvgCost returns the mean handler cycles per sample.
func (s Stats) AvgCost() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.CostCycles) / float64(s.Samples)
}

// cpuState is the per-processor data of §4.2.1: a private hash table and a
// pair of overflow buffers, so handlers on different processors never
// synchronize with each other. The two buffers are always in one of two
// states: {active, spare} when the consumer keeps up, or {active, pending}
// when a swapped-out full buffer is still awaiting collection. When the
// active buffer fills while another is pending, samples are dropped and
// counted (§4.2.3 loss accounting).
type cpuState struct {
	buckets     [][BucketWays]Entry
	evictNext   uint32  // round-robin eviction counter ("mod counter")
	active      []Entry // buffer currently receiving evicted entries
	spare       []Entry // empty buffer ready to become active (nil while pending holds it)
	pending     []Entry // full buffer the consumer has not yet accepted
	flushing    bool    // set via IPI while the daemon copies this CPU's table
	dropping    bool    // in a loss episode: both buffers full, samples being dropped
	episodeLost uint64  // samples dropped in the current loss episode
	stats       Stats
}

// Driver is the device driver: one cpuState per processor.
type Driver struct {
	cpus     []*cpuState
	nbuckets int
	bufCap   int
	cost     CostModel

	// Self-observability (nil-safe; see internal/obs). handlerHist records
	// the per-interrupt handler-cycle distribution (Table 4's "cycles per
	// sample" as a histogram rather than a mean); the tracer gets one slice
	// per serviced interrupt, stamped with the simulated clock.
	obsOn       bool
	tracer      *obs.Tracer
	handlerHist *obs.Histogram

	// OnBufferFull is called when a CPU's active overflow buffer fills and
	// is swapped out; the daemon should collect the full buffer promptly.
	// clock is the simulated cycle of the swap (0 when the caller used the
	// clock-less Record path). The consumer returns true when it accepted
	// the buffer; false defers delivery (the daemon is lagging, stalled, or
	// down), in which case the driver parks the buffer and retries on the
	// next swap attempt. While a parked buffer remains uncollected and the
	// second buffer also fills, newly evicted samples are dropped and
	// counted in Stats.Lost — the paper's §4.2.3 graceful degradation.
	OnBufferFull func(cpu int, clock int64, full []Entry) bool
}

// Config sizes the driver.
type Config struct {
	NumCPUs         int
	Buckets         int // 0 -> DefaultBuckets
	OverflowEntries int // 0 -> DefaultOverflowEntries
	Cost            CostModel
	// ZeroCost makes Record charge no cycles (pure sampling). Used by the
	// analysis-accuracy experiments, where dense sampling periods would
	// otherwise perturb the measured program (the real system's 60K-cycle
	// periods make handler time negligible; dense experimental periods do
	// not).
	ZeroCost bool
	// Obs attaches the optional self-observability sinks; the zero value
	// keeps every instrumentation site a no-op.
	Obs obs.Hooks
}

// New builds a driver.
func New(cfg Config) *Driver {
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 1
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = DefaultBuckets
	}
	if cfg.OverflowEntries == 0 {
		cfg.OverflowEntries = DefaultOverflowEntries
	}
	if cfg.Cost == (CostModel{}) && !cfg.ZeroCost {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.ZeroCost {
		cfg.Cost = CostModel{}
	}
	d := &Driver{nbuckets: cfg.Buckets, bufCap: cfg.OverflowEntries, cost: cfg.Cost}
	if cfg.Obs.Enabled() {
		d.obsOn = true
		d.tracer = cfg.Obs.Tracer
		// Bounds span the cost model's range: setup-only (~214) through
		// multi-eviction flush paths (~1K+ cycles).
		d.handlerHist = cfg.Obs.Registry.Histogram("driver.handler_cycles",
			obs.ExpBuckets(128, 1.3, 14))
		d.tracer.NameProcess(obs.PIDDriver, "driver (interrupt handler)")
		for i := 0; i < cfg.NumCPUs; i++ {
			d.tracer.NameThread(obs.PIDDriver, i, fmt.Sprintf("cpu%d", i))
		}
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		d.cpus = append(d.cpus, &cpuState{
			buckets: make([][BucketWays]Entry, cfg.Buckets),
			active:  make([]Entry, 0, cfg.OverflowEntries),
			spare:   make([]Entry, 0, cfg.OverflowEntries),
		})
	}
	return d
}

// hash mixes (pid, pc, pc2, event) into a bucket index.
func (d *Driver) hash(pid uint32, pc, pc2 uint64, ev sim.Event) int {
	h := pc >> 2
	h ^= h >> 17
	h *= 0x9e3779b97f4a7c15
	h ^= (pc2 >> 2) * 0xc2b2ae3d27d4eb4f
	h ^= uint64(pid) * 0x85ebca77c2b2ae63
	h ^= uint64(ev) << 56
	h ^= h >> 29
	return int(h % uint64(d.nbuckets))
}

// Record services one performance-counter interrupt on cpu and returns the
// handler cycles consumed. This is the paper's §4.2 fast path.
func (d *Driver) Record(cpu int, pid uint32, pc uint64, ev sim.Event) int64 {
	return d.record(cpu, Entry{PID: pid, PC: pc, Event: ev, Count: 1}, 0)
}

// RecordAt is Record stamped with the simulated clock of the overflow
// interrupt; the clock only feeds the observability trace.
func (d *Driver) RecordAt(cpu int, pid uint32, pc uint64, ev sim.Event, clock int64) int64 {
	return d.record(cpu, Entry{PID: pid, PC: pc, Event: ev, Count: 1}, clock)
}

// RecordEdge services a double-sampling interrupt pair (paper §7).
func (d *Driver) RecordEdge(cpu int, pid uint32, pc, pc2 uint64) int64 {
	return d.record(cpu, Entry{PID: pid, PC: pc, PC2: pc2, Event: sim.EvEdge, Count: 1}, 0)
}

// RecordEdgeAt is RecordEdge stamped with the simulated clock.
func (d *Driver) RecordEdgeAt(cpu int, pid uint32, pc, pc2 uint64, clock int64) int64 {
	return d.record(cpu, Entry{PID: pid, PC: pc, PC2: pc2, Event: sim.EvEdge, Count: 1}, clock)
}

// Interrupt outcomes as trace-slice names (pre-interned so the hot path
// never builds strings).
const (
	intrHit    = "intr:hit"
	intrInsert = "intr:insert"
	intrEvict  = "intr:evict"
	intrDirect = "intr:direct"
)

// observe feeds one serviced interrupt into the observability layer.
// Callers guard with d.obsOn so the disabled path pays a single branch.
func (d *Driver) observe(cpu int, clock, cost int64, outcome string) {
	d.handlerHist.Observe(float64(cost))
	d.tracer.Slice("driver", outcome, obs.PIDDriver, cpu, clock, cost, nil)
}

func (d *Driver) record(cpu int, in Entry, clock int64) int64 {
	cs := d.cpus[cpu]
	cs.stats.Samples++
	cost := d.cost.Setup

	// While the daemon flushes this CPU's hash table, the handler writes
	// the sample directly into the overflow buffer (§4.2.3).
	if cs.flushing {
		cs.stats.Direct++
		cs.stats.Misses++
		cost += d.cost.HitWork + d.cost.MissExtra
		d.appendOverflow(cpu, cs, in, clock)
		cs.stats.CostCycles += cost
		if d.obsOn {
			d.observe(cpu, clock, cost, intrDirect)
		}
		return cost
	}

	b := &cs.buckets[d.hash(in.PID, in.PC, in.PC2, in.Event)]
	for w := range b {
		e := &b[w]
		if e.valid() && e.PID == in.PID && e.PC == in.PC && e.PC2 == in.PC2 && e.Event == in.Event {
			e.Count++
			cs.stats.Hits++
			cost += d.cost.HitWork
			cs.stats.CostCycles += cost
			if d.obsOn {
				d.observe(cpu, clock, cost, intrHit)
			}
			return cost
		}
	}

	// Miss: fill an empty way if there is one, else evict round-robin.
	cs.stats.Misses++
	cost += d.cost.HitWork
	victim := -1
	for w := range b {
		if !b[w].valid() {
			victim = w
			break
		}
	}
	outcome := intrInsert
	if victim < 0 {
		victim = int(cs.evictNext % BucketWays)
		cs.evictNext++
		cs.stats.Evictions++
		cost += d.cost.MissExtra
		outcome = intrEvict
		d.appendOverflow(cpu, cs, b[victim], clock)
	} else {
		cs.stats.Inserts++
		cost += d.cost.InsertExtra
	}
	b[victim] = in
	cs.stats.CostCycles += cost
	if d.obsOn {
		d.observe(cpu, clock, cost, outcome)
	}
	return cost
}

// appendOverflow adds an evicted entry to the active buffer, swapping
// buffers and notifying the daemon when full. When both buffers are
// occupied — the swapped-out buffer is still awaiting collection and the
// consumer again refuses delivery — the entry is dropped and every raw
// sample it aggregates is counted in Stats.Lost.
func (d *Driver) appendOverflow(cpu int, cs *cpuState, e Entry, clock int64) {
	if len(cs.active) >= d.bufCap {
		// The earlier swap attempt failed; retry before giving up on the
		// sample (the consumer may have caught up since).
		if !d.trySwap(cpu, cs, clock) {
			cs.stats.Lost += uint64(e.Count)
			cs.episodeLost += uint64(e.Count)
			if !cs.dropping {
				cs.dropping = true
				if d.obsOn {
					d.tracer.Instant("driver", "loss_begin", obs.PIDDriver, cpu, clock, nil)
				}
			}
			return
		}
	}
	cs.active = append(cs.active, e)
	if len(cs.active) >= d.bufCap {
		d.trySwap(cpu, cs, clock)
	}
}

// trySwap hands the full active buffer off and installs the empty one. It
// returns false — leaving active full — when both buffers are occupied:
// the previously swapped-out buffer is still awaiting collection and the
// consumer (if any) again deferred its delivery.
func (d *Driver) trySwap(cpu int, cs *cpuState, clock int64) bool {
	if cs.pending != nil && !d.deliverPending(cpu, cs, clock) {
		return false
	}
	full := cs.active
	cs.active, cs.spare = cs.spare, nil
	cs.pending = full
	cs.stats.BufSwaps++
	if d.obsOn {
		d.tracer.Instant("driver", "overflow_swap", obs.PIDDriver, cpu, clock,
			map[string]any{"entries": len(full)})
	}
	d.deliverPending(cpu, cs, clock) // immediate delivery; deferral is fine here
	return true
}

// deliverPending offers the parked full buffer to the consumer. On
// acceptance the buffer's backing array becomes the spare; on refusal (or
// with no consumer attached) it stays parked and Stats.Deferred counts the
// attempt. Returns whether the pending slot is now free.
func (d *Driver) deliverPending(cpu int, cs *cpuState, clock int64) bool {
	if cs.pending == nil {
		return true
	}
	if d.OnBufferFull != nil {
		out := make([]Entry, len(cs.pending))
		copy(out, cs.pending)
		if d.OnBufferFull(cpu, clock, out) {
			cs.spare = cs.pending[:0:cap(cs.pending)] // reuse backing array after copy-out
			cs.pending = nil
			d.endLossEpisode(cpu, cs, clock)
			return true
		}
	}
	cs.stats.Deferred++
	return false
}

// endLossEpisode closes the current loss episode, if any, stamping the
// trace with how many samples it dropped.
func (d *Driver) endLossEpisode(cpu int, cs *cpuState, clock int64) {
	if !cs.dropping {
		return
	}
	cs.dropping = false
	if d.obsOn {
		d.tracer.Instant("driver", "loss_end", obs.PIDDriver, cpu, clock,
			map[string]any{"lost_samples": cs.episodeLost})
	}
	cs.episodeLost = 0
}

// FlushCPU implements the daemon-initiated flush of §4.2.3: an IPI sets the
// CPU's flushing flag, the hash-table contents and the active overflow
// buffer are copied out, and the flag is cleared. It returns the drained
// entries.
func (d *Driver) FlushCPU(cpu int) []Entry { return d.FlushCPUAt(cpu, 0) }

// FlushCPUAt is FlushCPU stamped with the simulated clock of the flush.
func (d *Driver) FlushCPUAt(cpu int, clock int64) []Entry {
	cs := d.cpus[cpu]
	cs.stats.FlushIPIs++
	cs.flushing = true

	var out []Entry
	for bi := range cs.buckets {
		for w := range cs.buckets[bi] {
			if e := cs.buckets[bi][w]; e.valid() {
				out = append(out, e)
				cs.buckets[bi][w] = Entry{}
			}
		}
	}
	// Drain the parked full buffer (if delivery was deferred) before the
	// active one, preserving eviction order.
	if cs.pending != nil {
		out = append(out, cs.pending...)
		cs.spare = cs.pending[:0:cap(cs.pending)]
		cs.pending = nil
		d.endLossEpisode(cpu, cs, clock)
	}
	out = append(out, cs.active...)
	cs.active = cs.active[:0]

	cs.flushing = false
	if d.obsOn {
		d.tracer.Instant("driver", "flush_ipi", obs.PIDDriver, cpu, clock,
			map[string]any{"entries": len(out)})
	}
	return out
}

// FlushAll drains every CPU.
func (d *Driver) FlushAll() []Entry {
	var out []Entry
	for cpu := range d.cpus {
		out = append(out, d.FlushCPU(cpu)...)
	}
	return out
}

// PublishMetrics writes the driver's cumulative self-measurements into reg
// (call once, at the end of a run). Keys mirror the paper's Table 4/5
// driver columns.
func (d *Driver) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t := d.TotalStats()
	reg.Counter("driver.samples").Add(t.Samples)
	reg.Counter("driver.hits").Add(t.Hits)
	reg.Counter("driver.misses").Add(t.Misses)
	reg.Counter("driver.evictions").Add(t.Evictions)
	reg.Counter("driver.inserts").Add(t.Inserts)
	reg.Counter("driver.direct_writes").Add(t.Direct)
	reg.Counter("driver.flush_ipis").Add(t.FlushIPIs)
	reg.Counter("driver.buffer_swaps").Add(t.BufSwaps)
	reg.Counter("driver.cost_cycles").Add(uint64(t.CostCycles))
	reg.Counter("driver.lost_samples").Add(t.Lost)
	reg.Counter("driver.deferred_deliveries").Add(t.Deferred)
	reg.Gauge("driver.loss_rate").Set(t.LossRate())
	reg.Gauge("driver.miss_rate").Set(t.MissRate())
	reg.Gauge("driver.avg_handler_cycles").Set(t.AvgCost())
	reg.Gauge("driver.kernel_memory_bytes").Set(float64(d.KernelMemoryBytes()))
	reg.Gauge("driver.num_cpus").Set(float64(len(d.cpus)))
}

// Stats returns a copy of cpu's statistics.
func (d *Driver) Stats(cpu int) Stats { return d.cpus[cpu].stats }

// TotalStats sums statistics across CPUs.
func (d *Driver) TotalStats() Stats {
	var t Stats
	for _, cs := range d.cpus {
		s := cs.stats
		t.Samples += s.Samples
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Evictions += s.Evictions
		t.Inserts += s.Inserts
		t.FlushIPIs += s.FlushIPIs
		t.BufSwaps += s.BufSwaps
		t.Direct += s.Direct
		t.Lost += s.Lost
		t.Deferred += s.Deferred
		t.CostCycles += s.CostCycles
	}
	return t
}

// KernelMemoryBytes reports the non-pageable kernel memory the driver pins
// per CPU (Table 5's 512KB per processor with default geometry).
func (d *Driver) KernelMemoryBytes() int {
	perCPU := d.nbuckets*BucketWays*EntryBytes + 2*d.bufCap*EntryBytes
	return perCPU * len(d.cpus)
}

// NumCPUs returns the number of per-CPU states.
func (d *Driver) NumCPUs() int { return len(d.cpus) }

func (s Stats) String() string {
	return fmt.Sprintf("samples=%d hits=%d misses=%d (%.1f%%) evict=%d swaps=%d ipis=%d lost=%d avgcost=%.0f",
		s.Samples, s.Hits, s.Misses, 100*s.MissRate(), s.Evictions, s.BufSwaps, s.FlushIPIs, s.Lost, s.AvgCost())
}
