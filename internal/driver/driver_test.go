package driver

import (
	"testing"
	"testing/quick"

	"dcpi/internal/sim"
)

func TestRecordAggregates(t *testing.T) {
	d := New(Config{NumCPUs: 1})
	for i := 0; i < 100; i++ {
		d.Record(0, 42, 0x1000, sim.EvCycles)
	}
	st := d.Stats(0)
	if st.Samples != 100 {
		t.Errorf("samples = %d", st.Samples)
	}
	if st.Hits != 99 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 99/1", st.Hits, st.Misses)
	}
	entries := d.FlushCPU(0)
	if len(entries) != 1 || entries[0].Count != 100 {
		t.Fatalf("flush = %+v", entries)
	}
	if entries[0].PID != 42 || entries[0].PC != 0x1000 || entries[0].Event != sim.EvCycles {
		t.Errorf("entry = %+v", entries[0])
	}
}

func TestDistinctEventsDistinctEntries(t *testing.T) {
	d := New(Config{NumCPUs: 1})
	d.Record(0, 1, 0x1000, sim.EvCycles)
	d.Record(0, 1, 0x1000, sim.EvIMiss)
	d.Record(0, 2, 0x1000, sim.EvCycles)
	entries := d.FlushCPU(0)
	if len(entries) != 3 {
		t.Errorf("entries = %d, want 3 (distinct pid/event)", len(entries))
	}
}

func TestHitCostLessThanMissCost(t *testing.T) {
	d := New(Config{NumCPUs: 1})
	missCost := d.Record(0, 1, 0x1000, sim.EvCycles) // insert (miss, no evict)
	hitCost := d.Record(0, 1, 0x1000, sim.EvCycles)
	if hitCost >= missCost {
		t.Errorf("hit cost %d >= miss cost %d", hitCost, missCost)
	}
	// Force an eviction: fill one bucket's 4 ways with colliding keys.
	d2 := New(Config{NumCPUs: 1, Buckets: 1})
	var evictCost int64
	for pc := uint64(0); pc < 5; pc++ {
		evictCost = d2.Record(0, 1, pc*4, sim.EvCycles)
	}
	if d2.Stats(0).Evictions == 0 {
		t.Fatal("no eviction with 5 keys in a 4-way single bucket")
	}
	if evictCost <= hitCost {
		t.Errorf("evict cost %d <= hit cost %d", evictCost, hitCost)
	}
}

func TestEvictionRoundRobin(t *testing.T) {
	d := New(Config{NumCPUs: 1, Buckets: 1})
	// Fill 4 ways, then keep inserting; every insert evicts exactly one.
	for pc := uint64(0); pc < 12; pc++ {
		d.Record(0, 1, pc*8, sim.EvCycles)
	}
	st := d.Stats(0)
	if st.Evictions != 8 {
		t.Errorf("evictions = %d, want 8", st.Evictions)
	}
	if st.Inserts != 4 {
		t.Errorf("inserts = %d, want 4", st.Inserts)
	}
}

func TestOverflowBufferSwapNotifies(t *testing.T) {
	var got [][]Entry
	d := New(Config{NumCPUs: 1, Buckets: 1, OverflowEntries: 4})
	d.OnBufferFull = func(cpu int, _ int64, full []Entry) bool { got = append(got, full); return true }
	// Evictions: each new key beyond 4 evicts one entry to the buffer.
	for pc := uint64(0); pc < 16; pc++ {
		d.Record(0, 1, pc*8, sim.EvCycles)
	}
	// 12 evictions -> buffer (cap 4) filled 3 times.
	if len(got) != 3 {
		t.Fatalf("notifications = %d, want 3", len(got))
	}
	for _, buf := range got {
		if len(buf) != 4 {
			t.Errorf("buffer len = %d", len(buf))
		}
		for _, e := range buf {
			if e.Count == 0 {
				t.Error("invalid entry in overflow buffer")
			}
		}
	}
	st := d.Stats(0)
	if st.BufSwaps != 3 {
		t.Errorf("swaps = %d", st.BufSwaps)
	}
}

func TestFlushDuringFlushWritesDirect(t *testing.T) {
	d := New(Config{NumCPUs: 1})
	d.cpus[0].flushing = true
	d.Record(0, 1, 0x1000, sim.EvCycles)
	st := d.Stats(0)
	if st.Direct != 1 {
		t.Errorf("direct = %d, want 1", st.Direct)
	}
	if len(d.cpus[0].active) != 1 {
		t.Error("direct sample not in overflow buffer")
	}
	d.cpus[0].flushing = false
}

func TestPerCPUIsolation(t *testing.T) {
	d := New(Config{NumCPUs: 2})
	d.Record(0, 1, 0x1000, sim.EvCycles)
	d.Record(1, 1, 0x1000, sim.EvCycles)
	if d.Stats(0).Samples != 1 || d.Stats(1).Samples != 1 {
		t.Error("per-CPU stats mixed")
	}
	e0 := d.FlushCPU(0)
	e1 := d.FlushCPU(1)
	if len(e0) != 1 || len(e1) != 1 {
		t.Errorf("flush = %d, %d entries", len(e0), len(e1))
	}
	ts := d.TotalStats()
	if ts.Samples != 2 || ts.FlushIPIs != 2 {
		t.Errorf("total = %+v", ts)
	}
}

func TestFlushAllAndConservation(t *testing.T) {
	d := New(Config{NumCPUs: 2, Buckets: 4, OverflowEntries: 1 << 20})
	var fed uint64
	for cpu := 0; cpu < 2; cpu++ {
		for i := 0; i < 1000; i++ {
			d.Record(cpu, uint32(i%7), uint64(i%50)*4, sim.EvCycles)
			fed++
		}
	}
	entries := d.FlushAll()
	var total uint64
	for _, e := range entries {
		total += uint64(e.Count)
	}
	if total != fed {
		t.Errorf("flushed counts sum to %d, want %d (no samples lost)", total, fed)
	}
	// Second flush is empty.
	if extra := d.FlushAll(); len(extra) != 0 {
		t.Errorf("second flush returned %d entries", len(extra))
	}
}

// Property: counts are conserved for arbitrary access patterns, including
// buffer swaps (the notification plus final flush account for everything).
func TestConservationProperty(t *testing.T) {
	f := func(pcs []uint16, pids []uint8) bool {
		d := New(Config{NumCPUs: 1, Buckets: 2, OverflowEntries: 8})
		var kept uint64
		d.OnBufferFull = func(_ int, _ int64, full []Entry) bool {
			for _, e := range full {
				kept += uint64(e.Count)
			}
			return true
		}
		var fed uint64
		for i, pc := range pcs {
			pid := uint32(1)
			if len(pids) > 0 {
				pid = uint32(pids[i%len(pids)])
			}
			d.Record(0, pid, uint64(pc)*4, sim.EvCycles)
			fed++
		}
		for _, e := range d.FlushCPU(0) {
			kept += uint64(e.Count)
		}
		return kept == fed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAggregationReducesDataRate(t *testing.T) {
	// Paper: "This typically reduces the data rate by a factor of 20 or
	// more." A loopy workload (few distinct PCs) must aggregate heavily.
	d := New(Config{NumCPUs: 1})
	const samples = 20000
	for i := 0; i < samples; i++ {
		d.Record(0, 7, uint64(i%40)*4, sim.EvCycles) // 40 hot PCs
	}
	entries := d.FlushCPU(0)
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	factor := float64(samples) / float64(len(entries))
	if factor < 20 {
		t.Errorf("aggregation factor = %.1f, want >= 20", factor)
	}
}

func TestKernelMemoryBudget(t *testing.T) {
	// Default geometry should match the paper's 512KB per processor:
	// 16K-entry table + two 8K-entry buffers at 16 bytes each.
	d := New(Config{NumCPUs: 1})
	want := (16384 + 2*8192) * EntryBytes
	if got := d.KernelMemoryBytes(); got != want {
		t.Errorf("kernel memory = %d, want %d", got, want)
	}
	if want != 512*1024 {
		t.Errorf("default geometry = %d bytes, paper says 512KB", want)
	}
	d4 := New(Config{NumCPUs: 4})
	if d4.KernelMemoryBytes() != 4*want {
		t.Error("per-CPU memory not scaled")
	}
	if d4.NumCPUs() != 4 {
		t.Error("NumCPUs wrong")
	}
}

// --- §5.4 hash-table design-space simulator ---

// syntheticTrace builds a trace with workload-like locality: a hot set
// revisited frequently plus a cold stream (like gcc's many short-lived
// contexts), using a deterministic generator.
func syntheticTrace(n int, hotPCs, pids int, coldFrac float64) []Key {
	trace := make([]Key, 0, n)
	state := uint64(0x2545f4914f6cdd1d)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < n; i++ {
		k := Key{Event: sim.EvCycles}
		if float64(next()%1000)/1000 < coldFrac {
			k.PC = (next() % 1_000_000) * 4 // cold: effectively unique
			k.PID = uint32(next() % uint64(pids))
		} else {
			// Skewed hot-set popularity (min of two uniforms): a few PCs
			// dominate, as real sample streams do.
			a, b := next()%uint64(hotPCs), next()%uint64(hotPCs)
			if b < a {
				a = b
			}
			k.PC = a * 4
			k.PID = uint32(next() % uint64(pids))
		}
		trace = append(trace, k)
	}
	return trace
}

func TestHTSimHitRateTracksLocality(t *testing.T) {
	cfg := HTConfig{Buckets: 512, Ways: 4}
	hot := SimulateTrace(syntheticTrace(20000, 100, 2, 0.01), cfg)
	cold := SimulateTrace(syntheticTrace(20000, 100, 2, 0.8), cfg)
	if hot.MissRate() >= cold.MissRate() {
		t.Errorf("hot miss %.3f >= cold miss %.3f", hot.MissRate(), cold.MissRate())
	}
	if hot.MissRate() > 0.1 {
		t.Errorf("hot trace miss rate %.3f too high", hot.MissRate())
	}
}

func TestHTSimAssociativityHelps(t *testing.T) {
	// Same total entries, more ways: fewer evictions under collisions.
	trace := syntheticTrace(50000, 3000, 8, 0.2)
	w4 := SimulateTrace(trace, HTConfig{Buckets: 1024, Ways: 4})
	w6 := SimulateTrace(trace, HTConfig{Buckets: 1024, Ways: 6})
	if w6.Evictions >= w4.Evictions {
		t.Errorf("6-way evictions %d >= 4-way %d", w6.Evictions, w4.Evictions)
	}
}

func TestHTSimSwapToFrontReducesProbes(t *testing.T) {
	trace := syntheticTrace(50000, 600, 1, 0.02)
	plain := SimulateTrace(trace, HTConfig{Buckets: 64, Ways: 4})
	stf := SimulateTrace(trace, HTConfig{Buckets: 64, Ways: 4, SwapToFront: true})
	if stf.AvgProbes() >= plain.AvgProbes() {
		t.Errorf("swap-to-front probes %.2f >= plain %.2f", stf.AvgProbes(), plain.AvgProbes())
	}
	cm := DefaultCostModel()
	if stf.Cost(cm) >= plain.Cost(cm) {
		t.Errorf("swap-to-front cost %d >= plain %d", stf.Cost(cm), plain.Cost(cm))
	}
}

func TestHTSimLRUPolicy(t *testing.T) {
	trace := syntheticTrace(30000, 2000, 4, 0.3)
	rr := SimulateTrace(trace, HTConfig{Buckets: 256, Ways: 4, Policy: PolicyRoundRobin})
	lru := SimulateTrace(trace, HTConfig{Buckets: 256, Ways: 4, Policy: PolicyLRU})
	// LRU should not be dramatically worse than round-robin on a local
	// trace; typically it is a bit better.
	if lru.MissRate() > rr.MissRate()*1.1 {
		t.Errorf("lru miss %.3f much worse than rr %.3f", lru.MissRate(), rr.MissRate())
	}
	if PolicyLRU.String() != "lru" || PolicyRoundRobin.String() != "round-robin" {
		t.Error("policy strings")
	}
}

func TestHTSimStatsConsistency(t *testing.T) {
	trace := syntheticTrace(10000, 500, 3, 0.25)
	st := SimulateTrace(trace, HTConfig{Buckets: 128, Ways: 4})
	if st.Samples != 10000 {
		t.Errorf("samples = %d", st.Samples)
	}
	if st.Hits+st.Misses != st.Samples {
		t.Error("hits + misses != samples")
	}
	if st.Evictions > st.Misses {
		t.Error("evictions > misses")
	}
	if st.AvgProbes() < 1 || st.AvgProbes() > 4 {
		t.Errorf("avg probes = %.2f out of range", st.AvgProbes())
	}
}

func TestBackpressureDeferredThenRecovered(t *testing.T) {
	d := New(Config{NumCPUs: 1, Buckets: 1, OverflowEntries: 4})
	accept := false
	var delivered uint64
	d.OnBufferFull = func(_ int, _ int64, full []Entry) bool {
		if !accept {
			return false
		}
		for _, e := range full {
			delivered += uint64(e.Count)
		}
		return true
	}
	// Evictions flow once the single bucket's 4 ways fill; with the
	// consumer refusing, both buffers (2 x 4 entries) fill and further
	// evictions are dropped -- counted, not silent.
	var fed uint64
	for pc := uint64(0); pc < 30; pc++ {
		d.Record(0, 1, pc*8, sim.EvCycles)
		fed++
	}
	st := d.Stats(0)
	if st.Deferred == 0 {
		t.Fatal("refused deliveries not counted as Deferred")
	}
	if st.Lost == 0 {
		t.Fatal("no loss with both buffers full and a refusing consumer")
	}
	if st.LossRate() <= 0 || st.LossRate() >= 1 {
		t.Errorf("loss rate = %v", st.LossRate())
	}

	// Consumer recovers: the parked buffer is delivered on the next swap
	// attempt and no further samples are dropped.
	accept = true
	lostBefore := st.Lost
	for pc := uint64(100); pc < 130; pc++ {
		d.Record(0, 1, pc*8, sim.EvCycles)
		fed++
	}
	if d.Stats(0).Lost != lostBefore {
		t.Errorf("loss continued after consumer recovered: %d -> %d", lostBefore, d.Stats(0).Lost)
	}
	if delivered == 0 {
		t.Error("parked buffer never delivered after recovery")
	}

	var flushed uint64
	for _, e := range d.FlushCPU(0) {
		flushed += uint64(e.Count)
	}
	st = d.Stats(0)
	if got := delivered + flushed + st.Lost; got != fed {
		t.Errorf("conservation: delivered %d + flushed %d + lost %d = %d, want %d",
			delivered, flushed, st.Lost, got, fed)
	}
}

func TestNilConsumerLossCounted(t *testing.T) {
	// The old code silently discarded the full active buffer when no
	// consumer was attached; now the drop is accounted in Stats.Lost and
	// conservation still holds through the final flush.
	d := New(Config{NumCPUs: 1, Buckets: 1, OverflowEntries: 4})
	var fed uint64
	for pc := uint64(0); pc < 40; pc++ {
		d.Record(0, 1, pc*8, sim.EvCycles)
		fed++
	}
	st := d.Stats(0)
	if st.Lost == 0 {
		t.Fatal("nil-consumer overflow not counted as Lost")
	}
	var flushed uint64
	for _, e := range d.FlushCPU(0) {
		flushed += uint64(e.Count)
	}
	if flushed+st.Lost != fed {
		t.Errorf("conservation: flushed %d + lost %d != fed %d", flushed, st.Lost, fed)
	}
	if ts := d.TotalStats(); ts.Lost != st.Lost {
		t.Errorf("TotalStats.Lost = %d, want %d", ts.Lost, st.Lost)
	}
}

func TestFlushDuringRecordDirectPathLoss(t *testing.T) {
	// While the daemon flushes, samples bypass the hash table and go
	// directly to the overflow buffer; with a refusing consumer the direct
	// path hits the same both-buffers-full accounting.
	d := New(Config{NumCPUs: 1, OverflowEntries: 2})
	d.OnBufferFull = func(_ int, _ int64, _ []Entry) bool { return false }
	d.cpus[0].flushing = true
	for i := 0; i < 10; i++ {
		d.Record(0, 1, uint64(i)*8, sim.EvCycles)
	}
	st := d.Stats(0)
	if st.Direct != 10 {
		t.Errorf("direct = %d, want 10", st.Direct)
	}
	if st.Lost != 6 {
		t.Errorf("lost = %d, want 6 (2x2-entry buffers hold 4 of 10)", st.Lost)
	}
	d.cpus[0].flushing = false
	var kept uint64
	for _, e := range d.FlushCPU(0) {
		kept += uint64(e.Count)
	}
	if kept+st.Lost != 10 {
		t.Errorf("conservation: kept %d + lost %d != 10", kept, st.Lost)
	}
}

// Property: counts are conserved for arbitrary access patterns even when the
// consumer refuses arbitrary subsets of deliveries -- every sample is
// delivered, flushed, or counted lost.
func TestConservationWithRefusals(t *testing.T) {
	f := func(pcs []uint16, refuse []bool) bool {
		d := New(Config{NumCPUs: 1, Buckets: 2, OverflowEntries: 8})
		var delivered uint64
		calls := 0
		d.OnBufferFull = func(_ int, _ int64, full []Entry) bool {
			calls++
			if len(refuse) > 0 && refuse[calls%len(refuse)] {
				return false
			}
			for _, e := range full {
				delivered += uint64(e.Count)
			}
			return true
		}
		var fed uint64
		for _, pc := range pcs {
			d.Record(0, 1, uint64(pc)*4, sim.EvCycles)
			fed++
		}
		var flushed uint64
		for _, e := range d.FlushCPU(0) {
			flushed += uint64(e.Count)
		}
		return delivered+flushed+d.Stats(0).Lost == fed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
