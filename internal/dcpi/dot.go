package dcpi

import (
	"fmt"
	"io"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/cfg"
)

// FormatDOT renders a procedure's annotated control-flow graph in Graphviz
// DOT form — the modern equivalent of the paper's "formatted Postscript
// output of annotated control-flow graphs" (§3). Blocks show their address
// range, estimated executions, and CPI; edge labels carry estimated
// frequencies; hot blocks are emphasized.
func FormatDOT(w io.Writer, pa *analysis.ProcAnalysis) {
	fmt.Fprintf(w, "digraph %q {\n", pa.Name)
	fmt.Fprintf(w, "  node [shape=box, fontname=\"monospace\"];\n")
	fmt.Fprintf(w, "  label=%q;\n", fmt.Sprintf("%s: best-case %.2f CPI, actual %.2f CPI",
		pa.Name, pa.BestCaseCPI, pa.ActualCPI))

	// Hottest block (by samples) for emphasis.
	var maxSamples uint64
	blockSamples := make([]uint64, len(pa.Graph.Blocks))
	for bi, b := range pa.Graph.Blocks {
		for i := b.Start; i < b.End; i++ {
			blockSamples[bi] += pa.Insts[i].Samples
		}
		if blockSamples[bi] > maxSamples {
			maxSamples = blockSamples[bi]
		}
	}

	for bi, b := range pa.Graph.Blocks {
		startOff := pa.BaseOffset + uint64(b.Start)*alpha.InstBytes
		endOff := pa.BaseOffset + uint64(b.End-1)*alpha.InstBytes
		var blockCPI float64
		if f := pa.BlockFreq[bi]; f > 0 {
			blockCPI = float64(blockSamples[bi]) / f
		}
		label := fmt.Sprintf("B%d  %06x-%06x\\nexec %.0f  samples %d  %.1f cy",
			bi, startOff, endOff, pa.BlockFreq[bi]*pa.Period, blockSamples[bi], blockCPI)
		attrs := ""
		if maxSamples > 0 && blockSamples[bi] == maxSamples {
			attrs = ", style=filled, fillcolor=lightgray, penwidth=2"
		}
		fmt.Fprintf(w, "  b%d [label=\"%s\"%s];\n", bi, label, attrs)
	}

	fmt.Fprintf(w, "  entry [shape=plaintext]; exit [shape=plaintext];\n")
	for ei, e := range pa.Graph.Edges {
		from, to := nodeName(e.From), nodeName(e.To)
		style := ""
		if e.Kind == cfg.EdgeVirtual {
			style = ", style=dotted"
		}
		fmt.Fprintf(w, "  %s -> %s [label=\"%.0f\"%s];\n",
			from, to, pa.EdgeFreq[ei]*pa.Period, style)
	}
	fmt.Fprintf(w, "}\n")
}

func nodeName(block int) string {
	switch block {
	case cfg.Entry:
		return "entry"
	case cfg.Exit:
		return "exit"
	default:
		return fmt.Sprintf("b%d", block)
	}
}
