package dcpi

import (
	"fmt"
	"io"
	"math"
	"strings"

	"dcpi/internal/analysis"
	"dcpi/internal/pipeline"
	"dcpi/internal/sim"
)

// FormatProcList writes the dcpiprof view (the paper's Figure 1): samples
// per procedure sorted by decreasing cycles, with cumulative percentages and
// a second event column when present.
func FormatProcList(w io.Writer, r *Result, maxRows int) {
	rows := r.ProcRows()
	totalCycles := r.TotalSamples(sim.EvCycles)
	totalIMiss := r.TotalSamples(sim.EvIMiss)

	if totalIMiss > 0 {
		fmt.Fprintf(w, "Total samples for event type cycles = %d, imiss = %d\n\n", totalCycles, totalIMiss)
	} else {
		fmt.Fprintf(w, "Total samples for event type cycles = %d\n\n", totalCycles)
	}
	fmt.Fprintf(w, "The counts given below are the number of samples for each listed event type.\n\n")
	if totalIMiss > 0 {
		fmt.Fprintf(w, "%9s %7s %7s  %8s %6s  %-24s %s\n", "cycles", "%", "cum%", "imiss", "%", "procedure", "image")
	} else {
		fmt.Fprintf(w, "%9s %7s %7s  %-24s %s\n", "cycles", "%", "cum%", "procedure", "image")
	}
	var cum float64
	for i, row := range rows {
		if maxRows > 0 && i >= maxRows {
			break
		}
		cyc := row.Counts[sim.EvCycles]
		pct := 0.0
		if totalCycles > 0 {
			pct = 100 * float64(cyc) / float64(totalCycles)
		}
		cum += pct
		if totalIMiss > 0 {
			ipct := 0.0
			if totalIMiss > 0 {
				ipct = 100 * float64(row.Counts[sim.EvIMiss]) / float64(totalIMiss)
			}
			fmt.Fprintf(w, "%9d %6.2f%% %6.2f%%  %8d %5.2f%%  %-24s %s\n",
				cyc, pct, cum, row.Counts[sim.EvIMiss], ipct, row.Procedure, row.ImagePath)
		} else {
			fmt.Fprintf(w, "%9d %6.2f%% %6.2f%%  %-24s %s\n", cyc, pct, cum, row.Procedure, row.ImagePath)
		}
	}
}

// legendName returns the parenthetical legend for a culprit letter, as in
// Figure 2 ("d = D-cache miss").
func legendName(c analysis.Cause) string {
	switch c {
	case analysis.CauseICache:
		return "I-cache miss"
	case analysis.CauseITB:
		return "ITB miss"
	case analysis.CauseDCache:
		return "D-cache miss"
	case analysis.CauseDTB:
		return "DTB miss"
	case analysis.CauseWB:
		return "write-buffer overflow"
	case analysis.CauseBranchMP:
		return "branch mispredict"
	case analysis.CauseSync:
		return "sync"
	case analysis.CauseFUMul:
		return "multiplier busy"
	case analysis.CauseFUDiv:
		return "divider busy"
	}
	return "unexplained"
}

// FormatCalc writes the dcpicalc instruction listing (Figure 2): best-case
// vs actual CPI, then each instruction with samples, average cycles, and
// stall bubbles naming possible culprits.
func FormatCalc(w io.Writer, pa *analysis.ProcAnalysis) {
	var totalSamples uint64
	var bestCycles float64
	var execWeight float64
	for i := range pa.Insts {
		ia := &pa.Insts[i]
		totalSamples += ia.Samples
		weight := ia.Freq / pa.Period
		bestCycles += weight * float64(ia.M)
		execWeight += weight
	}
	fmt.Fprintf(w, "*** Best-case %6.0f/%d = %.2fCPI\n", bestCycles, len(pa.Insts), pa.BestCaseCPI)
	fmt.Fprintf(w, "*** Actual    %6d/%d = %.2fCPI\n\n", totalSamples, len(pa.Insts), pa.ActualCPI)
	fmt.Fprintf(w, "%8s %-28s %9s %8s  %s\n\n", "Addr", "Instruction", "Samples", "CPI", "Culprit")

	legendShown := map[byte]bool{}
	for i := range pa.Insts {
		ia := &pa.Insts[i]

		// Bubble lines before a stalled instruction.
		if ia.DynStall > 0.5 && len(ia.Culprits) > 0 {
			var letters []byte
			for _, c := range ia.Culprits {
				letters = append(letters, c.Cause.Letter())
			}
			for _, c := range ia.Culprits {
				l := c.Cause.Letter()
				if !legendShown[l] {
					legendShown[l] = true
					fmt.Fprintf(w, "%48s  %s (%c = %s)\n", "", string(letters), l, legendName(c.Cause))
				}
			}
			fmt.Fprintf(w, "%48s  %s %.1fcy\n", "", string(letters), ia.DynStall)
		}
		if ia.SlotHazard {
			if !legendShown['s'] {
				legendShown['s'] = true
				fmt.Fprintf(w, "%48s  s (s = slotting hazard)\n", "")
			} else {
				fmt.Fprintf(w, "%48s  s\n", "")
			}
		}

		cpiStr := "(dual issue)"
		if ia.M > 0 || ia.Samples > 0 {
			if math.IsInf(ia.CPI, 1) {
				cpiStr = "   ?cy"
			} else if ia.CPI > 0 {
				cpiStr = fmt.Sprintf("%5.1fcy", ia.CPI)
			} else {
				cpiStr = "  0.0cy"
			}
		}
		var culpritAddrs []string
		for _, c := range ia.Culprits {
			if c.CulpritIndex >= 0 {
				culpritAddrs = append(culpritAddrs,
					fmt.Sprintf("%06x", pa.Insts[c.CulpritIndex].Offset))
			}
		}
		lineCol := ""
		if pa.SourceLines != nil {
			lineCol = fmt.Sprintf("  line %d", pa.SourceLines[i])
		}
		fmt.Fprintf(w, "%08x %-28s %9d %8s  %s%s\n",
			ia.Offset, ia.Inst.DisasmAt(ia.Offset), ia.Samples, cpiStr,
			strings.Join(culpritAddrs, " "), lineCol)
	}
}

// FormatSummary writes the dcpicalc procedure summary (Figure 4): dynamic
// stall ranges per cause, static stalls per kind, execution, and totals.
func FormatSummary(w io.Writer, pa *analysis.ProcAnalysis) {
	s := pa.Summary
	fmt.Fprintf(w, "*** Best-case %.2fCPI, Actual %.2fCPI\n***\n", pa.BestCaseCPI, pa.ActualCPI)
	pct := func(f float64) string { return fmt.Sprintf("%5.1f%%", 100*f) }

	dynCauses := []analysis.Cause{
		analysis.CauseICache, analysis.CauseITB, analysis.CauseDCache,
		analysis.CauseDTB, analysis.CauseWB, analysis.CauseSync,
		analysis.CauseBranchMP, analysis.CauseFUMul, analysis.CauseFUDiv,
	}
	for _, c := range dynCauses {
		fmt.Fprintf(w, "***   %-22s %s to %s\n", c.String(), pct(s.DynMin[c]), pct(s.DynMax[c]))
	}
	fmt.Fprintf(w, "***   %-22s %s to %s\n", "Unexplained stall", pct(s.UnexplainedStall), pct(s.UnexplainedStall))
	fmt.Fprintf(w, "***   %-22s %s to %s\n", "Unexplained gain", pct(-s.UnexplainedGain), pct(-s.UnexplainedGain))
	fmt.Fprintf(w, "*** %s\n", strings.Repeat("-", 42))
	fmt.Fprintf(w, "***   %-22s %s\n", "Subtotal dynamic", pct(s.DynTotal))
	fmt.Fprintf(w, "***\n")

	staticKinds := []pipeline.StallKind{
		pipeline.StallSlotting, pipeline.StallRaDep, pipeline.StallRbDep,
		pipeline.StallRcDep, pipeline.StallFUDep,
	}
	for _, k := range staticKinds {
		fmt.Fprintf(w, "***   %-22s %s\n", k.String(), pct(s.Static[k]))
	}
	fmt.Fprintf(w, "*** %s\n", strings.Repeat("-", 42))
	fmt.Fprintf(w, "***   %-22s %s\n", "Subtotal static", pct(s.SubtotalStatic()))
	fmt.Fprintf(w, "*** %s\n", strings.Repeat("-", 42))
	fmt.Fprintf(w, "***   %-22s %s\n", "Total stall", pct(s.DynTotal+s.SubtotalStatic()))
	fmt.Fprintf(w, "***   %-22s %s\n", "Execution", pct(s.Execution))
	err := 1 - (s.DynTotal + s.SubtotalStatic() + s.Execution)
	fmt.Fprintf(w, "***   %-22s %s\n", "Net sampling error", pct(err))
	fmt.Fprintf(w, "*** %s\n", strings.Repeat("-", 42))
	fmt.Fprintf(w, "***   %-22s %s\n", "Total tallied", pct(1.0))
	fmt.Fprintf(w, "***   (%d samples)\n", s.TotalSamples)
}

// FormatStats writes the dcpistats view (Figure 3): per-procedure variation
// across sample sets, sorted by range%.
func FormatStats(w io.Writer, rows []StatRow, setTotals []uint64, maxRows int) {
	fmt.Fprintf(w, "Number of samples of type cycles\n")
	var grand uint64
	for i, t := range setTotals {
		fmt.Fprintf(w, "set %2d = %8d  ", i+1, t)
		grand += t
		if (i+1)%4 == 0 {
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\nTOTAL %d\n\n", grand)
	fmt.Fprintf(w, "Statistics calculated using the sample counts for each procedure from %d different sample set(s)\n\n", len(setTotals))
	fmt.Fprintf(w, "%7s %12s %7s %3s %11s %11s %9s %9s  %s\n",
		"range%", "sum", "sum%", "N", "mean", "std-dev", "min", "max", "procedure")
	printed := 0
	for _, row := range rows {
		if maxRows > 0 && printed >= maxRows {
			break
		}
		// Procedures with a negligible share have statistically meaningless
		// range%; keep the table to rows a user can act on.
		if row.SumPct(grand) < 0.0005 {
			continue
		}
		printed++
		fmt.Fprintf(w, "%6.2f%% %12d %6.2f%% %3d %11.2f %11.2f %9d %9d  %s\n",
			100*row.RangePct(), row.Sum, 100*row.SumPct(grand), row.N,
			row.Mean, row.StdDev, row.Min, row.Max, row.Procedure)
	}
}

// FormatFreqTable writes the paper's Figure 7 view: per-instruction sample
// counts, static Mᵢ, the Sᵢ/Mᵢ issue-point ratios, and a '*' marking the
// ratios the cluster heuristic averaged to estimate the frequency.
func FormatFreqTable(w io.Writer, pa *analysis.ProcAnalysis) {
	fmt.Fprintf(w, "%8s %-28s %8s %4s %10s\n", "Addr", "Instruction", "Si", "Mi", "Si/Mi")
	for i := range pa.Insts {
		ia := &pa.Insts[i]
		ratio := ""
		if ia.M > 0 {
			r := float64(ia.Samples) / float64(ia.M)
			mark := ""
			class := pa.Graph.BlockClass[pa.Graph.BlockOfInst(i)]
			if lo, hi := pa.ClusterLo[class], pa.ClusterHi[class]; hi > 0 && r >= lo && r <= hi {
				mark = " *"
			}
			ratio = fmt.Sprintf("%.0f%s", r, mark)
		}
		fmt.Fprintf(w, "%08x %-28s %8d %4d %10s\n",
			ia.Offset, ia.Inst.DisasmAt(ia.Offset), ia.Samples, ia.M, ratio)
	}
	// Per-class estimates, like the "frequency of 1527" note under Fig 7.
	seen := map[int]bool{}
	for bi := range pa.Graph.Blocks {
		c := pa.Graph.BlockClass[bi]
		if seen[c] || pa.ClassFreq[c] <= 0 {
			continue
		}
		seen[c] = true
		fmt.Fprintf(w, "class %d: estimated frequency %.0f (%s confidence)\n",
			c, pa.ClassFreq[c], pa.ClassConf[c])
	}
}
