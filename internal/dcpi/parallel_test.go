package dcpi

import (
	"fmt"
	"reflect"
	"testing"

	"dcpi/internal/daemon"
	"dcpi/internal/sim"
)

// profileCounts flattens a run's profiles into (image, event, offset) ->
// samples for structural comparison.
func profileCounts(r *Result) map[string]uint64 {
	out := make(map[string]uint64)
	for _, p := range r.Profiles() {
		for off, n := range p.Counts {
			out[fmt.Sprintf("%s|%d|%#x", p.ImagePath, p.Event, off)] = n
		}
	}
	return out
}

// TestParallelMatchesSequential is the differential matrix behind the
// PR's core claim: running the simulated CPUs on goroutines changes
// nothing observable. Each cell runs one workload twice — sequentially
// (SimCPUs=0, the seed behavior) and with the given parallelism — and
// demands identical machine statistics, exact execution counts, driver
// and daemon statistics, per-(image, offset) sample counts, and the raw
// sample trace.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		workload string
		scale    float64
		seeds    []uint64
		simcpus  []int
	}{
		{"altavista", 0.15, []uint64{3, 11}, []int{2, 4}},
		{"dss", 0.1, []uint64{5}, []int{4}},
		{"timeshare", 0.15, []uint64{7}, []int{2}},
	}
	for _, tc := range cases {
		for _, seed := range tc.seeds {
			base := func(simcpus int) Config {
				return Config{
					Workload:     tc.workload,
					Mode:         sim.ModeDefault,
					Seed:         seed,
					Scale:        tc.scale,
					CyclesPeriod: fastPeriods,
					CollectExact: true,
					TraceSamples: true,
					SimCPUs:      simcpus,
				}
			}
			seq, err := Run(base(0))
			if err != nil {
				t.Fatalf("%s/seed=%d sequential: %v", tc.workload, seed, err)
			}
			for _, n := range tc.simcpus {
				t.Run(fmt.Sprintf("%s/seed=%d/simcpus=%d", tc.workload, seed, n), func(t *testing.T) {
					par, err := Run(base(n))
					if err != nil {
						t.Fatal(err)
					}
					if seq.Wall != par.Wall {
						t.Errorf("wall: sequential %d, parallel %d", seq.Wall, par.Wall)
					}
					if s, p := seq.Machine.Stats(), par.Machine.Stats(); s != p {
						t.Errorf("machine stats:\nsequential %+v\nparallel   %+v", s, p)
					}
					if !reflect.DeepEqual(seq.Exact, par.Exact) {
						t.Error("exact execution counts differ")
					}
					if s, p := seq.Driver.TotalStats(), par.Driver.TotalStats(); s != p {
						t.Errorf("driver stats:\nsequential %+v\nparallel   %+v", s, p)
					}
					for cpu := range seq.Machine.CPUs {
						if s, p := seq.Driver.Stats(cpu), par.Driver.Stats(cpu); s != p {
							t.Errorf("driver cpu %d stats:\nsequential %+v\nparallel   %+v", cpu, s, p)
						}
					}
					if s, p := seq.Daemon.Stats(), par.Daemon.Stats(); s != p {
						t.Errorf("daemon stats:\nsequential %+v\nparallel   %+v", s, p)
					}
					if s, p := seq.Daemon.PeakMemoryBytes(), par.Daemon.PeakMemoryBytes(); s != p {
						t.Errorf("daemon peak memory: sequential %d, parallel %d", s, p)
					}
					if s, p := profileCounts(seq), profileCounts(par); !reflect.DeepEqual(s, p) {
						t.Errorf("profile contents differ: sequential %d keys, parallel %d keys", len(s), len(p))
					}
					if !reflect.DeepEqual(seq.Trace, par.Trace) {
						t.Errorf("sample traces differ: sequential %d samples, parallel %d", len(seq.Trace), len(par.Trace))
					}
				})
			}
		}
	}
}

// TestParallelFaultConservation checks the pipeline's conservation
// invariant — every generated sample is merged, lost, or crash-dropped,
// each loss counted — while the CPUs run on goroutines AND the daemon is
// being stalled and crashed under it. Parallel faulty runs are not
// byte-deterministic (the contract only covers fault-free runs), but the
// accounting identity must survive any interleaving.
func TestParallelFaultConservation(t *testing.T) {
	for _, simcpus := range []int{2, 4} {
		t.Run(fmt.Sprintf("simcpus=%d", simcpus), func(t *testing.T) {
			r, err := Run(Config{
				Workload:       "altavista",
				Mode:           sim.ModeCycles,
				Seed:           9,
				Scale:          0.2,
				CyclesPeriod:   fastPeriods,
				SimCPUs:        simcpus,
				DriverBuckets:  2, // tiny hash table evicts into the overflow buffers,
				DriverOverflow: 8, // and tiny buffers overflow into real loss under the stall
				DrainInterval:  50_000,
				// The long stall guarantees loss on every CPU regardless of
				// interleaving (refusals depend only on each CPU's own
				// clock); the crash lands after it ends.
				Fault: daemon.FaultPlan{
					Stalls:       []daemon.Window{{From: 100_000, To: 1_000_000}},
					CrashAt:      1_200_000,
					RestartDelay: 100_000,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			ms := r.Machine.Stats()
			ds := r.Driver.TotalStats()
			dm := r.Daemon.Stats()
			if ms.Samples != ds.Samples {
				t.Errorf("machine generated %d samples, driver recorded %d", ms.Samples, ds.Samples)
			}
			if ds.Lost == 0 {
				t.Errorf("fault plan cost no samples (driver %+v, daemon %+v); the scenario is too gentle to test conservation", ds, dm)
			}
			if dm.Crashes == 0 {
				t.Error("injected crash never fired")
			}
			var merged uint64
			for _, p := range r.Profiles() {
				merged += p.Total()
			}
			if ds.Samples != merged+ds.Lost+dm.CrashDropped {
				t.Errorf("conservation: recorded %d != merged %d + lost %d + crash-dropped %d",
					ds.Samples, merged, ds.Lost, dm.CrashDropped)
			}
		})
	}
}
