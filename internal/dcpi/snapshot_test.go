package dcpi

import (
	"reflect"
	"testing"

	"dcpi/internal/daemon"
	"dcpi/internal/driver"
	"dcpi/internal/sim"
)

func snapshotTestConfig() Config {
	return Config{
		Workload:     "compress",
		Scale:        0.02,
		Mode:         sim.ModeDefault,
		Seed:         7,
		CollectExact: true,
		TraceSamples: true,
	}
}

// A decoded snapshot must be indistinguishable from the live run through
// every accessor the evaluation harness uses: same summary text, same
// procedure rows, same per-instruction analysis, same stats snapshot.
func TestSnapshotRoundTrip(t *testing.T) {
	live, err := Run(snapshotTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeSnapshot(live)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := DecodeSnapshot(blob, live.Config)
	if err != nil {
		t.Fatal(err)
	}

	if warm.Wall != live.Wall || warm.NumCPUs != live.NumCPUs {
		t.Errorf("wall/ncpu = %d/%d, want %d/%d", warm.Wall, warm.NumCPUs, live.Wall, live.NumCPUs)
	}
	if warm.DriverStats != live.DriverStats {
		t.Errorf("driver stats = %+v, want %+v", warm.DriverStats, live.DriverStats)
	}
	if warm.DaemonStats != live.DaemonStats {
		t.Errorf("daemon stats = %+v, want %+v", warm.DaemonStats, live.DaemonStats)
	}
	if warm.MachineStats != live.MachineStats {
		t.Errorf("machine stats = %+v, want %+v", warm.MachineStats, live.MachineStats)
	}
	if live.MachineStats.Cycles == 0 || live.MachineStats.Instructions == 0 {
		t.Errorf("live run captured empty machine stats: %+v", live.MachineStats)
	}
	if warm.DaemonMemBytes != live.DaemonMemBytes || warm.DaemonPeakBytes != live.DaemonPeakBytes ||
		warm.DriverKernelBytes != live.DriverKernelBytes || warm.DBDiskBytes != live.DBDiskBytes {
		t.Error("memory/disk byte counters did not round-trip")
	}
	if !reflect.DeepEqual(warm.Trace, live.Trace) {
		t.Errorf("trace did not round-trip (%d vs %d samples)", len(warm.Trace), len(live.Trace))
	}
	if !reflect.DeepEqual(warm.Exact.Exec, live.Exact.Exec) || !reflect.DeepEqual(warm.Exact.Taken, live.Exact.Taken) {
		t.Error("exact counts did not round-trip")
	}
	if len(warm.Profiles()) != len(live.Profiles()) {
		t.Fatalf("profiles = %d, want %d", len(warm.Profiles()), len(live.Profiles()))
	}
	for i, lp := range live.Profiles() {
		wp := warm.Profiles()[i]
		if wp.ImagePath != lp.ImagePath || wp.Event != lp.Event || !reflect.DeepEqual(wp.Counts, lp.Counts) {
			t.Errorf("profile %d (%s/%v) did not round-trip", i, lp.ImagePath, lp.Event)
		}
	}

	// Rendered output paths: summary and procedure rows must match exactly.
	ls, err := live.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := warm.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ws, ls) {
		t.Error("Summarize() differs between live and rehydrated result")
	}
	if !reflect.DeepEqual(warm.ProcRows(), live.ProcRows()) {
		t.Error("ProcRows() differs between live and rehydrated result")
	}
	rows := live.ProcRows()
	if len(rows) > 0 {
		la, err := live.AnalyzeProc(rows[0].ImagePath, rows[0].Procedure)
		if err != nil {
			t.Fatal(err)
		}
		wa, err := warm.AnalyzeProc(rows[0].ImagePath, rows[0].Procedure)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wa, la) {
			t.Errorf("AnalyzeProc(%s) differs between live and rehydrated result", rows[0].Procedure)
		}
	}
}

// An ephemeral-DB run must report the database footprint it would have had
// with a real DBDir, while leaving nothing behind on disk and keeping the
// result serializable.
func TestEphemeralDBMeasuresDiskUsage(t *testing.T) {
	cfg := snapshotTestConfig()
	cfg.EphemeralDB = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DBDiskBytes <= 0 {
		t.Errorf("DBDiskBytes = %d, want > 0", res.DBDiskBytes)
	}
	if res.DB != nil {
		t.Error("ephemeral run leaked a live DB handle")
	}
	if len(res.Profiles()) == 0 {
		t.Error("ephemeral run lost its profiles")
	}
	if _, err := EncodeSnapshot(res); err != nil {
		t.Errorf("ephemeral result not serializable: %v", err)
	}
}

// PlaceholderResult must satisfy every accessor a section touches without
// panicking, since shard mode feeds placeholders through full experiment
// rendering code.
func TestPlaceholderResultIsRenderable(t *testing.T) {
	res, err := PlaceholderResult(snapshotTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Summarize(); err != nil {
		t.Errorf("Summarize: %v", err)
	}
	res.ProcRows()
	res.ProcSampleMap()
	res.TotalSamples(sim.EvCycles)
	if res.Machine == nil || res.Loader == nil {
		t.Fatal("placeholder missing machine/loader")
	}
}

// The snapshot codec hardcodes the field-by-field layout of driver.Stats
// and daemon.Stats. If either struct gains or loses a field, the encoding
// silently drops data — so pin the field counts here.
func TestSnapshotPinsStatsFields(t *testing.T) {
	if n := reflect.TypeOf(driver.Stats{}).NumField(); n != 11 {
		t.Errorf("driver.Stats has %d fields, snapshot codec encodes 11: update EncodeSnapshot/DecodeSnapshot and bump SnapshotVersion", n)
	}
	if n := reflect.TypeOf(daemon.Stats{}).NumField(); n != 12 {
		t.Errorf("daemon.Stats has %d fields, snapshot codec encodes 12: update EncodeSnapshot/DecodeSnapshot and bump SnapshotVersion", n)
	}
	if n := reflect.TypeOf(sim.Stats{}).NumField(); n != 11 {
		t.Errorf("sim.Stats has %d fields, snapshot codec encodes 11: update EncodeSnapshot/DecodeSnapshot and bump SnapshotVersion", n)
	}
}
