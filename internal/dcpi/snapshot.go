package dcpi

// The persistent run cache (internal/runcache) stores completed runs on
// disk keyed by their content key (runner.Key). This file is the codec
// between a *Result and that on-disk blob.
//
// A run is serialized as its measurement snapshot: wall cycles, machine
// size, driver/daemon statistics, exact execution counts, the raw sample
// trace, and every collected profile (reusing profiledb's delta-varint
// profile codec). Everything else a Result offers — symbolization, CFGs,
// the §6 analysis — is a pure function of that snapshot plus the
// workload's images, and the images are rebuilt deterministically from the
// workload definition at decode time, exactly the way OfflineView resolves
// an on-disk database. Decode therefore returns a Result whose accessors
// (Profiles, ProcRows, AnalyzeProc, Summarize, ...) produce byte-identical
// output to the freshly simulated run; only the live Machine/Driver/Daemon
// pointers are absent (the Machine is a non-running shell carrying the
// model and CPU count).
//
// Versioning: SnapshotVersion stamps the blob layout; bump it whenever the
// encoding below changes. Callers additionally mix SimVersion into the
// cache's version stamp so persisted results are invalidated wholesale
// when the simulator's semantics change (new stall model, new workload
// encoding, ...) even though the configuration key is unchanged.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"

	"dcpi/internal/atomicio"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
	"dcpi/internal/workload"
)

// SnapshotVersion identifies the blob layout written by EncodeSnapshot.
// v2 added the machine's ground-truth hardware statistics (MachineStats);
// v3 embeds the canonical hardware description (hw.Config.String) so a blob
// can never be rehydrated under a different machine than it was measured on.
const SnapshotVersion = 3

// SimVersion names the simulator generation whose results are on disk.
// Bump it whenever a change alters simulation output for an unchanged
// configuration (pipeline model, workload definitions, sampling logic);
// persisted cache entries from older generations then miss instead of
// resurrecting stale results.
const SimVersion = "sim-1"

// CacheStamp is the combined version stamp a persistent run cache should
// be opened with: it invalidates entries on either a blob-layout or a
// simulator-semantics change.
func CacheStamp() string {
	return fmt.Sprintf("%s/snap-%d", SimVersion, SnapshotVersion)
}

// EncodeSnapshot serializes a completed run's measurement snapshot.
func EncodeSnapshot(r *Result) ([]byte, error) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	w := &snapWriter{w: bw}

	w.uvarint(SnapshotVersion)
	w.str(r.Config.HW.String())
	w.varint(r.Wall)
	w.uvarint(uint64(r.NumCPUs))

	// Driver stats (order pinned; see TestSnapshotPinsStatsFields).
	ds := r.DriverStats
	w.uvarint(ds.Samples)
	w.uvarint(ds.Hits)
	w.uvarint(ds.Misses)
	w.uvarint(ds.Evictions)
	w.uvarint(ds.Inserts)
	w.uvarint(ds.FlushIPIs)
	w.uvarint(ds.BufSwaps)
	w.uvarint(ds.Direct)
	w.uvarint(ds.Lost)
	w.uvarint(ds.Deferred)
	w.varint(ds.CostCycles)
	w.uvarint(uint64(r.DriverKernelBytes))

	// Daemon stats.
	ms := r.DaemonStats
	w.uvarint(ms.Entries)
	w.uvarint(ms.Samples)
	w.uvarint(ms.Unknown)
	w.uvarint(ms.Drains)
	w.uvarint(ms.Merges)
	w.uvarint(ms.BuffersFull)
	w.uvarint(ms.Deferred)
	w.uvarint(ms.Crashes)
	w.uvarint(ms.Restarts)
	w.uvarint(ms.CrashDropped)
	w.varint(ms.CostCycles)
	w.uvarint(ms.Notifications)
	w.uvarint(uint64(r.DaemonMemBytes))
	w.uvarint(uint64(r.DaemonPeakBytes))
	w.varint(r.DBDiskBytes)

	// Machine hardware statistics (order pinned like the stats above).
	hs := r.MachineStats
	w.varint(hs.Cycles)
	w.uvarint(hs.Instructions)
	w.uvarint(hs.IssueGroups)
	w.uvarint(hs.Samples)
	w.uvarint(hs.ICacheMisses)
	w.uvarint(hs.DCacheMisses)
	w.uvarint(hs.ITBMisses)
	w.uvarint(hs.DTBMisses)
	w.uvarint(hs.Mispredicts)
	w.uvarint(hs.WBOverflows)
	w.uvarint(hs.Faults)

	// Exact execution counts, sorted by image ID for a canonical encoding.
	if r.Exact == nil {
		w.uvarint(0)
	} else {
		w.uvarint(1)
		ids := make([]uint32, 0, len(r.Exact.Exec))
		for id := range r.Exact.Exec {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.uvarint(uint64(len(ids)))
		for _, id := range ids {
			w.uvarint(uint64(id))
			exec := r.Exact.Exec[id]
			taken := r.Exact.Taken[id]
			w.uvarint(uint64(len(exec)))
			for _, n := range exec {
				w.uvarint(n)
			}
			w.uvarint(uint64(len(taken)))
			for _, n := range taken {
				w.uvarint(n)
			}
		}
	}

	// Raw sample trace (order preserved — ablations replay it).
	w.uvarint(uint64(len(r.Trace)))
	for _, s := range r.Trace {
		w.uvarint(uint64(s.CPU))
		w.uvarint(uint64(s.PID))
		w.uvarint(s.PC)
		w.uvarint(s.PC2)
		w.uvarint(uint64(s.Event))
		w.varint(s.Clock)
	}

	// Profiles, each length-prefixed in profiledb's own self-validating
	// format, in the order the run produced them.
	w.uvarint(uint64(len(r.profiles)))
	for _, p := range r.profiles {
		var pb bytes.Buffer
		if err := p.Write(&pb); err != nil {
			return nil, err
		}
		w.uvarint(uint64(pb.Len()))
		if w.err == nil {
			_, w.err = bw.Write(pb.Bytes())
		}
	}

	if w.err != nil {
		return nil, w.err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot reconstructs a run from its serialized snapshot. cfg must
// be the configuration the blob was keyed under (the caller looked the
// blob up by runner.Key(cfg), so it has the config in hand); the
// workload's images are rebuilt from it deterministically.
func DecodeSnapshot(blob []byte, cfg Config) (*Result, error) {
	r := &snapReader{r: bufio.NewReader(bytes.NewReader(blob))}

	if v := r.uvarint(); r.err == nil && v != SnapshotVersion {
		return nil, fmt.Errorf("dcpi: snapshot version %d, want %d", v, SnapshotVersion)
	}
	if hwSpec := r.str(); r.err == nil && hwSpec != cfg.HW.String() {
		return nil, fmt.Errorf("dcpi: snapshot measured on machine %q, config wants %q",
			hwSpec, cfg.HW.String())
	}
	res := &Result{Config: cfg}
	res.Wall = r.varint()
	res.NumCPUs = int(r.uvarint())

	ds := &res.DriverStats
	ds.Samples = r.uvarint()
	ds.Hits = r.uvarint()
	ds.Misses = r.uvarint()
	ds.Evictions = r.uvarint()
	ds.Inserts = r.uvarint()
	ds.FlushIPIs = r.uvarint()
	ds.BufSwaps = r.uvarint()
	ds.Direct = r.uvarint()
	ds.Lost = r.uvarint()
	ds.Deferred = r.uvarint()
	ds.CostCycles = r.varint()
	res.DriverKernelBytes = int(r.uvarint())

	ms := &res.DaemonStats
	ms.Entries = r.uvarint()
	ms.Samples = r.uvarint()
	ms.Unknown = r.uvarint()
	ms.Drains = r.uvarint()
	ms.Merges = r.uvarint()
	ms.BuffersFull = r.uvarint()
	ms.Deferred = r.uvarint()
	ms.Crashes = r.uvarint()
	ms.Restarts = r.uvarint()
	ms.CrashDropped = r.uvarint()
	ms.CostCycles = r.varint()
	ms.Notifications = r.uvarint()
	res.DaemonMemBytes = int(r.uvarint())
	res.DaemonPeakBytes = int(r.uvarint())
	res.DBDiskBytes = r.varint()

	hs := &res.MachineStats
	hs.Cycles = r.varint()
	hs.Instructions = r.uvarint()
	hs.IssueGroups = r.uvarint()
	hs.Samples = r.uvarint()
	hs.ICacheMisses = r.uvarint()
	hs.DCacheMisses = r.uvarint()
	hs.ITBMisses = r.uvarint()
	hs.DTBMisses = r.uvarint()
	hs.Mispredicts = r.uvarint()
	hs.WBOverflows = r.uvarint()
	hs.Faults = r.uvarint()

	if r.uvarint() == 1 {
		exact := &sim.Counts{Exec: map[uint32][]uint64{}, Taken: map[uint32][]uint64{}}
		nimg := int(r.uvarint())
		for i := 0; i < nimg && r.err == nil; i++ {
			id := uint32(r.uvarint())
			exec := make([]uint64, r.uvarint())
			for j := range exec {
				exec[j] = r.uvarint()
			}
			taken := make([]uint64, r.uvarint())
			for j := range taken {
				taken[j] = r.uvarint()
			}
			exact.Exec[id] = exec
			exact.Taken[id] = taken
		}
		res.Exact = exact
	}

	if n := int(r.uvarint()); n > 0 && r.err == nil {
		res.Trace = make([]sim.Sample, n)
		for i := range res.Trace {
			s := &res.Trace[i]
			s.CPU = int(r.uvarint())
			s.PID = uint32(r.uvarint())
			s.PC = r.uvarint()
			s.PC2 = r.uvarint()
			s.Event = sim.Event(r.uvarint())
			s.Clock = r.varint()
		}
	}

	nprof := int(r.uvarint())
	for i := 0; i < nprof && r.err == nil; i++ {
		plen := int(r.uvarint())
		if r.err != nil {
			break
		}
		pb := make([]byte, plen)
		if _, err := io.ReadFull(r.r, pb); err != nil {
			r.err = err
			break
		}
		p, err := profiledb.ReadProfile(bytes.NewReader(pb))
		if err != nil {
			r.err = err
			break
		}
		res.profiles = append(res.profiles, p)
	}
	if r.err != nil {
		return nil, fmt.Errorf("dcpi: decoding snapshot: %w", r.err)
	}

	l, m, err := rebuildImages(cfg, res.NumCPUs)
	if err != nil {
		return nil, err
	}
	res.Loader = l
	res.Machine = m
	return res, nil
}

// rebuildImages reconstructs the loader and a non-running machine shell
// for a configuration, mirroring what Run's setup phase produces: same
// workload, same scale, same machine size, so image IDs, symbols, code,
// and source lines all match the live run's.
func rebuildImages(cfg Config, ncpu int) (*loader.Loader, *sim.Machine, error) {
	spec, ok := workload.Get(cfg.Workload)
	if !ok {
		return nil, nil, fmt.Errorf("dcpi: unknown workload %q (have %v)", cfg.Workload, workload.Names())
	}
	if ncpu <= 0 {
		ncpu = spec.NumCPUs
		if cfg.NumCPUs > 0 {
			ncpu = cfg.NumCPUs
		}
	}
	kernel, abi := workload.Kernel()
	l := loader.New(kernel)
	if len(cfg.Rewrites) > 0 {
		// Apply the run's rewrites exactly as Run did, so a rehydrated
		// result's images (symbols, offsets, code) match what was profiled.
		l.Transform = func(im *image.Image) *image.Image {
			for _, lay := range cfg.Rewrites {
				if lay.Path == im.Path {
					rw, err := im.WithLayout(lay)
					if err != nil {
						return nil
					}
					return rw
				}
			}
			return nil
		}
	}
	// The shell carries the run's hardware description so rehydrated
	// consumers (Result.Model, the analysis) see the machine that was
	// actually measured.
	m := sim.NewMachine(sim.Options{HW: cfg.HW, NumCPUs: ncpu, ABI: abi, Loader: l})
	scale := cfg.Scale
	if scale == 0 {
		scale = 1
	}
	if err := spec.Setup(&workload.Ctx{Loader: l, Machine: m, Scale: scale}); err != nil {
		return nil, nil, err
	}
	return l, m, nil
}

// PlaceholderResult builds an empty but structurally complete run for a
// configuration: real images and machine shell, zero samples, zero stats,
// empty (non-nil) exact counts. Sharded evaluation (dcpieval -shard) hands
// these to experiment code for runs belonging to other shards, so sections
// can keep iterating — and keep submitting their remaining runs — while
// their rendered output is discarded.
func PlaceholderResult(cfg Config) (*Result, error) {
	l, m, err := rebuildImages(cfg, 0)
	if err != nil {
		return nil, err
	}
	return &Result{
		Config:  cfg,
		Loader:  l,
		Machine: m,
		NumCPUs: len(m.CPUs),
		Exact:   &sim.Counts{Exec: map[uint32][]uint64{}, Taken: map[uint32][]uint64{}},
	}, nil
}

// snapWriter/snapReader thread one sticky error through the varint codec.
type snapWriter struct {
	w   *bufio.Writer
	err error
}

func (s *snapWriter) uvarint(v uint64) {
	if s.err == nil {
		s.err = atomicio.WriteUvarint(s.w, v)
	}
}

func (s *snapWriter) varint(v int64) {
	if s.err == nil {
		s.err = atomicio.WriteVarint(s.w, v)
	}
}

func (s *snapWriter) str(v string) {
	s.uvarint(uint64(len(v)))
	if s.err == nil {
		_, s.err = s.w.WriteString(v)
	}
}

type snapReader struct {
	r   *bufio.Reader
	err error
}

func (s *snapReader) uvarint() uint64 {
	if s.err != nil {
		return 0
	}
	v, err := atomicio.ReadUvarint(s.r)
	s.err = err
	return v
}

func (s *snapReader) varint() int64 {
	if s.err != nil {
		return 0
	}
	v, err := atomicio.ReadVarint(s.r)
	s.err = err
	return v
}

func (s *snapReader) str() string {
	n := s.uvarint()
	if s.err != nil {
		return ""
	}
	if n > 1<<16 {
		s.err = fmt.Errorf("unreasonable string length %d", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(s.r, b); err != nil {
		s.err = err
		return ""
	}
	return string(b)
}
