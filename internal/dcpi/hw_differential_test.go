package dcpi

import (
	"bytes"
	"testing"

	"dcpi/internal/hw"
	"dcpi/internal/sim"
)

// TestDefaultHWConfigByteIdentical is the differential lock on the hw.Config
// refactor: a full profiled run with the zero HW must be byte-identical —
// wall clock, machine stats, driver stats, every profile, the whole encoded
// snapshot — to one with hw.Default() spelled out. Together with the golden
// Table 2 digest (which runs the zero config) this proves the refactor
// changed no default behaviour.
func TestDefaultHWConfigByteIdentical(t *testing.T) {
	base := Config{Workload: "compress", Scale: 0.05, Mode: sim.ModeDefault, Seed: 3,
		CollectExact: true}
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withHW := base
	withHW.HW = hw.Default()
	r2, err := Run(withHW)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Wall != r2.Wall {
		t.Fatalf("wall diverged: %d vs %d", r1.Wall, r2.Wall)
	}
	if r1.MachineStats != r2.MachineStats {
		t.Fatalf("machine stats diverged:\n %v\n %v", r1.MachineStats, r2.MachineStats)
	}
	b1, err := EncodeSnapshot(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeSnapshot(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("encoded snapshots diverged between zero HW and explicit default HW")
	}
}

// TestNonDefaultHWChangesTheMachine sanity-checks the other direction: a
// perturbed machine must actually produce different timing (otherwise the
// what-if engine would be diffing a config that never reached the
// simulator) while leaving the architectural instruction stream intact.
func TestNonDefaultHWChangesTheMachine(t *testing.T) {
	base := Config{Workload: "compress", Scale: 0.05, Mode: sim.ModeDefault, Seed: 3,
		CollectExact: true}
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.HW = hw.Default()
	slow.HW.Model.MemLat *= 2
	r2, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Wall <= r1.Wall {
		t.Fatalf("doubling MemLat did not slow the machine: %d vs %d", r2.Wall, r1.Wall)
	}
	if r2.Machine.Model.MemLat != 160 {
		t.Fatalf("result model MemLat = %d, want 160", r2.Machine.Model.MemLat)
	}
}

// TestSnapshotRejectsHWMismatch: a blob encoded under one machine must not
// decode under a different one (the cache key normally prevents this; the
// embedded spec is defense in depth against key collisions or hand-moved
// cache files).
func TestSnapshotRejectsHWMismatch(t *testing.T) {
	cfg := Config{Workload: "compress", Scale: 0.02, Mode: sim.ModeCycles, Seed: 1}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeSnapshot(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(blob, cfg); err != nil {
		t.Fatalf("same-machine decode failed: %v", err)
	}
	other := cfg
	other.HW = hw.Default()
	other.HW.ITBEntries = 24
	if _, err := DecodeSnapshot(blob, other); err == nil {
		t.Fatal("decode under a different machine succeeded")
	}
}

// TestInvalidHWRejectedByRun: Run must validate before simulating.
func TestInvalidHWRejectedByRun(t *testing.T) {
	cfg := Config{Workload: "compress", Scale: 0.02}
	cfg.HW = hw.Default()
	cfg.HW.ICache.Size = 12345 // not a power of two
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted an invalid hw config")
	}
}
