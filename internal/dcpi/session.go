// Package dcpi is the public face of the continuous-profiling
// infrastructure: it wires a simulated Alpha-like machine to the DCPI
// collection stack (device driver, daemon, profile database), runs
// workloads under a chosen profiling configuration, and exposes the
// analysis tools (dcpiprof/dcpicalc/dcpistats equivalents) over the
// collected profiles.
package dcpi

import (
	"fmt"
	"os"

	"dcpi/internal/daemon"
	"dcpi/internal/driver"
	"dcpi/internal/hw"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/obs"
	"dcpi/internal/par"
	"dcpi/internal/pipeline"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
	"dcpi/internal/workload"
)

// Config describes one profiled run.
type Config struct {
	// Workload names a registered workload (see workload.Names()).
	Workload string
	// Scale multiplies workload repeat counts (1.0 = default size).
	Scale float64
	// Mode is the profiling configuration: base (off), cycles, default,
	// or mux (paper §5).
	Mode sim.Mode
	// Seed controls page placement and sampling randomization; vary it to
	// model separate runs.
	Seed uint64
	// CyclesPeriod/EventPeriod override the sampling periods (zero values
	// use the paper defaults: 60K-64K for cycles).
	CyclesPeriod sim.PeriodSpec
	EventPeriod  sim.PeriodSpec
	// MuxInterval overrides the multiplexing rotation interval in cycles.
	MuxInterval int64
	// DBDir, when non-empty, stores profiles on disk there.
	DBDir string
	// EphemeralDB gives the run a real on-disk profile database in a
	// private temporary directory that is deleted when the run finishes:
	// the simulation behaves exactly like a DBDir run (the daemon merges to
	// disk on its merge interval, pays the same modeled costs, and the
	// database's final size is captured in Result.DBDiskBytes), but the
	// run's identity no longer depends on a caller-chosen path. That makes
	// disk-measuring experiments (Table 5) cacheable and shardable like
	// every other run. Ignored when DBDir is set.
	EphemeralDB bool
	// CollectExact additionally gathers exact execution counts (dcpix).
	CollectExact bool
	// MaxCycles bounds the run; 0 uses the workload's own bound.
	MaxCycles int64
	// NumCPUs overrides the workload's machine size when nonzero.
	NumCPUs int
	// SimCPUs controls simulation parallelism: 0 or 1 run the simulated
	// CPUs sequentially (the default), -1 runs them on goroutines up to the
	// free worker budget (see internal/par), and N > 1 forces up to N
	// goroutines regardless of the budget. Every setting produces
	// byte-identical results (see DESIGN.md), so this is an execution-
	// strategy knob, not part of the run's identity.
	SimCPUs int
	// PerProcessPIDs requests separate per-process profiles.
	PerProcessPIDs []uint32
	// TraceSamples records the raw sample stream in Result.Trace (used by
	// the §5.4 hash-table design-space ablation).
	TraceSamples bool
	// ZeroCostCollection makes the collection stack charge no cycles to
	// the simulated machine: pure sampling for the analysis-accuracy
	// experiments (Figures 8-10), where dense experimental sampling
	// periods would otherwise perturb what is being measured.
	ZeroCostCollection bool
	// DoubleSample enables the paper's §7 double-sampling prototype:
	// paired interrupts that capture two PCs along an execution path,
	// yielding direct edge samples.
	DoubleSample bool
	// InterpretBranches enables the paper's §7 instruction-interpretation
	// prototype: sampled conditional branches are decoded and their
	// direction recorded as edge samples (no second interrupt needed).
	InterpretBranches bool
	// MetaSamples enables the footnote-2 "meta" method: samples landing
	// inside the interrupt handler are attributed to the handler's own
	// kernel symbol (perfcount_intr) instead of being a blind spot.
	MetaSamples bool
	// DriverBuckets/DriverOverflow override the driver's hash-table bucket
	// count and per-overflow-buffer capacity (zero keeps the defaults).
	// Shrinking the overflow buffers is how the fault experiments provoke
	// loss without unrealistically long stalls.
	DriverBuckets  int
	DriverOverflow int
	// DrainInterval/MergeInterval override the daemon's periodic drain and
	// disk-merge intervals in cycles (zero keeps the defaults).
	DrainInterval int64
	MergeInterval int64
	// Fault injects daemon faults (stalls, drain lag, crashes) into the
	// run; the zero value is fault-free and leaves output unchanged.
	Fault daemon.FaultPlan
	// Rewrites substitutes re-laid-out code for images as the workload loads
	// them, keyed by image path (paper §7: continuous optimization feeds
	// profiles to a binary rewriter and the modified image is what runs).
	// Each layout is applied through image.WithLayout at registration time,
	// so every process maps the rewritten image and all samples attribute to
	// the new layout. A layout that fails to apply aborts the run.
	Rewrites []image.Layout
	// Obs attaches the optional self-observability layer (internal/obs):
	// the collection stack publishes its Table 3-5 self-measurements into
	// Obs.Registry and its pipeline events into Obs.Tracer. The zero value
	// leaves the run byte-identical to an uninstrumented one.
	Obs obs.Hooks
	// HW perturbs the simulated hardware (cache geometries, TLB and
	// write-buffer shapes, issue width, timing model). The zero value is
	// the default 21164 machine and — like Fault — keeps the run's content
	// key byte-identical to a pre-HW-config run, so existing cache entries
	// survive. Non-default machines join runner.Key via hw.Config.String.
	HW hw.Config
}

// Result is a completed run.
//
// The value-typed fields below the pointer block are the run's measurement
// snapshot: everything the evaluation suite reads from a finished run,
// captured by Run after the final flush. They — not the live Machine/
// Driver/Daemon pointers — are what the persistent run cache serializes
// (see snapshot.go), so a Result rehydrated from disk carries the same
// numbers a fresh simulation would. Analysis consumers (ProcRows,
// AnalyzeProc, ...) additionally use Loader and Machine.Model, both of
// which are rebuilt deterministically from the workload definition when a
// cached result is decoded, the same way OfflineView resolves a database
// against a workload's images.
type Result struct {
	Config   Config
	Wall     int64 // wall-clock cycles (max over CPUs)
	Machine  *sim.Machine
	Loader   *loader.Loader
	Driver   *driver.Driver // nil for rehydrated results
	Daemon   *daemon.Daemon // nil for rehydrated results
	DB       *profiledb.DB  // nil for rehydrated and EphemeralDB results
	Exact    *sim.Counts
	Trace    []sim.Sample // raw samples, when Config.TraceSamples
	profiles []*profiledb.Profile

	// Measurement snapshot (survives serialization; see above).
	NumCPUs           int          // simulated machine size
	DriverStats       driver.Stats // aggregate over CPUs, at end of run
	DriverKernelBytes int          // pinned kernel memory (driver tables)
	DaemonStats       daemon.Stats
	DaemonMemBytes    int   // daemon resident data at end of run
	DaemonPeakBytes   int   // peak daemon resident data
	DBDiskBytes       int64 // profile-database size (DBDir or EphemeralDB runs)
	// MachineStats is the simulator's ground-truth hardware view of the run
	// (cycles, instructions, cache/TLB misses, mispredicts), summed over
	// CPUs. The optimization loop (cmd/dcpiopt) reads it to measure what a
	// rewrite actually changed, independent of sampling noise.
	MachineStats sim.Stats
}

// collector adapts the driver+daemon pair to the machine's sample sink.
// The trace is buffered per CPU — each simulated CPU appends only to its
// own slice, so tracing stays race-free and deterministic when the CPUs run
// on goroutines — and concatenated in CPU order after the run.
type collector struct {
	drv    *driver.Driver
	dmn    *daemon.Daemon
	traces [][]sim.Sample // nil when not tracing
}

func (c *collector) Sample(s sim.Sample) int64 {
	if c.traces != nil {
		c.traces[s.CPU] = append(c.traces[s.CPU], s)
	}
	if s.Event == sim.EvEdge {
		return c.drv.RecordEdgeAt(s.CPU, s.PID, s.PC, s.PC2, s.Clock)
	}
	return c.drv.RecordAt(s.CPU, s.PID, s.PC, s.Event, s.Clock)
}

func (c *collector) Poll(cpu int, clock int64) int64 {
	return c.dmn.Poll(cpu, clock)
}

// ParseSimCPUs parses a -simcpus flag value into Config.SimCPUs: "auto"
// means budget-limited parallel simulation (-1), and an integer N forces up
// to N simulation goroutines (0 and 1 mean sequential).
func ParseSimCPUs(s string) (int, error) {
	if s == "auto" {
		return -1, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 0 {
		return 0, fmt.Errorf("bad -simcpus value %q (want \"auto\" or a non-negative integer)", s)
	}
	return n, nil
}

// Run executes one profiled workload run.
func Run(cfg Config) (*Result, error) {
	spec, ok := workload.Get(cfg.Workload)
	if !ok {
		return nil, fmt.Errorf("dcpi: unknown workload %q (have %v)", cfg.Workload, workload.Names())
	}
	if err := cfg.HW.Validate(); err != nil {
		return nil, fmt.Errorf("dcpi: %w", err)
	}
	ncpu := spec.NumCPUs
	if cfg.NumCPUs > 0 {
		ncpu = cfg.NumCPUs
	}

	kernel, abi := workload.Kernel()
	l := loader.New(kernel)
	var rewriteErr error
	if len(cfg.Rewrites) > 0 {
		l.Transform = func(im *image.Image) *image.Image {
			for _, lay := range cfg.Rewrites {
				if lay.Path != im.Path {
					continue
				}
				rw, err := im.WithLayout(lay)
				if err != nil {
					if rewriteErr == nil {
						rewriteErr = err
					}
					return nil
				}
				return rw
			}
			return nil
		}
	}

	var (
		drv            *driver.Driver
		dmn            *daemon.Daemon
		db             *profiledb.DB
		sink           sim.Sink
		collectorTrace *collector
		err            error
	)
	// An ephemeral database lives in a private temp directory for exactly
	// this run: same simulation semantics as a DBDir run, but the path never
	// becomes part of the run's identity (see Config.EphemeralDB).
	dbDir := cfg.DBDir
	var ephemeral string
	if dbDir == "" && cfg.EphemeralDB && cfg.Mode != sim.ModeOff {
		ephemeral, err = os.MkdirTemp("", "dcpi-ephdb-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(ephemeral)
		dbDir = ephemeral
	}
	if cfg.Mode != sim.ModeOff {
		if dbDir != "" {
			db, err = profiledb.Open(dbDir)
			if err != nil {
				return nil, err
			}
		}
		drv = driver.New(driver.Config{
			NumCPUs:         ncpu,
			Buckets:         cfg.DriverBuckets,
			OverflowEntries: cfg.DriverOverflow,
			ZeroCost:        cfg.ZeroCostCollection,
			Obs:             cfg.Obs,
		})
		dcfg := daemon.Config{
			DB:             db,
			DrainInterval:  cfg.DrainInterval,
			MergeInterval:  cfg.MergeInterval,
			PerProcessPIDs: cfg.PerProcessPIDs,
			Fault:          cfg.Fault,
			Obs:            cfg.Obs,
		}
		if cfg.ZeroCostCollection {
			dcfg.CostPerEntry = -1
		}
		dmn = daemon.New(dcfg, drv)
		l.Notify = dmn.HandleNotification
		l.NotifyExit = dmn.NoteExit
		col := &collector{drv: drv, dmn: dmn}
		sink = col
		collectorTrace = col
	}

	m := sim.NewMachine(sim.Options{
		HW:      cfg.HW,
		NumCPUs: ncpu,
		ABI:     abi,
		Loader:  l,
		Seed:    cfg.Seed,
		Profile: sim.ProfileConfig{
			Mode:              cfg.Mode,
			Sink:              sink,
			CyclesPeriod:      cfg.CyclesPeriod,
			EventPeriod:       cfg.EventPeriod,
			MuxInterval:       cfg.MuxInterval,
			Seed:              uint32(cfg.Seed),
			DoubleSample:      cfg.DoubleSample,
			InterpretBranches: cfg.InterpretBranches,
			MetaSamples:       cfg.MetaSamples,
		},
		CollectExact: cfg.CollectExact,
		SimWorkers:   cfg.SimCPUs,
	})

	if cfg.TraceSamples && collectorTrace != nil {
		collectorTrace.traces = make([][]sim.Sample, ncpu)
	}

	ctx := &workload.Ctx{Loader: l, Machine: m, Scale: cfg.Scale}
	if err := spec.Setup(ctx); err != nil {
		return nil, err
	}
	if rewriteErr != nil {
		return nil, fmt.Errorf("dcpi: rewrite failed: %w", rewriteErr)
	}

	maxCycles := spec.MaxCycles
	if cfg.MaxCycles > 0 {
		maxCycles = cfg.MaxCycles
	}
	// This run occupies one worker slot for its own goroutine; the machine
	// borrows extra slots for per-CPU fan-out only from what remains, so
	// run-level (-j) and CPU-level (-simcpus) parallelism never multiply.
	par.Default().Acquire(1)
	wall := m.Run(maxCycles)
	par.Default().Release(1)

	var trace []sim.Sample
	if collectorTrace != nil && collectorTrace.traces != nil {
		for _, t := range collectorTrace.traces {
			trace = append(trace, t...)
		}
	}

	res := &Result{
		Config:  cfg,
		Wall:    wall,
		Machine: m,
		Loader:  l,
		Driver:  drv,
		Daemon:  dmn,
		DB:      db,
		Exact:   m.Exact,
		Trace:   trace,
	}
	if dmn != nil {
		if db != nil {
			// Keep an in-memory view for the tools, then merge to disk.
			if err := dmn.Flush(); err != nil {
				return nil, err
			}
			if err := db.WriteMeta(profiledb.Meta{
				Workload:     cfg.Workload,
				Mode:         cfg.Mode.String(),
				CyclesPeriod: res.AvgCyclesPeriod(),
				EventPeriod:  res.AvgEventPeriod(),
				WallCycles:   wall,
				Seed:         cfg.Seed,
				Scale:        cfg.Scale,
				ImageInsts:   res.ExactImageInsts(),
			}); err != nil {
				return nil, err
			}
			res.profiles, err = db.Profiles()
			if err != nil {
				return nil, err
			}
		} else {
			if err := dmn.Flush(); err != nil {
				return nil, err
			}
			res.profiles = dmn.Profiles()
		}
	}
	if reg := cfg.Obs.Registry; reg != nil {
		m.PublishMetrics(reg)
		if drv != nil {
			drv.PublishMetrics(reg)
		}
		if dmn != nil {
			dmn.PublishMetrics(reg)
		}
		if db != nil {
			db.PublishMetrics(reg)
		}
	}

	// Capture the measurement snapshot (the serializable view of the run;
	// see the Result comment) after every flush and merge has settled.
	res.NumCPUs = ncpu
	res.MachineStats = m.Stats()
	if drv != nil {
		res.DriverStats = drv.TotalStats()
		res.DriverKernelBytes = drv.KernelMemoryBytes()
	}
	if dmn != nil {
		res.DaemonStats = dmn.Stats()
		res.DaemonMemBytes = dmn.MemoryBytes()
		res.DaemonPeakBytes = dmn.PeakMemoryBytes()
	}
	if db != nil {
		res.DBDiskBytes, err = db.DiskUsage()
		if err != nil {
			return nil, err
		}
	}
	if ephemeral != "" {
		// The directory is deleted on return; don't hand out a dangling DB.
		res.DB = nil
	}
	return res, nil
}

// Profiles returns every collected profile (per image and event).
func (r *Result) Profiles() []*profiledb.Profile { return r.profiles }

// Profile returns the profile for one image path and event (nil if the
// image was never sampled for that event).
func (r *Result) Profile(imagePath string, ev sim.Event) *profiledb.Profile {
	for _, p := range r.profiles {
		if p.ImagePath == imagePath && p.Event == ev {
			return p
		}
	}
	return nil
}

// Model returns the machine model the run used (shared with the analysis).
func (r *Result) Model() pipeline.Model { return r.Machine.Model }

// ExactImageInsts sums the exact execution counts per image path (nil
// unless the run collected exact counts). Written into the epoch metadata
// so fleet-level queries can turn attributed cycles into a true CPI.
func (r *Result) ExactImageInsts() map[string]uint64 {
	if r.Exact == nil || r.Loader == nil || len(r.Exact.Exec) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(r.Exact.Exec))
	for id, exec := range r.Exact.Exec {
		im, ok := r.Loader.Image(id)
		if !ok {
			continue
		}
		var n uint64
		for _, c := range exec {
			n += c
		}
		if n > 0 {
			out[im.Path] += n
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// AvgCyclesPeriod returns the mean sampling period of the run.
func (r *Result) AvgCyclesPeriod() float64 {
	p := r.Config.CyclesPeriod
	if p.Base == 0 {
		p = sim.DefaultCyclesPeriod
	}
	return float64(p.Base) + float64(p.Spread)/2
}

// AvgEventPeriod returns the mean event-counter period of the run.
func (r *Result) AvgEventPeriod() float64 {
	p := r.Config.EventPeriod
	if p.Base == 0 {
		p = sim.DefaultEventPeriod
	}
	return float64(p.Base) + float64(p.Spread)/2
}
