package dcpi

import (
	"path/filepath"
	"testing"

	"dcpi/internal/analysis"
	"dcpi/internal/cfg"
	"dcpi/internal/daemon"
	"dcpi/internal/sim"
)

func TestDoubleSamplingProducesEdgeProfiles(t *testing.T) {
	r, err := Run(Config{
		Workload:     "compress",
		Mode:         sim.ModeCycles,
		Seed:         11,
		Scale:        0.1,
		CyclesPeriod: fastPeriods,
		DoubleSample: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	edge := r.Profile("/usr/bin/compress", sim.EvEdge)
	if edge == nil || edge.Total() == 0 {
		t.Fatal("no edge samples collected")
	}
	// Every edge key unpacks to in-image offsets, and the hot loop's back
	// edge should be represented: some pair with to < from.
	im, _ := r.Loader.ImageByPath("/usr/bin/compress")
	var backEdges uint64
	for key, n := range edge.Counts {
		from, to := daemon.UnpackEdge(key)
		if from >= im.Size() || to >= im.Size() {
			t.Fatalf("edge key out of image: %#x -> %#x", from, to)
		}
		if to < from {
			backEdges += n
		}
	}
	if backEdges == 0 {
		t.Error("no back-edge pairs in a loopy program")
	}
	// The analysis should pick them up.
	pa, err := r.AnalyzeProc("/usr/bin/compress", "main")
	if err != nil {
		t.Fatal(err)
	}
	if pa.EdgeSampleCounts == nil {
		t.Fatal("analysis did not receive edge samples")
	}
	var attributed uint64
	for _, n := range pa.EdgeSampleCounts {
		attributed += n
	}
	if attributed == 0 {
		t.Error("no edge samples attributed to CFG edges")
	}
}

func TestDoubleSamplingEdgeAccuracy(t *testing.T) {
	// Weighted edge-frequency accuracy with and without the §7 prototype.
	// Rare edges stay noisy either way (few pair samples — a Poisson
	// effect the real system would share), so the assertion is on the
	// execution-weighted aggregate: double sampling must not degrade it.
	run := func(ds bool) (float64, float64) {
		r, err := Run(Config{
			Workload:           "compress",
			Mode:               sim.ModeCycles,
			Seed:               21,
			Scale:              0.15,
			CyclesPeriod:       sim.PeriodSpec{Base: 1024, Spread: 256},
			DoubleSample:       ds,
			CollectExact:       true,
			ZeroCostCollection: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		pa, err := r.AnalyzeProc("/usr/bin/compress", "main")
		if err != nil {
			t.Fatal(err)
		}
		im, _ := r.Loader.ImageByPath("/usr/bin/compress")
		exact := r.Exact.Exec[im.ID]
		taken := r.Exact.Taken[im.ID]
		g := pa.Graph
		var within, total float64
		for ei, e := range g.Edges {
			if e.From < 0 || e.To < 0 {
				continue
			}
			last := g.Blocks[e.From].End - 1
			var truth float64
			switch {
			case pa.Insts[last].Inst.Op.IsCondBranch() && e.Kind == cfg.EdgeTaken:
				truth = float64(taken[last])
			case pa.Insts[last].Inst.Op.IsCondBranch() && e.Kind == cfg.EdgeFallthrough:
				truth = float64(exact[last]) - float64(taken[last])
			default:
				truth = float64(exact[last])
			}
			if truth == 0 {
				continue
			}
			est := pa.EdgeFreq[ei] * pa.Period
			errv := est/truth - 1
			if errv < 0 {
				errv = -errv
			}
			total += truth
			if errv <= 0.10 {
				within += truth
			}
		}
		return within, total
	}
	withinPlain, totalPlain := run(false)
	withinDS, totalDS := run(true)
	if totalPlain == 0 || totalDS == 0 {
		t.Fatal("no edges measured")
	}
	fracPlain := withinPlain / totalPlain
	fracDS := withinDS / totalDS
	t.Logf("edges within 10%%: plain %.1f%%, double-sampled %.1f%%", 100*fracPlain, 100*fracDS)
	if fracDS < fracPlain-0.10 {
		t.Errorf("double sampling degraded weighted edge accuracy: %.2f vs %.2f", fracDS, fracPlain)
	}
}

func TestOfflineView(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	r, err := Run(Config{
		Workload:     "mccalpin-assign",
		Mode:         sim.ModeDefault,
		Seed:         5,
		Scale:        0.1,
		CyclesPeriod: fastPeriods,
		DBDir:        dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	liveTotal := r.TotalSamples(sim.EvCycles)
	if liveTotal == 0 {
		t.Fatal("no samples")
	}

	view, err := OpenView(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if view.Meta.Workload != "mccalpin-assign" || view.Meta.Mode != "default" {
		t.Errorf("meta = %+v", view.Meta)
	}
	off := view.Result()
	if got := off.TotalSamples(sim.EvCycles); got != liveTotal {
		t.Errorf("offline samples = %d, live = %d", got, liveTotal)
	}
	// The offline analysis should work and agree on the headline CPI.
	livePA, err := r.AnalyzeProc("/bin/mccalpin", "copyloop")
	if err != nil {
		t.Fatal(err)
	}
	offPA, err := view.AnalyzeOffline("/bin/mccalpin", "copyloop")
	if err != nil {
		t.Fatal(err)
	}
	if offPA.BestCaseCPI != livePA.BestCaseCPI {
		t.Errorf("best-case CPI: offline %v vs live %v", offPA.BestCaseCPI, livePA.BestCaseCPI)
	}
	diff := offPA.ActualCPI - livePA.ActualCPI
	if diff < -0.1 || diff > 0.1 {
		t.Errorf("actual CPI: offline %v vs live %v", offPA.ActualCPI, livePA.ActualCPI)
	}
	// Rows symbolize offline too.
	rows := off.ProcRows()
	if len(rows) == 0 || rows[0].Procedure == "<unknown>" {
		t.Errorf("offline rows = %+v", rows)
	}
}

func TestOpenViewErrors(t *testing.T) {
	if _, err := OpenView(t.TempDir(), ""); err == nil {
		t.Error("view without metadata or workload should fail")
	}
	if _, err := OpenView(t.TempDir(), "no-such-workload"); err == nil {
		t.Error("unknown workload should fail")
	}
	if _, err := SetupImages("nope"); err == nil {
		t.Error("SetupImages with unknown workload should fail")
	}
	if l, err := SetupImages("compress"); err != nil || l == nil {
		t.Errorf("SetupImages(compress) = %v, %v", l, err)
	}
}

func TestMetaSamplesAttributeHandlerTime(t *testing.T) {
	// A CYCLES overflow can only land inside the handler when some *other*
	// interrupt's handler is running (a single counter's overflows are a
	// full period apart), so drive dense IMISS interrupts alongside
	// CYCLES. The meta method (paper footnote 2) must attribute those
	// deliveries to the handler's own kernel symbol.
	cfg := Config{
		Workload:     "vortex",
		Mode:         sim.ModeDefault,
		Seed:         31,
		Scale:        0.1,
		CyclesPeriod: sim.PeriodSpec{Base: 1024, Spread: 128},
		EventPeriod:  sim.PeriodSpec{Base: 8, Spread: 2},
		MetaSamples:  true,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var handler uint64
	for _, row := range r.ProcRows() {
		if row.Procedure == "perfcount_intr" {
			handler = row.Counts[sim.EvCycles]
		}
	}
	if handler == 0 {
		t.Fatal("no meta samples at perfcount_intr")
	}
	total := r.TotalSamples(sim.EvCycles)
	if share := float64(handler) / float64(total); share > 0.9 {
		t.Errorf("handler share = %.2f of %d samples, implausibly high", share, total)
	}

	// Without the meta method, no samples hit the handler symbol.
	cfg.MetaSamples = false
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r2.ProcRows() {
		if row.Procedure == "perfcount_intr" && row.Counts[sim.EvCycles] > 0 {
			t.Error("handler samples without the meta method")
		}
	}
}

func TestUnknownSampleRateLow(t *testing.T) {
	// Paper §4.3.2: "the number of unknown samples is considerably smaller
	// than 1%; a typical fraction ... is 0.05%".
	for _, wl := range []string{"x11perf", "timeshare", "gcc"} {
		r, err := Run(Config{
			Workload:     wl,
			Mode:         sim.ModeCycles,
			Seed:         17,
			Scale:        0.1,
			CyclesPeriod: fastPeriods,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rate := r.Daemon.Stats().UnknownRate(); rate > 0.01 {
			t.Errorf("%s: unknown sample rate = %.3f%%, want < 1%%", wl, 100*rate)
		}
	}
}

func TestDaemonReapsExitedProcesses(t *testing.T) {
	r, err := Run(Config{
		Workload:     "gcc", // 14 processes, all exit
		Mode:         sim.ModeCycles,
		Seed:         41,
		Scale:        0.05,
		CyclesPeriod: fastPeriods,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the final flush every process has exited and been reaped: the
	// loadmap memory should be gone while the profiles remain.
	if got := r.Daemon.MemoryBytes(); got != 0 && len(r.Profiles()) == 0 {
		t.Errorf("daemon memory = %d with no profiles", got)
	}
	// Classified samples survived reaping.
	if r.TotalSamples(sim.EvCycles) == 0 {
		t.Fatal("no samples")
	}
	if rate := r.Daemon.Stats().UnknownRate(); rate > 0.01 {
		t.Errorf("unknown rate = %.3f after reaping (reap must not precede classification)", rate)
	}
}

func TestDTBMissEventRulesOutDTB(t *testing.T) {
	// In mux mode the DTBMISS event rotates in; a loop whose working set
	// fits the DTB should then have DTB ruled out as a culprit, while a
	// page-walking loop keeps it (§3.2's dcpicalc behaviour).
	run := func(wl string) (hasDTBCulprit bool, procs int) {
		r, err := Run(Config{
			Workload:     wl,
			Mode:         sim.ModeMux,
			Seed:         13,
			Scale:        0.15,
			CyclesPeriod: sim.PeriodSpec{Base: 1024, Spread: 256},
			EventPeriod:  sim.PeriodSpec{Base: 16, Spread: 4},
			MuxInterval:  4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.ProcRows() {
			if row.Counts[sim.EvCycles] < 50 {
				continue
			}
			pa, err := r.AnalyzeProc(row.ImagePath, row.Procedure)
			if err != nil {
				continue
			}
			procs++
			for i := range pa.Insts {
				for _, c := range pa.Insts[i].Culprits {
					if c.Cause == analysis.CauseDTB {
						hasDTBCulprit = true
					}
				}
			}
		}
		return hasDTBCulprit, procs
	}
	// compress: ~96KB of data across a handful of pages, all DTB-resident.
	dtbCompress, n1 := run("compress")
	// li: pointer chasing across a 64KB list — fits 8 pages... also DTB
	// resident; use mccalpin-assign: 2.25MB arrays = hundreds of pages,
	// far beyond the 64-entry DTB.
	dtbStream, n2 := run("mccalpin-assign")
	if n1 == 0 || n2 == 0 {
		t.Fatal("no procedures analyzed")
	}
	if dtbCompress {
		t.Error("compress: DTB culprit not ruled out despite zero DTBMISS events")
	}
	if !dtbStream {
		t.Error("streaming copy: DTB culprit missing despite real DTB misses")
	}
}
