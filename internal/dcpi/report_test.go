package dcpi

import (
	"bytes"
	"strings"
	"testing"

	"dcpi/internal/sim"
)

func TestFormatProcList(t *testing.T) {
	r, err := Run(Config{
		Workload:     "x11perf",
		Mode:         sim.ModeDefault,
		Seed:         6,
		Scale:        0.1,
		CyclesPeriod: fastPeriods,
		EventPeriod:  sim.PeriodSpec{Base: 64, Spread: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	FormatProcList(&buf, r, 5)
	out := buf.String()
	for _, want := range []string{"Total samples for event type cycles", "imiss", "procedure", "image", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines > 12 {
		t.Errorf("maxRows not honored: %d lines", lines)
	}
}

func TestFormatCalcAndSummary(t *testing.T) {
	r := runWL(t, "mccalpin-assign", sim.ModeCycles, 6, 0.2)
	pa, err := r.AnalyzeProc("/bin/mccalpin", "copyloop")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	FormatCalc(&buf, pa)
	out := buf.String()
	for _, want := range []string{"Best-case", "Actual", "(dual issue)", "stq", "ldq"} {
		if !strings.Contains(out, want) {
			t.Errorf("calc output missing %q", want)
		}
	}
	// Write-buffer culprit letter should appear in bubbles.
	if !strings.Contains(out, "w") {
		t.Error("no write-buffer bubble in copy loop listing")
	}

	buf.Reset()
	FormatSummary(&buf, pa)
	out = buf.String()
	for _, want := range []string{"Write buffer", "Subtotal dynamic", "Subtotal static",
		"Execution", "Total tallied", "Net sampling error"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeProgram(t *testing.T) {
	r := runWL(t, "wave5", sim.ModeCycles, 6, 0.2)
	ps, err := r.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Procedures < 5 {
		t.Fatalf("procedures = %d", ps.Procedures)
	}
	if ps.TotalSamples == 0 {
		t.Fatal("no samples aggregated")
	}
	covered := ps.Execution + ps.DynTotal + ps.SubtotalStatic()
	if covered < 0.85 || covered > 1.15 {
		t.Errorf("aggregate accounting = %.2f", covered)
	}
	// wave5 is memory-bound: the D-cache share should be substantial.
	if ps.DynMax[2] < 0.1 { // CauseDCache
		t.Errorf("D-cache max share = %v, want substantial", ps.DynMax[2])
	}
	var buf bytes.Buffer
	FormatProgramSummary(&buf, ps)
	if !strings.Contains(buf.String(), "Whole-program summary") {
		t.Error("program summary formatting")
	}
}

func TestFormatDOT(t *testing.T) {
	r := runWL(t, "wave5", sim.ModeCycles, 6, 0.2)
	pa, err := r.AnalyzeProc("/usr/bin/wave5", "smooth_")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	FormatDOT(&buf, pa)
	out := buf.String()
	for _, want := range []string{"digraph", "entry ->", "-> exit", "label=", "b0"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// The hot loop block should be emphasized and its back edge labeled
	// with a nonzero frequency.
	if !strings.Contains(out, "fillcolor=lightgray") {
		t.Error("hot block not emphasized")
	}
}

func TestFormatStatsOutput(t *testing.T) {
	runs := []map[string]uint64{
		{"a": 10, "b": 100},
		{"a": 30, "b": 105},
	}
	rows := StatsAcrossRuns(runs)
	var buf bytes.Buffer
	FormatStats(&buf, rows, []uint64{110, 135}, 0)
	out := buf.String()
	for _, want := range []string{"TOTAL 245", "range%", "std-dev", "procedure"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}
