package dcpi

import (
	"fmt"

	"dcpi/internal/analysis"
	"dcpi/internal/loader"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
	"dcpi/internal/workload"
)

// SetupImages builds a workload's loader (kernel, executables, shared
// libraries, processes) without running anything — offline tools use it to
// symbolize profiles read from a database.
func SetupImages(workloadName string) (*loader.Loader, error) {
	spec, ok := workload.Get(workloadName)
	if !ok {
		return nil, fmt.Errorf("dcpi: unknown workload %q (have %v)", workloadName, workload.Names())
	}
	kernel, abi := workload.Kernel()
	l := loader.New(kernel)
	m := sim.NewMachine(sim.Options{NumCPUs: spec.NumCPUs, ABI: abi, Loader: l})
	if err := spec.Setup(&workload.Ctx{Loader: l, Machine: m, Scale: 0.01}); err != nil {
		return nil, err
	}
	return l, nil
}

// OfflineView resolves profiles from an on-disk database against a
// workload's images, offering the same tool surface as a live Result.
type OfflineView struct {
	Loader   *loader.Loader
	DB       *profiledb.DB
	Meta     profiledb.Meta
	profiles []*profiledb.Profile
}

// OpenView loads a database and the images of the workload recorded in its
// metadata (or workloadName if the database has none).
func OpenView(dbDir, workloadName string) (*OfflineView, error) {
	db, err := profiledb.Open(dbDir)
	if err != nil {
		return nil, err
	}
	meta, ok, err := db.Meta()
	if err != nil {
		return nil, err
	}
	if !ok {
		if workloadName == "" {
			return nil, fmt.Errorf("dcpi: database %s has no metadata; pass a workload name", dbDir)
		}
		meta = profiledb.Meta{Workload: workloadName, CyclesPeriod: 62464, EventPeriod: 15360}
	}
	if workloadName != "" {
		meta.Workload = workloadName
	}
	l, err := SetupImages(meta.Workload)
	if err != nil {
		return nil, err
	}
	profiles, err := db.Profiles()
	if err != nil {
		return nil, err
	}
	return &OfflineView{Loader: l, DB: db, Meta: meta, profiles: profiles}, nil
}

// Result adapts the view to the live-run tool surface.
func (v *OfflineView) Result() *Result {
	mode := sim.ModeCycles
	for m := sim.ModeOff; m <= sim.ModeMux; m++ {
		if m.String() == v.Meta.Mode {
			mode = m
		}
	}
	return &Result{
		Config: Config{
			Workload:     v.Meta.Workload,
			Mode:         mode,
			CyclesPeriod: sim.PeriodSpec{Base: int64(v.Meta.CyclesPeriod), Spread: 1},
			EventPeriod:  sim.PeriodSpec{Base: int64(v.Meta.EventPeriod), Spread: 1},
		},
		Wall:     v.Meta.WallCycles,
		Loader:   v.Loader,
		DB:       v.DB,
		profiles: v.profiles,
		Machine:  offlineMachine(v.Loader),
	}
}

// offlineMachine builds a non-running machine so Result.Model() works.
func offlineMachine(l *loader.Loader) *sim.Machine {
	return sim.NewMachine(sim.Options{Loader: l})
}

// AnalyzeOffline runs the §6 analysis for one procedure using database
// profiles.
func (v *OfflineView) AnalyzeOffline(imagePath, procName string) (*analysis.ProcAnalysis, error) {
	return v.Result().AnalyzeProc(imagePath, procName)
}
