package dcpi

import (
	"testing"

	"dcpi/internal/sim"
)

// fastPeriods makes tests quick: dense sampling over short runs.
var fastPeriods = sim.PeriodSpec{Base: 2048, Spread: 512}

func runWL(t *testing.T, name string, mode sim.Mode, seed uint64, scale float64) *Result {
	t.Helper()
	r, err := Run(Config{
		Workload:     name,
		Mode:         mode,
		Seed:         seed,
		Scale:        scale,
		CyclesPeriod: fastPeriods,
		CollectExact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunMcCalpinAssign(t *testing.T) {
	r := runWL(t, "mccalpin-assign", sim.ModeCycles, 1, 0.25)
	if r.Wall <= 0 {
		t.Fatal("no cycles simulated")
	}
	st := r.Machine.Stats()
	if st.Faults != 0 {
		t.Fatalf("faults: %+v", st)
	}
	if st.Samples < 200 {
		t.Fatalf("samples = %d, want plenty", st.Samples)
	}
	// The copy loop must be write-buffer bound.
	if st.WBOverflows == 0 {
		t.Error("no write-buffer overflows in the copy loop")
	}
	rows := r.ProcRows()
	if len(rows) == 0 {
		t.Fatal("no procedure rows")
	}
	if rows[0].Procedure != "copyloop" && rows[0].Procedure != "main" {
		t.Errorf("top procedure = %q, want the copy loop", rows[0].Procedure)
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Run(Config{Workload: "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestBaseModeCollectsNothing(t *testing.T) {
	r, err := Run(Config{Workload: "compress", Mode: sim.ModeOff, Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r.Driver != nil || r.Daemon != nil || len(r.Profiles()) != 0 {
		t.Error("base mode should have no collection stack")
	}
	if r.Machine.Stats().Samples != 0 {
		t.Error("base mode took samples")
	}
}

func TestOverheadOrdering(t *testing.T) {
	// base <= cycles <= default (more events, more interrupts) on the same
	// seed. Uses the real 60K-64K period so overhead is the paper's scale.
	wall := map[sim.Mode]int64{}
	for _, mode := range []sim.Mode{sim.ModeOff, sim.ModeCycles, sim.ModeDefault} {
		r, err := Run(Config{Workload: "compress", Mode: mode, Seed: 5, Scale: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		wall[mode] = r.Wall
	}
	if wall[sim.ModeCycles] < wall[sim.ModeOff] {
		t.Errorf("cycles run (%d) faster than base (%d)", wall[sim.ModeCycles], wall[sim.ModeOff])
	}
	over := float64(wall[sim.ModeCycles]-wall[sim.ModeOff]) / float64(wall[sim.ModeOff])
	if over > 0.10 {
		t.Errorf("cycles overhead = %.2f%%, want low", over*100)
	}
}

func TestAnalyzeCopyLoop(t *testing.T) {
	r := runWL(t, "mccalpin-assign", sim.ModeCycles, 2, 0.25)
	pa, err := r.AnalyzeProc("/bin/mccalpin", "copyloop")
	if err != nil {
		t.Fatal(err)
	}
	if pa.Summary.TotalSamples == 0 {
		t.Fatal("no samples in copy loop")
	}
	// Figure 2's headline: best-case ~0.62 CPI, actual much higher.
	if pa.BestCaseCPI < 0.4 || pa.BestCaseCPI > 0.9 {
		t.Errorf("best-case CPI = %v", pa.BestCaseCPI)
	}
	if pa.ActualCPI < 2*pa.BestCaseCPI {
		t.Errorf("actual CPI = %v vs best %v: expected large dynamic stalls", pa.ActualCPI, pa.BestCaseCPI)
	}
	// The write buffer and D-cache must appear among the summary's causes.
	if pa.Summary.DynMax[1] == 0 && pa.Summary.DynMax[2] == 0 && pa.Summary.DynMax[4] == 0 {
		t.Logf("summary: %+v", pa.Summary)
	}
}

func TestExactCountsAvailable(t *testing.T) {
	r := runWL(t, "compress", sim.ModeCycles, 3, 0.1)
	if r.Exact == nil || len(r.Exact.Exec) == 0 {
		t.Fatal("exact counts missing")
	}
	im, ok := r.Loader.ImageByPath("/usr/bin/compress")
	if !ok {
		t.Fatal("compress image not registered")
	}
	exec := r.Exact.Exec[im.ID]
	var total uint64
	for _, n := range exec {
		total += n
	}
	if total == 0 {
		t.Error("no executions counted")
	}
}

func TestStatsAcrossRuns(t *testing.T) {
	runs := []map[string]uint64{
		{"smooth_": 100, "parmvr_": 1000},
		{"smooth_": 300, "parmvr_": 1010},
		{"smooth_": 200, "parmvr_": 990},
	}
	rows := StatsAcrossRuns(runs)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Procedure != "smooth_" {
		t.Errorf("highest range%% = %q, want smooth_", rows[0].Procedure)
	}
	r0 := rows[0]
	if r0.Sum != 600 || r0.Min != 100 || r0.Max != 300 || r0.N != 3 {
		t.Errorf("row = %+v", r0)
	}
	if r0.Mean != 200 {
		t.Errorf("mean = %v", r0.Mean)
	}
	if r0.StdDev < 99 || r0.StdDev > 101 {
		t.Errorf("stddev = %v, want 100", r0.StdDev)
	}
	if rp := r0.RangePct(); rp < 0.33 || rp > 0.34 {
		t.Errorf("range%% = %v", rp)
	}
}
