package dcpi

import (
	"fmt"
	"io"
	"strings"

	"dcpi/internal/analysis"
	"dcpi/internal/pipeline"
	"dcpi/internal/sim"
)

// ProgramSummary aggregates where an entire run's cycles went by combining
// every sampled procedure's stall summary, weighted by samples — the
// paper's §3 "summarize where time is spent in an entire program" tool.
type ProgramSummary struct {
	analysis.Summary
	BestCaseCPI float64
	ActualCPI   float64
	Procedures  int
}

// Summarize analyzes every sampled procedure in the run and aggregates.
func (r *Result) Summarize() (*ProgramSummary, error) {
	out := &ProgramSummary{}
	out.Static = make(map[pipeline.StallKind]float64)
	var totalSamples float64
	var bestW, actualW float64

	for _, prof := range r.profiles {
		if prof.Event != sim.EvCycles || prof.ImagePath == "unknown" {
			continue
		}
		im, ok := r.Loader.ImageByPath(prof.ImagePath)
		if !ok {
			continue
		}
		for _, sym := range im.Symbols {
			var procSamples uint64
			for off, c := range prof.Counts {
				if off >= sym.Offset && off < sym.Offset+sym.Size {
					procSamples += c
				}
			}
			if procSamples == 0 {
				continue
			}
			pa, err := r.AnalyzeProc(prof.ImagePath, sym.Name)
			if err != nil {
				return nil, err
			}
			w := float64(pa.Summary.TotalSamples)
			if w == 0 {
				continue
			}
			out.Procedures++
			totalSamples += w
			out.TotalSamples += pa.Summary.TotalSamples
			out.Execution += w * pa.Summary.Execution
			out.DynTotal += w * pa.Summary.DynTotal
			out.UnexplainedStall += w * pa.Summary.UnexplainedStall
			out.UnexplainedGain += w * pa.Summary.UnexplainedGain
			for c := analysis.Cause(0); c < analysis.NumCauses; c++ {
				out.DynMin[c] += w * pa.Summary.DynMin[c]
				out.DynMax[c] += w * pa.Summary.DynMax[c]
			}
			for k, v := range pa.Summary.Static {
				out.Static[k] += w * v
			}
			bestW += w * pa.BestCaseCPI
			actualW += w * pa.ActualCPI
		}
	}
	if totalSamples > 0 {
		inv := 1 / totalSamples
		out.Execution *= inv
		out.DynTotal *= inv
		out.UnexplainedStall *= inv
		out.UnexplainedGain *= inv
		for c := analysis.Cause(0); c < analysis.NumCauses; c++ {
			out.DynMin[c] *= inv
			out.DynMax[c] *= inv
		}
		for k := range out.Static {
			out.Static[k] *= inv
		}
		out.BestCaseCPI = bestW * inv
		out.ActualCPI = actualW * inv
	}
	return out, nil
}

// FormatProgramSummary renders the whole-program view.
func FormatProgramSummary(w io.Writer, ps *ProgramSummary) {
	fmt.Fprintf(w, "Whole-program summary over %d sampled procedures (%d samples)\n",
		ps.Procedures, ps.TotalSamples)
	fmt.Fprintf(w, "*** Sample-weighted best-case %.2fCPI, actual %.2fCPI\n***\n",
		ps.BestCaseCPI, ps.ActualCPI)
	pct := func(f float64) string { return fmt.Sprintf("%5.1f%%", 100*f) }
	causes := []analysis.Cause{
		analysis.CauseICache, analysis.CauseITB, analysis.CauseDCache,
		analysis.CauseDTB, analysis.CauseWB, analysis.CauseSync,
		analysis.CauseBranchMP, analysis.CauseFUMul, analysis.CauseFUDiv,
	}
	for _, c := range causes {
		fmt.Fprintf(w, "***   %-22s %s to %s\n", c.String(), pct(ps.DynMin[c]), pct(ps.DynMax[c]))
	}
	fmt.Fprintf(w, "***   %-22s %s\n", "Unexplained stall", pct(ps.UnexplainedStall))
	fmt.Fprintf(w, "*** %s\n", strings.Repeat("-", 42))
	fmt.Fprintf(w, "***   %-22s %s\n", "Subtotal dynamic", pct(ps.DynTotal))
	kinds := []pipeline.StallKind{
		pipeline.StallSlotting, pipeline.StallRaDep, pipeline.StallRbDep,
		pipeline.StallRcDep, pipeline.StallFUDep,
	}
	for _, k := range kinds {
		fmt.Fprintf(w, "***   %-22s %s\n", k.String(), pct(ps.Static[k]))
	}
	fmt.Fprintf(w, "*** %s\n", strings.Repeat("-", 42))
	fmt.Fprintf(w, "***   %-22s %s\n", "Subtotal static", pct(ps.SubtotalStatic()))
	fmt.Fprintf(w, "***   %-22s %s\n", "Execution", pct(ps.Execution))
}
