package dcpi

import (
	"fmt"
	"math"
	"sort"

	"dcpi/internal/analysis"
	"dcpi/internal/sim"
)

// ProcRow is one dcpiprof output row: samples aggregated by procedure.
type ProcRow struct {
	Procedure string
	ImagePath string
	Counts    [sim.NumEvents]uint64
}

// ProcRows aggregates every profile by procedure, sorted by decreasing
// CYCLES samples (the dcpiprof view, Figure 1).
func (r *Result) ProcRows() []ProcRow {
	type key struct{ img, proc string }
	agg := make(map[key]*ProcRow)
	for _, p := range r.profiles {
		if p.Event == sim.EvEdge {
			continue // packed (from, to) keys; not per-instruction offsets
		}
		im, ok := r.Loader.ImageByPath(p.ImagePath)
		for off, n := range p.Counts {
			proc := "<unknown>"
			if ok {
				if s, found := im.SymbolAt(off); found {
					proc = s.Name
				}
			}
			k := key{p.ImagePath, proc}
			row, exists := agg[k]
			if !exists {
				row = &ProcRow{Procedure: proc, ImagePath: p.ImagePath}
				agg[k] = row
			}
			row.Counts[p.Event] += n
		}
	}
	out := make([]ProcRow, 0, len(agg))
	for _, row := range agg {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Counts[sim.EvCycles] != out[j].Counts[sim.EvCycles] {
			return out[i].Counts[sim.EvCycles] > out[j].Counts[sim.EvCycles]
		}
		if out[i].Procedure != out[j].Procedure {
			return out[i].Procedure < out[j].Procedure
		}
		return out[i].ImagePath < out[j].ImagePath
	})
	return out
}

// TotalSamples sums samples of one event across all profiles.
func (r *Result) TotalSamples(ev sim.Event) uint64 {
	var t uint64
	for _, p := range r.profiles {
		if p.Event == ev {
			t += p.Total()
		}
	}
	return t
}

// AnalyzeProc runs the full §6 analysis (frequency, CPI, culprits) for one
// procedure of one image, using the run's own profiles and machine model.
func (r *Result) AnalyzeProc(imagePath, procName string) (*analysis.ProcAnalysis, error) {
	im, ok := r.Loader.ImageByPath(imagePath)
	if !ok {
		return nil, fmt.Errorf("dcpi: image %q not registered", imagePath)
	}
	code, base, err := im.ProcCode(procName)
	if err != nil {
		return nil, err
	}
	in := analysis.Inputs{Samples: map[uint64]uint64{}}
	if p := r.Profile(imagePath, sim.EvCycles); p != nil {
		in.Samples = p.Counts
	}
	in.IMissEvents = r.imissEvents(imagePath)
	in.DTBEvents = r.dtbEvents(imagePath)
	if p := r.Profile(imagePath, sim.EvEdge); p != nil {
		in.EdgeSamples = p.Counts
	}
	pa := analysis.AnalyzeProcInputs(procName, code, base, in, r.Model(), r.AvgCyclesPeriod())
	if im.Lines != nil {
		lo := int(base / 4)
		if lo+len(code) <= len(im.Lines) {
			pa.SourceLines = im.Lines[lo : lo+len(code)]
		}
	}
	return pa, nil
}

// imissEvents converts IMISS samples into estimated event counts per
// offset; nil when the run did not monitor IMISS.
func (r *Result) imissEvents(imagePath string) map[uint64]uint64 {
	if r.Config.Mode != sim.ModeDefault && r.Config.Mode != sim.ModeMux {
		return nil
	}
	out := make(map[uint64]uint64)
	if p := r.Profile(imagePath, sim.EvIMiss); p != nil {
		period := r.AvgEventPeriod()
		for off, n := range p.Counts {
			out[off] = uint64(float64(n) * period)
		}
	}
	return out
}

// dtbEvents converts DTBMISS samples into estimated event counts; nil when
// the event was not monitored (it rotates into the mux configuration).
func (r *Result) dtbEvents(imagePath string) map[uint64]uint64 {
	if r.Config.Mode != sim.ModeMux {
		return nil
	}
	out := make(map[uint64]uint64)
	if p := r.Profile(imagePath, sim.EvDTBMiss); p != nil {
		period := r.AvgEventPeriod()
		for off, n := range p.Counts {
			out[off] = uint64(float64(n) * period)
		}
	}
	return out
}

// ProcSampleMap returns procedure -> CYCLES samples for dcpistats.
func (r *Result) ProcSampleMap() map[string]uint64 {
	out := make(map[string]uint64)
	for _, row := range r.ProcRows() {
		if row.Counts[sim.EvCycles] > 0 {
			out[row.Procedure] += row.Counts[sim.EvCycles]
		}
	}
	return out
}

// StatRow is one dcpistats output row (Figure 3): per-procedure variation
// across sample sets.
type StatRow struct {
	Procedure string
	Sum       uint64
	N         int
	Mean      float64
	StdDev    float64
	Min       uint64
	Max       uint64
}

// RangePct is (max-min)/sum, the paper's "range%" sort key.
func (s StatRow) RangePct() float64 {
	if s.Sum == 0 {
		return 0
	}
	return float64(s.Max-s.Min) / float64(s.Sum)
}

// SumPct returns this procedure's share of all samples in all sets.
func (s StatRow) SumPct(total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(s.Sum) / float64(total)
}

// StatsAcrossRuns computes dcpistats rows from per-run procedure sample
// maps, sorted by decreasing range%.
func StatsAcrossRuns(runs []map[string]uint64) []StatRow {
	procs := map[string]bool{}
	for _, run := range runs {
		for p := range run {
			procs[p] = true
		}
	}
	var out []StatRow
	for proc := range procs {
		row := StatRow{Procedure: proc, N: len(runs), Min: ^uint64(0)}
		var sum float64
		for _, run := range runs {
			v := run[proc]
			row.Sum += v
			sum += float64(v)
			if v < row.Min {
				row.Min = v
			}
			if v > row.Max {
				row.Max = v
			}
		}
		row.Mean = sum / float64(len(runs))
		var ss float64
		for _, run := range runs {
			d := float64(run[proc]) - row.Mean
			ss += d * d
		}
		if len(runs) > 1 {
			ss /= float64(len(runs) - 1)
		}
		row.StdDev = math.Sqrt(ss)
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].RangePct(), out[j].RangePct()
		if ri != rj {
			return ri > rj
		}
		return out[i].Procedure < out[j].Procedure
	})
	return out
}
