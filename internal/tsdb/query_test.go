package tsdb

import (
	"reflect"
	"sync"
	"testing"

	"dcpi/internal/sim"
)

// raggedFleet stores one machine with a full-span series over epochs
// 1..epochs and a short series present only at epochs 1..2 — the shape
// that exposed the winOf/winStart partition mismatch: with span not a
// multiple of queryWindows, a block series ending mid-range used to be
// registered into a window whose scan range never contained its last
// epochs, silently dropping them from every query.
func raggedFleet(t *testing.T, db *DB, from, to uint64) {
	t.Helper()
	for e := from; e <= to; e++ {
		b := Batch{
			Machine:  "m00",
			Workload: "wave5",
			Epoch:    e,
			Wall:     1_000_000,
			Period:   62000,
			Records: []Record{
				{Image: "/full", Event: sim.EvCycles, Samples: 10 + e},
			},
		}
		if e <= 2 {
			b.Records = append(b.Records, Record{Image: "/short", Event: sim.EvCycles, Samples: 100 + e})
		}
		mustAppend(t, db, b)
	}
}

// raggedPoints is how many points raggedFleet holds in [lo, hi] when
// epochs 1..stored exist: one full-series point per epoch plus the short
// series at epochs 1 and 2.
func raggedPoints(lo, hi, stored uint64) int {
	n := 0
	for e := lo; e <= hi && e <= stored; e++ {
		n++
		if e <= 2 {
			n++
		}
	}
	return n
}

// TestCompactionByteIdentityRaggedSpan pins byte-identical Select output
// across compaction when the epoch span is not a multiple of
// queryWindows (span 17 vs 16 windows) and a series ends mid-range, over
// every [from, to] sub-range.
func TestCompactionByteIdentityRaggedSpan(t *testing.T) {
	const epochs = 17
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	raggedFleet(t, db, 1, epochs)
	query := func(lo, hi uint64) []Point {
		return db.Select(Matcher{FromEpoch: lo, ToEpoch: hi})
	}
	type span struct{ lo, hi uint64 }
	before := map[span][]Point{}
	for lo := uint64(1); lo <= epochs; lo++ {
		for hi := lo; hi <= epochs; hi++ {
			before[span{lo, hi}] = query(lo, hi)
		}
	}
	if got := len(before[span{1, epochs}]); got != epochs+2 {
		t.Fatalf("raw store holds %d points over the full span, want %d", got, epochs+2)
	}
	mustCompact(t, db, CompactOptions{CompactAfter: 1})
	for lo := uint64(1); lo <= epochs; lo++ {
		for hi := lo; hi <= epochs; hi++ {
			if got := query(lo, hi); !reflect.DeepEqual(got, before[span{lo, hi}]) {
				t.Fatalf("Select([%d, %d]) changed after compaction: %d points, want %d",
					lo, hi, len(got), len(before[span{lo, hi}]))
			}
		}
	}
}

// TestScanWindowsPartitionInvariant asserts, for raw, mixed (block plus
// raw segments), and fully compacted stores over ragged spans, that
// every point scanWindows emits satisfies winStart(w) <= p.Epoch <
// winStart(w+1) for its window — the partition winOf assigns and
// runWindow scans must be the same one — and that every matching point
// is emitted exactly once.
func TestScanWindowsPartitionInvariant(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string, lo, hi, stored uint64) {
		t.Helper()
		span := hi - lo + 1
		nwin := uint64(queryWindows)
		if span < nwin {
			nwin = span
		}
		winStart := func(w uint64) uint64 { return lo + (span*w+nwin-1)/nwin }
		var mu sync.Mutex
		emitted := 0
		db.scanWindows(Matcher{FromEpoch: lo, ToEpoch: hi}, func(w int, p Point, _ uint64, _ int) {
			mu.Lock()
			defer mu.Unlock()
			emitted++
			if ws, we := winStart(uint64(w)), winStart(uint64(w)+1); p.Epoch < ws || p.Epoch >= we {
				t.Errorf("%s [%d, %d]: epoch %d emitted from window %d = [%d, %d)",
					stage, lo, hi, p.Epoch, w, ws, we)
			}
		})
		if want := raggedPoints(lo, hi, stored); emitted != want {
			t.Errorf("%s [%d, %d]: %d points emitted, want %d", stage, lo, hi, emitted, want)
		}
	}
	sweep := func(stage string, stored uint64) {
		for lo := uint64(1); lo <= 3; lo++ {
			for hi := lo; hi <= stored; hi++ {
				check(stage, lo, hi, stored)
			}
		}
	}
	raggedFleet(t, db, 1, 17)
	sweep("raw", 17)
	// Compact epochs 1..17 into a block, then append two more raw epochs:
	// scans now mix block series and raw points in the same windows.
	mustCompact(t, db, CompactOptions{CompactAfter: 1})
	raggedFleet(t, db, 18, 19)
	sweep("mixed", 19)
	mustCompact(t, db, CompactOptions{CompactAfter: 1})
	sweep("compacted", 19)
}
