// Package tsdb is the fleet-side profile store: a labeled, append-only,
// on-disk time-series database for the sample totals dcpicollect scrapes
// from a fleet of dcpid machines. Points are keyed by (machine, workload,
// image, procedure, event) and stamped with the profiledb epoch they came
// from; one scrape of one (machine, epoch) pair becomes one immutable raw
// segment file.
//
// At fleet scale raw segments are the wrong shape — one tiny file per
// (machine, epoch) and a full scan per query — so the store also has a
// compactor (see compact.go): raw segments merge into immutable,
// delta+varint-encoded block files covering whole epoch ranges per
// machine, and blocks entirely behind a raw-retention horizon can be
// rewritten as per-N-epoch downsampled aggregates. An in-memory label
// index (machine/image posting lists plus per-source label sets, see
// index.go) lets queries touch only matching sources, and the query
// engine (query.go) scans sources in parallel with a deterministic merge.
//
// The durability story mirrors the repo's other stores: segments and
// blocks are written through internal/atomicio (temp+fsync+rename),
// framed with a magic, a version, and a CRC32 of the payload, and
// anything that fails to decode on open is quarantined aside as NAME.bad
// the way internal/runcache does — a corrupt file costs its own points,
// never the database. A size-based retention cap drops the
// oldest-by-epoch sources first, so a long-running collector's disk use
// stays bounded.
package tsdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dcpi/internal/atomicio"
	"dcpi/internal/obs"
	"dcpi/internal/sim"
)

// Magic identifies a tsdb raw-segment file.
var Magic = [8]byte{'D', 'C', 'P', 'I', 'T', 'S', 'D', 'B'}

// Version is the current segment-format version. Version 2 added the
// per-record procedure label; version 1 files are quarantined on open.
const Version = 2

// Labels identify one series. Proc is empty for image-level points and
// names the procedure for per-procedure points; the two kinds coexist for
// the same image, so queries must pick one level (see Matcher).
type Labels struct {
	Machine  string
	Workload string
	Image    string
	Proc     string
	Event    sim.Event
}

// Point is one observation: the sample total (and, when exact counts were
// collected, the executed-instruction total) for a series at one epoch.
// Wall and Period are denormalized from the epoch's metadata so queries
// can convert samples to cycles without a side lookup.
//
// A point read from a downsampled block is a per-bucket aggregate: Epoch
// is the bucket's first epoch, Samples/Insts/Wall are sums over the
// bucket, Period is the cycle-weighted average (so Cycles() returns the
// bucket's true cycle sum), and Min/Max are the per-epoch sample extremes
// within the bucket. For raw points Min == Max == Samples.
type Point struct {
	Labels
	Epoch   uint64
	Samples uint64
	Insts   uint64 // 0 when the epoch had no exact counts
	Wall    int64  // epoch wall-clock cycles on that machine
	Period  float64
	Min     uint64
	Max     uint64
}

// Cycles returns the cycles this point attributes to its series
// (samples × average sampling period).
func (p Point) Cycles() float64 { return float64(p.Samples) * p.Period }

// Record is the per-series part of an Append batch. Proc is empty for the
// image-level total and names a procedure for a per-procedure breakdown
// row.
type Record struct {
	Image   string
	Proc    string
	Event   sim.Event
	Samples uint64
	Insts   uint64
}

// Batch is one scraped (machine, epoch) payload: the unit of append and
// the exact contents of one raw segment file.
type Batch struct {
	Machine  string
	Workload string
	Epoch    uint64
	Wall     int64
	Period   float64
	Records  []Record
}

// Options configures Open.
type Options struct {
	// MaxBytes caps the total size of segment and block files; 0 means
	// unbounded. When an append (or compaction) pushes past the cap, the
	// oldest sources — by max epoch covered, then by file sequence — are
	// deleted until under it again. The last remaining source is never
	// deleted, and quarantined .bad files never count against the cap.
	MaxBytes int64
	// ReadOnly opens without quarantining corrupt files, reclaiming
	// compaction leftovers, or accepting appends (used by query CLIs
	// pointed at a live collector's store).
	ReadOnly bool
	// Obs publishes store gauges/counters (tsdb.*) when set.
	Obs obs.Hooks
}

// segment is one decoded raw segment: a single (machine, epoch) batch.
type segment struct {
	epoch  uint64
	wall   int64
	period float64
	points []Point
}

// DB is an open store. All methods are safe for concurrent use; appends
// and compactions serialize behind one mutex (the collector is the only
// writer), while queries snapshot source references under the mutex and
// then scan immutable data lock-free.
type DB struct {
	mu          sync.Mutex
	dir         string
	opts        Options
	srcs        []*source // ascending fileSeq
	byMachine   map[string][]*source
	byImage     map[string][]*source
	nextSeq     uint64
	sizeBytes   int64
	quarantined int
	evicted     int
	reclaimed   int // compaction leftovers removed during Open recovery
	compactions int
	downsampled int

	// testCrashMidCompact makes Compact return right after committing its
	// first block, before removing the inputs — simulating a process that
	// died mid-compaction so tests can exercise Open's recovery.
	testCrashMidCompact bool
}

// Open opens (or creates, unless ReadOnly) the store at dir, loading every
// decodable segment and block into the in-memory index. Corrupt files are
// renamed to NAME.bad (kept for post-mortem, hidden from queries) unless
// ReadOnly. Raw segments whose sequence number falls inside a same-machine
// block's consumed range — and blocks fully consumed by a newer block —
// are leftovers of a crash between a compaction's commit rename and its
// input cleanup; they are removed (hidden when ReadOnly) so the data never
// appears twice.
func Open(dir string, opts Options) (*DB, error) {
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	db := &DB{
		dir:       dir,
		opts:      opts,
		byMachine: map[string][]*source{},
		byImage:   map[string][]*source{},
		nextSeq:   1,
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var loaded []*source
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			if !opts.ReadOnly {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		seq, isBlock, ok := parseFileName(name)
		if !ok {
			continue
		}
		full := filepath.Join(dir, name)
		raw, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		var src *source
		if isBlock {
			bl, derr := DecodeBlock(raw)
			if derr == nil {
				src = sourceFromBlock(seq, full, int64(len(raw)), bl)
			}
		} else {
			b, derr := DecodeSegment(raw)
			if derr == nil {
				src = sourceFromBatch(seq, full, int64(len(raw)), b)
			}
		}
		if src == nil {
			if !opts.ReadOnly {
				os.Rename(full, full+".bad")
			}
			db.quarantined++
			continue
		}
		loaded = append(loaded, src)
		if seq >= db.nextSeq {
			db.nextSeq = seq + 1
		}
	}
	sort.Slice(loaded, func(i, j int) bool { return loaded[i].fileSeq < loaded[j].fileSeq })
	for _, s := range db.reclaimLeftovers(loaded) {
		db.addSource(s)
		db.sizeBytes += s.bytes
	}
	db.publish()
	return db, nil
}

// reclaimLeftovers drops (and, unless ReadOnly, deletes) sources whose
// contents were already committed into a newer block: raw segments inside
// a same-machine block's [firstSeq, lastSeq] range, and blocks whose range
// is contained in a newer same-machine block's range (a downsampling
// rewrite that crashed before cleanup). Input and output are ascending by
// fileSeq.
func (db *DB) reclaimLeftovers(loaded []*source) []*source {
	blocks := map[string][]*source{}
	for _, s := range loaded {
		if s.blk != nil {
			blocks[s.machine] = append(blocks[s.machine], s)
		}
	}
	live := loaded[:0]
	for _, s := range loaded {
		stale := false
		for _, b := range blocks[s.machine] {
			if b == s || b.fileSeq < s.fileSeq {
				continue
			}
			if s.blk == nil {
				stale = s.fileSeq >= b.blk.firstSeq && s.fileSeq <= b.blk.lastSeq
			} else {
				stale = s.blk.firstSeq >= b.blk.firstSeq && s.blk.lastSeq <= b.blk.lastSeq
			}
			if stale {
				break
			}
		}
		if stale {
			if !db.opts.ReadOnly {
				os.Remove(s.path)
			}
			db.reclaimed++
			continue
		}
		live = append(live, s)
	}
	return live
}

// parseFileName parses "seg-<decimal>.tsdb" (raw segment) or
// "blk-<decimal>.tsdb" (block) strictly.
func parseFileName(name string) (seq uint64, isBlock, ok bool) {
	rest, isSeg := strings.CutPrefix(name, "seg-")
	if !isSeg {
		if rest, ok = strings.CutPrefix(name, "blk-"); !ok {
			return 0, false, false
		}
		isBlock = true
	}
	digits, ok := strings.CutSuffix(rest, ".tsdb")
	if !ok || digits == "" {
		return 0, false, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false, false
		}
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil || n == 0 {
		return 0, false, false
	}
	return n, isBlock, true
}

func parseSegName(name string) (uint64, bool) {
	seq, isBlock, ok := parseFileName(name)
	if !ok || isBlock {
		return 0, false
	}
	return seq, true
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.tsdb", seq) }
func blkName(seq uint64) string { return fmt.Sprintf("blk-%08d.tsdb", seq) }

func batchPoints(b *Batch) []Point {
	pts := make([]Point, len(b.Records))
	for i, r := range b.Records {
		pts[i] = Point{
			Labels: Labels{
				Machine: b.Machine, Workload: b.Workload,
				Image: r.Image, Proc: r.Proc, Event: r.Event,
			},
			Epoch:   b.Epoch,
			Samples: r.Samples,
			Insts:   r.Insts,
			Wall:    b.Wall,
			Period:  b.Period,
			Min:     r.Samples,
			Max:     r.Samples,
		}
	}
	return pts
}

// Dir returns the store directory.
func (db *DB) Dir() string { return db.dir }

// Append durably writes one batch as a new raw segment and indexes its
// points. Re-appending an epoch the store already holds is allowed (a
// re-scrape race stores duplicate points; see Select's ordering
// contract), but only when the batch's wall/period metadata matches what
// is stored: compaction canonicalizes per-epoch metadata, so a
// conflicting duplicate could silently change query results across
// compaction and is rejected here instead.
func (db *DB) Append(b Batch) error {
	if db.opts.ReadOnly {
		return errors.New("tsdb: store opened read-only")
	}
	if b.Machine == "" {
		return errors.New("tsdb: batch needs a machine label")
	}
	if b.Epoch == 0 {
		return errors.New("tsdb: batch needs an epoch >= 1")
	}
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, &b); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if wall, period, ok := db.epochMetaLocked(b.Machine, b.Epoch); ok &&
		(wall != b.Wall || period != b.Period) {
		return fmt.Errorf("tsdb: conflicting re-scrape of (%s, epoch %d): stored wall=%d period=%v, batch wall=%d period=%v",
			b.Machine, b.Epoch, wall, period, b.Wall, b.Period)
	}
	seq := db.nextSeq
	db.nextSeq++
	path := filepath.Join(db.dir, segName(seq))
	if err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	}); err != nil {
		return err
	}
	db.addSource(sourceFromBatch(seq, path, int64(buf.Len()), &b))
	db.sizeBytes += int64(buf.Len())
	db.retain()
	db.publish()
	return nil
}

// epochMetaLocked returns the stored wall/period metadata for (machine,
// epoch) when the store holds that epoch at raw fidelity. Downsampled
// blocks aggregate per-epoch metadata away and report ok == false.
// Caller holds db.mu.
func (db *DB) epochMetaLocked(machine string, epoch uint64) (wall int64, period float64, ok bool) {
	for _, s := range db.byMachine[machine] {
		if epoch < s.minEpoch || epoch > s.maxEpoch {
			continue
		}
		if s.seg != nil {
			return s.seg.wall, s.seg.period, true
		}
		if s.blk.downsample != 0 {
			continue
		}
		ms := s.blk.metas
		i := sort.Search(len(ms), func(i int) bool { return ms[i].epoch >= epoch })
		if i < len(ms) && ms[i].epoch == epoch {
			return ms[i].wall, ms[i].period, true
		}
	}
	return 0, 0, false
}

// retain enforces the size cap by deleting the oldest sources: lowest max
// epoch first (so compacted history goes before fresh data), file
// sequence as the tie-break. Caller holds db.mu.
func (db *DB) retain() {
	if db.opts.MaxBytes <= 0 {
		return
	}
	for db.sizeBytes > db.opts.MaxBytes && len(db.srcs) > 1 {
		victim := db.srcs[0]
		for _, s := range db.srcs[1:] {
			if s.maxEpoch < victim.maxEpoch ||
				(s.maxEpoch == victim.maxEpoch && s.fileSeq < victim.fileSeq) {
				victim = s
			}
		}
		if err := os.Remove(victim.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return // leave the index consistent with disk; retry next append
		}
		db.removeSource(victim)
		db.sizeBytes -= victim.bytes
		db.evicted++
	}
}

// publish updates the tsdb.* gauges. Caller holds db.mu (or has exclusive
// access during Open).
func (db *DB) publish() {
	reg := db.opts.Obs.Registry
	if reg == nil {
		return
	}
	var segs, blocks, ds, pts int
	for _, s := range db.srcs {
		if s.seg != nil {
			segs++
			pts += len(s.seg.points)
		} else {
			blocks++
			if s.blk.downsample > 0 {
				ds++
			}
			pts += s.blk.points
		}
	}
	reg.Gauge("tsdb.segments").Set(float64(segs))
	reg.Gauge("tsdb.blocks").Set(float64(blocks))
	reg.Gauge("tsdb.downsampled_blocks").Set(float64(ds))
	reg.Gauge("tsdb.points").Set(float64(pts))
	reg.Gauge("tsdb.size_bytes").Set(float64(db.sizeBytes))
	reg.Gauge("tsdb.quarantined_segments").Set(float64(db.quarantined))
	reg.Gauge("tsdb.retention_evictions").Set(float64(db.evicted))
	reg.Gauge("tsdb.reclaimed_leftovers").Set(float64(db.reclaimed))
	reg.Gauge("tsdb.compactions").Set(float64(db.compactions))
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Segments    int // raw (uncompacted) segment files
	Blocks      int // compacted block files
	Downsampled int // blocks holding per-N-epoch aggregates
	Points      int
	SizeBytes   int64
	Quarantined int
	Evicted     int
	Reclaimed   int // crash-recovery leftovers removed on open
	Compactions int
}

// Stats returns the store's current summary.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := Stats{
		SizeBytes:   db.sizeBytes,
		Quarantined: db.quarantined,
		Evicted:     db.evicted,
		Reclaimed:   db.reclaimed,
		Compactions: db.compactions,
	}
	for _, s := range db.srcs {
		if s.seg != nil {
			st.Segments++
			st.Points += len(s.seg.points)
		} else {
			st.Blocks++
			if s.blk.downsample > 0 {
				st.Downsampled++
			}
			st.Points += s.blk.points
		}
	}
	return st
}

// HasEpoch reports whether (machine, epoch) was ingested — the scraper's
// exactly-once check. Exact at every tier: downsampled blocks keep a
// per-bucket coverage bitmap, so an epoch in the uncovered tail of a
// partial bucket is correctly reported absent and re-scraping behind the
// raw-retention horizon never drops data.
func (db *DB) HasEpoch(machine string, epoch uint64) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range db.byMachine[machine] {
		if epoch < s.minEpoch || epoch > s.maxEpoch {
			continue
		}
		if s.seg != nil {
			return true // raw segment: minEpoch == maxEpoch == its epoch
		}
		if s.blk.hasEpoch(epoch) {
			return true
		}
	}
	return false
}

// MaxEpoch returns the highest epoch stored for machine (0 if none).
func (db *DB) MaxEpoch(machine string) uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var max uint64
	for _, s := range db.byMachine[machine] {
		if s.maxEpoch > max {
			max = s.maxEpoch
		}
	}
	return max
}

// EncodeSegment writes the framed, CRC-stamped encoding of b.
func EncodeSegment(w io.Writer, b *Batch) error {
	var payload bytes.Buffer
	pw := bufio.NewWriter(&payload)
	writeString := func(s string) error {
		if err := atomicio.WriteUvarint(pw, uint64(len(s))); err != nil {
			return err
		}
		_, err := pw.WriteString(s)
		return err
	}
	if err := writeString(b.Machine); err != nil {
		return err
	}
	if err := writeString(b.Workload); err != nil {
		return err
	}
	if err := atomicio.WriteUvarint(pw, b.Epoch); err != nil {
		return err
	}
	if err := atomicio.WriteVarint(pw, b.Wall); err != nil {
		return err
	}
	if err := atomicio.WriteUvarint(pw, math.Float64bits(b.Period)); err != nil {
		return err
	}
	if err := atomicio.WriteUvarint(pw, uint64(len(b.Records))); err != nil {
		return err
	}
	for _, r := range b.Records {
		if err := writeString(r.Image); err != nil {
			return err
		}
		if err := writeString(r.Proc); err != nil {
			return err
		}
		if err := pw.WriteByte(byte(r.Event)); err != nil {
			return err
		}
		if err := atomicio.WriteUvarint(pw, r.Samples); err != nil {
			return err
		}
		if err := atomicio.WriteUvarint(pw, r.Insts); err != nil {
			return err
		}
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	return writeFramed(w, Magic, Version, payload.Bytes())
}

// writeFramed writes the shared 14-byte header (magic, version, CRC32 of
// payload) followed by the payload.
func writeFramed(w io.Writer, magic [8]byte, version uint16, payload []byte) error {
	var hdr [14]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], version)
	binary.LittleEndian.PutUint32(hdr[10:14], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// checkFrame verifies the shared header and returns the payload.
func checkFrame(raw []byte, magic [8]byte, version uint16) ([]byte, error) {
	if len(raw) < 14 {
		return nil, errors.New("tsdb: file too short")
	}
	if !bytes.Equal(raw[:8], magic[:]) {
		return nil, errors.New("tsdb: bad magic")
	}
	if v := binary.LittleEndian.Uint16(raw[8:10]); v != version {
		return nil, fmt.Errorf("tsdb: unsupported version %d", v)
	}
	payload := raw[14:]
	if crc := binary.LittleEndian.Uint32(raw[10:14]); crc != crc32.ChecksumIEEE(payload) {
		return nil, errors.New("tsdb: CRC mismatch")
	}
	return payload, nil
}

// maxStringLen bounds decoded label lengths so corrupt varints cannot
// drive huge allocations (the fuzz targets' over-allocation check).
const maxStringLen = 1 << 16

func readString(br *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxStringLen || n > uint64(br.Len()) {
		return "", fmt.Errorf("tsdb: string length %d exceeds payload", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readPeriodBits(bits uint64) (float64, error) {
	p := math.Float64frombits(bits)
	if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
		return 0, fmt.Errorf("tsdb: invalid period %v", p)
	}
	return p, nil
}

// DecodeSegment decodes one raw segment, verifying magic, version, CRC,
// and field sanity.
func DecodeSegment(raw []byte) (*Batch, error) {
	payload, err := checkFrame(raw, Magic, Version)
	if err != nil {
		return nil, err
	}
	br := bytes.NewReader(payload)
	var b Batch
	if b.Machine, err = readString(br); err != nil {
		return nil, err
	}
	if b.Workload, err = readString(br); err != nil {
		return nil, err
	}
	if b.Epoch, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	if b.Epoch == 0 {
		return nil, errors.New("tsdb: segment epoch 0")
	}
	if b.Wall, err = binary.ReadVarint(br); err != nil {
		return nil, err
	}
	bits, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if b.Period, err = readPeriodBits(bits); err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// Each record is at least 5 bytes (two empty-string varints, event
	// byte, two count varints), so a sane count never exceeds the
	// remaining payload.
	if n > uint64(br.Len())/5+1 {
		return nil, fmt.Errorf("tsdb: record count %d exceeds payload", n)
	}
	b.Records = make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		var r Record
		if r.Image, err = readString(br); err != nil {
			return nil, err
		}
		if r.Proc, err = readString(br); err != nil {
			return nil, err
		}
		evb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if sim.Event(evb) >= sim.NumEvents {
			return nil, fmt.Errorf("tsdb: bad event %d", evb)
		}
		r.Event = sim.Event(evb)
		if r.Samples, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if r.Insts, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		b.Records = append(b.Records, r)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("tsdb: %d trailing bytes", br.Len())
	}
	return &b, nil
}
