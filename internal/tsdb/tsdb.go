// Package tsdb is the fleet-side profile store: a labeled, append-only,
// on-disk time-series database for the sample totals dcpicollect scrapes
// from a fleet of dcpid machines. Points are keyed by (machine, workload,
// image, event) and stamped with the profiledb epoch they came from; one
// scrape of one (machine, epoch) pair becomes one immutable segment file.
//
// The durability story mirrors the repo's other stores: segments are
// written through internal/atomicio (temp+fsync+rename), framed with a
// magic, a version, and a CRC32 of the payload, and anything that fails to
// decode on open is quarantined aside as NAME.bad the way
// internal/runcache does — a corrupt segment costs its own points, never
// the database. A size-based retention cap drops the oldest segments
// first, so a long-running collector's disk use stays bounded.
package tsdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dcpi/internal/atomicio"
	"dcpi/internal/obs"
	"dcpi/internal/sim"
)

// Magic identifies a tsdb segment file.
var Magic = [8]byte{'D', 'C', 'P', 'I', 'T', 'S', 'D', 'B'}

// Version is the current segment-format version.
const Version = 1

// Labels identify one series.
type Labels struct {
	Machine  string
	Workload string
	Image    string
	Event    sim.Event
}

// Point is one observation: the sample total (and, when exact counts were
// collected, the executed-instruction total) for a series at one epoch.
// Wall and Period are denormalized from the epoch's metadata so queries
// can convert samples to cycles without a side lookup.
type Point struct {
	Labels
	Epoch   uint64
	Samples uint64
	Insts   uint64 // 0 when the epoch had no exact counts
	Wall    int64  // epoch wall-clock cycles on that machine
	Period  float64
}

// Cycles returns the cycles this point attributes to its image
// (samples × average sampling period).
func (p Point) Cycles() float64 { return float64(p.Samples) * p.Period }

// Record is the per-series part of an Append batch.
type Record struct {
	Image   string
	Event   sim.Event
	Samples uint64
	Insts   uint64
}

// Batch is one scraped (machine, epoch) payload: the unit of append and
// the exact contents of one segment file.
type Batch struct {
	Machine  string
	Workload string
	Epoch    uint64
	Wall     int64
	Period   float64
	Records  []Record
}

// Options configures Open.
type Options struct {
	// MaxBytes caps the total size of segment files; 0 means unbounded.
	// When an append pushes past the cap, the oldest segments (lowest
	// sequence numbers) are deleted until under it again. The newest
	// segment is never deleted.
	MaxBytes int64
	// ReadOnly opens without quarantining corrupt segments or accepting
	// appends (used by query CLIs pointed at a live collector's store).
	ReadOnly bool
	// Obs publishes store gauges/counters (tsdb.*) when set.
	Obs obs.Hooks
}

type segment struct {
	seq    uint64
	path   string
	bytes  int64
	points []Point
}

// DB is an open store. All methods are safe for concurrent use; appends
// serialize behind one mutex (the collector is the only writer).
type DB struct {
	mu          sync.Mutex
	dir         string
	opts        Options
	segs        []segment // ascending seq
	nextSeq     uint64
	sizeBytes   int64
	quarantined int
	evicted     int
}

// Open opens (or creates, unless ReadOnly) the store at dir, loading every
// decodable segment into the in-memory index. Corrupt segments are renamed
// to NAME.bad (kept for post-mortem, hidden from queries) unless ReadOnly.
func Open(dir string, opts Options) (*DB, error) {
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	db := &DB{dir: dir, opts: opts, nextSeq: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			if !opts.ReadOnly {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		seq, ok := parseSegName(name)
		if !ok {
			continue
		}
		full := filepath.Join(dir, name)
		raw, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		b, derr := DecodeSegment(raw)
		if derr != nil {
			if !opts.ReadOnly {
				os.Rename(full, full+".bad")
			}
			db.quarantined++
			continue
		}
		db.segs = append(db.segs, segment{
			seq:    seq,
			path:   full,
			bytes:  int64(len(raw)),
			points: batchPoints(b),
		})
		db.sizeBytes += int64(len(raw))
		if seq >= db.nextSeq {
			db.nextSeq = seq + 1
		}
	}
	sort.Slice(db.segs, func(i, j int) bool { return db.segs[i].seq < db.segs[j].seq })
	db.publish()
	return db, nil
}

// parseSegName parses "seg-<decimal>.tsdb" strictly.
func parseSegName(name string) (uint64, bool) {
	digits, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	digits, ok = strings.CutSuffix(digits, ".tsdb")
	if !ok || digits == "" {
		return 0, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.tsdb", seq) }

func batchPoints(b *Batch) []Point {
	pts := make([]Point, len(b.Records))
	for i, r := range b.Records {
		pts[i] = Point{
			Labels:  Labels{Machine: b.Machine, Workload: b.Workload, Image: r.Image, Event: r.Event},
			Epoch:   b.Epoch,
			Samples: r.Samples,
			Insts:   r.Insts,
			Wall:    b.Wall,
			Period:  b.Period,
		}
	}
	return pts
}

// Dir returns the store directory.
func (db *DB) Dir() string { return db.dir }

// Append durably writes one batch as a new segment and indexes its points.
func (db *DB) Append(b Batch) error {
	if db.opts.ReadOnly {
		return errors.New("tsdb: store opened read-only")
	}
	if b.Machine == "" {
		return errors.New("tsdb: batch needs a machine label")
	}
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, &b); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	seq := db.nextSeq
	db.nextSeq++
	path := filepath.Join(db.dir, segName(seq))
	if err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	}); err != nil {
		return err
	}
	db.segs = append(db.segs, segment{
		seq:    seq,
		path:   path,
		bytes:  int64(buf.Len()),
		points: batchPoints(&b),
	})
	db.sizeBytes += int64(buf.Len())
	db.retain()
	db.publish()
	return nil
}

// retain enforces the size cap by deleting the oldest segments. Caller
// holds db.mu.
func (db *DB) retain() {
	if db.opts.MaxBytes <= 0 {
		return
	}
	for db.sizeBytes > db.opts.MaxBytes && len(db.segs) > 1 {
		old := db.segs[0]
		if err := os.Remove(old.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return // leave the index consistent with disk; retry next append
		}
		db.segs = db.segs[1:]
		db.sizeBytes -= old.bytes
		db.evicted++
	}
}

// publish updates the tsdb.* gauges. Caller holds db.mu (or has exclusive
// access during Open).
func (db *DB) publish() {
	reg := db.opts.Obs.Registry
	if reg == nil {
		return
	}
	var pts int
	for _, s := range db.segs {
		pts += len(s.points)
	}
	reg.Gauge("tsdb.segments").Set(float64(len(db.segs)))
	reg.Gauge("tsdb.points").Set(float64(pts))
	reg.Gauge("tsdb.size_bytes").Set(float64(db.sizeBytes))
	reg.Gauge("tsdb.quarantined_segments").Set(float64(db.quarantined))
	reg.Gauge("tsdb.retention_evictions").Set(float64(db.evicted))
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Segments    int
	Points      int
	SizeBytes   int64
	Quarantined int
	Evicted     int
}

// Stats returns the store's current summary.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	var pts int
	for _, s := range db.segs {
		pts += len(s.points)
	}
	return Stats{
		Segments:    len(db.segs),
		Points:      pts,
		SizeBytes:   db.sizeBytes,
		Quarantined: db.quarantined,
		Evicted:     db.evicted,
	}
}

// HasEpoch reports whether any point for (machine, epoch) is present —
// the scraper's exactly-once check.
func (db *DB) HasEpoch(machine string, epoch uint64) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range db.segs {
		if len(s.points) > 0 && s.points[0].Machine == machine && s.points[0].Epoch == epoch {
			return true
		}
	}
	return false
}

// MaxEpoch returns the highest epoch stored for machine (0 if none).
func (db *DB) MaxEpoch(machine string) uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var max uint64
	for _, s := range db.segs {
		for _, p := range s.points {
			if p.Machine == machine && p.Epoch > max {
				max = p.Epoch
			}
		}
	}
	return max
}

// EncodeSegment writes the framed, CRC-stamped encoding of b.
func EncodeSegment(w io.Writer, b *Batch) error {
	var payload bytes.Buffer
	pw := bufio.NewWriter(&payload)
	writeString := func(s string) error {
		if err := atomicio.WriteUvarint(pw, uint64(len(s))); err != nil {
			return err
		}
		_, err := pw.WriteString(s)
		return err
	}
	if err := writeString(b.Machine); err != nil {
		return err
	}
	if err := writeString(b.Workload); err != nil {
		return err
	}
	if err := atomicio.WriteUvarint(pw, b.Epoch); err != nil {
		return err
	}
	if err := atomicio.WriteVarint(pw, b.Wall); err != nil {
		return err
	}
	if err := atomicio.WriteUvarint(pw, math.Float64bits(b.Period)); err != nil {
		return err
	}
	if err := atomicio.WriteUvarint(pw, uint64(len(b.Records))); err != nil {
		return err
	}
	for _, r := range b.Records {
		if err := writeString(r.Image); err != nil {
			return err
		}
		if err := pw.WriteByte(byte(r.Event)); err != nil {
			return err
		}
		if err := atomicio.WriteUvarint(pw, r.Samples); err != nil {
			return err
		}
		if err := atomicio.WriteUvarint(pw, r.Insts); err != nil {
			return err
		}
	}
	if err := pw.Flush(); err != nil {
		return err
	}

	var hdr [14]byte
	copy(hdr[:8], Magic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], Version)
	binary.LittleEndian.PutUint32(hdr[10:14], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// maxStringLen bounds decoded label lengths so corrupt varints cannot
// drive huge allocations (the fuzz target's over-allocation check).
const maxStringLen = 1 << 16

// DecodeSegment decodes one segment, verifying magic, version, and CRC.
func DecodeSegment(raw []byte) (*Batch, error) {
	if len(raw) < 14 {
		return nil, errors.New("tsdb: segment too short")
	}
	if !bytes.Equal(raw[:8], Magic[:]) {
		return nil, errors.New("tsdb: bad magic")
	}
	if v := binary.LittleEndian.Uint16(raw[8:10]); v != Version {
		return nil, fmt.Errorf("tsdb: unsupported version %d", v)
	}
	payload := raw[14:]
	if crc := binary.LittleEndian.Uint32(raw[10:14]); crc != crc32.ChecksumIEEE(payload) {
		return nil, errors.New("tsdb: CRC mismatch")
	}
	br := bytes.NewReader(payload)
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > maxStringLen || n > uint64(br.Len()) {
			return "", fmt.Errorf("tsdb: string length %d exceeds payload", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var (
		b   Batch
		err error
	)
	if b.Machine, err = readString(); err != nil {
		return nil, err
	}
	if b.Workload, err = readString(); err != nil {
		return nil, err
	}
	if b.Epoch, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	if b.Wall, err = binary.ReadVarint(br); err != nil {
		return nil, err
	}
	bits, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	b.Period = math.Float64frombits(bits)
	if math.IsNaN(b.Period) || math.IsInf(b.Period, 0) || b.Period < 0 {
		return nil, fmt.Errorf("tsdb: invalid period %v", b.Period)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// Each record is at least 4 bytes (empty image varint, event byte, two
	// count varints), so a sane count never exceeds the remaining payload.
	if n > uint64(br.Len())/4+1 {
		return nil, fmt.Errorf("tsdb: record count %d exceeds payload", n)
	}
	b.Records = make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		var r Record
		if r.Image, err = readString(); err != nil {
			return nil, err
		}
		evb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if sim.Event(evb) >= sim.NumEvents {
			return nil, fmt.Errorf("tsdb: bad event %d", evb)
		}
		r.Event = sim.Event(evb)
		if r.Samples, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if r.Insts, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		b.Records = append(b.Records, r)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("tsdb: %d trailing bytes", br.Len())
	}
	return &b, nil
}
