package tsdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dcpi/internal/sim"
)

// procBatch is a batch with image-level and per-procedure rows, the shape
// the collector ingests from a symbolizing target.
func procBatch(machine string, epoch uint64) Batch {
	return Batch{
		Machine:  machine,
		Workload: "x11perf",
		Epoch:    epoch,
		Wall:     2_000_000,
		Period:   62000,
		Records: []Record{
			{Image: "/usr/bin/X", Event: sim.EvCycles, Samples: 60 + epoch, Insts: 9000},
			{Image: "/usr/bin/X", Proc: "ffbFill", Event: sim.EvCycles, Samples: 40 + epoch},
			{Image: "/usr/bin/X", Proc: "miClip", Event: sim.EvCycles, Samples: 20},
			{Image: "/kernel", Event: sim.EvCycles, Samples: 9 + epoch},
			{Image: "/usr/bin/X", Event: sim.EvIMiss, Samples: 3},
		},
	}
}

func mustAppend(t *testing.T, db *DB, b Batch) {
	t.Helper()
	if err := db.Append(b); err != nil {
		t.Fatal(err)
	}
}

func mustCompact(t *testing.T, db *DB, o CompactOptions) CompactStats {
	t.Helper()
	st, err := db.Compact(o)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBlockRoundTrip encodes and decodes a raw and a downsampled block
// built from real batches, requiring a lossless round trip.
func TestBlockRoundTrip(t *testing.T) {
	var srcs []*source
	for e := uint64(1); e <= 4; e++ {
		b := procBatch("m00", e)
		srcs = append(srcs, sourceFromBatch(e, "", 0, &b))
	}
	for _, bl := range []*block{buildBlock("m00", srcs), downsampleBlock(buildBlock("m00", srcs), 2)} {
		var buf bytes.Buffer
		if err := EncodeBlock(&buf, bl); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBlock(buf.Bytes())
		if err != nil {
			t.Fatalf("downsample=%d: %v", bl.downsample, err)
		}
		if !reflect.DeepEqual(got, bl) {
			t.Errorf("downsample=%d round trip changed the block:\nin  %+v\nout %+v",
				bl.downsample, bl, got)
		}
	}
}

func TestBlockCorruptionDetected(t *testing.T) {
	b := procBatch("m00", 1)
	bl := buildBlock("m00", []*source{sourceFromBatch(1, "", 0, &b)})
	var buf bytes.Buffer
	if err := EncodeBlock(&buf, bl); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, i := range []int{0, 9, 12, 20, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0xff
		if _, err := DecodeBlock(bad); err == nil {
			t.Errorf("flipping byte %d went undetected", i)
		}
	}
	if _, err := DecodeBlock(raw[:len(raw)/2]); err == nil {
		t.Error("truncated block decoded")
	}
}

// TestSelectDeterminism pins Select's ordering contract: points sorted by
// (epoch, machine, workload, image, proc, event), with duplicate
// (labels, epoch) points — a re-scrape race — in ingestion order. The
// order must be a stable property of the data, identical across repeated
// queries, compaction, and reopen.
func TestSelectDeterminism(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, db, procBatch("m00", 1))
	mustAppend(t, db, procBatch("m00", 2))
	// A re-scrape race stores epoch 2 twice with different samples; the
	// first-ingested copy must stay first.
	dup := procBatch("m00", 2)
	dup.Records[0].Samples = 999
	mustAppend(t, db, dup)
	mustAppend(t, db, procBatch("m00", 3))
	mustAppend(t, db, procBatch("m01", 1))

	m := Matcher{AnyEvent: true, AnyProc: true, FromEpoch: 1, ToEpoch: 3}
	want := db.Select(m)
	raced := Labels{Machine: "m00", Workload: "x11perf", Image: "/usr/bin/X", Event: sim.EvCycles}
	var prev *Point
	dupSeen, sawRace := 0, false
	for i := range want {
		p := &want[i]
		if prev != nil {
			if p.Epoch < prev.Epoch {
				t.Fatalf("point %d: epoch %d after %d", i, p.Epoch, prev.Epoch)
			}
			if p.Epoch == prev.Epoch && p.Labels != prev.Labels && labelsLess(&p.Labels, &prev.Labels) {
				t.Fatalf("point %d: labels %+v after %+v", i, p.Labels, prev.Labels)
			}
			if p.Epoch == prev.Epoch && p.Labels == prev.Labels {
				dupSeen++
				if p.Labels == raced {
					// The only series whose two copies differ: the
					// first-ingested value must come first.
					if prev.Samples != 62 || p.Samples != 999 {
						t.Fatalf("duplicate order wrong: %d then %d (want 62 then 999)", prev.Samples, p.Samples)
					}
					sawRace = true
				}
			}
		}
		prev = p
	}
	if dupSeen != len(dup.Records) || !sawRace {
		t.Fatalf("saw %d duplicate pairs (want %d), raced series seen: %v", dupSeen, len(dup.Records), sawRace)
	}
	for i := 0; i < 10; i++ {
		if got := db.Select(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("repeat %d: Select order changed", i)
		}
	}
	mustCompact(t, db, CompactOptions{CompactAfter: 1})
	if got := db.Select(m); !reflect.DeepEqual(got, want) {
		t.Fatal("Select order changed after compaction")
	}
	db2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Select(m); !reflect.DeepEqual(got, want) {
		t.Fatal("Select order changed after reopen")
	}
}

// TestCompactionByteIdentity requires every query to return identical
// results before and after compaction, across all query shapes and a
// reopen of the compacted store.
func TestCompactionByteIdentity(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const machines, epochs = 3, 8
	for m := 0; m < machines; m++ {
		for e := uint64(1); e <= epochs; e++ {
			mustAppend(t, db, procBatch(fmt.Sprintf("m%02d", m), e))
		}
	}
	type answers struct {
		sel    []Point
		rng    []RangeRow
		rngPrc []RangeRow
		top    []TopRow
		procs  []ProcRow
		deltas any
	}
	query := func(db *DB) answers {
		return answers{
			sel:    db.Select(Matcher{AnyEvent: true, AnyProc: true, FromEpoch: 1, ToEpoch: epochs}),
			rng:    RangeQuery(db, "/usr/bin/X", sim.EvCycles, 1, epochs),
			rngPrc: RangeQueryProc(db, "/usr/bin/X", "ffbFill", sim.EvCycles, 1, epochs),
			top:    TopImages(db, sim.EvCycles, 1, epochs, 10),
			procs:  TopProcs(db, "/usr/bin/X", sim.EvCycles, 1, epochs, 10),
			deltas: TopDeltas(db, sim.EvCycles, 1, epochs/2, epochs/2+1, epochs, 10),
		}
	}
	before := query(db)
	preStats := db.Stats()
	st := mustCompact(t, db, CompactOptions{CompactAfter: 1})
	if st.SegmentsCompacted != machines*epochs || st.BlocksWritten != machines {
		t.Fatalf("compact stats: %+v", st)
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Errorf("compaction grew the store: %d -> %d bytes", st.BytesBefore, st.BytesAfter)
	}
	if !reflect.DeepEqual(query(db), before) {
		t.Fatal("query answers changed after compaction")
	}
	postStats := db.Stats()
	if postStats.Segments != 0 || postStats.Blocks != machines || postStats.Points != preStats.Points {
		t.Fatalf("store shape after compaction: %+v", postStats)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(query(db2), before) {
		t.Fatal("query answers changed after reopening the compacted store")
	}
}

// TestDownsampling compacts old epochs into per-3-epoch aggregates and
// checks the sums, extremes, and cycle-weighted period.
func TestDownsampling(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 6; e++ {
		mustAppend(t, db, procBatch("m00", e))
	}
	mustCompact(t, db, CompactOptions{CompactAfter: 1})
	for e := uint64(7); e <= 10; e++ {
		mustAppend(t, db, procBatch("m00", e))
	}
	// Horizon = 10 - 3 = 7: the first block (epochs 1-6) is wholly behind
	// it and gets downsampled; the new block (7-10) stays raw.
	st := mustCompact(t, db, CompactOptions{CompactAfter: 1, RawRetention: 3, Downsample: 3})
	if st.BlocksDownsampled != 1 {
		t.Fatalf("downsampled %d blocks, want 1", st.BlocksDownsampled)
	}
	if got := db.Stats(); got.Downsampled != 1 || got.Blocks != 2 {
		t.Fatalf("stats: %+v", got)
	}

	pts := db.Select(Matcher{Machine: "m00", Image: "/usr/bin/X", Event: sim.EvCycles, FromEpoch: 1, ToEpoch: 6})
	if len(pts) != 2 {
		t.Fatalf("got %d aggregate points, want 2: %+v", len(pts), pts)
	}
	// Bucket 1 aggregates epochs 1-3: samples 61+62+63, insts 3x9000,
	// wall 3x2M; all periods equal so the weighted mean is 62000 exactly.
	want := []struct {
		epoch, samples, insts, min, max uint64
		wall                            int64
	}{
		{1, 61 + 62 + 63, 27000, 61, 63, 6_000_000},
		{4, 64 + 65 + 66, 27000, 64, 66, 6_000_000},
	}
	for i, w := range want {
		p := pts[i]
		if p.Epoch != w.epoch || p.Samples != w.samples || p.Insts != w.insts ||
			p.Min != w.min || p.Max != w.max || p.Wall != w.wall || p.Period != 62000 {
			t.Errorf("bucket %d = %+v, want %+v", i, p, w)
		}
		if got, want := p.Cycles(), float64(w.samples)*62000; got != want {
			t.Errorf("bucket %d cycles = %v, want %v", i, got, want)
		}
	}
	// Per-epoch presence collapses to bucket coverage behind the horizon;
	// raw epochs keep exact presence.
	for e := uint64(1); e <= 10; e++ {
		if !db.HasEpoch("m00", e) {
			t.Errorf("HasEpoch(m00, %d) = false", e)
		}
	}
	if db.HasEpoch("m00", 11) {
		t.Error("HasEpoch(m00, 11) = true")
	}
}

// TestAppendRejectsConflictingMetadata pins the Append-time gate behind
// compaction's metadata canonicalization: re-appending a stored epoch is
// fine (duplicate points are the re-scrape-race contract) but only with
// identical wall/period, both against raw segments and against a block.
func TestAppendRejectsConflictingMetadata(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, db, procBatch("m00", 1))
	badWall := procBatch("m00", 1)
	badWall.Wall += 7
	if err := db.Append(badWall); err == nil {
		t.Error("conflicting wall accepted against a raw segment")
	}
	badPeriod := procBatch("m00", 1)
	badPeriod.Period = 999
	if err := db.Append(badPeriod); err == nil {
		t.Error("conflicting period accepted against a raw segment")
	}
	dup := procBatch("m00", 1)
	dup.Records[0].Samples = 999 // same metadata, different counts: allowed
	mustAppend(t, db, dup)
	mustCompact(t, db, CompactOptions{CompactAfter: 1})
	if err := db.Append(badWall); err == nil {
		t.Error("conflicting wall accepted against a block")
	}
	mustAppend(t, db, procBatch("m00", 1)) // identical metadata still fine
}

// TestCompactQuarantinesConflictingSegment plants an on-disk duplicate
// segment whose metadata disagrees with the first copy of its epoch —
// data Append refuses, but older files may carry. Compaction must
// quarantine it as .bad instead of silently canonicalizing its points'
// wall/period into the block.
func TestCompactQuarantinesConflictingSegment(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, db, procBatch("m00", 1))
	mustAppend(t, db, procBatch("m00", 2))
	conflict := procBatch("m00", 2)
	conflict.Wall += 7
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, &conflict); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(3)), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perBatch := len(procBatch("m00", 1).Records)
	if got := db2.Stats(); got.Points != 3*perBatch {
		t.Fatalf("planted store holds %d points, want %d", got.Points, 3*perBatch)
	}
	want := db2.Select(Matcher{AnyEvent: true, AnyProc: true, ToEpoch: 1})
	st := mustCompact(t, db2, CompactOptions{CompactAfter: 1})
	if st.SegmentsCompacted != 2 {
		t.Errorf("compacted %d segments, want 2", st.SegmentsCompacted)
	}
	stats := db2.Stats()
	if stats.Quarantined != 1 || stats.Segments != 0 || stats.Blocks != 1 || stats.Points != 2*perBatch {
		t.Fatalf("stats after conflict quarantine: %+v", stats)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(3)+".bad")); err != nil {
		t.Errorf("conflicting segment not quarantined: %v", err)
	}
	if got := db2.Select(Matcher{AnyEvent: true, AnyProc: true, ToEpoch: 1}); !reflect.DeepEqual(got, want) {
		t.Fatal("untouched epoch's answers changed")
	}
	if !db2.HasEpoch("m00", 2) {
		t.Error("the epoch's first copy was lost")
	}
}

// TestHasEpochPartialBucket pins exact presence on downsampled blocks:
// epochs in the uncovered tail of a partial bucket, or in a gap inside
// one, must read as absent so the scraper's exactly-once check never
// skips real data.
func TestHasEpochPartialBucket(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 5 was never ingested (a scrape outage); epoch 7 ends its
	// bucket mid-range.
	stored := []uint64{1, 2, 3, 4, 6, 7}
	for _, e := range stored {
		mustAppend(t, db, procBatch("m00", e))
	}
	mustCompact(t, db, CompactOptions{CompactAfter: 1})
	mustAppend(t, db, procBatch("m00", 20))
	// Horizon = 20 - 5 = 15: the epochs 1-7 block is wholly behind it and
	// downsamples into buckets {1: 1-3, 4: 4 and 6, 7: 7}.
	st := mustCompact(t, db, CompactOptions{CompactAfter: 2, RawRetention: 5, Downsample: 3})
	if st.BlocksDownsampled != 1 {
		t.Fatalf("downsampled %d blocks, want 1", st.BlocksDownsampled)
	}
	has := map[uint64]bool{20: true}
	for _, e := range stored {
		has[e] = true
	}
	for e := uint64(1); e <= 21; e++ {
		if got := db.HasEpoch("m00", e); got != has[e] {
			t.Errorf("HasEpoch(m00, %d) = %v, want %v", e, got, has[e])
		}
	}
	if got := db.MaxEpoch("m00"); got != 20 {
		t.Errorf("MaxEpoch(m00) = %d, want 20", got)
	}
}

func TestCompactGuards(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, db, procBatch("m00", 1))
	if _, err := db.Compact(CompactOptions{CompactAfter: 1, Downsample: 4}); err == nil {
		t.Error("downsampling without a raw-retention horizon succeeded")
	}
	if _, err := db.Compact(CompactOptions{CompactAfter: 1, RawRetention: 1, Downsample: maxDownsample + 1}); err == nil {
		t.Error("downsample factor beyond the coverage bitmap width succeeded")
	}
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Compact(CompactOptions{CompactAfter: 1}); err == nil {
		t.Error("compacting a read-only store succeeded")
	}
}

// TestCrashMidCompaction simulates dying between a block's commit rename
// and the removal of its input segments: reopening must reclaim the
// leftover inputs so no point appears twice.
func TestCrashMidCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 3; e++ {
		mustAppend(t, db, procBatch("m00", e))
	}
	mustAppend(t, db, procBatch("m01", 1))
	m := Matcher{AnyEvent: true, AnyProc: true, FromEpoch: 1, ToEpoch: 3}
	want := db.Select(m)

	db.testCrashMidCompact = true
	mustCompact(t, db, CompactOptions{CompactAfter: 1})
	// The block and all its inputs now coexist on disk.
	names, _ := filepath.Glob(filepath.Join(dir, "*.tsdb"))
	if len(names) != 5 {
		t.Fatalf("%d files after simulated crash, want 5 (4 segments + 1 block)", len(names))
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := db2.Stats()
	if st.Reclaimed != 3 || st.Segments != 1 || st.Blocks != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
	if got := db2.Select(m); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered store answers differently")
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*.tsdb"))
	if len(left) != 2 {
		t.Fatalf("%d files after recovery, want 2", len(left))
	}
}

// TestCrashMidDownsample simulates dying between a downsampled rewrite's
// commit and the removal of the raw block it replaced: the older block's
// sequence range is contained in the newer one's, so reopen drops it.
func TestCrashMidDownsample(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 4; e++ {
		mustAppend(t, db, procBatch("m00", e))
	}
	mustCompact(t, db, CompactOptions{CompactAfter: 1}) // -> blk-00000005
	// Fake the crashed rewrite: a newer block file with the same consumed
	// range (what downsampleLocked commits before unlinking the old one).
	raw, err := os.ReadFile(filepath.Join(dir, blkName(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, blkName(6)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := db2.Stats()
	if st.Reclaimed != 1 || st.Blocks != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, blkName(5))); !os.IsNotExist(err) {
		t.Error("superseded block survived reopen")
	}
}

// TestEvictionWithBlocksAndQuarantine pins the size-cap interplay:
// compacted blocks are evicted oldest-epoch-first before newer data, and
// quarantined .bad files never count against the cap.
func TestEvictionWithBlocksAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 20; e++ {
		mustAppend(t, db, procBatch("m00", e))
	}
	mustCompact(t, db, CompactOptions{CompactAfter: 1}) // block A: epochs 1-20
	for e := uint64(21); e <= 40; e++ {
		mustAppend(t, db, procBatch("m00", e))
	}
	mustCompact(t, db, CompactOptions{CompactAfter: 1}) // block B: epochs 21-40
	size := db.Stats().SizeBytes

	// A fat quarantined file must not count against the cap: with the cap
	// set to the live size, reopening and appending one more epoch must
	// evict only the oldest block, not everything.
	if err := os.WriteFile(filepath.Join(dir, segName(99)+".bad"), make([]byte, 1<<20), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{MaxBytes: size})
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Stats(); got.SizeBytes != size || got.Blocks != 2 {
		t.Fatalf("reopen counted quarantine against the store: %+v", got)
	}
	mustAppend(t, db2, procBatch("m00", 41))
	st := db2.Stats()
	if st.Evicted != 1 || st.Blocks != 1 || st.Segments != 1 {
		t.Fatalf("eviction stats: %+v", st)
	}
	if db2.HasEpoch("m00", 20) {
		t.Error("oldest block not evicted")
	}
	if !db2.HasEpoch("m00", 21) || !db2.HasEpoch("m00", 40) || !db2.HasEpoch("m00", 41) {
		t.Error("eviction took newer data")
	}
	if _, err := os.Stat(filepath.Join(dir, segName(99)+".bad")); err != nil {
		t.Errorf("quarantined file touched by eviction: %v", err)
	}
}
