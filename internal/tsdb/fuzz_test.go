package tsdb

import (
	"bytes"
	"reflect"
	"testing"

	"dcpi/internal/sim"
)

// FuzzTSDBSegmentDecode feeds arbitrary bytes to the segment decoder. The
// decoder must never panic or over-allocate on corrupt input — a damaged
// segment has to fail cleanly so Open can quarantine it — and any input it
// does accept must survive an encode/decode round trip.
func FuzzTSDBSegmentDecode(f *testing.F) {
	seed := Batch{
		Machine:  "m07",
		Workload: "x11perf",
		Epoch:    42,
		Wall:     3_456_789,
		Period:   62000,
		Records: []Record{
			{Image: "/usr/bin/X", Event: sim.EvCycles, Samples: 1234, Insts: 99999},
			{Image: "/kernel", Event: sim.EvIMiss, Samples: 7},
			{Image: "", Event: sim.EvDTBMiss, Samples: 0, Insts: 1 << 40},
		},
	}
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, &seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:13])        // truncated header
	f.Add(buf.Bytes()[:20])        // truncated payload
	f.Add([]byte("not a segment")) // bad magic
	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[len(flipped)-1] ^= 0xff // corrupt payload (CRC must catch it)
	f.Add(flipped)
	var empty bytes.Buffer
	if err := EncodeSegment(&empty, &Batch{Machine: "m", Workload: "w"}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeSegment(data)
		if err != nil {
			return // rejected cleanly — fine
		}
		var out bytes.Buffer
		if err := EncodeSegment(&out, b); err != nil {
			t.Fatalf("re-encoding accepted segment: %v", err)
		}
		q, err := DecodeSegment(out.Bytes())
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		// Records of length 0 and nil compare unequal under DeepEqual but
		// are the same segment.
		if len(b.Records) == 0 {
			b.Records, q.Records = nil, nil
		}
		if !reflect.DeepEqual(q, b) {
			t.Errorf("round trip changed the batch:\nfirst  %+v\nsecond %+v", b, q)
		}
	})
}
