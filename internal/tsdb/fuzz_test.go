package tsdb

import (
	"bytes"
	"reflect"
	"testing"

	"dcpi/internal/sim"
)

// FuzzTSDBSegmentDecode feeds arbitrary bytes to the segment decoder. The
// decoder must never panic or over-allocate on corrupt input — a damaged
// segment has to fail cleanly so Open can quarantine it — and any input it
// does accept must survive an encode/decode round trip.
func FuzzTSDBSegmentDecode(f *testing.F) {
	seed := Batch{
		Machine:  "m07",
		Workload: "x11perf",
		Epoch:    42,
		Wall:     3_456_789,
		Period:   62000,
		Records: []Record{
			{Image: "/usr/bin/X", Event: sim.EvCycles, Samples: 1234, Insts: 99999},
			{Image: "/kernel", Event: sim.EvIMiss, Samples: 7},
			{Image: "", Event: sim.EvDTBMiss, Samples: 0, Insts: 1 << 40},
		},
	}
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, &seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:13])        // truncated header
	f.Add(buf.Bytes()[:20])        // truncated payload
	f.Add([]byte("not a segment")) // bad magic
	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[len(flipped)-1] ^= 0xff // corrupt payload (CRC must catch it)
	f.Add(flipped)
	var empty bytes.Buffer
	if err := EncodeSegment(&empty, &Batch{Machine: "m", Workload: "w"}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeSegment(data)
		if err != nil {
			return // rejected cleanly — fine
		}
		var out bytes.Buffer
		if err := EncodeSegment(&out, b); err != nil {
			t.Fatalf("re-encoding accepted segment: %v", err)
		}
		q, err := DecodeSegment(out.Bytes())
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		// Records of length 0 and nil compare unequal under DeepEqual but
		// are the same segment.
		if len(b.Records) == 0 {
			b.Records, q.Records = nil, nil
		}
		if !reflect.DeepEqual(q, b) {
			t.Errorf("round trip changed the batch:\nfirst  %+v\nsecond %+v", b, q)
		}
	})
}

// FuzzTSDBBlockDecode feeds arbitrary bytes to the block decoder, which
// guards a much richer invariant set than segments (delta-coded epoch
// metadata, sorted string table, ascending series, column/metadata
// joins). Corrupt input must fail cleanly without panics or huge
// allocations; accepted input must survive an encode/decode round trip.
func FuzzTSDBBlockDecode(f *testing.F) {
	var srcs []*source
	for e := uint64(1); e <= 3; e++ {
		b := Batch{
			Machine:  "m04",
			Workload: "timeshare",
			Epoch:    e,
			Wall:     2_000_000 + int64(e),
			Period:   62000,
			Records: []Record{
				{Image: "/usr/bin/app", Event: sim.EvCycles, Samples: 40 + e, Insts: 7000},
				{Image: "/usr/bin/app", Proc: "main", Event: sim.EvCycles, Samples: 40 + e},
				{Image: "/kernel", Event: sim.EvDMiss, Samples: e},
			},
		}
		srcs = append(srcs, sourceFromBatch(e, "", 0, &b))
	}
	raw := buildBlock("m04", srcs)
	encode := func(b *block) []byte {
		var buf bytes.Buffer
		if err := EncodeBlock(&buf, b); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	rawBytes := encode(raw)
	f.Add(rawBytes)
	f.Add(encode(downsampleBlock(raw, 2)))
	f.Add(rawBytes[:13])         // truncated header
	f.Add(rawBytes[:25])         // truncated payload
	f.Add([]byte("not a block")) // bad magic
	flipped := append([]byte(nil), rawBytes...)
	flipped[len(flipped)-1] ^= 0xff // corrupt payload (CRC must catch it)
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBlock(data)
		if err != nil {
			return // rejected cleanly — fine
		}
		var out bytes.Buffer
		if err := EncodeBlock(&out, b); err != nil {
			t.Fatalf("re-encoding accepted block: %v", err)
		}
		q, err := DecodeBlock(out.Bytes())
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if !reflect.DeepEqual(q, b) {
			t.Errorf("round trip changed the block:\nfirst  %+v\nsecond %+v", b, q)
		}
	})
}
